module deltacluster

go 1.22
