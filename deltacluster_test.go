package deltacluster_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	deltacluster "deltacluster"
)

// TestPublicAPIQuickstart exercises the documented quick-start flow
// end to end through the public API only.
func TestPublicAPIQuickstart(t *testing.T) {
	ds, err := deltacluster.GenerateSynthetic(deltacluster.SyntheticConfig{
		Rows: 300, Cols: 30, NumClusters: 5,
		VolumeMean: 125, VolumeVariance: 0, RowColRatio: 5,
		TargetResidue: 5,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := deltacluster.DefaultFLOCConfig(7, 15)
	cfg.Seed = 3
	res, err := deltacluster.FLOC(ds.Matrix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sig := deltacluster.Significant(res.Clusters, cfg.MaxResidue)
	if len(sig) == 0 {
		t.Fatal("no significant clusters")
	}
	rec, prec := deltacluster.RecallPrecision(ds.Matrix, ds.Embedded, deltacluster.Specs(sig))
	if rec < 0.5 || prec < 0.6 {
		t.Errorf("quality too low: recall=%.3f precision=%.3f", rec, prec)
	}
	sum := deltacluster.Summarize(sig)
	if sum.AvgResidue > cfg.MaxResidue {
		t.Errorf("significant clusters exceed the residue budget: %v", sum.AvgResidue)
	}
}

func TestPublicAPIMatrixIO(t *testing.T) {
	in := "1,2,\n4,,6\n"
	m, err := deltacluster.ReadMatrix(strings.NewReader(in), deltacluster.IOOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.SpecifiedCount() != 4 {
		t.Errorf("specified = %d, want 4", m.SpecifiedCount())
	}
	var buf bytes.Buffer
	if err := deltacluster.WriteMatrix(&buf, m, deltacluster.IOOptions{}); err != nil {
		t.Fatal(err)
	}
	back, err := deltacluster.ReadMatrix(&buf, deltacluster.IOOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back) {
		t.Error("round trip changed the matrix")
	}
}

func TestPublicAPIClusterModel(t *testing.T) {
	// The paper's Figure 1: shifted vectors form a perfect δ-cluster.
	m, err := deltacluster.MatrixFromRows([][]float64{
		{1, 5, 23, 12, 20},
		{11, 15, 33, 22, 30},
		{111, 115, 133, 122, 130},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := deltacluster.Residue(m, []int{0, 1, 2}, []int{0, 1, 2, 3, 4}); r > 1e-12 {
		t.Errorf("residue = %v, want 0", r)
	}
	c := deltacluster.ClusterFromSpec(m, []int{0, 1}, []int{0, 1, 2})
	if c.Volume() != 6 {
		t.Errorf("volume = %d", c.Volume())
	}
	if r := deltacluster.PearsonR(m.Row(0), m.Row(1)); math.Abs(r-1) > 1e-12 {
		t.Errorf("PearsonR = %v, want 1", r)
	}
}

func TestPublicAPILogTransform(t *testing.T) {
	// Amplification coherence: row 1 = 2 × row 0.
	m, _ := deltacluster.MatrixFromRows([][]float64{
		{1, 3, 9},
		{2, 6, 18},
	})
	if r := deltacluster.Residue(m, []int{0, 1}, []int{0, 1, 2}); r < 0.1 {
		t.Fatalf("amplification coherence should NOT be a shifting δ-cluster before the transform (residue %v)", r)
	}
	lg, err := deltacluster.LogTransform(m)
	if err != nil {
		t.Fatal(err)
	}
	if r := deltacluster.Residue(lg, []int{0, 1}, []int{0, 1, 2}); r > 1e-12 {
		t.Errorf("post-log residue = %v, want 0", r)
	}
}

func TestPublicAPIChengChurch(t *testing.T) {
	ds, err := deltacluster.GenerateSynthetic(deltacluster.SyntheticConfig{
		Rows: 100, Cols: 15, NumClusters: 1,
		VolumeMean: 100, VolumeVariance: 0, RowColRatio: 5,
		TargetResidue: 2,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := deltacluster.ChengChurch(ds.Matrix, deltacluster.BiclusterConfig{
		K: 1, Delta: 30, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Biclusters) != 1 {
		t.Fatalf("biclusters = %d", len(res.Biclusters))
	}
}

func TestPublicAPICLIQUEAndAlternative(t *testing.T) {
	ds, err := deltacluster.GenerateSynthetic(deltacluster.SyntheticConfig{
		Rows: 120, Cols: 10, NumClusters: 1,
		VolumeMean: 100, VolumeVariance: 0, RowColRatio: 6,
		TargetResidue: 1,
	}, 9)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := deltacluster.CLIQUE(ds.Matrix, deltacluster.CLIQUEConfig{Xi: 8, Tau: 0.1, MaxDims: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Clusters) == 0 {
		t.Error("CLIQUE found nothing")
	}
	alt, err := deltacluster.AlternativeDeltaClusters(ds.Matrix, deltacluster.AlternativeConfig{
		Clique: deltacluster.CLIQUEConfig{Xi: 50, Tau: 0.1, MaxDims: 8, MaxUnits: 100000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if alt.DerivedCols != 45 {
		t.Errorf("derived cols = %d, want 45", alt.DerivedCols)
	}
}

func TestPublicAPIGenerators(t *testing.T) {
	mlCfg := deltacluster.DefaultMovieLensConfig()
	mlCfg.Users, mlCfg.Movies, mlCfg.Ratings, mlCfg.Groups = 120, 200, 5000, 3
	ml, err := deltacluster.GenerateMovieLens(mlCfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ml.Matrix.Rows() != 120 {
		t.Error("MovieLens shape wrong")
	}
	yCfg := deltacluster.DefaultYeastConfig()
	yCfg.Genes, yCfg.Modules = 200, 3
	ye, err := deltacluster.GenerateYeast(yCfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ye.Matrix.Cols() != 17 || len(ye.Embedded) != 3 {
		t.Error("Yeast shape wrong")
	}
}

func TestPublicAPIBestMatches(t *testing.T) {
	ds, _ := deltacluster.GenerateSynthetic(deltacluster.SyntheticConfig{
		Rows: 100, Cols: 20, NumClusters: 2,
		VolumeMean: 80, VolumeVariance: 0, RowColRatio: 5,
		TargetResidue: 1,
	}, 3)
	matches := deltacluster.BestMatches(ds.Matrix, ds.Embedded, ds.Embedded)
	for _, m := range matches {
		if m.Jaccard != 1 {
			t.Errorf("self-match Jaccard = %v", m.Jaccard)
		}
	}
}
