// Command datagen emits synthetic matrices with embedded ground-truth
// δ-clusters — the workloads of the paper's Section 6 — as CSV, plus
// an optional ground-truth file for recall/precision evaluation.
//
// Usage:
//
//	datagen -rows 3000 -cols 100 -clusters 50 -volume 300 [flags] > matrix.csv
//	datagen -kind movielens > ratings.csv
//	datagen -kind yeast -truth truth.txt > microarray.csv
//	datagen -binary > matrix.dcmx   # deltaserve's zero-copy upload body
//
// The ground-truth file holds one embedded cluster per line:
// "rows=i1,i2,... cols=j1,j2,...".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	deltacluster "deltacluster"
)

func main() {
	var (
		kind     = flag.String("kind", "synthetic", "synthetic | movielens | yeast")
		rows     = flag.Int("rows", 3000, "matrix rows (objects)")
		cols     = flag.Int("cols", 100, "matrix columns (attributes)")
		clusters = flag.Int("clusters", 50, "number of embedded clusters")
		volume   = flag.Float64("volume", 300, "mean embedded cluster volume")
		variance = flag.Float64("variance", 0, "volume variance (Erlang)")
		ratio    = flag.Float64("ratio", 12, "rows:cols aspect of embedded clusters")
		residue  = flag.Float64("residue", 5, "target residue of embedded clusters")
		missing  = flag.Float64("missing", 0, "fraction of entries to clear")
		seed     = flag.Int64("seed", 1, "random seed")
		truth    = flag.String("truth", "", "write ground-truth cluster file here")
		bin      = flag.Bool("binary", false, "emit the DCMX binary matrix format instead of CSV (deltaserve's zero-copy upload body)")
	)
	flag.Parse()

	var (
		m        *deltacluster.Matrix
		embedded []deltacluster.ClusterSpec
	)
	switch *kind {
	case "synthetic":
		ds, err := deltacluster.GenerateSynthetic(deltacluster.SyntheticConfig{
			Rows: *rows, Cols: *cols, NumClusters: *clusters,
			VolumeMean: *volume, VolumeVariance: *variance,
			RowColRatio: *ratio, TargetResidue: *residue,
			MissingFraction: *missing,
		}, *seed)
		if err != nil {
			fatal(err)
		}
		m, embedded = ds.Matrix, ds.Embedded
	case "movielens":
		ds, err := deltacluster.GenerateMovieLens(deltacluster.DefaultMovieLensConfig(), *seed)
		if err != nil {
			fatal(err)
		}
		m = ds.Matrix
	case "yeast":
		ds, err := deltacluster.GenerateYeast(deltacluster.DefaultYeastConfig(), *seed)
		if err != nil {
			fatal(err)
		}
		m, embedded = ds.Matrix, ds.Embedded
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}

	if *bin {
		if err := deltacluster.WriteMatrixBinary(os.Stdout, m); err != nil {
			fatal(err)
		}
	} else if err := deltacluster.WriteMatrix(os.Stdout, m, deltacluster.IOOptions{}); err != nil {
		fatal(err)
	}
	if *truth != "" {
		if err := writeTruth(*truth, embedded); err != nil {
			fatal(err)
		}
	}
}

// writeTruth writes the ground-truth cluster file, surfacing write
// and close errors — a silently truncated truth file would skew every
// recall/precision figure computed from it.
func writeTruth(path string, embedded []deltacluster.ClusterSpec) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, s := range embedded {
		if _, err := fmt.Fprintf(f, "rows=%s cols=%s\n", joinInts(s.Rows), joinInts(s.Cols)); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			return fmt.Errorf("writing %s: %w", path, err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing %s: %w", path, err)
	}
	return nil
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, ",")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
