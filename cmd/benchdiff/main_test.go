package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// cannedBench is verbatim `go test -bench -benchmem` output, including
// the non-benchmark lines the parser must skip and a -GOMAXPROCS name
// suffix it must strip.
const cannedBench = `goos: linux
goarch: amd64
pkg: deltacluster/internal/floc
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDecideAll/workers=1-8         	     500	   2100000 ns/op	      48 B/op	       0 allocs/op
BenchmarkDecideAll/workers=2-8         	     480	   2300000 ns/op	    2048 B/op	       5 allocs/op
BenchmarkIterate                       	     400	   9000000 ns/op	  108232 B/op	      53 allocs/op
BenchmarkUnrecorded                    	    1000	   1000000 ns/op
PASS
ok  	deltacluster/internal/floc	12.3s
`

const cannedBaseline = `{
  "suite": "internal/floc",
  "command": "go test -bench . ./internal/floc/",
  "recorded": "2026-01-01",
  "benchmarks": [
    {"name": "BenchmarkDecideAll/workers=1", "ns_per_op": 2000000},
    {"name": "BenchmarkDecideAll/workers=2", "ns_per_op": 2200000},
    {"name": "BenchmarkIterate", "ns_per_op": 3000000},
    {"name": "BenchmarkNotRun", "ns_per_op": 1}
  ]
}`

func writeBaseline(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(cannedBaseline), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBench(t *testing.T) {
	got, order, err := parseBench(strings.NewReader(cannedBench))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkDecideAll/workers=1": 2100000,
		"BenchmarkDecideAll/workers=2": 2300000,
		"BenchmarkIterate":             9000000,
		"BenchmarkUnrecorded":          1000000,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v ns/op, want %v", name, got[name], ns)
		}
	}
	wantOrder := []string{
		"BenchmarkDecideAll/workers=1",
		"BenchmarkDecideAll/workers=2",
		"BenchmarkIterate",
		"BenchmarkUnrecorded",
	}
	for k, name := range wantOrder {
		if order[k] != name {
			t.Errorf("order[%d] = %s, want %s", k, order[k], name)
		}
	}
}

// With the default advisory mode a 3x regression is reported but does
// not fail the run; with -fail it does.
func TestRunAdvisoryVsFail(t *testing.T) {
	path := writeBaseline(t)

	var out, errOut strings.Builder
	code := run([]string{"-baseline", path}, strings.NewReader(cannedBench), &out, &errOut)
	if code != 0 {
		t.Fatalf("advisory run exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	report := out.String()
	for _, want := range []string{
		"BenchmarkIterate", "REGRESSION",
		"1 regression(s)",
		"advisory mode",
		"BenchmarkUnrecorded", "(not in baseline)",
		"BenchmarkNotRun", "(in baseline, not run)",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("advisory report missing %q:\n%s", want, report)
		}
	}

	out.Reset()
	code = run([]string{"-baseline", path, "-fail"}, strings.NewReader(cannedBench), &out, &errOut)
	if code != 1 {
		t.Fatalf("-fail run exit = %d, want 1\nstdout:\n%s", code, out.String())
	}
}

// A wide enough tolerance turns the 3x Iterate regression into a pass
// even under -fail; a tight one also trips the mild workers=1 drift.
func TestRunToleranceBounds(t *testing.T) {
	path := writeBaseline(t)

	var out strings.Builder
	code := run([]string{"-baseline", path, "-fail", "-tolerance", "4.0"},
		strings.NewReader(cannedBench), &out, &out)
	if code != 0 {
		t.Fatalf("tolerance 4.0 exit = %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Errorf("tolerance 4.0 report missing success line:\n%s", out.String())
	}

	out.Reset()
	code = run([]string{"-baseline", path, "-fail", "-tolerance", "1.01"},
		strings.NewReader(cannedBench), &out, &out)
	if code != 1 {
		t.Fatalf("tolerance 1.01 exit = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "3 regression(s)") {
		t.Errorf("tolerance 1.01 should flag all three recorded benchmarks:\n%s", out.String())
	}
}

func TestRunBadInvocations(t *testing.T) {
	path := writeBaseline(t)
	cases := []struct {
		name  string
		args  []string
		stdin string
	}{
		{"missing baseline flag", nil, cannedBench},
		{"nonexistent baseline", []string{"-baseline", "does-not-exist.json"}, cannedBench},
		{"zero tolerance", []string{"-baseline", path, "-tolerance", "0"}, cannedBench},
		{"empty input", []string{"-baseline", path}, "no bench lines here\n"},
	}
	for _, tc := range cases {
		var out strings.Builder
		if code := run(tc.args, strings.NewReader(tc.stdin), &out, &out); code != 2 {
			t.Errorf("%s: exit = %d, want 2\n%s", tc.name, code, out.String())
		}
	}
}
