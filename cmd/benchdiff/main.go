// Command benchdiff compares a fresh `go test -bench` run against a
// recorded baseline (BENCH_floc.json, BENCH_service.json, ...) and
// exits non-zero when any benchmark regresses beyond the tolerance.
//
// Usage:
//
//	go test -run XXX -bench BenchmarkDecideAll ./internal/floc/ | benchdiff -baseline BENCH_floc.json
//	benchdiff -baseline BENCH_floc.json -input bench.out -tolerance 1.5
//
// The comparison is on ns/op. Benchmark names are matched after
// stripping the -GOMAXPROCS suffix go test appends on multi-core
// machines, so a baseline recorded at one core count checks runs at
// any other. Baseline entries absent from the input are reported but
// do not fail the run (partial -bench filters are normal); input
// benchmarks absent from the baseline are listed as unrecorded.
//
// Benchmark timings on shared CI runners are noisy, so the default
// tolerance is generous (+30%) and the CI step that runs this tool is
// advisory (continue-on-error). The tool's job is to surface order-of-
// magnitude regressions — an accidentally quadratic decide phase, a
// lock on the hot path — not 5% drift.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
)

type baseline struct {
	Suite      string `json:"suite"`
	Command    string `json:"command"`
	Recorded   string `json:"recorded"`
	Note       string `json:"note,omitempty"`
	Benchmarks []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

// benchLine matches go test -bench output:
//
//	BenchmarkDecideAll/workers=2-8   918   3851067 ns/op   166448 B/op   113 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

// procSuffix is the -GOMAXPROCS suffix appended on multi-core runs.
var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	baselinePath := flag.String("baseline", "", "recorded baseline JSON (required)")
	inputPath := flag.String("input", "-", "bench output to check ('-' = stdin)")
	tolerance := flag.Float64("tolerance", 1.30, "max allowed ns/op ratio current/baseline")
	flag.Parse()
	if *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline is required")
		flag.Usage()
		os.Exit(2)
	}
	if *tolerance <= 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: tolerance %v, want > 0\n", *tolerance)
		os.Exit(2)
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if *inputPath != "-" {
		f, err := os.Open(*inputPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	current, order, err := parseBench(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark lines in input")
		os.Exit(2)
	}

	recorded := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		recorded[b.Name] = b.NsPerOp
	}

	fmt.Printf("baseline %s (%s, recorded %s), tolerance %.2fx\n",
		*baselinePath, base.Suite, base.Recorded, *tolerance)
	regressions := 0
	for _, name := range order {
		ns := current[name]
		want, ok := recorded[name]
		if !ok {
			fmt.Printf("  %-45s %12.0f ns/op  (not in baseline)\n", name, ns)
			continue
		}
		ratio := ns / want
		verdict := "ok"
		if ratio > *tolerance {
			verdict = "REGRESSION"
			regressions++
		} else if ratio < 1/(*tolerance) {
			verdict = "improved"
		}
		fmt.Printf("  %-45s %12.0f ns/op  baseline %12.0f  ratio %.2fx  %s\n",
			name, ns, want, ratio, verdict)
	}
	for _, b := range base.Benchmarks {
		if _, ok := current[b.Name]; !ok {
			fmt.Printf("  %-45s (in baseline, not run)\n", b.Name)
		}
	}
	if regressions > 0 {
		fmt.Printf("benchdiff: %d regression(s) beyond %.2fx\n", regressions, *tolerance)
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}

// parseBench extracts name → ns/op from go test -bench output,
// normalizing away the -GOMAXPROCS name suffix. It returns the names
// in input order so the report is stable.
func parseBench(r io.Reader) (map[string]float64, []string, error) {
	out := map[string]float64{}
	var order []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := procSuffix.ReplaceAllString(m[1], "")
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
		}
		if _, dup := out[name]; !dup {
			order = append(order, name)
		}
		out[name] = ns
	}
	return out, order, sc.Err()
}
