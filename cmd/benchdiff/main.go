// Command benchdiff compares a fresh `go test -bench` run against a
// recorded baseline (BENCH_floc.json, BENCH_service.json, ...) and
// reports every benchmark's ratio to its recorded ns/op.
//
// Usage:
//
//	go test -run XXX -bench BenchmarkDecideAll ./internal/floc/ | benchdiff -baseline BENCH_floc.json
//	benchdiff -baseline BENCH_floc.json -input bench.out -tolerance 1.5 -fail
//
// The comparison is on ns/op. Benchmark names are matched after
// stripping the -GOMAXPROCS suffix go test appends on multi-core
// machines, so a baseline recorded at one core count checks runs at
// any other. Baseline entries absent from the input are reported but
// never fail the run (partial -bench filters are normal); input
// benchmarks absent from the baseline are listed as unrecorded.
//
// By default the tool is advisory: it prints the comparison and exits
// zero regardless. With -fail it exits 1 when any benchmark regresses
// beyond -tolerance, which is how CI gates the hot path. Benchmark
// timings on shared CI runners are noisy, so the default tolerance is
// generous (+30%) — the gate's job is to catch order-of-magnitude
// regressions (an accidentally quadratic decide phase, a lock on the
// hot path), not 5% drift.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
)

type baseline struct {
	Suite      string `json:"suite"`
	Command    string `json:"command"`
	Recorded   string `json:"recorded"`
	Note       string `json:"note,omitempty"`
	Benchmarks []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

// benchLine matches go test -bench output:
//
//	BenchmarkDecideAll/workers=2-8   918   3851067 ns/op   166448 B/op   113 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

// procSuffix is the -GOMAXPROCS suffix appended on multi-core runs.
var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with its edges injected, so the unit tests can drive the
// whole tool — flag parsing to exit code — on canned input.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "", "recorded baseline JSON (required)")
	inputPath := fs.String("input", "-", "bench output to check ('-' = stdin)")
	tolerance := fs.Float64("tolerance", 1.30, "max allowed ns/op ratio current/baseline")
	failOnRegression := fs.Bool("fail", false, "exit non-zero on regression (default: advisory report only)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *baselinePath == "" {
		fmt.Fprintln(stderr, "benchdiff: -baseline is required")
		fs.Usage()
		return 2
	}
	if *tolerance <= 0 {
		fmt.Fprintf(stderr, "benchdiff: tolerance %v, want > 0\n", *tolerance)
		return 2
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(stderr, "benchdiff: %s: %v\n", *baselinePath, err)
		return 2
	}

	in := stdin
	if *inputPath != "-" {
		f, err := os.Open(*inputPath)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	current, order, err := parseBench(in)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	if len(current) == 0 {
		fmt.Fprintln(stderr, "benchdiff: no benchmark lines in input")
		return 2
	}

	fmt.Fprintf(stdout, "baseline %s (%s, recorded %s), tolerance %.2fx\n",
		*baselinePath, base.Suite, base.Recorded, *tolerance)
	regressions := diff(base, current, order, *tolerance, stdout)
	if regressions > 0 {
		fmt.Fprintf(stdout, "benchdiff: %d regression(s) beyond %.2fx\n", regressions, *tolerance)
		if *failOnRegression {
			return 1
		}
		fmt.Fprintln(stdout, "benchdiff: advisory mode (-fail not set), not failing")
		return 0
	}
	fmt.Fprintln(stdout, "benchdiff: no regressions")
	return 0
}

// diff writes the per-benchmark comparison to out and returns how many
// benchmarks regressed beyond tolerance.
func diff(base baseline, current map[string]float64, order []string, tolerance float64, out io.Writer) int {
	recorded := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		recorded[b.Name] = b.NsPerOp
	}
	regressions := 0
	for _, name := range order {
		ns := current[name]
		want, ok := recorded[name]
		if !ok {
			fmt.Fprintf(out, "  %-45s %12.0f ns/op  (not in baseline)\n", name, ns)
			continue
		}
		ratio := ns / want
		verdict := "ok"
		if ratio > tolerance {
			verdict = "REGRESSION"
			regressions++
		} else if ratio < 1/tolerance {
			verdict = "improved"
		}
		fmt.Fprintf(out, "  %-45s %12.0f ns/op  baseline %12.0f  ratio %.2fx  %s\n",
			name, ns, want, ratio, verdict)
	}
	for _, b := range base.Benchmarks {
		if _, ok := current[b.Name]; !ok {
			fmt.Fprintf(out, "  %-45s (in baseline, not run)\n", b.Name)
		}
	}
	return regressions
}

// parseBench extracts name → ns/op from go test -bench output,
// normalizing away the -GOMAXPROCS name suffix. It returns the names
// in input order so the report is stable.
func parseBench(r io.Reader) (map[string]float64, []string, error) {
	out := map[string]float64{}
	var order []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := procSuffix.ReplaceAllString(m[1], "")
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
		}
		if _, dup := out[name]; !dup {
			order = append(order, name)
		}
		out[name] = ns
	}
	return out, order, sc.Err()
}
