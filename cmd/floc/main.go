// Command floc mines δ-clusters from a delimited matrix file with the
// FLOC algorithm and prints each discovered cluster's membership and
// statistics.
//
// Usage:
//
//	floc -k 10 -delta 15 [flags] matrix.csv
//
// The input is CSV by default (-tsv for tab-separated); empty cells
// and cells equal to -missing are missing entries. With -header the
// first record holds column labels; with -rowlabels the first field
// of each record is a row label. With -quarantine, malformed records
// are skipped (reported on stderr) instead of failing the load. A file
// starting with the DCMX magic (datagen -binary, or a deltaserve
// binary upload body) is loaded through the checksummed binary path
// instead; the text-dialect flags do not apply to it.
//
// # Interruption, checkpoints and resume
//
// A run interrupted by SIGINT, SIGTERM or an expired -deadline budget
// stops within one iteration,
// prints the best-so-far clustering, flushes a final checkpoint to
// the -checkpoint path (when given), and exits with status 3. With
// -checkpoint the run also snapshots every -checkpoint-every
// improving iterations; -resume continues from such a snapshot and —
// same seed, same data — reproduces the uninterrupted run bit for
// bit. -fingerprint prints a deterministic run fingerprint instead of
// the human-readable report, so CI can diff a resumed run against a
// full one.
//
// # Warm-start reclustering
//
// -warm-start seeds the run from another run's checkpoint instead of
// cold seeding — the live-data path: recluster a matrix that gained
// rows or changed entries since the parent run, paying only the
// corrective iterations. The clustering flags (-k, -delta, -order,
// -seeding, …) must match the parent run's; the seed is taken from
// the checkpoint. When rows were appended since, -warm-rows says how
// many rows the matrix had when the checkpoint was written; new rows
// enter by best-residue placement before the first iteration. On an
// unchanged matrix a warm-started run reproduces the parent bit for
// bit.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"

	deltacluster "deltacluster"
)

func main() {
	var (
		k         = flag.Int("k", 10, "number of clusters to maintain")
		delta     = flag.Float64("delta", 0, "residue budget δ (required; ≈2.5–3× the residue of a genuine cluster)")
		alpha     = flag.Float64("alpha", 0, "occupancy threshold α for matrices with missing values (0 disables)")
		seed      = flag.Int64("seed", 1, "random seed")
		order     = flag.String("order", "weighted", "action order: fixed | random | weighted")
		seedMode  = flag.String("seeding", "auto", "seeding: random | anchored | auto")
		gainMode  = flag.String("gain-mode", "exact", "decide-phase scoring: exact (bit-identical baseline) | incremental (O(row) aggregate ranking, exact kernel still applies every action)")
		maxIter   = flag.Int("maxiter", 200, "iteration cap")
		workers   = flag.Int("workers", 0, "goroutines for the decide phase (0 = all cores); the result is bit-identical at any value")
		tsv       = flag.Bool("tsv", false, "tab-separated input")
		header    = flag.Bool("header", false, "first record holds column labels")
		rowLabels = flag.Bool("rowlabels", false, "first field of each record is a row label")
		missing   = flag.String("missing", "", "token marking missing entries (empty cells always count)")
		all       = flag.Bool("all", false, "print all k clusters, not only the significant ones")
		logT      = flag.Bool("log", false, "log-transform the matrix first (amplification → shifting coherence)")

		deadline    = flag.Duration("deadline", 0, "wall-clock budget for the run; when it expires the run stops within one iteration, prints the best-so-far clustering and exits 3 (0 = none)")
		quarantine  = flag.Bool("quarantine", false, "skip malformed input records instead of failing the load")
		checkpoint  = flag.String("checkpoint", "", "write resumable checkpoints to this file")
		ckEvery     = flag.Int("checkpoint-every", 1, "checkpoint every N improving iterations (with -checkpoint)")
		resume      = flag.String("resume", "", "resume from a checkpoint file written by -checkpoint")
		warmStart   = flag.String("warm-start", "", "warm-start from a parent run's checkpoint file; the matrix may have grown or changed since")
		warmRows    = flag.Int("warm-rows", 0, "rows the matrix had when the -warm-start checkpoint was written (0 = all current rows)")
		fingerprint = flag.Bool("fingerprint", false, "print a deterministic run fingerprint instead of the report")
	)
	flag.Parse()
	if flag.NArg() != 1 || *delta <= 0 {
		fmt.Fprintln(os.Stderr, "usage: floc -k K -delta D [flags] matrix.csv")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *k < 1 {
		usageError("-k must be at least 1 (got %d)", *k)
	}
	if *maxIter < 1 {
		usageError("-maxiter must be at least 1 (got %d)", *maxIter)
	}
	if *alpha < 0 || *alpha > 1 {
		usageError("-alpha must be within [0, 1] (got %g)", *alpha)
	}
	if *ckEvery < 1 {
		usageError("-checkpoint-every must be a positive iteration count (got %d)", *ckEvery)
	}
	if *deadline < 0 {
		usageError("-deadline must not be negative (got %v)", *deadline)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer func() { _ = f.Close() }() // read-only; nothing to recover from a close error

	m, err := loadMatrix(f, *header, *rowLabels, *missing, *quarantine, *tsv)
	if err != nil {
		fatal(err)
	}
	if *logT {
		if m, err = deltacluster.LogTransform(m); err != nil {
			fatal(err)
		}
	}

	cfg := deltacluster.DefaultFLOCConfig(*k, *delta)
	cfg.Seed = *seed
	cfg.MaxIterations = *maxIter
	cfg.Constraints.Occupancy = *alpha
	if *workers < 0 {
		fatal(fmt.Errorf("-workers = %d, want ≥ 0", *workers))
	}
	cfg.Workers = *workers
	switch *order {
	case "fixed":
		cfg.Order = deltacluster.FixedOrder
	case "random":
		cfg.Order = deltacluster.RandomOrder
	case "weighted":
		cfg.Order = deltacluster.WeightedRandomOrder
	default:
		fatal(fmt.Errorf("unknown order %q", *order))
	}
	switch *seedMode {
	case "random":
		cfg.SeedMode = deltacluster.SeedRandom
	case "anchored":
		cfg.SeedMode = deltacluster.SeedAnchored
	case "auto":
		cfg.SeedMode = deltacluster.SeedAuto
	default:
		fatal(fmt.Errorf("unknown seeding %q", *seedMode))
	}
	switch *gainMode {
	case "exact":
		cfg.GainMode = deltacluster.GainExact
	case "incremental":
		cfg.GainMode = deltacluster.GainIncremental
	default:
		fatal(fmt.Errorf("unknown gain mode %q", *gainMode))
	}

	var runOpts deltacluster.FLOCRunOptions
	if *resume != "" && *warmStart != "" {
		usageError("-resume and -warm-start are mutually exclusive")
	}
	if *warmRows < 0 {
		usageError("-warm-rows must not be negative (got %d)", *warmRows)
	}
	if *resume != "" {
		ck, err := deltacluster.ReadCheckpointFile(*resume)
		if err != nil {
			fatal(err)
		}
		runOpts.Resume = ck
		fmt.Fprintf(os.Stderr, "floc: resuming from %s at iteration %d\n", *resume, ck.Iterations)
	}
	if *warmStart != "" {
		ck, err := deltacluster.ReadCheckpointFile(*warmStart)
		if err != nil {
			fatal(err)
		}
		// A warm run continues the parent's seeded trajectory; the other
		// clustering flags must match the parent's or the engine rejects
		// the checkpoint as foreign.
		cfg.Seed = ck.Seed
		runOpts.WarmStart = &deltacluster.FLOCWarmStart{Checkpoint: ck, ParentRows: *warmRows}
		fmt.Fprintf(os.Stderr, "floc: warm-starting from %s at iteration %d\n", *warmStart, ck.Iterations)
	}
	if *checkpoint != "" {
		runOpts.CheckpointEvery = *ckEvery
		runOpts.OnCheckpoint = func(ck *deltacluster.FLOCCheckpoint) error {
			return deltacluster.WriteCheckpointFile(*checkpoint, ck)
		}
	}

	// SIGINT/SIGTERM cancel the run's context; the engine stops within
	// one iteration and returns its best-so-far clustering as a
	// *FLOCPartialResult. A second signal kills the process outright
	// (stop() below restores default handling before the slow prints).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *deadline > 0 {
		// The budget rides the same RunContext plumbing as the
		// signals: expiry stops the run at the next iteration boundary
		// with a *FLOCPartialResult whose Reason is "deadline".
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	res, err := deltacluster.FLOCWithOptions(ctx, m, cfg, runOpts)
	if err != nil {
		var pr *deltacluster.FLOCPartialResult
		if !errors.As(err, &pr) {
			fatal(err)
		}
		stop()
		fmt.Fprintf(os.Stderr, "floc: run stopped (%s) after %d iterations\n",
			pr.Reason, pr.Result.Iterations)
		if *checkpoint != "" && pr.Checkpoint != nil {
			if werr := deltacluster.WriteCheckpointFile(*checkpoint, pr.Checkpoint); werr != nil {
				fmt.Fprintf(os.Stderr, "floc: writing final checkpoint: %v\n", werr)
			} else {
				fmt.Fprintf(os.Stderr, "floc: checkpoint flushed to %s (resume with -resume %s)\n",
					*checkpoint, *checkpoint)
			}
		}
		report(m, pr.Result, cfg, *all, *fingerprint)
		os.Exit(3)
	}
	report(m, res, cfg, *all, *fingerprint)
}

// loadMatrix reads the input matrix, sniffing the first bytes for the
// DCMX magic: a binary matrix (datagen -binary, or a saved deltaserve
// upload body) loads through the checksummed binary decoder, anything
// else through the delimited-text reader with the dialect flags.
func loadMatrix(f *os.File, header, rowLabels bool, missing string, quarantine, tsv bool) (*deltacluster.Matrix, error) {
	br := bufio.NewReader(f)
	if sniff, _ := br.Peek(4); string(sniff) == "DCMX" {
		return deltacluster.ReadMatrixBinary(br, 0)
	}
	opts := deltacluster.IOOptions{
		Header: header, RowLabels: rowLabels, MissingToken: missing,
		Quarantine: quarantine,
	}
	if tsv {
		opts.Comma = '\t'
	}
	m, qrep, err := deltacluster.ReadMatrixReport(br, opts)
	if qrep != nil && len(qrep.Quarantined) > 0 {
		fmt.Fprintf(os.Stderr, "floc: quarantined %d of %d input records:\n",
			len(qrep.Quarantined), qrep.Total)
		for _, q := range qrep.Quarantined {
			fmt.Fprintf(os.Stderr, "  record %d: %s\n", q.Record, q.Reason)
		}
	}
	return m, err
}

// report prints either the human-readable cluster report or, with
// fingerprint set, a deterministic byte-stable summary (no durations,
// no volume sort) that two equivalent runs reproduce exactly.
func report(m *deltacluster.Matrix, res *deltacluster.FLOCResult, cfg deltacluster.FLOCConfig, all, fingerprint bool) {
	if fingerprint {
		printFingerprint(res)
		return
	}
	clusters := res.Clusters
	if !all {
		clusters = deltacluster.Significant(clusters, cfg.MaxResidue)
	}
	sort.Slice(clusters, func(a, b int) bool { return clusters[a].Volume() > clusters[b].Volume() })

	fmt.Printf("matrix %dx%d (%.1f%% specified), k=%d, δ=%g, %d iterations, %v\n",
		m.Rows(), m.Cols(), 100*m.FillFraction(), cfg.K, cfg.MaxResidue, res.Iterations, res.Duration.Round(1e6))
	fmt.Printf("%d cluster(s)%s:\n\n", len(clusters), map[bool]string{true: "", false: " (significant)"}[all])
	for i, c := range clusters {
		st := c.Stats()
		fmt.Printf("cluster %d: %d rows x %d cols, volume %d, residue %.4g, diameter %.4g\n",
			i+1, st.NumRows, st.NumCols, st.Volume, st.Residue, st.Diameter)
		spec := c.Spec()
		fmt.Printf("  rows: %s\n", labelList(spec.Rows, m.RowLabels))
		fmt.Printf("  cols: %s\n", labelList(spec.Cols, m.ColLabels))
	}
}

// printFingerprint emits every determinism-relevant quantity of the
// run at full float precision. Two runs printing the same fingerprint
// went through bit-identical optimization states.
func printFingerprint(res *deltacluster.FLOCResult) {
	fmt.Printf("avg_residue %.17g\n", res.AvgResidue)
	fmt.Printf("iterations %d\n", res.Iterations)
	fmt.Printf("actions %d\n", res.ActionsApplied)
	fmt.Printf("gain_evals %d\n", res.GainEvaluations)
	fmt.Printf("trace")
	for _, v := range res.ResidueTrace {
		fmt.Printf(" %.17g", v)
	}
	fmt.Println()
	for i, c := range res.Clusters {
		spec := c.Spec()
		fmt.Printf("cluster %d rows %v cols %v residue %.17g\n", i, spec.Rows, spec.Cols, c.Residue())
	}
}

func labelList(idx []int, labels []string) string {
	out := ""
	for i, x := range idx {
		if i > 0 {
			out += " "
		}
		if labels != nil {
			out += labels[x]
		} else {
			out += fmt.Sprint(x)
		}
	}
	return out
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "floc: "+format+"\n", args...)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "floc:", err)
	os.Exit(1)
}
