// Command floc mines δ-clusters from a delimited matrix file with the
// FLOC algorithm and prints each discovered cluster's membership and
// statistics.
//
// Usage:
//
//	floc -k 10 -delta 15 [flags] matrix.csv
//
// The input is CSV by default (-tsv for tab-separated); empty cells
// and cells equal to -missing are missing entries. With -header the
// first record holds column labels; with -rowlabels the first field
// of each record is a row label.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	deltacluster "deltacluster"
)

func main() {
	var (
		k         = flag.Int("k", 10, "number of clusters to maintain")
		delta     = flag.Float64("delta", 0, "residue budget δ (required; ≈2.5–3× the residue of a genuine cluster)")
		alpha     = flag.Float64("alpha", 0, "occupancy threshold α for matrices with missing values (0 disables)")
		seed      = flag.Int64("seed", 1, "random seed")
		order     = flag.String("order", "weighted", "action order: fixed | random | weighted")
		seedMode  = flag.String("seeding", "auto", "seeding: random | anchored | auto")
		maxIter   = flag.Int("maxiter", 200, "iteration cap")
		tsv       = flag.Bool("tsv", false, "tab-separated input")
		header    = flag.Bool("header", false, "first record holds column labels")
		rowLabels = flag.Bool("rowlabels", false, "first field of each record is a row label")
		missing   = flag.String("missing", "", "token marking missing entries (empty cells always count)")
		all       = flag.Bool("all", false, "print all k clusters, not only the significant ones")
		logT      = flag.Bool("log", false, "log-transform the matrix first (amplification → shifting coherence)")
	)
	flag.Parse()
	if flag.NArg() != 1 || *delta <= 0 {
		fmt.Fprintln(os.Stderr, "usage: floc -k K -delta D [flags] matrix.csv")
		flag.PrintDefaults()
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer func() { _ = f.Close() }() // read-only; nothing to recover from a close error

	opts := deltacluster.IOOptions{Header: *header, RowLabels: *rowLabels, MissingToken: *missing}
	if *tsv {
		opts.Comma = '\t'
	}
	m, err := deltacluster.ReadMatrix(f, opts)
	if err != nil {
		fatal(err)
	}
	if *logT {
		if m, err = deltacluster.LogTransform(m); err != nil {
			fatal(err)
		}
	}

	cfg := deltacluster.DefaultFLOCConfig(*k, *delta)
	cfg.Seed = *seed
	cfg.MaxIterations = *maxIter
	cfg.Constraints.Occupancy = *alpha
	switch *order {
	case "fixed":
		cfg.Order = deltacluster.FixedOrder
	case "random":
		cfg.Order = deltacluster.RandomOrder
	case "weighted":
		cfg.Order = deltacluster.WeightedRandomOrder
	default:
		fatal(fmt.Errorf("unknown order %q", *order))
	}
	switch *seedMode {
	case "random":
		cfg.SeedMode = deltacluster.SeedRandom
	case "anchored":
		cfg.SeedMode = deltacluster.SeedAnchored
	case "auto":
		cfg.SeedMode = deltacluster.SeedAuto
	default:
		fatal(fmt.Errorf("unknown seeding %q", *seedMode))
	}

	res, err := deltacluster.FLOC(m, cfg)
	if err != nil {
		fatal(err)
	}
	clusters := res.Clusters
	if !*all {
		clusters = deltacluster.Significant(clusters, cfg.MaxResidue)
	}
	sort.Slice(clusters, func(a, b int) bool { return clusters[a].Volume() > clusters[b].Volume() })

	fmt.Printf("matrix %dx%d (%.1f%% specified), k=%d, δ=%g, %d iterations, %v\n",
		m.Rows(), m.Cols(), 100*m.FillFraction(), *k, *delta, res.Iterations, res.Duration.Round(1e6))
	fmt.Printf("%d cluster(s)%s:\n\n", len(clusters), map[bool]string{true: "", false: " (significant)"}[*all])
	for i, c := range clusters {
		st := c.Stats()
		fmt.Printf("cluster %d: %d rows x %d cols, volume %d, residue %.4g, diameter %.4g\n",
			i+1, st.NumRows, st.NumCols, st.Volume, st.Residue, st.Diameter)
		spec := c.Spec()
		fmt.Printf("  rows: %s\n", labelList(spec.Rows, m.RowLabels))
		fmt.Printf("  cols: %s\n", labelList(spec.Cols, m.ColLabels))
	}
}

func labelList(idx []int, labels []string) string {
	out := ""
	for i, x := range idx {
		if i > 0 {
			out += " "
		}
		if labels != nil {
			out += labels[x]
		} else {
			out += fmt.Sprint(x)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "floc:", err)
	os.Exit(1)
}
