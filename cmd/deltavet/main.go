// Command deltavet is the multichecker for this repository's custom
// correctness analyzers. It type-checks the module from source and
// runs:
//
//	maporder         – no unordered map iteration in deterministic packages
//	seededrand       – all randomness through the injected seeded RNG
//	floatcmp         – no raw ==/!= between floats in deterministic packages
//	ctxfirst         – context.Context first in signatures, never in struct fields
//	residueinvariant – residue/base caches have a single approved writer set
//
// By default it also shells out to `go vet` first so one command
// gives the full static verdict. Usage:
//
//	go run ./cmd/deltavet ./...
//
// Exit status is 0 when no analyzer reports a finding, 1 otherwise,
// and 2 on loading/usage errors. Findings are printed one per line as
// file:line:col: message [analyzer].
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"deltacluster/internal/analysis"
	"deltacluster/internal/analysis/ctxfirst"
	"deltacluster/internal/analysis/floatcmp"
	"deltacluster/internal/analysis/maporder"
	"deltacluster/internal/analysis/residueinvariant"
	"deltacluster/internal/analysis/seededrand"
)

var analyzers = []*analysis.Analyzer{
	maporder.Analyzer,
	seededrand.Analyzer,
	floatcmp.Analyzer,
	ctxfirst.Analyzer,
	residueinvariant.Analyzer,
}

func main() {
	novet := flag.Bool("novet", false, "skip running `go vet` before the custom analyzers")
	list := flag.Bool("help-analyzers", false, "print the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: deltavet [flags] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the repository's determinism and residue-invariant analyzers\n")
		fmt.Fprintf(os.Stderr, "over the given package patterns (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if !*novet {
		vet := exec.Command("go", append([]string{"vet"}, patterns...)...)
		vet.Stdout = os.Stdout
		vet.Stderr = os.Stderr
		if err := vet.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "deltavet: go vet failed: %v\n", err)
			os.Exit(1)
		}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "deltavet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deltavet: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deltavet: %v\n", err)
		os.Exit(2)
	}
	cwd, err := os.Getwd()
	if err != nil {
		cwd = ""
	}
	for _, d := range diags {
		pos := loader.Fset().Position(d.Pos)
		name := pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s [%s]\n", name, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "deltavet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
