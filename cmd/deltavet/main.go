// Command deltavet is the multichecker for this repository's custom
// correctness analyzers. It type-checks the module from source and
// runs:
//
//	maporder         – no unordered map iteration in deterministic packages
//	seededrand       – all randomness through the injected seeded RNG
//	floatcmp         – no raw ==/!= between floats in deterministic packages
//	ctxfirst         – context.Context first in signatures, never in struct fields
//	residueinvariant – residue/base caches have a single approved writer set
//	hotalloc         – no allocation-inducing constructs on deltavet:hotpath functions
//	derivedcache     – derived-state types mutated only by registered writers
//	goroutinelife    – every goroutine launch carries lifecycle evidence
//	walltime         – no wall-clock dependence in deterministic packages
//	checkpointerr    – no silently discarded errors on the durability chain
//
// By default it also shells out to `go vet` first so one command
// gives the full static verdict. Usage:
//
//	go run ./cmd/deltavet ./...
//
// Modes beyond the default text report:
//
//	-json            machine-readable findings (the CI analysis job's artifact)
//	-fix             apply each finding's first suggested fix and rewrite files
//	-baseline FILE   grandfathered findings to tolerate (default: deltavet.baseline
//	                 at the module root, when present)
//	-write-baseline  regenerate the baseline from the current findings
//
// Exit status is 0 when no non-baselined finding remains, 1 otherwise,
// and 2 on loading/usage errors. Text findings are printed one per
// line as file:line:col: message [analyzer].
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"deltacluster/internal/analysis"
	"deltacluster/internal/analysis/checkpointerr"
	"deltacluster/internal/analysis/ctxfirst"
	"deltacluster/internal/analysis/derivedcache"
	"deltacluster/internal/analysis/floatcmp"
	"deltacluster/internal/analysis/goroutinelife"
	"deltacluster/internal/analysis/hotalloc"
	"deltacluster/internal/analysis/maporder"
	"deltacluster/internal/analysis/residueinvariant"
	"deltacluster/internal/analysis/seededrand"
	"deltacluster/internal/analysis/walltime"
)

var analyzers = []*analysis.Analyzer{
	maporder.Analyzer,
	seededrand.Analyzer,
	floatcmp.Analyzer,
	ctxfirst.Analyzer,
	residueinvariant.Analyzer,
	hotalloc.Analyzer,
	derivedcache.Analyzer,
	goroutinelife.Analyzer,
	walltime.Analyzer,
	checkpointerr.Analyzer,
}

// defaultBaseline is the checked-in baseline filename, resolved
// against the module root.
const defaultBaseline = "deltavet.baseline"

// finding is one diagnostic in the JSON report.
type finding struct {
	Analyzer  string `json:"analyzer"`
	File      string `json:"file"` // slash-relative to the module root
	Line      int    `json:"line"`
	Col       int    `json:"col"`
	Message   string `json:"message"`
	Baselined bool   `json:"baselined"`
	Fixable   bool   `json:"fixable"`
}

// report is the top-level JSON document.
type report struct {
	Findings  []finding `json:"findings"`
	Total     int       `json:"total"`
	Baselined int       `json:"baselined"`
	New       int       `json:"new"` // total - baselined; the gate fails when > 0
}

func main() {
	os.Exit(run())
}

func run() int {
	novet := flag.Bool("novet", false, "skip running `go vet` before the custom analyzers")
	list := flag.Bool("help-analyzers", false, "print the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON report on stdout")
	fix := flag.Bool("fix", false, "apply each finding's first suggested fix and rewrite the files")
	baselinePath := flag.String("baseline", "", "baseline file of grandfathered findings (default: deltavet.baseline at the module root, when present)")
	writeBaseline := flag.Bool("write-baseline", false, "regenerate the baseline file from the current findings and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: deltavet [flags] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the repository's determinism, hot-path and lifecycle analyzers\n")
		fmt.Fprintf(os.Stderr, "over the given package patterns (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if !*novet && !*jsonOut {
		vet := exec.Command("go", append([]string{"vet"}, patterns...)...)
		vet.Stdout = os.Stdout
		vet.Stderr = os.Stderr
		if err := vet.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "deltavet: go vet failed: %v\n", err)
			return 1
		}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "deltavet: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deltavet: %v\n", err)
		return 2
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deltavet: %v\n", err)
		return 2
	}

	if *fix {
		return applyFixes(loader, diags)
	}

	// Resolve the baseline: explicit flag, else the checked-in default
	// when it exists.
	var baseline *analysis.Baseline
	blPath := *baselinePath
	if blPath == "" {
		p := filepath.Join(loader.ModRoot, defaultBaseline)
		if _, err := os.Stat(p); err == nil {
			blPath = p
		}
	}
	if blPath != "" && !*writeBaseline {
		data, err := os.ReadFile(blPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deltavet: %v\n", err)
			return 2
		}
		baseline, err = analysis.ParseBaseline(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deltavet: %s: %v\n", blPath, err)
			return 2
		}
	}

	rep := buildReport(loader, diags, baseline)

	if *writeBaseline {
		if blPath == "" {
			blPath = filepath.Join(loader.ModRoot, defaultBaseline)
		}
		entries := make([]string, 0, len(rep.Findings))
		for _, f := range rep.Findings {
			entries = append(entries, analysis.BaselineEntry(f.Analyzer, f.File, f.Message))
		}
		if err := os.WriteFile(blPath, analysis.FormatBaseline(entries), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "deltavet: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "deltavet: wrote %d finding(s) to %s\n", len(rep.Findings), blPath)
		return 0
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "deltavet: %v\n", err)
			return 2
		}
	} else {
		for _, f := range rep.Findings {
			suffix := ""
			if f.Baselined {
				suffix = " (baselined)"
			}
			fmt.Printf("%s:%d:%d: %s [%s]%s\n", f.File, f.Line, f.Col, f.Message, f.Analyzer, suffix)
		}
	}
	if rep.New > 0 {
		fmt.Fprintf(os.Stderr, "deltavet: %d new finding(s) (%d baselined) in %d package(s)\n",
			rep.New, rep.Baselined, len(pkgs))
		return 1
	}
	if rep.Baselined > 0 && !*jsonOut {
		fmt.Fprintf(os.Stderr, "deltavet: clean apart from %d baselined finding(s)\n", rep.Baselined)
	}
	return 0
}

// buildReport renders diagnostics as module-root-relative findings and
// marks the baselined ones.
func buildReport(loader *analysis.Loader, diags []analysis.Diagnostic, baseline *analysis.Baseline) report {
	rep := report{Findings: []finding{}}
	for _, d := range diags {
		pos := loader.Fset().Position(d.Pos)
		name := pos.Filename
		if rel, err := filepath.Rel(loader.ModRoot, name); err == nil {
			name = filepath.ToSlash(rel)
		}
		f := finding{
			Analyzer:  d.Analyzer,
			File:      name,
			Line:      pos.Line,
			Col:       pos.Column,
			Message:   d.Message,
			Baselined: baseline.Contains(d.Analyzer, name, d.Message),
			Fixable:   len(d.SuggestedFixes) > 0,
		}
		rep.Findings = append(rep.Findings, f)
		rep.Total++
		if f.Baselined {
			rep.Baselined++
		}
	}
	rep.New = rep.Total - rep.Baselined
	return rep
}

// applyFixes rewrites every file touched by a first suggested fix.
// Re-run deltavet afterwards for the residual verdict; the analyzers'
// idempotence contract guarantees a second -fix run is a no-op.
func applyFixes(loader *analysis.Loader, diags []analysis.Diagnostic) int {
	fixed, err := analysis.ApplyFixes(loader.Fset(), diags)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deltavet: %v\n", err)
		return 2
	}
	if len(fixed) == 0 {
		fmt.Fprintln(os.Stderr, "deltavet: no applicable fixes")
		return 0
	}
	fixable := 0
	for _, d := range diags {
		if len(d.SuggestedFixes) > 0 {
			fixable++
		}
	}
	names := make([]string, 0, len(fixed))
	for name := range fixed {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := os.WriteFile(name, fixed[name], 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "deltavet: %v\n", err)
			return 2
		}
		rel := name
		if r, err := filepath.Rel(loader.ModRoot, name); err == nil {
			rel = filepath.ToSlash(r)
		}
		fmt.Printf("fixed %s\n", rel)
	}
	fmt.Fprintf(os.Stderr, "deltavet: applied fixes for %d finding(s) across %d file(s); re-run deltavet to verify\n",
		fixable, len(fixed))
	return 0
}
