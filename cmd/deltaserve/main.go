// Command deltaserve runs the asynchronous δ-cluster job service: an
// HTTP JSON API over a bounded worker pool, with explicit
// backpressure, per-job deadlines, TTL-evicted results and graceful
// drain.
//
// Usage:
//
//	deltaserve [-addr :8080] [-workers 4] [-queue 64] [-ttl 15m]
//	           [-deadline 0] [-max-deadline 0] [-checkpoint-dir DIR]
//	           [-seed 1] [-drain-timeout 30s]
//
// # Lifecycle
//
// SIGINT or SIGTERM begins a graceful drain: new submissions are
// rejected with 503, queued-but-unstarted jobs are cancelled, and
// running jobs get -drain-timeout to finish. Jobs still running when
// the budget expires are context-cancelled (stopping within one
// engine iteration) and their best-so-far FLOC checkpoints are
// flushed to -checkpoint-dir, resumable with `floc -resume`. The
// status endpoints keep serving during the drain so clients can
// observe the final states; the process then exits 0. A second
// signal kills the process immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"deltacluster/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 4, "worker pool size (max concurrently running jobs)")
		queueCap     = flag.Int("queue", 64, "queue capacity; a full queue returns 429 + Retry-After")
		ttl          = flag.Duration("ttl", 15*time.Minute, "how long finished jobs stay readable")
		deadline     = flag.Duration("deadline", 0, "default per-job run deadline (0 = none)")
		maxDeadline  = flag.Duration("max-deadline", 0, "hard cap on any job's deadline (0 = none)")
		ckDir        = flag.String("checkpoint-dir", "", "flush interrupted FLOC job checkpoints here")
		seed         = flag.Int64("seed", 1, "job-ID RNG seed (equal seeds issue equal ID sequences)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for running jobs on shutdown")
		quiet        = flag.Bool("quiet", false, "suppress lifecycle logging")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: deltaserve [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *workers < 1 {
		usageError("-workers must be at least 1 (got %d)", *workers)
	}
	if *queueCap < 1 {
		usageError("-queue must be at least 1 (got %d)", *queueCap)
	}
	if *ttl <= 0 {
		usageError("-ttl must be a positive duration (got %v)", *ttl)
	}
	if *deadline < 0 {
		usageError("-deadline must not be negative (got %v)", *deadline)
	}
	if *maxDeadline < 0 {
		usageError("-max-deadline must not be negative (got %v)", *maxDeadline)
	}
	if *drainTimeout <= 0 {
		usageError("-drain-timeout must be a positive duration (got %v)", *drainTimeout)
	}
	if *ckDir != "" {
		if err := os.MkdirAll(*ckDir, 0o755); err != nil {
			fatal(fmt.Errorf("creating -checkpoint-dir: %w", err))
		}
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	svc := service.New(service.Options{
		Workers:         *workers,
		QueueCap:        *queueCap,
		TTL:             *ttl,
		Seed:            *seed,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		CheckpointDir:   *ckDir,
		Logf:            logf,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	logf("deltaserve: listening on %s (%d workers, queue %d, ttl %v)",
		*addr, *workers, *queueCap, *ttl)

	// First signal: drain. Second signal (after stop()): default
	// handling, i.e. immediate death.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	select {
	case err := <-serveErr:
		fatal(err)
	case <-ctx.Done():
		stop()
	}

	logf("deltaserve: signal received; draining (budget %v)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Shutdown(drainCtx); err != nil {
		logf("deltaserve: drain budget expired; interrupted jobs were cancelled: %v", err)
	}

	// The pool is stopped; now close the listener, giving in-flight
	// status polls a moment to complete.
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := httpSrv.Shutdown(httpCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logf("deltaserve: closing listener: %v", err)
	}
	logf("deltaserve: drained, exiting")
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "deltaserve: "+format+"\n", args...)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "deltaserve:", err)
	os.Exit(1)
}
