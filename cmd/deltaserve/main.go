// Command deltaserve runs the asynchronous δ-cluster job service: an
// HTTP JSON API over a bounded worker pool, with explicit
// backpressure, per-job deadlines, TTL-evicted results and graceful
// drain. With -coordinator it instead runs the multi-node front door:
// consistent-hash routing across backend deltaserve processes,
// checkpoint replication, and failover migration.
//
// Usage:
//
//	deltaserve [-addr :8080] [-workers 4] [-queue 64] [-ttl 15m]
//	           [-deadline 0] [-max-deadline 0] [-checkpoint-dir DIR]
//	           [-checkpoint-every 0] [-seed 1] [-drain-timeout 30s]
//	           [-read-header-timeout 10s] [-read-timeout 1m]
//	           [-write-timeout 5m] [-idle-timeout 2m]
//
//	deltaserve -coordinator -backends http://h1:8081,http://h2:8082
//	           [-replication 1] [-probe-interval 1s] [-fail-threshold 3]
//	           [-poll-interval 500ms] [-request-timeout 10s]
//
// # Lifecycle
//
// SIGINT or SIGTERM begins a graceful drain: new submissions are
// rejected with 503, queued-but-unstarted jobs are cancelled, and
// running jobs get -drain-timeout to finish. Jobs still running when
// the budget expires are context-cancelled (stopping within one
// engine iteration) and their best-so-far FLOC checkpoints are
// flushed to -checkpoint-dir, resumable with `floc -resume`. The
// status endpoints keep serving during the drain so clients can
// observe the final states; the process then exits 0. A second
// signal kills the process immediately.
//
// A backend can also be drained without a signal: POST /v1/admin/drain
// flips /readyz to 503 and checkpoint-stops its jobs, and a watching
// coordinator migrates them to live backends, resuming FLOC runs from
// the replicated checkpoints with zero recomputation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"deltacluster/internal/coord"
	"deltacluster/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 4, "worker pool size (max concurrently running jobs)")
		queueCap     = flag.Int("queue", 64, "queue capacity; a full queue returns 429 + Retry-After")
		ttl          = flag.Duration("ttl", 15*time.Minute, "how long finished jobs stay readable")
		deadline     = flag.Duration("deadline", 0, "default per-job run deadline (0 = none)")
		maxDeadline  = flag.Duration("max-deadline", 0, "hard cap on any job's deadline (0 = none)")
		ckDir        = flag.String("checkpoint-dir", "", "flush interrupted FLOC job checkpoints here")
		ckEvery      = flag.Int("checkpoint-every", 0, "cut a resumable FLOC checkpoint every N improving iterations (0 = only when interrupted); required for coordinator replication")
		seed         = flag.Int64("seed", 1, "job-ID RNG seed (equal seeds issue equal ID sequences)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for running jobs on shutdown")
		quiet        = flag.Bool("quiet", false, "suppress lifecycle logging")

		// http.Server hardening: every phase of a connection is bounded,
		// so a slow-loris client cannot pin the accept loop.
		readHeaderTimeout = flag.Duration("read-header-timeout", 10*time.Second, "max time to read a request's headers")
		readTimeout       = flag.Duration("read-timeout", time.Minute, "max time to read a whole request, body included")
		writeTimeout      = flag.Duration("write-timeout", 5*time.Minute, "max time to write a response")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time between requests")

		// Coordinator mode.
		coordinator    = flag.Bool("coordinator", false, "run as a multi-node coordinator instead of a backend")
		backends       = flag.String("backends", "", "comma-separated backend base URLs (coordinator mode)")
		replication    = flag.Int("replication", 1, "checkpoint/metadata replicas per job beyond the owner (coordinator mode)")
		probeInterval  = flag.Duration("probe-interval", time.Second, "backend health-probe cadence (coordinator mode)")
		failThreshold  = flag.Int("fail-threshold", 3, "consecutive failures before a backend is down (coordinator mode)")
		pollInterval   = flag.Duration("poll-interval", 500*time.Millisecond, "job view/checkpoint sync cadence (coordinator mode)")
		requestTimeout = flag.Duration("request-timeout", 10*time.Second, "per-attempt timeout for backend calls (coordinator mode)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: deltaserve [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	for _, d := range []struct {
		name  string
		value time.Duration
	}{
		{"-read-header-timeout", *readHeaderTimeout},
		{"-read-timeout", *readTimeout},
		{"-write-timeout", *writeTimeout},
		{"-idle-timeout", *idleTimeout},
	} {
		if d.value <= 0 {
			usageError("%s must be a positive duration (got %v)", d.name, d.value)
		}
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	if *coordinator {
		runCoordinator(logf, *addr, coord.Options{
			Backends:       splitBackends(*backends),
			Replication:    *replication,
			ProbeInterval:  *probeInterval,
			FailThreshold:  *failThreshold,
			PollInterval:   *pollInterval,
			RequestTimeout: *requestTimeout,
			Seed:           *seed,
			TTL:            *ttl,
			Logf:           logf,
		}, serverTimeouts{*readHeaderTimeout, *readTimeout, *writeTimeout, *idleTimeout})
		return
	}

	if *workers < 1 {
		usageError("-workers must be at least 1 (got %d)", *workers)
	}
	if *queueCap < 1 {
		usageError("-queue must be at least 1 (got %d)", *queueCap)
	}
	if *ttl <= 0 {
		usageError("-ttl must be a positive duration (got %v)", *ttl)
	}
	if *deadline < 0 {
		usageError("-deadline must not be negative (got %v)", *deadline)
	}
	if *maxDeadline < 0 {
		usageError("-max-deadline must not be negative (got %v)", *maxDeadline)
	}
	if *ckEvery < 0 {
		usageError("-checkpoint-every must not be negative (got %d)", *ckEvery)
	}
	if *drainTimeout <= 0 {
		usageError("-drain-timeout must be a positive duration (got %v)", *drainTimeout)
	}
	if *ckDir != "" {
		if err := os.MkdirAll(*ckDir, 0o755); err != nil {
			fatal(fmt.Errorf("creating -checkpoint-dir: %w", err))
		}
	}

	svc := service.New(service.Options{
		Workers:         *workers,
		QueueCap:        *queueCap,
		TTL:             *ttl,
		Seed:            *seed,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		CheckpointDir:   *ckDir,
		CheckpointEvery: *ckEvery,
		Logf:            logf,
	})

	httpSrv := hardenedServer(*addr, svc.Handler(),
		serverTimeouts{*readHeaderTimeout, *readTimeout, *writeTimeout, *idleTimeout})

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	logf("deltaserve: listening on %s (%d workers, queue %d, ttl %v)",
		*addr, *workers, *queueCap, *ttl)

	// First signal: drain. Second signal (after stop()): default
	// handling, i.e. immediate death.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	select {
	case err := <-serveErr:
		fatal(err)
	case <-ctx.Done():
		stop()
	}

	logf("deltaserve: signal received; draining (budget %v)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Shutdown(drainCtx); err != nil {
		logf("deltaserve: drain budget expired; interrupted jobs were cancelled: %v", err)
	}

	// The pool is stopped; now close the listener, giving in-flight
	// status polls a moment to complete.
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := httpSrv.Shutdown(httpCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logf("deltaserve: closing listener: %v", err)
	}
	logf("deltaserve: drained, exiting")
}

// serverTimeouts carries the four connection bounds every deltaserve
// listener (backend or coordinator) applies.
type serverTimeouts struct {
	readHeader, read, write, idle time.Duration
}

func hardenedServer(addr string, h http.Handler, t serverTimeouts) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: t.readHeader,
		ReadTimeout:       t.read,
		WriteTimeout:      t.write,
		IdleTimeout:       t.idle,
	}
}

// runCoordinator is the -coordinator main: same signal-drain lifecycle
// as a backend, but shutdown only stops the coordinator's own probe
// and sync loops — backends drain on their own schedule.
func runCoordinator(logf func(string, ...any), addr string, opts coord.Options, t serverTimeouts) {
	if len(opts.Backends) == 0 {
		usageError("-coordinator requires -backends (comma-separated base URLs)")
	}
	c, err := coord.New(opts)
	if err != nil {
		fatal(err)
	}

	httpSrv := hardenedServer(addr, c.Handler(), t)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	logf("deltaserve: coordinator listening on %s (%d backends, replication %d)",
		addr, len(opts.Backends), opts.Replication)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		fatal(err)
	case <-ctx.Done():
		stop()
	}

	logf("deltaserve: signal received; stopping coordinator")
	stopCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Shutdown(stopCtx); err != nil {
		logf("deltaserve: coordinator shutdown: %v", err)
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := httpSrv.Shutdown(httpCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logf("deltaserve: closing listener: %v", err)
	}
	logf("deltaserve: drained, exiting")
}

func splitBackends(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "deltaserve: "+format+"\n", args...)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "deltaserve:", err)
	os.Exit(1)
}
