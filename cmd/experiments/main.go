// Command experiments regenerates the paper's evaluation tables and
// figures (Section 6). By default every experiment runs at a laptop
// scale; raise -scale toward 1 for the paper's sizes.
//
// Usage:
//
//	experiments [-run name[,name...]] [-scale 0.25] [-seed 1] [-trials 1] [-v]
//
// Experiment names: table1, microarray, table2, table3, fig8, fig9,
// fig10, table4, table5 (or "all").
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"deltacluster/internal/experiments"
)

func main() {
	var (
		run     = flag.String("run", "all", "comma-separated experiment names, or 'all'")
		scale   = flag.Float64("scale", 0.25, "workload scale (1 = paper size)")
		seed    = flag.Int64("seed", 1, "random seed")
		trials  = flag.Int("trials", 1, "trials to average randomized experiments over")
		verbose = flag.Bool("v", false, "progress output")
	)
	flag.Parse()

	opts := experiments.Options{
		Scale:   *scale,
		Seed:    *seed,
		Trials:  *trials,
		Verbose: *verbose,
		Out:     os.Stderr,
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]

	// A full campaign at paper scale runs for a long time; SIGINT or
	// SIGTERM stops cleanly between experiments, keeping every table
	// already rendered.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ran := 0
	for _, exp := range experiments.All() {
		if !all && !want[exp.Name] {
			continue
		}
		if ctx.Err() != nil {
			stop()
			fmt.Fprintf(os.Stderr, "experiments: interrupted; stopping before %s\n", exp.Name)
			os.Exit(3)
		}
		ran++
		tables, err := exp.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", exp.Name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if err := t.Render(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "rendering %s: %v\n", t.ID, err)
				os.Exit(1)
			}
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches %q; known: ", *run)
		for i, exp := range experiments.All() {
			if i > 0 {
				fmt.Fprint(os.Stderr, ", ")
			}
			fmt.Fprint(os.Stderr, exp.Name)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
}
