// Quickstart: the δ-cluster model on the paper's own worked examples.
//
// It walks through Figure 1 (three shifted vectors that no distance-
// based cluster model would group), the Figure 4 yeast excerpt with
// its perfect hidden δ-cluster, and a first FLOC run that finds that
// cluster automatically.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	deltacluster "deltacluster"
)

func main() {
	// --- Figure 1: coherence without proximity -----------------------
	vectors, err := deltacluster.MatrixFromRows([][]float64{
		{1, 5, 23, 12, 20},
		{11, 15, 33, 22, 30},
		{111, 115, 133, 122, 130},
	})
	if err != nil {
		log.Fatal(err)
	}
	all := []int{0, 1, 2}
	cols := []int{0, 1, 2, 3, 4}
	fmt.Println("Figure 1 — three vectors, far apart yet perfectly coherent:")
	fmt.Printf("  residue   = %.4f (0 ⇒ perfect shifting coherence)\n",
		deltacluster.Residue(vectors, all, cols))
	fmt.Printf("  diameter  = %.1f (they are far apart in space)\n",
		deltacluster.ClusterFromSpec(vectors, all, cols).Diameter())
	fmt.Printf("  PearsonR(d1,d2) = %.2f — correlation sees it too, but only globally\n\n",
		deltacluster.PearsonR(vectors.Row(0), vectors.Row(1)))

	// --- Figure 4: the yeast excerpt ---------------------------------
	yeast, err := deltacluster.MatrixFromRows([][]float64{
		{4392, 284, 4108, 280, 228}, // CTFC3
		{401, 281, 120, 275, 298},   // VPS8
		{318, 280, 37, 277, 215},    // EFB1
		{401, 292, 109, 580, 238},   // SSA1
		{2857, 285, 2576, 271, 226}, // FUN14
		{228, 290, 48, 285, 224},    // SPO7
		{538, 272, 266, 277, 236},   // MDM10
		{322, 288, 41, 278, 219},    // CYS3
		{312, 272, 40, 273, 232},    // DEP1
		{329, 296, 33, 274, 228},    // NTG1
	})
	if err != nil {
		log.Fatal(err)
	}
	yeast.RowLabels = []string{"CTFC3", "VPS8", "EFB1", "SSA1", "FUN14", "SPO7", "MDM10", "CYS3", "DEP1", "NTG1"}
	yeast.ColLabels = []string{"CH1I", "CH1B", "CH1D", "CH2I", "CH2B"}

	hidden := deltacluster.ClusterFromSpec(yeast, []int{1, 2, 7}, []int{0, 2, 4})
	fmt.Println("Figure 4 — genes {VPS8, EFB1, CYS3} on conditions {CH1I, CH1D, CH2B}:")
	fmt.Printf("  volume %d, residue %.4f — a perfect δ-cluster hiding in the matrix\n",
		hidden.Volume(), hidden.Residue())
	fmt.Printf("  object bases: VPS8=%.0f EFB1=%.0f CYS3=%.0f; cluster base %.0f\n\n",
		hidden.RowBase(1), hidden.RowBase(2), hidden.RowBase(7), hidden.Base())

	// --- Find it with FLOC -------------------------------------------
	cfg := deltacluster.DefaultFLOCConfig(2, 10) // 2 clusters, residue budget 10
	cfg.Seed = 4
	res, err := deltacluster.FLOC(yeast, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FLOC (k=2, δ=10) after %d iterations:\n", res.Iterations)
	for _, c := range deltacluster.Significant(res.Clusters, cfg.MaxResidue) {
		spec := c.Spec()
		fmt.Printf("  cluster: genes=%v conditions=%v residue=%.3f volume=%d\n",
			names(spec.Rows, yeast.RowLabels), names(spec.Cols, yeast.ColLabels),
			c.Residue(), c.Volume())
	}
}

func names(idx []int, labels []string) []string {
	out := make([]string, len(idx))
	for i, x := range idx {
		out[i] = labels[x]
	}
	return out
}
