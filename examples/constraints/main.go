// Constrained δ-clustering (the paper's Sections 3 and 4.3): the same
// workload mined under each of the optional constraints the model
// supports — a pairwise overlap budget (Cons_o), full object coverage
// (Cons_c), volume bounds (Cons_v) and the occupancy threshold α for
// matrices with missing values — showing how blocked actions keep
// every final clustering compliant.
//
// Run with:
//
//	go run ./examples/constraints
package main

import (
	"fmt"
	"log"

	deltacluster "deltacluster"
)

func main() {
	ds, err := deltacluster.GenerateSynthetic(deltacluster.SyntheticConfig{
		Rows: 400, Cols: 40, NumClusters: 6,
		VolumeMean: 200, VolumeVariance: 0, RowColRatio: 5,
		TargetResidue: 4, MissingFraction: 0.05,
	}, 17)
	if err != nil {
		log.Fatal(err)
	}
	m := ds.Matrix
	fmt.Printf("workload: %dx%d matrix, %.0f%% specified, %d embedded clusters\n\n",
		m.Rows(), m.Cols(), 100*m.FillFraction(), len(ds.Embedded))

	base := func() deltacluster.FLOCConfig {
		cfg := deltacluster.DefaultFLOCConfig(8, 15)
		cfg.Seed = 23
		return cfg
	}

	run := func(name string, cfg deltacluster.FLOCConfig, check func([]*deltacluster.Cluster) string) {
		res, err := deltacluster.FLOC(m, cfg)
		if err != nil {
			log.Fatal(err)
		}
		// Constraints trade coherence for compliance (forcing every
		// object into a cluster, for instance, dilutes all of them),
		// so summarize the full clustering rather than a filtered one.
		sum := deltacluster.Summarize(res.Clusters)
		rec, prec := deltacluster.RecallPrecision(m, ds.Embedded, deltacluster.Specs(res.Clusters))
		fmt.Printf("%-28s residue=%6.2f volume=%5d recall=%.2f precision=%.2f  %s\n",
			name, sum.AvgResidue, sum.TotalVolume, rec, prec, check(res.Clusters))
	}

	// Unconstrained baseline.
	run("unconstrained", base(), func([]*deltacluster.Cluster) string { return "" })

	// Cons_o: disjoint clusters.
	cfg := base()
	cfg.Constraints.MaxOverlap = 0
	run("disjoint (MaxOverlap=0)", cfg, func(cs []*deltacluster.Cluster) string {
		for a := 0; a < len(cs); a++ {
			for b := a + 1; b < len(cs); b++ {
				if cs[a].Overlap(cs[b]) > 0 {
					return "VIOLATED"
				}
			}
		}
		return "pairwise overlap: 0 ✓"
	})

	// Cons_c: every object covered by some cluster.
	cfg = base()
	cfg.Constraints.RequireRowCoverage = true
	run("full coverage (Cons_c)", cfg, func(cs []*deltacluster.Cluster) string {
		uncovered := 0
		for i := 0; i < m.Rows(); i++ {
			covered := false
			for _, c := range cs {
				if c.HasRow(i) {
					covered = true
					break
				}
			}
			if !covered {
				uncovered++
			}
		}
		if uncovered > 0 {
			return fmt.Sprintf("VIOLATED (%d uncovered)", uncovered)
		}
		return "every object covered ✓"
	})

	// Cons_v: volume ceiling.
	cfg = base()
	cfg.Constraints.MaxVolume = 150
	run("volume ≤ 150 (Cons_v)", cfg, func(cs []*deltacluster.Cluster) string {
		for _, c := range cs {
			if c.Volume() > 150 {
				return "VIOLATED"
			}
		}
		return "all volumes within ceiling ✓"
	})

	// α: occupancy with missing values.
	cfg = base()
	cfg.Constraints.Occupancy = 0.7
	run("occupancy α=0.7", cfg, func(cs []*deltacluster.Cluster) string {
		for _, c := range cs {
			if !c.SatisfiesOccupancy(0.7) {
				return "VIOLATED"
			}
		}
		return "all clusters meet α ✓"
	})
}
