// Collaborative filtering with δ-clusters (the paper's Section 6.1.1).
//
// Viewers rank movies with personal bias: one viewer's 3 is another's
// 5 for the same perceived quality. Distance-based clustering misses
// such pairs entirely; the δ-cluster model groups viewers whose
// *rating shapes* agree. This example generates the MovieLens 100k
// stand-in (a sparse 943×1682 ratings matrix — values 1..10, most
// entries missing), mines δ-clusters with the occupancy threshold
// α = 0.6 the paper uses, prints Table-1-style statistics, and then
// demonstrates the paper's motivating application: predicting a
// missing rating from a cluster's bias structure.
//
// Run with:
//
//	go run ./examples/movielens [-scale 0.3]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sort"

	deltacluster "deltacluster"
)

func main() {
	scale := flag.Float64("scale", 0.3, "fraction of the full 943x1682 data set to generate")
	flag.Parse()

	cfg := deltacluster.DefaultMovieLensConfig()
	cfg.Users = int(float64(cfg.Users) * *scale)
	cfg.Movies = int(float64(cfg.Movies) * *scale)
	cfg.Ratings = int(float64(cfg.Ratings) * *scale)
	ds, err := deltacluster.GenerateMovieLens(cfg, 7)
	if err != nil {
		log.Fatal(err)
	}
	m := ds.Matrix
	fmt.Printf("ratings matrix: %d viewers x %d movies, %.1f%% rated\n\n",
		m.Rows(), m.Cols(), 100*m.FillFraction())

	fcfg := deltacluster.DefaultFLOCConfig(8, 1.0) // δ = 1 rating point
	fcfg.Seed = 11
	fcfg.Constraints.Occupancy = 0.6 // the paper's α
	res, err := deltacluster.FLOC(m, fcfg)
	if err != nil {
		log.Fatal(err)
	}
	clusters := deltacluster.Significant(res.Clusters, fcfg.MaxResidue)
	sort.Slice(clusters, func(a, b int) bool { return clusters[a].Volume() > clusters[b].Volume() })

	fmt.Printf("FLOC: %d iterations, %v, %d significant clusters\n\n",
		res.Iterations, res.Duration.Round(1e6), len(clusters))
	fmt.Println("statistics of discovered clusters (compare the paper's Table 1):")
	fmt.Printf("%-18s %8s %8s %8s %8s %9s\n", "", "volume", "movies", "viewers", "residue", "diameter")
	for i, c := range clusters {
		if i == 3 {
			break
		}
		st := c.Stats()
		fmt.Printf("cluster %-10d %8d %8d %8d %8.2f %9.1f\n",
			i+1, st.Volume, st.NumCols, st.NumRows, st.Residue, st.Diameter)
	}

	if len(clusters) == 0 {
		return
	}

	// --- Rating prediction (the paper's E-commerce motivation) -------
	// Hide one known rating inside the largest cluster and predict it
	// from the cluster's bias structure: the expected value of entry
	// (i, j) is rowBase_i + colBase_j − clusterBase.
	c := clusters[0]
	spec := c.Spec()
	var ui, mj int
	found := false
	for _, i := range spec.Rows {
		for _, j := range spec.Cols {
			if m.IsSpecified(i, j) {
				ui, mj = i, j
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		return
	}
	actual := m.Get(ui, mj)
	m.SetMissing(ui, mj)
	pred := deltacluster.ClusterFromSpec(m, spec.Rows, spec.Cols)
	estimate := pred.RowBase(ui) + pred.ColBase(mj) - pred.Base()
	fmt.Printf("\nprediction demo: viewer %d's hidden rating of movie %d\n", ui, mj)
	fmt.Printf("  predicted %.2f from the cluster bias structure, actual %.0f (error %.2f)\n",
		estimate, actual, math.Abs(estimate-actual))
}
