// Gene-expression analysis with δ-clusters (the paper's Section
// 6.1.2): find sets of genes whose expression levels rise and fall
// coherently under a subset of conditions, and compare FLOC against
// the Cheng & Church biclustering baseline it generalizes.
//
// The data is the yeast microarray stand-in (2884 genes × 17
// conditions at full scale) with embedded ground-truth modules, so the
// comparison can report recall and precision in addition to the
// paper's residue/volume/time claims.
//
// Run with:
//
//	go run ./examples/microarray [-scale 0.25]
package main

import (
	"flag"
	"fmt"
	"log"

	deltacluster "deltacluster"
)

func main() {
	scale := flag.Float64("scale", 0.25, "fraction of the full 2884-gene data set")
	flag.Parse()

	yCfg := deltacluster.DefaultYeastConfig()
	yCfg.Genes = int(float64(yCfg.Genes) * *scale)
	yCfg.Modules = int(float64(yCfg.Modules) * *scale)
	if yCfg.Modules < 3 {
		yCfg.Modules = 3
	}
	ds, err := deltacluster.GenerateYeast(yCfg, 5)
	if err != nil {
		log.Fatal(err)
	}
	m := ds.Matrix
	fmt.Printf("microarray: %d genes x %d conditions, %d embedded coherent modules\n\n",
		m.Rows(), m.Cols(), len(ds.Embedded))

	k := 2 * yCfg.Modules
	delta := 2.5 * yCfg.NoiseResidue

	// --- FLOC ----------------------------------------------------------
	fCfg := deltacluster.DefaultFLOCConfig(k, delta)
	fCfg.Seed = 3
	fRes, err := deltacluster.FLOC(m, fCfg)
	if err != nil {
		log.Fatal(err)
	}
	fSig := deltacluster.Significant(fRes.Clusters, delta)
	fSum := deltacluster.Summarize(fSig)
	fRec, fPre := deltacluster.RecallPrecision(m, ds.Embedded, deltacluster.Specs(fSig))

	// --- Cheng & Church --------------------------------------------------
	// The bicluster model scores with the mean *squared* residue; an
	// arithmetic residue budget r corresponds to MSR ≈ (r/0.8)².
	msr := (delta / 0.8) * (delta / 0.8)
	bRes, err := deltacluster.ChengChurch(m, deltacluster.BiclusterConfig{
		K: k, Delta: msr, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	bSum := deltacluster.Summarize(bRes.Biclusters)
	bRec, bPre := deltacluster.RecallPrecision(m, ds.Embedded, deltacluster.Specs(bRes.Biclusters))

	fmt.Printf("%-22s %12s %14s\n", "", "FLOC", "Cheng&Church")
	fmt.Printf("%-22s %12.2f %14.2f\n", "avg residue (|r|)", fSum.AvgResidue, bSum.AvgResidue)
	fmt.Printf("%-22s %12d %14d\n", "aggregate volume", fSum.TotalVolume, bSum.TotalVolume)
	fmt.Printf("%-22s %12d %14d\n", "clusters", len(fSig), len(bRes.Biclusters))
	fmt.Printf("%-22s %12v %14v\n", "response time", fRes.Duration.Round(1e6), bRes.Duration.Round(1e6))
	fmt.Printf("%-22s %12.3f %14.3f\n", "recall", fRec, bRec)
	fmt.Printf("%-22s %12.3f %14.3f\n", "precision", fPre, bPre)

	// --- Why masking hurts ------------------------------------------------
	// The paper's critique of [3]: each successive bicluster is mined
	// from a matrix polluted by random masks. Show how recovery decays
	// with rank for Cheng&Church but not for FLOC (which maintains all
	// clusters simultaneously).
	fmt.Println("\nbest ground-truth match (Jaccard) by discovery rank:")
	fMatches := deltacluster.BestMatches(m, ds.Embedded, deltacluster.Specs(fSig))
	bMatches := deltacluster.BestMatches(m, ds.Embedded, deltacluster.Specs(bRes.Biclusters))
	fmt.Printf("  FLOC:          ")
	for _, mt := range fMatches {
		fmt.Printf("%.2f ", mt.Jaccard)
	}
	fmt.Printf("\n  Cheng&Church:  ")
	for _, mt := range bMatches {
		fmt.Printf("%.2f ", mt.Jaccard)
	}
	fmt.Println()
}
