// Package deltacluster is a Go implementation of the δ-cluster model
// and the FLOC algorithm from "δ-Clusters: Capturing Subspace
// Correlation in a Large Data Set" (Yang, Wang, Wang, Yu — ICDE 2002),
// together with every substrate the paper builds on: the Cheng &
// Church biclustering baseline, the CLIQUE subspace clustering
// algorithm and the derived-attribute "alternative algorithm", the
// synthetic workload generators of the paper's evaluation, and the
// recall/precision evaluation metrics.
//
// # The model
//
// A δ-cluster is a submatrix — a subset of objects (rows) and a subset
// of attributes (columns) of a data matrix that may contain missing
// values — whose entries exhibit *shifting coherence*: every object
// may carry its own additive bias, every attribute its own offset,
// and coherence is measured by how little of each entry remains once
// those biases (the "bases") are accounted for. That remainder is the
// entry's residue,
//
//	r_ij = d_ij − d_iJ − d_Ij + d_IJ,
//
// and the cluster's residue is the mean |r_ij| over its specified
// entries. Objects far apart in Euclidean distance can form a perfect
// (zero-residue) δ-cluster — the paper's motivating example.
// Amplification (multiplicative) coherence reduces to shifting
// coherence through LogTransform.
//
// # Quick start
//
//	m, err := deltacluster.ReadMatrix(f, deltacluster.IOOptions{})
//	cfg := deltacluster.DefaultFLOCConfig(10, 15) // k clusters, residue budget δ
//	res, err := deltacluster.FLOC(m, cfg)
//	for _, c := range deltacluster.Significant(res.Clusters, cfg.MaxResidue) {
//		fmt.Println(c.Stats())
//	}
//
// See the examples/ directory for complete programs: a quickstart on
// the paper's own worked example, a collaborative-filtering scenario,
// a gene-expression scenario with the Cheng & Church comparison, and
// constrained clustering.
package deltacluster

import (
	"context"
	"io"

	"deltacluster/internal/bicluster"
	"deltacluster/internal/clique"
	"deltacluster/internal/cluster"
	"deltacluster/internal/eval"
	"deltacluster/internal/floc"
	"deltacluster/internal/matrix"
	"deltacluster/internal/resilience"
	"deltacluster/internal/stats"
	"deltacluster/internal/synth"
)

// Matrix is a dense rows×cols data matrix with optional missing
// entries (NaN). Rows are objects, columns are attributes.
type Matrix = matrix.Matrix

// IOOptions controls delimited-text matrix input/output.
type IOOptions = matrix.IOOptions

// NewMatrix returns a rows×cols matrix with every entry missing.
func NewMatrix(rows, cols int) *Matrix { return matrix.New(rows, cols) }

// MatrixFromRows builds a matrix from row slices; NaN marks missing
// entries.
func MatrixFromRows(rows [][]float64) (*Matrix, error) { return matrix.NewFromRows(rows) }

// ReadMatrix parses a delimited matrix (CSV by default).
func ReadMatrix(r io.Reader, opts IOOptions) (*Matrix, error) { return matrix.Read(r, opts) }

// QuarantineReport is the audit trail of a lenient (IOOptions.
// Quarantine) matrix load: how many records were seen and which were
// dropped, with reasons.
type QuarantineReport = matrix.QuarantineReport

// QuarantinedRecord describes one record dropped by lenient ingestion.
type QuarantinedRecord = matrix.QuarantinedRecord

// ReadMatrixReport is ReadMatrix returning the quarantine audit trail
// alongside the matrix.
func ReadMatrixReport(r io.Reader, opts IOOptions) (*Matrix, *QuarantineReport, error) {
	return matrix.ReadReport(r, opts)
}

// WriteMatrix renders a matrix as delimited text.
func WriteMatrix(w io.Writer, m *Matrix, opts IOOptions) error { return matrix.Write(w, m, opts) }

// MatrixBinaryContentType is the MIME type of the binary (DCMX) matrix
// wire format — the Content-Type of deltaserve binary submissions.
const MatrixBinaryContentType = matrix.BinaryContentType

// EncodeMatrixBinary renders m in the canonical DCMX binary format:
// versioned, checksummed, with missing entries as canonical NaN bits.
// Equal matrices encode to equal bytes.
func EncodeMatrixBinary(m *Matrix) []byte { return matrix.EncodeBinary(m) }

// DecodeMatrixBinary parses and verifies a DCMX section. maxEntries,
// when positive, bounds rows×cols before any allocation happens.
func DecodeMatrixBinary(data []byte, maxEntries int) (*Matrix, error) {
	return matrix.DecodeBinary(data, maxEntries)
}

// WriteMatrixBinary writes m to w in the DCMX binary format.
func WriteMatrixBinary(w io.Writer, m *Matrix) error { return matrix.WriteBinary(w, m) }

// ReadMatrixBinary reads and verifies a DCMX section from r.
func ReadMatrixBinary(r io.Reader, maxEntries int) (*Matrix, error) {
	return matrix.ReadBinary(r, maxEntries)
}

// LogTransform converts amplification coherence to shifting coherence
// by taking the natural logarithm of every specified entry (Section 3
// of the paper). Entries must be positive.
func LogTransform(m *Matrix) (*Matrix, error) { return matrix.LogTransform(m) }

// DeriveDifferences builds the pairwise-difference attribute matrix of
// the paper's Section 4.4 alternative algorithm, returning the derived
// matrix and the original-attribute pair behind each derived column.
func DeriveDifferences(m *Matrix) (*Matrix, [][2]int) { return matrix.DeriveDifferences(m) }

// Cluster is a mutable δ-cluster over a data matrix, maintaining its
// bases, residue, volume, occupancy and diameter incrementally.
type Cluster = cluster.Cluster

// ClusterSpec is an immutable snapshot of a cluster's membership.
type ClusterSpec = cluster.Spec

// ClusterStats summarizes a cluster (the quantities of the paper's
// Table 1).
type ClusterStats = cluster.Stats

// ResidueMean selects arithmetic (the paper's Definition 3.5) or
// squared (Cheng & Church) residue aggregation.
type ResidueMean = cluster.ResidueMean

// Residue aggregation modes.
const (
	ArithmeticMean = cluster.ArithmeticMean
	SquaredMean    = cluster.SquaredMean
)

// NewCluster returns an empty δ-cluster over m.
func NewCluster(m *Matrix) *Cluster { return cluster.New(m) }

// ClusterFromSpec builds a cluster over m from explicit row and column
// sets.
func ClusterFromSpec(m *Matrix, rows, cols []int) *Cluster {
	return cluster.FromSpec(m, rows, cols)
}

// Residue computes the residue of the δ-cluster defined by rows×cols
// of m (Definition 3.5).
func Residue(m *Matrix, rows, cols []int) float64 { return cluster.ResidueOf(m, rows, cols) }

// PearsonR is the global correlation measure the paper contrasts the
// δ-cluster model against; NaN entries are skipped.
func PearsonR(a, b []float64) float64 { return stats.PearsonR(a, b) }

// FLOCConfig parameterizes the FLOC algorithm. See DefaultFLOCConfig
// for the recommended settings.
type FLOCConfig = floc.Config

// FLOCResult reports a FLOC run's clusters and statistics.
type FLOCResult = floc.Result

// FLOCConstraints are the optional blocking constraints of the model
// (size floors and ceilings, overlap budget, coverage, occupancy α).
type FLOCConstraints = floc.Constraints

// Order selects the action ordering of the paper's Section 5.2.
type Order = floc.Order

// Action orders.
const (
	FixedOrder          = floc.FixedOrder
	RandomOrder         = floc.RandomOrder
	WeightedRandomOrder = floc.WeightedRandomOrder
)

// GainPolicy selects the move objective; see the floc package docs.
type GainPolicy = floc.GainPolicy

// Gain policies.
const (
	VolumeGain  = floc.VolumeGain
	ResidueGain = floc.ResidueGain
)

// GainMode selects the decide phase's scoring tier; see the floc
// package docs.
type GainMode = floc.GainMode

// Gain modes: exact O(volume) scoring (the bit-identical default) or
// incremental O(row)/O(col) aggregate ranking with the exact kernel
// retained for every applied action.
const (
	GainExact       = floc.GainExact
	GainIncremental = floc.GainIncremental
)

// SeedMode selects the phase-1 seeding strategy.
type SeedMode = floc.SeedMode

// Seed modes.
const (
	SeedRandom   = floc.SeedRandom
	SeedAnchored = floc.SeedAnchored
	SeedAuto     = floc.SeedAuto
)

// DefaultFLOCConfig returns the recommended configuration: k clusters,
// residue budget δ = maxResidue (≈ 2.5–3× the residue you expect of a
// genuine cluster works well), auto seeding, weighted random order.
func DefaultFLOCConfig(k int, maxResidue float64) FLOCConfig {
	return floc.DefaultConfig(k, maxResidue)
}

// FLOC runs the FLOC algorithm on m.
func FLOC(m *Matrix, cfg FLOCConfig) (*FLOCResult, error) { return floc.Run(m, cfg) }

// Significant filters a clustering to clusters carrying real evidence
// of coherence (≥ 3×3 and residue ≤ maxResidue).
func Significant(clusters []*Cluster, maxResidue float64) []*Cluster {
	return floc.Significant(clusters, maxResidue)
}

// FLOCPartialResult is the typed error a cancelled or deadlined FLOC
// run returns: the best-so-far clustering, the stop reason, and (when
// the run was interrupted at an iteration boundary) a resumable
// checkpoint. Recover it with errors.As.
type FLOCPartialResult = floc.PartialResult

// StopReason says why an interrupted run stopped.
type StopReason = floc.StopReason

// Stop reasons.
const (
	StopCancelled = floc.StopCancelled
	StopDeadline  = floc.StopDeadline
)

// FLOCCheckpoint is a resumable snapshot of a FLOC run at an
// iteration boundary. Same seed + resume reproduces the uninterrupted
// run bit for bit.
type FLOCCheckpoint = floc.Checkpoint

// FLOCRunOptions controls checkpointing, resumption and warm-starting
// of a FLOC run.
type FLOCRunOptions = floc.RunOptions

// FLOCWarmStart seeds a run from a parent run's final checkpoint
// instead of cold seeding — the deltastream reclustering path. With
// an unchanged matrix the warm run reproduces the parent bit for bit;
// after appends, updates or retractions it re-anchors the parent's
// clustering and pays only the corrective iterations.
type FLOCWarmStart = floc.WarmStart

// FLOCContext runs FLOC under a context: cancellation or deadline
// expiry stops the run within one iteration, returning a
// *FLOCPartialResult error carrying the best-so-far clustering.
func FLOCContext(ctx context.Context, m *Matrix, cfg FLOCConfig) (*FLOCResult, error) {
	return floc.RunContext(ctx, m, cfg)
}

// FLOCWithOptions is FLOCContext with checkpoint/resume control.
func FLOCWithOptions(ctx context.Context, m *Matrix, cfg FLOCConfig, opts FLOCRunOptions) (*FLOCResult, error) {
	return floc.RunWithOptions(ctx, m, cfg, opts)
}

// WriteCheckpointFile atomically writes a checkpoint to path
// (temp file + fsync + rename) in the versioned, checksummed binary
// format.
func WriteCheckpointFile(path string, ck *FLOCCheckpoint) error {
	return floc.WriteCheckpointFile(path, ck)
}

// ReadCheckpointFile reads and verifies a checkpoint written by
// WriteCheckpointFile, rejecting torn or corrupted files.
func ReadCheckpointFile(path string) (*FLOCCheckpoint, error) {
	return floc.ReadCheckpointFile(path)
}

// SupervisePolicy parameterizes a fault-tolerant FLOC campaign: number
// of restart attempts, per-attempt deadline, panic retries with seed
// rotation and capped backoff.
type SupervisePolicy = resilience.Policy

// SuperviseReport is the outcome of a supervised campaign: the best
// result, per-attempt reports, and whether the campaign degraded.
type SuperviseReport = resilience.Report

// SuperviseAttemptReport records how one supervised attempt went.
type SuperviseAttemptReport = resilience.AttemptReport

// SuperviseFLOC runs a supervised multi-seed FLOC campaign: attempt i
// runs with seed cfg.Seed+i, panics are recovered and retried with
// rotated seeds, and when the context's budget expires the best
// completed attempt is returned instead of nothing.
func SuperviseFLOC(ctx context.Context, m *Matrix, cfg FLOCConfig, policy SupervisePolicy) (*SuperviseReport, error) {
	return resilience.SuperviseFLOC(ctx, m, cfg, policy)
}

// BiclusterConfig parameterizes the Cheng & Church baseline.
type BiclusterConfig = bicluster.Config

// BiclusterResult reports the mined biclusters.
type BiclusterResult = bicluster.Result

// ChengChurch runs the Cheng & Church biclustering algorithm
// (reference [3] of the paper) on m.
func ChengChurch(m *Matrix, cfg BiclusterConfig) (*BiclusterResult, error) {
	return bicluster.Run(m, cfg)
}

// ChengChurchContext is ChengChurch under a context: cancellation
// between sequential mines returns a *bicluster.PartialResult error
// carrying the biclusters completed so far.
func ChengChurchContext(ctx context.Context, m *Matrix, cfg BiclusterConfig) (*BiclusterResult, error) {
	return bicluster.RunContext(ctx, m, cfg)
}

// CLIQUEConfig parameterizes the CLIQUE subspace clustering algorithm.
type CLIQUEConfig = clique.Config

// CLIQUEResult reports subspace clusters and lattice statistics.
type CLIQUEResult = clique.Result

// SubspaceCluster is one CLIQUE cluster: a subspace and its points.
type SubspaceCluster = clique.SubspaceCluster

// CLIQUE runs grid/density subspace clustering (reference [1] of the
// paper) on the rows of m.
func CLIQUE(m *Matrix, cfg CLIQUEConfig) (*CLIQUEResult, error) { return clique.Run(m, cfg) }

// CLIQUEContext is CLIQUE under a context: cancellation between
// lattice levels returns a *clique.PartialResult error carrying the
// dense units mined so far.
func CLIQUEContext(ctx context.Context, m *Matrix, cfg CLIQUEConfig) (*CLIQUEResult, error) {
	return clique.RunContext(ctx, m, cfg)
}

// AlternativeConfig parameterizes the Section 4.4 alternative
// δ-cluster algorithm.
type AlternativeConfig = clique.AltConfig

// AlternativeResult reports the recovered δ-clusters and the cost
// breakdown of the three reduction steps.
type AlternativeResult = clique.AltResult

// AlternativeDeltaClusters mines δ-clusters by the paper's reduction
// to subspace clustering over derived difference attributes.
func AlternativeDeltaClusters(m *Matrix, cfg AlternativeConfig) (*AlternativeResult, error) {
	return clique.AlternativeDeltaClusters(m, cfg)
}

// SyntheticConfig describes a synthetic matrix with embedded
// δ-clusters (the paper's Section 6.2 workloads).
type SyntheticConfig = synth.Config

// SyntheticDataset is a generated matrix plus its ground truth.
type SyntheticDataset = synth.Dataset

// GenerateSynthetic builds a synthetic dataset with embedded
// ground-truth δ-clusters.
func GenerateSynthetic(cfg SyntheticConfig, seed int64) (*SyntheticDataset, error) {
	return synth.Generate(cfg, seed)
}

// MovieLensConfig describes the MovieLens-like sparse ratings
// generator (the paper's Section 6.1.1 data set stand-in).
type MovieLensConfig = synth.MovieLensConfig

// MovieLensDataset is the generated ratings matrix plus its latent
// group structure.
type MovieLensDataset = synth.MovieLensDataset

// DefaultMovieLensConfig mirrors the real data set's shape (943 users,
// 1682 movies, ~100k ratings).
func DefaultMovieLensConfig() MovieLensConfig { return synth.DefaultMovieLensConfig() }

// GenerateMovieLens builds the ratings stand-in.
func GenerateMovieLens(cfg MovieLensConfig, seed int64) (*MovieLensDataset, error) {
	return synth.MovieLens(cfg, seed)
}

// YeastConfig describes the yeast microarray stand-in (the paper's
// Section 6.1.2 data set).
type YeastConfig = synth.YeastConfig

// DefaultYeastConfig mirrors the real data set's shape (2884 genes,
// 17 conditions).
func DefaultYeastConfig() YeastConfig { return synth.DefaultYeastConfig() }

// GenerateYeast builds the microarray stand-in with ground-truth
// coherent modules.
func GenerateYeast(cfg YeastConfig, seed int64) (*SyntheticDataset, error) {
	return synth.Yeast(cfg, seed)
}

// RecallPrecision computes the paper's Section 6.2.2 quality metrics:
// with U the entries of the embedded clusters and V those of the
// discovered ones, recall = |U∩V|/|U| and precision = |U∩V|/|V|.
func RecallPrecision(m *Matrix, embedded, discovered []ClusterSpec) (recall, precision float64) {
	return eval.RecallPrecision(m, embedded, discovered)
}

// Specs extracts the membership specs of a slice of clusters.
func Specs(clusters []*Cluster) []ClusterSpec { return eval.Specs(clusters) }

// Summary aggregates per-cluster statistics (Table 1 of the paper).
type Summary = eval.Summary

// Summarize computes aggregate statistics for a clustering.
func Summarize(clusters []*Cluster) Summary { return eval.Summarize(clusters) }

// Match pairs an embedded cluster with its best-overlapping discovered
// cluster.
type Match = eval.Match

// BestMatches pairs every embedded cluster with the discovered cluster
// sharing the largest Jaccard entry overlap.
func BestMatches(m *Matrix, embedded, discovered []ClusterSpec) []Match {
	return eval.BestMatches(m, embedded, discovered)
}
