// Package clique implements the CLIQUE grid-and-density subspace
// clustering algorithm (Agrawal, Gehrke, Gunopulos, Raghavan — SIGMOD
// 1998), reference [1] of the δ-cluster paper, together with the
// paper's Section 4.4 "alternative algorithm" that reduces δ-cluster
// mining to subspace clustering over pairwise-difference attributes.
//
// CLIQUE discretizes every dimension into ξ equal-width bins. A unit
// (a cell of the grid restricted to a subspace) is dense when it holds
// at least τ·N of the points. Dense units are mined bottom-up,
// apriori-style: a candidate k-dimensional unit can only be dense if
// all of its (k−1)-dimensional projections are. Clusters in each
// subspace are connected components of dense units under bin
// adjacency.
//
// The alternative δ-cluster algorithm derives N(N−1)/2 difference
// attributes (A_j1 − A_j2), runs CLIQUE on the derived matrix, and
// recovers δ-clusters by finding maximal cliques (Bron–Kerbosch) in
// the graph whose edges are the derived attributes of each subspace
// cluster — a δ-cluster on m original attributes requires a clique of
// m vertices, i.e. m(m−1)/2 derived dimensions. The quadratic
// dimensionality blow-up is the reason the paper's Figure 10 shows
// this approach losing to FLOC as attributes grow.
//
// This package is marked deltavet:deterministic — the benchmark
// comparisons against FLOC require replayable cluster output, so
// cmd/deltavet forbids unordered map iteration, direct math/rand use
// and raw float equality here.
package clique

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"deltacluster/internal/cluster"
	"deltacluster/internal/matrix"
)

// Config parameterizes CLIQUE.
type Config struct {
	// Xi is the number of equal-width bins per dimension. Required,
	// ≥ 1.
	Xi int

	// Tau is the density threshold as a fraction of the total number
	// of points. A unit is dense when count ≥ Tau·N. Required, in
	// (0, 1].
	Tau float64

	// MaxDims caps the subspace dimensionality explored (0 = no cap).
	// The candidate lattice is exponential in the worst case; the cap
	// keeps the alternative-algorithm benchmarks finite while leaving
	// the asymptotic blow-up observable.
	MaxDims int

	// MaxUnits aborts the run when the number of dense units in one
	// level exceeds the bound (0 = no bound), returning an error. It
	// is a safety valve for the Figure 10 sweep.
	MaxUnits int
}

func (c *Config) validate() error {
	if c.Xi < 1 {
		return fmt.Errorf("clique: Xi = %d, want ≥ 1", c.Xi)
	}
	if !(c.Tau > 0 && c.Tau <= 1) {
		return fmt.Errorf("clique: Tau = %v, want in (0, 1]", c.Tau)
	}
	return nil
}

// SubspaceCluster is a maximal set of connected dense units in one
// subspace, with the points falling in any of its units.
type SubspaceCluster struct {
	// Dims are the dimensions of the subspace, ascending.
	Dims []int
	// Points are the row indices belonging to the cluster, ascending.
	Points []int
}

// Result is the output of a CLIQUE run.
type Result struct {
	Clusters []SubspaceCluster
	// DenseUnitsPerLevel reports how many dense units each
	// dimensionality level produced — the measure of the lattice
	// blow-up.
	DenseUnitsPerLevel []int
	Duration           time.Duration
}

// unitKey identifies a unit: the subspace dims and one bin per dim.
type unitKey string

func makeKey(dims, bins []int) unitKey {
	b := make([]byte, 0, 4*len(dims))
	for i := range dims {
		b = append(b, byte(dims[i]), byte(dims[i]>>8), byte(bins[i]), byte(bins[i]>>8))
	}
	return unitKey(b)
}

type unit struct {
	dims []int
	bins []int
}

// Run executes CLIQUE on the rows of m viewed as points with one
// dimension per column. Missing entries exclude a point from any unit
// touching that dimension.
func Run(m *matrix.Matrix, cfg Config) (*Result, error) {
	return RunContext(context.Background(), m, cfg)
}

// RunContext is Run with cancellation: the context is checked between
// lattice levels (the unit of work that blows up on hard inputs — see
// Figure 10), and a cancelled or expired context stops the mine with a
// *PartialResult error carrying the clusters of every level mined so
// far.
//
// deltavet:observability — the wall-clock reads fill Result.Duration;
// the mined lattice never depends on them.
func RunContext(ctx context.Context, m *matrix.Matrix, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	n := m.Rows()
	d := m.Cols()
	if n == 0 || d == 0 {
		return &Result{Duration: time.Since(start)}, nil
	}
	minCount := int(math.Ceil(cfg.Tau * float64(n)))
	if minCount < 1 {
		minCount = 1
	}

	// Bin every entry once: binOf[i][j] = bin index, or -1 if missing.
	lo := make([]float64, d)
	hi := make([]float64, d)
	for j := 0; j < d; j++ {
		lo[j], hi[j] = math.Inf(1), math.Inf(-1)
	}
	for i := 0; i < n; i++ {
		row := m.RowView(i)
		for j, v := range row {
			if math.IsNaN(v) {
				continue
			}
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	binOf := make([][]int16, n)
	for i := 0; i < n; i++ {
		row := m.RowView(i)
		bins := make([]int16, d)
		for j, v := range row {
			if math.IsNaN(v) || !(hi[j] > lo[j]) {
				if math.IsNaN(v) {
					bins[j] = -1
				} else {
					bins[j] = 0
				}
				continue
			}
			b := int(float64(cfg.Xi) * (v - lo[j]) / (hi[j] - lo[j]))
			if b == cfg.Xi {
				b = cfg.Xi - 1
			}
			bins[j] = int16(b)
		}
		binOf[i] = bins
	}

	// Level 1: dense 1-dimensional units.
	var res Result
	level := make(map[unitKey]unit)
	counts := make(map[unitKey]int)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			if binOf[i][j] < 0 {
				continue
			}
			k := makeKey([]int{j}, []int{int(binOf[i][j])})
			counts[k]++
		}
	}
	for j := 0; j < d; j++ {
		for b := 0; b < cfg.Xi; b++ {
			k := makeKey([]int{j}, []int{b})
			if counts[k] >= minCount {
				level[k] = unit{dims: []int{j}, bins: []int{b}}
			}
		}
	}
	res.DenseUnitsPerLevel = append(res.DenseUnitsPerLevel, len(level))

	allDense := map[int][]unit{1: unitsOf(level)}
	dims := 1
	for len(level) > 0 {
		if err := ctx.Err(); err != nil {
			res.Clusters = assembleClusters(allDense, dims, binOf)
			res.Duration = time.Since(start)
			return nil, newPartialResult(&res, dims, err)
		}
		if cfg.MaxDims > 0 && dims >= cfg.MaxDims {
			break
		}
		next, err := nextLevel(level, binOf, minCount, cfg.MaxUnits)
		if err != nil {
			return nil, err
		}
		if len(next) == 0 {
			break
		}
		dims++
		level = next
		allDense[dims] = unitsOf(level)
		res.DenseUnitsPerLevel = append(res.DenseUnitsPerLevel, len(level))
	}

	res.Clusters = assembleClusters(allDense, len(res.DenseUnitsPerLevel), binOf)
	res.Duration = time.Since(start)
	return &res, nil
}

// assembleClusters extracts the subspace clusters of every mined
// level: per subspace, connected components of dense units. Keep only
// maximal subspaces: a cluster in a subspace that is a strict subset
// of another cluster's subspace with the same or larger point set adds
// nothing; following the original paper we report components at every
// level but the callers of this package (the alternative algorithm,
// the benchmarks) use the highest-dimensional ones. It also serves a
// cancelled run, which assembles whatever levels completed.
func assembleClusters(allDense map[int][]unit, levels int, binOf [][]int16) []SubspaceCluster {
	var out []SubspaceCluster
	for lv := levels; lv >= 1; lv-- {
		for _, comp := range connectedComponents(allDense[lv]) {
			pts := pointsOf(comp, binOf)
			if len(pts) == 0 {
				continue
			}
			out = append(out, SubspaceCluster{
				Dims:   append([]int(nil), comp[0].dims...),
				Points: pts,
			})
		}
	}
	return out
}

func unitsOf(level map[unitKey]unit) []unit {
	out := make([]unit, 0, len(level))
	for _, u := range level {
		out = append(out, u)
	}
	sort.Slice(out, func(a, b int) bool {
		return makeKey(out[a].dims, out[a].bins) < makeKey(out[b].dims, out[b].bins)
	})
	return out
}

// nextLevel joins dense units sharing all but their last dimension
// (classic apriori join over dim-sorted units), verifies candidate
// density by counting points, and apriori-prunes.
func nextLevel(level map[unitKey]unit, binOf [][]int16, minCount, maxUnits int) (map[unitKey]unit, error) {
	units := unitsOf(level)
	// Group units by prefix (all dims+bins except the last pair).
	prefix := func(u unit) unitKey {
		return makeKey(u.dims[:len(u.dims)-1], u.bins[:len(u.bins)-1])
	}
	// Group keys are recorded in first-appearance order; units is
	// sorted, so the grouping — and with it the candidate order — is
	// deterministic without iterating the map.
	groups := make(map[unitKey][]unit)
	var groupKeys []unitKey
	for _, u := range units {
		k := prefix(u)
		if _, ok := groups[k]; !ok {
			groupKeys = append(groupKeys, k)
		}
		groups[k] = append(groups[k], u)
	}
	if maxUnits > 0 {
		// The join enumerates ~Σ|group|²/2 candidates; abort before
		// materializing a hopeless blow-up (the quantity Figure 10
		// demonstrates) rather than after.
		pairs := 0
		for _, k := range groupKeys {
			g := groups[k]
			pairs += len(g) * (len(g) - 1) / 2
			if pairs > 200*maxUnits {
				return nil, fmt.Errorf("clique: candidate join of ~%d pairs exceeds budget (MaxUnits=%d)", pairs, maxUnits)
			}
		}
	}
	type cand struct {
		dims []int
		bins []int
	}
	var cands []cand
	for _, gk := range groupKeys {
		g := groups[gk]
		for a := 0; a < len(g); a++ {
			for b := a + 1; b < len(g); b++ {
				ua, ub := g[a], g[b]
				la, ba := ua.dims[len(ua.dims)-1], ua.bins[len(ua.bins)-1]
				lb, bb := ub.dims[len(ub.dims)-1], ub.bins[len(ub.bins)-1]
				if la == lb {
					continue // same last dim, different bin: not joinable
				}
				if la > lb {
					la, lb = lb, la
					ba, bb = bb, ba
				}
				dims := append(append([]int(nil), ua.dims[:len(ua.dims)-1]...), la, lb)
				bins := append(append([]int(nil), ua.bins[:len(ua.bins)-1]...), ba, bb)
				// Apriori prune: every (k−1)-subset must be dense.
				if !allSubsetsDense(dims, bins, level) {
					continue
				}
				cands = append(cands, cand{dims: dims, bins: bins})
			}
		}
	}
	// Count candidate support in one pass over the points.
	next := make(map[unitKey]unit)
	if len(cands) == 0 {
		return next, nil
	}
	counts := make(map[unitKey]int, len(cands))
	keys := make([]unitKey, len(cands))
	for ci, c := range cands {
		keys[ci] = makeKey(c.dims, c.bins)
	}
	for _, bins := range binOf {
		for ci, c := range cands {
			match := true
			for di, dim := range c.dims {
				if int(bins[dim]) != c.bins[di] {
					match = false
					break
				}
			}
			if match {
				counts[keys[ci]]++
			}
		}
	}
	for ci, c := range cands {
		if counts[keys[ci]] >= minCount {
			next[keys[ci]] = unit{dims: c.dims, bins: c.bins}
			if maxUnits > 0 && len(next) > maxUnits {
				return nil, fmt.Errorf("clique: dense-unit count exceeded MaxUnits=%d at %d dims", maxUnits, len(c.dims))
			}
		}
	}
	return next, nil
}

// allSubsetsDense checks the apriori condition: dropping any one
// dimension of the candidate leaves a dense unit.
func allSubsetsDense(dims, bins []int, level map[unitKey]unit) bool {
	k := len(dims)
	sub := make([]int, 0, k-1)
	subBins := make([]int, 0, k-1)
	for drop := 0; drop < k; drop++ {
		sub = sub[:0]
		subBins = subBins[:0]
		for i := 0; i < k; i++ {
			if i == drop {
				continue
			}
			sub = append(sub, dims[i])
			subBins = append(subBins, bins[i])
		}
		if _, ok := level[makeKey(sub, subBins)]; !ok {
			return false
		}
	}
	return true
}

// connectedComponents groups units of one level into per-subspace
// adjacency components (two units are adjacent when they share the
// subspace and differ by exactly one in exactly one bin).
func connectedComponents(units []unit) [][]unit {
	// Group by subspace first, keeping first-appearance order so the
	// component (and final cluster) order is deterministic.
	bySubspace := make(map[string][]unit)
	var subspaceKeys []string
	for _, u := range units {
		k := fmt.Sprint(u.dims)
		if _, ok := bySubspace[k]; !ok {
			subspaceKeys = append(subspaceKeys, k)
		}
		bySubspace[k] = append(bySubspace[k], u)
	}
	var comps [][]unit
	for _, sk := range subspaceKeys {
		group := bySubspace[sk]
		n := len(group)
		parent := make([]int, n)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			if parent[x] != x {
				parent[x] = find(parent[x])
			}
			return parent[x]
		}
		union := func(a, b int) { parent[find(a)] = find(b) }
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if adjacent(group[a], group[b]) {
					union(a, b)
				}
			}
		}
		byRoot := map[int][]unit{}
		for i, u := range group {
			byRoot[find(i)] = append(byRoot[find(i)], u)
		}
		roots := make([]int, 0, len(byRoot))
		for r := range byRoot {
			roots = append(roots, r)
		}
		sort.Ints(roots)
		for _, r := range roots {
			comps = append(comps, byRoot[r])
		}
	}
	return comps
}

func adjacent(a, b unit) bool {
	diff := 0
	for i := range a.bins {
		d := a.bins[i] - b.bins[i]
		if d < 0 {
			d = -d
		}
		if d > 1 {
			return false
		}
		diff += d
	}
	return diff == 1
}

// pointsOf returns the rows falling in any unit of the component.
func pointsOf(comp []unit, binOf [][]int16) []int {
	var pts []int
	for i, bins := range binOf {
		for _, u := range comp {
			match := true
			for di, dim := range u.dims {
				if int(bins[dim]) != u.bins[di] {
					match = false
					break
				}
			}
			if match {
				pts = append(pts, i)
				break
			}
		}
	}
	return pts
}

// Spec converts a subspace cluster into a δ-cluster spec on m.
func (s SubspaceCluster) Spec() cluster.Spec {
	return cluster.Spec{Rows: append([]int(nil), s.Points...), Cols: append([]int(nil), s.Dims...)}
}
