package clique

import (
	"sort"
	"testing"

	"deltacluster/internal/matrix"
	"deltacluster/internal/paperdata"
	"deltacluster/internal/stats"
	"deltacluster/internal/synth"
)

func TestValidation(t *testing.T) {
	m, _ := matrix.NewFromRows([][]float64{{1, 2}})
	if _, err := Run(m, Config{Xi: 0, Tau: 0.1}); err == nil {
		t.Error("Xi=0 accepted")
	}
	if _, err := Run(m, Config{Xi: 5, Tau: 0}); err == nil {
		t.Error("Tau=0 accepted")
	}
	if _, err := Run(m, Config{Xi: 5, Tau: 1.5}); err == nil {
		t.Error("Tau>1 accepted")
	}
}

func TestEmptyMatrix(t *testing.T) {
	res, err := Run(matrix.New(0, 0), Config{Xi: 4, Tau: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 0 {
		t.Error("clusters from an empty matrix")
	}
}

// Two well-separated blobs in 2-D: CLIQUE must find two clusters in
// the full space.
func TestTwoBlobs(t *testing.T) {
	g := stats.NewRNG(1)
	m := matrix.New(200, 2)
	for i := 0; i < 100; i++ {
		m.Set(i, 0, g.Uniform(0, 1))
		m.Set(i, 1, g.Uniform(0, 1))
	}
	for i := 100; i < 200; i++ {
		m.Set(i, 0, g.Uniform(9, 10))
		m.Set(i, 1, g.Uniform(9, 10))
	}
	res, err := Run(m, Config{Xi: 10, Tau: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// Find 2-D clusters.
	var twoD []SubspaceCluster
	for _, c := range res.Clusters {
		if len(c.Dims) == 2 {
			twoD = append(twoD, c)
		}
	}
	if len(twoD) != 2 {
		t.Fatalf("found %d 2-D clusters, want 2", len(twoD))
	}
	sizes := []int{len(twoD[0].Points), len(twoD[1].Points)}
	sort.Ints(sizes)
	if sizes[0] < 80 || sizes[1] > 120 {
		t.Errorf("cluster sizes %v, want ≈100 each", sizes)
	}
}

// A dense line along one dimension embedded in uniform noise on the
// other: the subspace {0} holds a cluster that the full space does
// not support at high Tau.
func TestSubspaceOnlyCluster(t *testing.T) {
	g := stats.NewRNG(2)
	m := matrix.New(300, 2)
	for i := 0; i < 300; i++ {
		if i < 150 {
			m.Set(i, 0, g.Uniform(5.0, 5.08)) // packed inside one grid bin of dim 0
		} else {
			m.Set(i, 0, g.Uniform(0, 10))
		}
		m.Set(i, 1, g.Uniform(0, 10)) // uniform in dim 1
	}
	res, err := Run(m, Config{Xi: 10, Tau: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res.Clusters {
		if len(c.Dims) == 1 && c.Dims[0] == 0 && len(c.Points) >= 100 {
			found = true
		}
	}
	if !found {
		t.Error("1-D subspace cluster in dim 0 not found")
	}
}

func TestDenseUnitsPerLevelMonotoneStart(t *testing.T) {
	g := stats.NewRNG(3)
	m := matrix.New(100, 3)
	for i := 0; i < 100; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, g.Uniform(0, 1))
		}
	}
	res, err := Run(m, Config{Xi: 2, Tau: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DenseUnitsPerLevel) == 0 || res.DenseUnitsPerLevel[0] == 0 {
		t.Error("no dense 1-D units on uniform data with permissive Tau")
	}
}

func TestMaxDimsCap(t *testing.T) {
	g := stats.NewRNG(4)
	m := matrix.New(50, 6)
	for i := 0; i < 50; i++ {
		for j := 0; j < 6; j++ {
			m.Set(i, j, g.Uniform(0, 1))
		}
	}
	res, err := Run(m, Config{Xi: 1, Tau: 0.01, MaxDims: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clusters {
		if len(c.Dims) > 2 {
			t.Fatalf("cluster with %d dims despite MaxDims=2", len(c.Dims))
		}
	}
	if len(res.DenseUnitsPerLevel) > 2 {
		t.Errorf("explored %d levels despite MaxDims=2", len(res.DenseUnitsPerLevel))
	}
}

func TestMaxUnitsGuard(t *testing.T) {
	g := stats.NewRNG(5)
	m := matrix.New(60, 8)
	for i := 0; i < 60; i++ {
		for j := 0; j < 8; j++ {
			m.Set(i, j, g.Uniform(0, 1))
		}
	}
	// Xi=1 makes every unit dense; level k has C(8,k) units, so the
	// guard must trip.
	if _, err := Run(m, Config{Xi: 1, Tau: 0.01, MaxUnits: 10}); err == nil {
		t.Error("MaxUnits guard did not trip")
	}
}

func TestMissingValuesExcludePoints(t *testing.T) {
	m := matrix.New(10, 1)
	for i := 0; i < 5; i++ {
		m.Set(i, 0, 0.5)
	}
	// rows 5..9 stay missing
	res, err := Run(m, Config{Xi: 2, Tau: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clusters {
		for _, p := range c.Points {
			if p >= 5 {
				t.Fatalf("point %d with missing value included", p)
			}
		}
	}
}

// The worked example of Section 4.4 / Figure 7: on the derived matrix
// of the yeast excerpt, genes VPS8, EFB1 and CYS3 form a subspace
// cluster over the derived attributes 1I-1D, 1I-2B and 1D-2B, whose
// graph is a triangle over the conditions CH1I, CH1D, CH2B — exactly
// the δ-cluster of Figure 4(b).
func TestFigure7Alternative(t *testing.T) {
	m := paperdata.Figure4Matrix()
	res, err := AlternativeDeltaClusters(m, AltConfig{
		Clique: Config{Xi: 40, Tau: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{0: true, 2: true, 4: true} // CH1I, CH1D, CH2B
	found := false
	for _, spec := range res.Clusters {
		cols := map[int]bool{}
		for _, c := range spec.Cols {
			cols[c] = true
		}
		rows := map[int]bool{}
		for _, r := range spec.Rows {
			rows[r] = true
		}
		if cols[0] && cols[2] && cols[4] && rows[1] && rows[2] && rows[7] {
			found = true
			_ = want
			break
		}
	}
	if !found {
		t.Errorf("Figure 4(b) δ-cluster not recovered; got %d clusters", len(res.Clusters))
	}
	if res.DerivedCols != 10 {
		t.Errorf("derived cols = %d, want 10", res.DerivedCols)
	}
}

func TestAlternativeOnSynthetic(t *testing.T) {
	ds, err := synth.Generate(synth.Config{
		Rows: 150, Cols: 12, NumClusters: 2,
		VolumeMean: 120, VolumeVariance: 0, RowColRatio: 6,
		TargetResidue: 1,
	}, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AlternativeDeltaClusters(ds.Matrix, AltConfig{
		Clique: Config{Xi: 60, Tau: 0.1, MaxDims: 8, MaxUnits: 100000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Error("alternative algorithm found nothing on easy synthetic data")
	}
	if res.DerivedCols != 12*11/2 {
		t.Errorf("derived cols = %d", res.DerivedCols)
	}
}

func TestBronKerboschTrianglePlusEdge(t *testing.T) {
	adj := map[int]map[int]bool{
		1: {2: true, 3: true},
		2: {1: true, 3: true},
		3: {1: true, 2: true, 4: true},
		4: {3: true},
	}
	cliques := maximalCliques([]int{1, 2, 3, 4}, adj)
	if len(cliques) != 2 {
		t.Fatalf("found %d maximal cliques, want 2 (triangle + edge)", len(cliques))
	}
	sizes := []int{len(cliques[0]), len(cliques[1])}
	sort.Ints(sizes)
	if sizes[0] != 2 || sizes[1] != 3 {
		t.Errorf("clique sizes %v, want [2 3]", sizes)
	}
}
