package clique

import (
	"fmt"
	"strings"
	"testing"

	"deltacluster/internal/stats"
	"deltacluster/internal/synth"
)

func cliqueFingerprint(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "levels=%v\n", res.DenseUnitsPerLevel)
	for i, c := range res.Clusters {
		fmt.Fprintf(&b, "cluster %d dims=%v points=%v\n", i, c.Dims, c.Points)
	}
	return b.String()
}

// TestRunDeterministic pins the output order of CLIQUE. The dense-unit
// lattice is held in maps, so before the deltavet maporder pass the
// cluster list (and the cliques derived from it by the alternative
// algorithm) could come out in a different order run to run. Now every
// map traversal is key-sorted or first-appearance ordered, and two
// runs over the same matrix must match exactly.
func TestRunDeterministic(t *testing.T) {
	ds, err := synth.Generate(synth.Config{
		Rows: 150, Cols: 6, NumClusters: 2,
		VolumeMean: 60, VolumeVariance: 0, RowColRatio: 10,
		TargetResidue: 2,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Jitter so bin boundaries are not degenerate.
	rng := stats.NewRNG(99)
	m := ds.Matrix
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if m.IsSpecified(i, j) {
				m.Set(i, j, m.Get(i, j)+rng.Float64())
			}
		}
	}
	cfg := Config{Xi: 5, Tau: 0.05, MaxDims: 3}
	first, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cliqueFingerprint(first)
	if len(first.Clusters) == 0 {
		t.Fatal("degenerate fixture: no clusters found, determinism check is vacuous")
	}
	for rerun := 0; rerun < 3; rerun++ {
		res, err := Run(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := cliqueFingerprint(res); got != want {
			t.Fatalf("rerun %d diverged:\n--- first\n%s--- rerun\n%s", rerun, want, got)
		}
	}
}
