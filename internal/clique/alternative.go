package clique

import (
	"sort"
	"time"

	"deltacluster/internal/cluster"
	"deltacluster/internal/matrix"
)

// AltConfig parameterizes the Section 4.4 alternative δ-cluster
// algorithm.
type AltConfig struct {
	// Clique configures the subspace clustering over the derived
	// difference matrix.
	Clique Config

	// MinRows and MinCols drop recovered δ-clusters smaller than this
	// (defaults 3×3 — below that the clique construction is
	// vacuous: one derived attribute already connects two original
	// attributes).
	MinRows, MinCols int
}

// AltResult reports the recovered δ-clusters and the cost breakdown.
type AltResult struct {
	Clusters []cluster.Spec
	// DerivedCols is the dimensionality of the derived matrix,
	// N(N−1)/2 — the source of the blow-up.
	DerivedCols int
	// DeriveDuration, CliqueDuration and RecoverDuration split the
	// response time into the three steps of Section 4.4.
	DeriveDuration  time.Duration
	CliqueDuration  time.Duration
	RecoverDuration time.Duration
	Duration        time.Duration
}

// AlternativeDeltaClusters runs the three-step reduction: derive
// pairwise difference attributes, subspace-cluster the derived matrix
// with CLIQUE, and turn each subspace cluster's derived attributes
// into a graph whose maximal cliques are δ-clusters on the original
// attributes.
//
// deltavet:observability — the wall-clock reads fill the per-step
// Duration reporting fields; no clustering decision reads the clock.
func AlternativeDeltaClusters(m *matrix.Matrix, cfg AltConfig) (*AltResult, error) {
	if cfg.MinRows == 0 {
		cfg.MinRows = 3
	}
	if cfg.MinCols == 0 {
		cfg.MinCols = 3
	}
	start := time.Now()

	t0 := time.Now()
	derived, pairs := matrix.DeriveDifferences(m)
	res := &AltResult{DerivedCols: derived.Cols(), DeriveDuration: time.Since(t0)}

	t1 := time.Now()
	cliqueRes, err := Run(derived, cfg.Clique)
	if err != nil {
		return nil, err
	}
	res.CliqueDuration = time.Since(t1)

	t2 := time.Now()
	seen := map[string]bool{}
	for _, sc := range cliqueRes.Clusters {
		// Graph over original attributes: one edge per derived
		// attribute of the subspace cluster.
		adj := map[int]map[int]bool{}
		addEdge := func(a, b int) {
			if adj[a] == nil {
				adj[a] = map[int]bool{}
			}
			if adj[b] == nil {
				adj[b] = map[int]bool{}
			}
			adj[a][b] = true
			adj[b][a] = true
		}
		for _, d := range sc.Dims {
			p := pairs[d]
			addEdge(p[0], p[1])
		}
		vertices := make([]int, 0, len(adj))
		for v := range adj {
			vertices = append(vertices, v)
		}
		sort.Ints(vertices)
		for _, clq := range maximalCliques(vertices, adj) {
			if len(clq) < cfg.MinCols || len(sc.Points) < cfg.MinRows {
				continue
			}
			sort.Ints(clq)
			key := fmtInts(clq) + "|" + fmtInts(sc.Points)
			if seen[key] {
				continue
			}
			seen[key] = true
			res.Clusters = append(res.Clusters, cluster.Spec{
				Rows: append([]int(nil), sc.Points...),
				Cols: clq,
			})
		}
	}
	res.RecoverDuration = time.Since(t2)
	res.Duration = time.Since(start)
	return res, nil
}

func fmtInts(xs []int) string {
	b := make([]byte, 0, 4*len(xs))
	for _, x := range xs {
		b = append(b, byte(x), byte(x>>8), byte(x>>16), ',')
	}
	return string(b)
}

// maximalCliques enumerates the maximal cliques of the graph with the
// Bron–Kerbosch algorithm with pivoting.
func maximalCliques(vertices []int, adj map[int]map[int]bool) [][]int {
	var out [][]int
	var bk func(r, p, x []int)
	bk = func(r, p, x []int) {
		if len(p) == 0 && len(x) == 0 {
			out = append(out, append([]int(nil), r...))
			return
		}
		// Pivot: vertex of p∪x with the most neighbours in p.
		pivot, best := -1, -1
		for _, set := range [][]int{p, x} {
			for _, u := range set {
				cnt := 0
				for _, v := range p {
					if adj[u][v] {
						cnt++
					}
				}
				if cnt > best {
					best = cnt
					pivot = u
				}
			}
		}
		var candidates []int
		for _, v := range p {
			if pivot < 0 || !adj[pivot][v] {
				candidates = append(candidates, v)
			}
		}
		for _, v := range candidates {
			var np, nx []int
			for _, u := range p {
				if adj[v][u] {
					np = append(np, u)
				}
			}
			for _, u := range x {
				if adj[v][u] {
					nx = append(nx, u)
				}
			}
			bk(append(r, v), np, nx)
			// Move v from p to x.
			for i, u := range p {
				if u == v {
					p = append(p[:i], p[i+1:]...)
					break
				}
			}
			x = append(x, v)
		}
	}
	bk(nil, append([]int(nil), vertices...), nil)
	return out
}
