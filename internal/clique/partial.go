package clique

import (
	"context"
	"errors"
	"fmt"
)

// StopReason says why a RunContext mine stopped early.
type StopReason int

const (
	// StopCancelled means the context was cancelled.
	StopCancelled StopReason = iota + 1
	// StopDeadline means the context's deadline expired.
	StopDeadline
)

// String names the reason.
func (r StopReason) String() string {
	switch r {
	case StopCancelled:
		return "cancelled"
	case StopDeadline:
		return "deadline"
	default:
		return fmt.Sprintf("StopReason(%d)", int(r))
	}
}

// PartialResult is the typed error RunContext returns on cancellation:
// the clusters of every lattice level that finished mining, with the
// level count as the progress measure. Unwrap exposes the context
// error, so errors.Is(err, context.Canceled) works through it.
type PartialResult struct {
	// Result holds the clusters assembled from the levels mined before
	// the stop, and the dense-unit counts of those levels.
	Result *Result
	// LevelsMined is the deepest subspace dimensionality fully mined.
	LevelsMined int
	// Reason says whether cancellation or a deadline stopped the mine.
	Reason StopReason

	cause error
}

// Error implements error.
func (p *PartialResult) Error() string {
	return fmt.Sprintf("clique: mine stopped (%s) after %d lattice levels", p.Reason, p.LevelsMined)
}

// Unwrap exposes the underlying context error.
func (p *PartialResult) Unwrap() error { return p.cause }

func newPartialResult(res *Result, levels int, cause error) *PartialResult {
	reason := StopCancelled
	if errors.Is(cause, context.DeadlineExceeded) {
		reason = StopDeadline
	}
	return &PartialResult{Result: res, LevelsMined: levels, Reason: reason, cause: cause}
}
