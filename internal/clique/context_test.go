package clique

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"deltacluster/internal/matrix"
)

// contextTestMatrix builds a small matrix whose points cluster in two
// dense bins per dimension, so CLIQUE mines several lattice levels.
func contextTestMatrix(t *testing.T) *matrix.Matrix {
	t.Helper()
	rows := make([][]float64, 40)
	for i := range rows {
		rows[i] = make([]float64, 4)
		for j := range rows[i] {
			v := 1.0
			if i%2 == 0 {
				v = 9.0
			}
			rows[i][j] = v + float64(i%3)*0.1
		}
	}
	m, err := matrix.NewFromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunContextCancelled(t *testing.T) {
	m := contextTestMatrix(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	res, err := RunContext(ctx, m, Config{Xi: 10, Tau: 0.2})
	if res != nil {
		t.Fatal("cancelled mine returned a non-nil *Result")
	}
	var pr *PartialResult
	if !errors.As(err, &pr) {
		t.Fatalf("error %T is not a *PartialResult", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	if pr.Reason != StopCancelled {
		t.Fatalf("Reason = %v, want %v", pr.Reason, StopCancelled)
	}
	// Level 1 is mined before the loop's first context check, so the
	// partial result carries its clusters.
	if pr.LevelsMined != 1 {
		t.Fatalf("LevelsMined = %d, want 1", pr.LevelsMined)
	}
	if pr.Result == nil || len(pr.Result.Clusters) == 0 {
		t.Fatal("partial result carries no level-1 clusters")
	}
	if len(pr.Result.DenseUnitsPerLevel) != 1 {
		t.Fatalf("DenseUnitsPerLevel = %v, want one entry", pr.Result.DenseUnitsPerLevel)
	}
	if !strings.Contains(pr.Error(), "cancelled") {
		t.Fatalf("Error() = %q, want the stop reason mentioned", pr.Error())
	}
}

func TestRunContextDeadline(t *testing.T) {
	m := contextTestMatrix(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	_, err := RunContext(ctx, m, Config{Xi: 10, Tau: 0.2})
	var pr *PartialResult
	if !errors.As(err, &pr) {
		t.Fatalf("error %T is not a *PartialResult", err)
	}
	if pr.Reason != StopDeadline {
		t.Fatalf("Reason = %v, want %v", pr.Reason, StopDeadline)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("errors.Is(err, context.DeadlineExceeded) = false for %v", err)
	}
}

// Run must stay a thin wrapper: same clusters as an uncancelled
// RunContext.
func TestRunMatchesRunContext(t *testing.T) {
	m := contextTestMatrix(t)
	cfg := Config{Xi: 10, Tau: 0.2}
	a, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Clusters) != len(b.Clusters) {
		t.Fatalf("Run found %d clusters, RunContext %d", len(a.Clusters), len(b.Clusters))
	}
	for i := range a.Clusters {
		ca, cb := a.Clusters[i], b.Clusters[i]
		if len(ca.Dims) != len(cb.Dims) || len(ca.Points) != len(cb.Points) {
			t.Fatalf("cluster %d differs: %+v vs %+v", i, ca, cb)
		}
	}
}
