package stats

import "math"

// PearsonR computes the Pearson R correlation between two vectors, the
// measure the paper's introduction considers and rejects for δ-cluster
// discovery (it is global: a strong per-subspace coherence with
// opposite biases on two attribute groups yields a small R).
//
// Entries where either vector is NaN (missing) are skipped, matching
// how the rest of the repository treats unspecified values. PearsonR
// returns NaN when fewer than two paired entries are specified or when
// either vector is constant over the paired entries.
func PearsonR(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: PearsonR with mismatched lengths")
	}
	// First pass: means over the mutually specified entries.
	n := 0
	sumA, sumB := 0.0, 0.0
	for i := range a {
		if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
			continue
		}
		n++
		sumA += a[i]
		sumB += b[i]
	}
	if n < 2 {
		return math.NaN()
	}
	meanA := sumA / float64(n)
	meanB := sumB / float64(n)

	cov, varA, varB := 0.0, 0.0, 0.0
	for i := range a {
		if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
			continue
		}
		da := a[i] - meanA
		db := b[i] - meanB
		cov += da * db
		varA += da * da
		varB += db * db
	}
	if varA == 0 || varB == 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(varA*varB)
}
