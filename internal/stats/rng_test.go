package stats

import (
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Float64(), b.Float64(); av != bv {
			t.Fatalf("step %d: same seed diverged: %v vs %v", i, av, bv)
		}
	}
}

func TestNewRNGDifferentSeedsDiverge(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Uniform(-3,5) = %v out of range", v)
		}
	}
}

func TestUniformIntRange(t *testing.T) {
	g := NewRNG(7)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := g.UniformInt(2, 4)
		if v < 2 || v > 4 {
			t.Fatalf("UniformInt(2,4) = %d out of range", v)
		}
		seen[v] = true
	}
	for want := 2; want <= 4; want++ {
		if !seen[want] {
			t.Errorf("UniformInt(2,4) never produced %d in 1000 draws", want)
		}
	}
}

func TestUniformIntSingleton(t *testing.T) {
	g := NewRNG(1)
	if v := g.UniformInt(3, 3); v != 3 {
		t.Fatalf("UniformInt(3,3) = %d, want 3", v)
	}
}

func TestUniformIntPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("UniformInt(5,4) did not panic")
		}
	}()
	NewRNG(1).UniformInt(5, 4)
}

func TestBoolEdges(t *testing.T) {
	g := NewRNG(9)
	for i := 0; i < 100; i++ {
		if g.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !g.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	g := NewRNG(11)
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("Bool(0.3) frequency %v, want ≈0.3", frac)
	}
}

func TestSplitIndependence(t *testing.T) {
	g := NewRNG(5)
	c1 := g.Split()
	c2 := g.Split()
	if c1.Float64() == c2.Float64() && c1.Float64() == c2.Float64() {
		t.Fatal("two Split children produced identical streams")
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	g := NewRNG(13)
	for trial := 0; trial < 50; trial++ {
		n := g.UniformInt(1, 30)
		k := g.UniformInt(0, n)
		s := g.SampleWithoutReplacement(n, k)
		if len(s) != k {
			t.Fatalf("got %d samples, want %d", len(s), k)
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n {
				t.Fatalf("sample %d out of [0,%d)", v, n)
			}
			if seen[v] {
				t.Fatalf("duplicate sample %d", v)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacementFull(t *testing.T) {
	g := NewRNG(3)
	s := g.SampleWithoutReplacement(5, 5)
	seen := map[int]bool{}
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("full sample is not a permutation: %v", s)
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k > n did not panic")
		}
	}()
	NewRNG(1).SampleWithoutReplacement(3, 4)
}

// Property: samples are always distinct and in range, for arbitrary
// seeds and sizes.
func TestSampleWithoutReplacementProperty(t *testing.T) {
	f := func(seed int64, rawN, rawK uint8) bool {
		n := int(rawN%50) + 1
		k := int(rawK) % (n + 1)
		s := NewRNG(seed).SampleWithoutReplacement(n, k)
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(s) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDrawsCountsEveryMethod exercises each RNG method and checks
// that replaying the recorded (seed, draws) position with NewRNGAt
// reproduces the continuation stream exactly. This is the property
// the FLOC checkpoint format depends on.
func TestDrawsCountsEveryMethod(t *testing.T) {
	g := NewRNG(99)
	if g.Draws() != 0 {
		t.Fatalf("fresh RNG has %d draws, want 0", g.Draws())
	}
	// A mixed workload touching every exported method, including the
	// variable-consumption ones (NormFloat64, ExpFloat64, Intn
	// rejection sampling, Shuffle, Perm, Bool).
	_ = g.Float64()
	_ = g.Intn(17)
	_ = g.Int63()
	_ = g.NormFloat64()
	_ = g.ExpFloat64()
	_ = g.Uniform(-2, 2)
	_ = g.UniformInt(3, 9)
	_ = g.Bool(0.4)
	_ = g.Perm(13)
	xs := make([]int, 11)
	g.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	_ = g.SampleWithoutReplacement(20, 7)
	_ = g.Split()

	draws := g.Draws()
	if draws == 0 {
		t.Fatal("workload consumed no counted draws")
	}
	if g.InitialSeed() != 99 {
		t.Fatalf("InitialSeed = %d, want 99", g.InitialSeed())
	}

	h := NewRNGAt(99, draws)
	if h.Draws() != draws {
		t.Fatalf("NewRNGAt positioned at %d draws, want %d", h.Draws(), draws)
	}
	for i := 0; i < 200; i++ {
		gv, hv := g.Float64(), h.Float64()
		if gv != hv {
			t.Fatalf("step %d after fast-forward: %v vs %v", i, gv, hv)
		}
	}
	if g.Draws() != h.Draws() {
		t.Fatalf("draw counters diverged: %d vs %d", g.Draws(), h.Draws())
	}
}

// The counting wrapper must not perturb the stream relative to the
// pre-wrapper behavior: same seed, same values (regression anchor for
// determinism fingerprints recorded before the wrapper existed).
func TestCountingSourcePreservesStream(t *testing.T) {
	g := NewRNG(42)
	want := []int{5, 87, 68, 50, 23}
	for i, w := range want {
		if v := g.Intn(100); v != w {
			t.Fatalf("draw %d = %d, want %d (stream changed by counting wrapper?)", i, v, w)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := NewRNG(21)
	p := g.Perm(10)
	seen := map[int]bool{}
	for _, v := range p {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Perm(10) not a permutation: %v", p)
	}
}
