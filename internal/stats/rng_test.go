package stats

import (
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Float64(), b.Float64(); av != bv {
			t.Fatalf("step %d: same seed diverged: %v vs %v", i, av, bv)
		}
	}
}

func TestNewRNGDifferentSeedsDiverge(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Uniform(-3,5) = %v out of range", v)
		}
	}
}

func TestUniformIntRange(t *testing.T) {
	g := NewRNG(7)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := g.UniformInt(2, 4)
		if v < 2 || v > 4 {
			t.Fatalf("UniformInt(2,4) = %d out of range", v)
		}
		seen[v] = true
	}
	for want := 2; want <= 4; want++ {
		if !seen[want] {
			t.Errorf("UniformInt(2,4) never produced %d in 1000 draws", want)
		}
	}
}

func TestUniformIntSingleton(t *testing.T) {
	g := NewRNG(1)
	if v := g.UniformInt(3, 3); v != 3 {
		t.Fatalf("UniformInt(3,3) = %d, want 3", v)
	}
}

func TestUniformIntPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("UniformInt(5,4) did not panic")
		}
	}()
	NewRNG(1).UniformInt(5, 4)
}

func TestBoolEdges(t *testing.T) {
	g := NewRNG(9)
	for i := 0; i < 100; i++ {
		if g.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !g.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	g := NewRNG(11)
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("Bool(0.3) frequency %v, want ≈0.3", frac)
	}
}

func TestSplitIndependence(t *testing.T) {
	g := NewRNG(5)
	c1 := g.Split()
	c2 := g.Split()
	if c1.Float64() == c2.Float64() && c1.Float64() == c2.Float64() {
		t.Fatal("two Split children produced identical streams")
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	g := NewRNG(13)
	for trial := 0; trial < 50; trial++ {
		n := g.UniformInt(1, 30)
		k := g.UniformInt(0, n)
		s := g.SampleWithoutReplacement(n, k)
		if len(s) != k {
			t.Fatalf("got %d samples, want %d", len(s), k)
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n {
				t.Fatalf("sample %d out of [0,%d)", v, n)
			}
			if seen[v] {
				t.Fatalf("duplicate sample %d", v)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacementFull(t *testing.T) {
	g := NewRNG(3)
	s := g.SampleWithoutReplacement(5, 5)
	seen := map[int]bool{}
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("full sample is not a permutation: %v", s)
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k > n did not panic")
		}
	}()
	NewRNG(1).SampleWithoutReplacement(3, 4)
}

// Property: samples are always distinct and in range, for arbitrary
// seeds and sizes.
func TestSampleWithoutReplacementProperty(t *testing.T) {
	f := func(seed int64, rawN, rawK uint8) bool {
		n := int(rawN%50) + 1
		k := int(rawK) % (n + 1)
		s := NewRNG(seed).SampleWithoutReplacement(n, k)
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(s) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := NewRNG(21)
	p := g.Perm(10)
	seen := map[int]bool{}
	for _, v := range p {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Perm(10) not a permutation: %v", p)
	}
}
