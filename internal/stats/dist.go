package stats

import (
	"fmt"
	"math"
)

// Erlang is the Erlang distribution: the sum of Shape independent
// exponential variates, each with the given Rate. The paper (Section
// 6.2, citing Kleinrock) draws the volumes of embedded δ-clusters from
// an Erlang distribution and sweeps its variance, so this sampler is
// parameterized both directly (shape, rate) and by the
// mean/variance pair the paper's figures use.
type Erlang struct {
	// Shape is the number of exponential stages, k >= 1.
	Shape int
	// Rate is the rate λ > 0 of each stage.
	Rate float64
}

// NewErlang returns an Erlang distribution with the given shape and
// rate. It returns an error if shape < 1 or rate <= 0.
func NewErlang(shape int, rate float64) (Erlang, error) {
	if shape < 1 {
		return Erlang{}, fmt.Errorf("stats: erlang shape %d < 1", shape)
	}
	if !(rate > 0) {
		return Erlang{}, fmt.Errorf("stats: erlang rate %v <= 0", rate)
	}
	return Erlang{Shape: shape, Rate: rate}, nil
}

// ErlangFromMeanVariance returns an Erlang distribution whose mean is
// mean and whose variance approximates variance as closely as the
// integral shape parameter permits. The paper's Figure 9 and Table 5
// sweep "the variance of the Erlang distribution" at a fixed mean;
// this constructor is exactly that knob.
//
// An Erlang(k, λ) has mean k/λ and variance k/λ², so k = mean²/variance
// (rounded to the nearest integer ≥ 1) and λ = k/mean. A variance of 0
// is accepted and yields a degenerate distribution that always returns
// the mean, matching the paper's "all clusters have the same volume if
// the variance is 0".
func ErlangFromMeanVariance(mean, variance float64) (Erlang, error) {
	if !(mean > 0) {
		return Erlang{}, fmt.Errorf("stats: erlang mean %v <= 0", mean)
	}
	if variance < 0 {
		return Erlang{}, fmt.Errorf("stats: erlang variance %v < 0", variance)
	}
	if variance == 0 {
		// Degenerate: signalled by Rate = +Inf, handled in Sample.
		return Erlang{Shape: 1, Rate: math.Inf(1)}, nil
	}
	k := int(math.Round(mean * mean / variance))
	if k < 1 {
		k = 1
	}
	return Erlang{Shape: k, Rate: float64(k) / mean}, nil
}

// Mean returns the distribution mean k/λ.
func (e Erlang) Mean() float64 {
	if math.IsInf(e.Rate, 1) {
		return 0 // degenerate distributions carry their mean at sample time
	}
	return float64(e.Shape) / e.Rate
}

// Variance returns the distribution variance k/λ².
func (e Erlang) Variance() float64 {
	if math.IsInf(e.Rate, 1) {
		return 0
	}
	return float64(e.Shape) / (e.Rate * e.Rate)
}

// Sample draws one variate using g.
func (e Erlang) Sample(g *RNG) float64 {
	if math.IsInf(e.Rate, 1) {
		// Degenerate zero-variance case from ErlangFromMeanVariance:
		// the caller supplies the mean via SampleMean.
		return 0
	}
	sum := 0.0
	for i := 0; i < e.Shape; i++ {
		sum += g.ExpFloat64()
	}
	return sum / e.Rate
}

// VolumeSampler draws positive integer volumes with a given mean and
// variance, the way the synthetic workloads of Section 6.2 draw
// embedded (and seed) cluster volumes. Variance 0 always returns the
// rounded mean.
type VolumeSampler struct {
	mean float64
	dist Erlang
	zero bool
}

// NewVolumeSampler builds a sampler of Erlang-distributed volumes with
// the given mean and variance. The mean must be positive.
func NewVolumeSampler(mean, variance float64) (*VolumeSampler, error) {
	d, err := ErlangFromMeanVariance(mean, variance)
	if err != nil {
		return nil, err
	}
	return &VolumeSampler{mean: mean, dist: d, zero: variance == 0}, nil
}

// Sample returns a volume ≥ 1.
func (v *VolumeSampler) Sample(g *RNG) int {
	var x float64
	if v.zero {
		x = v.mean
	} else {
		x = v.dist.Sample(g)
	}
	n := int(math.Round(x))
	if n < 1 {
		n = 1
	}
	return n
}

// Mean reports the configured mean volume.
func (v *VolumeSampler) Mean() float64 { return v.mean }
