package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewErlangValidation(t *testing.T) {
	if _, err := NewErlang(0, 1); err == nil {
		t.Error("shape 0 accepted")
	}
	if _, err := NewErlang(1, 0); err == nil {
		t.Error("rate 0 accepted")
	}
	if _, err := NewErlang(1, -2); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewErlang(3, 0.5); err != nil {
		t.Errorf("valid erlang rejected: %v", err)
	}
}

func TestErlangMomentsMatchSamples(t *testing.T) {
	g := NewRNG(99)
	e, err := NewErlang(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var w Welford
	for i := 0; i < 50000; i++ {
		w.Add(e.Sample(g))
	}
	if m := w.Mean(); math.Abs(m-e.Mean()) > 0.05 {
		t.Errorf("sample mean %v, want ≈%v", m, e.Mean())
	}
	if v := w.Variance(); math.Abs(v-e.Variance()) > 0.1 {
		t.Errorf("sample variance %v, want ≈%v", v, e.Variance())
	}
}

func TestErlangFromMeanVariance(t *testing.T) {
	cases := []struct{ mean, variance float64 }{
		{300, 1}, {300, 3}, {300, 5}, {100, 100}, {10, 2},
	}
	for _, c := range cases {
		e, err := ErlangFromMeanVariance(c.mean, c.variance)
		if err != nil {
			t.Fatalf("mean=%v var=%v: %v", c.mean, c.variance, err)
		}
		if got := e.Mean(); math.Abs(got-c.mean)/c.mean > 0.01 {
			t.Errorf("mean=%v var=%v: distribution mean %v", c.mean, c.variance, got)
		}
		// The integral shape rounds the variance; allow slack of one
		// part in the shape.
		if got := e.Variance(); c.variance > 0 && math.Abs(got-c.variance)/c.variance > 0.5 {
			t.Errorf("mean=%v var=%v: distribution variance %v", c.mean, c.variance, got)
		}
	}
}

func TestErlangFromMeanVarianceZeroVariance(t *testing.T) {
	e, err := ErlangFromMeanVariance(300, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Variance() != 0 {
		t.Errorf("variance = %v, want 0", e.Variance())
	}
}

func TestErlangFromMeanVarianceValidation(t *testing.T) {
	if _, err := ErlangFromMeanVariance(0, 1); err == nil {
		t.Error("mean 0 accepted")
	}
	if _, err := ErlangFromMeanVariance(10, -1); err == nil {
		t.Error("negative variance accepted")
	}
}

func TestVolumeSamplerZeroVariance(t *testing.T) {
	v, err := NewVolumeSampler(300, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := NewRNG(1)
	for i := 0; i < 100; i++ {
		if got := v.Sample(g); got != 300 {
			t.Fatalf("zero-variance sampler returned %d, want 300", got)
		}
	}
}

func TestVolumeSamplerMean(t *testing.T) {
	v, err := NewVolumeSampler(300, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := NewRNG(8)
	var w Welford
	for i := 0; i < 20000; i++ {
		w.Add(float64(v.Sample(g)))
	}
	if m := w.Mean(); math.Abs(m-300) > 1 {
		t.Errorf("sample mean %v, want ≈300", m)
	}
}

func TestVolumeSamplerAlwaysPositive(t *testing.T) {
	v, err := NewVolumeSampler(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	g := NewRNG(4)
	for i := 0; i < 5000; i++ {
		if got := v.Sample(g); got < 1 {
			t.Fatalf("sampler returned %d < 1", got)
		}
	}
}

func TestVolumeSamplerValidation(t *testing.T) {
	if _, err := NewVolumeSampler(-5, 1); err == nil {
		t.Error("negative mean accepted")
	}
}

// Property: Erlang samples are non-negative for any valid shape/rate.
func TestErlangSamplesNonNegativeProperty(t *testing.T) {
	f := func(seed int64, rawShape uint8, rawRate uint16) bool {
		shape := int(rawShape%20) + 1
		rate := float64(rawRate%1000)/100 + 0.01
		e, err := NewErlang(shape, rate)
		if err != nil {
			return false
		}
		g := NewRNG(seed)
		for i := 0; i < 20; i++ {
			if e.Sample(g) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
