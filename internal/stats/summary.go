package stats

import "math"

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or NaN when fewer
// than one value is present.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// MeanAbs returns the mean of |x| over xs, or NaN for an empty slice.
func MeanAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Abs(x)
	}
	return sum / float64(len(xs))
}

// MinMax returns the smallest and largest values of xs. It returns
// (NaN, NaN) for an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Welford accumulates a running mean and variance in one pass without
// storing the samples (Welford's online algorithm). The experiment
// harness uses it to aggregate per-trial metrics.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean, or NaN before any observation.
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the running population variance, or NaN before any
// observation.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the square root of Variance.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }
