package stats

import "math"

// This file holds the approved floating-point comparison helpers the
// deltavet floatcmp analyzer points at: residues, gains and bases
// computed along different code paths differ in the last ulp, so
// deterministic packages must compare them through a tolerance
// instead of raw ==/!=. The helpers themselves legitimately use raw
// comparisons to define the semantics and are marked accordingly.

// EqualWithin reports whether a and b differ by at most tol. NaN is
// never equal to anything; equal infinities are equal regardless of
// tol.
//
// deltavet:approx-helper
func EqualWithin(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { // exact fast path; covers equal infinities
		return true
	}
	return math.Abs(a-b) <= tol
}

// Close reports approximate equality under a mixed absolute/relative
// tolerance of 1e-9·(1+max(|a|,|b|)) — the same scale-aware guard
// the FLOC engine uses to ignore floating-point jitter when deciding
// whether an iteration improved.
//
// deltavet:approx-helper
func Close(a, b float64) bool {
	scale := math.Abs(a)
	if s := math.Abs(b); s > scale {
		scale = s
	}
	return EqualWithin(a, b, 1e-9*(1+scale))
}

// IsZero reports whether x is exactly zero — the "field not set"
// sentinel check for float configuration values. Unlike the
// tolerance helpers this is an exact comparison by design: a
// deliberately tiny configured value must not be mistaken for unset.
//
// deltavet:approx-helper
func IsZero(x float64) bool { return x == 0 }
