package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= eps
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, math.NaN()},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVariance(t *testing.T) {
	if got := Variance([]float64{2, 2, 2}); got != 0 {
		t.Errorf("constant variance = %v, want 0", got)
	}
	if got := Variance([]float64{1, 3}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Variance(1,3) = %v, want 1", got)
	}
	if got := Variance(nil); !math.IsNaN(got) {
		t.Errorf("Variance(nil) = %v, want NaN", got)
	}
}

func TestMeanAbs(t *testing.T) {
	if got := MeanAbs([]float64{-2, 2}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("MeanAbs(-2,2) = %v, want 2", got)
	}
	if got := MeanAbs(nil); !math.IsNaN(got) {
		t.Errorf("MeanAbs(nil) = %v, want NaN", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%v, %v), want (-1, 7)", min, max)
	}
	min, max = MinMax(nil)
	if !math.IsNaN(min) || !math.IsNaN(max) {
		t.Errorf("MinMax(nil) = (%v, %v), want NaN", min, max)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	xs := []float64{1.5, -2, 3.25, 0, 9, -4.5, 2}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Fatalf("N = %d, want %d", w.N(), len(xs))
	}
	if !almostEqual(w.Mean(), Mean(xs), 1e-12) {
		t.Errorf("Welford mean %v, batch %v", w.Mean(), Mean(xs))
	}
	if !almostEqual(w.Variance(), Variance(xs), 1e-9) {
		t.Errorf("Welford variance %v, batch %v", w.Variance(), Variance(xs))
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Variance()) {
		t.Error("empty Welford should report NaN moments")
	}
}

// Property: Welford agrees with the two-pass formulas on arbitrary
// input.
func TestWelfordProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				continue
			}
			xs = append(xs, x)
		}
		if len(xs) == 0 {
			return true
		}
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		scale := 1.0 + math.Abs(Mean(xs))
		return almostEqual(w.Mean(), Mean(xs), 1e-8*scale) &&
			almostEqual(w.Variance(), Variance(xs), 1e-6*(1+Variance(xs)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
