package stats

import (
	"math"
	"testing"
)

func TestEqualWithin(t *testing.T) {
	inf, nan := math.Inf(1), math.NaN()
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-12, 1e-9, true},
		{1, 1.1, 1e-9, false},
		{-2, 2, 5, true},
		{inf, inf, 0, true},   // exact fast path covers infinities
		{inf, -inf, 0, false}, // Inf−(−Inf) = Inf > any tol
		{inf, 1, 1e300, false},
		{nan, nan, inf, false}, // NaN never equal, even with tol = +Inf
		{nan, 1, 1, false},
		{1, nan, 1, false},
		{0, 0, 0, true},
		{0, math.Copysign(0, -1), 0, true},
	}
	for _, c := range cases {
		if got := EqualWithin(c.a, c.b, c.tol); got != c.want {
			t.Errorf("EqualWithin(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestClose(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{0, 1e-10, true},          // absolute part: below 1e-9·1
		{0, 1e-8, false},          // above it
		{1e12, 1e12 + 1, true},    // relative part: tolerance ≈ 1e-9·1e12 = 1e3
		{1e12, 1e12 + 1e4, false}, // 1e4 exceeds it
		{math.NaN(), math.NaN(), false},
		{math.Inf(1), math.Inf(1), true},
	}
	for _, c := range cases {
		if got := Close(c.a, c.b); got != c.want {
			t.Errorf("Close(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := Close(c.b, c.a); got != c.want {
			t.Errorf("Close(%v, %v) = %v, want %v (asymmetric!)", c.b, c.a, got, c.want)
		}
	}
}

func TestIsZero(t *testing.T) {
	if !IsZero(0) || !IsZero(math.Copysign(0, -1)) {
		t.Error("IsZero must accept both zero signs")
	}
	for _, x := range []float64{1e-300, -1e-300, 1, math.NaN(), math.Inf(1)} {
		if IsZero(x) {
			t.Errorf("IsZero(%v) = true, want false (exact sentinel check)", x)
		}
	}
}
