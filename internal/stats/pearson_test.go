package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPearsonRPerfectPositive(t *testing.T) {
	// Shifted copies correlate perfectly — the paper's Figure 1 vectors.
	d1 := []float64{1, 5, 23, 12, 20}
	d2 := []float64{11, 15, 33, 22, 30}
	if r := PearsonR(d1, d2); !almostEqual(r, 1, 1e-12) {
		t.Errorf("R = %v, want 1", r)
	}
}

func TestPearsonRPerfectNegative(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{4, 3, 2, 1}
	if r := PearsonR(a, b); !almostEqual(r, -1, 1e-12) {
		t.Errorf("R = %v, want -1", r)
	}
}

// The paper's motivating counter-example (Section 1): two viewers with
// consistent per-genre bias but opposite genre preferences. Pearson R
// is strongly negative even though each genre block is perfectly
// coherent — exactly why the δ-cluster model is needed.
func TestPearsonRMissesSubspaceCoherence(t *testing.T) {
	v1 := []float64{8, 7, 9, 2, 2, 3}
	v2 := []float64{2, 1, 3, 8, 8, 9}
	r := PearsonR(v1, v2)
	if r > 0 {
		t.Fatalf("global R = %v; expected non-positive for opposed biases", r)
	}
	// Per-genre blocks are perfectly correlated.
	if br := PearsonR(v1[:3], v2[:3]); !almostEqual(br, 1, 1e-12) {
		t.Errorf("action-block R = %v, want 1", br)
	}
	if br := PearsonR(v1[3:], v2[3:]); !almostEqual(br, 1, 1e-12) {
		t.Errorf("family-block R = %v, want 1", br)
	}
}

func TestPearsonRMissingValues(t *testing.T) {
	nan := math.NaN()
	a := []float64{1, nan, 3, 4, nan}
	b := []float64{2, 5, 4, 5, nan}
	// Paired specified entries: (1,2), (3,4), (4,5) — perfectly linear.
	if r := PearsonR(a, b); !almostEqual(r, 1, 1e-12) {
		t.Errorf("R = %v, want 1", r)
	}
}

func TestPearsonRDegenerate(t *testing.T) {
	if r := PearsonR([]float64{1, 1, 1}, []float64{1, 2, 3}); !math.IsNaN(r) {
		t.Errorf("constant vector R = %v, want NaN", r)
	}
	nan := math.NaN()
	if r := PearsonR([]float64{1, nan, nan}, []float64{2, 3, 4}); !math.IsNaN(r) {
		t.Errorf("single paired entry R = %v, want NaN", r)
	}
}

func TestPearsonRPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	PearsonR([]float64{1}, []float64{1, 2})
}

// Properties: symmetry, range, shift/scale invariance.
func TestPearsonRProperties(t *testing.T) {
	gen := func(seed int64, n int) ([]float64, []float64) {
		g := NewRNG(seed)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = g.Uniform(-10, 10)
			b[i] = g.Uniform(-10, 10)
		}
		return a, b
	}
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%20) + 3
		a, b := gen(seed, n)
		r := PearsonR(a, b)
		if math.IsNaN(r) {
			return true
		}
		// Symmetry.
		if !almostEqual(r, PearsonR(b, a), 1e-12) {
			return false
		}
		// Range.
		if r < -1-1e-12 || r > 1+1e-12 {
			return false
		}
		// Shift and positive-scale invariance of the first argument.
		shifted := make([]float64, n)
		for i := range a {
			shifted[i] = 3*a[i] + 7
		}
		return almostEqual(r, PearsonR(shifted, b), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
