// Package stats provides the small statistical toolkit the δ-cluster
// reproduction is built on: a deterministic random number generator,
// the samplers used by the synthetic workload generators (uniform,
// Gaussian, exponential and the Erlang distribution the paper draws
// embedded-cluster volumes from), the Pearson R correlation discussed
// in the paper's introduction, and scalar summary helpers.
//
// Everything in this package is deterministic given a seed, which is
// what makes the experiment harness reproducible bit-for-bit.
package stats

import "math/rand"

// RNG is a deterministic pseudo-random source. It is a thin wrapper
// around math/rand.Rand that fixes the seeding discipline: every
// randomized component in this repository receives an explicit *RNG,
// never the process-global source.
//
// An RNG additionally tracks its position in the stream: every value
// any method returns is derived from Source.Int63 draws, and the RNG
// counts them. (Seed, Draws) therefore identifies a point in the
// stream exactly, and NewRNGAt reconstructs a generator at that point
// — the primitive the FLOC checkpoint/resume machinery builds on.
type RNG struct {
	r    *rand.Rand
	src  *countingSource
	seed int64
}

// countingSource wraps the underlying rand.Source and counts Int63
// calls. It deliberately does NOT implement rand.Source64: with a
// plain Source, every rand.Rand method this wrapper exposes funnels
// through Int63, so the draw count is a complete account of consumed
// entropy.
type countingSource struct {
	src   rand.Source
	draws uint64
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Seed(seed int64) { c.src.Seed(seed) }

// NewRNG returns a generator seeded with seed. Two generators created
// with the same seed produce identical streams.
func NewRNG(seed int64) *RNG {
	src := &countingSource{src: rand.NewSource(seed)}
	return &RNG{r: rand.New(src), src: src, seed: seed}
}

// NewRNGAt returns a generator positioned exactly draws Int63 draws
// into the stream of NewRNG(seed): the fast-forward used to resume a
// checkpointed run. Fast-forwarding costs O(draws) cheap source
// calls.
func NewRNGAt(seed int64, draws uint64) *RNG {
	g := NewRNG(seed)
	for i := uint64(0); i < draws; i++ {
		g.src.Int63()
	}
	g.src.draws = draws
	return g
}

// InitialSeed returns the seed the generator was created with.
func (g *RNG) InitialSeed() int64 { return g.seed }

// Draws returns how many Int63 draws the generator has consumed from
// its source. Together with InitialSeed it pins the generator's exact
// position in the stream (see NewRNGAt).
func (g *RNG) Draws() uint64 { return g.src.draws }

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0, n). It panics if n <= 0,
// matching math/rand semantics.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns an exponential variate with rate 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Uniform returns a uniform value in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// UniformInt returns a uniform integer in [lo, hi]. It panics if
// hi < lo.
func (g *RNG) UniformInt(lo, hi int) int {
	if hi < lo {
		panic("stats: UniformInt with hi < lo")
	}
	return lo + g.r.Intn(hi-lo+1)
}

// Bool returns true with probability p (clamped to [0, 1]).
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Split derives a child generator from the current stream. Children
// seeded from distinct points of the parent stream are independent for
// the purposes of this repository (workload generation and seeding),
// and splitting keeps experiment components reproducible even when the
// amount of randomness one component consumes changes.
func (g *RNG) Split() *RNG { return NewRNG(g.r.Int63()) }

// SampleWithoutReplacement returns k distinct integers drawn uniformly
// from [0, n). It panics if k > n or k < 0. The result is in random
// order.
func (g *RNG) SampleWithoutReplacement(n, k int) []int {
	if k < 0 || k > n {
		panic("stats: SampleWithoutReplacement with k out of range")
	}
	// Partial Fisher-Yates over an index array: O(n) space, O(n+k) time.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + g.r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
		out[i] = idx[i]
	}
	return out
}
