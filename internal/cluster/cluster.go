// Package cluster implements the δ-cluster model of Section 3 of the
// paper: a submatrix identified by a subset of objects (rows) and a
// subset of attributes (columns) of a data matrix that may contain
// missing values.
//
// The package maintains the sums and counts needed to evaluate the
// model's quantities incrementally:
//
//   - the base of an object d_iJ (mean of its specified entries over
//     the cluster's columns), of an attribute d_Ij, and of the cluster
//     d_IJ (Definition 3.3);
//   - the residue r_ij = d_ij − d_iJ − d_Ij + d_IJ of a specified
//     entry, and 0 for a missing entry (Definition 3.4);
//   - the cluster residue: the arithmetic mean of |r_ij| over the
//     cluster's volume, i.e. its specified entries (Definition 3.5),
//     with the squared mean of Cheng & Church available as an option;
//   - the volume (Definition 3.2) and the occupancy condition on α
//     (Definition 3.1).
//
// Adding or removing one row (column) costs O(columns) (O(rows));
// computing the residue costs O(volume), matching the complexity
// analysis in Section 4.2 of the paper.
//
// This package is marked deltavet:deterministic — its aggregates feed
// the FLOC engine's replayable bookkeeping, so cmd/deltavet forbids
// unordered map iteration, direct math/rand use and raw float
// equality here.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"deltacluster/internal/matrix"
)

// ResidueMean selects how per-entry residues are aggregated into the
// cluster residue.
type ResidueMean int

const (
	// ArithmeticMean averages |r_ij| — the paper's choice
	// (Definition 3.5).
	ArithmeticMean ResidueMean = iota
	// SquaredMean averages r_ij² — the mean squared residue of the
	// bicluster model the paper generalizes.
	SquaredMean
)

// Cluster is a mutable δ-cluster over a fixed data matrix. The zero
// value is unusable; construct with New or FromSpec. A Cluster holds a
// reference to the matrix and assumes the matrix entries do not change
// while the cluster is alive (the FLOC engine, the generators and the
// examples all follow this discipline).
type Cluster struct {
	m *matrix.Matrix

	rowPos     []int // position of row in memberRows, or -1
	colPos     []int
	memberRows []int
	memberCols []int

	// The aggregate caches below are guarded: they must track the
	// membership sets exactly or every base and residue goes subtly
	// wrong, so only the membership mutators and the wholesale
	// rebuild/copy functions (marked deltavet:writer) may assign
	// them — enforced by cmd/deltavet's residueinvariant pass.
	rowSum []float64 // per matrix row: sum of specified entries over member cols // deltavet:guard
	rowCnt []int     // per matrix row: count of those entries // deltavet:guard
	colSum []float64 // per matrix col: sum of specified entries over member rows // deltavet:guard
	colCnt []int     // per matrix col: count of those entries // deltavet:guard

	total  float64 // sum of all specified entries in the submatrix // deltavet:guard
	volume int     // count of specified entries in the submatrix // deltavet:guard

	// The evaluation pack (pack.go): a dense row-major copy of the
	// member submatrix in internal member order, enabled by EnablePack.
	// Guarded like the aggregates — its blocks must track
	// memberRows/memberCols exactly or the packed residue scan reads
	// the wrong entries.
	pack       []float64 // (r, k) → value at (memberRows[r], memberCols[k]) // deltavet:guard
	packBases  []float64 // r → rowSum/rowCnt of memberRows[r], recached on mutation // deltavet:guard
	packStride int       // floats per pack block; 0 while disabled // deltavet:guard

	// The residue-mass aggregates (incremental.go): absSum carries
	// Σφ(r_ij) over the cluster's specified entries — φ = |·| under
	// ArithmeticMean, squaring under SquaredMean — with rowAbs/colAbs
	// each row's and column's share. Delta-maintained by the membership
	// mutators under the fold convention documented in incremental.go
	// once EnableResidueAggregates turns the tier on, and guarded like
	// the sums: only deltavet:writer functions may assign them.
	absTracked bool        // tier enabled; set only by EnableResidueAggregates/CopyFrom
	specPaused bool        // maintenance suspended (speculative toggles); see SetSpeculationPaused
	absMean    ResidueMean // which φ the masses aggregate
	rowAbs     []float64   // per matrix row: its share of absSum // deltavet:guard
	colAbs     []float64   // per matrix col: its share of absSum // deltavet:guard
	absSum     float64     // Σφ(r_ij) under the fold convention // deltavet:guard

	// colBases is unguarded scratch reused by ResidueWith to hold the
	// hoisted attribute bases for one scan. It carries no state between
	// calls (fully overwritten before use) and is deliberately not
	// copied by Clone/CopyFrom.
	colBases []float64
}

// New returns an empty δ-cluster over m.
func New(m *matrix.Matrix) *Cluster {
	c := &Cluster{
		m:      m,
		rowPos: make([]int, m.Rows()),
		colPos: make([]int, m.Cols()),
		rowSum: make([]float64, m.Rows()),
		rowCnt: make([]int, m.Rows()),
		colSum: make([]float64, m.Cols()),
		colCnt: make([]int, m.Cols()),
	}
	for i := range c.rowPos {
		c.rowPos[i] = -1
	}
	for j := range c.colPos {
		c.colPos[j] = -1
	}
	return c
}

// FromSpec returns a cluster over m populated with the given rows and
// columns. Duplicate indices are ignored; out-of-range indices panic.
func FromSpec(m *matrix.Matrix, rows, cols []int) *Cluster {
	c := New(m)
	for _, j := range cols {
		if !c.HasCol(j) {
			c.AddCol(j)
		}
	}
	for _, i := range rows {
		if !c.HasRow(i) {
			c.AddRow(i)
		}
	}
	return c
}

// FromOrdered returns a cluster over m whose internal member order is
// exactly the given row and column sequences, with aggregates built by
// a wholesale Recompute (deltavet:writer). It is the checkpoint-resume
// counterpart of OrderedRows/OrderedCols: the engine's residue sums
// accumulate in internal member order, so restoring a checkpoint must
// reproduce that order — not merely the membership set — for a resumed
// run to be bit-identical to an uninterrupted one. It returns an error
// on out-of-range or duplicate indices (checkpoints cross a trust
// boundary, unlike FromSpec's in-process callers).
func FromOrdered(m *matrix.Matrix, rows, cols []int) (*Cluster, error) {
	c := New(m)
	for _, i := range rows {
		if i < 0 || i >= m.Rows() {
			return nil, fmt.Errorf("cluster: row index %d out of %d rows", i, m.Rows())
		}
		if c.rowPos[i] >= 0 {
			return nil, fmt.Errorf("cluster: duplicate row index %d", i)
		}
		c.rowPos[i] = len(c.memberRows)
		c.memberRows = append(c.memberRows, i)
	}
	for _, j := range cols {
		if j < 0 || j >= m.Cols() {
			return nil, fmt.Errorf("cluster: column index %d out of %d columns", j, m.Cols())
		}
		if c.colPos[j] >= 0 {
			return nil, fmt.Errorf("cluster: duplicate column index %d", j)
		}
		c.colPos[j] = len(c.memberCols)
		c.memberCols = append(c.memberCols, j)
	}
	c.Recompute()
	return c, nil
}

// Matrix returns the underlying data matrix.
func (c *Cluster) Matrix() *matrix.Matrix { return c.m }

// HasRow reports whether matrix row i is a member.
func (c *Cluster) HasRow(i int) bool { return c.rowPos[i] >= 0 }

// HasCol reports whether matrix column j is a member.
func (c *Cluster) HasCol(j int) bool { return c.colPos[j] >= 0 }

// NumRows returns the number of member rows (|I|).
func (c *Cluster) NumRows() int { return len(c.memberRows) }

// NumCols returns the number of member columns (|J|).
func (c *Cluster) NumCols() int { return len(c.memberCols) }

// Volume returns the number of specified entries in the submatrix
// (Definition 3.2).
func (c *Cluster) Volume() int { return c.volume }

// Rows returns the member row indices in ascending order.
func (c *Cluster) Rows() []int {
	out := append([]int(nil), c.memberRows...)
	sort.Ints(out)
	return out
}

// Cols returns the member column indices in ascending order.
func (c *Cluster) Cols() []int {
	out := append([]int(nil), c.memberCols...)
	sort.Ints(out)
	return out
}

// RowsInto overwrites dst with the member row indices in ascending
// order, reusing dst's storage, and returns the result — the
// zero-allocation counterpart of Rows for hot paths that scan the
// membership every evaluation (see floc's approximate gain).
func (c *Cluster) RowsInto(dst []int) []int {
	dst = append(dst[:0], c.memberRows...)
	sort.Ints(dst)
	return dst
}

// ColsInto overwrites dst with the member column indices in ascending
// order, reusing dst's storage; see RowsInto.
func (c *Cluster) ColsInto(dst []int) []int {
	dst = append(dst[:0], c.memberCols...)
	sort.Ints(dst)
	return dst
}

// OrderedRows returns a copy of the member row indices in internal
// (insertion) order. Floating-point aggregates accumulate in this
// order, so it — not the sorted view — is what a checkpoint must
// capture to make a resumed run bit-identical (see FromOrdered).
func (c *Cluster) OrderedRows() []int {
	return append([]int(nil), c.memberRows...)
}

// OrderedCols returns a copy of the member column indices in internal
// (insertion) order; see OrderedRows.
func (c *Cluster) OrderedCols() []int {
	return append([]int(nil), c.memberCols...)
}

// AddRow inserts matrix row i, folding its entries into the guarded
// aggregates (deltavet:writer). It panics if i is already a member.
func (c *Cluster) AddRow(i int) {
	if c.rowPos[i] >= 0 {
		panic(fmt.Sprintf("cluster: AddRow(%d): already a member", i))
	}
	c.rowPos[i] = len(c.memberRows)
	c.memberRows = append(c.memberRows, i)
	row := c.m.RowView(i)
	if c.packStride > 0 && !c.specPaused {
		c.packAppendRow(row)
	}
	for _, j := range c.memberCols {
		v := row[j]
		if math.IsNaN(v) {
			continue
		}
		c.rowSum[i] += v
		c.rowCnt[i]++
		c.colSum[j] += v
		c.colCnt[j]++
		c.total += v
		c.volume++
	}
	if c.packStride > 0 && !c.specPaused {
		// Only the new row's sums changed; the other cached bases stand.
		c.packRefreshBase(len(c.memberRows)-1, i)
	}
	if c.absTracked && !c.specPaused {
		c.absAddRow(i)
	}
}

// RemoveRow removes matrix row i, unwinding its entries from the
// guarded aggregates (deltavet:writer). It panics if i is not a
// member.
func (c *Cluster) RemoveRow(i int) {
	pos := c.rowPos[i]
	if pos < 0 {
		panic(fmt.Sprintf("cluster: RemoveRow(%d): not a member", i))
	}
	if c.absTracked && !c.specPaused {
		// Unwind the residue masses first, under the pre-removal bases.
		c.absRemoveRow(i)
	}
	last := len(c.memberRows) - 1
	moved := c.memberRows[last]
	c.memberRows[pos] = moved
	c.rowPos[moved] = pos
	c.memberRows = c.memberRows[:last]
	c.rowPos[i] = -1
	if c.packStride > 0 && !c.specPaused {
		c.packRemoveRow(pos)
	}

	row := c.m.RowView(i)
	for _, j := range c.memberCols {
		v := row[j]
		if math.IsNaN(v) {
			continue
		}
		c.colSum[j] -= v
		c.colCnt[j]--
		c.total -= v
		c.volume--
	}
	c.rowSum[i] = 0
	c.rowCnt[i] = 0
}

// AddCol inserts matrix column j, folding its entries into the
// guarded aggregates (deltavet:writer). It panics if j is already a
// member.
func (c *Cluster) AddCol(j int) {
	if c.colPos[j] >= 0 {
		panic(fmt.Sprintf("cluster: AddCol(%d): already a member", j))
	}
	c.colPos[j] = len(c.memberCols)
	c.memberCols = append(c.memberCols, j)
	if c.packStride > 0 && !c.specPaused && len(c.memberCols) > c.packStride {
		// Widen before the early return too: with no member rows there
		// are no blocks to move, but the stride invariant
		// (packStride ≥ len(memberCols)) must hold before the next
		// packAppendRow.
		c.packGrowStride()
	}
	if len(c.memberRows) == 0 {
		return
	}
	// The column-major mirror turns this scan from stride-Cols to
	// unit-stride; the mirror entries are bit copies of the row-major
	// backing, so every accumulated operand is unchanged. The guard
	// above keeps generators that add columns to empty clusters from
	// forcing a mirror build they will never read.
	col := c.m.ColView(j)
	if c.packStride > 0 && !c.specPaused {
		c.packAppendCol(col)
	}
	for _, i := range c.memberRows {
		v := col[i]
		if math.IsNaN(v) {
			continue
		}
		c.rowSum[i] += v
		c.rowCnt[i]++
		c.colSum[j] += v
		c.colCnt[j]++
		c.total += v
		c.volume++
	}
	if c.packStride > 0 && !c.specPaused {
		c.packRefreshBases()
	}
	if c.absTracked && !c.specPaused {
		c.absAddCol(j)
	}
}

// RemoveCol removes matrix column j, unwinding its entries from the
// guarded aggregates (deltavet:writer). It panics if j is not a
// member.
func (c *Cluster) RemoveCol(j int) {
	pos := c.colPos[j]
	if pos < 0 {
		panic(fmt.Sprintf("cluster: RemoveCol(%d): not a member", j))
	}
	if c.absTracked && !c.specPaused {
		// Unwind the residue masses first, under the pre-removal bases.
		c.absRemoveCol(j)
	}
	last := len(c.memberCols) - 1
	moved := c.memberCols[last]
	c.memberCols[pos] = moved
	c.colPos[moved] = pos
	c.memberCols = c.memberCols[:last]
	c.colPos[j] = -1
	if c.packStride > 0 && !c.specPaused {
		c.packRemoveCol(pos)
	}

	if len(c.memberRows) > 0 {
		col := c.m.ColView(j) // unit-stride; bit copies of the backing
		for _, i := range c.memberRows {
			v := col[i]
			if math.IsNaN(v) {
				continue
			}
			c.rowSum[i] -= v
			c.rowCnt[i]--
			c.total -= v
			c.volume--
		}
		if c.packStride > 0 && !c.specPaused {
			c.packRefreshBases()
		}
	}
	c.colSum[j] = 0
	c.colCnt[j] = 0
}

// ToggleUndo captures the exact bits one membership toggle disturbs,
// so the toggle can be reversed bit-for-bit. A plain toggle-back is
// NOT such a reversal: float sums do not round-trip ((x+v)−v ≠ x in
// general) and removing a member swaps it with the last one, so a
// remove-then-re-add permutes internal member order and every later
// aggregate accumulates in a different sequence. Speculative gain
// evaluation — score a toggle, then pretend it never happened — needs
// the exact reversal: it makes each evaluation a pure function of the
// cluster's frozen state, independent of how many evaluations ran
// before it or on which goroutine (the property the FLOC parallel
// decide phase is built on).
//
// The zero value is ready to use; the capture buffer is reused across
// Save/Undo pairs, so one ToggleUndo per evaluator goroutine amortizes
// to zero allocations. A ToggleUndo must not be shared concurrently.
type ToggleUndo struct {
	sums    []float64 // cross-axis member sums in internal order (colSum for a row toggle, rowSum for a column toggle)
	total   float64
	itemSum float64
	itemCnt int
	pos     int
	member  bool

	// Residue-mass capture, filled only while the incremental tier is
	// enabled: the cross-axis shares in internal order, the toggled
	// item's own share and the total mass.
	abs      []float64
	absItem  float64
	absTotal float64
}

// SaveRowToggle records in u everything a ToggleRow(i) will disturb.
// Call it immediately before the toggle; UndoRowToggle then restores
// the cluster bit-for-bit.
func (c *Cluster) SaveRowToggle(i int, u *ToggleUndo) {
	u.member = c.rowPos[i] >= 0
	u.pos = c.rowPos[i]
	u.itemSum = c.rowSum[i]
	u.itemCnt = c.rowCnt[i]
	u.total = c.total
	u.sums = u.sums[:0]
	for _, j := range c.memberCols {
		u.sums = append(u.sums, c.colSum[j])
	}
	if c.absTracked && !c.specPaused {
		u.absItem = c.rowAbs[i]
		u.absTotal = c.absSum
		u.abs = u.abs[:0]
		for _, j := range c.memberCols {
			u.abs = append(u.abs, c.colAbs[j])
		}
	}
}

// UndoRowToggle exactly reverses the ToggleRow(i) that followed
// SaveRowToggle(i, u): membership, internal member order and every
// guarded aggregate are restored to the saved bits (deltavet:writer).
// The counts and the volume reverse exactly under integer arithmetic;
// the float sums are overwritten from the capture because addition
// does not round-trip.
func (c *Cluster) UndoRowToggle(i int, u *ToggleUndo) {
	if u.member {
		// The toggle removed row i (swapping it with the last member);
		// re-add it and swap it back to its original position.
		c.AddRow(i)
		last := len(c.memberRows) - 1
		moved := c.memberRows[u.pos]
		c.memberRows[u.pos] = i
		c.memberRows[last] = moved
		c.rowPos[i] = u.pos
		c.rowPos[moved] = last
		if c.packStride > 0 && !c.specPaused {
			c.packSwapRows(u.pos, last)
		}
		c.rowSum[i] = u.itemSum
		c.rowCnt[i] = u.itemCnt
		if c.packStride > 0 && !c.specPaused {
			// AddRow cached a base from the re-accumulated sums; recache
			// it from the restored bits.
			c.packRefreshBase(u.pos, i)
		}
	} else {
		// The toggle appended row i; removing the last member restores
		// order exactly, and a non-member's rowSum/rowCnt are zero by
		// invariant.
		c.RemoveRow(i)
	}
	for k, j := range c.memberCols {
		c.colSum[j] = u.sums[k]
	}
	if c.absTracked && !c.specPaused {
		// The Add/Remove inside this undo re-folded the residue masses
		// under whatever bases it saw; restore the captured bits.
		for k, j := range c.memberCols {
			c.colAbs[j] = u.abs[k]
		}
		c.rowAbs[i] = u.absItem
		c.absSum = u.absTotal
	}
	c.total = u.total
}

// SaveColToggle records in u everything a ToggleCol(j) will disturb;
// see SaveRowToggle.
func (c *Cluster) SaveColToggle(j int, u *ToggleUndo) {
	u.member = c.colPos[j] >= 0
	u.pos = c.colPos[j]
	u.itemSum = c.colSum[j]
	u.itemCnt = c.colCnt[j]
	u.total = c.total
	u.sums = u.sums[:0]
	for _, i := range c.memberRows {
		u.sums = append(u.sums, c.rowSum[i])
	}
	if c.absTracked && !c.specPaused {
		u.absItem = c.colAbs[j]
		u.absTotal = c.absSum
		u.abs = u.abs[:0]
		for _, i := range c.memberRows {
			u.abs = append(u.abs, c.rowAbs[i])
		}
	}
}

// UndoColToggle exactly reverses the ToggleCol(j) that followed
// SaveColToggle(j, u) (deltavet:writer); see UndoRowToggle.
func (c *Cluster) UndoColToggle(j int, u *ToggleUndo) {
	if u.member {
		c.AddCol(j)
		last := len(c.memberCols) - 1
		moved := c.memberCols[u.pos]
		c.memberCols[u.pos] = j
		c.memberCols[last] = moved
		c.colPos[j] = u.pos
		c.colPos[moved] = last
		if c.packStride > 0 && !c.specPaused {
			c.packSwapCols(u.pos, last)
		}
		c.colSum[j] = u.itemSum
		c.colCnt[j] = u.itemCnt
	} else {
		c.RemoveCol(j)
	}
	for k, i := range c.memberRows {
		c.rowSum[i] = u.sums[k]
	}
	if c.absTracked && !c.specPaused {
		// See UndoRowToggle: the masses re-folded inside this undo are
		// overwritten with the captured bits.
		for k, i := range c.memberRows {
			c.rowAbs[i] = u.abs[k]
		}
		c.colAbs[j] = u.absItem
		c.absSum = u.absTotal
	}
	if c.packStride > 0 && !c.specPaused {
		// The restore loop above rewrote every member row's sum; the
		// bases cached by the AddCol/RemoveCol inside this undo are
		// stale. Recache from the restored bits.
		c.packRefreshBases()
	}
	c.total = u.total
}

// ToggleRow adds row i if absent and removes it otherwise — the
// paper's Action(x, c) for a row (Section 4.1).
func (c *Cluster) ToggleRow(i int) {
	if c.HasRow(i) {
		c.RemoveRow(i)
	} else {
		c.AddRow(i)
	}
}

// ToggleCol adds column j if absent and removes it otherwise.
func (c *Cluster) ToggleCol(j int) {
	if c.HasCol(j) {
		c.RemoveCol(j)
	} else {
		c.AddCol(j)
	}
}

// Base returns the cluster base d_IJ: the mean of all specified
// entries of the submatrix, or NaN when the volume is 0.
func (c *Cluster) Base() float64 {
	if c.volume == 0 {
		return math.NaN()
	}
	return c.total / float64(c.volume)
}

// RowBase returns the object base d_iJ of member row i, or NaN when
// the row has no specified entries in the cluster. It panics if i is
// not a member.
func (c *Cluster) RowBase(i int) float64 {
	if c.rowPos[i] < 0 {
		panic(fmt.Sprintf("cluster: RowBase(%d): not a member", i))
	}
	if c.rowCnt[i] == 0 {
		return math.NaN()
	}
	return c.rowSum[i] / float64(c.rowCnt[i])
}

// ColBase returns the attribute base d_Ij of member column j, or NaN
// when the column has no specified entries in the cluster. It panics
// if j is not a member.
func (c *Cluster) ColBase(j int) float64 {
	if c.colPos[j] < 0 {
		panic(fmt.Sprintf("cluster: ColBase(%d): not a member", j))
	}
	if c.colCnt[j] == 0 {
		return math.NaN()
	}
	return c.colSum[j] / float64(c.colCnt[j])
}

// EntryResidue returns r_ij for a member entry: d_ij − d_iJ − d_Ij +
// d_IJ when the entry is specified, 0 otherwise (Definition 3.4). It
// panics if (i, j) is not inside the cluster.
func (c *Cluster) EntryResidue(i, j int) float64 {
	if c.rowPos[i] < 0 || c.colPos[j] < 0 {
		panic(fmt.Sprintf("cluster: EntryResidue(%d, %d): outside the cluster", i, j))
	}
	v := c.m.RowView(i)[j]
	if math.IsNaN(v) {
		return 0
	}
	return v - c.rowSum[i]/float64(c.rowCnt[i]) - c.colSum[j]/float64(c.colCnt[j]) + c.total/float64(c.volume)
}

// Residue returns the cluster residue under the arithmetic mean
// (Definition 3.5). An empty cluster (volume 0) has residue 0: it
// exhibits no incoherence. Cost: O(volume).
func (c *Cluster) Residue() float64 { return c.ResidueWith(ArithmeticMean) }

// ResidueWith returns the cluster residue under the chosen mean.
//
// The scan is the hot kernel of every exact gain evaluation in the
// FLOC engine, so the attribute bases d_Ij are hoisted into a scratch
// slice first: one divide per member column instead of one per
// specified entry. The hoist is operand-preserving — each consumed
// base is the same division of the same bits, just computed once — so
// the result is bit-identical to the fused form. A column whose
// member entries are all missing (colCnt == 0) hoists to 0/0 = NaN,
// but every entry of such a column is skipped, so the value is never
// consumed. The mean switch is likewise hoisted out of the inner
// loop; the per-entry arithmetic and accumulation order are
// unchanged.
//
// deltavet:hotpath — the residue kernel behind every exact gain
// evaluation; thousands of calls per decide phase, zero allocations in
// steady state.
func (c *Cluster) ResidueWith(mean ResidueMean) float64 {
	if c.volume == 0 {
		return 0
	}
	base := c.total / float64(c.volume)
	cols := c.memberCols
	if cap(c.colBases) < len(cols) {
		//deltavet:ignore hotalloc reason=amortized scratch growth; only the first scans after a column-count high-water mark allocate
		c.colBases = make([]float64, len(cols))
	}
	bases := c.colBases[:len(cols)]
	for k, j := range cols {
		bases[k] = c.colSum[j] / float64(c.colCnt[j])
	}
	cols = cols[:len(bases)] // lets the compiler drop the bases[k] bounds check
	sum := 0.0
	if s := c.packStride; s > 0 {
		// Packed fast path: scan the dense member submatrix instead of
		// gathering through memberCols. Pack entry (r, k) is a bit copy
		// of the matrix entry at (memberRows[r], memberCols[k]) and is
		// consumed in the same (r, k) order as the gather below, so
		// every operand and every accumulation step is identical. The
		// row bases come precached from packBases — the same quotient
		// bits the gather path divides out per row — and a zero-count
		// row needs no skip here: its cached base is NaN, but so is
		// every one of its pack entries, so the inner loop contributes
		// exactly the nothing the gather path's skip contributes.
		rbases := c.packBases[:len(c.memberRows)]
		if mean == SquaredMean {
			for r, rowBase := range rbases {
				row := c.pack[r*s : r*s+len(bases)]
				for k, v := range row {
					if math.IsNaN(v) {
						continue
					}
					rr := v - rowBase - bases[k] + base
					sum += rr * rr
				}
			}
		} else {
			for r, rowBase := range rbases {
				row := c.pack[r*s : r*s+len(bases)]
				for k, v := range row {
					if math.IsNaN(v) {
						continue
					}
					sum += math.Abs(v - rowBase - bases[k] + base)
				}
			}
		}
		return sum / float64(c.volume)
	}
	if mean == SquaredMean {
		for _, i := range c.memberRows {
			if c.rowCnt[i] == 0 {
				continue
			}
			rowBase := c.rowSum[i] / float64(c.rowCnt[i])
			row := c.m.RowView(i)
			for k, j := range cols {
				v := row[j]
				if math.IsNaN(v) {
					continue
				}
				r := v - rowBase - bases[k] + base
				sum += r * r
			}
		}
	} else {
		for _, i := range c.memberRows {
			if c.rowCnt[i] == 0 {
				continue
			}
			rowBase := c.rowSum[i] / float64(c.rowCnt[i])
			row := c.m.RowView(i)
			for k, j := range cols {
				v := row[j]
				if math.IsNaN(v) {
					continue
				}
				sum += math.Abs(v - rowBase - bases[k] + base)
			}
		}
	}
	return sum / float64(c.volume)
}

// SatisfiesOccupancy reports whether every member row and column meets
// the occupancy threshold α of Definition 3.1: each member row must
// have specified values on at least α·|J| of the cluster's columns and
// each member column on at least α·|I| of the cluster's rows. An
// empty cluster trivially satisfies any α.
func (c *Cluster) SatisfiesOccupancy(alpha float64) bool {
	nRows, nCols := len(c.memberRows), len(c.memberCols)
	if nRows == 0 || nCols == 0 {
		return true
	}
	for _, i := range c.memberRows {
		if float64(c.rowCnt[i]) < alpha*float64(nCols) {
			return false
		}
	}
	for _, j := range c.memberCols {
		if float64(c.colCnt[j]) < alpha*float64(nRows) {
			return false
		}
	}
	return true
}

// Diameter returns the diagonal length of the minimum bounding box of
// the member rows viewed as points in the subspace of member columns,
// the statistic Table 1 reports. Missing entries are ignored per
// dimension; dimensions with fewer than one specified value contribute
// 0. An empty cluster has diameter 0.
func (c *Cluster) Diameter() float64 {
	if len(c.memberRows) == 0 || len(c.memberCols) == 0 {
		return 0
	}
	sum := 0.0
	for _, j := range c.memberCols {
		lo, hi := math.Inf(1), math.Inf(-1)
		col := c.m.ColView(j) // unit-stride; bit copies of the backing
		for _, i := range c.memberRows {
			v := col[i]
			if math.IsNaN(v) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi > lo {
			d := hi - lo
			sum += d * d
		}
	}
	return math.Sqrt(sum)
}

// Overlap returns the number of matrix cells (specified or not) shared
// by the submatrices of c and o: |I∩I'| × |J∩J'|. The FLOC overlap
// constraint is expressed against this count.
func (c *Cluster) Overlap(o *Cluster) int {
	rows := 0
	a, b := c, o
	if len(b.memberRows) < len(a.memberRows) {
		a, b = b, a
	}
	for _, i := range a.memberRows {
		if b.rowPos[i] >= 0 {
			rows++
		}
	}
	cols := 0
	a, b = c, o
	if len(b.memberCols) < len(a.memberCols) {
		a, b = b, a
	}
	for _, j := range a.memberCols {
		if b.colPos[j] >= 0 {
			cols++
		}
	}
	return rows * cols
}

// Clone returns an independent copy sharing the same data matrix.
func (c *Cluster) Clone() *Cluster {
	return &Cluster{
		m:          c.m,
		rowPos:     append([]int(nil), c.rowPos...),
		colPos:     append([]int(nil), c.colPos...),
		memberRows: append([]int(nil), c.memberRows...),
		memberCols: append([]int(nil), c.memberCols...),
		rowSum:     append([]float64(nil), c.rowSum...),
		rowCnt:     append([]int(nil), c.rowCnt...),
		colSum:     append([]float64(nil), c.colSum...),
		colCnt:     append([]int(nil), c.colCnt...),
		total:      c.total,
		volume:     c.volume,
		pack:       append([]float64(nil), c.pack...),
		packBases:  append([]float64(nil), c.packBases...),
		packStride: c.packStride,
		absTracked: c.absTracked,
		specPaused: c.specPaused,
		absMean:    c.absMean,
		rowAbs:     append([]float64(nil), c.rowAbs...),
		colAbs:     append([]float64(nil), c.colAbs...),
		absSum:     c.absSum,
	}
}

// CopyFrom makes c an exact copy of o (which must be over the same
// matrix shape), guarded aggregates included (deltavet:writer). It
// reuses c's storage, so restoring a checkpoint in the FLOC engine
// does not allocate.
func (c *Cluster) CopyFrom(o *Cluster) {
	c.m = o.m
	copy(c.rowPos, o.rowPos)
	copy(c.colPos, o.colPos)
	c.memberRows = append(c.memberRows[:0], o.memberRows...)
	c.memberCols = append(c.memberCols[:0], o.memberCols...)
	copy(c.rowSum, o.rowSum)
	copy(c.rowCnt, o.rowCnt)
	copy(c.colSum, o.colSum)
	copy(c.colCnt, o.colCnt)
	c.total = o.total
	c.volume = o.volume
	if o.packStride > 0 {
		// Adopt the source's pack wholesale (same matrix shape → same
		// stride); reusing c's backing keeps the copy allocation-free
		// once warm.
		c.packStride = o.packStride
		c.packSetLen(len(c.memberRows))
		copy(c.pack, o.pack)
		copy(c.packBases, o.packBases)
	} else if c.packStride > 0 {
		c.rebuildPack()
	}
	if o.absTracked {
		// Adopt the source's residue masses bit-for-bit, same as the
		// sums above.
		c.absTracked = true
		c.specPaused = o.specPaused
		c.absMean = o.absMean
		if len(c.rowAbs) == 0 {
			c.rowAbs = make([]float64, len(c.rowPos))
			c.colAbs = make([]float64, len(c.colPos))
		}
		copy(c.rowAbs, o.rowAbs)
		copy(c.colAbs, o.colAbs)
		c.absSum = o.absSum
	} else if c.absTracked {
		c.refreshResidueAggregates()
	}
}

// Recompute rebuilds all guarded aggregates from the matrix
// (deltavet:writer). Incremental updates accumulate floating-point
// drift over very long runs; the FLOC engine calls Recompute at
// iteration boundaries so that reported residues are exact.
func (c *Cluster) Recompute() {
	for _, i := range c.memberRows {
		c.rowSum[i] = 0
		c.rowCnt[i] = 0
	}
	for _, j := range c.memberCols {
		c.colSum[j] = 0
		c.colCnt[j] = 0
	}
	c.total = 0
	c.volume = 0
	for _, i := range c.memberRows {
		row := c.m.RowView(i)
		for _, j := range c.memberCols {
			v := row[j]
			if math.IsNaN(v) {
				continue
			}
			c.rowSum[i] += v
			c.rowCnt[i]++
			c.colSum[j] += v
			c.colCnt[j]++
			c.total += v
			c.volume++
		}
	}
	if c.packStride > 0 {
		c.packRefreshBases()
	}
	if c.absTracked {
		// The wholesale rebuild is the tier's refresh point: the masses
		// return to the from-scratch definition under the fresh bases.
		c.refreshResidueAggregates()
	}
}

// Spec is an immutable snapshot of a cluster's identity: its member
// rows and columns in ascending order.
type Spec struct {
	Rows []int
	Cols []int
}

// Spec captures the cluster's current membership.
func (c *Cluster) Spec() Spec {
	return Spec{Rows: c.Rows(), Cols: c.Cols()}
}

// Stats summarizes a cluster with the quantities the paper's Table 1
// reports.
type Stats struct {
	NumRows  int
	NumCols  int
	Volume   int
	Residue  float64
	Diameter float64
}

// Stats computes the cluster's summary statistics.
func (c *Cluster) Stats() Stats {
	return Stats{
		NumRows:  c.NumRows(),
		NumCols:  c.NumCols(),
		Volume:   c.Volume(),
		Residue:  c.Residue(),
		Diameter: c.Diameter(),
	}
}

// ResidueOf computes the residue of the δ-cluster defined by the given
// rows and columns of m without retaining the cluster.
func ResidueOf(m *matrix.Matrix, rows, cols []int) float64 {
	return FromSpec(m, rows, cols).Residue()
}
