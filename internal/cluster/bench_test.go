package cluster

import (
	"testing"

	"deltacluster/internal/matrix"
	"deltacluster/internal/stats"
)

// benchMatrix builds a 500×60 matrix with 5% missing entries — the
// shape the floc decide benchmarks run over, so the micro-benchmarks
// here measure the same kernel the end-to-end numbers aggregate.
// (synth would plant coherent clusters but imports this package, so
// the fill is seeded uniform noise; the kernel's cost is shape- and
// missingness-bound, not value-bound.)
func benchMatrix(b *testing.B) *matrix.Matrix {
	b.Helper()
	const rows, cols = 500, 60
	m := matrix.New(rows, cols)
	rng := stats.NewRNG(97)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Bool(0.05) {
				continue // stays missing
			}
			m.Set(i, j, rng.Uniform(0, 10))
		}
	}
	return m
}

// benchCluster builds a mid-sized member set over the bench matrix:
// every third row and two thirds of the columns, the shape of a
// cluster partway through a FLOC run.
func benchCluster(b *testing.B, m *matrix.Matrix) *Cluster {
	b.Helper()
	var rows, cols []int
	for i := 0; i < m.Rows(); i += 3 {
		rows = append(rows, i)
	}
	for j := 0; j < m.Cols(); j++ {
		if j%3 != 0 {
			cols = append(cols, j)
		}
	}
	return FromSpec(m, rows, cols)
}

// BenchmarkResidueWith measures the O(volume) residue scan — the inner
// kernel of every exact gain evaluation, called (M+N)·K times per
// decide phase. Results are recorded in BENCH_floc.json.
func BenchmarkResidueWith(b *testing.B) {
	m := benchMatrix(b)
	cl := benchCluster(b, m)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += cl.ResidueWith(ArithmeticMean)
	}
	_ = sink
}

// BenchmarkResidueWithPacked is the same scan with the evaluation pack
// enabled — the configuration the FLOC engine actually runs (pack.go).
// On this deliberately large 167×40 cluster the pack's edge over the
// gather is modest; its real payoff is on engine-shaped clusters
// (tens of rows × a handful of columns, five clusters scanned round-
// robin), where the packed working set stays L1-resident — see
// BenchmarkDecideAll in internal/floc.
func BenchmarkResidueWithPacked(b *testing.B) {
	m := benchMatrix(b)
	cl := benchCluster(b, m)
	cl.EnablePack()
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += cl.ResidueWith(ArithmeticMean)
	}
	_ = sink
}

// BenchmarkColToggle measures the save/toggle/undo triple for a
// column — the bookkeeping wrapped around every column gain
// evaluation. "add" toggles a non-member column in, "remove" toggles
// a member column out; both reverse exactly, so state is identical
// across iterations.
func BenchmarkColToggle(b *testing.B) {
	m := benchMatrix(b)
	b.Run("add", func(b *testing.B) {
		cl := benchCluster(b, m)
		var u ToggleUndo
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cl.SaveColToggle(0, &u) // column 0 is not a member
			cl.ToggleCol(0)
			cl.UndoColToggle(0, &u)
		}
	})
	b.Run("remove", func(b *testing.B) {
		cl := benchCluster(b, m)
		var u ToggleUndo
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cl.SaveColToggle(1, &u) // column 1 is a member
			cl.ToggleCol(1)
			cl.UndoColToggle(1, &u)
		}
	})
}

// BenchmarkInsertionMass measures the incremental gain tier's
// insertion-side kernel: scoring a candidate row/column against the
// cluster's current bases in one O(row)/O(col) pass — what replaces
// the exact O(volume) rescan of BenchmarkResidueWith when ranking
// insertions under GainMode=incremental. (Removals read the recorded
// share in O(1) and need no benchmark.)
func BenchmarkInsertionMass(b *testing.B) {
	m := benchMatrix(b)
	b.Run("row", func(b *testing.B) {
		cl := benchCluster(b, m)
		cl.EnableResidueAggregates(ArithmeticMean)
		b.ReportAllocs()
		b.ResetTimer()
		var sink float64
		for i := 0; i < b.N; i++ {
			mass, _ := cl.RowInsertionMass(1, ArithmeticMean) // row 1 is not a member
			sink += mass
		}
		_ = sink
	})
	b.Run("col", func(b *testing.B) {
		cl := benchCluster(b, m)
		cl.EnableResidueAggregates(ArithmeticMean)
		b.ReportAllocs()
		b.ResetTimer()
		var sink float64
		for i := 0; i < b.N; i++ {
			mass, _ := cl.ColInsertionMass(0, ArithmeticMean) // column 0 is not a member
			sink += mass
		}
		_ = sink
	})
}

// BenchmarkColToggleAggregates is BenchmarkColToggle with the
// residue-mass tier enabled: each save/toggle/undo additionally folds
// the column's φ-contributions in and out of the maintained masses
// and restores them bit-for-bit. The delta over BenchmarkColToggle is
// the fold's bookkeeping cost per speculative evaluation.
func BenchmarkColToggleAggregates(b *testing.B) {
	m := benchMatrix(b)
	b.Run("add", func(b *testing.B) {
		cl := benchCluster(b, m)
		cl.EnableResidueAggregates(ArithmeticMean)
		var u ToggleUndo
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cl.SaveColToggle(0, &u) // column 0 is not a member
			cl.ToggleCol(0)
			cl.UndoColToggle(0, &u)
		}
	})
	b.Run("remove", func(b *testing.B) {
		cl := benchCluster(b, m)
		cl.EnableResidueAggregates(ArithmeticMean)
		var u ToggleUndo
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cl.SaveColToggle(1, &u) // column 1 is a member
			cl.ToggleCol(1)
			cl.UndoColToggle(1, &u)
		}
	})
}
