package cluster

import (
	"math"
	"testing"

	"deltacluster/internal/matrix"
	"deltacluster/internal/stats"
)

// referenceResidue is the pre-hoist residue kernel kept verbatim: the
// attribute base is recomputed for every specified entry and the mean
// switch sits inside the inner loop. ResidueWith must reproduce its
// output bit-for-bit — the hoist changes where divisions happen, never
// which operands meet.
func referenceResidue(c *Cluster, mean ResidueMean) float64 {
	if c.volume == 0 {
		return 0
	}
	base := c.total / float64(c.volume)
	sum := 0.0
	for _, i := range c.memberRows {
		if c.rowCnt[i] == 0 {
			continue
		}
		rowBase := c.rowSum[i] / float64(c.rowCnt[i])
		row := c.m.RowView(i)
		for _, j := range c.memberCols {
			v := row[j]
			if math.IsNaN(v) {
				continue
			}
			r := v - rowBase - c.colSum[j]/float64(c.colCnt[j]) + base
			if mean == SquaredMean {
				sum += r * r
			} else {
				sum += math.Abs(r)
			}
		}
	}
	return sum / float64(c.volume)
}

// identityMatrix builds a small matrix with the given missing density,
// including values at varied magnitudes so rounding differences, were
// the kernel to introduce any, would surface.
func identityMatrix(seed int64, rows, cols int, missing float64) *matrix.Matrix {
	m := matrix.New(rows, cols)
	rng := stats.NewRNG(seed)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Bool(missing) {
				continue
			}
			m.Set(i, j, rng.Uniform(-1, 1)*math.Pow(10, float64(rng.Intn(6)-3)))
		}
	}
	return m
}

// TestResidueWithBitIdentity compares the hoisted kernel against the
// reference across matrices, densities, means and a mutation walk that
// leaves rows/columns with zero specified entries in the cluster.
func TestResidueWithBitIdentity(t *testing.T) {
	for _, missing := range []float64{0, 0.05, 0.3, 0.9} {
		for seed := int64(1); seed <= 4; seed++ {
			m := identityMatrix(seed, 40, 17, missing)
			rng := stats.NewRNG(seed * 1000)
			c := New(m)
			for step := 0; step < 200; step++ {
				if rng.Bool(0.5) {
					c.ToggleRow(rng.Intn(m.Rows()))
				} else {
					c.ToggleCol(rng.Intn(m.Cols()))
				}
				for _, mean := range []ResidueMean{ArithmeticMean, SquaredMean} {
					got := c.ResidueWith(mean)
					want := referenceResidue(c, mean)
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("missing=%g seed=%d step=%d mean=%v: ResidueWith=%x want %x",
							missing, seed, step, mean, math.Float64bits(got), math.Float64bits(want))
					}
				}
			}
		}
	}
}

// TestColToggleBitIdentity checks that the ColView-based AddCol and
// RemoveCol leave every guarded aggregate with exactly the bits the
// row-major reference produces, across a random toggle walk.
func TestColToggleBitIdentity(t *testing.T) {
	m := identityMatrix(7, 60, 23, 0.2)
	rng := stats.NewRNG(71)

	// ref mirrors c but applies column toggles through the original
	// row-major scan.
	c := New(m)
	ref := New(m)
	refAddCol := func(j int) {
		ref.colPos[j] = len(ref.memberCols)
		ref.memberCols = append(ref.memberCols, j)
		for _, i := range ref.memberRows {
			v := ref.m.RowView(i)[j]
			if math.IsNaN(v) {
				continue
			}
			ref.rowSum[i] += v
			ref.rowCnt[i]++
			ref.colSum[j] += v
			ref.colCnt[j]++
			ref.total += v
			ref.volume++
		}
	}
	refRemoveCol := func(j int) {
		pos := ref.colPos[j]
		last := len(ref.memberCols) - 1
		moved := ref.memberCols[last]
		ref.memberCols[pos] = moved
		ref.colPos[moved] = pos
		ref.memberCols = ref.memberCols[:last]
		ref.colPos[j] = -1
		for _, i := range ref.memberRows {
			v := ref.m.RowView(i)[j]
			if math.IsNaN(v) {
				continue
			}
			ref.rowSum[i] -= v
			ref.rowCnt[i]--
			ref.total -= v
			ref.volume--
		}
		ref.colSum[j] = 0
		ref.colCnt[j] = 0
	}
	sameBits := func(t *testing.T, step int) {
		t.Helper()
		if math.Float64bits(c.total) != math.Float64bits(ref.total) || c.volume != ref.volume {
			t.Fatalf("step %d: total/volume diverged: %x/%d vs %x/%d",
				step, math.Float64bits(c.total), c.volume, math.Float64bits(ref.total), ref.volume)
		}
		for i := range c.rowSum {
			if math.Float64bits(c.rowSum[i]) != math.Float64bits(ref.rowSum[i]) || c.rowCnt[i] != ref.rowCnt[i] {
				t.Fatalf("step %d: row %d aggregates diverged", step, i)
			}
		}
		for j := range c.colSum {
			if math.Float64bits(c.colSum[j]) != math.Float64bits(ref.colSum[j]) || c.colCnt[j] != ref.colCnt[j] {
				t.Fatalf("step %d: col %d aggregates diverged", step, j)
			}
		}
	}

	for step := 0; step < 400; step++ {
		switch {
		case rng.Bool(0.3):
			i := rng.Intn(m.Rows())
			c.ToggleRow(i)
			ref.ToggleRow(i) // row toggles share one code path; keeps membership aligned
		default:
			j := rng.Intn(m.Cols())
			wasMember := c.HasCol(j)
			c.ToggleCol(j)
			if wasMember {
				refRemoveCol(j)
			} else {
				refAddCol(j)
			}
		}
		sameBits(t, step)
	}
}
