package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"deltacluster/internal/matrix"
	"deltacluster/internal/paperdata"
	"deltacluster/internal/stats"
)

// bruteResidue recomputes Definition 3.5 directly from the matrix,
// independent of the incremental aggregates, as a test oracle.
func bruteResidue(m *matrix.Matrix, rows, cols []int, mean ResidueMean) float64 {
	rowSum := map[int]float64{}
	rowCnt := map[int]int{}
	colSum := map[int]float64{}
	colCnt := map[int]int{}
	total, volume := 0.0, 0
	for _, i := range rows {
		for _, j := range cols {
			v := m.Get(i, j)
			if math.IsNaN(v) {
				continue
			}
			rowSum[i] += v
			rowCnt[i]++
			colSum[j] += v
			colCnt[j]++
			total += v
			volume++
		}
	}
	if volume == 0 {
		return 0
	}
	base := total / float64(volume)
	sum := 0.0
	for _, i := range rows {
		for _, j := range cols {
			v := m.Get(i, j)
			if math.IsNaN(v) {
				continue
			}
			r := v - rowSum[i]/float64(rowCnt[i]) - colSum[j]/float64(colCnt[j]) + base
			if mean == SquaredMean {
				sum += r * r
			} else {
				sum += math.Abs(r)
			}
		}
	}
	return sum / float64(volume)
}

func TestEmptyCluster(t *testing.T) {
	m, _ := matrix.NewFromRows([][]float64{{1, 2}, {3, 4}})
	c := New(m)
	if c.NumRows() != 0 || c.NumCols() != 0 || c.Volume() != 0 {
		t.Fatal("fresh cluster not empty")
	}
	if c.Residue() != 0 {
		t.Errorf("empty residue = %v, want 0", c.Residue())
	}
	if !math.IsNaN(c.Base()) {
		t.Errorf("empty base = %v, want NaN", c.Base())
	}
	if c.Diameter() != 0 {
		t.Errorf("empty diameter = %v, want 0", c.Diameter())
	}
	if !c.SatisfiesOccupancy(1.0) {
		t.Error("empty cluster should satisfy any occupancy")
	}
}

func TestFromSpecDeduplicates(t *testing.T) {
	m, _ := matrix.NewFromRows([][]float64{{1, 2}, {3, 4}})
	c := FromSpec(m, []int{0, 0, 1}, []int{1, 1})
	if c.NumRows() != 2 || c.NumCols() != 1 {
		t.Fatalf("dedup failed: %d rows, %d cols", c.NumRows(), c.NumCols())
	}
}

// Figure 4(b): the paper's worked perfect δ-cluster. All the base
// values printed in Section 3 must be matched exactly, and the residue
// must be 0.
func TestFigure4PerfectCluster(t *testing.T) {
	m := paperdata.Figure4Matrix()
	c := FromSpec(m, paperdata.Figure4ClusterRows, paperdata.Figure4ClusterCols)

	if got := c.Volume(); got != 9 {
		t.Fatalf("volume = %d, want 9", got)
	}
	wantRowBase := map[int]float64{1: 273, 2: 190, 7: 194} // VPS8, EFB1, CYS3
	for i, want := range wantRowBase {
		if got := c.RowBase(i); got != want {
			t.Errorf("row base of %s = %v, want %v", paperdata.YeastGenes[i], got, want)
		}
	}
	wantColBase := map[int]float64{0: 347, 2: 66, 4: 244} // CH1I, CH1D, CH2B
	for j, want := range wantColBase {
		if got := c.ColBase(j); got != want {
			t.Errorf("col base of %s = %v, want %v", paperdata.YeastConditions[j], got, want)
		}
	}
	if got := c.Base(); got != 219 {
		t.Errorf("cluster base = %v, want 219", got)
	}
	if got := c.Residue(); got != 0 {
		t.Errorf("residue = %v, want 0", got)
	}
	if got := c.ResidueWith(SquaredMean); got != 0 {
		t.Errorf("squared residue = %v, want 0", got)
	}
	// The paper's spot check: d(VPS8, CH1I) = 273 − 347·(sign conv) …
	// expected value d_iJ + d_Ij − d_IJ = 273 + 347 − 219 = 401.
	if got := c.EntryResidue(1, 0); got != 0 {
		t.Errorf("entry residue (VPS8, CH1I) = %v, want 0", got)
	}
}

// Figure 3: with α = 0.6 the sparse submatrix (a) is not a δ-cluster
// and (b) is.
func TestFigure3Occupancy(t *testing.T) {
	all := []int{0, 1, 2}
	cols := []int{0, 1, 2, 3}
	a := FromSpec(paperdata.Figure3a(), all, cols)
	if a.SatisfiesOccupancy(0.6) {
		t.Error("Figure 3(a) accepted at α=0.6")
	}
	b := FromSpec(paperdata.Figure3b(), all, cols)
	if !b.SatisfiesOccupancy(0.6) {
		t.Error("Figure 3(b) rejected at α=0.6")
	}
	if b.Volume() != 9 {
		t.Errorf("Figure 3(b) volume = %d, want 9", b.Volume())
	}
}

// The Figure 1 vectors form a perfect δ-cluster despite large mutual
// distances.
func TestFigure1ZeroResidue(t *testing.T) {
	m := paperdata.Figure1Vectors()
	c := FromSpec(m, []int{0, 1, 2}, []int{0, 1, 2, 3, 4})
	if got := c.Residue(); math.Abs(got) > 1e-12 {
		t.Errorf("residue = %v, want 0", got)
	}
	if d := c.Diameter(); d < 100 {
		t.Errorf("diameter = %v; vectors should be far apart", d)
	}
}

// Figure 6 worked example: the initial residues and the gain structure
// are checked against the brute-force oracle rather than the paper's
// OCR-garbled fractions.
func TestFigure6Residues(t *testing.T) {
	m := paperdata.Figure6Matrix()
	c1 := FromSpec(m, paperdata.Figure6Cluster1Rows, paperdata.Figure6Cluster1Cols)
	c2 := FromSpec(m, paperdata.Figure6Cluster2Rows, paperdata.Figure6Cluster2Cols)
	for name, c := range map[string]*Cluster{"cluster1": c1, "cluster2": c2} {
		want := bruteResidue(m, c.Rows(), c.Cols(), ArithmeticMean)
		if got := c.Residue(); math.Abs(got-want) > 1e-12 {
			t.Errorf("%s residue = %v, oracle %v", name, got, want)
		}
	}
	// Inserting column 3 (index 2) into cluster 1 must change the
	// residue exactly as the oracle predicts.
	before := c1.Residue()
	c1.AddCol(2)
	after := c1.Residue()
	want := bruteResidue(m, []int{0, 1}, []int{0, 1, 2}, ArithmeticMean)
	if math.Abs(after-want) > 1e-12 {
		t.Errorf("after insert residue = %v, oracle %v", after, want)
	}
	if after <= before {
		t.Logf("note: inserting col 3 into cluster 1 improved residue (%v -> %v)", before, after)
	}
}

func TestAddRemoveInverse(t *testing.T) {
	m := paperdata.Figure4Matrix()
	c := FromSpec(m, []int{0, 1, 2}, []int{0, 1, 2})
	want := c.Residue()
	c.AddRow(5)
	c.RemoveRow(5)
	if got := c.Residue(); math.Abs(got-want) > 1e-9 {
		t.Errorf("add/remove row changed residue: %v -> %v", want, got)
	}
	c.AddCol(4)
	c.RemoveCol(4)
	if got := c.Residue(); math.Abs(got-want) > 1e-9 {
		t.Errorf("add/remove col changed residue: %v -> %v", want, got)
	}
}

func TestToggle(t *testing.T) {
	m := paperdata.Figure4Matrix()
	c := New(m)
	c.ToggleCol(1)
	c.ToggleRow(3)
	if !c.HasRow(3) || !c.HasCol(1) {
		t.Fatal("toggle did not add")
	}
	c.ToggleRow(3)
	if c.HasRow(3) {
		t.Fatal("toggle did not remove")
	}
}

func TestMembershipPanics(t *testing.T) {
	m, _ := matrix.NewFromRows([][]float64{{1, 2}, {3, 4}})
	c := New(m)
	c.AddRow(0)
	mustPanic(t, "double AddRow", func() { c.AddRow(0) })
	mustPanic(t, "RemoveRow non-member", func() { c.RemoveRow(1) })
	mustPanic(t, "RemoveCol non-member", func() { c.RemoveCol(0) })
	mustPanic(t, "RowBase non-member", func() { c.RowBase(1) })
	mustPanic(t, "ColBase non-member", func() { c.ColBase(0) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

func TestVolumeWithMissing(t *testing.T) {
	nan := math.NaN()
	m, _ := matrix.NewFromRows([][]float64{
		{1, nan, 3},
		{4, 5, nan},
	})
	c := FromSpec(m, []int{0, 1}, []int{0, 1, 2})
	if got := c.Volume(); got != 4 {
		t.Errorf("volume = %d, want 4", got)
	}
}

func TestRowBaseSkipsMissing(t *testing.T) {
	nan := math.NaN()
	m, _ := matrix.NewFromRows([][]float64{{2, nan, 4}})
	c := FromSpec(m, []int{0}, []int{0, 1, 2})
	if got := c.RowBase(0); got != 3 {
		t.Errorf("row base = %v, want 3 (mean of specified)", got)
	}
}

func TestDiameter(t *testing.T) {
	m, _ := matrix.NewFromRows([][]float64{
		{0, 0},
		{3, 4},
	})
	c := FromSpec(m, []int{0, 1}, []int{0, 1})
	if got := c.Diameter(); math.Abs(got-5) > 1e-12 {
		t.Errorf("diameter = %v, want 5", got)
	}
}

func TestOverlap(t *testing.T) {
	m := paperdata.Figure4Matrix()
	a := FromSpec(m, []int{0, 1, 2}, []int{0, 1})
	b := FromSpec(m, []int{1, 2, 3}, []int{1, 2})
	if got := a.Overlap(b); got != 2 { // rows {1,2} × cols {1}
		t.Errorf("overlap = %d, want 2", got)
	}
	if got := b.Overlap(a); got != 2 {
		t.Errorf("overlap not symmetric: %d", got)
	}
	empty := New(m)
	if got := a.Overlap(empty); got != 0 {
		t.Errorf("overlap with empty = %d, want 0", got)
	}
}

func TestCloneAndCopyFrom(t *testing.T) {
	m := paperdata.Figure4Matrix()
	c := FromSpec(m, []int{0, 1}, []int{0, 1})
	cl := c.Clone()
	cl.AddRow(5)
	if c.HasRow(5) {
		t.Error("Clone shares state")
	}
	chk := New(m)
	chk.CopyFrom(c)
	if chk.Residue() != c.Residue() || chk.Volume() != c.Volume() {
		t.Error("CopyFrom mismatch")
	}
	chk.AddCol(3)
	if c.HasCol(3) {
		t.Error("CopyFrom shares state")
	}
}

func TestSpecSorted(t *testing.T) {
	m := paperdata.Figure4Matrix()
	c := New(m)
	c.AddRow(7)
	c.AddRow(1)
	c.AddCol(4)
	c.AddCol(0)
	s := c.Spec()
	if s.Rows[0] != 1 || s.Rows[1] != 7 || s.Cols[0] != 0 || s.Cols[1] != 4 {
		t.Errorf("spec not sorted: %+v", s)
	}
}

func TestStats(t *testing.T) {
	m := paperdata.Figure4Matrix()
	c := FromSpec(m, paperdata.Figure4ClusterRows, paperdata.Figure4ClusterCols)
	st := c.Stats()
	if st.NumRows != 3 || st.NumCols != 3 || st.Volume != 9 || st.Residue != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestResidueOf(t *testing.T) {
	m := paperdata.Figure4Matrix()
	got := ResidueOf(m, paperdata.Figure4ClusterRows, paperdata.Figure4ClusterCols)
	if got != 0 {
		t.Errorf("ResidueOf = %v, want 0", got)
	}
}

// Property: after an arbitrary sequence of add/remove operations the
// incremental aggregates agree with a cluster rebuilt from the final
// membership, for both residue means.
func TestIncrementalMatchesRebuildProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := stats.NewRNG(seed)
		rows := g.UniformInt(2, 8)
		cols := g.UniformInt(2, 8)
		m := matrix.New(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if g.Bool(0.85) {
					m.Set(i, j, g.Uniform(-50, 50))
				}
			}
		}
		c := New(m)
		for step := 0; step < 60; step++ {
			if g.Bool(0.5) {
				c.ToggleRow(g.Intn(rows))
			} else {
				c.ToggleCol(g.Intn(cols))
			}
		}
		rebuilt := FromSpec(m, c.Rows(), c.Cols())
		if c.Volume() != rebuilt.Volume() {
			return false
		}
		tol := 1e-7
		if math.Abs(c.Residue()-rebuilt.Residue()) > tol {
			return false
		}
		if math.Abs(c.ResidueWith(SquaredMean)-rebuilt.ResidueWith(SquaredMean)) > tol {
			return false
		}
		oracle := bruteResidue(m, c.Rows(), c.Cols(), ArithmeticMean)
		return math.Abs(c.Residue()-oracle) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the residue is invariant under shifting any single row or
// column of the matrix — the defining property of the δ-cluster model
// (the base absorbs per-object/per-attribute bias).
func TestResidueShiftInvarianceProperty(t *testing.T) {
	f := func(seed int64, offset float64) bool {
		if math.IsNaN(offset) || math.IsInf(offset, 0) || math.Abs(offset) > 1e6 {
			return true
		}
		g := stats.NewRNG(seed)
		rows := g.UniformInt(2, 7)
		cols := g.UniformInt(2, 7)
		m := matrix.New(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if g.Bool(0.9) {
					m.Set(i, j, g.Uniform(-20, 20))
				}
			}
		}
		allR := make([]int, rows)
		for i := range allR {
			allR[i] = i
		}
		allC := make([]int, cols)
		for j := range allC {
			allC[j] = j
		}
		before := ResidueOf(m, allR, allC)
		m2 := m.Clone()
		m2.ShiftRow(g.Intn(rows), offset)
		afterRow := ResidueOf(m2, allR, allC)
		m3 := m.Clone()
		m3.ShiftCol(g.Intn(cols), offset)
		afterCol := ResidueOf(m3, allR, allC)
		tol := 1e-7 * (1 + math.Abs(offset))
		return math.Abs(before-afterRow) < tol && math.Abs(before-afterCol) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: residue is non-negative and a perfect shifted cluster has
// residue ~0 even with missing entries.
func TestPerfectShiftedClusterProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := stats.NewRNG(seed)
		rows := g.UniformInt(2, 10)
		cols := g.UniformInt(2, 10)
		m := matrix.New(rows, cols)
		rowBias := make([]float64, rows)
		colBias := make([]float64, cols)
		for i := range rowBias {
			rowBias[i] = g.Uniform(-100, 100)
		}
		for j := range colBias {
			colBias[j] = g.Uniform(-100, 100)
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, rowBias[i]+colBias[j])
			}
		}
		allR := make([]int, rows)
		for i := range allR {
			allR[i] = i
		}
		allC := make([]int, cols)
		for j := range allC {
			allC[j] = j
		}
		r := ResidueOf(m, allR, allC)
		return r >= 0 && r < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestRecomputeMatchesIncremental(t *testing.T) {
	g := stats.NewRNG(17)
	m := matrix.New(20, 15)
	for i := 0; i < 20; i++ {
		for j := 0; j < 15; j++ {
			if g.Bool(0.8) {
				m.Set(i, j, g.Uniform(0, 1000))
			}
		}
	}
	c := New(m)
	for step := 0; step < 500; step++ {
		if g.Bool(0.5) {
			c.ToggleRow(g.Intn(20))
		} else {
			c.ToggleCol(g.Intn(15))
		}
	}
	drifted := c.Residue()
	c.Recompute()
	exact := c.Residue()
	if math.Abs(drifted-exact) > 1e-6 {
		t.Errorf("drift too large: %v vs %v", drifted, exact)
	}
}

func TestSingleRowOrColumnResidueZero(t *testing.T) {
	// With one row, every entry equals its column base plus the offset
	// structure, so residue is identically 0 — the degeneracy the FLOC
	// engine guards against with minimum-size constraints.
	m := paperdata.Figure4Matrix()
	oneRow := FromSpec(m, []int{4}, []int{0, 1, 2, 3, 4})
	if got := oneRow.Residue(); math.Abs(got) > 1e-12 {
		t.Errorf("single-row residue = %v, want 0", got)
	}
	oneCol := FromSpec(m, []int{0, 1, 2, 3}, []int{2})
	if got := oneCol.Residue(); math.Abs(got) > 1e-12 {
		t.Errorf("single-col residue = %v, want 0", got)
	}
}
