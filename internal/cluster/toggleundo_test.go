package cluster

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"deltacluster/internal/matrix"
	"deltacluster/internal/stats"
)

// exactBits captures every field of the cluster that any later
// computation can observe, with floats rendered as raw bit patterns:
// membership vectors in internal order, position indexes, counts, and
// the incremental sums. Two clusters with equal exactBits behave
// identically under every future operation — including the order in
// which swap-with-last removals will permute members.
func exactBits(c *Cluster) string {
	bits := func(xs []float64) []uint64 {
		out := make([]uint64, len(xs))
		for i, x := range xs {
			out[i] = math.Float64bits(x)
		}
		return out
	}
	return fmt.Sprintf("mr=%v mc=%v rp=%v cp=%v vol=%d rc=%v cc=%v rs=%x cs=%x tot=%x",
		c.memberRows, c.memberCols, c.rowPos, c.colPos, c.volume,
		c.rowCnt, c.colCnt, bits(c.rowSum), bits(c.colSum),
		math.Float64bits(c.total))
}

// TestToggleUndoRestoresExactBits is the purity property the parallel
// FLOC decide phase stands on: for any cluster state and any item, a
// Save/Toggle/Undo round trip restores the cluster bit-for-bit — not
// merely to a numerically close state. A plain toggle-back cannot do
// this: float sums fail to round-trip ((x+v)−v ≠ x in general) and
// removals permute internal member order.
func TestToggleUndoRestoresExactBits(t *testing.T) {
	f := func(seed int64) bool {
		g := stats.NewRNG(seed)
		rows := g.UniformInt(2, 9)
		cols := g.UniformInt(2, 9)
		m := matrix.New(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if g.Bool(0.8) {
					m.Set(i, j, g.Uniform(-50, 50))
				}
			}
		}
		c := New(m)
		var u ToggleUndo
		// Interleave committed toggles (which evolve the state, drift
		// and all) with save/toggle/undo probes that must round-trip.
		for step := 0; step < 80; step++ {
			isRow := g.Bool(0.5)
			if g.Bool(0.5) { // commit: evolve the state
				if isRow {
					c.ToggleRow(g.Intn(rows))
				} else {
					c.ToggleCol(g.Intn(cols))
				}
				continue
			}
			before := exactBits(c)
			if isRow {
				i := g.Intn(rows)
				c.SaveRowToggle(i, &u)
				c.ToggleRow(i)
				c.UndoRowToggle(i, &u)
			} else {
				j := g.Intn(cols)
				c.SaveColToggle(j, &u)
				c.ToggleCol(j)
				c.UndoColToggle(j, &u)
			}
			if after := exactBits(c); after != before {
				t.Logf("seed %d step %d (isRow=%v):\nbefore %s\nafter  %s",
					seed, step, isRow, before, after)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestToggleUndoRestoresMemberOrder pins the subtlest part of the
// round trip: RemoveRow swaps the removed member with the last one, so
// after Toggle (removal) + re-add the member order is permuted; Undo
// must swap the member back to its saved position.
func TestToggleUndoRestoresMemberOrder(t *testing.T) {
	m := matrix.New(10, 6)
	for i := 0; i < 10; i++ {
		for j := 0; j < 6; j++ {
			m.Set(i, j, float64(i*7+j))
		}
	}
	c := New(m)
	for _, i := range []int{5, 2, 8, 0} {
		c.AddRow(i)
	}
	for _, j := range []int{3, 1, 4} {
		c.AddCol(j)
	}
	var u ToggleUndo
	// Remove from the middle of the member list and undo.
	c.SaveRowToggle(2, &u)
	c.ToggleRow(2)
	c.UndoRowToggle(2, &u)
	if got := fmt.Sprint(c.OrderedRows()); got != "[5 2 8 0]" {
		t.Errorf("member rows after remove+undo = %s, want [5 2 8 0]", got)
	}
	c.SaveColToggle(1, &u)
	c.ToggleCol(1)
	c.UndoColToggle(1, &u)
	if got := fmt.Sprint(c.OrderedCols()); got != "[3 1 4]" {
		t.Errorf("member cols after remove+undo = %s, want [3 1 4]", got)
	}
	// Insertion round trip: a non-member is appended last, so undo is a
	// plain removal — but the sums must still come back bit-exact.
	before := exactBits(c)
	c.SaveRowToggle(7, &u)
	c.ToggleRow(7)
	c.UndoRowToggle(7, &u)
	if after := exactBits(c); after != before {
		t.Errorf("insertion round trip changed state:\nbefore %s\nafter  %s", before, after)
	}
}

// TestToggleUndoWithMissingValues exercises the round trip where the
// toggled item's entries are partially or fully missing — the
// all-missing row has zero contribution to every sum, and its
// removal/insertion must still round-trip (including the rowCnt = 0
// bookkeeping the occupancy check reads).
func TestToggleUndoWithMissingValues(t *testing.T) {
	nan := math.NaN()
	m, err := matrix.NewFromRows([][]float64{
		{1, nan, 3, 4},
		{nan, nan, nan, nan},
		{2, 5, nan, 1},
		{7, 8, 9, nan},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := FromSpec(m, []int{0, 1, 2}, []int{0, 1, 3})
	var u ToggleUndo
	for _, tc := range []struct {
		name  string
		isRow bool
		idx   int
	}{
		{"all-missing-member-row-removal", true, 1},
		{"partial-row-removal", true, 0},
		{"non-member-row-insertion", true, 3},
		{"member-col-removal", false, 1},
		{"non-member-col-insertion", false, 2},
	} {
		before := exactBits(c)
		if tc.isRow {
			c.SaveRowToggle(tc.idx, &u)
			c.ToggleRow(tc.idx)
			c.UndoRowToggle(tc.idx, &u)
		} else {
			c.SaveColToggle(tc.idx, &u)
			c.ToggleCol(tc.idx)
			c.UndoColToggle(tc.idx, &u)
		}
		if after := exactBits(c); after != before {
			t.Errorf("%s: round trip changed state:\nbefore %s\nafter  %s", tc.name, before, after)
		}
	}
}
