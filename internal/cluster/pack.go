package cluster

// The evaluation pack: a dense, row-major copy of the member submatrix
// in internal member order.
//
// The residue kernel scans memberRows × memberCols of the backing
// matrix. In row-major storage those entries are a gather: each member
// row touches up to |J| scattered cache lines, and every access pays a
// memberCols indirection plus an unprovable bounds check. The pack
// stores the same float64 bits contiguously — entry (r, k) of the pack
// is the matrix value at (memberRows[r], memberCols[k]), missing
// entries included as NaN — so the kernel's inner loop becomes a
// unit-stride scan of a block that fits in L1 for typical clusters.
//
// Exactness: the pack holds bit copies and the kernel consumes them in
// the same (r, k) order as the row-major gather, so every float
// operand and every accumulation step is unchanged — the pack is a
// layout change, not a reassociation. The membership mutators maintain
// it with the same swap-with-last moves they apply to memberRows and
// memberCols, so internal member order and pack order never diverge
// (the bit-identity and golden-fingerprint tests pin this).
//
// Alongside the value blocks the pack caches one base per member row
// (packBases), the quotient rowSum/rowCnt the kernel would otherwise
// divide out on every scan. Mutators recache it from the same operand
// bits whenever they touch a row's sums, so reading the cache instead
// of dividing is operand-preserving too — see packRefreshBase.
//
// The pack is opt-in (EnablePack) because it costs |I|·stride extra
// floats per cluster and a copy per membership change; the FLOC engine
// enables it on its clusters, where thousands of residue scans per
// decide phase repay the bookkeeping many times over. The stride is
// the smallest power of two (≥ 4) that fits the member columns, so a
// typical cluster's whole pack fits in a few KiB of L1 — a stride of
// the full matrix width would spread |J| useful floats over a
// Cols-wide block and turn every scan into an L2 streaming read. The
// stride grows (never shrinks) when a column insertion outgrows it;
// see packGrowStride.

// EnablePack builds the evaluation pack for the current membership and
// keeps it maintained through every later membership change
// (deltavet:writer). It is idempotent. Clusters created by Clone or
// filled by CopyFrom inherit the source's pack state.
//
// deltavet:coldpath — one-time setup; never on the toggle path.
func (c *Cluster) EnablePack() {
	if c.packStride > 0 {
		return
	}
	c.packStride = packStrideFor(len(c.memberCols))
	c.rebuildPack()
}

// packStrideFor returns the pack block stride for nCols member
// columns: the smallest power of two ≥ max(4, nCols). Keeping it
// positive is load-bearing — packStride 0 means "pack disabled".
func packStrideFor(nCols int) int {
	s := 4
	for s < nCols {
		s *= 2
	}
	return s
}

// PackEnabled reports whether the evaluation pack is active.
func (c *Cluster) PackEnabled() bool { return c.packStride > 0 }

// rebuildPack regathers the whole pack from the matrix
// (deltavet:writer). Used when the membership changes wholesale
// (EnablePack, CopyFrom from a pack-less source).
//
// deltavet:coldpath — wholesale rebuilds happen at setup and restore,
// not per toggle.
func (c *Cluster) rebuildPack() {
	if c.packStride < len(c.memberCols) {
		c.packStride = packStrideFor(len(c.memberCols))
	}
	c.packSetLen(len(c.memberRows))
	s := c.packStride
	for r, i := range c.memberRows {
		row := c.m.RowView(i)
		dst := c.pack[r*s : r*s+len(c.memberCols)]
		for k, j := range c.memberCols {
			dst[k] = row[j]
		}
	}
	c.packRefreshBases()
}

// packRefreshBase recaches the row base of member position r, matrix
// row i (deltavet:writer, deltavet:hotpath). The cached value is rowSum[i]/rowCnt[i] —
// the exact division ResidueWith used to perform per scan — computed
// from the same operand bits, so caching it at mutation time instead
// of scan time changes no output bit (IEEE 754 division is
// deterministic). A row with rowCnt 0 caches 0/0 = NaN; the residue
// kernel never consumes it, because such a row's pack entries are all
// NaN and are skipped individually.
func (c *Cluster) packRefreshBase(r, i int) {
	c.packBases[r] = c.rowSum[i] / float64(c.rowCnt[i])
}

// packRefreshBases recaches every member row's base
// (deltavet:writer, deltavet:hotpath). Column mutators call it after touching the
// cross-axis sums; rows whose sums were not touched recompute the
// identical quotient, so the refresh is always safe.
func (c *Cluster) packRefreshBases() {
	bases := c.packBases[:len(c.memberRows)]
	for r, i := range c.memberRows {
		bases[r] = c.rowSum[i] / float64(c.rowCnt[i])
	}
}

// packSetLen resizes the pack to nRows blocks, growing the backing
// array geometrically so steady-state toggles never allocate
// (deltavet:writer, deltavet:hotpath).
func (c *Cluster) packSetLen(nRows int) {
	if cap(c.packBases) >= nRows {
		c.packBases = c.packBases[:nRows]
	} else {
		//deltavet:ignore hotalloc reason=amortized geometric growth; steady-state toggles take the cap branch above
		nb := make([]float64, nRows, 2*nRows)
		copy(nb, c.packBases)
		c.packBases = nb
	}
	need := nRows * c.packStride
	if cap(c.pack) >= need {
		c.pack = c.pack[:need]
		return
	}
	//deltavet:ignore hotalloc reason=amortized geometric growth; steady-state toggles take the cap branch above
	np := make([]float64, need, 2*need)
	copy(np, c.pack)
	c.pack = np
}

// packGrowStride widens the pack blocks after a column insertion has
// outgrown the stride (deltavet:writer). The caller has already
// appended to memberCols, so each existing block holds
// len(memberCols)−1 valid slots. Blocks move highest-first: block r's
// destination r·newS starts at or past the end of every lower block's
// source (r·newS ≥ r·oldS ≥ (r−1)·oldS + oldS), so the in-place
// widening never overwrites bits it still has to move. The stride
// never shrinks, so removals never restructure.
//
// deltavet:coldpath — runs only when an insertion outgrows the stride,
// O(log maxCols) times over a cluster's whole lifetime.
func (c *Cluster) packGrowStride() {
	oldS := c.packStride
	newS := oldS * 2
	for newS < len(c.memberCols) {
		newS *= 2
	}
	nRows := len(c.memberRows)
	nb := len(c.memberCols) - 1
	need := nRows * newS
	if cap(c.pack) >= need {
		c.pack = c.pack[:need]
	} else {
		np := make([]float64, need, 2*need)
		copy(np, c.pack)
		c.pack = np
	}
	for r := nRows - 1; r > 0; r-- {
		copy(c.pack[r*newS:r*newS+nb], c.pack[r*oldS:r*oldS+nb])
	}
	c.packStride = newS
}

// packAppendRow gathers matrix row i (the just-appended last member
// row) into a new pack block (deltavet:writer, deltavet:hotpath). row
// is the matrix row's storage, passed in because the caller already
// holds it.
func (c *Cluster) packAppendRow(row []float64) {
	c.packSetLen(len(c.memberRows))
	s := c.packStride
	r := len(c.memberRows) - 1
	dst := c.pack[r*s : r*s+len(c.memberCols)]
	for k, j := range c.memberCols {
		dst[k] = row[j]
	}
}

// packRemoveRow mirrors RemoveRow's swap-with-last on the pack blocks:
// the last block overwrites block pos, then the pack shrinks by one
// block (deltavet:writer, deltavet:hotpath).
func (c *Cluster) packRemoveRow(pos int) {
	s := c.packStride
	last := len(c.pack)/s - 1
	if pos != last {
		copy(c.pack[pos*s:(pos+1)*s], c.pack[last*s:(last+1)*s])
		// The moved row's sums were untouched, so its cached base moves
		// with it unchanged.
		c.packBases[pos] = c.packBases[last]
	}
	c.pack = c.pack[:last*s]
	c.packBases = c.packBases[:last]
}

// packSwapRows swaps two pack blocks; UndoRowToggle uses it to mirror
// its member-order restoration (deltavet:writer, deltavet:hotpath).
func (c *Cluster) packSwapRows(a, b int) {
	if a == b {
		return
	}
	s := c.packStride
	ra := c.pack[a*s : (a+1)*s]
	rb := c.pack[b*s : (b+1)*s]
	for k := range ra {
		ra[k], rb[k] = rb[k], ra[k]
	}
	c.packBases[a], c.packBases[b] = c.packBases[b], c.packBases[a]
}

// packAppendCol gathers matrix column j (the just-appended last member
// column) into slot len(memberCols)-1 of every pack block
// (deltavet:writer, deltavet:hotpath). col is the column's mirror
// storage, passed in because the caller already holds it.
func (c *Cluster) packAppendCol(col []float64) {
	s := c.packStride
	k := len(c.memberCols) - 1
	for r, i := range c.memberRows {
		c.pack[r*s+k] = col[i]
	}
}

// packRemoveCol mirrors RemoveCol's swap-with-last on every pack block
// (deltavet:writer, deltavet:hotpath).
func (c *Cluster) packRemoveCol(pos int) {
	s := c.packStride
	last := len(c.memberCols) // caller truncated memberCols already; last slot is at the old end
	for r := 0; r < len(c.pack)/s; r++ {
		c.pack[r*s+pos] = c.pack[r*s+last]
	}
}

// packSwapCols swaps two column slots in every pack block;
// UndoColToggle uses it to mirror its member-order restoration
// (deltavet:writer, deltavet:hotpath).
func (c *Cluster) packSwapCols(a, b int) {
	if a == b {
		return
	}
	s := c.packStride
	for r := 0; r < len(c.pack)/s; r++ {
		c.pack[r*s+a], c.pack[r*s+b] = c.pack[r*s+b], c.pack[r*s+a]
	}
}
