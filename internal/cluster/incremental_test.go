package cluster

import (
	"fmt"
	"math"
	"testing"

	"deltacluster/internal/stats"
)

// referenceMasses is the from-scratch definition of the residue-mass
// aggregates, written as the naive double loop with no hoisting: for
// every specified entry of the cluster, φ(r_ij) is accumulated into
// the entry's row share, column share and the total. It deliberately
// shares no code with refreshResidueAggregates — it is the oracle the
// maintained masses are judged against.
func referenceMasses(c *Cluster, mean ResidueMean) (total float64, rowM, colM map[int]float64) {
	rowM = make(map[int]float64)
	colM = make(map[int]float64)
	for _, i := range c.memberRows {
		rowM[i] = 0
	}
	for _, j := range c.memberCols {
		colM[j] = 0
	}
	if c.volume == 0 {
		return 0, rowM, colM
	}
	base := c.total / float64(c.volume)
	for _, i := range c.memberRows {
		if c.rowCnt[i] == 0 {
			continue
		}
		rowBase := c.rowSum[i] / float64(c.rowCnt[i])
		row := c.m.RowView(i)
		for _, j := range c.memberCols {
			v := row[j]
			if math.IsNaN(v) {
				continue
			}
			contrib := absOf(v-rowBase-c.colSum[j]/float64(c.colCnt[j])+base, mean)
			rowM[i] += contrib
			colM[j] += contrib
			total += contrib
		}
	}
	return total, rowM, colM
}

// referenceCount counts row i's specified entries over the cluster's
// columns straight from the matrix.
func referenceCount(c *Cluster, isRow bool, idx int) int {
	cnt := 0
	if isRow {
		row := c.m.RowView(idx)
		for _, j := range c.memberCols {
			if !math.IsNaN(row[j]) {
				cnt++
			}
		}
	} else {
		for _, i := range c.memberRows {
			if !math.IsNaN(c.m.Get(i, idx)) {
				cnt++
			}
		}
	}
	return cnt
}

// assertMassesMatchReference compares every maintained aggregate of an
// anchored (just-refreshed) cluster against the from-scratch oracle,
// bit for bit.
func assertMassesMatchReference(t *testing.T, c *Cluster, mean ResidueMean, ctx string) {
	t.Helper()
	total, rowM, colM := referenceMasses(c, mean)
	if math.Float64bits(c.ResidueMass()) != math.Float64bits(total) {
		t.Fatalf("%s: ResidueMass=%x (%v), reference %x (%v)",
			ctx, math.Float64bits(c.ResidueMass()), c.ResidueMass(), math.Float64bits(total), total)
	}
	for _, i := range c.Rows() {
		if math.Float64bits(c.RowResidueMass(i)) != math.Float64bits(rowM[i]) {
			t.Fatalf("%s: RowResidueMass(%d)=%v, reference %v", ctx, i, c.RowResidueMass(i), rowM[i])
		}
		if got, want := c.RowCount(i), referenceCount(c, true, i); got != want {
			t.Fatalf("%s: RowCount(%d)=%d, reference %d", ctx, i, got, want)
		}
	}
	for _, j := range c.Cols() {
		if math.Float64bits(c.ColResidueMass(j)) != math.Float64bits(colM[j]) {
			t.Fatalf("%s: ColResidueMass(%d)=%v, reference %v", ctx, j, c.ColResidueMass(j), colM[j])
		}
		if got, want := c.ColCount(j), referenceCount(c, false, j); got != want {
			t.Fatalf("%s: ColCount(%d)=%d, reference %d", ctx, j, got, want)
		}
	}
	// The refreshed mass over the volume must reproduce ResidueWith's
	// bits: the incremental tier's scoring divides exactly this pair.
	if c.Volume() > 0 {
		got := c.ResidueMass() / float64(c.Volume())
		want := c.ResidueWith(mean)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("%s: ResidueMass/Volume=%v, ResidueWith=%v", ctx, got, want)
		}
	}
}

// TestResidueAggregatesRefreshedWalk mirrors the FLOC engine's
// maintenance discipline — every applied toggle is followed by a
// refresh — and asserts that at every such anchor the masses equal the
// from-scratch oracle bit-for-bit, across means, missing densities and
// pack on/off.
func TestResidueAggregatesRefreshedWalk(t *testing.T) {
	for _, mean := range []ResidueMean{ArithmeticMean, SquaredMean} {
		for _, missing := range []float64{0, 0.05, 0.4, 0.9} {
			for seed := int64(1); seed <= 3; seed++ {
				m := identityMatrix(seed, 31, 13, missing)
				rng := stats.NewRNG(seed*7919 + int64(mean))
				c := New(m)
				if seed%2 == 0 {
					c.EnablePack()
				}
				c.EnableResidueAggregates(mean)
				for step := 0; step < 250; step++ {
					if rng.Bool(0.5) {
						c.ToggleRow(rng.Intn(m.Rows()))
					} else {
						c.ToggleCol(rng.Intn(m.Cols()))
					}
					c.RefreshResidueAggregates()
					assertMassesMatchReference(t, c, mean, "refreshed walk")
				}
			}
		}
	}
}

// foldShareRow computes, by brute force from the cluster's *current*
// sums, member row i's φ-mass under the current bases: the exact
// contribution the fold convention records for an insertion (called
// after the add, when the sums include the row) or unwinds for a
// removal (called before the remove). Returns the total and the
// per-column split.
func foldShareRow(c *Cluster, i int, mean ResidueMean) (float64, map[int]float64) {
	per := make(map[int]float64)
	rc := c.rowCnt[i]
	if rc == 0 {
		return 0, per
	}
	base := c.total / float64(c.volume)
	rowBase := c.rowSum[i] / float64(rc)
	row := c.m.RowView(i)
	tot := 0.0
	for _, j := range c.memberCols {
		v := row[j]
		if math.IsNaN(v) {
			continue
		}
		contrib := absOf(v-rowBase-c.colSum[j]/float64(c.colCnt[j])+base, mean)
		per[j] = contrib
		tot += contrib
	}
	return tot, per
}

// foldShareCol is foldShareRow's column twin.
func foldShareCol(c *Cluster, j int, mean ResidueMean) (float64, map[int]float64) {
	per := make(map[int]float64)
	cc := c.colCnt[j]
	if cc == 0 {
		return 0, per
	}
	base := c.total / float64(c.volume)
	colBase := c.colSum[j] / float64(cc)
	col := c.m.ColView(j)
	tot := 0.0
	for _, i := range c.memberRows {
		v := col[i]
		if math.IsNaN(v) {
			continue
		}
		contrib := absOf(v-c.rowSum[i]/float64(c.rowCnt[i])-colBase+base, mean)
		per[i] = contrib
		tot += contrib
	}
	return tot, per
}

// TestResidueAggregatesSingleFold pins the fold convention's algebra
// bit-for-bit, one toggle deep from an anchored (just-refreshed)
// state — the deepest the FLOC engine ever reads the masses, since
// every applied action is followed by a refresh and every speculative
// toggle by an exact undo. From the anchor, one toggle must move the
// aggregates by exactly the documented contribution: the toggled
// item's φ-mass under post-add bases on insertion and under
// pre-removal bases on removal, with the matching per-entry cross-axis
// splits.
func TestResidueAggregatesSingleFold(t *testing.T) {
	bits := math.Float64bits
	for _, mean := range []ResidueMean{ArithmeticMean, SquaredMean} {
		for seed := int64(1); seed <= 4; seed++ {
			m := identityMatrix(seed+50, 29, 11, 0.15)
			rng := stats.NewRNG(seed * 1237)
			c := New(m)
			c.EnableResidueAggregates(mean)
			for step := 0; step < 400; step++ {
				c.RefreshResidueAggregates()
				anchorSum := c.absSum
				rowA := append([]float64(nil), c.rowAbs...)
				colA := append([]float64(nil), c.colAbs...)
				fail := func(format string, args ...any) {
					t.Helper()
					t.Fatalf("mean=%v seed=%d step=%d: %s", mean, seed, step, fmt.Sprintf(format, args...))
				}
				if rng.Bool(0.5) {
					i := rng.Intn(m.Rows())
					if c.HasRow(i) {
						tot, per := foldShareRow(c, i, mean)
						c.ToggleRow(i)
						if bits(c.absSum) != bits(anchorSum-tot) {
							fail("remove row %d: absSum=%v, want anchor−share=%v", i, c.absSum, anchorSum-tot)
						}
						if c.rowAbs[i] != 0 {
							fail("remove row %d: own share %v, want 0", i, c.rowAbs[i])
						}
						for _, j := range c.Cols() {
							if bits(c.colAbs[j]) != bits(colA[j]-per[j]) {
								fail("remove row %d: colAbs[%d]=%v, want %v", i, j, c.colAbs[j], colA[j]-per[j])
							}
						}
					} else {
						c.ToggleRow(i)
						tot, per := foldShareRow(c, i, mean)
						if bits(c.rowAbs[i]) != bits(tot) {
							fail("add row %d: own share %v, want %v", i, c.rowAbs[i], tot)
						}
						if bits(c.absSum) != bits(anchorSum+tot) {
							fail("add row %d: absSum=%v, want anchor+share=%v", i, c.absSum, anchorSum+tot)
						}
						for _, j := range c.Cols() {
							if bits(c.colAbs[j]) != bits(colA[j]+per[j]) {
								fail("add row %d: colAbs[%d]=%v, want %v", i, j, c.colAbs[j], colA[j]+per[j])
							}
						}
					}
				} else {
					j := rng.Intn(m.Cols())
					if c.HasCol(j) {
						tot, per := foldShareCol(c, j, mean)
						c.ToggleCol(j)
						if bits(c.absSum) != bits(anchorSum-tot) {
							fail("remove col %d: absSum=%v, want anchor−share=%v", j, c.absSum, anchorSum-tot)
						}
						if c.colAbs[j] != 0 {
							fail("remove col %d: own share %v, want 0", j, c.colAbs[j])
						}
						for _, i := range c.Rows() {
							if bits(c.rowAbs[i]) != bits(rowA[i]-per[i]) {
								fail("remove col %d: rowAbs[%d]=%v, want %v", j, i, c.rowAbs[i], rowA[i]-per[i])
							}
						}
					} else {
						c.ToggleCol(j)
						tot, per := foldShareCol(c, j, mean)
						if bits(c.colAbs[j]) != bits(tot) {
							fail("add col %d: own share %v, want %v", j, c.colAbs[j], tot)
						}
						if bits(c.absSum) != bits(anchorSum+tot) {
							fail("add col %d: absSum=%v, want anchor+share=%v", j, c.absSum, anchorSum+tot)
						}
						for _, i := range c.Rows() {
							if bits(c.rowAbs[i]) != bits(rowA[i]+per[i]) {
								fail("add col %d: rowAbs[%d]=%v, want %v", j, i, c.rowAbs[i], rowA[i]+per[i])
							}
						}
					}
				}
				// Entry counts are maintained exactly regardless of folds.
				for _, i := range c.Rows() {
					if got, want := c.RowCount(i), referenceCount(c, true, i); got != want {
						fail("RowCount(%d)=%d, reference %d", i, got, want)
					}
				}
				for _, j := range c.Cols() {
					if got, want := c.ColCount(j), referenceCount(c, false, j); got != want {
						fail("ColCount(%d)=%d, reference %d", j, got, want)
					}
				}
			}
		}
	}
}

// TestResidueAggregatesToggleUndoBitRoundTrip drives random
// save/toggle/undo speculation — the decide phase's evaluation pattern
// — and asserts the undo restores every mass bit-for-bit, so an
// evaluation sweep cannot leak drift into the aggregates regardless of
// how many candidates it scores.
func TestResidueAggregatesToggleUndoBitRoundTrip(t *testing.T) {
	for _, mean := range []ResidueMean{ArithmeticMean, SquaredMean} {
		for seed := int64(1); seed <= 3; seed++ {
			m := identityMatrix(seed+90, 23, 17, 0.2)
			rng := stats.NewRNG(seed * 31)
			c := New(m)
			c.EnablePack()
			c.EnableResidueAggregates(mean)
			// Random membership to start from.
			for step := 0; step < 40; step++ {
				if rng.Bool(0.5) {
					c.ToggleRow(rng.Intn(m.Rows()))
				} else {
					c.ToggleCol(rng.Intn(m.Cols()))
				}
			}
			var u ToggleUndo
			for step := 0; step < 300; step++ {
				rowAbs := append([]float64(nil), c.rowAbs...)
				colAbs := append([]float64(nil), c.colAbs...)
				absSum := c.absSum
				if rng.Bool(0.5) {
					i := rng.Intn(m.Rows())
					c.SaveRowToggle(i, &u)
					c.ToggleRow(i)
					c.UndoRowToggle(i, &u)
				} else {
					j := rng.Intn(m.Cols())
					c.SaveColToggle(j, &u)
					c.ToggleCol(j)
					c.UndoColToggle(j, &u)
				}
				if math.Float64bits(absSum) != math.Float64bits(c.absSum) {
					t.Fatalf("mean=%v seed=%d step=%d: absSum not restored: %v -> %v", mean, seed, step, absSum, c.absSum)
				}
				for i := range rowAbs {
					if math.Float64bits(rowAbs[i]) != math.Float64bits(c.rowAbs[i]) {
						t.Fatalf("mean=%v seed=%d step=%d: rowAbs[%d] not restored: %v -> %v",
							mean, seed, step, i, rowAbs[i], c.rowAbs[i])
					}
				}
				for j := range colAbs {
					if math.Float64bits(colAbs[j]) != math.Float64bits(c.colAbs[j]) {
						t.Fatalf("mean=%v seed=%d step=%d: colAbs[%d] not restored: %v -> %v",
							mean, seed, step, j, colAbs[j], c.colAbs[j])
					}
				}
			}
		}
	}
}

// TestInsertionMassReference checks RowInsertionMass/ColInsertionMass
// against an in-test brute-force implementation of the documented
// convention (candidate scored under the cluster's current bases, its
// own base being its mean over the membership), bit for bit, across
// random cluster states.
func TestInsertionMassReference(t *testing.T) {
	refRow := func(c *Cluster, i int, mean ResidueMean) (float64, int) {
		sum, cnt := 0.0, 0
		for _, j := range c.memberCols {
			if v := c.m.Get(i, j); !math.IsNaN(v) {
				sum += v
				cnt++
			}
		}
		if cnt == 0 {
			return 0, 0
		}
		itemBase := sum / float64(cnt)
		base := 0.0
		if c.volume > 0 {
			base = c.total / float64(c.volume)
		}
		mass := 0.0
		for _, j := range c.memberCols {
			v := c.m.Get(i, j)
			if math.IsNaN(v) {
				continue
			}
			colBase := base
			if c.colCnt[j] > 0 {
				colBase = c.colSum[j] / float64(c.colCnt[j])
			}
			mass += absOf(v-itemBase-colBase+base, mean)
		}
		return mass, cnt
	}
	refCol := func(c *Cluster, j int, mean ResidueMean) (float64, int) {
		sum, cnt := 0.0, 0
		for _, i := range c.memberRows {
			if v := c.m.Get(i, j); !math.IsNaN(v) {
				sum += v
				cnt++
			}
		}
		if cnt == 0 {
			return 0, 0
		}
		itemBase := sum / float64(cnt)
		base := 0.0
		if c.volume > 0 {
			base = c.total / float64(c.volume)
		}
		mass := 0.0
		for _, i := range c.memberRows {
			v := c.m.Get(i, j)
			if math.IsNaN(v) {
				continue
			}
			rowBase := base
			if c.rowCnt[i] > 0 {
				rowBase = c.rowSum[i] / float64(c.rowCnt[i])
			}
			mass += absOf(v-rowBase-itemBase+base, mean)
		}
		return mass, cnt
	}

	for _, mean := range []ResidueMean{ArithmeticMean, SquaredMean} {
		for seed := int64(1); seed <= 3; seed++ {
			m := identityMatrix(seed+130, 19, 14, 0.25)
			rng := stats.NewRNG(seed * 577)
			c := New(m)
			for step := 0; step < 150; step++ {
				if rng.Bool(0.5) {
					c.ToggleRow(rng.Intn(m.Rows()))
				} else {
					c.ToggleCol(rng.Intn(m.Cols()))
				}
				for i := 0; i < m.Rows(); i++ {
					if c.HasRow(i) {
						continue
					}
					got, gotCnt := c.RowInsertionMass(i, mean)
					want, wantCnt := refRow(c, i, mean)
					if gotCnt != wantCnt || math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("mean=%v seed=%d step=%d: RowInsertionMass(%d)=(%v,%d), reference (%v,%d)",
							mean, seed, step, i, got, gotCnt, want, wantCnt)
					}
				}
				for j := 0; j < m.Cols(); j++ {
					if c.HasCol(j) {
						continue
					}
					got, gotCnt := c.ColInsertionMass(j, mean)
					want, wantCnt := refCol(c, j, mean)
					if gotCnt != wantCnt || math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("mean=%v seed=%d step=%d: ColInsertionMass(%d)=(%v,%d), reference (%v,%d)",
							mean, seed, step, j, got, gotCnt, want, wantCnt)
					}
				}
			}
		}
	}
}

// TestResidueAggregatesCloneCopyFrom asserts the decide-phase shadow
// paths carry the masses bit-for-bit: Clone duplicates them, CopyFrom
// adopts the source's, and a tracked destination refreshed from an
// untracked source rebuilds them from scratch.
func TestResidueAggregatesCloneCopyFrom(t *testing.T) {
	m := identityMatrix(7, 21, 12, 0.1)
	rng := stats.NewRNG(99)
	src := New(m)
	src.EnablePack()
	src.EnableResidueAggregates(ArithmeticMean)
	for step := 0; step < 60; step++ {
		if rng.Bool(0.5) {
			src.ToggleRow(rng.Intn(m.Rows()))
		} else {
			src.ToggleCol(rng.Intn(m.Cols()))
		}
	}

	cl := src.Clone()
	if !cl.ResidueAggregatesEnabled() {
		t.Fatal("Clone dropped the residue-aggregate tier")
	}
	if math.Float64bits(cl.absSum) != math.Float64bits(src.absSum) {
		t.Fatalf("Clone absSum %v, source %v", cl.absSum, src.absSum)
	}
	for i := range src.rowAbs {
		if math.Float64bits(cl.rowAbs[i]) != math.Float64bits(src.rowAbs[i]) {
			t.Fatalf("Clone rowAbs[%d] %v, source %v", i, cl.rowAbs[i], src.rowAbs[i])
		}
	}

	// CopyFrom into a cluster that has never tracked masses.
	dst := New(m)
	dst.CopyFrom(src)
	if !dst.ResidueAggregatesEnabled() {
		t.Fatal("CopyFrom did not adopt the residue-aggregate tier")
	}
	if math.Float64bits(dst.absSum) != math.Float64bits(src.absSum) {
		t.Fatalf("CopyFrom absSum %v, source %v", dst.absSum, src.absSum)
	}
	for j := range src.colAbs {
		if math.Float64bits(dst.colAbs[j]) != math.Float64bits(src.colAbs[j]) {
			t.Fatalf("CopyFrom colAbs[%d] %v, source %v", j, dst.colAbs[j], src.colAbs[j])
		}
	}

	// Tracked destination, untracked source: the masses must be
	// rebuilt from scratch for the adopted membership.
	plain := New(m)
	plain.ToggleRow(3)
	plain.ToggleRow(8)
	plain.ToggleCol(2)
	plain.ToggleCol(5)
	tracked := New(m)
	tracked.EnableResidueAggregates(ArithmeticMean)
	tracked.ToggleRow(1)
	tracked.CopyFrom(plain)
	if !tracked.ResidueAggregatesEnabled() {
		t.Fatal("CopyFrom from untracked source disabled the tier")
	}
	assertMassesMatchReference(t, tracked, ArithmeticMean, "CopyFrom untracked source")
}

// TestEnableResidueAggregatesModes covers enablement semantics:
// enabling is idempotent for the same mean, re-enabling under the
// other mean rebuilds the masses for it, and Recompute lands the
// masses back on the from-scratch definition.
func TestEnableResidueAggregatesModes(t *testing.T) {
	m := identityMatrix(11, 15, 9, 0.1)
	c := New(m)
	for i := 0; i < 9; i++ {
		c.ToggleRow(i)
	}
	for j := 0; j < 6; j++ {
		c.ToggleCol(j)
	}
	c.EnableResidueAggregates(ArithmeticMean)
	assertMassesMatchReference(t, c, ArithmeticMean, "enable arithmetic")
	before := c.absSum
	c.EnableResidueAggregates(ArithmeticMean)
	if math.Float64bits(before) != math.Float64bits(c.absSum) {
		t.Fatalf("re-enabling same mean changed absSum: %v -> %v", before, c.absSum)
	}
	c.EnableResidueAggregates(SquaredMean)
	assertMassesMatchReference(t, c, SquaredMean, "enable squared")
	c.ToggleRow(12)
	c.ToggleCol(7)
	c.Recompute()
	assertMassesMatchReference(t, c, SquaredMean, "after Recompute")
}
