// Residue-mass aggregates: the opt-in incremental tier behind the
// FLOC engine's GainMode=incremental scoring.
//
// The tier maintains absSum = Σφ(r_ij) over the cluster's specified
// entries — φ = |·| under ArithmeticMean, squaring under SquaredMean —
// together with each row's and column's share (rowAbs, colAbs). With
// the masses at hand, the residue of a candidate toggle is one
// division (mass/volume) instead of the O(volume) rescan ResidueWith
// performs.
//
// Why Σφ(r_ij) cannot be maintained exactly: toggling one row moves
// the cluster base d_IJ and every attribute base d_Ij, which changes
// the residue of every *remaining* entry — an exact update is
// O(volume), the very scan the tier exists to avoid. The tier instead
// maintains the masses under a fold convention: the contribution of a
// toggled item is the φ-mass of its own entries computed under the
// bases that include the item (post-add bases on insertion,
// pre-removal bases on removal), while every other entry's recorded
// contribution stands. The maintained absSum therefore drifts from
// the from-scratch Σφ(r_ij) as toggles accumulate. The FLOC engine
// refreshes the aggregates at every iteration boundary (through
// Recompute), so by the time a mass is read for scoring it is at most
// one fold away from exact — the bounded-drift suite in internal/floc
// pins how far that one fold can stray, and refreshResidueAggregates
// is the from-scratch definition the deltadebug oracle compares
// against.
package cluster

import (
	"fmt"
	"math"
)

// absOf is φ: the per-entry residue mass under the chosen mean.
func absOf(r float64, mean ResidueMean) float64 {
	if mean == SquaredMean {
		return r * r
	}
	return math.Abs(r)
}

// EnableResidueAggregates turns on the residue-mass aggregate tier
// under the given mean and builds the masses from scratch
// (deltavet:writer). From then on the membership mutators delta-update
// the masses and Recompute refreshes them to exact. Enabling is
// idempotent for the same mean; re-enabling under the other mean
// rebuilds the masses.
func (c *Cluster) EnableResidueAggregates(mean ResidueMean) {
	if c.absTracked && c.absMean == mean {
		return
	}
	c.absTracked = true
	c.absMean = mean
	if len(c.rowAbs) == 0 {
		c.rowAbs = make([]float64, len(c.rowPos))
		c.colAbs = make([]float64, len(c.colPos))
	}
	c.refreshResidueAggregates()
}

// ResidueAggregatesEnabled reports whether the residue-mass tier is
// maintaining the aggregates.
func (c *Cluster) ResidueAggregatesEnabled() bool { return c.absTracked }

// SetSpeculationPaused suspends (true) or resumes (false) maintenance
// of the derived caches — the residue masses and the evaluation pack —
// across membership mutations. While paused, the mutators leave every
// mass and pack bit untouched and Save/Undo skip their mass capture
// entirely, so a save/toggle/undo speculation costs only the integer
// membership bookkeeping and the sum folds. The undo restores
// membership, internal member order and sums exactly, so caches that
// were skipped on both sides of the round trip still describe the
// restored state bit-for-bit. The FLOC engine pauses around each
// speculative constraint toggle under GainMode incremental: its
// estimator reads only the anchored pre-toggle masses and the
// constraint checks read only integer state, so folding masses and
// shuffling pack blocks just to bit-restore them would be pure
// overhead. Reading the masses, the pack, or ResidueWith after a
// *net* membership change made while paused is a caller bug — they
// describe the membership as of the pause until the next refresh or
// Recompute.
func (c *Cluster) SetSpeculationPaused(paused bool) {
	c.specPaused = paused
}

// ResidueMass returns the maintained Σφ(r_ij) of the cluster under
// the fold convention (0 when the tier is disabled). Immediately
// after a refresh point — enabling, Recompute, FromOrdered — the mass
// divided by the volume is bit-identical to ResidueWith of the
// enabled mean; between refreshes it drifts by at most the folds
// applied since.
func (c *Cluster) ResidueMass() float64 { return c.absSum }

// RowResidueMass returns member row i's share of the residue mass.
// It panics if i is not a member.
func (c *Cluster) RowResidueMass(i int) float64 {
	if c.rowPos[i] < 0 {
		panic(fmt.Sprintf("cluster: RowResidueMass(%d): not a member", i))
	}
	return c.rowAbs[i]
}

// ColResidueMass returns member column j's share of the residue mass.
// It panics if j is not a member.
func (c *Cluster) ColResidueMass(j int) float64 {
	if c.colPos[j] < 0 {
		panic(fmt.Sprintf("cluster: ColResidueMass(%d): not a member", j))
	}
	return c.colAbs[j]
}

// RowCount returns the number of specified entries member row i has
// over the cluster's columns. It panics if i is not a member.
func (c *Cluster) RowCount(i int) int {
	if c.rowPos[i] < 0 {
		panic(fmt.Sprintf("cluster: RowCount(%d): not a member", i))
	}
	return c.rowCnt[i]
}

// ColCount returns the number of specified entries member column j
// has over the cluster's rows. It panics if j is not a member.
func (c *Cluster) ColCount(j int) int {
	if c.colPos[j] < 0 {
		panic(fmt.Sprintf("cluster: ColCount(%d): not a member", j))
	}
	return c.colCnt[j]
}

// refreshResidueAggregates rebuilds the residue-mass aggregates from
// the matrix under the cluster's current bases (deltavet:writer) —
// the from-scratch definition the delta updates approximate between
// refreshes. absSum accumulates one φ(r_ij) per specified entry in
// exactly the (row, column) order of ResidueWith's scan, so right
// after a refresh ResidueMass()/Volume() reproduces ResidueWith's
// bits.
func (c *Cluster) refreshResidueAggregates() {
	for _, j := range c.memberCols {
		c.colAbs[j] = 0
	}
	c.absSum = 0
	if c.volume == 0 {
		for _, i := range c.memberRows {
			c.rowAbs[i] = 0
		}
		return
	}
	base := c.total / float64(c.volume)
	cols := c.memberCols
	if cap(c.colBases) < len(cols) {
		c.colBases = make([]float64, len(cols))
	}
	bases := c.colBases[:len(cols)]
	for k, j := range cols {
		bases[k] = c.colSum[j] / float64(c.colCnt[j])
	}
	mean := c.absMean
	for _, i := range c.memberRows {
		if c.rowCnt[i] == 0 {
			c.rowAbs[i] = 0
			continue
		}
		rowBase := c.rowSum[i] / float64(c.rowCnt[i])
		row := c.m.RowView(i)
		rsum := 0.0
		for k, j := range cols {
			v := row[j]
			if math.IsNaN(v) {
				continue
			}
			contrib := absOf(v-rowBase-bases[k]+base, mean)
			c.colAbs[j] += contrib
			rsum += contrib
			c.absSum += contrib
		}
		c.rowAbs[i] = rsum
	}
}

// RowInsertionMass returns the φ-mass non-member row i would
// contribute if folded into the cluster, scored against the cluster's
// *current* bases — the item's own base is its mean over the
// cluster's columns, and columns without specified member entries
// fall back to the cluster base — together with the number of
// specified entries scored. This is the insertion-side counterpart of
// the recorded RowResidueMass share a removal reads in O(1); it costs
// O(columns) and walks the membership in internal order, so equal
// cluster bits yield equal results on any goroutine. It panics if i
// is already a member.
func (c *Cluster) RowInsertionMass(i int, mean ResidueMean) (float64, int) {
	if c.rowPos[i] >= 0 {
		panic(fmt.Sprintf("cluster: RowInsertionMass(%d): already a member", i))
	}
	row := c.m.RowView(i)
	sum := 0.0
	cnt := 0
	for _, j := range c.memberCols {
		v := row[j]
		if math.IsNaN(v) {
			continue
		}
		sum += v
		cnt++
	}
	if cnt == 0 {
		return 0, 0
	}
	itemBase := sum / float64(cnt)
	base := 0.0
	if c.volume > 0 {
		base = c.total / float64(c.volume)
	}
	mass := 0.0
	for _, j := range c.memberCols {
		v := row[j]
		if math.IsNaN(v) {
			continue
		}
		colBase := base
		if c.colCnt[j] > 0 {
			colBase = c.colSum[j] / float64(c.colCnt[j])
		}
		mass += absOf(v-itemBase-colBase+base, mean)
	}
	return mass, cnt
}

// ColInsertionMass returns the φ-mass non-member column j would
// contribute if folded into the cluster, scored against the cluster's
// current bases; see RowInsertionMass. It panics if j is already a
// member. The column walk uses ColView: unit-stride bit copies of the
// row-major backing.
func (c *Cluster) ColInsertionMass(j int, mean ResidueMean) (float64, int) {
	if c.colPos[j] >= 0 {
		panic(fmt.Sprintf("cluster: ColInsertionMass(%d): already a member", j))
	}
	col := c.m.ColView(j)
	sum := 0.0
	cnt := 0
	for _, i := range c.memberRows {
		v := col[i]
		if math.IsNaN(v) {
			continue
		}
		sum += v
		cnt++
	}
	if cnt == 0 {
		return 0, 0
	}
	itemBase := sum / float64(cnt)
	base := 0.0
	if c.volume > 0 {
		base = c.total / float64(c.volume)
	}
	mass := 0.0
	for _, i := range c.memberRows {
		v := col[i]
		if math.IsNaN(v) {
			continue
		}
		rowBase := base
		if c.rowCnt[i] > 0 {
			rowBase = c.rowSum[i] / float64(c.rowCnt[i])
		}
		mass += absOf(v-rowBase-itemBase+base, mean)
	}
	return mass, cnt
}

// RefreshResidueAggregates rebuilds the residue masses from scratch
// under the cluster's current bases (deltavet:writer); a no-op while
// the tier is disabled. The FLOC engine calls it after every applied
// action — the apply already pays the exact O(volume) residue rescan,
// and re-anchoring the masses beside it means any estimate read later
// is at most one fold away from the from-scratch definition, so fold
// drift never compounds across applies.
func (c *Cluster) RefreshResidueAggregates() {
	if c.absTracked {
		c.refreshResidueAggregates()
	}
}

// absAddRow folds row i's φ-contributions into the residue-mass
// aggregates under the post-add bases — AddRow calls it last, after
// the sums already include the row (deltavet:writer).
func (c *Cluster) absAddRow(i int) {
	rc := c.rowCnt[i]
	if rc == 0 {
		c.rowAbs[i] = 0
		return
	}
	base := c.total / float64(c.volume)
	rowBase := c.rowSum[i] / float64(rc)
	mean := c.absMean
	row := c.m.RowView(i)
	add := 0.0
	for _, j := range c.memberCols {
		v := row[j]
		if math.IsNaN(v) {
			continue
		}
		contrib := absOf(v-rowBase-c.colSum[j]/float64(c.colCnt[j])+base, mean)
		c.colAbs[j] += contrib
		add += contrib
	}
	c.rowAbs[i] = add
	c.absSum += add
}

// absRemoveRow unwinds row i's φ-contributions under the pre-removal
// bases — RemoveRow calls it first, before any aggregate or
// membership change (deltavet:writer). The contributions are
// recomputed under the current bases rather than read from the stored
// rowAbs share, so the cross-axis colAbs shares stay internally
// consistent with what is subtracted from absSum.
func (c *Cluster) absRemoveRow(i int) {
	rc := c.rowCnt[i]
	if rc > 0 {
		base := c.total / float64(c.volume)
		rowBase := c.rowSum[i] / float64(rc)
		mean := c.absMean
		row := c.m.RowView(i)
		sub := 0.0
		for _, j := range c.memberCols {
			v := row[j]
			if math.IsNaN(v) {
				continue
			}
			contrib := absOf(v-rowBase-c.colSum[j]/float64(c.colCnt[j])+base, mean)
			c.colAbs[j] -= contrib
			sub += contrib
		}
		c.absSum -= sub
	}
	c.rowAbs[i] = 0
}

// absAddCol folds column j's φ-contributions into the residue-mass
// aggregates under the post-add bases — AddCol calls it last
// (deltavet:writer). The column walk uses ColView: unit-stride bit
// copies of the row-major backing, so every operand matches the
// row-major form.
func (c *Cluster) absAddCol(j int) {
	cc := c.colCnt[j]
	if cc == 0 {
		c.colAbs[j] = 0
		return
	}
	base := c.total / float64(c.volume)
	colBase := c.colSum[j] / float64(cc)
	mean := c.absMean
	col := c.m.ColView(j)
	add := 0.0
	for _, i := range c.memberRows {
		v := col[i]
		if math.IsNaN(v) {
			continue
		}
		contrib := absOf(v-c.rowSum[i]/float64(c.rowCnt[i])-colBase+base, mean)
		c.rowAbs[i] += contrib
		add += contrib
	}
	c.colAbs[j] = add
	c.absSum += add
}

// absRemoveCol unwinds column j's φ-contributions under the
// pre-removal bases — RemoveCol calls it first (deltavet:writer); see
// absRemoveRow for the convention.
func (c *Cluster) absRemoveCol(j int) {
	cc := c.colCnt[j]
	if cc > 0 {
		base := c.total / float64(c.volume)
		colBase := c.colSum[j] / float64(cc)
		mean := c.absMean
		col := c.m.ColView(j)
		sub := 0.0
		for _, i := range c.memberRows {
			v := col[i]
			if math.IsNaN(v) {
				continue
			}
			contrib := absOf(v-c.rowSum[i]/float64(c.rowCnt[i])-colBase+base, mean)
			c.rowAbs[i] -= contrib
			sub += contrib
		}
		c.absSum -= sub
	}
	c.colAbs[j] = 0
}
