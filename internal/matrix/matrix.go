// Package matrix implements the data-matrix substrate of the δ-cluster
// model: a dense rows×cols matrix of float64 values in which any entry
// may be missing. Rows correspond to objects (viewers, genes) and
// columns to attributes (movies, experiment conditions), matching
// Figure 2 of the paper.
//
// Missing entries are represented as NaN, which composes naturally
// with the residue arithmetic in internal/cluster (every aggregate
// counts specified entries only). The package also provides CSV/TSV
// input/output and the logarithm transform that reduces amplification
// coherence to shifting coherence (Section 3).
package matrix

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Matrix is a dense rows×cols matrix with optional missing entries.
// The zero value is unusable; construct with New, NewFromRows or
// ReadCSV.
type Matrix struct {
	rows, cols int
	data       []float64 // row-major; NaN encodes a missing entry

	// der holds the lazily built derived read caches — the
	// column-major mirror and the missing-value bitsets (derived.go).
	// nil until first use; mutators keep it in sync or drop it. The
	// pointer is atomic and builds serialize on derMu so that pure
	// read accessors (ColView, SpecifiedCount, ...) stay safe for
	// concurrent readers even when the first of them triggers the
	// build.
	der   atomic.Pointer[derived]
	derMu sync.Mutex

	// Optional labels. When present, len(RowLabels) == rows and
	// len(ColLabels) == cols; I/O round-trips them.
	RowLabels []string
	ColLabels []string
}

// New returns a rows×cols matrix with every entry missing. It panics
// if either dimension is negative.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: New(%d, %d) with negative dimension", rows, cols))
	}
	data := make([]float64, rows*cols)
	nan := math.NaN()
	for i := range data {
		data[i] = nan
	}
	return &Matrix{rows: rows, cols: cols, data: data}
}

// NewFromRows builds a matrix from row slices. All rows must have the
// same length. NaN entries are treated as missing.
func NewFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("matrix: row %d has %d entries, want %d", i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Rows returns the number of rows (objects).
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns (attributes).
func (m *Matrix) Cols() int { return m.cols }

// Get returns the entry at (i, j); NaN means missing. Out-of-range
// indices panic.
func (m *Matrix) Get(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set stores v at (i, j). Storing NaN marks the entry missing.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
	m.syncDerived(i, j, v)
}

// SetMissing marks (i, j) missing.
func (m *Matrix) SetMissing(i, j int) { m.Set(i, j, math.NaN()) }

// IsSpecified reports whether the entry at (i, j) has a value.
func (m *Matrix) IsSpecified(i, j int) bool {
	m.check(i, j)
	return !math.IsNaN(m.data[i*m.cols+j])
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d, %d) out of %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of %d", i, m.rows))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: col %d out of %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	if d := m.der.Load(); d != nil {
		copy(out, d.mirror[j*m.rows:(j+1)*m.rows])
		return out
	}
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// RowView returns the underlying storage of row i without copying.
// The view is READ-ONLY: writing through it would silently desync the
// derived caches (column mirror, missing-value bitsets). Writers use
// MutRow instead. The cluster aggregates call RowView once per member
// row per residue scan, so the body is kept minimal enough to inline;
// an out-of-range i panics via the slice bounds check.
func (m *Matrix) RowView(i int) []float64 {
	return m.data[i*m.cols : (i+1)*m.cols]
}

// MutRow returns writable storage of row i and invalidates the derived
// caches, which rebuild lazily on next use. It is the bulk-write
// counterpart of Set for generators and maskers that fill rows in
// place; for reads, use RowView (no invalidation).
func (m *Matrix) MutRow(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of %d", i, m.rows))
	}
	m.invalidateDerived()
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Clone returns a deep copy, including labels.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{rows: m.rows, cols: m.cols, data: make([]float64, len(m.data))}
	copy(c.data, m.data)
	if m.RowLabels != nil {
		c.RowLabels = append([]string(nil), m.RowLabels...)
	}
	if m.ColLabels != nil {
		c.ColLabels = append([]string(nil), m.ColLabels...)
	}
	return c
}

// SpecifiedCount returns the number of specified (non-missing) entries
// by popcounting the missing-value bitset, word-at-a-time.
func (m *Matrix) SpecifiedCount() int {
	d := m.der.Load()
	if d == nil {
		d = m.buildDerived()
	}
	return popcount(d.rowMask)
}

// FillFraction returns SpecifiedCount divided by rows*cols, or 0 for an
// empty matrix. MovieLens-style matrices sit near 0.06.
func (m *Matrix) FillFraction() float64 {
	total := m.rows * m.cols
	if total == 0 {
		return 0
	}
	return float64(m.SpecifiedCount()) / float64(total)
}

// RowSpecified returns how many entries of row i are specified
// (word-at-a-time over the row's bitset).
func (m *Matrix) RowSpecified(i int) int {
	return popcount(m.RowMask(i))
}

// ColSpecified returns how many entries of column j are specified
// (word-at-a-time over the column's bitset).
func (m *Matrix) ColSpecified(j int) int {
	return popcount(m.ColMask(j))
}

// Submatrix returns a new matrix restricted to the given row and
// column indices (in the given order). Labels are carried over when
// present. Indices out of range panic.
func (m *Matrix) Submatrix(rows, cols []int) *Matrix {
	s := New(len(rows), len(cols))
	for si, i := range rows {
		for sj, j := range cols {
			s.data[si*s.cols+sj] = m.Get(i, j)
		}
	}
	if m.RowLabels != nil {
		s.RowLabels = make([]string, len(rows))
		for si, i := range rows {
			s.RowLabels[si] = m.RowLabels[i]
		}
	}
	if m.ColLabels != nil {
		s.ColLabels = make([]string, len(cols))
		for sj, j := range cols {
			s.ColLabels[sj] = m.ColLabels[j]
		}
	}
	return s
}

// Equal reports whether two matrices have the same shape and entries,
// treating NaN entries as equal to each other. Labels are ignored.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i, v := range m.data {
		w := o.data[i]
		if math.IsNaN(v) != math.IsNaN(w) {
			return false
		}
		if !math.IsNaN(v) && v != w {
			return false
		}
	}
	return true
}
