package matrix

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary matrix framing — the wire format of the service's
// application/x-deltacluster-matrix transport. It reuses the DCKP
// checkpoint discipline from internal/floc: a fixed magic, a version,
// an explicit payload length, and a SHA-256 checksum over the payload,
// all little-endian, so corruption and truncation are detected before
// any byte of the payload is interpreted.
//
//	offset  size          field
//	0       4             magic "DCMX"
//	4       4             format version (uint32, currently 1)
//	8       8             payload length n (uint64)
//	16      n             payload
//	16+n    32            SHA-256 of payload
//
//	payload = rows uint64 | cols uint64 | rows*cols float64 bits,
//	          row-major
//
// Missing entries travel as the canonical quiet NaN (the bit pattern
// of math.NaN()); EncodeBinary normalizes every NaN payload to it so
// equal matrices encode to equal bytes. Labels are not carried — the
// binary transport exists for bulk numeric ingest, and the service's
// JSON/CSV paths don't surface labels either.
const (
	binaryMagic   = "DCMX"
	binaryVersion = 1

	// binaryHeaderLen is magic + version + payload length.
	binaryHeaderLen = 16
)

// BinaryContentType is the MIME type of the binary matrix encoding.
const BinaryContentType = "application/x-deltacluster-matrix"

// EncodeBinary renders m in the DCMX binary format. The encoding is
// canonical: equal matrices (same shape, same specified values, same
// missing set) produce identical bytes.
func EncodeBinary(m *Matrix) []byte {
	n := 16 + 8*m.rows*m.cols
	buf := make([]byte, 0, binaryHeaderLen+n+sha256.Size)
	buf = append(buf, binaryMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, binaryVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(n))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.rows))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.cols))
	nan := math.Float64bits(math.NaN())
	for _, v := range m.data {
		bits := math.Float64bits(v)
		if v != v { // normalize every NaN to the canonical missing marker
			bits = nan
		}
		buf = binary.LittleEndian.AppendUint64(buf, bits)
	}
	sum := sha256.Sum256(buf[binaryHeaderLen : binaryHeaderLen+n])
	return append(buf, sum[:]...)
}

// DecodeBinary parses a DCMX-framed matrix. Framing is verified before
// the payload is touched: magic, version, declared length against the
// actual data, then the checksum. A positive maxEntries bounds
// rows*cols and is enforced before the matrix is allocated, so a
// hostile header cannot force a huge allocation. Infinite values are
// rejected (the matrix must be finite, as with text ingest); any NaN
// bit pattern decodes as missing.
func DecodeBinary(data []byte, maxEntries int) (*Matrix, error) {
	if len(data) < binaryHeaderLen || string(data[:4]) != binaryMagic {
		return nil, fmt.Errorf("matrix: not a binary matrix (bad magic)")
	}
	version := binary.LittleEndian.Uint32(data[4:8])
	if version != binaryVersion {
		return nil, fmt.Errorf("matrix: unsupported binary matrix version %d", version)
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	if uint64(len(data)-binaryHeaderLen) < n || len(data)-binaryHeaderLen-int(n) < sha256.Size {
		return nil, fmt.Errorf("matrix: binary matrix truncated")
	}
	if len(data) != binaryHeaderLen+int(n)+sha256.Size {
		return nil, fmt.Errorf("matrix: %d trailing bytes after binary matrix", len(data)-binaryHeaderLen-int(n)-sha256.Size)
	}
	payload := data[binaryHeaderLen : binaryHeaderLen+int(n)]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[binaryHeaderLen+int(n):]) {
		return nil, fmt.Errorf("matrix: binary matrix checksum mismatch")
	}
	if n < 16 {
		return nil, fmt.Errorf("matrix: binary matrix payload too short for dimensions")
	}
	rows := binary.LittleEndian.Uint64(payload[0:8])
	cols := binary.LittleEndian.Uint64(payload[8:16])
	// The payload is already in memory, so entries ≤ len(payload)/8
	// always fits an int — but the dimensions must multiply out to
	// exactly the bytes present before anything is allocated. The
	// per-dimension bound keeps rows*cols from overflowing uint64.
	entries := (n - 16) / 8
	if rows >= 1<<31 || cols >= 1<<31 {
		return nil, fmt.Errorf("matrix: binary matrix declares implausible dimensions %dx%d", rows, cols)
	}
	if (n-16)%8 != 0 || rows*cols != entries {
		return nil, fmt.Errorf("matrix: binary matrix declares %dx%d but payload holds %d entries", rows, cols, entries)
	}
	if maxEntries > 0 && entries > uint64(maxEntries) {
		return nil, fmt.Errorf("matrix is %dx%d = %d entries; capped at %d", rows, cols, entries, maxEntries)
	}
	vals := make([]float64, entries)
	for i := range vals {
		v := math.Float64frombits(binary.LittleEndian.Uint64(payload[16+8*i:]))
		if math.IsInf(v, 0) {
			return nil, fmt.Errorf("matrix: binary matrix entry %d is not finite", i)
		}
		vals[i] = v
	}
	return &Matrix{rows: int(rows), cols: int(cols), data: vals}, nil
}

// WriteBinary writes m to w in the DCMX format.
func WriteBinary(w io.Writer, m *Matrix) error {
	if _, err := w.Write(EncodeBinary(m)); err != nil {
		return fmt.Errorf("matrix: writing binary matrix: %w", err)
	}
	return nil
}

// ReadBinary reads one DCMX-framed matrix from r (consuming r to EOF).
// maxEntries ≤ 0 means unlimited.
func ReadBinary(r io.Reader, maxEntries int) (*Matrix, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("matrix: reading binary matrix: %w", err)
	}
	return DecodeBinary(data, maxEntries)
}
