package matrix

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

func binaryTestMatrix(t *testing.T) *Matrix {
	t.Helper()
	m := New(4, 3)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, float64(i*10+j)-5.5)
		}
	}
	m.SetMissing(1, 2)
	m.SetMissing(3, 0)
	return m
}

func TestBinaryRoundTrip(t *testing.T) {
	m := binaryTestMatrix(t)
	data := EncodeBinary(m)
	got, err := DecodeBinary(data, 0)
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	if got.Rows() != m.Rows() || got.Cols() != m.Cols() {
		t.Fatalf("decoded shape %dx%d, want %dx%d", got.Rows(), got.Cols(), m.Rows(), m.Cols())
	}
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if got.IsSpecified(i, j) != m.IsSpecified(i, j) {
				t.Fatalf("entry (%d,%d) specified mismatch", i, j)
			}
			if m.IsSpecified(i, j) && got.Get(i, j) != m.Get(i, j) {
				t.Fatalf("entry (%d,%d) = %v, want %v", i, j, got.Get(i, j), m.Get(i, j))
			}
		}
	}
}

func TestBinaryEncodingIsCanonical(t *testing.T) {
	m := binaryTestMatrix(t)
	// A decoded copy must re-encode to identical bytes even though its
	// missing entries may carry a different NaN payload internally.
	data := EncodeBinary(m)
	got, err := DecodeBinary(data, 0)
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	// Poke a non-canonical NaN into the copy's missing slot.
	got.data[1*3+2] = math.Float64frombits(0x7FF8_0000_0000_BEEF)
	if !bytes.Equal(EncodeBinary(got), data) {
		t.Fatalf("re-encoding a decoded matrix changed the bytes")
	}
}

func TestBinaryRoundTripEmpty(t *testing.T) {
	for _, shape := range [][2]int{{0, 0}, {0, 5}, {3, 0}} {
		m := New(shape[0], shape[1])
		got, err := DecodeBinary(EncodeBinary(m), 0)
		if err != nil {
			t.Fatalf("%dx%d: DecodeBinary: %v", shape[0], shape[1], err)
		}
		if got.Rows() != shape[0] || got.Cols() != shape[1] {
			t.Fatalf("decoded shape %dx%d, want %dx%d", got.Rows(), got.Cols(), shape[0], shape[1])
		}
	}
}

func TestDecodeBinaryRejectsCorruption(t *testing.T) {
	real := EncodeBinary(binaryTestMatrix(t))

	badVersion := append([]byte(nil), real...)
	binary.LittleEndian.PutUint32(badVersion[4:8], 99)
	badSum := append([]byte(nil), real...)
	badSum[len(badSum)-1] ^= 0x01
	flippedCell := append([]byte(nil), real...)
	flippedCell[binaryHeaderLen+16] ^= 0x40 // corrupt a data byte, checksum now stale
	hugeLen := append([]byte(nil), real...)
	binary.LittleEndian.PutUint64(hugeLen[8:16], 1<<60)
	hugeDims := append([]byte(nil), real...)
	binary.LittleEndian.PutUint64(hugeDims[binaryHeaderLen:], 1<<40) // rows — checksum also stale
	wrongDims := EncodeBinary(binaryTestMatrix(t))
	binary.LittleEndian.PutUint64(wrongDims[binaryHeaderLen:], 6) // 6x3 ≠ 12 entries, checksum stale
	inf := binaryTestMatrix(t)
	inf.data[0] = math.Inf(1)
	withInf := EncodeBinary(inf)

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "bad magic"},
		{"magic only", []byte("DCMX"), "bad magic"},
		{"bad magic", append([]byte("JUNK"), real[4:]...), "bad magic"},
		{"truncated header", real[:15], "bad magic"},
		{"truncated payload", real[:len(real)-40], "truncated"},
		{"trailing bytes", append(append([]byte(nil), real...), 0), "trailing"},
		{"bad version", badVersion, "version"},
		{"checksum flip", badSum, "checksum"},
		{"flipped cell", flippedCell, "checksum"},
		{"huge length", hugeLen, "truncated"},
		{"huge dimensions", hugeDims, "checksum"},
		{"infinite entry", withInf, "not finite"},
	}
	for _, tc := range cases {
		_, err := DecodeBinary(tc.data, 0)
		if err == nil {
			t.Errorf("%s: decode succeeded, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q, want it to contain %q", tc.name, err, tc.want)
		}
	}
	// Mismatched dimensions with a recomputed checksum must still fail
	// on the entry count, not the checksum.
	if _, err := DecodeBinary(reseal(wrongDims), 0); err == nil || !strings.Contains(err.Error(), "entries") {
		t.Errorf("wrong dims (resealed): err = %v, want entry-count mismatch", err)
	}
}

// reseal recomputes the trailing checksum so corruption tests can
// target payload semantics instead of tripping the integrity check.
func reseal(data []byte) []byte {
	out := append([]byte(nil), data...)
	n := binary.LittleEndian.Uint64(out[8:16])
	sum := sha256.Sum256(out[binaryHeaderLen : binaryHeaderLen+int(n)])
	copy(out[binaryHeaderLen+int(n):], sum[:])
	return out
}

func TestDecodeBinaryEnforcesMaxEntriesBeforeAllocating(t *testing.T) {
	m := binaryTestMatrix(t) // 4x3 = 12 entries
	data := EncodeBinary(m)
	if _, err := DecodeBinary(data, 12); err != nil {
		t.Fatalf("decode at exactly the cap: %v", err)
	}
	_, err := DecodeBinary(data, 11)
	if err == nil || !strings.Contains(err.Error(), "capped") {
		t.Fatalf("decode over the cap: err = %v, want cap error", err)
	}
}

func TestWriteReadBinary(t *testing.T) {
	m := binaryTestMatrix(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf, 0)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if got.Rows() != m.Rows() || got.Cols() != m.Cols() {
		t.Fatalf("round trip shape %dx%d, want %dx%d", got.Rows(), got.Cols(), m.Rows(), m.Cols())
	}
}

// FuzzBinaryMatrixDecode hardens the untrusted binary-ingest path the
// same way FuzzLoadCheckpoint hardens DCKP: arbitrary bytes must
// decode or error, never panic, and a successful decode must uphold
// the matrix invariants and re-encode canonically.
func FuzzBinaryMatrixDecode(f *testing.F) {
	m := New(3, 2)
	m.Set(0, 0, 1.5)
	m.Set(0, 1, -2)
	m.Set(1, 0, 3.25)
	m.Set(2, 1, 0)
	real := EncodeBinary(m)

	f.Add(real)
	f.Add([]byte{})
	f.Add([]byte("DCMX"))
	f.Add(real[:15])           // truncated header
	f.Add(real[:len(real)-20]) // truncated checksum
	f.Add(append([]byte("JUNK"), real[4:]...))
	badVersion := append([]byte(nil), real...)
	binary.LittleEndian.PutUint32(badVersion[4:8], 99)
	f.Add(badVersion)
	badSum := append([]byte(nil), real...)
	badSum[len(badSum)-1] ^= 0xFF
	f.Add(badSum)
	hugeLen := append([]byte(nil), real...)
	binary.LittleEndian.PutUint64(hugeLen[8:16], 1<<60)
	f.Add(hugeLen)
	hugeDims := append([]byte(nil), real...)
	binary.LittleEndian.PutUint64(hugeDims[binaryHeaderLen:], 1<<62)
	f.Add(reseal(hugeDims)) // oversized section with a valid checksum

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeBinary(data, 1<<20)
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		for i := 0; i < m.Rows(); i++ {
			for j := 0; j < m.Cols(); j++ {
				if m.IsSpecified(i, j) && math.IsInf(m.Get(i, j), 0) {
					t.Fatalf("entry (%d,%d) decoded non-finite value", i, j)
				}
			}
		}
		// Decode → encode → decode must be canonical: the second
		// encoding reproduces the first byte for byte.
		enc := EncodeBinary(m)
		m2, err := DecodeBinary(enc, 1<<20)
		if err != nil {
			t.Fatalf("re-decoding a canonical encoding failed: %v", err)
		}
		if !bytes.Equal(EncodeBinary(m2), enc) {
			t.Fatalf("canonical encoding is not a fixed point")
		}
	})
}
