package matrix

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// TestDerivedCoherenceUnderAllMutationPaths is the property test for
// the derived-cache invalidation discipline: after ANY sequence of
// mutations through ANY public mutation path — with the derived cache
// live the whole time — every derived view (ColView, RowMask, ColMask)
// must match what a from-scratch build over the same entries produces.
// A stale mirror slot or bitset word anywhere fails with the exact
// coordinate.
func TestDerivedCoherenceUnderAllMutationPaths(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			rows := 5 + rng.Intn(8)
			cols := 4 + rng.Intn(7)
			m := New(rows, cols)
			for i := 0; i < rows; i++ {
				for j := 0; j < cols; j++ {
					if rng.Float64() < 0.15 {
						m.SetMissing(i, j)
					} else {
						m.Set(i, j, rng.NormFloat64()*10)
					}
				}
			}
			// Force the derived cache to exist before mutating, so every
			// mutation below exercises the live-cache maintenance path,
			// not the lazy first-read build.
			m.EnsureDerived()

			for step := 0; step < 200; step++ {
				mutate(t, rng, m)
				if step%10 == 0 || step == 199 {
					checkDerivedCoherent(t, m, step)
					if t.Failed() {
						t.Fatalf("stale derived cache after step %d", step)
					}
				}
			}
		})
	}
}

// mutate applies one randomly chosen mutation through a randomly
// chosen public path.
func mutate(t *testing.T, rng *rand.Rand, m *Matrix) {
	t.Helper()
	randVal := func() float64 {
		if rng.Float64() < 0.1 {
			return math.NaN()
		}
		return rng.NormFloat64() * 10
	}
	switch rng.Intn(9) {
	case 0: // Set
		m.Set(rng.Intn(m.Rows()), rng.Intn(m.Cols()), randVal())
	case 1: // SetMissing
		m.SetMissing(rng.Intn(m.Rows()), rng.Intn(m.Cols()))
	case 2: // MutRow (wholesale invalidation path)
		row := m.MutRow(rng.Intn(m.Rows()))
		for j := range row {
			if rng.Float64() < 0.3 {
				row[j] = randVal()
			}
		}
	case 3: // ShiftRow
		m.ShiftRow(rng.Intn(m.Rows()), rng.NormFloat64())
	case 4: // ShiftCol
		m.ShiftCol(rng.Intn(m.Cols()), rng.NormFloat64())
	case 5: // ScaleRow
		m.ScaleRow(rng.Intn(m.Rows()), 1+rng.Float64())
	case 6: // AppendRows
		n := 1 + rng.Intn(3)
		newRows := make([][]float64, n)
		for i := range newRows {
			r := make([]float64, m.Cols())
			for j := range r {
				r[j] = randVal()
			}
			newRows[i] = r
		}
		if err := m.AppendRows(newRows); err != nil {
			t.Fatalf("AppendRows: %v", err)
		}
	case 7: // UpdateCells
		n := 1 + rng.Intn(4)
		cells := make([]Cell, n)
		for i := range cells {
			cells[i] = Cell{Row: rng.Intn(m.Rows()), Col: rng.Intn(m.Cols()), Value: randVal()}
		}
		if err := m.UpdateCells(cells); err != nil {
			t.Fatalf("UpdateCells: %v", err)
		}
	case 8: // MarkMissing
		n := 1 + rng.Intn(4)
		cells := make([]CellRef, n)
		for i := range cells {
			cells[i] = CellRef{Row: rng.Intn(m.Rows()), Col: rng.Intn(m.Cols())}
		}
		if err := m.MarkMissing(cells); err != nil {
			t.Fatalf("MarkMissing: %v", err)
		}
	}
}

// checkDerivedCoherent compares every derived view of m against a
// from-scratch build on a fresh matrix holding the same entries.
func checkDerivedCoherent(t *testing.T, m *Matrix, step int) {
	t.Helper()
	fresh := New(m.Rows(), m.Cols())
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			fresh.Set(i, j, m.Get(i, j))
		}
	}
	fresh.EnsureDerived()

	for j := 0; j < m.Cols(); j++ {
		got, want := m.ColView(j), fresh.ColView(j)
		for i := range want {
			same := got[i] == want[i] || (math.IsNaN(got[i]) && math.IsNaN(want[i]))
			if !same {
				t.Errorf("step %d: ColView(%d)[%d] = %v, fresh build has %v", step, j, i, got[i], want[i])
				return
			}
		}
		gotMask, wantMask := m.ColMask(j), fresh.ColMask(j)
		for w := range wantMask {
			if gotMask[w] != wantMask[w] {
				t.Errorf("step %d: ColMask(%d) word %d = %#x, fresh build has %#x", step, j, w, gotMask[w], wantMask[w])
				return
			}
		}
	}
	for i := 0; i < m.Rows(); i++ {
		gotMask, wantMask := m.RowMask(i), fresh.RowMask(i)
		for w := range wantMask {
			if gotMask[w] != wantMask[w] {
				t.Errorf("step %d: RowMask(%d) word %d = %#x, fresh build has %#x", step, i, w, gotMask[w], wantMask[w])
				return
			}
		}
	}
}
