// Streaming mutators: the matrix-level substrate of the deltastream
// subsystem (internal/stream). A live deployment mutates its data
// matrix continuously — new objects arrive (AppendRows), ratings are
// revised (UpdateCells), readings are retracted (MarkMissing) — and
// every such mutation must keep the derived read caches (column-major
// mirror, missing-value bitsets) exactly coherent without paying a
// wholesale rebuild, because the caches are what the residue kernels
// scan on every evaluation.
//
// The invalidation discipline, per mutator:
//
//   - UpdateCells / MarkMissing touch exactly the mutated entries'
//     mirror slots and bitset words (via syncDerived) — O(1) per cell,
//     no rebuild, no rescan.
//   - AppendRows changes the row count, which changes the mirror's
//     column stride and the column bitset's word span, so those arrays
//     must be re-laid-out — but re-layout is not a rebuild: existing
//     entries move by column-sized memcpy with no per-entry IsNaN
//     re-scan; only the appended entries are classified.
//
// All three require the writer's exclusive access, the same contract
// as every other mutator in this package.

package matrix

import (
	"fmt"
	"math"
)

// Cell is one (row, col) → value update. Storing NaN marks the entry
// missing, exactly like Set.
type Cell struct {
	Row, Col int
	Value    float64
}

// CellRef addresses one entry.
type CellRef struct {
	Row, Col int
}

// AppendRows grows the matrix by len(rows) new rows (each with exactly
// Cols entries; NaN marks missing). Existing entries, views previously
// returned by Row/Col (copies) and label slices are unaffected; views
// returned by RowView/ColView before the append remain valid for the
// old shape but must be re-fetched to observe the new rows. When the
// matrix carries row labels, the new rows get empty labels.
//
// The derived caches are kept coherent by surgical re-layout, not a
// rebuild: see appendDerivedRows.
func (m *Matrix) AppendRows(rows [][]float64) error {
	if len(rows) == 0 {
		return nil
	}
	if m.cols == 0 {
		return fmt.Errorf("matrix: AppendRows on a 0-column matrix")
	}
	for i, r := range rows {
		if len(r) != m.cols {
			return fmt.Errorf("matrix: appended row %d has %d entries, want %d", i, len(r), m.cols)
		}
	}
	oldRows := m.rows
	for _, r := range rows {
		m.data = append(m.data, r...)
	}
	m.rows += len(rows)
	if m.RowLabels != nil {
		m.RowLabels = append(m.RowLabels, make([]string, len(rows))...)
	}
	m.appendDerivedRows(oldRows)
	return nil
}

// appendDerivedRows re-lays-out the derived caches after rows were
// appended to the backing array (deltavet:writer). Appending rows
// changes the column-major mirror's stride (mirror[j*rows+i]) and the
// column bitset's words-per-column, so neither can be patched in
// place — but the old contents need no re-derivation: every existing
// column block moves with one copy, the row bitset is extended
// verbatim, and only the appended entries pay an IsNaN classification.
// That keeps the cost O(rows·cols) worth of memcpy plus O(new·cols)
// classification, with zero re-scanning of existing data.
//
// deltavet:hotpath — this is the streaming ingest invalidation path;
// a wholesale buildDerived here would rescan the full matrix per
// delta and dominate small-batch ingestion.
func (m *Matrix) appendDerivedRows(oldRows int) {
	if m.der.Load() == nil {
		return // nothing built yet; first read builds for the new shape
	}
	m.derMu.Lock()
	defer m.derMu.Unlock()
	old := m.der.Load()
	if old == nil {
		return
	}
	d := &derived{
		rowW: old.rowW,
		colW: (m.rows + 63) / 64,
	}
	//deltavet:ignore hotalloc reason=shape growth is one allocation per append batch, amortized across the delta; the per-cell work below is allocation-free
	d.mirror = make([]float64, m.rows*m.cols)
	//deltavet:ignore hotalloc reason=shape growth is one allocation per append batch, amortized across the delta
	d.rowMask = make([]uint64, m.rows*d.rowW)
	//deltavet:ignore hotalloc reason=shape growth is one allocation per append batch, amortized across the delta
	d.colMask = make([]uint64, m.cols*d.colW)

	// Existing state moves by block copy: each column's old mirror
	// slice and old bitset words land at the head of its new span.
	copy(d.rowMask, old.rowMask)
	for j := 0; j < m.cols; j++ {
		copy(d.mirror[j*m.rows:], old.mirror[j*oldRows:(j+1)*oldRows])
		copy(d.colMask[j*d.colW:], old.colMask[j*old.colW:(j+1)*old.colW])
	}

	// Only the appended entries are classified.
	for i := oldRows; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			d.mirror[j*m.rows+i] = v
			if !math.IsNaN(v) {
				d.rowMask[i*d.rowW+j>>6] |= 1 << uint(j&63)
				d.colMask[j*d.colW+i>>6] |= 1 << uint(i&63)
			}
		}
	}
	m.der.Store(d)
}

// UpdateCells applies a batch of single-entry updates, keeping the
// derived caches coherent per cell (no rebuild). A NaN value marks the
// entry missing. The batch is validated before any entry is written,
// so a bad reference mutates nothing.
func (m *Matrix) UpdateCells(cells []Cell) error {
	for n, c := range cells {
		if c.Row < 0 || c.Row >= m.rows || c.Col < 0 || c.Col >= m.cols {
			return fmt.Errorf("matrix: update %d references (%d, %d) out of %dx%d", n, c.Row, c.Col, m.rows, m.cols)
		}
	}
	for _, c := range cells {
		m.data[c.Row*m.cols+c.Col] = c.Value
		m.syncDerived(c.Row, c.Col, c.Value)
	}
	return nil
}

// MarkMissing retracts a batch of entries (sets them missing), keeping
// the derived caches coherent per cell. The batch is validated before
// any entry is written.
func (m *Matrix) MarkMissing(cells []CellRef) error {
	for n, c := range cells {
		if c.Row < 0 || c.Row >= m.rows || c.Col < 0 || c.Col >= m.cols {
			return fmt.Errorf("matrix: retraction %d references (%d, %d) out of %dx%d", n, c.Row, c.Col, m.rows, m.cols)
		}
	}
	nan := math.NaN()
	for _, c := range cells {
		m.data[c.Row*m.cols+c.Col] = nan
		m.syncDerived(c.Row, c.Col, nan)
	}
	return nil
}
