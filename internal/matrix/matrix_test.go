package matrix

import (
	"math"
	"testing"
	"testing/quick"

	"deltacluster/internal/stats"
)

func TestNewAllMissing(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.IsSpecified(i, j) {
				t.Fatalf("entry (%d,%d) specified in fresh matrix", i, j)
			}
		}
	}
	if m.SpecifiedCount() != 0 {
		t.Errorf("SpecifiedCount = %d, want 0", m.SpecifiedCount())
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestNewFromRows(t *testing.T) {
	m, err := NewFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Get(1, 0); got != 3 {
		t.Errorf("Get(1,0) = %v, want 3", got)
	}
}

func TestNewFromRowsRagged(t *testing.T) {
	if _, err := NewFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
}

func TestNewFromRowsEmpty(t *testing.T) {
	m, err := NewFromRows(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Errorf("shape = %dx%d, want 0x0", m.Rows(), m.Cols())
	}
}

func TestSetGetMissing(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 1, 7.5)
	if !m.IsSpecified(0, 1) || m.Get(0, 1) != 7.5 {
		t.Fatal("Set/Get round trip failed")
	}
	m.SetMissing(0, 1)
	if m.IsSpecified(0, 1) {
		t.Fatal("SetMissing did not clear the entry")
	}
}

func TestGetPanicsOutOfRange(t *testing.T) {
	m := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Get did not panic")
		}
	}()
	m.Get(2, 0)
}

func TestRowColCopies(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	r := m.Row(1)
	r[0] = 99
	if m.Get(1, 0) != 4 {
		t.Error("Row returned a view, want a copy")
	}
	c := m.Col(2)
	if c[0] != 3 || c[1] != 6 {
		t.Errorf("Col(2) = %v, want [3 6]", c)
	}
	c[0] = 99
	if m.Get(0, 2) != 3 {
		t.Error("Col returned a view, want a copy")
	}
}

func TestRowViewAliases(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 2}})
	m.RowView(0)[1] = 42
	if m.Get(0, 1) != 42 {
		t.Error("RowView write did not alter the matrix")
	}
}

func TestCloneIndependence(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	m.RowLabels = []string{"a", "b"}
	m.ColLabels = []string{"x", "y"}
	c := m.Clone()
	c.Set(0, 0, -1)
	c.RowLabels[0] = "z"
	if m.Get(0, 0) != 1 || m.RowLabels[0] != "a" {
		t.Error("Clone shares storage with the original")
	}
	if !m.Equal(m.Clone()) {
		t.Error("Clone is not Equal to the original")
	}
}

func TestSpecifiedCounts(t *testing.T) {
	nan := math.NaN()
	m, _ := NewFromRows([][]float64{
		{1, nan, 3},
		{nan, nan, 6},
	})
	if got := m.SpecifiedCount(); got != 3 {
		t.Errorf("SpecifiedCount = %d, want 3", got)
	}
	if got := m.RowSpecified(0); got != 2 {
		t.Errorf("RowSpecified(0) = %d, want 2", got)
	}
	if got := m.RowSpecified(1); got != 1 {
		t.Errorf("RowSpecified(1) = %d, want 1", got)
	}
	if got := m.ColSpecified(0); got != 1 {
		t.Errorf("ColSpecified(0) = %d, want 1", got)
	}
	if got := m.ColSpecified(2); got != 2 {
		t.Errorf("ColSpecified(2) = %d, want 2", got)
	}
	if got := m.FillFraction(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("FillFraction = %v, want 0.5", got)
	}
}

func TestFillFractionEmpty(t *testing.T) {
	if got := New(0, 0).FillFraction(); got != 0 {
		t.Errorf("FillFraction of empty = %v, want 0", got)
	}
}

func TestSubmatrix(t *testing.T) {
	m, _ := NewFromRows([][]float64{
		{1, 2, 3},
		{4, 5, 6},
		{7, 8, 9},
	})
	m.RowLabels = []string{"r0", "r1", "r2"}
	m.ColLabels = []string{"c0", "c1", "c2"}
	s := m.Submatrix([]int{2, 0}, []int{1, 2})
	want, _ := NewFromRows([][]float64{{8, 9}, {2, 3}})
	if !s.Equal(want) {
		t.Fatalf("Submatrix values wrong")
	}
	if s.RowLabels[0] != "r2" || s.ColLabels[1] != "c2" {
		t.Errorf("labels not carried: %v %v", s.RowLabels, s.ColLabels)
	}
}

func TestEqualShapesAndNaN(t *testing.T) {
	nan := math.NaN()
	a, _ := NewFromRows([][]float64{{1, nan}})
	b, _ := NewFromRows([][]float64{{1, nan}})
	c, _ := NewFromRows([][]float64{{1, 2}})
	d, _ := NewFromRows([][]float64{{1}, {nan}})
	if !a.Equal(b) {
		t.Error("identical matrices with NaN not Equal")
	}
	if a.Equal(c) {
		t.Error("NaN equal to 2")
	}
	if a.Equal(d) {
		t.Error("different shapes Equal")
	}
}

// Property: Submatrix of all rows/cols in order equals the original.
func TestSubmatrixIdentityProperty(t *testing.T) {
	f := func(seed int64, rawR, rawC uint8) bool {
		rows := int(rawR%6) + 1
		cols := int(rawC%6) + 1
		g := stats.NewRNG(seed)
		m := New(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if g.Bool(0.8) {
					m.Set(i, j, g.Uniform(-100, 100))
				}
			}
		}
		allR := make([]int, rows)
		for i := range allR {
			allR[i] = i
		}
		allC := make([]int, cols)
		for j := range allC {
			allC[j] = j
		}
		return m.Submatrix(allR, allC).Equal(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
