package matrix

import (
	"fmt"
	"math"
	"math/bits"
)

// Derived read caches.
//
// The hot kernels in internal/cluster touch the matrix in two shapes
// the row-major backing array serves badly:
//
//   - column toggles and column gain evaluations walk one column
//     across many rows — stride-Cols accesses that miss cache on
//     every entry. The column-major mirror makes them unit-stride.
//   - aggregate counting (specified entries per row/column/matrix)
//     pays a per-entry IsNaN branch. The missing-value bitsets make
//     it word-at-a-time popcount.
//
// Both caches are built lazily on first use and kept in sync by this
// package's mutators (Set, SetMissing and the transform.go family).
// MutRow — the only way to write a row wholesale — invalidates them;
// they rebuild on next use. The cached values are exact bit copies of
// the backing entries, so reading through a cache can never change a
// float operand: kernels switching from RowView to ColView, or from
// IsNaN to a mask bit, produce bit-identical results.
//
// Concurrency: the cache pointer is atomic and builds serialize on a
// mutex, so any number of concurrent *readers* may race to the first
// ColView/RowMask/SpecifiedCount call safely — exactly one build runs
// and the rest wait for it. Mutators still require exclusive access,
// the same contract as writing the backing data. EnsureDerived remains
// useful to pay the build cost eagerly (the FLOC engine calls it
// before sharding its decide phase).

// derived holds the lazily built caches. It lives behind a pointer so
// Clone can cheaply start with none.
//
// deltavet:derived-cache — every field write and every publication
// through the m.der atomic.Pointer must happen in a deltavet:writer
// function; any other write path desynchronizes the mirror from the
// backing array.
type derived struct {
	// mirror is the column-major copy: mirror[j*rows+i] == data[i*cols+j].
	mirror []float64
	// rowMask packs one bit per entry, row-major: bit (j&63) of word
	// rowMask[i*rowW + j>>6] is set iff entry (i, j) is specified.
	rowMask []uint64
	// colMask packs the transpose: bit (i&63) of colMask[j*colW + i>>6].
	colMask []uint64
	rowW    int // words per row in rowMask
	colW    int // words per column in colMask
}

// invalidateDerived drops the caches; they rebuild on next use
// (deltavet:writer).
func (m *Matrix) invalidateDerived() { m.der.Store(nil) }

// EnsureDerived builds the column-major mirror and the missing-value
// bitsets if they do not exist. It is idempotent and cheap when the
// caches already exist; lazy building is also safe under concurrent
// readers, so this is purely a way to pay the build cost at a chosen
// point (the FLOC engine calls it at construction).
func (m *Matrix) EnsureDerived() {
	if m.der.Load() == nil {
		m.buildDerived()
	}
}

// buildDerived constructs both caches in one row-major sweep and
// returns them (so inlinable accessors can avoid re-loading m.der).
// Builds serialize on derMu; racing readers get the winner's build
// (deltavet:writer).
//
// deltavet:coldpath — one build per invalidation, amortized across
// every later unit-stride scan.
//
//go:noinline
func (m *Matrix) buildDerived() *derived {
	m.derMu.Lock()
	defer m.derMu.Unlock()
	if d := m.der.Load(); d != nil {
		return d
	}
	d := &derived{
		rowW: (m.cols + 63) / 64,
		colW: (m.rows + 63) / 64,
	}
	d.mirror = make([]float64, len(m.data))
	d.rowMask = make([]uint64, m.rows*d.rowW)
	d.colMask = make([]uint64, m.cols*d.colW)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			d.mirror[j*m.rows+i] = v
			if !math.IsNaN(v) {
				d.rowMask[i*d.rowW+j>>6] |= 1 << uint(j&63)
				d.colMask[j*d.colW+i>>6] |= 1 << uint(i&63)
			}
		}
	}
	m.der.Store(d)
	return d
}

// syncDerived records a single-entry update (i, j) → v in the caches,
// if they exist. Mutators call it so a built cache never goes stale
// (deltavet:writer).
func (m *Matrix) syncDerived(i, j int, v float64) {
	d := m.der.Load()
	if d == nil {
		return
	}
	d.mirror[j*m.rows+i] = v
	rbit := uint64(1) << uint(j&63)
	cbit := uint64(1) << uint(i&63)
	if math.IsNaN(v) {
		d.rowMask[i*d.rowW+j>>6] &^= rbit
		d.colMask[j*d.colW+i>>6] &^= cbit
	} else {
		d.rowMask[i*d.rowW+j>>6] |= rbit
		d.colMask[j*d.colW+i>>6] |= cbit
	}
}

// ColView returns column j of the column-major mirror without copying:
// a unit-stride, read-only view whose entries are exact bit copies of
// the row-major backing (ColView(j)[i] == RowView(i)[j], NaN for
// missing). The view must not be written. The first call builds the
// mirror; see EnsureDerived for the concurrency contract. Like
// RowView it sits on toggle hot paths, so the body is kept minimal
// enough to inline; an out-of-range j panics via the slice bounds
// check.
func (m *Matrix) ColView(j int) []float64 {
	d := m.der.Load()
	if d == nil {
		d = m.buildDerived()
	}
	return d.mirror[j*m.rows : (j+1)*m.rows]
}

// RowMask returns the missing-value bitset of row i: bit (j mod 64) of
// word j/64 is set iff entry (i, j) is specified. Read-only; the
// backing words are shared with the matrix. See EnsureDerived for the
// concurrency contract.
func (m *Matrix) RowMask(i int) []uint64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of %d", i, m.rows))
	}
	d := m.der.Load()
	if d == nil {
		d = m.buildDerived()
	}
	return d.rowMask[i*d.rowW : (i+1)*d.rowW]
}

// ColMask returns the missing-value bitset of column j: bit (i mod 64)
// of word i/64 is set iff entry (i, j) is specified. Read-only; see
// EnsureDerived for the concurrency contract.
func (m *Matrix) ColMask(j int) []uint64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: col %d out of %d", j, m.cols))
	}
	d := m.der.Load()
	if d == nil {
		d = m.buildDerived()
	}
	return d.colMask[j*d.colW : (j+1)*d.colW]
}

// popcount sums the set bits of a word slice.
func popcount(words []uint64) int {
	n := 0
	for _, w := range words {
		n += bits.OnesCount64(w)
	}
	return n
}
