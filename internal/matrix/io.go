package matrix

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// IOOptions controls how matrices are read from and written to
// delimited text. The zero value means comma-separated, empty cells
// mark missing entries, and no header/label column.
type IOOptions struct {
	// Comma is the field delimiter; 0 means ','. Use '\t' for TSV.
	Comma rune
	// MissingToken is the cell content denoting a missing entry, in
	// addition to the always-accepted empty cell. "NA" and "?" are
	// common in microarray and ratings dumps.
	MissingToken string
	// Header indicates the first record holds column labels.
	Header bool
	// RowLabels indicates the first field of every record is a row
	// label rather than data.
	RowLabels bool
}

func (o IOOptions) comma() rune {
	if o.Comma == 0 {
		return ','
	}
	return o.Comma
}

// Read parses a delimited matrix from r. Cells that are empty or equal
// opts.MissingToken load as missing entries. Cells parsing as NaN
// ("NaN", "nan") also load as missing — NaN is this package's missing
// marker, so the round trip is lossless — while infinite values are
// rejected: residue arithmetic on ±Inf silently poisons every base
// and gain downstream, so a matrix must be finite to load.
func Read(r io.Reader, opts IOOptions) (*Matrix, error) {
	cr := csv.NewReader(r)
	cr.Comma = opts.comma()
	cr.FieldsPerRecord = -1 // validated manually for better messages
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("matrix: reading delimited input: %w", err)
	}
	var colLabels []string
	if opts.Header {
		if len(records) == 0 {
			return nil, fmt.Errorf("matrix: header requested but input is empty")
		}
		colLabels = records[0]
		if opts.RowLabels && len(colLabels) > 0 {
			colLabels = colLabels[1:]
		}
		records = records[1:]
	}
	if len(records) == 0 {
		m := New(0, len(colLabels))
		m.ColLabels = colLabels
		return m, nil
	}

	width := len(records[0])
	dataCols := width
	if opts.RowLabels {
		dataCols--
	}
	if dataCols < 0 {
		return nil, fmt.Errorf("matrix: record 0 has no data fields")
	}
	m := New(len(records), dataCols)
	var rowLabels []string
	if opts.RowLabels {
		rowLabels = make([]string, len(records))
	}
	for i, rec := range records {
		if len(rec) != width {
			return nil, fmt.Errorf("matrix: record %d has %d fields, want %d", i, len(rec), width)
		}
		fields := rec
		if opts.RowLabels {
			rowLabels[i] = rec[0]
			fields = rec[1:]
		}
		for j, cell := range fields {
			if cell == "" || (opts.MissingToken != "" && cell == opts.MissingToken) {
				continue // stays missing
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("matrix: record %d field %d: %w", i, j, err)
			}
			if math.IsInf(v, 0) {
				return nil, fmt.Errorf("matrix: record %d field %d: non-finite value %q", i, j, cell)
			}
			if math.IsNaN(v) {
				continue // NaN is the missing marker; stays missing
			}
			m.Set(i, j, v)
		}
	}
	m.RowLabels = rowLabels
	if colLabels != nil {
		if len(colLabels) != dataCols {
			return nil, fmt.Errorf("matrix: header has %d labels, want %d", len(colLabels), dataCols)
		}
		m.ColLabels = colLabels
	}
	return m, nil
}

// Write renders m to w using opts. Missing entries are written as
// opts.MissingToken (or an empty cell when the token is empty).
// Header/RowLabels are only honored when the matrix carries labels.
func Write(w io.Writer, m *Matrix, opts IOOptions) error {
	cw := csv.NewWriter(w)
	cw.Comma = opts.comma()
	if opts.Header && m.ColLabels != nil {
		rec := m.ColLabels
		if opts.RowLabels && m.RowLabels != nil {
			rec = append([]string{""}, rec...)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("matrix: writing header: %w", err)
		}
	}
	for i := 0; i < m.Rows(); i++ {
		rec := make([]string, 0, m.Cols()+1)
		if opts.RowLabels && m.RowLabels != nil {
			rec = append(rec, m.RowLabels[i])
		}
		for j := 0; j < m.Cols(); j++ {
			if !m.IsSpecified(i, j) {
				rec = append(rec, opts.MissingToken)
				continue
			}
			rec = append(rec, strconv.FormatFloat(m.Get(i, j), 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("matrix: writing row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("matrix: flushing output: %w", err)
	}
	return nil
}
