package matrix

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// IOOptions controls how matrices are read from and written to
// delimited text. The zero value means comma-separated, empty cells
// mark missing entries, no header/label column, and strict parsing
// (the first malformed record fails the load).
type IOOptions struct {
	// Comma is the field delimiter; 0 means ','. Use '\t' for TSV.
	Comma rune
	// MissingToken is the cell content denoting a missing entry, in
	// addition to the always-accepted empty cell. "NA" and "?" are
	// common in microarray and ratings dumps.
	MissingToken string
	// Header indicates the first record holds column labels.
	Header bool
	// RowLabels indicates the first field of every record is a row
	// label rather than data.
	RowLabels bool

	// Quarantine switches to lenient ingestion: malformed records
	// (CSV-level parse failures, wrong field counts, unparsable or
	// non-finite cells) are skipped and reported in a QuarantineReport
	// instead of failing the load. Dirty dumps are the normal case for
	// the ratings and microarray data the paper targets; quarantine
	// trades completeness for progress and keeps the audit trail. The
	// load still fails when fewer than MinSurvivingFraction of the
	// records survive. Strict mode (the default) is unaffected.
	Quarantine bool
	// MinSurvivingFraction is the minimum fraction of data records
	// that must survive quarantine, in the spirit of the paper's
	// occupancy threshold α: a matrix that lost too much of its input
	// is not the data set the caller asked for. 0 means the default
	// 0.5. Only meaningful with Quarantine.
	MinSurvivingFraction float64
}

// QuarantinedRecord describes one record dropped by lenient ingestion.
type QuarantinedRecord struct {
	// Record is the 0-based data record number (header excluded),
	// counting dropped records too — the line a fixer should look at.
	Record int
	// Reason says why the record was dropped.
	Reason string
}

// QuarantineReport is the audit trail of a lenient load.
type QuarantineReport struct {
	// Total is the number of data records seen, kept and dropped.
	Total int
	// Quarantined lists the dropped records in input order.
	Quarantined []QuarantinedRecord
}

// Survived returns how many records loaded.
func (qr *QuarantineReport) Survived() int { return qr.Total - len(qr.Quarantined) }

func (o IOOptions) comma() rune {
	if o.Comma == 0 {
		return ','
	}
	return o.Comma
}

// Read parses a delimited matrix from r. Cells that are empty or equal
// opts.MissingToken load as missing entries. Cells parsing as NaN
// ("NaN", "nan") also load as missing — NaN is this package's missing
// marker, so the round trip is lossless — while infinite values are
// rejected: residue arithmetic on ±Inf silently poisons every base
// and gain downstream, so a matrix must be finite to load. With
// opts.Quarantine, malformed records are skipped instead (see
// ReadReport for the audit trail).
func Read(r io.Reader, opts IOOptions) (*Matrix, error) {
	m, _, err := ReadReport(r, opts)
	return m, err
}

// ReadReport is Read returning the quarantine audit trail alongside
// the matrix. In strict mode the report is present but never carries
// quarantined records (the first malformed record fails the load
// instead).
func ReadReport(r io.Reader, opts IOOptions) (*Matrix, *QuarantineReport, error) {
	if opts.MinSurvivingFraction < 0 || opts.MinSurvivingFraction > 1 {
		return nil, nil, fmt.Errorf("matrix: MinSurvivingFraction = %v, want in [0, 1]", opts.MinSurvivingFraction)
	}
	cr := csv.NewReader(r)
	cr.Comma = opts.comma()
	cr.FieldsPerRecord = -1 // validated manually for better messages

	// Raw read. In strict mode the first CSV-level error fails the
	// load exactly as csv.ReadAll would; quarantine keeps reading.
	type rawRecord struct {
		fields []string
		err    error
	}
	var raw []rawRecord
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			if !opts.Quarantine {
				return nil, nil, fmt.Errorf("matrix: reading delimited input: %w", err)
			}
			raw = append(raw, rawRecord{err: err})
			continue
		}
		raw = append(raw, rawRecord{fields: rec})
	}

	var colLabels []string
	if opts.Header {
		if len(raw) == 0 {
			return nil, nil, fmt.Errorf("matrix: header requested but input is empty")
		}
		if raw[0].err != nil {
			// A malformed header leaves every column's identity in
			// doubt; quarantining it would silently relabel the data.
			return nil, nil, fmt.Errorf("matrix: reading delimited input: %w", raw[0].err)
		}
		colLabels = raw[0].fields
		if opts.RowLabels && len(colLabels) > 0 {
			colLabels = colLabels[1:]
		}
		raw = raw[1:]
	}
	report := &QuarantineReport{Total: len(raw)}
	if len(raw) == 0 {
		m := New(0, len(colLabels))
		m.ColLabels = colLabels
		return m, report, nil
	}

	// Expected record width. Strict mode anchors on the first record
	// (original behavior); quarantine votes — the most common width
	// among well-formed records wins, first seen breaking ties — so
	// one bad leading record cannot condemn the rest of the file.
	width := -1
	if !opts.Quarantine {
		width = len(raw[0].fields)
	} else {
		counts := map[int]int{}
		var order []int
		for _, rr := range raw {
			if rr.err != nil {
				continue
			}
			if _, seen := counts[len(rr.fields)]; !seen {
				order = append(order, len(rr.fields))
			}
			counts[len(rr.fields)]++
		}
		for _, w := range order {
			if width < 0 || counts[w] > counts[width] {
				width = w
			}
		}
		if width < 0 {
			return nil, nil, fmt.Errorf("matrix: quarantine left no parseable records of %d", report.Total)
		}
	}
	dataCols := width
	if opts.RowLabels {
		dataCols--
	}
	if dataCols < 0 {
		return nil, nil, fmt.Errorf("matrix: record 0 has no data fields")
	}
	if colLabels != nil && len(colLabels) != dataCols {
		return nil, nil, fmt.Errorf("matrix: header has %d labels, want %d", len(colLabels), dataCols)
	}

	// Per-record parse. Strict fails on the first offense with the
	// original messages; quarantine records the offense and drops the
	// record.
	var rows [][]float64
	var rowLabels []string
	quarantine := func(i int, reason string) {
		report.Quarantined = append(report.Quarantined, QuarantinedRecord{Record: i, Reason: reason})
	}
	for i, rr := range raw {
		if rr.err != nil {
			quarantine(i, rr.err.Error()) // strict mode never gets here
			continue
		}
		rec := rr.fields
		if len(rec) != width {
			if !opts.Quarantine {
				return nil, nil, fmt.Errorf("matrix: record %d has %d fields, want %d", i, len(rec), width)
			}
			quarantine(i, fmt.Sprintf("has %d fields, want %d", len(rec), width))
			continue
		}
		label := ""
		fields := rec
		if opts.RowLabels {
			label = rec[0]
			fields = rec[1:]
		}
		vals := make([]float64, dataCols)
		for j := range vals {
			vals[j] = math.NaN()
		}
		ok := true
		for j, cell := range fields {
			if cell == "" || (opts.MissingToken != "" && cell == opts.MissingToken) {
				continue // stays missing
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				if !opts.Quarantine {
					return nil, nil, fmt.Errorf("matrix: record %d field %d: %w", i, j, err)
				}
				quarantine(i, fmt.Sprintf("field %d: %v", j, err))
				ok = false
				break
			}
			if math.IsInf(v, 0) {
				if !opts.Quarantine {
					return nil, nil, fmt.Errorf("matrix: record %d field %d: non-finite value %q", i, j, cell)
				}
				quarantine(i, fmt.Sprintf("field %d: non-finite value %q", j, cell))
				ok = false
				break
			}
			if math.IsNaN(v) {
				continue // NaN is the missing marker; stays missing
			}
			vals[j] = v
		}
		if !ok {
			continue
		}
		rows = append(rows, vals)
		if opts.RowLabels {
			rowLabels = append(rowLabels, label)
		}
	}

	if opts.Quarantine {
		frac := opts.MinSurvivingFraction
		if frac == 0 {
			frac = 0.5
		}
		minRows := int(math.Ceil(frac * float64(report.Total)))
		if minRows < 1 {
			minRows = 1
		}
		if report.Survived() < minRows {
			return nil, report, fmt.Errorf(
				"matrix: quarantine dropped %d of %d records; %d survivors is below the required minimum %d (fraction %v)",
				len(report.Quarantined), report.Total, report.Survived(), minRows, frac)
		}
	}

	m := New(len(rows), dataCols)
	for i, vals := range rows {
		for j, v := range vals {
			if !math.IsNaN(v) {
				m.Set(i, j, v)
			}
		}
	}
	if opts.RowLabels {
		m.RowLabels = rowLabels
	}
	m.ColLabels = colLabels
	return m, report, nil
}

// Write renders m to w using opts. Missing entries are written as
// opts.MissingToken (or an empty cell when the token is empty).
// Header/RowLabels are only honored when the matrix carries labels.
func Write(w io.Writer, m *Matrix, opts IOOptions) error {
	cw := csv.NewWriter(w)
	cw.Comma = opts.comma()
	if opts.Header && m.ColLabels != nil {
		rec := m.ColLabels
		if opts.RowLabels && m.RowLabels != nil {
			rec = append([]string{""}, rec...)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("matrix: writing header: %w", err)
		}
	}
	for i := 0; i < m.Rows(); i++ {
		rec := make([]string, 0, m.Cols()+1)
		if opts.RowLabels && m.RowLabels != nil {
			rec = append(rec, m.RowLabels[i])
		}
		for j := 0; j < m.Cols(); j++ {
			if !m.IsSpecified(i, j) {
				rec = append(rec, opts.MissingToken)
				continue
			}
			rec = append(rec, strconv.FormatFloat(m.Get(i, j), 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("matrix: writing row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("matrix: flushing output: %w", err)
	}
	return nil
}
