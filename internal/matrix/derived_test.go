package matrix

import (
	"math"
	"testing"
)

// checkDerived asserts the full derived-cache contract on m:
// ColView(j)[i] == RowView(i)[j] bit-for-bit (NaN-aware), every mask
// bit equals !IsNaN of the backing entry, and the popcount aggregates
// equal their naive per-entry counts.
func checkDerived(t *testing.T, m *Matrix) {
	t.Helper()
	total := 0
	for i := 0; i < m.Rows(); i++ {
		row := m.RowView(i)
		mask := m.RowMask(i)
		rowN := 0
		for j, v := range row {
			cv := m.ColView(j)[i]
			if math.IsNaN(v) != math.IsNaN(cv) || (!math.IsNaN(v) && math.Float64bits(v) != math.Float64bits(cv)) {
				t.Fatalf("ColView(%d)[%d] = %v bits %016x, RowView(%d)[%d] = %v bits %016x",
					j, i, cv, math.Float64bits(cv), i, j, v, math.Float64bits(v))
			}
			rowBit := mask[j>>6]>>(uint(j&63))&1 == 1
			colBit := m.ColMask(j)[i>>6]>>(uint(i&63))&1 == 1
			if want := !math.IsNaN(v); rowBit != want || colBit != want {
				t.Fatalf("entry (%d, %d): specified=%v but rowMask=%v colMask=%v", i, j, want, rowBit, colBit)
			}
			if !math.IsNaN(v) {
				rowN++
				total++
			}
		}
		if got := m.RowSpecified(i); got != rowN {
			t.Fatalf("RowSpecified(%d) = %d, want %d", i, got, rowN)
		}
	}
	for j := 0; j < m.Cols(); j++ {
		colN := 0
		for i := 0; i < m.Rows(); i++ {
			if m.IsSpecified(i, j) {
				colN++
			}
		}
		if got := m.ColSpecified(j); got != colN {
			t.Fatalf("ColSpecified(%d) = %d, want %d", j, got, colN)
		}
	}
	if got := m.SpecifiedCount(); got != total {
		t.Fatalf("SpecifiedCount = %d, want %d", got, total)
	}
}

// TestDerivedAfterMutationSequence drives every mutator with the
// caches already built (so the in-place sync paths are exercised, not
// just the rebuild) and asserts the contract after each step.
func TestDerivedAfterMutationSequence(t *testing.T) {
	nan := math.NaN()
	m, err := NewFromRows([][]float64{
		{1, nan, 3, 4},
		{nan, 6, 7, nan},
		{9, 10, nan, 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	m.EnsureDerived()
	checkDerived(t, m)

	steps := []struct {
		name string
		op   func()
	}{
		{"Set specified→specified", func() { m.Set(0, 0, 42) }},
		{"Set missing→specified", func() { m.Set(0, 1, -1) }},
		{"Set specified→missing", func() { m.Set(2, 3, nan) }},
		{"SetMissing", func() { m.SetMissing(0, 2) }},
		{"ShiftRow", func() { m.ShiftRow(1, 2.5) }},
		{"ShiftCol", func() { m.ShiftCol(1, -0.5) }},
		{"ScaleRow", func() { m.ScaleRow(2, 3) }},
		{"ScaleRow 0·Inf→missing", func() { m.Set(2, 0, 0); m.ScaleRow(2, math.Inf(1)) }},
		{"MutRow invalidates", func() {
			row := m.MutRow(0)
			row[0], row[1] = nan, 8
		}},
		{"Set after MutRow", func() { m.Set(1, 1, 0.25) }},
	}
	for _, s := range steps {
		s.op()
		checkDerived(t, m)
		if t.Failed() {
			t.Fatalf("contract broken after %q", s.name)
		}
	}
}

// TestDerivedLazyBuildMatchesSyncedBuild proves order independence:
// mutating first and building the caches later yields the same caches
// as building first and syncing through every mutation.
func TestDerivedLazyBuildMatchesSyncedBuild(t *testing.T) {
	mutate := func(m *Matrix) {
		m.Set(0, 0, 5)
		m.ShiftRow(1, 1)
		m.SetMissing(1, 2)
		m.ShiftCol(0, -3)
		m.ScaleRow(0, 2)
	}
	mk := func() *Matrix {
		m, err := NewFromRows([][]float64{
			{1, 2, math.NaN()},
			{4, 5, 6},
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	synced := mk()
	synced.EnsureDerived() // caches live through the mutations
	mutate(synced)
	lazy := mk()
	mutate(lazy) // caches built only at the final check
	checkDerived(t, synced)
	checkDerived(t, lazy)
	if !synced.Equal(lazy) {
		t.Fatal("synced and lazy matrices diverged")
	}
}

// TestColViewReflectsClone verifies a clone starts with fresh caches:
// mutating the clone never leaks into the original's views.
func TestColViewReflectsClone(t *testing.T) {
	m, err := NewFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	m.EnsureDerived()
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.ColView(0)[0] != 1 {
		t.Fatalf("clone mutation leaked into original's ColView: %v", m.ColView(0)[0])
	}
	if c.ColView(0)[0] != 99 {
		t.Fatalf("clone ColView missed its own mutation: %v", c.ColView(0)[0])
	}
}

// FuzzDerivedConsistency feeds random mutation programs (opcode and
// operands drawn from fuzz bytes) through a small matrix, with the
// caches built at a fuzz-chosen point, and asserts the mirror/bitset
// contract at the end. It is the adversarial version of the scripted
// sequence test above.
func FuzzDerivedConsistency(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{5, 0, 5, 1, 5, 2})
	f.Fuzz(func(t *testing.T, program []byte) {
		const rows, cols = 5, 7
		m := New(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if (i+j)%3 != 0 {
					m.Set(i, j, float64(i*cols+j))
				}
			}
		}
		for pc := 0; pc+1 < len(program); pc += 2 {
			op, arg := program[pc], int(program[pc+1])
			switch op % 7 {
			case 0:
				m.Set(arg%rows, (arg/rows)%cols, float64(arg))
			case 1:
				m.SetMissing(arg%rows, (arg/rows)%cols)
			case 2:
				m.ShiftRow(arg%rows, float64(arg%5)-2)
			case 3:
				m.ShiftCol(arg%cols, float64(arg%5)-2)
			case 4:
				m.ScaleRow(arg%rows, float64(arg%3))
			case 5:
				row := m.MutRow(arg % rows)
				for j := range row {
					if (arg+j)%4 == 0 {
						row[j] = math.NaN()
					} else {
						row[j] = float64(arg + j)
					}
				}
			case 6:
				m.EnsureDerived() // build mid-program; later ops must sync
			}
		}
		checkDerived(t, m)
	})
}
