package matrix

import (
	"math"
	"testing"
)

func TestLogTransformAmplificationToShift(t *testing.T) {
	// Row 1 is row 0 amplified by 3; after the log transform the rows
	// differ by the constant log(3) — shifting coherence.
	m, _ := NewFromRows([][]float64{
		{1, 2, 4},
		{3, 6, 12},
	})
	lg, err := LogTransform(m)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(3)
	for j := 0; j < 3; j++ {
		diff := lg.Get(1, j) - lg.Get(0, j)
		if math.Abs(diff-want) > 1e-12 {
			t.Errorf("col %d: log difference %v, want %v", j, diff, want)
		}
	}
}

func TestLogTransformPreservesMissing(t *testing.T) {
	nan := math.NaN()
	m, _ := NewFromRows([][]float64{{1, nan}})
	lg, err := LogTransform(m)
	if err != nil {
		t.Fatal(err)
	}
	if lg.IsSpecified(0, 1) {
		t.Error("missing entry became specified")
	}
	if lg.Get(0, 0) != 0 {
		t.Errorf("log(1) = %v, want 0", lg.Get(0, 0))
	}
}

func TestLogTransformRejectsNonPositive(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 0}})
	if _, err := LogTransform(m); err == nil {
		t.Error("zero entry accepted")
	}
	m2, _ := NewFromRows([][]float64{{-1}})
	if _, err := LogTransform(m2); err == nil {
		t.Error("negative entry accepted")
	}
}

func TestLogTransformDoesNotMutateInput(t *testing.T) {
	m, _ := NewFromRows([][]float64{{2, 4}})
	if _, err := LogTransform(m); err != nil {
		t.Fatal(err)
	}
	if m.Get(0, 0) != 2 {
		t.Error("LogTransform mutated its input")
	}
}

func TestShiftRowAndCol(t *testing.T) {
	nan := math.NaN()
	m, _ := NewFromRows([][]float64{
		{1, 2, nan},
		{3, 4, 5},
	})
	m.ShiftRow(0, 10)
	if m.Get(0, 0) != 11 || m.Get(0, 1) != 12 {
		t.Error("ShiftRow wrong values")
	}
	if m.IsSpecified(0, 2) {
		t.Error("ShiftRow specified a missing entry")
	}
	m.ShiftCol(1, -2)
	if m.Get(0, 1) != 10 || m.Get(1, 1) != 2 {
		t.Error("ShiftCol wrong values")
	}
}

func TestScaleRow(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, -2}})
	m.ScaleRow(0, 4)
	if m.Get(0, 0) != 4 || m.Get(0, 1) != -8 {
		t.Error("ScaleRow wrong values")
	}
}

func TestDeriveDifferencesShape(t *testing.T) {
	m, _ := NewFromRows([][]float64{
		{5, 3, 1},
		{9, 6, 2},
	})
	d, pairs := DeriveDifferences(m)
	if d.Cols() != 3 {
		t.Fatalf("derived cols = %d, want 3", d.Cols())
	}
	if len(pairs) != 3 {
		t.Fatalf("pairs = %d, want 3", len(pairs))
	}
	// pairs are (0,1), (0,2), (1,2) in order.
	wantPairs := [][2]int{{0, 1}, {0, 2}, {1, 2}}
	for i, p := range pairs {
		if p != wantPairs[i] {
			t.Errorf("pair %d = %v, want %v", i, p, wantPairs[i])
		}
	}
	if d.Get(0, 0) != 2 { // 5-3
		t.Errorf("d(0,0) = %v, want 2", d.Get(0, 0))
	}
	if d.Get(1, 1) != 7 { // 9-2
		t.Errorf("d(1,1) = %v, want 7", d.Get(1, 1))
	}
}

func TestDeriveDifferencesMissing(t *testing.T) {
	nan := math.NaN()
	m, _ := NewFromRows([][]float64{{1, nan, 3}})
	d, _ := DeriveDifferences(m)
	// (0,1) and (1,2) touch the missing col; (0,2) does not.
	if d.IsSpecified(0, 0) || d.IsSpecified(0, 2) {
		t.Error("difference with missing source specified")
	}
	if !d.IsSpecified(0, 1) || d.Get(0, 1) != -2 {
		t.Errorf("d(0,1) = %v, want -2", d.Get(0, 1))
	}
}

func TestDeriveDifferencesLabels(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 2}})
	m.ColLabels = []string{"1I", "1D"}
	m.RowLabels = []string{"VPS8"}
	d, _ := DeriveDifferences(m)
	if d.ColLabels[0] != "1I-1D" {
		t.Errorf("derived label %q, want %q", d.ColLabels[0], "1I-1D")
	}
	if d.RowLabels[0] != "VPS8" {
		t.Errorf("row labels not carried")
	}
}

// Rows of a perfect shifted cluster collapse to equal rows in the
// derived matrix — the foundation of the Section 4.4 alternative
// algorithm.
func TestDeriveDifferencesCollapsesShifts(t *testing.T) {
	m, _ := NewFromRows([][]float64{
		{1, 5, 23},
		{11, 15, 33},
	})
	d, _ := DeriveDifferences(m)
	for j := 0; j < d.Cols(); j++ {
		if d.Get(0, j) != d.Get(1, j) {
			t.Errorf("derived col %d differs: %v vs %v", j, d.Get(0, j), d.Get(1, j))
		}
	}
}
