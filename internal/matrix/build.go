package matrix

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Builder accumulates rows into a Matrix without an intermediate
// [][]float64: callers append one row at a time and the builder grows
// a single row-major backing slice, which Build hands to the Matrix
// without copying. This is the streaming-ingest primitive behind
// ReadInto and the service's JSON row decode — a request body is
// parsed straight into the final representation.
//
// The column count anchors on the first appended row; every later row
// must match it. A positive maxEntries caps rows*cols and is enforced
// before the backing slice grows past it, so an oversized input fails
// without ever paying its allocation.
type Builder struct {
	cols       int
	maxEntries int
	data       []float64
	rows       int
	built      bool
}

// NewBuilder returns an empty builder. maxEntries ≤ 0 means unlimited.
func NewBuilder(maxEntries int) *Builder {
	return &Builder{cols: -1, maxEntries: maxEntries}
}

// Rows returns the number of rows appended so far.
func (b *Builder) Rows() int { return b.rows }

// Cols returns the anchored column count, or -1 before the first row.
func (b *Builder) Cols() int { return b.cols }

// AppendRow copies row into the builder. NaN entries are missing; the
// caller may reuse row's backing array after the call returns.
func (b *Builder) AppendRow(row []float64) error {
	if b.built {
		return fmt.Errorf("matrix: AppendRow after Build")
	}
	if b.cols < 0 {
		if len(row) == 0 {
			return fmt.Errorf("matrix: first row is empty; need at least one column")
		}
		b.cols = len(row)
	} else if len(row) != b.cols {
		return fmt.Errorf("matrix: row %d has %d entries, want %d", b.rows, len(row), b.cols)
	}
	if b.maxEntries > 0 && (b.rows+1)*b.cols > b.maxEntries {
		return fmt.Errorf("matrix is %dx%d = %d entries; capped at %d",
			b.rows+1, b.cols, (b.rows+1)*b.cols, b.maxEntries)
	}
	b.data = append(b.data, row...)
	b.rows++
	return nil
}

// Build finalizes the accumulated rows as a Matrix, handing over the
// backing slice without copying. The builder is spent afterwards:
// further AppendRow calls fail.
func (b *Builder) Build() *Matrix {
	b.built = true
	cols := b.cols
	if cols < 0 {
		cols = 0
	}
	m := &Matrix{rows: b.rows, cols: cols, data: b.data}
	b.data = nil
	return m
}

// ReadInto parses delimited text from r straight into b, one record at
// a time — no [][]float64 or raw-record materialization, so peak
// memory is one row plus the growing backing slice. It accepts the
// same strict-mode dialect as Read (Comma, MissingToken, Header,
// RowLabels; NaN cells load as missing, ±Inf is rejected) but not
// Quarantine: lenient ingestion needs the full record set for width
// voting, so quarantined loads go through ReadReport.
//
// Labels stream into the builder's matrix via the returned label
// slices applied by the caller; to keep the API minimal ReadInto drops
// row/column labels (the service's CSV payloads never carry them — use
// Read when labels matter).
func ReadInto(b *Builder, r io.Reader, opts IOOptions) error {
	if opts.Quarantine {
		return fmt.Errorf("matrix: ReadInto is strict-mode only; use ReadReport for quarantine")
	}
	cr := csv.NewReader(r)
	cr.Comma = opts.comma()
	cr.FieldsPerRecord = -1 // validated manually for better messages
	cr.ReuseRecord = true

	if opts.Header {
		if _, err := cr.Read(); err == io.EOF {
			return fmt.Errorf("matrix: header requested but input is empty")
		} else if err != nil {
			return fmt.Errorf("matrix: reading delimited input: %w", err)
		}
	}

	width := -1
	var vals []float64
	for i := 0; ; i++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("matrix: reading delimited input: %w", err)
		}
		if width < 0 {
			width = len(rec)
			dataCols := width
			if opts.RowLabels {
				dataCols--
			}
			if dataCols < 0 {
				return fmt.Errorf("matrix: record 0 has no data fields")
			}
			vals = make([]float64, dataCols)
		}
		if len(rec) != width {
			return fmt.Errorf("matrix: record %d has %d fields, want %d", i, len(rec), width)
		}
		fields := rec
		if opts.RowLabels {
			fields = rec[1:]
		}
		for j := range vals {
			vals[j] = math.NaN()
		}
		for j, cell := range fields {
			if cell == "" || (opts.MissingToken != "" && cell == opts.MissingToken) {
				continue // stays missing
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return fmt.Errorf("matrix: record %d field %d: %w", i, j, err)
			}
			if math.IsInf(v, 0) {
				return fmt.Errorf("matrix: record %d field %d: non-finite value %q", i, j, cell)
			}
			if math.IsNaN(v) {
				continue // NaN is the missing marker; stays missing
			}
			vals[j] = v
		}
		if err := b.AppendRow(vals); err != nil {
			return err
		}
	}
}
