package matrix

import (
	"math"
	"strings"
	"testing"
)

func TestBuilderAppendAndBuild(t *testing.T) {
	b := NewBuilder(0)
	if b.Cols() != -1 {
		t.Fatalf("Cols before first row = %d, want -1", b.Cols())
	}
	row := []float64{1, math.NaN(), 3}
	if err := b.AppendRow(row); err != nil {
		t.Fatalf("AppendRow: %v", err)
	}
	row[0], row[1], row[2] = 4, 5, 6 // builder must have copied
	if err := b.AppendRow(row); err != nil {
		t.Fatalf("AppendRow: %v", err)
	}
	m := b.Build()
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("built %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	if m.Get(0, 0) != 1 || m.IsSpecified(0, 1) || m.Get(1, 2) != 6 {
		t.Fatalf("built matrix holds wrong values")
	}
	if err := b.AppendRow(row); err == nil {
		t.Fatalf("AppendRow after Build succeeded, want error")
	}
}

func TestBuilderRejectsWidthMismatch(t *testing.T) {
	b := NewBuilder(0)
	if err := b.AppendRow([]float64{1, 2}); err != nil {
		t.Fatalf("AppendRow: %v", err)
	}
	if err := b.AppendRow([]float64{1}); err == nil || !strings.Contains(err.Error(), "want 2") {
		t.Fatalf("ragged append: err = %v, want width mismatch", err)
	}
}

func TestBuilderEnforcesMaxEntriesIncrementally(t *testing.T) {
	b := NewBuilder(5) // 2-wide rows: second row would be 4 entries, third 6
	if err := b.AppendRow([]float64{1, 2}); err != nil {
		t.Fatalf("row 0: %v", err)
	}
	if err := b.AppendRow([]float64{3, 4}); err != nil {
		t.Fatalf("row 1: %v", err)
	}
	if err := b.AppendRow([]float64{5, 6}); err == nil || !strings.Contains(err.Error(), "capped") {
		t.Fatalf("row 2: err = %v, want cap error", err)
	}
}

func TestBuilderEmpty(t *testing.T) {
	m := NewBuilder(0).Build()
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatalf("empty build is %dx%d, want 0x0", m.Rows(), m.Cols())
	}
}

func TestReadIntoMatchesRead(t *testing.T) {
	cases := []struct {
		name string
		data string
		opts IOOptions
	}{
		{"plain", "1,2,3\n4,,6\nNaN,8,9\n", IOOptions{}},
		{"tsv missing token", "1\tNA\n3\t4\n", IOOptions{Comma: '\t', MissingToken: "NA"}},
		{"header and labels", "id,a,b\ng1,1,2\ng2,3,4\n", IOOptions{Header: true, RowLabels: true}},
	}
	for _, tc := range cases {
		want, err := Read(strings.NewReader(tc.data), tc.opts)
		if err != nil {
			t.Fatalf("%s: Read: %v", tc.name, err)
		}
		b := NewBuilder(0)
		if err := ReadInto(b, strings.NewReader(tc.data), tc.opts); err != nil {
			t.Fatalf("%s: ReadInto: %v", tc.name, err)
		}
		got := b.Build()
		if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
			t.Fatalf("%s: shape %dx%d, want %dx%d", tc.name, got.Rows(), got.Cols(), want.Rows(), want.Cols())
		}
		for i := 0; i < want.Rows(); i++ {
			for j := 0; j < want.Cols(); j++ {
				if got.IsSpecified(i, j) != want.IsSpecified(i, j) {
					t.Fatalf("%s: entry (%d,%d) specified mismatch", tc.name, i, j)
				}
				if want.IsSpecified(i, j) && got.Get(i, j) != want.Get(i, j) {
					t.Fatalf("%s: entry (%d,%d) = %v, want %v", tc.name, i, j, got.Get(i, j), want.Get(i, j))
				}
			}
		}
	}
}

func TestReadIntoErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
		opts IOOptions
		want string
	}{
		{"ragged", "1,2\n3\n", IOOptions{}, "want 2"},
		{"bad cell", "1,x\n", IOOptions{}, "field 1"},
		{"infinite", "1,Inf\n", IOOptions{}, "non-finite"},
		{"quarantine unsupported", "1,2\n", IOOptions{Quarantine: true}, "strict-mode only"},
		{"missing header", "", IOOptions{Header: true}, "header requested"},
	}
	for _, tc := range cases {
		err := ReadInto(NewBuilder(0), strings.NewReader(tc.data), tc.opts)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want it to contain %q", tc.name, err, tc.want)
		}
	}
}

func TestReadIntoEnforcesCapMidStream(t *testing.T) {
	b := NewBuilder(4)
	err := ReadInto(b, strings.NewReader("1,2\n3,4\n5,6\n"), IOOptions{})
	if err == nil || !strings.Contains(err.Error(), "capped") {
		t.Fatalf("err = %v, want cap error", err)
	}
	if b.Rows() != 2 {
		t.Fatalf("builder holds %d rows at failure, want 2", b.Rows())
	}
}
