package matrix

import (
	"fmt"
	"math"
)

// LogTransform returns a new matrix whose specified entries are the
// (natural) logarithm of the input's. Section 3 of the paper reduces
// amplification (multiplicative) coherence to shifting (additive)
// coherence with exactly this transform: if one object's values are a
// constant multiple of another's, their logarithms differ by a
// constant offset and form a perfect (zero-residue) δ-cluster.
//
// Entries must be strictly positive wherever specified; a
// non-positive entry is reported with its coordinates.
func LogTransform(m *Matrix) (*Matrix, error) {
	out := m.Clone()
	for i := 0; i < m.Rows(); i++ {
		row := out.MutRow(i)
		for j, v := range row {
			if math.IsNaN(v) {
				continue
			}
			if v <= 0 {
				return nil, fmt.Errorf("matrix: LogTransform at (%d, %d): value %v is not positive", i, j, v)
			}
			row[j] = math.Log(v)
		}
	}
	return out, nil
}

// ShiftRow adds offset to every specified entry of row i, in place,
// keeping the derived caches in sync. Shifting a row leaves every
// residue in internal/cluster unchanged (the object base absorbs the
// offset) — the property the model is built on, and what the
// property-based tests assert.
func (m *Matrix) ShiftRow(i int, offset float64) {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of %d", i, m.rows))
	}
	row := m.data[i*m.cols : (i+1)*m.cols]
	for j, v := range row {
		if !math.IsNaN(v) {
			nv := v + offset
			row[j] = nv
			m.syncDerived(i, j, nv)
		}
	}
}

// ShiftCol adds offset to every specified entry of column j, in place,
// keeping the derived caches in sync.
func (m *Matrix) ShiftCol(j int, offset float64) {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: col %d out of %d", j, m.cols))
	}
	for i := 0; i < m.rows; i++ {
		if v := m.data[i*m.cols+j]; !math.IsNaN(v) {
			nv := v + offset
			m.data[i*m.cols+j] = nv
			m.syncDerived(i, j, nv)
		}
	}
}

// ScaleRow multiplies every specified entry of row i by factor, in
// place, keeping the derived caches in sync (a specified entry can
// turn missing here: 0·Inf scales to NaN). Together with LogTransform
// it exercises the amplification form of coherence.
func (m *Matrix) ScaleRow(i int, factor float64) {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of %d", i, m.rows))
	}
	row := m.data[i*m.cols : (i+1)*m.cols]
	for j, v := range row {
		if !math.IsNaN(v) {
			nv := v * factor
			row[j] = nv
			m.syncDerived(i, j, nv)
		}
	}
}

// DeriveDifferences builds the derived matrix of Section 4.4: for every
// pair of attributes (j1 < j2) a derived attribute holding the
// difference column j1 − column j2. An entry of the derived matrix is
// missing when either source entry is missing. With N original
// attributes the result has N(N−1)/2 columns — the quadratic blow-up
// that makes the paper's alternative algorithm expensive (Figure 10).
//
// The returned pairs slice maps each derived column index to its
// source attribute pair.
func DeriveDifferences(m *Matrix) (*Matrix, [][2]int) {
	n := m.Cols()
	derivedCols := n * (n - 1) / 2
	out := New(m.Rows(), derivedCols)
	pairs := make([][2]int, 0, derivedCols)
	for j1 := 0; j1 < n; j1++ {
		for j2 := j1 + 1; j2 < n; j2++ {
			pairs = append(pairs, [2]int{j1, j2})
		}
	}
	if m.ColLabels != nil {
		out.ColLabels = make([]string, derivedCols)
		for d, p := range pairs {
			out.ColLabels[d] = m.ColLabels[p[0]] + "-" + m.ColLabels[p[1]]
		}
	}
	if m.RowLabels != nil {
		out.RowLabels = append([]string(nil), m.RowLabels...)
	}
	for i := 0; i < m.Rows(); i++ {
		src := m.RowView(i)
		dst := out.MutRow(i)
		for d, p := range pairs {
			a, b := src[p[0]], src[p[1]]
			if math.IsNaN(a) || math.IsNaN(b) {
				continue
			}
			dst[d] = a - b
		}
	}
	return out, pairs
}
