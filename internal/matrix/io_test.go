package matrix

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestReadBasicCSV(t *testing.T) {
	in := "1,2,3\n4,,6\n"
	m, err := Read(strings.NewReader(in), IOOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	if m.Get(1, 2) != 6 {
		t.Errorf("Get(1,2) = %v, want 6", m.Get(1, 2))
	}
	if m.IsSpecified(1, 1) {
		t.Error("empty cell loaded as specified")
	}
}

func TestReadMissingToken(t *testing.T) {
	in := "1\tNA\n3\t4\n"
	m, err := Read(strings.NewReader(in), IOOptions{Comma: '\t', MissingToken: "NA"})
	if err != nil {
		t.Fatal(err)
	}
	if m.IsSpecified(0, 1) {
		t.Error("NA cell loaded as specified")
	}
	if m.Get(1, 1) != 4 {
		t.Errorf("Get(1,1) = %v, want 4", m.Get(1, 1))
	}
}

func TestReadHeaderAndRowLabels(t *testing.T) {
	in := ",c0,c1\nr0,1,2\nr1,3,4\n"
	m, err := Read(strings.NewReader(in), IOOptions{Header: true, RowLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("shape %dx%d, want 2x2", m.Rows(), m.Cols())
	}
	if m.RowLabels[1] != "r1" || m.ColLabels[0] != "c0" {
		t.Errorf("labels wrong: %v %v", m.RowLabels, m.ColLabels)
	}
	if m.Get(1, 1) != 4 {
		t.Errorf("Get(1,1) = %v, want 4", m.Get(1, 1))
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("1,2\n3\n"), IOOptions{}); err == nil {
		t.Error("ragged record accepted")
	}
	if _, err := Read(strings.NewReader("1,x\n"), IOOptions{}); err == nil {
		t.Error("non-numeric cell accepted")
	}
	if _, err := Read(strings.NewReader(""), IOOptions{Header: true}); err == nil {
		t.Error("empty input with header accepted")
	}
	if _, err := Read(strings.NewReader("a,b\n1,2,3\n"), IOOptions{Header: true}); err == nil {
		t.Error("header width mismatch accepted")
	}
}

func TestReadEmptyInput(t *testing.T) {
	m, err := Read(strings.NewReader(""), IOOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 0 {
		t.Errorf("rows = %d, want 0", m.Rows())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	nan := math.NaN()
	m, _ := NewFromRows([][]float64{
		{1.5, nan, -3},
		{nan, 2.25, 1e-9},
	})
	m.RowLabels = []string{"u1", "u2"}
	m.ColLabels = []string{"m1", "m2", "m3"}
	opts := IOOptions{Header: true, RowLabels: true, MissingToken: "?"}

	var buf bytes.Buffer
	if err := Write(&buf, m, opts); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back) {
		t.Fatalf("round trip changed values:\nwrote %v\nread  %v", m, back)
	}
	if back.RowLabels[0] != "u1" || back.ColLabels[2] != "m3" {
		t.Errorf("labels lost in round trip: %v %v", back.RowLabels, back.ColLabels)
	}
}

func TestWriteTSVNoLabels(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 2}})
	var buf bytes.Buffer
	if err := Write(&buf, m, IOOptions{Comma: '\t'}); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "1\t2\n" {
		t.Errorf("output = %q, want %q", got, "1\t2\n")
	}
}
