package matrix

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestReadBasicCSV(t *testing.T) {
	in := "1,2,3\n4,,6\n"
	m, err := Read(strings.NewReader(in), IOOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	if m.Get(1, 2) != 6 {
		t.Errorf("Get(1,2) = %v, want 6", m.Get(1, 2))
	}
	if m.IsSpecified(1, 1) {
		t.Error("empty cell loaded as specified")
	}
}

func TestReadMissingToken(t *testing.T) {
	in := "1\tNA\n3\t4\n"
	m, err := Read(strings.NewReader(in), IOOptions{Comma: '\t', MissingToken: "NA"})
	if err != nil {
		t.Fatal(err)
	}
	if m.IsSpecified(0, 1) {
		t.Error("NA cell loaded as specified")
	}
	if m.Get(1, 1) != 4 {
		t.Errorf("Get(1,1) = %v, want 4", m.Get(1, 1))
	}
}

func TestReadHeaderAndRowLabels(t *testing.T) {
	in := ",c0,c1\nr0,1,2\nr1,3,4\n"
	m, err := Read(strings.NewReader(in), IOOptions{Header: true, RowLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("shape %dx%d, want 2x2", m.Rows(), m.Cols())
	}
	if m.RowLabels[1] != "r1" || m.ColLabels[0] != "c0" {
		t.Errorf("labels wrong: %v %v", m.RowLabels, m.ColLabels)
	}
	if m.Get(1, 1) != 4 {
		t.Errorf("Get(1,1) = %v, want 4", m.Get(1, 1))
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("1,2\n3\n"), IOOptions{}); err == nil {
		t.Error("ragged record accepted")
	}
	if _, err := Read(strings.NewReader("1,x\n"), IOOptions{}); err == nil {
		t.Error("non-numeric cell accepted")
	}
	if _, err := Read(strings.NewReader(""), IOOptions{Header: true}); err == nil {
		t.Error("empty input with header accepted")
	}
	if _, err := Read(strings.NewReader("a,b\n1,2,3\n"), IOOptions{Header: true}); err == nil {
		t.Error("header width mismatch accepted")
	}
}

func TestReadEmptyInput(t *testing.T) {
	m, err := Read(strings.NewReader(""), IOOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 0 {
		t.Errorf("rows = %d, want 0", m.Rows())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	nan := math.NaN()
	m, _ := NewFromRows([][]float64{
		{1.5, nan, -3},
		{nan, 2.25, 1e-9},
	})
	m.RowLabels = []string{"u1", "u2"}
	m.ColLabels = []string{"m1", "m2", "m3"}
	opts := IOOptions{Header: true, RowLabels: true, MissingToken: "?"}

	var buf bytes.Buffer
	if err := Write(&buf, m, opts); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back) {
		t.Fatalf("round trip changed values:\nwrote %v\nread  %v", m, back)
	}
	if back.RowLabels[0] != "u1" || back.ColLabels[2] != "m3" {
		t.Errorf("labels lost in round trip: %v %v", back.RowLabels, back.ColLabels)
	}
}

func TestReadStrictErrorMessages(t *testing.T) {
	// Strict-mode diagnostics are load-bearing: callers and older tests
	// match on them, so the quarantine refactor must not reword them.
	cases := []struct {
		in   string
		opts IOOptions
		want string
	}{
		{"1,2\n3\n", IOOptions{}, "matrix: record 1 has 1 fields, want 2"},
		{"1,x\n", IOOptions{}, "matrix: record 0 field 1:"},
		{"1,+Inf\n", IOOptions{}, `matrix: record 0 field 1: non-finite value "+Inf"`},
		{"", IOOptions{Header: true}, "matrix: header requested but input is empty"},
		{"a,b\n1,2,3\n", IOOptions{Header: true}, "matrix: header has 2 labels, want 3"},
		{"1,\"2\"x,3\n", IOOptions{}, "matrix: reading delimited input:"},
	}
	for _, tc := range cases {
		_, _, err := ReadReport(strings.NewReader(tc.in), tc.opts)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ReadReport(%q) err = %v, want containing %q", tc.in, err, tc.want)
		}
	}
}

func TestReadReportStrictCleanLoad(t *testing.T) {
	m, rep, err := ReadReport(strings.NewReader("1,2\n3,4\n"), IOOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || rep.Total != 2 || len(rep.Quarantined) != 0 || rep.Survived() != 2 {
		t.Fatalf("clean strict load: shape %dx%d, report %+v", m.Rows(), m.Cols(), rep)
	}
}

func TestQuarantineSkipsMalformedRecords(t *testing.T) {
	in := strings.Join([]string{
		"1,2,3",       // 0: good
		"4,5",         // 1: ragged
		"6,x,8",       // 2: unparsable cell
		"9,+Inf,11",   // 3: non-finite cell
		`12,"13"x,14`, // 4: CSV-level parse error
		"15,16,17",    // 5: good
		"18,,NaN",     // 6: good — empty and NaN cells are missing, not malformed
		"19,20,21",    // 7: good
	}, "\n") + "\n"
	m, rep, err := ReadReport(strings.NewReader(in), IOOptions{Quarantine: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 8 || rep.Survived() != 4 {
		t.Fatalf("report %+v, want 8 records with 4 survivors", rep)
	}
	wantDropped := []struct {
		record int
		reason string
	}{
		{1, "has 2 fields, want 3"},
		{2, "field 1:"},
		{3, `field 1: non-finite value "+Inf"`},
		{4, `"`}, // csv's own message; just require it mentions the quote
	}
	if len(rep.Quarantined) != len(wantDropped) {
		t.Fatalf("quarantined %+v, want %d records", rep.Quarantined, len(wantDropped))
	}
	for i, want := range wantDropped {
		got := rep.Quarantined[i]
		if got.Record != want.record || !strings.Contains(got.Reason, want.reason) {
			t.Errorf("quarantined[%d] = %+v, want record %d with reason containing %q",
				i, got, want.record, want.reason)
		}
	}
	if m.Rows() != 4 || m.Cols() != 3 {
		t.Fatalf("shape %dx%d, want the 4 surviving rows by 3 cols", m.Rows(), m.Cols())
	}
	if m.Get(0, 0) != 1 || m.Get(1, 0) != 15 || m.Get(2, 0) != 18 || m.Get(3, 0) != 19 {
		t.Errorf("survivors out of order: col 0 = %v, %v, %v, %v",
			m.Get(0, 0), m.Get(1, 0), m.Get(2, 0), m.Get(3, 0))
	}
	if m.IsSpecified(2, 1) || m.IsSpecified(2, 2) {
		t.Error("missing cells in a surviving record loaded as specified")
	}
}

func TestQuarantineSurvivorMinimum(t *testing.T) {
	in := "1,2\n3,x\n5,y\n7,z\n" // 1 of 4 survives
	_, rep, err := ReadReport(strings.NewReader(in), IOOptions{Quarantine: true})
	if err == nil || !strings.Contains(err.Error(), "below the required minimum") {
		t.Fatalf("err = %v, want the survivor-minimum error (default fraction 0.5)", err)
	}
	if rep == nil || rep.Survived() != 1 {
		t.Fatalf("threshold failure must still return the report, got %+v", rep)
	}
	m, rep, err := ReadReport(strings.NewReader(in), IOOptions{Quarantine: true, MinSurvivingFraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 1 || rep.Survived() != 1 {
		t.Fatalf("relaxed fraction: shape %dx%d, report %+v", m.Rows(), m.Cols(), rep)
	}
}

// The expected width in quarantine mode is voted, so one bad leading
// record cannot condemn every following row (strict mode anchors on
// record 0).
func TestQuarantineWidthVote(t *testing.T) {
	in := "1,2\n3,4,5\n6,7,8\n9,10,11\n"
	m, rep, err := ReadReport(strings.NewReader(in), IOOptions{Quarantine: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cols() != 3 {
		t.Fatalf("cols = %d, want the majority width 3", m.Cols())
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Record != 0 {
		t.Fatalf("quarantined %+v, want only the narrow record 0", rep.Quarantined)
	}
}

func TestQuarantineRowLabelsSurvive(t *testing.T) {
	in := ",c0,c1\nr0,1,2\nr1,3,x\nr2,5,6\n"
	m, rep, err := ReadReport(strings.NewReader(in), IOOptions{Quarantine: true, Header: true, RowLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Survived() != 2 {
		t.Fatalf("report %+v, want 2 survivors", rep)
	}
	if len(m.RowLabels) != 2 || m.RowLabels[0] != "r0" || m.RowLabels[1] != "r2" {
		t.Fatalf("row labels %v, want only the survivors' labels [r0 r2]", m.RowLabels)
	}
	if m.ColLabels[1] != "c1" {
		t.Fatalf("col labels %v, want [c0 c1]", m.ColLabels)
	}
}

func TestQuarantineInvalidFraction(t *testing.T) {
	for _, frac := range []float64{-0.1, 1.5} {
		_, _, err := ReadReport(strings.NewReader("1\n"), IOOptions{Quarantine: true, MinSurvivingFraction: frac})
		if err == nil || !strings.Contains(err.Error(), "MinSurvivingFraction") {
			t.Errorf("fraction %v: err = %v, want a validation error", frac, err)
		}
	}
}

func TestWriteTSVNoLabels(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 2}})
	var buf bytes.Buffer
	if err := Write(&buf, m, IOOptions{Comma: '\t'}); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "1\t2\n" {
		t.Errorf("output = %q, want %q", got, "1\t2\n")
	}
}
