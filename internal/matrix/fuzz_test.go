package matrix

import (
	"bytes"
	"math"
	"testing"
)

// FuzzParseMatrix hardens the delimited-matrix reader: arbitrary
// input bytes and option combinations must either load cleanly or
// fail with an error — never panic — and a successfully loaded
// matrix must uphold the package invariants (finite specified
// entries, label lengths matching the shape) and survive a write
// round trip.
func FuzzParseMatrix(f *testing.F) {
	seeds := []struct {
		data              string
		comma             byte
		missing           string
		header, rowLabels bool
	}{
		{"1,2,3\n4,5,6\n", ',', "", false, false},
		{"a,b,c\ng1,1,2\n", ',', "", true, true},
		{"1\t2\n3\t4\n", '\t', "NA", false, false},
		{"1,2\n3\n", ',', "", false, false},          // ragged
		{"NaN,2\nInf,-Inf\n", ',', "", false, false}, // non-finite tokens
		{"1e999,0\n", ',', "", false, false},         // overflow
		{"NA,?\n1,2\n", ',', "?", false, false},      // missing tokens
		{"\"1,2\n", ',', "", false, false},           // unterminated quote
		{",,,\n,,,\n", ',', "", false, false},        // all missing
		{"x,1\ny,2\n", ',', "", false, true},         // row labels
	}
	for _, s := range seeds {
		f.Add([]byte(s.data), s.comma, s.missing, s.header, s.rowLabels)
	}
	f.Fuzz(func(t *testing.T, data []byte, comma byte, missing string, header, rowLabels bool) {
		opts := IOOptions{
			Comma:        rune(comma),
			MissingToken: missing,
			Header:       header,
			RowLabels:    rowLabels,
		}
		m, err := Read(bytes.NewReader(data), opts)
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		if m.RowLabels != nil && len(m.RowLabels) != m.Rows() {
			t.Fatalf("RowLabels length %d != rows %d", len(m.RowLabels), m.Rows())
		}
		if m.ColLabels != nil && len(m.ColLabels) != m.Cols() {
			t.Fatalf("ColLabels length %d != cols %d", len(m.ColLabels), m.Cols())
		}
		for i := 0; i < m.Rows(); i++ {
			for j := 0; j < m.Cols(); j++ {
				if !m.IsSpecified(i, j) {
					continue
				}
				if v := m.Get(i, j); math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("entry (%d,%d) loaded non-finite value %v", i, j, v)
				}
			}
		}
		// A matrix that loaded must also write without error.
		var buf bytes.Buffer
		if err := Write(&buf, m, opts); err != nil {
			t.Fatalf("round-trip write of a loaded matrix failed: %v", err)
		}
	})
}
