package matrix

import (
	"bytes"
	"math"
	"testing"
)

// FuzzParseMatrix hardens the delimited-matrix reader: arbitrary
// input bytes and option combinations must either load cleanly or
// fail with an error — never panic — and a successfully loaded
// matrix must uphold the package invariants (finite specified
// entries, label lengths matching the shape) and survive a write
// round trip.
func FuzzParseMatrix(f *testing.F) {
	seeds := []struct {
		data              string
		comma             byte
		missing           string
		header, rowLabels bool
	}{
		{"1,2,3\n4,5,6\n", ',', "", false, false},
		{"a,b,c\ng1,1,2\n", ',', "", true, true},
		{"1\t2\n3\t4\n", '\t', "NA", false, false},
		{"1,2\n3\n", ',', "", false, false},          // ragged
		{"NaN,2\nInf,-Inf\n", ',', "", false, false}, // non-finite tokens
		{"1e999,0\n", ',', "", false, false},         // overflow
		{"NA,?\n1,2\n", ',', "?", false, false},      // missing tokens
		{"\"1,2\n", ',', "", false, false},           // unterminated quote
		{",,,\n,,,\n", ',', "", false, false},        // all missing
		{"x,1\ny,2\n", ',', "", false, true},         // row labels
	}
	for _, s := range seeds {
		f.Add([]byte(s.data), s.comma, s.missing, s.header, s.rowLabels)
	}
	f.Fuzz(func(t *testing.T, data []byte, comma byte, missing string, header, rowLabels bool) {
		opts := IOOptions{
			Comma:        rune(comma),
			MissingToken: missing,
			Header:       header,
			RowLabels:    rowLabels,
		}
		m, err := Read(bytes.NewReader(data), opts)
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		if m.RowLabels != nil && len(m.RowLabels) != m.Rows() {
			t.Fatalf("RowLabels length %d != rows %d", len(m.RowLabels), m.Rows())
		}
		if m.ColLabels != nil && len(m.ColLabels) != m.Cols() {
			t.Fatalf("ColLabels length %d != cols %d", len(m.ColLabels), m.Cols())
		}
		for i := 0; i < m.Rows(); i++ {
			for j := 0; j < m.Cols(); j++ {
				if !m.IsSpecified(i, j) {
					continue
				}
				if v := m.Get(i, j); math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("entry (%d,%d) loaded non-finite value %v", i, j, v)
				}
			}
		}
		// A matrix that loaded must also write without error.
		var buf bytes.Buffer
		if err := Write(&buf, m, opts); err != nil {
			t.Fatalf("round-trip write of a loaded matrix failed: %v", err)
		}
	})
}

// FuzzMutationCoherence extends the derived-cache coherence property
// test (TestDerivedCoherenceUnderAllMutationPaths) into a fuzz
// target: the input bytes are a little program — two shape bytes,
// then one mutation op per byte pair — interpreted over every public
// mutation path with the derived cache live the whole time. After
// every op, each derived view must match a from-scratch build over
// the same entries. The checked-in seed corpus
// (testdata/fuzz/FuzzMutationCoherence) covers every opcode,
// including the wholesale-invalidation and batch paths.
func FuzzMutationCoherence(f *testing.F) {
	f.Add([]byte{5, 4, 0, 10, 1, 3, 2, 0, 3, 9})            // set/miss/mutrow/shift
	f.Add([]byte{3, 6, 6, 2, 7, 8, 8, 1, 4, 5})             // append/update/mark
	f.Add([]byte{7, 3, 5, 200, 0, 255, 6, 1, 0, 7, 2, 2})   // scale, NaN value, append
	f.Add([]byte{4, 4})                                     // shape only, no ops
	f.Add([]byte{6, 5, 6, 3, 6, 3, 6, 3, 1, 0, 8, 9, 0, 0}) // repeated growth
	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) < 2 {
			return
		}
		rows := 3 + int(program[0])%8
		cols := 3 + int(program[1])%6
		program = program[2:]
		// Deterministic value stream derived from the op bytes: a byte
		// of 255 yields NaN so missing values flow through every path.
		val := func(b byte) float64 {
			if b == 255 {
				return math.NaN()
			}
			return float64(int(b)-128) / 7
		}
		m := New(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, val(byte(i*31+j*7)))
			}
		}
		// The cache must be live before mutating so every op below
		// exercises incremental maintenance, not the lazy first-read
		// build.
		m.EnsureDerived()

		const maxOps = 64
		for step := 0; step+1 < len(program) && step/2 < maxOps; step += 2 {
			op, arg := program[step], program[step+1]
			i := int(arg) % m.Rows()
			j := int(arg) % m.Cols()
			switch op % 9 {
			case 0:
				m.Set(i, j, val(arg))
			case 1:
				m.SetMissing(i, j)
			case 2:
				row := m.MutRow(i)
				for k := range row {
					row[k] = val(arg + byte(k))
				}
			case 3:
				m.ShiftRow(i, val(arg))
			case 4:
				m.ShiftCol(j, val(arg))
			case 5:
				m.ScaleRow(i, 1+float64(arg)/256)
			case 6:
				if m.Rows() >= 64 {
					continue // bound growth; the op stream can repeat appends
				}
				n := 1 + int(arg)%3
				newRows := make([][]float64, n)
				for r := range newRows {
					nr := make([]float64, m.Cols())
					for k := range nr {
						nr[k] = val(arg + byte(r*5+k))
					}
					newRows[r] = nr
				}
				if err := m.AppendRows(newRows); err != nil {
					t.Fatalf("AppendRows: %v", err)
				}
			case 7:
				cells := []Cell{
					{Row: i, Col: j, Value: val(arg)},
					{Row: (i + 1) % m.Rows(), Col: (j + 1) % m.Cols(), Value: val(arg + 1)},
				}
				if err := m.UpdateCells(cells); err != nil {
					t.Fatalf("UpdateCells: %v", err)
				}
			case 8:
				refs := []CellRef{{Row: i, Col: j}}
				if err := m.MarkMissing(refs); err != nil {
					t.Fatalf("MarkMissing: %v", err)
				}
			}
			checkDerivedCoherent(t, m, step/2)
			if t.Failed() {
				t.Fatalf("derived cache incoherent after op %d (opcode %d)", step/2, op%9)
			}
		}
	})
}
