package service

import (
	"sync/atomic"
	"time"
)

// latencyBucketsMillis are the upper bounds (inclusive, milliseconds)
// of the run-latency histogram; the final implicit bucket is +Inf.
var latencyBucketsMillis = []int64{1, 5, 25, 100, 500, 2500, 10000}

// metrics is the service's expvar-style instrument panel: monotonic
// counters, a running-jobs gauge, and a fixed-bucket latency
// histogram, all lock-free.
type metrics struct {
	submitted uint64 // jobs accepted into the queue
	rejected  uint64 // submissions bounced with 429 (queue full)
	done      uint64
	failed    uint64
	cancelled uint64
	running   int64 // gauge

	// deltastream counters: committed matrix PATCHes, accepted
	// warm-start recluster children, and requests refused with 409
	// lineage_busy (the race guard firing).
	patched          uint64
	reclustered      uint64
	lineageConflicts uint64

	latencyCounts [8]uint64 // len(latencyBucketsMillis) + 1 (+Inf)
	latencySumNs  int64
}

func (m *metrics) jobSubmitted() { atomic.AddUint64(&m.submitted, 1) }
func (m *metrics) jobRejected()  { atomic.AddUint64(&m.rejected, 1) }
func (m *metrics) jobStarted()   { atomic.AddInt64(&m.running, 1) }

func (m *metrics) matrixPatched()     { atomic.AddUint64(&m.patched, 1) }
func (m *metrics) reclusterAccepted() { atomic.AddUint64(&m.reclustered, 1) }
func (m *metrics) lineageConflict()   { atomic.AddUint64(&m.lineageConflicts, 1) }

// jobCancelledQueued counts a job cancelled straight out of the queue
// — it never ran, so the running gauge and latency histogram are
// untouched.
func (m *metrics) jobCancelledQueued() { atomic.AddUint64(&m.cancelled, 1) }

// jobFinished records the terminal state and the run latency
// (started→finished wall clock).
func (m *metrics) jobFinished(state JobState, latency time.Duration) {
	atomic.AddInt64(&m.running, -1)
	switch state {
	case StateDone:
		atomic.AddUint64(&m.done, 1)
	case StateFailed:
		atomic.AddUint64(&m.failed, 1)
	case StateCancelled:
		atomic.AddUint64(&m.cancelled, 1)
	}
	ms := latency.Milliseconds()
	i := 0
	for i < len(latencyBucketsMillis) && ms > latencyBucketsMillis[i] {
		i++
	}
	atomic.AddUint64(&m.latencyCounts[i], 1)
	atomic.AddInt64(&m.latencySumNs, int64(latency))
}

// MetricsView is the JSON body of GET /metrics.
type MetricsView struct {
	Jobs    JobMetrics   `json:"jobs"`
	Queue   QueueMetrics `json:"queue"`
	Latency LatencyView  `json:"run_latency"`
}

// JobMetrics mixes cumulative counters (submitted, rejected, done,
// failed, cancelled) with point-in-time gauges over the stored jobs
// (queued, running, stored).
type JobMetrics struct {
	Submitted         uint64 `json:"submitted"`
	RejectedQueueFull uint64 `json:"rejected_queue_full"`
	Done              uint64 `json:"done"`
	Failed            uint64 `json:"failed"`
	Cancelled         uint64 `json:"cancelled"`
	Queued            int    `json:"queued"`
	Running           int64  `json:"running"`
	Stored            int    `json:"stored"`

	MatrixPatches    uint64 `json:"matrix_patches"`
	Reclustered      uint64 `json:"reclustered"`
	LineageConflicts uint64 `json:"lineage_conflicts"`
}

// QueueMetrics reports backpressure state.
type QueueMetrics struct {
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
}

// LatencyView is the run-latency histogram: Counts[i] jobs finished
// within BucketsMillis[i] ms (the last count is the +Inf overflow).
type LatencyView struct {
	BucketsMillis []int64  `json:"buckets_ms"`
	Counts        []uint64 `json:"counts"`
	Count         uint64   `json:"count"`
	SumMillis     float64  `json:"sum_ms"`
}

// snapshot assembles the metrics view; gauges are read from the store
// and queue at call time.
func (m *metrics) snapshot(byState map[JobState]int, stored, depth, capacity int) MetricsView {
	v := MetricsView{
		Jobs: JobMetrics{
			Submitted:         atomic.LoadUint64(&m.submitted),
			RejectedQueueFull: atomic.LoadUint64(&m.rejected),
			Done:              atomic.LoadUint64(&m.done),
			Failed:            atomic.LoadUint64(&m.failed),
			Cancelled:         atomic.LoadUint64(&m.cancelled),
			Queued:            byState[StateQueued],
			Running:           atomic.LoadInt64(&m.running),
			Stored:            stored,
			MatrixPatches:     atomic.LoadUint64(&m.patched),
			Reclustered:       atomic.LoadUint64(&m.reclustered),
			LineageConflicts:  atomic.LoadUint64(&m.lineageConflicts),
		},
		Queue: QueueMetrics{Depth: depth, Capacity: capacity},
	}
	counts := make([]uint64, len(m.latencyCounts))
	var total uint64
	for i := range m.latencyCounts {
		counts[i] = atomic.LoadUint64(&m.latencyCounts[i])
		total += counts[i]
	}
	v.Latency = LatencyView{
		BucketsMillis: append([]int64(nil), latencyBucketsMillis...),
		Counts:        counts,
		Count:         total,
		SumMillis:     float64(atomic.LoadInt64(&m.latencySumNs)) / 1e6,
	}
	return v
}
