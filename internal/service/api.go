package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"deltacluster/internal/bicluster"
	"deltacluster/internal/clique"
	"deltacluster/internal/floc"
	"deltacluster/internal/matrix"
)

// Algorithm names accepted by SubmitRequest.
const (
	AlgoFLOC      = "floc"
	AlgoBicluster = "bicluster"
	AlgoClique    = "clique"
)

// SubmitRequest is the body of POST /v1/jobs: one matrix, one
// algorithm, and that algorithm's parameters. Unknown fields are
// rejected, so typos surface as 400s instead of silently running a
// default configuration.
type SubmitRequest struct {
	// Algorithm selects the engine: "floc" (default), "bicluster"
	// (Cheng & Church) or "clique".
	Algorithm string `json:"algorithm,omitempty"`

	// Matrix is the data, inline. Exactly one of its encodings must be
	// set.
	Matrix MatrixPayload `json:"matrix"`

	// FLOC, Bicluster and Clique hold the per-algorithm parameters;
	// only the block matching Algorithm is consulted.
	FLOC      *FLOCParams      `json:"floc,omitempty"`
	Bicluster *BiclusterParams `json:"bicluster,omitempty"`
	Clique    *CliqueParams    `json:"clique,omitempty"`

	// DeadlineMillis, when positive, bounds the job's wall-clock run
	// time. An expired deadline stops the engine within one iteration;
	// FLOC jobs then report their best-so-far clustering as a partial
	// result. 0 falls back to the server's default deadline.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// MatrixPayload carries the input matrix either as dense JSON rows
// (null marks a missing entry) or as delimited text. Large matrices
// are better submitted through the binary transport (see
// Content-Type application/x-deltacluster-matrix in server.go), which
// skips JSON float parsing entirely.
type MatrixPayload struct {
	// Rows is the dense encoding: one array per object, one number per
	// attribute, null for missing values. It is held raw and decoded
	// row-by-row straight into the matrix builder — no [][]*float64
	// materialization. Use RowsJSON to construct it client-side.
	Rows json.RawMessage `json:"rows,omitempty"`

	// CSV is the text encoding, parsed exactly like cmd/floc input
	// (comma-separated, empty cells missing).
	CSV string `json:"csv,omitempty"`
}

// RowsJSON renders dense rows as the "rows" payload encoding, with
// NaN entries encoded as null — the client-side complement of the
// server's streaming rows decoder. Values must be finite or NaN.
func RowsJSON(rows [][]float64) json.RawMessage {
	var buf bytes.Buffer
	buf.WriteByte('[')
	for i, r := range rows {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteByte('[')
		for j, v := range r {
			if j > 0 {
				buf.WriteByte(',')
			}
			if math.IsNaN(v) {
				buf.WriteString("null")
			} else {
				b := buf.AvailableBuffer()
				buf.Write(strconv.AppendFloat(b, v, 'g', -1, 64))
			}
		}
		buf.WriteByte(']')
	}
	buf.WriteByte(']')
	return buf.Bytes()
}

// FLOCParams mirrors the floc.Config knobs the service exposes.
type FLOCParams struct {
	K               int     `json:"k"`
	Delta           float64 `json:"delta"`
	Seed            int64   `json:"seed,omitempty"`
	MaxIterations   int     `json:"max_iterations,omitempty"`
	Order           string  `json:"order,omitempty"`   // fixed | random | weighted
	Seeding         string  `json:"seeding,omitempty"` // random | anchored | auto
	Occupancy       float64 `json:"occupancy,omitempty"`
	ApproximateGain bool    `json:"approximate_gain,omitempty"`

	// GainMode selects the decide phase's scoring tier: "exact" (the
	// default — bit-identical to the baseline) or "incremental"
	// (ranks candidates from delta-maintained residue-mass aggregates
	// in O(row)/O(col); every applied action still runs the exact
	// kernel). The mode is excluded from checkpoint compatibility, so
	// a resumed job may switch tiers.
	GainMode string `json:"gain_mode,omitempty"` // exact | incremental

	// Workers shards each decide phase of the run across this many
	// goroutines; 0 means all cores. The worker count never affects
	// the result — runs are bit-identical at any value — so this is
	// purely a latency knob. The server clamps it to GOMAXPROCS
	// (extra workers cannot help and would only cost scheduling).
	Workers int `json:"workers,omitempty"`

	// Attempts is the number of supervised restart attempts (attempt i
	// runs with seed Seed+i; the best clustering wins). Defaults to 1.
	Attempts int `json:"attempts,omitempty"`
}

// BiclusterParams mirrors the bicluster.Config knobs.
type BiclusterParams struct {
	K     int     `json:"k"`
	Delta float64 `json:"delta"`
	Alpha float64 `json:"alpha,omitempty"`
	Seed  int64   `json:"seed,omitempty"`
}

// CliqueParams mirrors the clique.Config knobs.
type CliqueParams struct {
	Xi      int     `json:"xi"`
	Tau     float64 `json:"tau"`
	MaxDims int     `json:"max_dims,omitempty"`
}

// SubmitResponse is the body of a successful POST /v1/jobs.
type SubmitResponse struct {
	Job JobView `json:"job"`
}

// JobView is the JSON representation of a job's current state.
type JobView struct {
	ID        string        `json:"id"`
	State     JobState      `json:"state"`
	Algorithm string        `json:"algorithm"`
	Created   time.Time     `json:"created"`
	Started   *time.Time    `json:"started,omitempty"`
	Finished  *time.Time    `json:"finished,omitempty"`
	Progress  *ProgressView `json:"progress,omitempty"`
	Error     string        `json:"error,omitempty"`

	// CancelRequested reports that DELETE (or server drain) asked the
	// job to stop; a running job keeps state "running" until the
	// engine actually returns.
	CancelRequested bool `json:"cancel_requested,omitempty"`

	// ParentID names the job this one was reclustered from; empty for
	// a root submission.
	ParentID string `json:"parent_id,omitempty"`

	// MatrixVersion is the lineage mutation-log version the job's
	// matrix reflects (0 = the matrix as originally submitted).
	MatrixVersion int `json:"matrix_version,omitempty"`
}

// ProgressView is the live position of a running FLOC job.
type ProgressView struct {
	// Attempt is the 1-based supervised attempt currently running.
	Attempt int `json:"attempt"`
	// Iteration counts improving iterations completed in this attempt.
	Iteration int `json:"iteration"`
	// AvgResidue is the attempt's best average residue so far.
	AvgResidue float64 `json:"avg_residue"`
}

// ResultView is the body of GET /v1/jobs/{id}/result.
type ResultView struct {
	Algorithm string `json:"algorithm"`

	// Partial reports a degraded result: the job was stopped (deadline
	// or cancellation) and this is the best clustering found so far.
	Partial bool `json:"partial,omitempty"`

	AvgResidue     float64       `json:"avg_residue,omitempty"`
	Iterations     int           `json:"iterations,omitempty"`
	BestSeed       int64         `json:"best_seed,omitempty"`
	Attempts       int           `json:"attempts,omitempty"`
	DurationMillis int64         `json:"duration_ms"`
	Clusters       []ClusterView `json:"clusters,omitempty"`

	// WarmStart reports the run re-converged from a parent job's final
	// checkpoint instead of cold seeding; Iterations then counts only
	// the corrective iterations after the delta.
	WarmStart bool `json:"warm_start,omitempty"`

	// Subspaces is set for clique jobs instead of Clusters.
	Subspaces []SubspaceView `json:"subspaces,omitempty"`
}

// ClusterView is one δ-cluster or bicluster of a result.
type ClusterView struct {
	Rows    []int   `json:"rows"`
	Cols    []int   `json:"cols"`
	Volume  int     `json:"volume"`
	Residue float64 `json:"residue"`
}

// SubspaceView is one CLIQUE subspace cluster.
type SubspaceView struct {
	Dims   []int `json:"dims"`
	Points []int `json:"points"`
}

// ErrorBody is the JSON error envelope every non-2xx response uses.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is one machine-readable error.
type ErrorDetail struct {
	// Code is a stable identifier: invalid_request, not_found,
	// queue_full, draining, job_not_done, job_failed, job_cancelled.
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
}

// Error codes of the API's error model.
const (
	CodeInvalidRequest = "invalid_request"
	CodeNotFound       = "not_found"
	CodeQueueFull      = "queue_full"
	CodeDraining       = "draining"
	CodeJobNotDone     = "job_not_done"
	CodeJobFailed      = "job_failed"
	CodeJobCancelled   = "job_cancelled"
	CodeInternal       = "internal"
	CodeNoCheckpoint   = "no_checkpoint"
	CodeBadCheckpoint  = "bad_checkpoint"

	// CodeLineageBusy rejects a matrix PATCH or recluster that races a
	// queued or running job on the same lineage: the shared matrix is
	// (about to be) under an engine, so the request is refused with 409
	// instead of silently mutating state under the run.
	CodeLineageBusy = "lineage_busy"
)

// apiError carries an HTTP status and a machine-readable code through
// the request-validation path.
type apiError struct {
	status  int
	code    string
	message string
}

func (e *apiError) Error() string { return e.message }

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: CodeInvalidRequest,
		message: fmt.Sprintf(format, args...)}
}

// runSpec is a validated, immutable run plan: the parsed matrix and
// fully-resolved engine configuration. It never changes after
// buildSpec, so workers may read it without holding the store lock.
type runSpec struct {
	algorithm string
	m         *matrix.Matrix
	floc      floc.Config
	attempts  int
	bic       bicluster.Config
	clq       clique.Config
	deadline  time.Duration

	// resume, when non-nil, restarts a FLOC job from this checkpoint
	// boundary instead of seeding — the coordinator's zero-recompute
	// migration path. Resumed jobs always run exactly one attempt with
	// the checkpoint's seed.
	resume *floc.Checkpoint

	// warm, when non-nil, seeds a FLOC job from a parent run's final
	// checkpoint — the deltastream recluster path. Warm jobs run
	// exactly one attempt with the checkpoint's seed; when the matrix
	// has not changed since the checkpoint, the run is bit-identical to
	// the parent's cold run.
	warm *floc.WarmStart
}

// buildSpec validates a SubmitRequest against the server's limits and
// resolves it to a run plan. All failures are 400s with a message
// naming the offending field.
func (s *Server) buildSpec(req *SubmitRequest) (*runSpec, *apiError) {
	m, aerr := parseMatrix(&req.Matrix, s.opts.MaxMatrixEntries)
	if aerr != nil {
		return nil, aerr
	}
	return s.buildSpecWith(req, m)
}

// buildSpecWith is buildSpec with the matrix already decoded — the
// binary transport path, where the matrix arrives as a DCMX section
// instead of inside the JSON payload.
func (s *Server) buildSpecWith(req *SubmitRequest, m *matrix.Matrix) (*runSpec, *apiError) {
	spec := &runSpec{m: m, attempts: 1}

	spec.deadline = s.opts.DefaultDeadline
	if req.DeadlineMillis < 0 {
		return nil, badRequest("deadline_ms = %d, want ≥ 0", req.DeadlineMillis)
	}
	if req.DeadlineMillis > 0 {
		spec.deadline = time.Duration(req.DeadlineMillis) * time.Millisecond
	}
	if max := s.opts.MaxDeadline; max > 0 && (spec.deadline == 0 || spec.deadline > max) {
		spec.deadline = max
	}

	algo := req.Algorithm
	if algo == "" {
		algo = AlgoFLOC
	}
	spec.algorithm = algo
	switch algo {
	case AlgoFLOC:
		p := req.FLOC
		if p == nil {
			return nil, badRequest("algorithm %q needs a \"floc\" parameter block", algo)
		}
		if p.K < 1 {
			return nil, badRequest("floc.k = %d, want ≥ 1", p.K)
		}
		if !(p.Delta > 0) {
			return nil, badRequest("floc.delta = %v, want > 0", p.Delta)
		}
		cfg := floc.DefaultConfig(p.K, p.Delta)
		cfg.Seed = p.Seed
		cfg.ApproximateGain = p.ApproximateGain
		if p.Workers < 0 {
			return nil, badRequest("floc.workers = %d, want ≥ 0 (0 = all cores)", p.Workers)
		}
		cfg.Workers = p.Workers
		if max := runtime.GOMAXPROCS(0); cfg.Workers > max {
			// Transparent clamp: results are bit-identical at any
			// worker count, so capping only trims goroutine overhead.
			cfg.Workers = max
		}
		if p.MaxIterations < 0 {
			return nil, badRequest("floc.max_iterations = %d, want ≥ 0", p.MaxIterations)
		}
		if p.MaxIterations > 0 {
			cfg.MaxIterations = p.MaxIterations
		}
		if p.Occupancy < 0 || p.Occupancy > 1 {
			return nil, badRequest("floc.occupancy = %v, want in [0, 1]", p.Occupancy)
		}
		cfg.Constraints.Occupancy = p.Occupancy
		switch p.Order {
		case "", "weighted":
			cfg.Order = floc.WeightedRandomOrder
		case "random":
			cfg.Order = floc.RandomOrder
		case "fixed":
			cfg.Order = floc.FixedOrder
		default:
			return nil, badRequest("floc.order = %q, want fixed | random | weighted", p.Order)
		}
		switch p.Seeding {
		case "", "auto":
			cfg.SeedMode = floc.SeedAuto
		case "random":
			cfg.SeedMode = floc.SeedRandom
		case "anchored":
			cfg.SeedMode = floc.SeedAnchored
		default:
			return nil, badRequest("floc.seeding = %q, want random | anchored | auto", p.Seeding)
		}
		switch p.GainMode {
		case "", "exact":
			cfg.GainMode = floc.GainExact
		case "incremental":
			cfg.GainMode = floc.GainIncremental
		default:
			return nil, badRequest("floc.gain_mode = %q, want exact | incremental", p.GainMode)
		}
		if cfg.GainMode == floc.GainIncremental && p.ApproximateGain {
			return nil, badRequest("floc.gain_mode = %q and floc.approximate_gain are mutually exclusive", p.GainMode)
		}
		if p.Attempts < 0 {
			return nil, badRequest("floc.attempts = %d, want ≥ 0", p.Attempts)
		}
		if p.Attempts > 0 {
			spec.attempts = p.Attempts
		}
		spec.floc = cfg
	case AlgoBicluster:
		p := req.Bicluster
		if p == nil {
			return nil, badRequest("algorithm %q needs a \"bicluster\" parameter block", algo)
		}
		if p.K < 1 {
			return nil, badRequest("bicluster.k = %d, want ≥ 1", p.K)
		}
		if !(p.Delta >= 0) {
			return nil, badRequest("bicluster.delta = %v, want ≥ 0", p.Delta)
		}
		spec.bic = bicluster.Config{K: p.K, Delta: p.Delta, Alpha: p.Alpha, Seed: p.Seed}
	case AlgoClique:
		p := req.Clique
		if p == nil {
			return nil, badRequest("algorithm %q needs a \"clique\" parameter block", algo)
		}
		if p.Xi < 1 {
			return nil, badRequest("clique.xi = %d, want ≥ 1", p.Xi)
		}
		if !(p.Tau > 0 && p.Tau <= 1) {
			return nil, badRequest("clique.tau = %v, want in (0, 1]", p.Tau)
		}
		spec.clq = clique.Config{Xi: p.Xi, Tau: p.Tau, MaxDims: p.MaxDims}
	default:
		return nil, badRequest("algorithm = %q, want floc | bicluster | clique", algo)
	}
	return spec, nil
}

// parseMatrix decodes whichever matrix encoding the payload carries.
// Both encodings stream record-by-record into a matrix.Builder, so
// the peak footprint is one row plus the final matrix — never an
// intermediate [][]float64 — and MaxMatrixEntries is enforced as the
// matrix grows, before an oversized request pays its allocation.
func parseMatrix(p *MatrixPayload, maxEntries int) (*matrix.Matrix, *apiError) {
	hasRows := len(p.Rows) > 0 && !bytes.Equal(bytes.TrimSpace(p.Rows), []byte("null"))
	switch {
	case hasRows && p.CSV != "":
		return nil, badRequest("matrix: set exactly one of \"rows\" and \"csv\", not both")
	case hasRows:
		return parseRows(p.Rows, maxEntries)
	case p.CSV != "":
		b := matrix.NewBuilder(maxEntries)
		if err := matrix.ReadInto(b, strings.NewReader(p.CSV), matrix.IOOptions{}); err != nil {
			return nil, badRequest("matrix.csv: %v", err)
		}
		return b.Build(), nil
	default:
		return nil, badRequest("matrix: need \"rows\" or \"csv\"")
	}
}

// parseRows decodes the dense JSON encoding row-by-row. One []float64
// buffer is reused across rows: before each decode it is prefilled
// with NaN, and because encoding/json leaves a non-pointer element
// untouched when it decodes null, an explicit null lands as the NaN
// missing marker without boxing every cell through *float64. The
// first row can't use the trick (there is no prefilled backing array
// yet, and growth zero-fills), so it alone decodes through pointers.
func parseRows(raw json.RawMessage, maxEntries int) (*matrix.Matrix, *apiError) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	tok, err := dec.Token()
	if err != nil {
		return nil, badRequest("matrix.rows: %v", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return nil, badRequest("matrix.rows: want an array of rows")
	}
	b := matrix.NewBuilder(maxEntries)
	cols := -1
	var buf []float64
	for i := 0; dec.More(); i++ {
		if cols < 0 {
			var first []*float64
			if err := dec.Decode(&first); err != nil {
				return nil, badRequest("matrix.rows[%d]: %v", i, err)
			}
			cols = len(first)
			if cols == 0 {
				return nil, badRequest("matrix.rows[0] is empty; need at least one column")
			}
			buf = make([]float64, cols)
			for j, v := range first {
				if v == nil {
					buf[j] = math.NaN()
					continue
				}
				if math.IsInf(*v, 0) || math.IsNaN(*v) {
					return nil, badRequest("matrix.rows[%d][%d] is not finite", i, j)
				}
				buf[j] = *v
			}
		} else {
			buf = buf[:cols]
			nan := math.NaN()
			for j := range buf {
				buf[j] = nan
			}
			if err := dec.Decode(&buf); err != nil {
				return nil, badRequest("matrix.rows[%d]: %v", i, err)
			}
			if len(buf) != cols {
				return nil, badRequest("matrix.rows[%d] has %d entries, want %d", i, len(buf), cols)
			}
		}
		if err := b.AppendRow(buf); err != nil {
			return nil, badRequest("%v", err)
		}
	}
	if b.Rows() == 0 {
		return nil, badRequest("matrix: need \"rows\" or \"csv\"")
	}
	return b.Build(), nil
}

// codec is a pooled response encoder: one output buffer and a JSON
// encoder bound to it, reused across requests so the poll/result hot
// path allocates neither.
type codec struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var codecPool = sync.Pool{New: func() any {
	c := &codec{}
	c.enc = json.NewEncoder(&c.buf)
	c.enc.SetIndent("", "  ")
	return c
}}

// writeJSON renders v with the given status through a pooled codec,
// which also makes Content-Length exact. A value that fails to encode
// (only possible for non-finite floats, which the views never carry)
// degrades to a bare 500 — nothing partial ever reaches the wire.
//
// deltavet:hotpath — every response of the submit, poll, result and
// metrics paths funnels through here.
func writeJSON(w http.ResponseWriter, status int, v any) {
	c := codecPool.Get().(*codec)
	c.buf.Reset()
	if err := c.enc.Encode(v); err != nil {
		//deltavet:ignore hotalloc reason=pooled codec recycle; Put boxes an existing pointer, no heap growth
		codecPool.Put(c)
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(c.buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(c.buf.Bytes())
	//deltavet:ignore hotalloc reason=pooled codec recycle; Put boxes an existing pointer, no heap growth
	codecPool.Put(c)
}

// writeError renders the error envelope.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, ErrorBody{Error: ErrorDetail{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}
