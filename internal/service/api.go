package service

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strings"
	"time"

	"deltacluster/internal/bicluster"
	"deltacluster/internal/clique"
	"deltacluster/internal/floc"
	"deltacluster/internal/matrix"
)

// Algorithm names accepted by SubmitRequest.
const (
	AlgoFLOC      = "floc"
	AlgoBicluster = "bicluster"
	AlgoClique    = "clique"
)

// SubmitRequest is the body of POST /v1/jobs: one matrix, one
// algorithm, and that algorithm's parameters. Unknown fields are
// rejected, so typos surface as 400s instead of silently running a
// default configuration.
type SubmitRequest struct {
	// Algorithm selects the engine: "floc" (default), "bicluster"
	// (Cheng & Church) or "clique".
	Algorithm string `json:"algorithm,omitempty"`

	// Matrix is the data, inline. Exactly one of its encodings must be
	// set.
	Matrix MatrixPayload `json:"matrix"`

	// FLOC, Bicluster and Clique hold the per-algorithm parameters;
	// only the block matching Algorithm is consulted.
	FLOC      *FLOCParams      `json:"floc,omitempty"`
	Bicluster *BiclusterParams `json:"bicluster,omitempty"`
	Clique    *CliqueParams    `json:"clique,omitempty"`

	// DeadlineMillis, when positive, bounds the job's wall-clock run
	// time. An expired deadline stops the engine within one iteration;
	// FLOC jobs then report their best-so-far clustering as a partial
	// result. 0 falls back to the server's default deadline.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// MatrixPayload carries the input matrix either as dense JSON rows
// (null marks a missing entry) or as delimited text.
type MatrixPayload struct {
	// Rows is the dense encoding: one slice per object, one entry per
	// attribute, null for missing values.
	Rows [][]*float64 `json:"rows,omitempty"`

	// CSV is the text encoding, parsed exactly like cmd/floc input
	// (comma-separated, empty cells missing).
	CSV string `json:"csv,omitempty"`
}

// FLOCParams mirrors the floc.Config knobs the service exposes.
type FLOCParams struct {
	K               int     `json:"k"`
	Delta           float64 `json:"delta"`
	Seed            int64   `json:"seed,omitempty"`
	MaxIterations   int     `json:"max_iterations,omitempty"`
	Order           string  `json:"order,omitempty"`   // fixed | random | weighted
	Seeding         string  `json:"seeding,omitempty"` // random | anchored | auto
	Occupancy       float64 `json:"occupancy,omitempty"`
	ApproximateGain bool    `json:"approximate_gain,omitempty"`

	// GainMode selects the decide phase's scoring tier: "exact" (the
	// default — bit-identical to the baseline) or "incremental"
	// (ranks candidates from delta-maintained residue-mass aggregates
	// in O(row)/O(col); every applied action still runs the exact
	// kernel). The mode is excluded from checkpoint compatibility, so
	// a resumed job may switch tiers.
	GainMode string `json:"gain_mode,omitempty"` // exact | incremental

	// Workers shards each decide phase of the run across this many
	// goroutines; 0 means all cores. The worker count never affects
	// the result — runs are bit-identical at any value — so this is
	// purely a latency knob. The server clamps it to GOMAXPROCS
	// (extra workers cannot help and would only cost scheduling).
	Workers int `json:"workers,omitempty"`

	// Attempts is the number of supervised restart attempts (attempt i
	// runs with seed Seed+i; the best clustering wins). Defaults to 1.
	Attempts int `json:"attempts,omitempty"`
}

// BiclusterParams mirrors the bicluster.Config knobs.
type BiclusterParams struct {
	K     int     `json:"k"`
	Delta float64 `json:"delta"`
	Alpha float64 `json:"alpha,omitempty"`
	Seed  int64   `json:"seed,omitempty"`
}

// CliqueParams mirrors the clique.Config knobs.
type CliqueParams struct {
	Xi      int     `json:"xi"`
	Tau     float64 `json:"tau"`
	MaxDims int     `json:"max_dims,omitempty"`
}

// SubmitResponse is the body of a successful POST /v1/jobs.
type SubmitResponse struct {
	Job JobView `json:"job"`
}

// JobView is the JSON representation of a job's current state.
type JobView struct {
	ID        string        `json:"id"`
	State     JobState      `json:"state"`
	Algorithm string        `json:"algorithm"`
	Created   time.Time     `json:"created"`
	Started   *time.Time    `json:"started,omitempty"`
	Finished  *time.Time    `json:"finished,omitempty"`
	Progress  *ProgressView `json:"progress,omitempty"`
	Error     string        `json:"error,omitempty"`

	// CancelRequested reports that DELETE (or server drain) asked the
	// job to stop; a running job keeps state "running" until the
	// engine actually returns.
	CancelRequested bool `json:"cancel_requested,omitempty"`

	// ParentID names the job this one was reclustered from; empty for
	// a root submission.
	ParentID string `json:"parent_id,omitempty"`

	// MatrixVersion is the lineage mutation-log version the job's
	// matrix reflects (0 = the matrix as originally submitted).
	MatrixVersion int `json:"matrix_version,omitempty"`
}

// ProgressView is the live position of a running FLOC job.
type ProgressView struct {
	// Attempt is the 1-based supervised attempt currently running.
	Attempt int `json:"attempt"`
	// Iteration counts improving iterations completed in this attempt.
	Iteration int `json:"iteration"`
	// AvgResidue is the attempt's best average residue so far.
	AvgResidue float64 `json:"avg_residue"`
}

// ResultView is the body of GET /v1/jobs/{id}/result.
type ResultView struct {
	Algorithm string `json:"algorithm"`

	// Partial reports a degraded result: the job was stopped (deadline
	// or cancellation) and this is the best clustering found so far.
	Partial bool `json:"partial,omitempty"`

	AvgResidue     float64       `json:"avg_residue,omitempty"`
	Iterations     int           `json:"iterations,omitempty"`
	BestSeed       int64         `json:"best_seed,omitempty"`
	Attempts       int           `json:"attempts,omitempty"`
	DurationMillis int64         `json:"duration_ms"`
	Clusters       []ClusterView `json:"clusters,omitempty"`

	// WarmStart reports the run re-converged from a parent job's final
	// checkpoint instead of cold seeding; Iterations then counts only
	// the corrective iterations after the delta.
	WarmStart bool `json:"warm_start,omitempty"`

	// Subspaces is set for clique jobs instead of Clusters.
	Subspaces []SubspaceView `json:"subspaces,omitempty"`
}

// ClusterView is one δ-cluster or bicluster of a result.
type ClusterView struct {
	Rows    []int   `json:"rows"`
	Cols    []int   `json:"cols"`
	Volume  int     `json:"volume"`
	Residue float64 `json:"residue"`
}

// SubspaceView is one CLIQUE subspace cluster.
type SubspaceView struct {
	Dims   []int `json:"dims"`
	Points []int `json:"points"`
}

// ErrorBody is the JSON error envelope every non-2xx response uses.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is one machine-readable error.
type ErrorDetail struct {
	// Code is a stable identifier: invalid_request, not_found,
	// queue_full, draining, job_not_done, job_failed, job_cancelled.
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
}

// Error codes of the API's error model.
const (
	CodeInvalidRequest = "invalid_request"
	CodeNotFound       = "not_found"
	CodeQueueFull      = "queue_full"
	CodeDraining       = "draining"
	CodeJobNotDone     = "job_not_done"
	CodeJobFailed      = "job_failed"
	CodeJobCancelled   = "job_cancelled"
	CodeInternal       = "internal"
	CodeNoCheckpoint   = "no_checkpoint"
	CodeBadCheckpoint  = "bad_checkpoint"

	// CodeLineageBusy rejects a matrix PATCH or recluster that races a
	// queued or running job on the same lineage: the shared matrix is
	// (about to be) under an engine, so the request is refused with 409
	// instead of silently mutating state under the run.
	CodeLineageBusy = "lineage_busy"
)

// apiError carries an HTTP status and a machine-readable code through
// the request-validation path.
type apiError struct {
	status  int
	code    string
	message string
}

func (e *apiError) Error() string { return e.message }

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: CodeInvalidRequest,
		message: fmt.Sprintf(format, args...)}
}

// runSpec is a validated, immutable run plan: the parsed matrix and
// fully-resolved engine configuration. It never changes after
// buildSpec, so workers may read it without holding the store lock.
type runSpec struct {
	algorithm string
	m         *matrix.Matrix
	floc      floc.Config
	attempts  int
	bic       bicluster.Config
	clq       clique.Config
	deadline  time.Duration

	// resume, when non-nil, restarts a FLOC job from this checkpoint
	// boundary instead of seeding — the coordinator's zero-recompute
	// migration path. Resumed jobs always run exactly one attempt with
	// the checkpoint's seed.
	resume *floc.Checkpoint

	// warm, when non-nil, seeds a FLOC job from a parent run's final
	// checkpoint — the deltastream recluster path. Warm jobs run
	// exactly one attempt with the checkpoint's seed; when the matrix
	// has not changed since the checkpoint, the run is bit-identical to
	// the parent's cold run.
	warm *floc.WarmStart
}

// buildSpec validates a SubmitRequest against the server's limits and
// resolves it to a run plan. All failures are 400s with a message
// naming the offending field.
func (s *Server) buildSpec(req *SubmitRequest) (*runSpec, *apiError) {
	m, aerr := parseMatrix(&req.Matrix, s.opts.MaxMatrixEntries)
	if aerr != nil {
		return nil, aerr
	}

	spec := &runSpec{m: m, attempts: 1}

	spec.deadline = s.opts.DefaultDeadline
	if req.DeadlineMillis < 0 {
		return nil, badRequest("deadline_ms = %d, want ≥ 0", req.DeadlineMillis)
	}
	if req.DeadlineMillis > 0 {
		spec.deadline = time.Duration(req.DeadlineMillis) * time.Millisecond
	}
	if max := s.opts.MaxDeadline; max > 0 && (spec.deadline == 0 || spec.deadline > max) {
		spec.deadline = max
	}

	algo := req.Algorithm
	if algo == "" {
		algo = AlgoFLOC
	}
	spec.algorithm = algo
	switch algo {
	case AlgoFLOC:
		p := req.FLOC
		if p == nil {
			return nil, badRequest("algorithm %q needs a \"floc\" parameter block", algo)
		}
		if p.K < 1 {
			return nil, badRequest("floc.k = %d, want ≥ 1", p.K)
		}
		if !(p.Delta > 0) {
			return nil, badRequest("floc.delta = %v, want > 0", p.Delta)
		}
		cfg := floc.DefaultConfig(p.K, p.Delta)
		cfg.Seed = p.Seed
		cfg.ApproximateGain = p.ApproximateGain
		if p.Workers < 0 {
			return nil, badRequest("floc.workers = %d, want ≥ 0 (0 = all cores)", p.Workers)
		}
		cfg.Workers = p.Workers
		if max := runtime.GOMAXPROCS(0); cfg.Workers > max {
			// Transparent clamp: results are bit-identical at any
			// worker count, so capping only trims goroutine overhead.
			cfg.Workers = max
		}
		if p.MaxIterations < 0 {
			return nil, badRequest("floc.max_iterations = %d, want ≥ 0", p.MaxIterations)
		}
		if p.MaxIterations > 0 {
			cfg.MaxIterations = p.MaxIterations
		}
		if p.Occupancy < 0 || p.Occupancy > 1 {
			return nil, badRequest("floc.occupancy = %v, want in [0, 1]", p.Occupancy)
		}
		cfg.Constraints.Occupancy = p.Occupancy
		switch p.Order {
		case "", "weighted":
			cfg.Order = floc.WeightedRandomOrder
		case "random":
			cfg.Order = floc.RandomOrder
		case "fixed":
			cfg.Order = floc.FixedOrder
		default:
			return nil, badRequest("floc.order = %q, want fixed | random | weighted", p.Order)
		}
		switch p.Seeding {
		case "", "auto":
			cfg.SeedMode = floc.SeedAuto
		case "random":
			cfg.SeedMode = floc.SeedRandom
		case "anchored":
			cfg.SeedMode = floc.SeedAnchored
		default:
			return nil, badRequest("floc.seeding = %q, want random | anchored | auto", p.Seeding)
		}
		switch p.GainMode {
		case "", "exact":
			cfg.GainMode = floc.GainExact
		case "incremental":
			cfg.GainMode = floc.GainIncremental
		default:
			return nil, badRequest("floc.gain_mode = %q, want exact | incremental", p.GainMode)
		}
		if cfg.GainMode == floc.GainIncremental && p.ApproximateGain {
			return nil, badRequest("floc.gain_mode = %q and floc.approximate_gain are mutually exclusive", p.GainMode)
		}
		if p.Attempts < 0 {
			return nil, badRequest("floc.attempts = %d, want ≥ 0", p.Attempts)
		}
		if p.Attempts > 0 {
			spec.attempts = p.Attempts
		}
		spec.floc = cfg
	case AlgoBicluster:
		p := req.Bicluster
		if p == nil {
			return nil, badRequest("algorithm %q needs a \"bicluster\" parameter block", algo)
		}
		if p.K < 1 {
			return nil, badRequest("bicluster.k = %d, want ≥ 1", p.K)
		}
		if !(p.Delta >= 0) {
			return nil, badRequest("bicluster.delta = %v, want ≥ 0", p.Delta)
		}
		spec.bic = bicluster.Config{K: p.K, Delta: p.Delta, Alpha: p.Alpha, Seed: p.Seed}
	case AlgoClique:
		p := req.Clique
		if p == nil {
			return nil, badRequest("algorithm %q needs a \"clique\" parameter block", algo)
		}
		if p.Xi < 1 {
			return nil, badRequest("clique.xi = %d, want ≥ 1", p.Xi)
		}
		if !(p.Tau > 0 && p.Tau <= 1) {
			return nil, badRequest("clique.tau = %v, want in (0, 1]", p.Tau)
		}
		spec.clq = clique.Config{Xi: p.Xi, Tau: p.Tau, MaxDims: p.MaxDims}
	default:
		return nil, badRequest("algorithm = %q, want floc | bicluster | clique", algo)
	}
	return spec, nil
}

// parseMatrix decodes whichever matrix encoding the payload carries.
func parseMatrix(p *MatrixPayload, maxEntries int) (*matrix.Matrix, *apiError) {
	switch {
	case len(p.Rows) > 0 && p.CSV != "":
		return nil, badRequest("matrix: set exactly one of \"rows\" and \"csv\", not both")
	case len(p.Rows) > 0:
		cols := len(p.Rows[0])
		if cols == 0 {
			return nil, badRequest("matrix.rows[0] is empty; need at least one column")
		}
		if maxEntries > 0 && len(p.Rows)*cols > maxEntries {
			return nil, badRequest("matrix is %dx%d = %d entries; the server caps jobs at %d",
				len(p.Rows), cols, len(p.Rows)*cols, maxEntries)
		}
		rows := make([][]float64, len(p.Rows))
		for i, r := range p.Rows {
			if len(r) != cols {
				return nil, badRequest("matrix.rows[%d] has %d entries, want %d", i, len(r), cols)
			}
			row := make([]float64, cols)
			for j, v := range r {
				if v == nil {
					row[j] = math.NaN()
					continue
				}
				if math.IsInf(*v, 0) || math.IsNaN(*v) {
					return nil, badRequest("matrix.rows[%d][%d] is not finite", i, j)
				}
				row[j] = *v
			}
			rows[i] = row
		}
		m, err := matrix.NewFromRows(rows)
		if err != nil {
			return nil, badRequest("matrix: %v", err)
		}
		return m, nil
	case p.CSV != "":
		m, err := matrix.Read(strings.NewReader(p.CSV), matrix.IOOptions{})
		if err != nil {
			return nil, badRequest("matrix.csv: %v", err)
		}
		if maxEntries > 0 && m.Rows()*m.Cols() > maxEntries {
			return nil, badRequest("matrix is %dx%d = %d entries; the server caps jobs at %d",
				m.Rows(), m.Cols(), m.Rows()*m.Cols(), maxEntries)
		}
		return m, nil
	default:
		return nil, badRequest("matrix: need \"rows\" or \"csv\"")
	}
}

// writeJSON renders v with the given status. Encoding errors are
// unrecoverable mid-response and are ignored by design.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError renders the error envelope.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, ErrorBody{Error: ErrorDetail{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}
