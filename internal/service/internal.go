// This file is the coordinator-facing surface of a deltaserve
// backend. Everything under /v1/internal is spoken between nodes, not
// by clients — dispatch with a pre-minted job ID (and optionally a
// resume checkpoint), checkpoint download for replication, and the
// peer-replica table failover reads from when an owner is gone.

package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"

	"deltacluster/internal/floc"
	"deltacluster/internal/matrix"
	"deltacluster/internal/stream"
)

// DispatchRequest is the body of POST /v1/internal/jobs: a validated
// submission to run under a caller-chosen ID, optionally resuming a
// FLOC run from a replicated checkpoint instead of seeding fresh.
type DispatchRequest struct {
	// ID is the job ID to register. The coordinator mints it, hashes it
	// onto the ring, and rewrites it across migrations, so the backend
	// only checks it is present and sane.
	ID string `json:"id"`

	// ResumeCheckpoint, when set, is the DCKP encoding (base64 in
	// JSON) of the boundary to resume from. Only valid for FLOC
	// submissions; the job then runs exactly one attempt whose seed is
	// the checkpoint's, which is what makes the resumed trajectory
	// bit-identical to the interrupted one.
	ResumeCheckpoint []byte `json:"resume_dckp,omitempty"`

	// Patches are deltastream mutation batches replayed, in order, onto
	// the submitted matrix before the job runs — the coordinator's
	// lineage-reconstruction path: original submission + recorded
	// patches rebuilds the patched matrix bit for bit on any backend.
	// The backend seeds the job's lineage mutation log with them.
	Patches []MatrixPatchRequest `json:"patches,omitempty"`

	// WarmStartCheckpoint, when set, is the DCKP encoding of a parent
	// run's boundary to warm-start from — the recluster failover path.
	// The checkpoint must have been cut on the matrix as submitted
	// (before Patches); the run then re-anchors its clustering on the
	// patched matrix and pays only corrective iterations. Mutually
	// exclusive with ResumeCheckpoint; FLOC only; single attempt under
	// the checkpoint's seed.
	WarmStartCheckpoint []byte `json:"warm_dckp,omitempty"`

	// Submit is the original client submission, verbatim.
	Submit SubmitRequest `json:"submit"`
}

// DispatchResponse is the body of a successful dispatch.
type DispatchResponse struct {
	Job JobView `json:"job"`

	// ResumedFromIteration reports the checkpoint boundary the job was
	// resumed at (0 for a fresh start) — the coordinator's
	// zero-recompute audit trail.
	ResumedFromIteration int `json:"resumed_from_iteration,omitempty"`

	// WarmFromIteration reports the parent boundary a warm-started
	// dispatch re-anchored (0 for a cold start).
	WarmFromIteration int `json:"warm_from_iteration,omitempty"`

	// MatrixVersion is the job's lineage mutation-log version after
	// replaying the dispatched patches.
	MatrixVersion int `json:"matrix_version,omitempty"`
}

// handleDispatch is POST /v1/internal/jobs: coordinator-driven
// submission. It is idempotent over the ID — redelivering a dispatch
// (a retry after a lost response) observes the existing job instead of
// double-running it.
func (s *Server) handleDispatch(w http.ResponseWriter, r *http.Request) {
	if isBinaryContentType(r.Header.Get("Content-Type")) {
		s.handleDispatchBinary(w, r)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req DispatchRequest
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeInvalidRequest,
				"request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "decoding dispatch: %v", err)
		return
	}
	s.dispatchCore(w, &req, nil)
}

// dispatchCore runs a decoded dispatch. m, when non-nil, is the
// already-decoded matrix of a binary dispatch (the DCMX section);
// nil means the matrix rides inside req.Submit.Matrix as usual.
func (s *Server) dispatchCore(w http.ResponseWriter, req *DispatchRequest, m *matrix.Matrix) {
	if req.ID == "" || len(req.ID) > 128 {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest,
			"dispatch id must be 1–128 bytes, got %d", len(req.ID))
		return
	}
	var spec *runSpec
	var aerr *apiError
	if m != nil {
		spec, aerr = s.buildSpecWith(&req.Submit, m)
	} else {
		spec, aerr = s.buildSpec(&req.Submit)
	}
	if aerr != nil {
		writeError(w, aerr.status, aerr.code, "%s", aerr.message)
		return
	}
	if len(req.ResumeCheckpoint) > 0 && len(req.WarmStartCheckpoint) > 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest,
			"resume_dckp and warm_dckp are mutually exclusive")
		return
	}
	resumedFrom := 0
	if len(req.ResumeCheckpoint) > 0 {
		if spec.algorithm != AlgoFLOC {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest,
				"resume_dckp is only valid for floc jobs, not %q", spec.algorithm)
			return
		}
		ck, err := floc.DecodeCheckpoint(req.ResumeCheckpoint)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadCheckpoint, "resume_dckp: %v", err)
			return
		}
		// The resumed run is the interrupted attempt, continued: one
		// attempt, seeded exactly as the checkpoint records. The
		// supervisor's multi-attempt ladder cannot be rejoined mid-
		// campaign, so the dispatcher only attaches checkpoints to
		// single-attempt jobs.
		spec.resume = ck
		spec.attempts = 1
		spec.floc.Seed = ck.Seed
		resumedFrom = ck.Iterations
	}

	// Replay recorded lineage patches onto the freshly parsed matrix —
	// deterministic, so the reconstructed matrix is bit-identical to
	// the one the original backend held. ParentRows for a warm start is
	// the pre-patch row count: the checkpoint was cut on the matrix as
	// submitted.
	var lineageLog *stream.Log
	parentRows := spec.m.Rows()
	if len(req.Patches) > 0 {
		if spec.algorithm != AlgoFLOC {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest,
				"patches are only valid for floc jobs, not %q", spec.algorithm)
			return
		}
		lineageLog = stream.NewLog(spec.m.Rows(), spec.m.Cols())
		for i := range req.Patches {
			if _, err := lineageLog.Apply(spec.m, req.Patches[i].mutation()); err != nil {
				writeError(w, http.StatusBadRequest, CodeInvalidRequest,
					"replaying patch %d: %v", i+1, err)
				return
			}
		}
	}
	warmFrom := 0
	if len(req.WarmStartCheckpoint) > 0 {
		if spec.algorithm != AlgoFLOC {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest,
				"warm_dckp is only valid for floc jobs, not %q", spec.algorithm)
			return
		}
		ck, err := floc.DecodeCheckpoint(req.WarmStartCheckpoint)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadCheckpoint, "warm_dckp: %v", err)
			return
		}
		spec.warm = &floc.WarmStart{Checkpoint: ck, ParentRows: parentRows}
		spec.attempts = 1
		spec.floc.Seed = ck.Seed
		warmFrom = ck.Iterations
	}

	s.store.sweep()
	if !s.store.createWithID(req.ID, spec) {
		// Idempotent redelivery: the job already exists; report it.
		view, ok := s.store.view(req.ID)
		if !ok {
			writeError(w, http.StatusConflict, CodeInvalidRequest,
				"job %q existed but was evicted mid-dispatch; retry", req.ID)
			return
		}
		writeJSON(w, http.StatusOK, DispatchResponse{Job: view})
		return
	}
	if lineageLog != nil {
		s.store.adoptLineageLog(req.ID, lineageLog)
	}
	if !s.enqueue(w, req.ID) {
		return
	}
	view, _ := s.store.view(req.ID)
	w.Header().Set("Location", "/v1/jobs/"+req.ID)
	resp := DispatchResponse{Job: view, ResumedFromIteration: resumedFrom, WarmFromIteration: warmFrom}
	if lineageLog != nil {
		resp.MatrixVersion = lineageLog.Version()
	}
	writeJSON(w, http.StatusAccepted, resp)
}

// checkpointIterationsHeader carries the boundary iteration count of a
// checkpoint response, so pollers can track freshness without decoding
// the body.
const checkpointIterationsHeader = "X-Deltaserve-Checkpoint-Iterations"

// handleJobCheckpoint serves the job's latest resumable checkpoint as
// DCKP bytes. The ETag is the boundary iteration count; a conditional
// GET with a matching If-None-Match returns 304 so the coordinator's
// replication loop costs one cheap round-trip per poll when nothing
// advanced.
func (s *Server) handleJobCheckpoint(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ck := s.store.latestCheckpoint(id)
	if ck == nil {
		writeError(w, http.StatusNotFound, CodeNoCheckpoint,
			"job %q has no resumable checkpoint (unknown job, non-floc, or no boundary yet)", id)
		return
	}
	etag := `"` + strconv.Itoa(ck.Iterations) + `"`
	if r.Header.Get("If-None-Match") == etag {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	data, err := floc.EncodeCheckpoint(ck)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, "encoding checkpoint: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("ETag", etag)
	w.Header().Set(checkpointIterationsHeader, strconv.Itoa(ck.Iterations))
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(data); err != nil {
		// Mid-body network failure; the poller retries.
		s.logf("deltaserve: writing checkpoint response for %s: %v", id, err)
	}
}

// handleReplicaPutCheckpoint stores a checkpoint replica for a job
// owned by a peer backend. The body must decode as a valid DCKP
// envelope — a torn or hostile replica is rejected at the door, never
// stored, never resumed from. Stale replicas (older boundary than
// held) are acknowledged but not stored.
func (s *Server) handleReplicaPutCheckpoint(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	data, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeInvalidRequest,
				"checkpoint exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "reading checkpoint body: %v", err)
		return
	}
	ck, err := floc.DecodeCheckpoint(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadCheckpoint, "replica checkpoint: %v", err)
		return
	}
	stored := s.replicas.putCheckpoint(id, data, ck.Iterations)
	writeJSON(w, http.StatusOK, map[string]any{
		"stored":     stored,
		"iterations": ck.Iterations,
	})
}

// handleReplicaGetCheckpoint returns a held checkpoint replica.
func (s *Server) handleReplicaGetCheckpoint(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	_, data, iterations, ok := s.replicas.get(id)
	if !ok || data == nil {
		writeError(w, http.StatusNotFound, CodeNoCheckpoint, "no checkpoint replica for job %q", id)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(checkpointIterationsHeader, strconv.Itoa(iterations))
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(data); err != nil {
		s.logf("deltaserve: writing checkpoint replica response for %s: %v", id, err)
	}
}

// handleReplicaPutMeta stores a job-metadata replica (opaque JSON the
// coordinator writes at submission and reads back during failover).
func (s *Server) handleReplicaPutMeta(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	data, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeInvalidRequest,
				"metadata exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "reading metadata body: %v", err)
		return
	}
	if !json.Valid(data) {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "metadata replica must be valid JSON")
		return
	}
	s.replicas.putMeta(id, data)
	writeJSON(w, http.StatusOK, map[string]any{"stored": true})
}

// handleReplicaGetMeta returns a held metadata replica.
func (s *Server) handleReplicaGetMeta(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	meta, _, _, ok := s.replicas.get(id)
	if !ok || meta == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "no metadata replica for job %q", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(meta); err != nil {
		s.logf("deltaserve: writing metadata replica response for %s: %v", id, err)
	}
}

// handleReplicaDelete drops a job's replicated state — coordinator
// cleanup once a job is terminal and fetched.
func (s *Server) handleReplicaDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	writeJSON(w, http.StatusOK, map[string]any{"deleted": s.replicas.drop(id)})
}
