// Batch submission: POST /v1/jobs:batch carries many small matrices
// in one request — one HTTP round-trip and one decode pass instead of
// N, with per-item outcomes so a partial refusal (one invalid matrix,
// or the queue filling mid-batch) never poisons the rest.

package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// MaxBatchJobs bounds how many submissions one batch may carry. The
// body size cap already bounds total bytes; this bounds per-item
// bookkeeping and keeps one batch from monopolizing the queue.
const MaxBatchJobs = 256

// BatchSubmitRequest is the body of POST /v1/jobs:batch.
type BatchSubmitRequest struct {
	// Jobs are the submissions, validated and enqueued in order. Item
	// outcomes are independent: an invalid or refused item does not
	// fail its neighbors.
	Jobs []SubmitRequest `json:"jobs"`
}

// BatchItemView is the per-item outcome of a batch submission.
type BatchItemView struct {
	// Index is the item's position in the request's jobs array.
	Index int `json:"index"`

	// Status is the HTTP status this item would have received as a
	// standalone POST /v1/jobs: 202 accepted, 400 invalid, 429 queue
	// full, 503 draining.
	Status int `json:"status"`

	// Job is the accepted job's view (Status 202 only).
	Job *JobView `json:"job,omitempty"`

	// Error is the refusal detail (non-202 only).
	Error *ErrorDetail `json:"error,omitempty"`
}

// BatchSubmitResponse is the body of POST /v1/jobs:batch.
type BatchSubmitResponse struct {
	Accepted int             `json:"accepted"`
	Rejected int             `json:"rejected"`
	Jobs     []BatchItemView `json:"jobs"`
}

// handleSubmitBatch validates and enqueues every submission of the
// batch independently. The top-level status is 202 when at least one
// item was accepted; otherwise the dominant refusal: 429 (+
// Retry-After) when the queue refused items, 503 when draining
// refused them, else 400.
func (s *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req BatchSubmitRequest
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeInvalidRequest,
				"request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "decoding batch: %v", err)
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "batch: jobs is empty")
		return
	}
	if len(req.Jobs) > MaxBatchJobs {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest,
			"batch carries %d jobs; the server caps batches at %d", len(req.Jobs), MaxBatchJobs)
		return
	}

	// One sweep for the whole batch — the point of batching is one
	// pass over the fixed costs.
	s.store.sweep()

	resp := BatchSubmitResponse{Jobs: make([]BatchItemView, len(req.Jobs))}
	sawQueueFull, sawDraining := false, false
	for i := range req.Jobs {
		item := &resp.Jobs[i]
		item.Index = i
		spec, aerr := s.buildSpec(&req.Jobs[i])
		if aerr == nil {
			id := s.store.create(spec)
			if aerr = s.tryEnqueue(id); aerr == nil {
				view, _ := s.store.view(id)
				item.Status = http.StatusAccepted
				item.Job = &view
				resp.Accepted++
				continue
			}
		}
		item.Status = aerr.status
		item.Error = &ErrorDetail{Code: aerr.code, Message: aerr.message}
		resp.Rejected++
		switch aerr.code {
		case CodeQueueFull:
			sawQueueFull = true
		case CodeDraining:
			sawDraining = true
		}
	}

	status := http.StatusAccepted
	if resp.Accepted == 0 {
		switch {
		case sawQueueFull:
			status = http.StatusTooManyRequests
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.opts.RetryAfter)))
		case sawDraining:
			status = http.StatusServiceUnavailable
		default:
			status = http.StatusBadRequest
		}
	}
	writeJSON(w, status, resp)
}
