// Package service is deltaserve: an embeddable asynchronous HTTP JSON
// API for δ-cluster jobs, built on the stdlib only. A submission
// enters a bounded queue and is executed by a fixed worker pool, each
// job wrapped in the internal/resilience supervisor with its own
// deadline and cancel path; results live in an in-memory store until
// a TTL evicts them.
//
//	POST   /v1/jobs                  submit a job        → 202 + job ID
//	GET    /v1/jobs/{id}             status + progress   → 200
//	GET    /v1/jobs/{id}/result      final clustering    → 200
//	DELETE /v1/jobs/{id}             cancel              → 202 (or 200)
//	PATCH  /v1/jobs/{id}/matrix      deltastream patch   → 200
//	POST   /v1/jobs/{id}:recluster   warm-start child    → 202
//	GET    /healthz             liveness            → 200
//	GET    /metrics             counters/histogram  → 200
//
// Backpressure is explicit: when the queue is full, submission fails
// fast with 429 and a Retry-After hint — the server never accumulates
// unbounded goroutines or jobs. Shutdown drains: submissions are
// rejected, queued-but-unstarted jobs are cancelled, running jobs get
// the caller's grace period, and jobs still running when it expires
// are context-cancelled, their best-so-far FLOC checkpoints flushed
// to the checkpoint directory.
//
// This package opts into the deltavet:deterministic discipline — not
// because a concurrent server is replayable, but because the parts
// that can be deterministic must be: job IDs come from a seeded
// stats.RNG, map walks are order-fixed, contexts ride first-parameter
// only and never live in structs, and floats are never compared raw.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Options configures a Server. The zero value is usable: 4 workers, a
// 64-deep queue, 15-minute TTL, no default deadline.
type Options struct {
	// Workers is the size of the worker pool — the hard cap on
	// concurrently running jobs. Defaults to 4.
	Workers int

	// QueueCap bounds the number of accepted-but-unstarted jobs. A
	// full queue rejects submissions with 429 + Retry-After. Defaults
	// to 64.
	QueueCap int

	// TTL is how long a finished job (and its result) stays readable.
	// Defaults to 15 minutes.
	TTL time.Duration

	// Seed drives the job-ID RNG: equal seeds issue equal ID
	// sequences. Defaults to 1.
	Seed int64

	// DefaultDeadline bounds jobs that do not set deadline_ms; 0
	// leaves them unbounded.
	DefaultDeadline time.Duration

	// MaxDeadline, when positive, clamps every job's deadline
	// (including "none requested") to at most this.
	MaxDeadline time.Duration

	// CheckpointDir, when set, receives <jobID>.dckp checkpoint files
	// for FLOC jobs interrupted mid-run (cancel, deadline, drain).
	CheckpointDir string

	// CheckpointEvery, when positive, cuts a resumable checkpoint after
	// every n-th improving FLOC iteration and keeps the latest in the
	// job store, where GET /v1/internal/jobs/{id}/checkpoint serves it
	// for coordinator replication. 0 keeps only interrupted-run
	// checkpoints (the single-node default).
	CheckpointEvery int

	// MaxReplicaEntries bounds the peer-replica table (checkpoints and
	// job metadata held for jobs owned by other backends). When full,
	// the least-recently-written entry is evicted. Defaults to 1024.
	MaxReplicaEntries int

	// RetryAfter is the hint returned with 429 responses. Defaults to
	// 1s.
	RetryAfter time.Duration

	// MaxBodyBytes caps the request body. Defaults to 32 MiB.
	MaxBodyBytes int64

	// MaxMatrixEntries caps rows×cols of a submitted matrix. Defaults
	// to 4,194,304 (a 2048×2048 matrix). Negative disables the cap.
	MaxMatrixEntries int

	// Logf, when non-nil, receives service lifecycle events. Silent by
	// default.
	Logf func(format string, args ...any)

	// Clock overrides time.Now for the job store (tests). Engine
	// durations still use the real clock.
	Clock func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.TTL <= 0 {
		o.TTL = 15 * time.Minute
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	if o.MaxMatrixEntries == 0 {
		o.MaxMatrixEntries = 4 << 20
	}
	if o.MaxReplicaEntries <= 0 {
		o.MaxReplicaEntries = 1024
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// Server is the deltaserve service: handlers, job store, worker pool
// and metrics. Create one with New, mount Handler on any mux or
// listener, and Shutdown to drain.
type Server struct {
	opts     Options
	store    *store
	replicas *replicaStore
	metrics  *metrics
	mux      *http.ServeMux
	queue    chan string
	wg       sync.WaitGroup

	mu       sync.Mutex
	draining bool
	// notReady is the admin-drain flag: /readyz turns 503 and
	// submissions are refused, but the process keeps serving reads —
	// the planned-migration half-state between "up" and "shut down".
	notReady bool

	shutdownOnce sync.Once
	shutdownErr  error

	// runHook, when non-nil, replaces the per-algorithm engines for
	// every job on this server — a test seam for exercising queueing,
	// cancellation and drain semantics with controllable run bodies.
	runHook func(ctx context.Context, spec *runSpec) (*ResultView, error)
}

// New builds a Server and starts its worker pool. The caller must
// eventually call Shutdown to stop the workers.
func New(opts Options) *Server {
	o := opts.withDefaults()
	s := &Server{
		opts:     o,
		store:    newJobStore(o.Seed, o.TTL, o.Clock),
		replicas: newReplicaStore(o.MaxReplicaEntries),
		metrics:  &metrics{},
		queue:    make(chan string, o.QueueCap),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/jobs:batch", s.handleSubmitBatch)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("PATCH /v1/jobs/{id}/matrix", s.handlePatchMatrix)
	s.mux.HandleFunc("POST /v1/jobs/{target}", s.handleJobAction)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/admin/drain", s.handleDrain)
	s.mux.HandleFunc("POST /v1/internal/jobs", s.handleDispatch)
	s.mux.HandleFunc("GET /v1/internal/jobs/{id}/checkpoint", s.handleJobCheckpoint)
	s.mux.HandleFunc("PUT /v1/internal/replicas/{id}/checkpoint", s.handleReplicaPutCheckpoint)
	s.mux.HandleFunc("GET /v1/internal/replicas/{id}/checkpoint", s.handleReplicaGetCheckpoint)
	s.mux.HandleFunc("PUT /v1/internal/replicas/{id}/meta", s.handleReplicaPutMeta)
	s.mux.HandleFunc("GET /v1/internal/replicas/{id}/meta", s.handleReplicaGetMeta)
	s.mux.HandleFunc("DELETE /v1/internal/replicas/{id}", s.handleReplicaDelete)

	s.wg.Add(o.Workers)
	for i := 0; i < o.Workers; i++ {
		go s.worker()
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Ready reports whether the node accepts new work: neither shutting
// down nor admin-drained. Liveness (/healthz) stays true in both
// drain states; readiness is what routing layers consult.
func (s *Server) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.draining && !s.notReady
}

// BeginDrain flips the node to not-ready and pushes every non-terminal
// job to a checkpointed stop: queued jobs are cancelled outright,
// running engines are context-cancelled and flush their best-so-far
// checkpoints into the store (still downloadable afterwards — the
// process keeps serving). Idempotent; returns how many jobs were asked
// to stop by this call.
func (s *Server) BeginDrain() int {
	s.mu.Lock()
	s.notReady = true
	s.mu.Unlock()
	queued, running := s.store.cancelAllActive()
	for i := 0; i < queued; i++ {
		s.metrics.jobCancelledQueued()
	}
	if queued+running > 0 {
		s.logf("deltaserve: admin drain: %d queued job(s) cancelled, %d running job(s) stopping", queued, running)
	}
	return queued + running
}

// Shutdown drains the service: new submissions are rejected with 503,
// queued-but-unstarted jobs are cancelled, and running jobs get until
// ctx expires to finish. Jobs still running then are context-
// cancelled (stopping within one engine iteration) and their partial
// FLOC checkpoints are flushed to CheckpointDir. Shutdown returns
// once every worker has exited; it never abandons a goroutine. It is
// idempotent: later calls return the first call's error and wait for
// the same drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		close(s.queue)
		s.mu.Unlock()

		done := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(done)
		}()
		select {
		case <-done:
			s.logf("deltaserve: drained cleanly")
		case <-ctx.Done():
			s.logf("deltaserve: drain budget expired; cancelling running jobs")
			s.store.cancelAllRunning()
			// Cancelled engines return within one iteration; the
			// workers then finish their jobs and exit. Waiting here
			// (not abandoning) is the zero-leak guarantee.
			<-done
			s.shutdownErr = ctx.Err()
		}
	})
	s.wg.Wait()
	return s.shutdownErr
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// handleSubmit validates the submission, registers the job, and
// enqueues it — or bounces with 429 (queue full) or 503 (draining).
// A Content-Type of application/x-deltacluster-matrix switches to the
// binary transport (binary.go); everything else is the JSON body.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if isBinaryContentType(r.Header.Get("Content-Type")) {
		s.handleSubmitBinary(w, r)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeInvalidRequest,
				"request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "decoding request: %v", err)
		return
	}
	spec, aerr := s.buildSpec(&req)
	if aerr != nil {
		writeError(w, aerr.status, aerr.code, "%s", aerr.message)
		return
	}

	// Opportunistic eviction keeps the store bounded without a
	// janitor goroutine.
	s.store.sweep()

	id := s.store.create(spec)
	if !s.enqueue(w, id) {
		return
	}

	view, _ := s.store.view(id)
	w.Header().Set("Location", "/v1/jobs/"+id)
	writeJSON(w, http.StatusAccepted, SubmitResponse{Job: view})
}

// tryEnqueue places a freshly registered job on the worker queue.
// When the node refuses — draining/not-ready (503) or queue full
// (429) — it rolls the registration back and returns the refusal for
// the caller to render (whole-response for a single submit, per-item
// for a batch).
func (s *Server) tryEnqueue(id string) *apiError {
	s.mu.Lock()
	if s.draining || s.notReady {
		s.mu.Unlock()
		s.store.drop(id)
		return &apiError{status: http.StatusServiceUnavailable, code: CodeDraining,
			message: "server is draining"}
	}
	select {
	case s.queue <- id:
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		s.store.drop(id)
		s.metrics.jobRejected()
		return &apiError{status: http.StatusTooManyRequests, code: CodeQueueFull,
			message: fmt.Sprintf("queue is full (%d jobs waiting); retry later", s.opts.QueueCap)}
	}
	s.metrics.jobSubmitted()
	return nil
}

// enqueue is tryEnqueue rendering its refusal as the whole response.
func (s *Server) enqueue(w http.ResponseWriter, id string) bool {
	aerr := s.tryEnqueue(id)
	if aerr == nil {
		return true
	}
	if aerr.status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.opts.RetryAfter)))
	}
	writeError(w, aerr.status, aerr.code, "%s", aerr.message)
	return false
}

// retryAfterSeconds renders a duration as the whole-second value the
// Retry-After header wants, rounding up so a 100ms hint is not "0".
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	view, ok := s.store.view(id)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "no job %q (unknown or expired)", id)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, view, ok := s.store.result(id)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "no job %q (unknown or expired)", id)
		return
	}
	if res != nil {
		if acceptsBinary(r.Header.Get("Accept")) {
			writeBinaryResult(w, res)
			return
		}
		writeJSON(w, http.StatusOK, res)
		return
	}
	switch view.State {
	case StateQueued, StateRunning:
		writeError(w, http.StatusConflict, CodeJobNotDone,
			"job %s is %s; poll GET /v1/jobs/%s until it is done", id, view.State, id)
	case StateFailed:
		writeError(w, http.StatusConflict, CodeJobFailed, "job %s failed: %s", id, view.Error)
	case StateCancelled:
		writeError(w, http.StatusConflict, CodeJobCancelled,
			"job %s was cancelled before producing a result", id)
	default:
		writeError(w, http.StatusInternalServerError, CodeInternal,
			"job %s is %s with no result", id, view.State)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	view, fromQueue, ok := s.store.requestCancel(id)
	if fromQueue {
		s.metrics.jobCancelledQueued()
	}
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "no job %q (unknown or expired)", id)
		return
	}
	// Terminal already (or cancelled instantly from the queue): the
	// outcome is settled → 200. A running engine stops asynchronously
	// → 202.
	status := http.StatusOK
	if !view.State.terminal() {
		status = http.StatusAccepted
	}
	writeJSON(w, status, view)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"draining": !s.Ready(),
	})
}

// handleReadyz is the routing signal: 200 while the node accepts new
// jobs, 503 with a JSON body once draining (admin drain or shutdown).
// Load balancers and the coordinator stop routing on the 503; liveness
// (/healthz) stays 200 so the process is not killed mid-migration.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.Ready() {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"status":   "draining",
		"draining": true,
	})
}

// handleDrain is POST /v1/admin/drain: flip readiness off and push
// every active job to a checkpointed stop so the coordinator can
// migrate it to a live backend. Idempotent — a second drain reports
// zero newly stopped jobs.
func (s *Server) handleDrain(w http.ResponseWriter, _ *http.Request) {
	stopped := s.BeginDrain()
	writeJSON(w, http.StatusOK, map[string]any{
		"draining": true,
		"stopped":  stopped,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	byState := s.store.countByState()
	stored := byState[StateQueued] + byState[StateRunning] +
		byState[StateDone] + byState[StateFailed] + byState[StateCancelled]
	writeJSON(w, http.StatusOK,
		s.metrics.snapshot(byState, stored, len(s.queue), cap(s.queue)))
}

// String identifies the server in logs.
func (s *Server) String() string {
	return fmt.Sprintf("deltaserve(workers=%d queue=%d)", s.opts.Workers, s.opts.QueueCap)
}
