package service

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"strings"

	"deltacluster/internal/matrix"
	"deltacluster/internal/stream"
)

// MatrixPatchRequest is the body of PATCH /v1/jobs/{id}/matrix: one
// deltastream mutation batch against the addressed job's lineage
// matrix. The batch is atomic — it is validated in full against the
// current matrix shape before anything is written — and applies
// appends first, then updates, then retractions, so a batch may update
// entries of rows it appends. Unknown fields are rejected.
//
// A patch is only accepted while the lineage is idle (no queued or
// running job shares the matrix); otherwise the request fails with 409
// lineage_busy rather than mutating data under a live engine.
type MatrixPatchRequest struct {
	// AppendRows adds new object rows; each needs exactly cols entries,
	// null marking a missing value.
	AppendRows [][]*float64 `json:"append_rows,omitempty"`

	// Updates revises individual entries; a null value marks the entry
	// missing (equivalent to a retraction).
	Updates []CellPatch `json:"updates,omitempty"`

	// Retract marks individual entries missing.
	Retract []CellRef `json:"retract,omitempty"`
}

// CellPatch addresses one entry and its new value.
type CellPatch struct {
	Row   int      `json:"row"`
	Col   int      `json:"col"`
	Value *float64 `json:"value"` // null marks the entry missing
}

// CellRef addresses one entry.
type CellRef struct {
	Row int `json:"row"`
	Col int `json:"col"`
}

// MatrixPatchResponse is the body of a successful matrix PATCH.
type MatrixPatchResponse struct {
	// JobID echoes the addressed job; Lineage is the root job whose
	// mutation log recorded the patch (every job of the lineage now
	// sees the mutated matrix).
	JobID   string `json:"job_id"`
	Lineage string `json:"lineage"`

	// MatrixVersion is the mutation log's new head version.
	MatrixVersion int `json:"matrix_version"`

	// Rows and Cols are the matrix shape after the patch.
	Rows int `json:"rows"`
	Cols int `json:"cols"`
}

// ReclusterRequest is the optional body of POST
// /v1/jobs/{id}:recluster.
type ReclusterRequest struct {
	// ChildID, when set, chooses the new job's ID — the coordinator
	// dispatch path, where IDs are minted upstream. Redelivering the
	// same ChildID for the same parent observes the existing child
	// instead of starting a second run.
	ChildID string `json:"child_id,omitempty"`
}

// ReclusterResponse is the body of a successful recluster: the queued
// warm-start child and its provenance.
type ReclusterResponse struct {
	Job JobView `json:"job"`

	// ParentID is the completed job whose final checkpoint seeds the
	// child.
	ParentID string `json:"parent_id"`

	// WarmFromIteration is the parent checkpoint's iteration count —
	// the converged state the child re-anchors instead of cold seeding.
	WarmFromIteration int `json:"warm_from_iteration"`
}

// mutation lowers the wire patch to the stream.Mutation the log
// records. JSON cannot carry NaN or Inf literals, so every non-null
// number is finite; null lowers to NaN, the matrix's missing marker.
func (req *MatrixPatchRequest) mutation() stream.Mutation {
	var mu stream.Mutation
	if len(req.AppendRows) > 0 {
		mu.AppendRows = make([][]float64, len(req.AppendRows))
		for i, r := range req.AppendRows {
			row := make([]float64, len(r))
			for j, v := range r {
				if v == nil {
					row[j] = math.NaN()
				} else {
					row[j] = *v
				}
			}
			mu.AppendRows[i] = row
		}
	}
	if len(req.Updates) > 0 {
		mu.Updates = make([]matrix.Cell, len(req.Updates))
		for n, c := range req.Updates {
			val := math.NaN()
			if c.Value != nil {
				val = *c.Value
			}
			mu.Updates[n] = matrix.Cell{Row: c.Row, Col: c.Col, Value: val}
		}
	}
	if len(req.Retract) > 0 {
		mu.Retract = make([]matrix.CellRef, len(req.Retract))
		for n, c := range req.Retract {
			mu.Retract[n] = matrix.CellRef{Row: c.Row, Col: c.Col}
		}
	}
	return mu
}

// handlePatchMatrix is PATCH /v1/jobs/{id}/matrix: commit one mutation
// batch to the job's lineage matrix and mutation log, atomically with
// the lineage-idle check.
func (s *Server) handlePatchMatrix(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req MatrixPatchRequest
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeInvalidRequest,
				"request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "decoding patch: %v", err)
		return
	}
	out, aerr := s.store.patchMatrix(id, req.mutation())
	if aerr != nil {
		if aerr.code == CodeLineageBusy {
			s.metrics.lineageConflict()
		}
		writeError(w, aerr.status, aerr.code, "%s", aerr.message)
		return
	}
	s.metrics.matrixPatched()
	s.logf("deltaserve: job %s: matrix patched to version %d (%dx%d)",
		id, out.version, out.rows, out.cols)
	writeJSON(w, http.StatusOK, MatrixPatchResponse{
		JobID:         out.jobID,
		Lineage:       out.lineage,
		MatrixVersion: out.version,
		Rows:          out.rows,
		Cols:          out.cols,
	})
}

// handleJobAction is POST /v1/jobs/{target} where target is
// "<id>:recluster" — Go's mux matches the whole segment, so the action
// suffix is parsed here. The recluster queues a warm-start child of a
// completed FLOC job: same matrix (as currently patched), single
// attempt, seeded from the parent's final checkpoint.
func (s *Server) handleJobAction(w http.ResponseWriter, r *http.Request) {
	target := r.PathValue("target")
	id, isRecluster := strings.CutSuffix(target, ":recluster")
	if !isRecluster || id == "" {
		writeError(w, http.StatusNotFound, CodeNotFound,
			"unknown job action %q (want {id}:recluster)", target)
		return
	}

	var req ReclusterRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "decoding recluster request: %v", err)
		return
	}

	s.store.sweep()
	view, warmIter, created, aerr := s.store.beginRecluster(id, req.ChildID)
	if aerr != nil {
		if aerr.code == CodeLineageBusy {
			s.metrics.lineageConflict()
		}
		writeError(w, aerr.status, aerr.code, "%s", aerr.message)
		return
	}
	if !created {
		// Idempotent redelivery: the child already exists for this
		// parent; observe it instead of double-running.
		writeJSON(w, http.StatusOK, ReclusterResponse{Job: view, ParentID: id})
		return
	}
	if !s.enqueue(w, view.ID) {
		return
	}
	s.metrics.reclusterAccepted()
	s.logf("deltaserve: job %s: recluster child %s queued (warm from iteration %d)",
		id, view.ID, warmIter)
	w.Header().Set("Location", "/v1/jobs/"+view.ID)
	writeJSON(w, http.StatusAccepted, ReclusterResponse{
		Job:               view,
		ParentID:          id,
		WarmFromIteration: warmIter,
	})
}
