package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"deltacluster/internal/floc"
	"deltacluster/internal/synth"
)

// assertGoroutinesStabilize waits for the goroutine count to settle
// back to the before-mark — the pool's zero-leak guarantee.
func assertGoroutinesStabilize(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fakeClock is a settable clock for TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// testEnv is one service instance behind an httptest listener.
type testEnv struct {
	s  *Server
	ts *httptest.Server
}

func newTestEnv(t *testing.T, opts Options) *testEnv {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		ts.Close()
	})
	return &testEnv{s: s, ts: ts}
}

func (e *testEnv) do(t *testing.T, method, path string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, e.ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// submit posts the request and returns the accepted job ID.
func (e *testEnv) submit(t *testing.T, req any) string {
	t.Helper()
	resp, data := e.do(t, http.MethodPost, "/v1/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, data)
	}
	var sr SubmitResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatalf("submit: decoding %s: %v", data, err)
	}
	if sr.Job.ID == "" || sr.Job.State != StateQueued {
		t.Fatalf("submit: unexpected job view %+v", sr.Job)
	}
	return sr.Job.ID
}

// poll waits until the job reaches a terminal state.
func (e *testEnv) poll(t *testing.T, id string, timeout time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, data := e.do(t, http.MethodGet, "/v1/jobs/"+id, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s: status %d, body %s", id, resp.StatusCode, data)
		}
		var v JobView
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatal(err)
		}
		if v.State.terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, v.State, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func decodeError(t *testing.T, data []byte) ErrorDetail {
	t.Helper()
	var eb ErrorBody
	if err := json.Unmarshal(data, &eb); err != nil {
		t.Fatalf("decoding error body %s: %v", data, err)
	}
	return eb.Error
}

// smallJobRequest is a tiny FLOC submission over a synthetic matrix
// with one embedded coherent cluster.
func smallJobRequest(t *testing.T) *SubmitRequest {
	t.Helper()
	ds, err := synth.Generate(synth.Config{
		Rows: 30, Cols: 8, NumClusters: 1,
		VolumeMean: 40, VolumeVariance: 0, RowColRatio: 4,
		TargetResidue: 2,
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]float64, ds.Matrix.Rows())
	for i := range rows {
		rows[i] = ds.Matrix.Row(i) // NaN = missing; RowsJSON renders it as null
	}
	return &SubmitRequest{
		Algorithm: AlgoFLOC,
		Matrix:    MatrixPayload{Rows: RowsJSON(rows)},
		FLOC:      &FLOCParams{K: 2, Delta: 6, Seed: 7},
	}
}

func TestSubmitPollResultHappyPath(t *testing.T) {
	e := newTestEnv(t, Options{Workers: 2, QueueCap: 8})

	id := e.submit(t, smallJobRequest(t))
	view := e.poll(t, id, 30*time.Second)
	if view.State != StateDone {
		t.Fatalf("job finished %s (error %q), want done", view.State, view.Error)
	}
	if view.Started == nil || view.Finished == nil {
		t.Fatalf("terminal view missing timestamps: %+v", view)
	}
	if view.Progress == nil {
		t.Fatal("no progress was reported for a FLOC job")
	}
	if view.Progress.Attempt != 1 {
		t.Fatalf("progress attempt = %d, want 1", view.Progress.Attempt)
	}

	resp, data := e.do(t, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d, body %s", resp.StatusCode, data)
	}
	var res ResultView
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != AlgoFLOC || res.Partial {
		t.Fatalf("unexpected result header %+v", res)
	}
	if len(res.Clusters) == 0 {
		t.Fatal("result has no clusters")
	}
	for i, c := range res.Clusters {
		if len(c.Rows) == 0 || len(c.Cols) == 0 {
			t.Fatalf("cluster %d is empty: %+v", i, c)
		}
	}
}

func TestResultBeforeDoneConflicts(t *testing.T) {
	block := make(chan struct{})
	e := newTestEnv(t, Options{Workers: 1, QueueCap: 4})
	e.s.runHook = func(ctx context.Context, _ *runSpec) (*ResultView, error) {
		select {
		case <-block:
			return &ResultView{Algorithm: AlgoFLOC}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	id := e.submit(t, smallJobRequest(t))
	resp, data := e.do(t, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of unfinished job: status %d, body %s", resp.StatusCode, data)
	}
	if code := decodeError(t, data).Code; code != CodeJobNotDone {
		t.Fatalf("error code %q, want %q", code, CodeJobNotDone)
	}
	close(block)
	if v := e.poll(t, id, 10*time.Second); v.State != StateDone {
		t.Fatalf("job finished %s, want done", v.State)
	}
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{})
	e := newTestEnv(t, Options{Workers: 1, QueueCap: 4})
	var once sync.Once
	e.s.runHook = func(ctx context.Context, _ *runSpec) (*ResultView, error) {
		once.Do(func() { close(started) })
		<-ctx.Done()
		return nil, ctx.Err()
	}

	id := e.submit(t, smallJobRequest(t))
	<-started

	resp, data := e.do(t, http.MethodDelete, "/v1/jobs/"+id, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel running: status %d, body %s", resp.StatusCode, data)
	}
	var v JobView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	if !v.CancelRequested {
		t.Fatalf("cancel response does not acknowledge the request: %+v", v)
	}

	final := e.poll(t, id, 10*time.Second)
	if final.State != StateCancelled {
		t.Fatalf("job finished %s, want cancelled", final.State)
	}

	// No result was produced → /result reports the cancellation.
	resp, data = e.do(t, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of cancelled job: status %d, body %s", resp.StatusCode, data)
	}
	if code := decodeError(t, data).Code; code != CodeJobCancelled {
		t.Fatalf("error code %q, want %q", code, CodeJobCancelled)
	}
}

func TestCancelQueuedJobAndIdempotence(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	e := newTestEnv(t, Options{Workers: 1, QueueCap: 4})
	var once sync.Once
	e.s.runHook = func(ctx context.Context, _ *runSpec) (*ResultView, error) {
		once.Do(func() { close(started) })
		select {
		case <-release:
			return &ResultView{Algorithm: AlgoFLOC}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	blocker := e.submit(t, smallJobRequest(t))
	<-started
	queued := e.submit(t, smallJobRequest(t))

	// Cancel the queued job: terminal immediately, 200.
	resp, data := e.do(t, http.MethodDelete, "/v1/jobs/"+queued, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued: status %d, body %s", resp.StatusCode, data)
	}
	var v JobView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	if v.State != StateCancelled {
		t.Fatalf("queued job state %s after cancel, want cancelled", v.State)
	}

	// Cancelling again is a settled no-op.
	resp, data = e.do(t, http.MethodDelete, "/v1/jobs/"+queued, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-cancel: status %d, body %s", resp.StatusCode, data)
	}

	close(release)
	if v := e.poll(t, blocker, 10*time.Second); v.State != StateDone {
		t.Fatalf("blocker finished %s, want done", v.State)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	e := newTestEnv(t, Options{Workers: 1, QueueCap: 1, RetryAfter: 2 * time.Second})
	var once sync.Once
	e.s.runHook = func(ctx context.Context, _ *runSpec) (*ResultView, error) {
		once.Do(func() { close(started) })
		select {
		case <-release:
			return &ResultView{Algorithm: AlgoFLOC}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	running := e.submit(t, smallJobRequest(t)) // occupies the worker
	<-started
	queued := e.submit(t, smallJobRequest(t)) // fills the queue

	resp, data := e.do(t, http.MethodPost, "/v1/jobs", smallJobRequest(t))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: status %d, body %s", resp.StatusCode, data)
	}
	if code := decodeError(t, data).Code; code != CodeQueueFull {
		t.Fatalf("error code %q, want %q", code, CodeQueueFull)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}

	// The rejected submission must leave no trace in the store.
	resp, data = e.do(t, http.MethodGet, "/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	var mv MetricsView
	if err := json.Unmarshal(data, &mv); err != nil {
		t.Fatal(err)
	}
	if mv.Jobs.RejectedQueueFull != 1 {
		t.Fatalf("rejected_queue_full = %d, want 1", mv.Jobs.RejectedQueueFull)
	}
	if mv.Jobs.Stored != 2 {
		t.Fatalf("stored = %d, want 2 (running + queued)", mv.Jobs.Stored)
	}
	if mv.Queue.Capacity != 1 || mv.Queue.Depth != 1 {
		t.Fatalf("queue %+v, want depth 1 of capacity 1", mv.Queue)
	}

	close(release)
	for _, id := range []string{running, queued} {
		if v := e.poll(t, id, 10*time.Second); v.State != StateDone {
			t.Fatalf("job %s finished %s, want done", id, v.State)
		}
	}
}

func TestTTLEvictionReturns404(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	e := newTestEnv(t, Options{Workers: 1, QueueCap: 4, TTL: time.Minute, Clock: clock.now})
	e.s.runHook = func(context.Context, *runSpec) (*ResultView, error) {
		return &ResultView{Algorithm: AlgoFLOC}, nil
	}

	id := e.submit(t, smallJobRequest(t))
	if v := e.poll(t, id, 10*time.Second); v.State != StateDone {
		t.Fatalf("job finished %s, want done", v.State)
	}

	// Within the TTL the job and result are readable.
	if resp, _ := e.do(t, http.MethodGet, "/v1/jobs/"+id, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-TTL status %d, want 200", resp.StatusCode)
	}

	clock.advance(2 * time.Minute)

	resp, data := e.do(t, http.MethodGet, "/v1/jobs/"+id, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("post-TTL job status %d, body %s", resp.StatusCode, data)
	}
	if code := decodeError(t, data).Code; code != CodeNotFound {
		t.Fatalf("error code %q, want %q", code, CodeNotFound)
	}
	resp, _ = e.do(t, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("post-TTL result status %d, want 404", resp.StatusCode)
	}
	resp, _ = e.do(t, http.MethodDelete, "/v1/jobs/"+id, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("post-TTL cancel status %d, want 404", resp.StatusCode)
	}
}

func TestDeadlineFailsJobWithoutResult(t *testing.T) {
	e := newTestEnv(t, Options{Workers: 1, QueueCap: 4})
	e.s.runHook = func(ctx context.Context, _ *runSpec) (*ResultView, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}

	req := smallJobRequest(t)
	req.DeadlineMillis = 50
	id := e.submit(t, req)
	v := e.poll(t, id, 10*time.Second)
	if v.State != StateFailed {
		t.Fatalf("deadlined job finished %s, want failed", v.State)
	}
	if !strings.Contains(v.Error, "deadline") {
		t.Fatalf("error %q does not mention the deadline", v.Error)
	}
}

func TestGracefulShutdownDrainsRunningJobs(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Options{Workers: 2, QueueCap: 8})
	ts := httptest.NewServer(s.Handler())
	e := &testEnv{s: s, ts: ts}

	// Jobs take a beat to finish, so they are mid-run when the drain
	// begins — the drain must wait for them, not cancel them.
	s.runHook = func(ctx context.Context, _ *runSpec) (*ResultView, error) {
		select {
		case <-time.After(150 * time.Millisecond):
			return &ResultView{Algorithm: AlgoFLOC}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	var ids []string
	for i := 0; i < 2; i++ {
		ids = append(ids, e.submit(t, smallJobRequest(t)))
	}
	// Give the workers a moment to pick both up.
	time.Sleep(30 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	for _, id := range ids {
		v, ok := s.store.view(id)
		if !ok {
			t.Fatalf("job %s evicted during drain", id)
		}
		if v.State != StateDone {
			t.Fatalf("job %s finished %s (error %q), want done (drained, not cancelled)",
				id, v.State, v.Error)
		}
	}

	// Submissions after the drain are rejected.
	resp, data := e.do(t, http.MethodPost, "/v1/jobs", smallJobRequest(t))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: status %d, body %s", resp.StatusCode, data)
	}
	if code := decodeError(t, data).Code; code != CodeDraining {
		t.Fatalf("error code %q, want %q", code, CodeDraining)
	}

	// The pool is down; closing the listener too, the process must be
	// back to its pre-server goroutine count — the zero-leak guarantee.
	ts.Close()
	assertGoroutinesStabilize(t, before)
}

func TestShutdownExpiredBudgetCancelsRunningJobs(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Options{Workers: 1, QueueCap: 8})
	ts := httptest.NewServer(s.Handler())
	e := &testEnv{s: s, ts: ts}

	started := make(chan struct{})
	var once sync.Once
	s.runHook = func(ctx context.Context, _ *runSpec) (*ResultView, error) {
		once.Do(func() { close(started) })
		<-ctx.Done()
		return nil, ctx.Err()
	}

	running := e.submit(t, smallJobRequest(t))
	<-started
	queued := e.submit(t, smallJobRequest(t))

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown returned nil though the drain budget expired")
	}

	if v, _ := s.store.view(running); v.State != StateCancelled {
		t.Fatalf("running job finished %s, want cancelled", v.State)
	}
	if v, _ := s.store.view(queued); v.State != StateCancelled {
		t.Fatalf("queued job finished %s, want cancelled", v.State)
	}

	ts.Close()
	assertGoroutinesStabilize(t, before)
}

// TestInterruptedFLOCJobFlushesCheckpoint exercises the real engine:
// a big FLOC run is cancelled mid-optimization, the job keeps its
// best-so-far clustering as a partial result, and the interrupted
// attempt's checkpoint lands in the checkpoint directory, readable by
// floc.ReadCheckpointFile. The cancel is issued only after the status
// endpoint shows a completed iteration — a passed boundary guarantees
// a checkpoint regardless of machine speed. CheckpointEvery keeps the
// latest boundary in the store even when the cancel lands in the
// window between engine convergence and the supervisor returning (the
// one timing where no PartialResult — and so no interrupted-attempt
// checkpoint — exists).
func TestInterruptedFLOCJobFlushesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	e := newTestEnv(t, Options{Workers: 1, QueueCap: 4, CheckpointDir: dir, CheckpointEvery: 1})

	ds, err := synth.Generate(synth.Config{
		Rows: 3000, Cols: 100, NumClusters: 30,
		VolumeMean: 900, VolumeVariance: 0, RowColRatio: 5,
		TargetResidue: 4,
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	var csv strings.Builder
	for i := 0; i < ds.Matrix.Rows(); i++ {
		for j := 0; j < ds.Matrix.Cols(); j++ {
			if j > 0 {
				csv.WriteByte(',')
			}
			if ds.Matrix.IsSpecified(i, j) {
				fmt.Fprintf(&csv, "%g", ds.Matrix.Get(i, j))
			}
		}
		csv.WriteByte('\n')
	}

	req := &SubmitRequest{
		Algorithm: AlgoFLOC,
		Matrix:    MatrixPayload{CSV: csv.String()},
		// Random seeding on this matrix runs for dozens of improving
		// iterations at tens of milliseconds each — slow enough that
		// the cancel below lands mid-run even on a fast machine.
		FLOC: &FLOCParams{K: 12, Delta: 8, Seed: 7, Seeding: "random", MaxIterations: 10_000},
	}
	id := e.submit(t, req)

	// Wait for the first completed iteration, then cancel.
	waitUntil := time.Now().Add(60 * time.Second)
	for {
		resp, data := e.do(t, http.MethodGet, "/v1/jobs/"+id, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll: status %d, body %s", resp.StatusCode, data)
		}
		var v JobView
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatal(err)
		}
		if v.State.terminal() {
			t.Fatalf("job finished %s before it could be interrupted; enlarge the workload", v.State)
		}
		if v.Progress != nil && v.Progress.Iteration >= 1 {
			break
		}
		if time.Now().After(waitUntil) {
			t.Fatal("job never reported a completed iteration")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if resp, data := e.do(t, http.MethodDelete, "/v1/jobs/"+id, nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d, body %s", resp.StatusCode, data)
	}

	v := e.poll(t, id, 60*time.Second)
	if v.State != StateCancelled {
		t.Fatalf("interrupted FLOC job finished %s (error %q), want cancelled", v.State, v.Error)
	}

	// The best-so-far clustering survives as a partial result.
	resp, data := e.do(t, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d, body %s", resp.StatusCode, data)
	}
	var res ResultView
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatalf("interrupted result is not marked partial: %+v", res)
	}
	if res.Iterations < 1 {
		t.Fatalf("partial result at iteration %d, want ≥ 1", res.Iterations)
	}

	path := filepath.Join(dir, id+".dckp")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint was not flushed: %v", err)
	}
	ck, err := floc.ReadCheckpointFile(path)
	if err != nil {
		t.Fatalf("flushed checkpoint is unreadable: %v", err)
	}
	if ck.Iterations < 1 {
		t.Fatalf("checkpoint at iteration %d, want ≥ 1", ck.Iterations)
	}
}

func TestSubmitValidation(t *testing.T) {
	e := newTestEnv(t, Options{Workers: 1, QueueCap: 4})

	cases := []struct {
		name string
		body string
		want string // substring of the error message
	}{
		{"empty body", ``, "decoding request"},
		{"unknown field", `{"matriks": {}}`, "decoding request"},
		{"no matrix", `{"algorithm": "floc", "floc": {"k": 2, "delta": 5}}`, "matrix"},
		{"both encodings", `{"matrix": {"rows": [[1]], "csv": "1"}, "floc": {"k": 1, "delta": 5}}`, "exactly one"},
		{"ragged rows", `{"matrix": {"rows": [[1, 2], [3]]}, "floc": {"k": 1, "delta": 5}}`, "rows[1]"},
		{"bad algorithm", `{"algorithm": "kmeans", "matrix": {"rows": [[1, 2]]}}`, "algorithm"},
		{"missing params", `{"algorithm": "floc", "matrix": {"rows": [[1, 2]]}}`, "parameter block"},
		{"bad k", `{"matrix": {"rows": [[1, 2]]}, "floc": {"k": 0, "delta": 5}}`, "floc.k"},
		{"bad delta", `{"matrix": {"rows": [[1, 2]]}, "floc": {"k": 1, "delta": -1}}`, "floc.delta"},
		{"bad order", `{"matrix": {"rows": [[1, 2]]}, "floc": {"k": 1, "delta": 5, "order": "chaotic"}}`, "floc.order"},
		{"negative deadline", `{"matrix": {"rows": [[1, 2]]}, "floc": {"k": 1, "delta": 5}, "deadline_ms": -1}`, "deadline_ms"},
		{"negative workers", `{"matrix": {"rows": [[1, 2]]}, "floc": {"k": 1, "delta": 5, "workers": -2}}`, "floc.workers"},
		{"bad gain mode", `{"matrix": {"rows": [[1, 2]]}, "floc": {"k": 1, "delta": 5, "gain_mode": "fast"}}`, "floc.gain_mode"},
		{"gain mode vs approximate", `{"matrix": {"rows": [[1, 2]]}, "floc": {"k": 1, "delta": 5, "gain_mode": "incremental", "approximate_gain": true}}`, "mutually exclusive"},
		{"bad tau", `{"algorithm": "clique", "matrix": {"rows": [[1, 2]]}, "clique": {"xi": 5, "tau": 1.5}}`, "clique.tau"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(http.MethodPost, e.ts.URL+"/v1/jobs",
				strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := e.ts.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			data, _ := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, body %s", resp.StatusCode, data)
			}
			det := decodeError(t, data)
			if det.Code != CodeInvalidRequest {
				t.Fatalf("error code %q, want %q", det.Code, CodeInvalidRequest)
			}
			if !strings.Contains(det.Message, tc.want) {
				t.Fatalf("message %q does not mention %q", det.Message, tc.want)
			}
		})
	}
}

// TestSubmitWorkersParam checks the floc.workers plumbing: the value
// reaches the engine config, 0 stays 0 (floc resolves it to
// GOMAXPROCS at validation), and oversized requests are clamped to
// GOMAXPROCS — a transparent cap, since the worker count never
// affects results.
func TestSubmitWorkersParam(t *testing.T) {
	s := New(Options{Workers: 1, QueueCap: 4})
	build := func(workers int) int {
		t.Helper()
		req := &SubmitRequest{
			Matrix: MatrixPayload{CSV: "1,2\n3,4\n"},
			FLOC:   &FLOCParams{K: 1, Delta: 5, Workers: workers},
		}
		spec, aerr := s.buildSpec(req)
		if aerr != nil {
			t.Fatalf("buildSpec(workers=%d): %v", workers, aerr)
		}
		return spec.floc.Workers
	}
	if got := build(0); got != 0 {
		t.Errorf("workers=0 resolved to %d before engine validation, want 0", got)
	}
	if got := build(1); got != 1 {
		t.Errorf("workers=1 → %d, want 1", got)
	}
	max := runtime.GOMAXPROCS(0)
	if got := build(1 << 20); got != max {
		t.Errorf("workers=1<<20 → %d, want clamp to GOMAXPROCS (%d)", got, max)
	}
}

// TestSubmitGainModeParam checks the floc.gain_mode plumbing: omitted
// and "exact" both resolve to the exact tier (the default the seed
// goldens pin), "incremental" reaches the engine config.
func TestSubmitGainModeParam(t *testing.T) {
	s := New(Options{Workers: 1, QueueCap: 4})
	build := func(mode string) floc.GainMode {
		t.Helper()
		req := &SubmitRequest{
			Matrix: MatrixPayload{CSV: "1,2\n3,4\n"},
			FLOC:   &FLOCParams{K: 1, Delta: 5, GainMode: mode},
		}
		spec, aerr := s.buildSpec(req)
		if aerr != nil {
			t.Fatalf("buildSpec(gain_mode=%q): %v", mode, aerr)
		}
		return spec.floc.GainMode
	}
	if got := build(""); got != floc.GainExact {
		t.Errorf("gain_mode omitted → %q, want %q", got, floc.GainExact)
	}
	if got := build("exact"); got != floc.GainExact {
		t.Errorf("gain_mode=exact → %q, want %q", got, floc.GainExact)
	}
	if got := build("incremental"); got != floc.GainIncremental {
		t.Errorf("gain_mode=incremental → %q, want %q", got, floc.GainIncremental)
	}
}

func TestUnknownJobIs404(t *testing.T) {
	e := newTestEnv(t, Options{Workers: 1, QueueCap: 4})
	for _, path := range []string{"/v1/jobs/jdeadbeef", "/v1/jobs/jdeadbeef/result"} {
		resp, data := e.do(t, http.MethodGet, path, nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, body %s", path, resp.StatusCode, data)
		}
	}
	resp, _ := e.do(t, http.MethodDelete, "/v1/jobs/jdeadbeef", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown: status %d, want 404", resp.StatusCode)
	}
}

func TestHealthzAndMetricsShape(t *testing.T) {
	e := newTestEnv(t, Options{Workers: 1, QueueCap: 4})
	e.s.runHook = func(context.Context, *runSpec) (*ResultView, error) {
		return &ResultView{Algorithm: AlgoFLOC}, nil
	}

	resp, data := e.do(t, http.MethodGet, "/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	var hz map[string]any
	if err := json.Unmarshal(data, &hz); err != nil {
		t.Fatal(err)
	}
	if hz["status"] != "ok" || hz["draining"] != false {
		t.Fatalf("healthz body %s", data)
	}

	id := e.submit(t, smallJobRequest(t))
	if v := e.poll(t, id, 10*time.Second); v.State != StateDone {
		t.Fatalf("job finished %s, want done", v.State)
	}

	resp, data = e.do(t, http.MethodGet, "/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	var mv MetricsView
	if err := json.Unmarshal(data, &mv); err != nil {
		t.Fatal(err)
	}
	if mv.Jobs.Submitted != 1 || mv.Jobs.Done != 1 {
		t.Fatalf("metrics %+v, want submitted=1 done=1", mv.Jobs)
	}
	if mv.Latency.Count != 1 {
		t.Fatalf("latency count = %d, want 1", mv.Latency.Count)
	}
	if len(mv.Latency.Counts) != len(mv.Latency.BucketsMillis)+1 {
		t.Fatalf("latency has %d counts for %d buckets (+Inf missing?)",
			len(mv.Latency.Counts), len(mv.Latency.BucketsMillis))
	}
}

func TestBiclusterAndCliqueJobs(t *testing.T) {
	e := newTestEnv(t, Options{Workers: 2, QueueCap: 8})

	req := smallJobRequest(t)
	req.Algorithm = AlgoBicluster
	req.FLOC = nil
	req.Bicluster = &BiclusterParams{K: 2, Delta: 10, Seed: 3}
	bid := e.submit(t, req)

	creq := smallJobRequest(t)
	creq.Algorithm = AlgoClique
	creq.FLOC = nil
	creq.Clique = &CliqueParams{Xi: 4, Tau: 0.2, MaxDims: 3}
	cid := e.submit(t, creq)

	if v := e.poll(t, bid, 30*time.Second); v.State != StateDone {
		t.Fatalf("bicluster job finished %s (error %q), want done", v.State, v.Error)
	}
	if v := e.poll(t, cid, 30*time.Second); v.State != StateDone {
		t.Fatalf("clique job finished %s (error %q), want done", v.State, v.Error)
	}

	resp, data := e.do(t, http.MethodGet, "/v1/jobs/"+bid+"/result", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bicluster result: status %d, body %s", resp.StatusCode, data)
	}
	var bres ResultView
	if err := json.Unmarshal(data, &bres); err != nil {
		t.Fatal(err)
	}
	if bres.Algorithm != AlgoBicluster {
		t.Fatalf("bicluster result algorithm %q", bres.Algorithm)
	}

	resp, data = e.do(t, http.MethodGet, "/v1/jobs/"+cid+"/result", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clique result: status %d, body %s", resp.StatusCode, data)
	}
	var cres ResultView
	if err := json.Unmarshal(data, &cres); err != nil {
		t.Fatal(err)
	}
	if cres.Algorithm != AlgoClique {
		t.Fatalf("clique result algorithm %q", cres.Algorithm)
	}
}

func TestPanickingEngineFailsJobNotWorker(t *testing.T) {
	e := newTestEnv(t, Options{Workers: 1, QueueCap: 4})
	var calls int64
	var mu sync.Mutex
	e.s.runHook = func(context.Context, *runSpec) (*ResultView, error) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n == 1 {
			panic("poisoned job")
		}
		return &ResultView{Algorithm: AlgoFLOC}, nil
	}

	bad := e.submit(t, smallJobRequest(t))
	if v := e.poll(t, bad, 10*time.Second); v.State != StateFailed ||
		!strings.Contains(v.Error, "panicked") {
		t.Fatalf("poisoned job finished %+v, want failed with a panic message", v)
	}

	// The worker survived and still serves jobs.
	good := e.submit(t, smallJobRequest(t))
	if v := e.poll(t, good, 10*time.Second); v.State != StateDone {
		t.Fatalf("follow-up job finished %s, want done", v.State)
	}
}
