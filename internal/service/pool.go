package service

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"time"

	"deltacluster/internal/bicluster"
	"deltacluster/internal/clique"
	"deltacluster/internal/cluster"
	"deltacluster/internal/floc"
	"deltacluster/internal/resilience"
)

// worker is one slot of the bounded pool: it consumes job IDs until
// the queue is closed by Shutdown. The pool size is the hard cap on
// concurrently running engines — submission never spawns goroutines.
func (s *Server) worker() {
	defer s.wg.Done()
	for id := range s.queue {
		s.runJob(id)
	}
}

// runJob executes one queued job end to end: claim, run under the
// job's own context, map the outcome to a terminal state, and flush
// any interrupted-run checkpoint.
//
// deltavet:observability — the wall-clock reads here time the job for
// metrics and logs; no clustering result depends on them.
func (s *Server) runJob(id string) {
	if s.Draining() {
		// Drain semantics: jobs that never started are cancelled, not
		// run — only in-flight work gets the grace period.
		if _, fromQueue, ok := s.store.requestCancel(id); ok && fromQueue {
			s.metrics.jobCancelledQueued()
			s.logf("deltaserve: job %s cancelled by drain before start", id)
		}
		return
	}
	spec := s.store.specOf(id)
	if spec == nil {
		return
	}

	ctx, cancel := jobContext(spec)
	if !s.store.start(id, cancel) {
		// Cancelled while queued (or evicted); nothing to run.
		cancel()
		return
	}
	s.metrics.jobStarted()
	started := time.Now()

	view, err := s.execute(ctx, id, spec)
	cancel()

	state, view, errMsg := s.outcome(id, view, err)
	s.store.finish(id, state, view, errMsg)
	s.metrics.jobFinished(state, time.Since(started))
	s.logf("deltaserve: job %s %s after %v", id, state, time.Since(started).Round(time.Millisecond))

	if state == StateCancelled || (view != nil && view.Partial) {
		s.flushCheckpoint(id)
	}
}

// jobContext builds the per-job context: cancellable always, and
// deadline-bounded when the spec asks for one.
func jobContext(spec *runSpec) (context.Context, context.CancelFunc) {
	if spec.deadline > 0 {
		return context.WithTimeout(context.Background(), spec.deadline)
	}
	return context.WithCancel(context.Background())
}

// execute dispatches to the engine (or the test hook), converting a
// panic into an error so one poisoned job cannot take down a worker.
func (s *Server) execute(ctx context.Context, id string, spec *runSpec) (view *ResultView, err error) {
	defer func() {
		if r := recover(); r != nil {
			view, err = nil, fmt.Errorf("engine panicked: %v", r)
		}
	}()
	if s.runHook != nil {
		return s.runHook(ctx, spec)
	}
	switch spec.algorithm {
	case AlgoFLOC:
		return s.runFLOC(ctx, id, spec)
	case AlgoBicluster:
		return runBicluster(ctx, spec)
	case AlgoClique:
		return runClique(ctx, spec)
	default:
		return nil, fmt.Errorf("unknown algorithm %q", spec.algorithm)
	}
}

// outcome maps an engine return to the job's terminal state. The
// rules, in order:
//
//   - complete result, no error → done;
//   - partial result + cancellation requested → cancelled, result kept;
//   - partial result otherwise (deadline) → done, marked partial;
//   - no result + cancellation requested → cancelled;
//   - no result otherwise → failed.
func (s *Server) outcome(id string, view *ResultView, err error) (JobState, *ResultView, string) {
	cancelRequested := s.store.cancelRequestedOf(id)
	switch {
	case err == nil && view != nil:
		return StateDone, view, ""
	case view != nil:
		view.Partial = true
		if cancelRequested {
			return StateCancelled, view, err.Error()
		}
		return StateDone, view, ""
	case err == nil:
		return StateFailed, nil, "engine returned no result"
	case cancelRequested:
		return StateCancelled, nil, err.Error()
	default:
		return StateFailed, nil, err.Error()
	}
}

// flushCheckpoint persists an interrupted FLOC job's last resumable
// checkpoint to the checkpoint directory, so a drain-interrupted run
// can be finished offline with `floc -resume`.
func (s *Server) flushCheckpoint(id string) {
	if s.opts.CheckpointDir == "" {
		return
	}
	ck := s.store.latestCheckpoint(id)
	if ck == nil {
		return
	}
	path := filepath.Join(s.opts.CheckpointDir, id+".dckp")
	if err := floc.WriteCheckpointFile(path, ck); err != nil {
		s.logf("deltaserve: flushing checkpoint for job %s: %v", id, err)
		return
	}
	s.logf("deltaserve: job %s checkpoint flushed to %s", id, path)
}

// runFLOC executes a FLOC job as a supervised campaign: spec.attempts
// restart attempts over rotated seeds, panic isolation, and graceful
// degradation — exactly the resilience machinery cmd/experiments
// uses, now one-per-job. Live progress and interrupted-attempt
// checkpoints are threaded into the store as they happen.
func (s *Server) runFLOC(ctx context.Context, id string, spec *runSpec) (*ResultView, error) {
	if spec.resume != nil {
		return s.resumeFLOC(ctx, id, spec)
	}
	if spec.warm != nil {
		return s.warmFLOC(ctx, id, spec)
	}
	var attemptN int64
	run := func(ctx context.Context, seed int64) (*floc.Result, error) {
		n := int(atomic.AddInt64(&attemptN, 1))
		cfg := spec.floc
		cfg.Seed = seed
		opts := s.flocRunOptions(id, n)
		opts.KeepFinalCheckpoint = true
		res, err := floc.RunWithOptions(ctx, spec.m, cfg, opts)
		if err != nil {
			var pr *floc.PartialResult
			if errors.As(err, &pr) && pr.Checkpoint != nil {
				s.store.setCheckpoint(id, pr.Checkpoint)
			}
		}
		return res, err
	}
	rep, err := resilience.Supervise(ctx, resilience.Policy{
		Attempts: spec.attempts,
		Seed:     spec.floc.Seed,
		Logf:     s.opts.Logf,
	}, run)
	if err != nil {
		return nil, err
	}
	s.keepFinal(id, rep.Best.FinalCheckpoint)
	view := &ResultView{
		Algorithm:      AlgoFLOC,
		AvgResidue:     rep.Best.AvgResidue,
		Iterations:     rep.Best.Iterations,
		BestSeed:       rep.BestSeed,
		Attempts:       len(rep.Attempts),
		DurationMillis: rep.Best.Duration.Milliseconds(),
		Clusters:       clusterViews(rep.Best.Clusters),
	}
	if rep.Degraded {
		view.Partial = true
		// Surface the context's cause so outcome() can tell an
		// explicit cancel from a deadline; a degraded-but-complete
		// campaign (nil ctx error) still counts as done.
		if cerr := ctx.Err(); cerr != nil {
			return view, cerr
		}
	}
	return view, nil
}

// flocRunOptions assembles the per-attempt RunOptions: live progress
// into the store, and — when the server checkpoints periodically —
// every boundary checkpoint into the store too, where the replication
// endpoint serves it.
func (s *Server) flocRunOptions(id string, attempt int) floc.RunOptions {
	opts := floc.RunOptions{
		OnProgress: func(p floc.Progress) {
			s.store.setProgress(id, ProgressView{
				Attempt:    attempt,
				Iteration:  p.Iteration,
				AvgResidue: p.AvgResidue,
			})
		},
	}
	if s.opts.CheckpointEvery > 0 {
		opts.CheckpointEvery = s.opts.CheckpointEvery
		opts.OnCheckpoint = func(ck *floc.Checkpoint) error {
			s.store.setCheckpoint(id, ck)
			return nil
		}
	}
	return opts
}

// warmFLOC runs a recluster child: exactly one attempt, warm-started
// from the parent's final checkpoint on the lineage's (possibly
// mutated) matrix. The spec's seed was pinned to the checkpoint's at
// child creation, so the engine continues the parent's counted RNG
// stream; when the matrix turns out not to have changed, the run is
// bit-identical to the parent's own trajectory. The child keeps its
// own final checkpoint, so reclusters chain indefinitely.
func (s *Server) warmFLOC(ctx context.Context, id string, spec *runSpec) (*ResultView, error) {
	cfg := spec.floc
	opts := s.flocRunOptions(id, 1)
	opts.WarmStart = spec.warm
	opts.KeepFinalCheckpoint = true
	res, err := floc.RunWithOptions(ctx, spec.m, cfg, opts)
	if err != nil {
		var pr *floc.PartialResult
		if !errors.As(err, &pr) {
			return nil, err
		}
		if pr.Checkpoint != nil {
			s.store.setCheckpoint(id, pr.Checkpoint)
		}
		view := flocView(pr.Result, cfg.Seed)
		view.Partial = true
		view.WarmStart = true
		return view, err
	}
	s.keepFinal(id, res.FinalCheckpoint)
	view := flocView(res, cfg.Seed)
	view.WarmStart = true
	return view, nil
}

// keepFinal records a completed run's final boundary as the job's
// recluster handle and feeds it to the replication checkpoint stream
// (which ignores it if a later-iteration periodic checkpoint already
// landed there).
func (s *Server) keepFinal(id string, ck *floc.Checkpoint) {
	if ck == nil {
		return
	}
	s.store.setFinalCheckpoint(id, ck)
	s.store.setCheckpoint(id, ck)
}

// resumeFLOC continues a migrated FLOC job from its replicated
// checkpoint: exactly one attempt, seeded as the checkpoint records,
// so the trajectory past the boundary is bit-identical to the one the
// lost backend would have produced. A resumed run that is itself
// interrupted flushes a fresh (strictly later) checkpoint, so repeated
// failovers never recompute a completed boundary.
func (s *Server) resumeFLOC(ctx context.Context, id string, spec *runSpec) (*ResultView, error) {
	s.store.setCheckpoint(id, spec.resume)
	cfg := spec.floc
	opts := s.flocRunOptions(id, 1)
	opts.Resume = spec.resume
	opts.KeepFinalCheckpoint = true
	res, err := floc.RunWithOptions(ctx, spec.m, cfg, opts)
	if err != nil {
		var pr *floc.PartialResult
		if !errors.As(err, &pr) {
			return nil, err
		}
		if pr.Checkpoint != nil {
			s.store.setCheckpoint(id, pr.Checkpoint)
		}
		view := flocView(pr.Result, cfg.Seed)
		view.Partial = true
		return view, err
	}
	s.keepFinal(id, res.FinalCheckpoint)
	return flocView(res, cfg.Seed), nil
}

// flocView renders a single-attempt FLOC result.
func flocView(res *floc.Result, seed int64) *ResultView {
	return &ResultView{
		Algorithm:      AlgoFLOC,
		AvgResidue:     res.AvgResidue,
		Iterations:     res.Iterations,
		BestSeed:       seed,
		Attempts:       1,
		DurationMillis: res.Duration.Milliseconds(),
		Clusters:       clusterViews(res.Clusters),
	}
}

func runBicluster(ctx context.Context, spec *runSpec) (*ResultView, error) {
	res, err := bicluster.RunContext(ctx, spec.m, spec.bic)
	if err != nil {
		var pr *bicluster.PartialResult
		if errors.As(err, &pr) && pr.Result != nil && len(pr.Result.Biclusters) > 0 {
			return biclusterView(pr.Result), err
		}
		return nil, err
	}
	return biclusterView(res), nil
}

func biclusterView(res *bicluster.Result) *ResultView {
	return &ResultView{
		Algorithm:      AlgoBicluster,
		DurationMillis: res.Duration.Milliseconds(),
		Clusters:       clusterViews(res.Biclusters),
	}
}

func runClique(ctx context.Context, spec *runSpec) (*ResultView, error) {
	res, err := clique.RunContext(ctx, spec.m, spec.clq)
	if err != nil {
		var pr *clique.PartialResult
		if errors.As(err, &pr) && pr.Result != nil && len(pr.Result.Clusters) > 0 {
			return cliqueView(pr.Result), err
		}
		return nil, err
	}
	return cliqueView(res), nil
}

func cliqueView(res *clique.Result) *ResultView {
	v := &ResultView{
		Algorithm:      AlgoClique,
		DurationMillis: res.Duration.Milliseconds(),
		Subspaces:      make([]SubspaceView, 0, len(res.Clusters)),
	}
	for _, c := range res.Clusters {
		v.Subspaces = append(v.Subspaces, SubspaceView{Dims: c.Dims, Points: c.Points})
	}
	return v
}

// clusterViews renders clusters in the engine's reported order.
func clusterViews(clusters []*cluster.Cluster) []ClusterView {
	out := make([]ClusterView, 0, len(clusters))
	for _, c := range clusters {
		spec := c.Spec()
		out = append(out, ClusterView{
			Rows:    spec.Rows,
			Cols:    spec.Cols,
			Volume:  c.Volume(),
			Residue: c.Residue(),
		})
	}
	return out
}
