// Binary transport: large matrices skip JSON float parsing entirely.
//
// A submission with Content-Type application/x-deltacluster-matrix
// carries a DSUB envelope — the submission parameters as JSON, framed
// and checksummed exactly like a DCKP checkpoint, followed by the
// matrix as a self-checksummed DCMX section (internal/matrix). The
// same envelope, with DispatchRequest parameters, rides the internal
// dispatch route so the coordinator can proxy the matrix bytes
// verbatim. A result fetched with Accept: x-deltacluster-matrix comes
// back as a DRES envelope (result JSON, framed the same way).
//
//	offset  size  field
//	0       4     magic ("DSUB" or "DRES")
//	4       4     format version (uint32 LE, currently 1)
//	8       8     params length n (uint64 LE)
//	16      n     params JSON
//	16+n    32    SHA-256 of params JSON
//	48+n    —     DCMX matrix section (DSUB only; absent in DRES)

package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"deltacluster/internal/matrix"
)

// ContentTypeBinaryMatrix is the Content-Type of binary submissions
// and the Accept value of binary result downloads.
const ContentTypeBinaryMatrix = matrix.BinaryContentType

const (
	submitMagic = "DSUB"
	resultMagic = "DRES"

	envelopeVersion   = 1
	envelopeHeaderLen = 16
)

// isBinaryContentType matches the binary MIME type, tolerating
// parameters ("; charset=...") after it.
func isBinaryContentType(ct string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == ContentTypeBinaryMatrix
}

// acceptsBinary reports whether an Accept header asks for the binary
// result encoding.
func acceptsBinary(accept string) bool {
	return strings.Contains(accept, ContentTypeBinaryMatrix)
}

// encodeEnvelope frames params (JSON) under the given magic and
// appends the optional trailer verbatim.
func encodeEnvelope(magic string, params, trailer []byte) []byte {
	buf := make([]byte, 0, envelopeHeaderLen+len(params)+sha256.Size+len(trailer))
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, envelopeVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(params)))
	buf = append(buf, params...)
	sum := sha256.Sum256(params)
	buf = append(buf, sum[:]...)
	return append(buf, trailer...)
}

// decodeEnvelope verifies the framing under the given magic and
// returns the params JSON and whatever trails the checksum (the DCMX
// section for DSUB; empty for DRES). Framing is checked before any
// payload byte is interpreted: magic, version, declared length, then
// the checksum.
func decodeEnvelope(magic string, data []byte) (params, trailer []byte, err error) {
	if len(data) < envelopeHeaderLen || string(data[:4]) != magic {
		return nil, nil, fmt.Errorf("not a %s envelope (bad magic)", magic)
	}
	version := binary.LittleEndian.Uint32(data[4:8])
	if version != envelopeVersion {
		return nil, nil, fmt.Errorf("unsupported %s envelope version %d", magic, version)
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	if uint64(len(data)-envelopeHeaderLen) < n || len(data)-envelopeHeaderLen-int(n) < sha256.Size {
		return nil, nil, fmt.Errorf("%s envelope truncated", magic)
	}
	params = data[envelopeHeaderLen : envelopeHeaderLen+int(n)]
	sum := sha256.Sum256(params)
	if !bytes.Equal(sum[:], data[envelopeHeaderLen+int(n):envelopeHeaderLen+int(n)+sha256.Size]) {
		return nil, nil, fmt.Errorf("%s envelope checksum mismatch", magic)
	}
	return params, data[envelopeHeaderLen+int(n)+sha256.Size:], nil
}

// EncodeBinarySubmit renders a client-side binary submission: req
// (whose Matrix payload must be empty — the matrix travels beside it)
// plus the matrix as a DCMX section. cmd/datagen -binary and the
// tests build request bodies with this.
func EncodeBinarySubmit(req *SubmitRequest, m *matrix.Matrix) ([]byte, error) {
	if len(req.Matrix.Rows) > 0 || req.Matrix.CSV != "" {
		return nil, fmt.Errorf("binary submit: the matrix travels as the DCMX section; matrix.rows/csv must be empty")
	}
	params, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("binary submit: encoding params: %w", err)
	}
	return encodeEnvelope(submitMagic, params, matrix.EncodeBinary(m)), nil
}

// DecodeBinarySubmit parses a DSUB client submission into its
// SubmitRequest parameters and the raw DCMX section. The section is
// returned unopened — a proxy forwards it verbatim and the executing
// backend verifies its checksum, so the matrix's integrity is checked
// exactly once, at the point where the bytes are actually interpreted.
func DecodeBinarySubmit(data []byte) (*SubmitRequest, []byte, error) {
	params, dcmx, err := decodeEnvelope(submitMagic, data)
	if err != nil {
		return nil, nil, err
	}
	var req SubmitRequest
	dec := json.NewDecoder(bytes.NewReader(params))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, nil, fmt.Errorf("params: %v", err)
	}
	if len(req.Matrix.Rows) > 0 || req.Matrix.CSV != "" {
		return nil, nil, errors.New("the matrix travels as the DCMX section; matrix.rows/csv must be empty")
	}
	return &req, dcmx, nil
}

// EncodeBinaryDispatch renders a coordinator-side binary dispatch: the
// DispatchRequest parameters framed ahead of the client's original
// DCMX bytes, which are forwarded verbatim — the backend re-verifies
// their checksum, so coordinator proxying cannot corrupt the matrix
// silently.
func EncodeBinaryDispatch(req *DispatchRequest, dcmx []byte) ([]byte, error) {
	if len(req.Submit.Matrix.Rows) > 0 || req.Submit.Matrix.CSV != "" {
		return nil, fmt.Errorf("binary dispatch: the matrix travels as the DCMX section; submit.matrix must be empty")
	}
	params, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("binary dispatch: encoding params: %w", err)
	}
	return encodeEnvelope(submitMagic, params, dcmx), nil
}

// DecodeBinaryResult parses a DRES result download back into a
// ResultView — the client-side complement of the binary result path.
func DecodeBinaryResult(data []byte) (*ResultView, error) {
	params, trailer, err := decodeEnvelope(resultMagic, data)
	if err != nil {
		return nil, err
	}
	if len(trailer) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after %s envelope", len(trailer), resultMagic)
	}
	var res ResultView
	if err := json.Unmarshal(params, &res); err != nil {
		return nil, fmt.Errorf("decoding %s result params: %w", resultMagic, err)
	}
	return &res, nil
}

// readFullBody drains a MaxBytesReader-bounded body into a pooled
// buffer. The returned bytes alias the buffer — the caller must
// finish with them before putBodyBuf.
func (s *Server) readFullBody(w http.ResponseWriter, r *http.Request) (*bytes.Buffer, []byte, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	buf := bodyBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if _, err := buf.ReadFrom(r.Body); err != nil {
		putBodyBuf(buf)
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeInvalidRequest,
				"request body exceeds %d bytes", tooLarge.Limit)
			return nil, nil, false
		}
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "reading request body: %v", err)
		return nil, nil, false
	}
	return buf, buf.Bytes(), true
}

var bodyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func putBodyBuf(buf *bytes.Buffer) {
	// Oversized one-off bodies are dropped instead of pinned in the
	// pool forever.
	if buf.Cap() > 4<<20 {
		return
	}
	bodyBufPool.Put(buf)
}

// handleSubmitBinary is the binary branch of POST /v1/jobs: a DSUB
// envelope instead of a JSON body. The decoded matrix feeds the same
// buildSpecWith/enqueue path as a JSON submission, which is what makes
// the two transports bit-identical in outcome.
func (s *Server) handleSubmitBinary(w http.ResponseWriter, r *http.Request) {
	buf, body, ok := s.readFullBody(w, r)
	if !ok {
		return
	}
	defer putBodyBuf(buf)
	params, dcmx, err := decodeEnvelope(submitMagic, body)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "binary submit: %v", err)
		return
	}
	var req SubmitRequest
	dec := json.NewDecoder(bytes.NewReader(params))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "binary submit params: %v", err)
		return
	}
	if len(req.Matrix.Rows) > 0 || req.Matrix.CSV != "" {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest,
			"binary submit: the matrix travels as the DCMX section; matrix.rows/csv must be empty")
		return
	}
	m, err := matrix.DecodeBinary(dcmx, s.opts.MaxMatrixEntries)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "binary submit: %v", err)
		return
	}
	spec, aerr := s.buildSpecWith(&req, m)
	if aerr != nil {
		writeError(w, aerr.status, aerr.code, "%s", aerr.message)
		return
	}
	s.store.sweep()
	id := s.store.create(spec)
	if !s.enqueue(w, id) {
		return
	}
	view, _ := s.store.view(id)
	w.Header().Set("Location", "/v1/jobs/"+id)
	writeJSON(w, http.StatusAccepted, SubmitResponse{Job: view})
}

// handleDispatchBinary is the binary branch of POST /v1/internal/jobs:
// DispatchRequest params framed ahead of coordinator-proxied DCMX
// bytes. The checksum re-verification in DecodeBinary is the
// end-to-end integrity guarantee of the proxy path.
func (s *Server) handleDispatchBinary(w http.ResponseWriter, r *http.Request) {
	buf, body, ok := s.readFullBody(w, r)
	if !ok {
		return
	}
	defer putBodyBuf(buf)
	params, dcmx, err := decodeEnvelope(submitMagic, body)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "binary dispatch: %v", err)
		return
	}
	var req DispatchRequest
	dec := json.NewDecoder(bytes.NewReader(params))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "binary dispatch params: %v", err)
		return
	}
	if len(req.Submit.Matrix.Rows) > 0 || req.Submit.Matrix.CSV != "" {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest,
			"binary dispatch: the matrix travels as the DCMX section; submit.matrix must be empty")
		return
	}
	m, err := matrix.DecodeBinary(dcmx, s.opts.MaxMatrixEntries)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "binary dispatch: %v", err)
		return
	}
	s.dispatchCore(w, &req, m)
}

// writeBinaryResult renders a ResultView as a DRES envelope — the
// binary result download.
func writeBinaryResult(w http.ResponseWriter, res *ResultView) {
	params, err := json.Marshal(res)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, "encoding result: %v", err)
		return
	}
	data := encodeEnvelope(resultMagic, params, nil)
	w.Header().Set("Content-Type", ContentTypeBinaryMatrix)
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}
