package service

import (
	"testing"
	"time"

	"deltacluster/internal/floc"
)

func testSpec() *runSpec { return &runSpec{algorithm: AlgoFLOC} }

// TestJobIDsAreDeterministic: a store's ID sequence is a pure function
// of its seed — replayable in tests, log-correlatable across restarts.
func TestJobIDsAreDeterministic(t *testing.T) {
	now := func() time.Time { return time.Unix(0, 0) }
	a := newJobStore(7, time.Minute, now)
	b := newJobStore(7, time.Minute, now)
	c := newJobStore(8, time.Minute, now)

	var fromA, fromB, fromC []string
	for i := 0; i < 16; i++ {
		fromA = append(fromA, a.create(testSpec()))
		fromB = append(fromB, b.create(testSpec()))
		fromC = append(fromC, c.create(testSpec()))
	}
	for i := range fromA {
		if fromA[i] != fromB[i] {
			t.Fatalf("ID %d diverged between equal seeds: %s vs %s", i, fromA[i], fromB[i])
		}
	}
	diverged := false
	for i := range fromA {
		if fromA[i] != fromC[i] {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds issued identical ID sequences")
	}
	seen := make(map[string]bool)
	for _, id := range fromA {
		if seen[id] {
			t.Fatalf("duplicate ID %s in one store", id)
		}
		seen[id] = true
	}
}

func TestStoreLifecycleTransitions(t *testing.T) {
	st := newJobStore(1, time.Minute, func() time.Time { return time.Unix(0, 0) })
	id := st.create(testSpec())

	if v, ok := st.view(id); !ok || v.State != StateQueued {
		t.Fatalf("fresh job view %+v ok=%v, want queued", v, ok)
	}
	if !st.start(id, func() {}) {
		t.Fatal("start of a queued job failed")
	}
	if st.start(id, func() {}) {
		t.Fatal("second start of the same job succeeded")
	}
	st.finish(id, StateDone, &ResultView{Algorithm: AlgoFLOC}, "")
	if v, _ := st.view(id); v.State != StateDone {
		t.Fatalf("state %s after finish, want done", v.State)
	}
	// Finishing again (e.g. a late drain pass) is a no-op.
	st.finish(id, StateFailed, nil, "late")
	if v, _ := st.view(id); v.State != StateDone || v.Error != "" {
		t.Fatalf("terminal job was overwritten: %+v", v)
	}
}

func TestStoreCancelQueuedVsRunning(t *testing.T) {
	st := newJobStore(1, time.Minute, func() time.Time { return time.Unix(0, 0) })

	queued := st.create(testSpec())
	v, fromQueue, ok := st.requestCancel(queued)
	if !ok || !fromQueue || v.State != StateCancelled {
		t.Fatalf("cancel queued: view %+v fromQueue=%v ok=%v", v, fromQueue, ok)
	}
	if st.start(queued, func() {}) {
		t.Fatal("a cancelled queued job was started")
	}

	running := st.create(testSpec())
	fired := false
	if !st.start(running, func() { fired = true }) {
		t.Fatal("start failed")
	}
	v, fromQueue, ok = st.requestCancel(running)
	if !ok || fromQueue {
		t.Fatalf("cancel running: fromQueue=%v ok=%v", fromQueue, ok)
	}
	if v.State != StateRunning || !v.CancelRequested {
		t.Fatalf("cancel running: view %+v, want running with cancel_requested", v)
	}
	if !fired {
		t.Fatal("cancelling a running job did not fire its cancel function")
	}

	if _, _, ok := st.requestCancel("jmissing"); ok {
		t.Fatal("cancelling an unknown job reported ok")
	}
}

func TestStoreTTLEviction(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	st := newJobStore(1, time.Minute, clock.now)

	id := st.create(testSpec())
	st.start(id, func() {})
	st.finish(id, StateDone, &ResultView{Algorithm: AlgoFLOC}, "")

	// A running job never expires, no matter how old.
	live := st.create(testSpec())
	st.start(live, func() {})

	clock.advance(2 * time.Minute)
	st.sweep()

	if _, ok := st.view(id); ok {
		t.Fatal("terminal job survived the TTL sweep")
	}
	if _, ok := st.view(live); !ok {
		t.Fatal("running job was evicted by the TTL sweep")
	}

	// Lazy eviction: even without a sweep, reads see expired jobs as
	// gone.
	done2 := st.create(testSpec())
	st.start(done2, func() {})
	st.finish(done2, StateDone, nil, "")
	clock.advance(2 * time.Minute)
	if _, ok := st.view(done2); ok {
		t.Fatal("view returned an expired job")
	}
	if _, _, ok := st.result(done2); ok {
		t.Fatal("result returned an expired job")
	}
}

func TestStoreCheckpointHandoff(t *testing.T) {
	st := newJobStore(1, time.Minute, func() time.Time { return time.Unix(0, 0) })
	id := st.create(testSpec())

	if ck := st.latestCheckpoint(id); ck != nil {
		t.Fatal("fresh job has a checkpoint")
	}
	// Checkpoints are monotonic by boundary iteration: a stale write
	// (a slow attempt racing a fresher boundary) never regresses the
	// replication stream, and reads do not drain the stored state.
	st.setCheckpoint(id, &floc.Checkpoint{Iterations: 4})
	st.setCheckpoint(id, &floc.Checkpoint{Iterations: 2})
	if ck := st.latestCheckpoint(id); ck == nil || ck.Iterations != 4 {
		t.Fatalf("stale checkpoint overwrote a fresher one: %+v", ck)
	}
	st.setCheckpoint(id, &floc.Checkpoint{Iterations: 5})
	if ck := st.latestCheckpoint(id); ck == nil || ck.Iterations != 5 {
		t.Fatalf("fresher checkpoint not stored: %+v", ck)
	}
	if ck := st.latestCheckpoint(id); ck == nil {
		t.Fatal("latestCheckpoint drained the stored checkpoint")
	}
	st.start(id, func() {})
	st.setProgress(id, ProgressView{Attempt: 1, Iteration: 3, AvgResidue: 2.5})
	v, _ := st.view(id)
	if v.Progress == nil || v.Progress.Iteration != 3 {
		t.Fatalf("progress not visible in view: %+v", v)
	}
}

func TestRetryAfterSecondsRoundsUp(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{100 * time.Millisecond, 1},
		{time.Second, 1},
		{1100 * time.Millisecond, 2},
		{5 * time.Second, 5},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestCancelAllRunning(t *testing.T) {
	st := newJobStore(1, time.Minute, func() time.Time { return time.Unix(0, 0) })

	var fired int
	running := st.create(testSpec())
	st.start(running, func() { fired++ })
	queued := st.create(testSpec())
	done := st.create(testSpec())
	st.start(done, func() { fired++ })
	st.finish(done, StateDone, nil, "")

	st.cancelAllRunning()
	if fired != 1 {
		t.Fatalf("%d cancel functions fired, want 1 (only the running job)", fired)
	}
	if !st.cancelRequestedOf(running) {
		t.Fatal("running job not marked cancel-requested")
	}
	if st.cancelRequestedOf(queued) {
		t.Fatal("queued job was marked cancel-requested by cancelAllRunning")
	}
}
