package service

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"reflect"
	"testing"
	"time"

	"deltacluster/internal/stats"
	"deltacluster/internal/synth"
)

// streamJobRequest is the streaming suite's submission: a planted
// matrix large enough that a random-seeded cold run pays several
// improving iterations (so the job keeps a final checkpoint a
// recluster can warm-start from). The recipe mirrors the floc warm-
// start suite's proven scenario.
func streamJobRequest(t *testing.T, seed int64) *SubmitRequest {
	t.Helper()
	ds, err := synth.Generate(synth.Config{
		Rows: 200, Cols: 18, NumClusters: 4,
		VolumeMean: 50, VolumeVariance: 0, RowColRatio: 4,
		TargetResidue: 3,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	m := ds.Matrix
	rng := stats.NewRNG(seed * 31)
	rows := make([][]float64, m.Rows())
	for i := range rows {
		r := make([]float64, m.Cols())
		for j := range r {
			if rng.Bool(0.03) {
				r[j] = math.NaN() // missing; RowsJSON renders it as null
				continue
			}
			r[j] = m.Get(i, j)
		}
		rows[i] = r
	}
	return &SubmitRequest{
		Algorithm: AlgoFLOC,
		Matrix:    MatrixPayload{Rows: RowsJSON(rows)},
		FLOC:      &FLOCParams{K: 4, Delta: 10, Seed: 7, Seeding: "random"},
	}
}

// smallDelta is the suite's planted mutation batch: one appended row,
// one update, one retraction.
func smallDelta() *MatrixPatchRequest {
	row := make([]*float64, 18)
	for j := range row {
		v := 0.25 * float64(j)
		row[j] = &v
	}
	up := 1.5
	return &MatrixPatchRequest{
		AppendRows: [][]*float64{row},
		Updates:    []CellPatch{{Row: 2, Col: 3, Value: &up}},
		Retract:    []CellRef{{Row: 8, Col: 1}},
	}
}

func (e *testEnv) patch(t *testing.T, id string, req *MatrixPatchRequest) MatrixPatchResponse {
	t.Helper()
	resp, data := e.do(t, http.MethodPatch, "/v1/jobs/"+id+"/matrix", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patch %s: status %d, body %s", id, resp.StatusCode, data)
	}
	var pr MatrixPatchResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	return pr
}

func (e *testEnv) recluster(t *testing.T, id string) ReclusterResponse {
	t.Helper()
	resp, data := e.do(t, http.MethodPost, "/v1/jobs/"+id+":recluster", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("recluster %s: status %d, body %s", id, resp.StatusCode, data)
	}
	var rr ReclusterResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		t.Fatal(err)
	}
	return rr
}

func (e *testEnv) resultView(t *testing.T, id string) ResultView {
	t.Helper()
	resp, data := e.do(t, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: status %d, body %s", id, resp.StatusCode, data)
	}
	var res ResultView
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestStreamPatchReclusterEndToEnd walks the whole deltastream loop
// through the HTTP surface: submit → converge → PATCH a delta →
// recluster warm → converge again in fewer iterations than the
// equivalent cold run — then patch and recluster again off the child,
// proving lineages chain.
func TestStreamPatchReclusterEndToEnd(t *testing.T) {
	e := newTestEnv(t, Options{Workers: 2, QueueCap: 8})
	req := streamJobRequest(t, 1)

	parent := e.submit(t, req)
	if v := e.poll(t, parent, 60*time.Second); v.State != StateDone {
		t.Fatalf("parent finished %s (%s)", v.State, v.Error)
	}
	parentRes := e.resultView(t, parent)
	if parentRes.Iterations < 1 {
		t.Fatalf("parent converged in %d iterations; the suite needs a discovering run", parentRes.Iterations)
	}

	// Patch the lineage matrix: one appended row, one update, one
	// retraction.
	pr := e.patch(t, parent, smallDelta())
	if pr.MatrixVersion != 1 || pr.Rows != 201 || pr.Cols != 18 {
		t.Fatalf("patch outcome %+v, want version 1 of a 201x18 matrix", pr)
	}
	if pr.Lineage != parent {
		t.Fatalf("patch lineage %q, want root %q", pr.Lineage, parent)
	}

	// An invalid patch (ragged appended row) is rejected outright and
	// does not advance the version.
	bad := &MatrixPatchRequest{AppendRows: [][]*float64{make([]*float64, 3)}}
	resp, data := e.do(t, http.MethodPatch, "/v1/jobs/"+parent+"/matrix", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ragged patch: status %d, body %s", resp.StatusCode, data)
	}

	// Recluster: a warm-start child on the patched matrix.
	rr := e.recluster(t, parent)
	if rr.ParentID != parent || rr.Job.ParentID != parent {
		t.Fatalf("recluster parentage %+v, want parent %s", rr, parent)
	}
	if rr.WarmFromIteration != parentRes.Iterations {
		t.Fatalf("warm_from_iteration = %d, want the parent's final boundary %d",
			rr.WarmFromIteration, parentRes.Iterations)
	}
	if rr.Job.MatrixVersion != 1 {
		t.Fatalf("child matrix_version = %d, want 1", rr.Job.MatrixVersion)
	}
	if v := e.poll(t, rr.Job.ID, 60*time.Second); v.State != StateDone {
		t.Fatalf("child finished %s (%s)", v.State, v.Error)
	}
	childRes := e.resultView(t, rr.Job.ID)
	if !childRes.WarmStart {
		t.Fatal("child result is not flagged warm_start")
	}
	if childRes.Iterations >= parentRes.Iterations {
		t.Fatalf("warm child took %d iterations, parent's cold run %d — the delta was small",
			childRes.Iterations, parentRes.Iterations)
	}

	// The lineage chains: patch again and recluster off the child.
	pr2 := e.patch(t, rr.Job.ID, smallDelta())
	if pr2.MatrixVersion != 2 || pr2.Rows != 202 {
		t.Fatalf("second patch outcome %+v, want version 2 with 202 rows", pr2)
	}
	if pr2.Lineage != parent {
		t.Fatalf("second patch lineage %q, want root %q", pr2.Lineage, parent)
	}
	rr2 := e.recluster(t, rr.Job.ID)
	if rr2.Job.ParentID != rr.Job.ID || rr2.Job.MatrixVersion != 2 {
		t.Fatalf("grandchild view %+v, want parent %s at version 2", rr2.Job, rr.Job.ID)
	}
	if v := e.poll(t, rr2.Job.ID, 60*time.Second); v.State != StateDone {
		t.Fatalf("grandchild finished %s (%s)", v.State, v.Error)
	}
}

// TestStreamReclusterEmptyDeltaMatchesParent pins the service-level
// half of the equivalence guarantee: reclustering without any patch
// resumes the parent's exact trajectory, so the child's result —
// residue, iteration count, every cluster membership — equals the
// parent's.
func TestStreamReclusterEmptyDeltaMatchesParent(t *testing.T) {
	e := newTestEnv(t, Options{Workers: 2, QueueCap: 8})
	parent := e.submit(t, streamJobRequest(t, 2))
	if v := e.poll(t, parent, 60*time.Second); v.State != StateDone {
		t.Fatalf("parent finished %s (%s)", v.State, v.Error)
	}
	parentRes := e.resultView(t, parent)

	rr := e.recluster(t, parent)
	if v := e.poll(t, rr.Job.ID, 60*time.Second); v.State != StateDone {
		t.Fatalf("child finished %s (%s)", v.State, v.Error)
	}
	childRes := e.resultView(t, rr.Job.ID)
	if !childRes.WarmStart {
		t.Fatal("child result is not flagged warm_start")
	}
	if childRes.AvgResidue != parentRes.AvgResidue || childRes.Iterations != parentRes.Iterations {
		t.Fatalf("empty-delta recluster diverged: child (residue %v, %d iterations), parent (residue %v, %d iterations)",
			childRes.AvgResidue, childRes.Iterations, parentRes.AvgResidue, parentRes.Iterations)
	}
	if !reflect.DeepEqual(childRes.Clusters, parentRes.Clusters) {
		t.Fatal("empty-delta recluster produced different clusters than the parent")
	}
}

// TestStreamLineageBusyConflicts is the race guard: while a recluster
// child of the lineage is running, both a matrix PATCH and a second
// recluster are refused with 409 lineage_busy — never silently
// applied. Once the child settles, the same requests succeed.
func TestStreamLineageBusyConflicts(t *testing.T) {
	e := newTestEnv(t, Options{Workers: 2, QueueCap: 8})
	parent := e.submit(t, streamJobRequest(t, 3))
	if v := e.poll(t, parent, 60*time.Second); v.State != StateDone {
		t.Fatalf("parent finished %s (%s)", v.State, v.Error)
	}

	// Block every subsequent run (the recluster child included) until
	// released, so the busy window is deterministic.
	release := make(chan struct{})
	running := make(chan struct{}, 1)
	e.s.runHook = func(ctx context.Context, _ *runSpec) (*ResultView, error) {
		running <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return &ResultView{Algorithm: AlgoFLOC}, nil
	}

	rr := e.recluster(t, parent)
	select {
	case <-running:
	case <-time.After(10 * time.Second):
		t.Fatal("recluster child never started")
	}

	// PATCH races the running recluster → 409 lineage_busy.
	resp, data := e.do(t, http.MethodPatch, "/v1/jobs/"+parent+"/matrix", smallDelta())
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("patch during recluster: status %d, body %s", resp.StatusCode, data)
	}
	if detail := decodeError(t, data); detail.Code != CodeLineageBusy {
		t.Fatalf("patch during recluster: code %q, want %q", detail.Code, CodeLineageBusy)
	}

	// A second recluster on the same lineage → 409 lineage_busy too.
	resp, data = e.do(t, http.MethodPost, "/v1/jobs/"+parent+":recluster", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second recluster: status %d, body %s", resp.StatusCode, data)
	}
	if detail := decodeError(t, data); detail.Code != CodeLineageBusy {
		t.Fatalf("second recluster: code %q, want %q", detail.Code, CodeLineageBusy)
	}

	close(release)
	if v := e.poll(t, rr.Job.ID, 10*time.Second); v.State != StateDone {
		t.Fatalf("child finished %s (%s)", v.State, v.Error)
	}

	// Idle again: the patch lands.
	pr := e.patch(t, parent, smallDelta())
	if pr.MatrixVersion != 1 {
		t.Fatalf("post-settle patch version = %d, want 1", pr.MatrixVersion)
	}

	// The conflicts were counted.
	resp, data = e.do(t, http.MethodGet, "/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	var mv MetricsView
	if err := json.Unmarshal(data, &mv); err != nil {
		t.Fatal(err)
	}
	if mv.Jobs.LineageConflicts < 2 {
		t.Fatalf("lineage_conflicts = %d, want ≥ 2", mv.Jobs.LineageConflicts)
	}
	if mv.Jobs.MatrixPatches != 1 {
		t.Fatalf("matrix_patches = %d, want 1", mv.Jobs.MatrixPatches)
	}
	if mv.Jobs.Reclustered != 1 {
		t.Fatalf("reclustered = %d, want 1", mv.Jobs.Reclustered)
	}
}

// TestStreamValidationErrors exercises the refusal surface of the
// streaming endpoints.
func TestStreamValidationErrors(t *testing.T) {
	e := newTestEnv(t, Options{Workers: 1, QueueCap: 8})

	// Unknown jobs.
	resp, data := e.do(t, http.MethodPatch, "/v1/jobs/jdeadbeef/matrix", smallDelta())
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("patch unknown job: status %d, body %s", resp.StatusCode, data)
	}
	resp, data = e.do(t, http.MethodPost, "/v1/jobs/jdeadbeef:recluster", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("recluster unknown job: status %d, body %s", resp.StatusCode, data)
	}

	// An action-less POST on a job path is not a route.
	resp, data = e.do(t, http.MethodPost, "/v1/jobs/jdeadbeef", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST without action: status %d, body %s", resp.StatusCode, data)
	}

	// Streaming is FLOC-only.
	bicReq := &SubmitRequest{
		Algorithm: AlgoBicluster,
		Matrix:    MatrixPayload{CSV: "1,2,3\n4,5,6\n7,8,9\n1,3,5\n"},
		Bicluster: &BiclusterParams{K: 1, Delta: 5},
	}
	bicID := e.submit(t, bicReq)
	e.poll(t, bicID, 30*time.Second)
	resp, data = e.do(t, http.MethodPatch, "/v1/jobs/"+bicID+"/matrix", smallDelta())
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("patch bicluster job: status %d, body %s", resp.StatusCode, data)
	}
	resp, data = e.do(t, http.MethodPost, "/v1/jobs/"+bicID+":recluster", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("recluster bicluster job: status %d, body %s", resp.StatusCode, data)
	}

	// Reclustering a non-terminal job is a 409.
	release := make(chan struct{})
	defer close(release)
	running := make(chan struct{}, 1)
	e.s.runHook = func(ctx context.Context, _ *runSpec) (*ResultView, error) {
		running <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return &ResultView{Algorithm: AlgoFLOC}, nil
	}
	id := e.submit(t, streamJobRequest(t, 4))
	<-running
	resp, data = e.do(t, http.MethodPost, "/v1/jobs/"+id+":recluster", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("recluster running job: status %d, body %s", resp.StatusCode, data)
	}
	if detail := decodeError(t, data); detail.Code != CodeJobNotDone {
		t.Fatalf("recluster running job: code %q, want %q", detail.Code, CodeJobNotDone)
	}

	// An empty patch is rejected.
	resp, data = e.do(t, http.MethodPatch, "/v1/jobs/"+id+"/matrix", &MatrixPatchRequest{})
	if resp.StatusCode != http.StatusConflict && resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty patch: status %d, body %s", resp.StatusCode, data)
	}
}

// TestDispatchReconstructsLineage is the coordinator failover
// contract, spoken directly: the original submission plus the recorded
// patches plus the parent's replicated checkpoint, dispatched to a
// completely separate node, produces bit-for-bit the same warm-start
// result the owner's own recluster child produced.
func TestDispatchReconstructsLineage(t *testing.T) {
	owner := newTestEnv(t, Options{Workers: 2, QueueCap: 8})
	req := streamJobRequest(t, 5)

	parent := owner.submit(t, req)
	if v := owner.poll(t, parent, 60*time.Second); v.State != StateDone {
		t.Fatalf("parent finished %s (%s)", v.State, v.Error)
	}

	// Download the parent's final checkpoint (the replication surface
	// the coordinator polls).
	resp, ckBytes := owner.do(t, http.MethodGet, "/v1/internal/jobs/"+parent+"/checkpoint", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint download: status %d", resp.StatusCode)
	}

	// Owner-side recluster after a patch.
	delta := smallDelta()
	owner.patch(t, parent, delta)
	rr := owner.recluster(t, parent)
	if v := owner.poll(t, rr.Job.ID, 60*time.Second); v.State != StateDone {
		t.Fatalf("owner child finished %s (%s)", v.State, v.Error)
	}
	ownerRes := owner.resultView(t, rr.Job.ID)

	// Failover node: reconstruct from submission + patches + warm
	// checkpoint.
	fallback := newTestEnv(t, Options{Workers: 2, QueueCap: 8})
	var dispatched struct {
		Job               JobView `json:"job"`
		WarmFromIteration int     `json:"warm_from_iteration"`
		MatrixVersion     int     `json:"matrix_version"`
	}
	resp, data := fallback.do(t, http.MethodPost, "/v1/internal/jobs", &DispatchRequest{
		ID:                  "jrebuilt0000000001",
		Submit:              *req,
		Patches:             []MatrixPatchRequest{*delta},
		WarmStartCheckpoint: ckBytes,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("dispatch: status %d, body %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &dispatched); err != nil {
		t.Fatal(err)
	}
	if dispatched.MatrixVersion != 1 || dispatched.WarmFromIteration == 0 {
		t.Fatalf("dispatch response %s, want matrix_version 1 and a warm boundary", data)
	}
	if v := fallback.poll(t, dispatched.Job.ID, 60*time.Second); v.State != StateDone {
		t.Fatalf("rebuilt child finished %s (%s)", v.State, v.Error)
	}
	rebuiltRes := fallback.resultView(t, dispatched.Job.ID)

	if !rebuiltRes.WarmStart {
		t.Fatal("rebuilt result is not flagged warm_start")
	}
	if rebuiltRes.AvgResidue != ownerRes.AvgResidue || rebuiltRes.Iterations != ownerRes.Iterations {
		t.Fatalf("rebuilt warm run diverged: (residue %v, %d iterations) vs owner (residue %v, %d iterations)",
			rebuiltRes.AvgResidue, rebuiltRes.Iterations, ownerRes.AvgResidue, ownerRes.Iterations)
	}
	if !reflect.DeepEqual(rebuiltRes.Clusters, ownerRes.Clusters) {
		t.Fatal("rebuilt warm run produced different clusters than the owner's recluster")
	}
}
