package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"deltacluster/internal/floc"
	"deltacluster/internal/synth"
)

// flocTestCSV caches the synthetic workload shared by the tests in
// this file: the 3000×100 matrix the interrupted-job test uses, big
// enough that iterations take visible wall time (so a poll loop can
// catch iteration 1 before convergence) on any machine.
var flocTestCSV struct {
	once sync.Once
	csv  string
	err  error
}

// flocTestSubmit builds a deliberately slow FLOC submission: dozens of
// improving iterations under random seeding — enough boundaries to
// checkpoint, cancel at and resume from before the run converges.
func flocTestSubmit(t *testing.T) *SubmitRequest {
	t.Helper()
	flocTestCSV.once.Do(func() {
		ds, err := synth.Generate(synth.Config{
			Rows: 3000, Cols: 100, NumClusters: 30,
			VolumeMean: 900, VolumeVariance: 0, RowColRatio: 5,
			TargetResidue: 4,
		}, 42)
		if err != nil {
			flocTestCSV.err = err
			return
		}
		var csv strings.Builder
		for i := 0; i < ds.Matrix.Rows(); i++ {
			for j := 0; j < ds.Matrix.Cols(); j++ {
				if j > 0 {
					csv.WriteByte(',')
				}
				if ds.Matrix.IsSpecified(i, j) {
					fmt.Fprintf(&csv, "%g", ds.Matrix.Get(i, j))
				}
			}
			csv.WriteByte('\n')
		}
		flocTestCSV.csv = csv.String()
	})
	if flocTestCSV.err != nil {
		t.Fatal(flocTestCSV.err)
	}
	return &SubmitRequest{
		Algorithm: AlgoFLOC,
		Matrix:    MatrixPayload{CSV: flocTestCSV.csv},
		FLOC:      &FLOCParams{K: 12, Delta: 8, Seed: 7, Seeding: "random", MaxIterations: 10_000},
	}
}

// fetchResult polls the job to done and returns its ResultView with
// the wall-clock field zeroed, so two runs of the same trajectory
// compare equal.
func fetchResult(t *testing.T, e *testEnv, id string) ResultView {
	t.Helper()
	v := e.poll(t, id, 60*time.Second)
	if v.State != StateDone {
		t.Fatalf("job %s finished %s (error %q), want done", id, v.State, v.Error)
	}
	resp, data := e.do(t, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d, body %s", resp.StatusCode, data)
	}
	var res ResultView
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	res.DurationMillis = 0
	return res
}

func TestReadyzFlipsOnAdminDrain(t *testing.T) {
	e := newTestEnv(t, Options{Workers: 1, QueueCap: 4})

	resp, _ := e.do(t, http.MethodGet, "/readyz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: status %d, want 200", resp.StatusCode)
	}

	resp, data := e.do(t, http.MethodPost, "/v1/admin/drain", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d, body %s", resp.StatusCode, data)
	}

	// Readiness is off, liveness stays on — the routing layer must
	// stop sending work without the process being reaped mid-drain.
	resp, data = e.do(t, http.MethodGet, "/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: status %d, want 503", resp.StatusCode)
	}
	if !bytes.Contains(data, []byte(`"draining": true`)) {
		t.Fatalf("readyz 503 body lacks draining marker: %s", data)
	}
	if resp, _ := e.do(t, http.MethodGet, "/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after drain: status %d, want 200", resp.StatusCode)
	}

	// New work is refused with the draining error model.
	resp, data = e.do(t, http.MethodPost, "/v1/jobs", flocTestSubmit(t))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit to drained node: status %d, body %s", resp.StatusCode, data)
	}

	// Drain is idempotent.
	resp, data = e.do(t, http.MethodPost, "/v1/admin/drain", nil)
	if resp.StatusCode != http.StatusOK || !bytes.Contains(data, []byte(`"stopped": 0`)) {
		t.Fatalf("second drain: status %d, body %s", resp.StatusCode, data)
	}
}

// TestAdminDrainStopsRunningJobAtCheckpoint: a running FLOC job on a
// drained node stops at a boundary, and its checkpoint is downloadable
// afterwards — the migration handoff a coordinator performs.
func TestAdminDrainStopsRunningJobAtCheckpoint(t *testing.T) {
	e := newTestEnv(t, Options{Workers: 1, QueueCap: 4, CheckpointEvery: 1})

	req := flocTestSubmit(t)
	// A larger workload so the drain lands mid-run.
	req.FLOC.MaxIterations = 10_000
	id := e.submit(t, req)
	waitForIteration(t, e, id, 1)

	if resp, data := e.do(t, http.MethodPost, "/v1/admin/drain", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d, body %s", resp.StatusCode, data)
	}
	v := e.poll(t, id, 60*time.Second)
	if v.State != StateCancelled && v.State != StateDone {
		t.Fatalf("drained job finished %s, want cancelled (or done if it beat the drain)", v.State)
	}

	resp, data := e.do(t, http.MethodGet, "/v1/internal/jobs/"+id+"/checkpoint", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint download: status %d, body %s", resp.StatusCode, data)
	}
	ck, err := floc.DecodeCheckpoint(data)
	if err != nil {
		t.Fatalf("downloaded checkpoint: %v", err)
	}
	if ck.Iterations < 1 {
		t.Fatalf("checkpoint at iteration %d, want ≥ 1", ck.Iterations)
	}
	if etag := resp.Header.Get("ETag"); etag == "" {
		t.Fatal("checkpoint response has no ETag")
	} else {
		req, _ := http.NewRequest(http.MethodGet, e.ts.URL+"/v1/internal/jobs/"+id+"/checkpoint", nil)
		req.Header.Set("If-None-Match", etag)
		resp, err := e.ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("conditional checkpoint GET: status %d, want 304", resp.StatusCode)
		}
	}
}

// waitForIteration polls until the job reports at least n completed
// iterations (failing if it goes terminal first).
func waitForIteration(t *testing.T, e *testEnv, id string, n int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, data := e.do(t, http.MethodGet, "/v1/jobs/"+id, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll: status %d, body %s", resp.StatusCode, data)
		}
		var v JobView
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatal(err)
		}
		if v.State.terminal() {
			t.Fatalf("job finished %s before reaching iteration %d; enlarge the workload", v.State, n)
		}
		if v.Progress != nil && v.Progress.Iteration >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached iteration %d", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDispatchResumeBitIdentical is the migration contract at the
// service level: a job interrupted on node A and re-dispatched to
// node B with A's checkpoint produces a final clustering bit-identical
// to an uninterrupted single-node run.
func TestDispatchResumeBitIdentical(t *testing.T) {
	req := flocTestSubmit(t)

	// Reference: uninterrupted run.
	ref := newTestEnv(t, Options{Workers: 1, QueueCap: 4, CheckpointEvery: 1})
	refID := ref.submit(t, req)
	want := fetchResult(t, ref, refID)

	// Interrupted: same job on a second node, cancelled after the
	// first boundary, checkpoint downloaded.
	a := newTestEnv(t, Options{Workers: 1, QueueCap: 4, CheckpointEvery: 1})
	aID := a.submit(t, req)
	waitForIteration(t, a, aID, 1)
	if resp, data := a.do(t, http.MethodDelete, "/v1/jobs/"+aID, nil); resp.StatusCode >= 300 {
		t.Fatalf("cancel: status %d, body %s", resp.StatusCode, data)
	}
	a.poll(t, aID, 60*time.Second)
	resp, ckBytes := a.do(t, http.MethodGet, "/v1/internal/jobs/"+aID+"/checkpoint", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint download: status %d, body %s", resp.StatusCode, ckBytes)
	}

	// Migrated: dispatch to a third node resuming from the checkpoint.
	b := newTestEnv(t, Options{Workers: 1, QueueCap: 4, CheckpointEvery: 1})
	var dr DispatchResponse
	resp, data := b.do(t, http.MethodPost, "/v1/internal/jobs", &DispatchRequest{
		ID:               "jmigrated000000001",
		ResumeCheckpoint: ckBytes,
		Submit:           *req,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("dispatch: status %d, body %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.ResumedFromIteration < 1 {
		t.Fatalf("dispatch resumed from iteration %d, want ≥ 1 (zero-recompute audit)", dr.ResumedFromIteration)
	}
	got := fetchResult(t, b, "jmigrated000000001")

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("migrated result differs from uninterrupted run:\n got %+v\nwant %+v", got, want)
	}

	// Redelivery of the same dispatch is idempotent: 200, same job,
	// not a second run.
	resp, data = b.do(t, http.MethodPost, "/v1/internal/jobs", &DispatchRequest{
		ID:               "jmigrated000000001",
		ResumeCheckpoint: ckBytes,
		Submit:           *req,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("redelivered dispatch: status %d, body %s", resp.StatusCode, data)
	}
}

// putRaw PUTs raw bytes and returns the response.
func putRaw(t *testing.T, e *testEnv, path string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, e.ts.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// encodedCheckpoint builds a syntactically valid DCKP encoding at the
// given boundary iteration.
func encodedCheckpoint(t *testing.T, iterations int) []byte {
	t.Helper()
	trace := make([]float64, iterations+1)
	for i := range trace {
		trace[i] = float64(10 - i)
	}
	data, err := floc.EncodeCheckpoint(&floc.Checkpoint{
		Iterations: iterations,
		Trace:      trace,
		Clusters:   []floc.ClusterState{{Rows: []int{0, 1}, Cols: []int{0}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestReplicaEndpoints(t *testing.T) {
	e := newTestEnv(t, Options{Workers: 1, QueueCap: 4})

	// Garbage is rejected at the door: never stored, never resumable.
	resp, data := putRaw(t, e, "/v1/internal/replicas/j1/checkpoint", []byte("not a checkpoint"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage checkpoint: status %d, body %s", resp.StatusCode, data)
	}
	if resp, _ := e.do(t, http.MethodGet, "/v1/internal/replicas/j1/checkpoint", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("garbage was stored: status %d", resp.StatusCode)
	}

	// A valid replica round-trips bit for bit.
	ck5 := encodedCheckpoint(t, 5)
	if resp, data := putRaw(t, e, "/v1/internal/replicas/j1/checkpoint", ck5); resp.StatusCode != http.StatusOK {
		t.Fatalf("put checkpoint: status %d, body %s", resp.StatusCode, data)
	}
	resp, data = e.do(t, http.MethodGet, "/v1/internal/replicas/j1/checkpoint", nil)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(data, ck5) {
		t.Fatalf("get checkpoint: status %d, %d bytes (want %d)", resp.StatusCode, len(data), len(ck5))
	}
	if got := resp.Header.Get(checkpointIterationsHeader); got != "5" {
		t.Fatalf("iterations header %q, want 5", got)
	}

	// Stale replicas are acknowledged but never regress the stored one
	// (replication is monotonic under retries and reordering).
	if resp, data := putRaw(t, e, "/v1/internal/replicas/j1/checkpoint", encodedCheckpoint(t, 2)); resp.StatusCode != http.StatusOK || !bytes.Contains(data, []byte(`"stored": false`)) {
		t.Fatalf("stale put: status %d, body %s", resp.StatusCode, data)
	}
	if resp, data := e.do(t, http.MethodGet, "/v1/internal/replicas/j1/checkpoint", nil); resp.StatusCode != http.StatusOK || !bytes.Equal(data, ck5) {
		t.Fatalf("stale put regressed the replica: status %d", resp.StatusCode)
	}

	// Metadata: opaque JSON in, same JSON out; non-JSON rejected.
	meta := []byte(`{"id":"j1","owner":"b0","body":{"algorithm":"floc"}}`)
	if resp, data := putRaw(t, e, "/v1/internal/replicas/j1/meta", meta); resp.StatusCode != http.StatusOK {
		t.Fatalf("put meta: status %d, body %s", resp.StatusCode, data)
	}
	if resp, data := putRaw(t, e, "/v1/internal/replicas/j1/meta", []byte("{broken")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("broken meta accepted: status %d, body %s", resp.StatusCode, data)
	}
	resp, data = e.do(t, http.MethodGet, "/v1/internal/replicas/j1/meta", nil)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(data, meta) {
		t.Fatalf("get meta: status %d, body %s", resp.StatusCode, data)
	}

	// Delete drops both halves; a second delete reports nothing held.
	if resp, data := e.do(t, http.MethodDelete, "/v1/internal/replicas/j1", nil); resp.StatusCode != http.StatusOK || !bytes.Contains(data, []byte(`"deleted": true`)) {
		t.Fatalf("delete: status %d, body %s", resp.StatusCode, data)
	}
	if resp, _ := e.do(t, http.MethodGet, "/v1/internal/replicas/j1/meta", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("meta survived delete: status %d", resp.StatusCode)
	}
	if resp, data := e.do(t, http.MethodDelete, "/v1/internal/replicas/j1", nil); resp.StatusCode != http.StatusOK || !bytes.Contains(data, []byte(`"deleted": false`)) {
		t.Fatalf("second delete: status %d, body %s", resp.StatusCode, data)
	}
}

// TestReplicaStoreEviction: the table is bounded; the least-recently
// written entry is evicted when full.
func TestReplicaStoreEviction(t *testing.T) {
	rs := newReplicaStore(2)
	rs.putMeta("a", []byte(`{}`))
	rs.putMeta("b", []byte(`{}`))
	rs.putMeta("a", []byte(`{"touched":2}`)) // refresh a; b is now oldest
	rs.putMeta("c", []byte(`{}`))            // evicts b
	if rs.count() != 2 {
		t.Fatalf("count %d, want 2", rs.count())
	}
	if _, _, _, ok := rs.get("b"); ok {
		t.Fatal("least-recently-written entry b survived eviction")
	}
	for _, id := range []string{"a", "c"} {
		if _, _, _, ok := rs.get(id); !ok {
			t.Fatalf("entry %s evicted, want b", id)
		}
	}
}
