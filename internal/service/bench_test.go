package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"deltacluster/internal/matrix"
)

// BenchmarkServiceThroughput measures end-to-end jobs per second
// through the HTTP surface: each op submits a real (tiny) FLOC job
// over the wire and polls it to completion. The pool runs at its
// default width, so the figure reflects the whole path — JSON decode,
// validation, queueing, a genuine engine run, store bookkeeping and
// the result fetch — not just the engine.
func BenchmarkServiceThroughput(b *testing.B) {
	s := New(Options{Workers: 4, QueueCap: 4096, TTL: time.Hour})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		ts.Close()
	}()

	// A fixed 12x6 matrix with an obvious 3x3 shifted block: big
	// enough to exercise the full FLOC pipeline, small enough that the
	// service overhead is visible next to it.
	rows := make([][]float64, 12)
	for i := range rows {
		rows[i] = make([]float64, 6)
		for j := range rows[i] {
			rows[i][j] = float64((i*7+j*13)%10) * 50
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			rows[i][j] = float64(i*10 + j*5)
		}
	}
	req := SubmitRequest{
		Algorithm: AlgoFLOC,
		Matrix:    MatrixPayload{Rows: RowsJSON(rows)},
		FLOC:      &FLOCParams{K: 2, Delta: 40, Seed: 3},
	}
	body, err := json.Marshal(&req)
	if err != nil {
		b.Fatal(err)
	}
	client := ts.Client()

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			var sr SubmitResponse
			err = json.NewDecoder(resp.Body).Decode(&sr)
			_ = resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusAccepted {
				b.Fatalf("submit: status %d, err %v", resp.StatusCode, err)
			}
			id := sr.Job.ID
			for {
				resp, err := client.Get(ts.URL + "/v1/jobs/" + id)
				if err != nil {
					b.Fatal(err)
				}
				var v JobView
				err = json.NewDecoder(resp.Body).Decode(&v)
				_ = resp.Body.Close()
				if err != nil {
					b.Fatal(err)
				}
				if v.State.terminal() {
					if v.State != StateDone {
						b.Fatalf("job %s finished %s (error %q)", id, v.State, v.Error)
					}
					break
				}
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
}

// BenchmarkSubmitValidation measures the synchronous submission path
// alone (decode + validate + enqueue + respond), with the engines
// stubbed to instant completion.
func BenchmarkSubmitValidation(b *testing.B) {
	s := New(Options{Workers: 4, QueueCap: 1 << 20, TTL: time.Hour})
	s.runHook = func(_ context.Context, _ *runSpec) (*ResultView, error) {
		return &ResultView{Algorithm: AlgoFLOC}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		ts.Close()
	}()

	req := SubmitRequest{
		Matrix: MatrixPayload{Rows: RowsJSON([][]float64{{1.5, 1.5}, {1.5, 1.5}})},
		FLOC:   &FLOCParams{K: 1, Delta: 5},
	}
	body, err := json.Marshal(&req)
	if err != nil {
		b.Fatal(err)
	}
	client := ts.Client()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b.Fatalf("submit: status %d", resp.StatusCode)
		}
	}
}

// BenchmarkSubmitBinary measures the binary ingest path: a realistic
// 128x16 matrix as a DSUB envelope, engines stubbed — the float-parse
// cost JSON pays and DCMX does not is the whole difference.
func BenchmarkSubmitBinary(b *testing.B) {
	s := New(Options{Workers: 4, QueueCap: 1 << 20, TTL: time.Hour})
	s.runHook = func(_ context.Context, _ *runSpec) (*ResultView, error) {
		return &ResultView{Algorithm: AlgoFLOC}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		ts.Close()
	}()

	rows := make([][]float64, 128)
	for i := range rows {
		rows[i] = make([]float64, 16)
		for j := range rows[i] {
			rows[i][j] = float64((i*5+j*11)%97) / 3
		}
	}
	m, err := matrix.NewFromRows(rows)
	if err != nil {
		b.Fatal(err)
	}
	body, err := EncodeBinarySubmit(&SubmitRequest{FLOC: &FLOCParams{K: 1, Delta: 5}}, m)
	if err != nil {
		b.Fatal(err)
	}
	client := ts.Client()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/v1/jobs", ContentTypeBinaryMatrix, bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b.Fatalf("submit: status %d", resp.StatusCode)
		}
	}
}

// BenchmarkSubmitBatch measures batch amortization: 32 small jobs per
// request, one decode pass and one store sweep instead of 32. The
// figure to compare against is 32x BenchmarkSubmitValidation.
func BenchmarkSubmitBatch(b *testing.B) {
	s := New(Options{Workers: 4, QueueCap: 1 << 20, TTL: time.Hour})
	s.runHook = func(_ context.Context, _ *runSpec) (*ResultView, error) {
		return &ResultView{Algorithm: AlgoFLOC}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		ts.Close()
	}()

	const perBatch = 32
	one := SubmitRequest{
		Matrix: MatrixPayload{Rows: RowsJSON([][]float64{{1.5, 1.5}, {1.5, 1.5}})},
		FLOC:   &FLOCParams{K: 1, Delta: 5},
	}
	batch := BatchSubmitRequest{Jobs: make([]SubmitRequest, perBatch)}
	for i := range batch.Jobs {
		batch.Jobs[i] = one
	}
	body, err := json.Marshal(&batch)
	if err != nil {
		b.Fatal(err)
	}
	client := ts.Client()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/v1/jobs:batch", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b.Fatalf("batch: status %d", resp.StatusCode)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*perBatch/b.Elapsed().Seconds(), "jobs/sec")
}
