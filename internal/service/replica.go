package service

import (
	"sort"
	"sync"
)

// replicaStore is the backend half of coordinator-driven replication:
// a bounded in-memory table of job metadata and checkpoint encodings
// this node holds on behalf of jobs *owned by peer backends*. The
// coordinator PUTs here after every checkpoint pull, and reads back
// during failover when the owner is already gone.
//
// The store is deliberately dumb — opaque bytes in, opaque bytes out —
// with exactly three smarts:
//
//   - checkpoint writes are verified (the DCKP envelope must decode)
//     and monotonic (a replica never regresses to fewer iterations),
//     so a delayed or replayed PUT cannot shadow fresher state;
//   - capacity is bounded; when full, the least-recently-written entry
//     is evicted, chosen by a logical write sequence rather than the
//     wall clock (deltavet:deterministic holds even here);
//   - entries are small-N and mutex-guarded — replication traffic is
//     one PUT per checkpoint boundary, not a hot path.
type replicaStore struct {
	mu         sync.Mutex
	maxEntries int
	seq        uint64
	entries    map[string]*replica
}

// replica is one job's replicated state.
type replica struct {
	meta         []byte
	checkpoint   []byte
	ckIterations int
	touched      uint64
}

func newReplicaStore(maxEntries int) *replicaStore {
	return &replicaStore{
		maxEntries: maxEntries,
		entries:    make(map[string]*replica),
	}
}

// get returns the entry's metadata and checkpoint encodings (nil when
// absent); ok reports whether the job has any replicated state at all.
func (rs *replicaStore) get(id string) (meta, checkpoint []byte, iterations int, ok bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	r := rs.entries[id]
	if r == nil {
		return nil, nil, 0, false
	}
	return r.meta, r.checkpoint, r.ckIterations, true
}

// putMeta stores the job's opaque metadata blob.
func (rs *replicaStore) putMeta(id string, meta []byte) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	r := rs.upsertLocked(id)
	r.meta = meta
	rs.seq++
	r.touched = rs.seq
}

// putCheckpoint stores a verified checkpoint encoding cut at the given
// iteration. It reports false — and keeps the stored bytes — when the
// offered checkpoint is older than the one already held, which is what
// makes replication safe under retries and reordering.
func (rs *replicaStore) putCheckpoint(id string, data []byte, iterations int) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	r := rs.upsertLocked(id)
	if r.checkpoint != nil && iterations < r.ckIterations {
		return false
	}
	r.checkpoint = data
	r.ckIterations = iterations
	rs.seq++
	r.touched = rs.seq
	return true
}

// drop removes the job's replicated state, reporting whether anything
// was held.
func (rs *replicaStore) drop(id string) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	_, had := rs.entries[id]
	delete(rs.entries, id)
	return had
}

// count reports the number of replicated jobs.
func (rs *replicaStore) count() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.entries)
}

// upsertLocked returns the entry for id, creating it — and evicting
// the least-recently-written entry when the table is full. The
// eviction scan sorts IDs first to honor the package's determinism
// discipline (the victim is fully determined by the write sequence;
// the sort only fixes the scan order).
func (rs *replicaStore) upsertLocked(id string) *replica {
	if r := rs.entries[id]; r != nil {
		return r
	}
	if rs.maxEntries > 0 && len(rs.entries) >= rs.maxEntries {
		ids := make([]string, 0, len(rs.entries))
		for k := range rs.entries {
			ids = append(ids, k)
		}
		sort.Strings(ids)
		victim := ""
		var oldest uint64
		for _, k := range ids {
			if t := rs.entries[k].touched; victim == "" || t < oldest {
				victim, oldest = k, t
			}
		}
		delete(rs.entries, victim)
	}
	r := &replica{}
	rs.entries[id] = r
	return r
}
