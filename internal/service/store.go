package service

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"deltacluster/internal/floc"
	"deltacluster/internal/stats"
	"deltacluster/internal/stream"
)

// JobState is the lifecycle position of a job.
//
//	queued ──► running ──► done
//	   │           ├─────► failed
//	   └───────────┴─────► cancelled
//
// done, failed and cancelled are terminal; terminal jobs are evicted
// TTL after they finish.
type JobState string

// Job states.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// terminal reports whether a job in this state will never change
// again.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// job is the store's record of one submission. All mutable fields are
// guarded by the store's mutex; spec is immutable after creation and
// may be read lock-free. The one exception is the matrix spec.m points
// to: a lineage PATCH mutates it in place, but only while no job of
// the lineage is queued or running, and both the patch and every later
// job start happen under the store mutex — so an engine never observes
// a matrix that changes under it.
type job struct {
	id       string
	spec     *runSpec
	state    JobState
	created  time.Time
	started  time.Time
	finished time.Time

	progress    ProgressView
	hasProgress bool

	result *ResultView
	errMsg string

	// cancel stops the running engine; nil unless state == running.
	cancel context.CancelFunc
	// cancelRequested records that DELETE or a server drain asked the
	// job to stop, which is what distinguishes "cancelled" from
	// "failed by deadline" when the engine returns a context error.
	cancelRequested bool

	// checkpoint is the last resumable FLOC checkpoint an interrupted
	// attempt produced; Shutdown flushes it to the checkpoint
	// directory.
	checkpoint *floc.Checkpoint

	// finalCheckpoint is the winning attempt's final iteration
	// boundary, kept for every completed FLOC job — the parent handle
	// a recluster warm-starts from after the lineage matrix mutates.
	finalCheckpoint *floc.Checkpoint

	// parent is the job this one was reclustered from ("" for a root
	// submission); lineage is the root job ID of the recluster chain —
	// every job in a lineage shares one live matrix and one mutation
	// log.
	parent  string
	lineage string

	// baseRows is the matrix row count at job creation. The lineage
	// matrix cannot mutate while any of its jobs is queued or running,
	// so this is also the row count the job's engine saw — the
	// ParentRows a child's warm start needs.
	baseRows int

	// matrixVersion is the lineage mutation-log version at job
	// creation: the matrix state this job's result reflects.
	matrixVersion int
}

// store is the in-memory job table: deterministic IDs from a seeded
// RNG, TTL eviction of terminal jobs, and mutex-guarded mutation. It
// owns no goroutines; eviction happens lazily on access and on every
// submission sweep.
type store struct {
	mu   sync.Mutex
	rng  *stats.RNG
	ttl  time.Duration
	now  func() time.Time
	jobs map[string]*job

	// lineages maps a lineage root ID to its mutation log, created on
	// the first PATCH (or adopted from a coordinator dispatch) and
	// evicted with the lineage's last job record.
	lineages map[string]*stream.Log

	// done is the expiry FIFO: every terminal transition appends its
	// job here, so a sweep only inspects the front of the queue (the
	// oldest finishers) instead of sorting the whole table — sweep ran
	// on every submission and used to be O(jobs log jobs), which made
	// the submit path quadratic over a bench run. Entries are in
	// finish-time order because each transition records st.now() under
	// the lock. doneHead indexes the first live entry; consumed
	// prefixes are compacted away once they dominate the slice. A FIFO
	// entry is a hint, not ownership: lazy eviction (view/result) may
	// remove the job first, so sweep re-checks expiry via the jobs map.
	done     []doneEntry
	doneHead int
}

// doneEntry records one terminal transition for the expiry FIFO.
type doneEntry struct {
	id string
	at time.Time
}

func newJobStore(seed int64, ttl time.Duration, now func() time.Time) *store {
	return &store{
		rng:      stats.NewRNG(seed),
		ttl:      ttl,
		now:      now,
		jobs:     make(map[string]*job),
		lineages: make(map[string]*stream.Log),
	}
}

// create registers a new queued job and returns its ID. IDs are drawn
// from the store's seeded RNG, so a server's ID sequence is a pure
// function of its seed — replayable in tests and log-correlatable
// across restarts with the same seed.
func (st *store) create(spec *runSpec) string {
	st.mu.Lock()
	defer st.mu.Unlock()
	var id string
	for {
		id = fmt.Sprintf("j%016x", uint64(st.rng.Int63()))
		if _, taken := st.jobs[id]; !taken {
			break
		}
	}
	st.jobs[id] = newRootJobLocked(id, spec, st.now())
	return id
}

// createWithID registers a queued job under a caller-chosen ID — the
// coordinator dispatch path, where IDs are minted (and consistent-
// hashed to an owner) upstream. It reports false when the ID is
// already taken, which is what keeps a retried dispatch idempotent:
// the second attempt observes the first instead of double-running.
func (st *store) createWithID(id string, spec *runSpec) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, taken := st.jobs[id]; taken {
		return false
	}
	st.jobs[id] = newRootJobLocked(id, spec, st.now())
	return true
}

// newRootJobLocked builds a queued root-submission record: the job
// heads its own lineage, and baseRows pins the matrix row count its
// engine will see.
func newRootJobLocked(id string, spec *runSpec, now time.Time) *job {
	j := &job{
		id:      id,
		spec:    spec,
		state:   StateQueued,
		created: now,
		lineage: id,
	}
	if spec.m != nil {
		j.baseRows = spec.m.Rows()
	}
	return j
}

// adoptLineageLog installs a pre-seeded mutation log for the job's
// lineage — the coordinator dispatch path, where recorded patches were
// already replayed onto the submitted matrix before the job was
// created. The job's matrixVersion is aligned with the log head.
func (st *store) adoptLineageLog(id string, log *stream.Log) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j := st.jobs[id]
	if j == nil {
		return
	}
	st.lineages[j.lineage] = log
	j.matrixVersion = log.Version()
}

// drop removes a job outright (submission rollback when the queue
// rejects it).
func (st *store) drop(id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.evictLocked(id)
}

// evictLocked removes a job record and, when it was the lineage's last
// record, the lineage's mutation log with it.
func (st *store) evictLocked(id string) {
	j := st.jobs[id]
	if j == nil {
		return
	}
	delete(st.jobs, id)
	if _, held := st.lineages[j.lineage]; !held {
		return
	}
	//deltavet:ignore maporder reason=order-independent existence scan; returns on any lineage sibling, no per-entry effects
	for _, other := range st.jobs {
		if other.lineage == j.lineage {
			return
		}
	}
	delete(st.lineages, j.lineage)
}

// lineageBusyLocked reports whether any job of the lineage is queued
// or running — the state in which the shared matrix must not mutate
// and no second recluster may start.
func (st *store) lineageBusyLocked(lineage string) bool {
	//deltavet:ignore maporder reason=order-independent existence scan; any non-terminal lineage member answers true, no per-entry effects
	for _, j := range st.jobs {
		if j.lineage == lineage && !j.state.terminal() {
			return true
		}
	}
	return false
}

// spec returns the job's immutable run plan, or nil if the job is
// gone.
func (st *store) specOf(id string) *runSpec {
	st.mu.Lock()
	defer st.mu.Unlock()
	j := st.jobs[id]
	if j == nil {
		return nil
	}
	return j.spec
}

// start transitions a queued job to running, recording the engine's
// cancel function. It reports false — and does not transition — when
// the job is gone or no longer queued (e.g. cancelled while waiting),
// or when cancellation was requested before the worker picked it up.
func (st *store) start(id string, cancel context.CancelFunc) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	j := st.jobs[id]
	if j == nil || j.state != StateQueued || j.cancelRequested {
		return false
	}
	j.state = StateRunning
	j.started = st.now()
	j.cancel = cancel
	return true
}

// finish moves a job to a terminal state with its outcome. The
// engine's cancel function is dropped; the caller releases the
// context. Finishing a job that was already terminal or evicted is a
// no-op.
func (st *store) finish(id string, state JobState, result *ResultView, errMsg string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j := st.jobs[id]
	if j == nil || j.state.terminal() {
		return
	}
	j.state = state
	j.finished = st.now()
	j.result = result
	j.errMsg = errMsg
	j.cancel = nil
	st.markDoneLocked(j)
}

// markDoneLocked appends a freshly terminal job to the expiry FIFO.
// With no TTL nothing ever expires, so nothing is queued either.
func (st *store) markDoneLocked(j *job) {
	if st.ttl <= 0 {
		return
	}
	st.done = append(st.done, doneEntry{id: j.id, at: j.finished})
}

// requestCancel marks the job cancelled-on-request. A queued job
// becomes terminal immediately (the worker will skip it; fromQueue
// reports that transition so the caller can count it); a running job
// has its engine context cancelled and keeps state "running" until
// the engine returns. The returned view reflects the post-request
// state; ok is false when the job is gone.
func (st *store) requestCancel(id string) (view JobView, fromQueue, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j := st.jobs[id]
	if j == nil {
		return JobView{}, false, false
	}
	if !j.state.terminal() {
		j.cancelRequested = true
		if j.state == StateQueued {
			j.state = StateCancelled
			j.finished = st.now()
			j.errMsg = "cancelled before start"
			st.markDoneLocked(j)
			fromQueue = true
		} else if j.cancel != nil {
			j.cancel()
		}
	}
	return j.viewLocked(), fromQueue, true
}

// setProgress records a running job's live position.
func (st *store) setProgress(id string, p ProgressView) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if j := st.jobs[id]; j != nil {
		j.progress = p
		j.hasProgress = true
	}
}

// setCheckpoint records the job's latest resumable checkpoint —
// periodic boundary checkpoints while the run is live (CheckpointEvery)
// and the final boundary state of an interrupted attempt. It ignores a
// checkpoint older than the stored one, so a stale write racing a
// fresher boundary can never regress the replication stream.
func (st *store) setCheckpoint(id string, ck *floc.Checkpoint) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j := st.jobs[id]
	if j == nil {
		return
	}
	if j.checkpoint != nil && ck.Iterations < j.checkpoint.Iterations {
		return
	}
	j.checkpoint = ck
}

// latestCheckpoint returns the job's most recent resumable checkpoint,
// nil when none exists (job gone, non-FLOC, or stopped before the
// first improving iteration). Checkpoints are immutable once exported,
// so the caller may encode the result outside the store lock.
func (st *store) latestCheckpoint(id string) *floc.Checkpoint {
	st.mu.Lock()
	defer st.mu.Unlock()
	j := st.jobs[id]
	if j == nil {
		return nil
	}
	return j.checkpoint
}

// cancelAllActive requests cancellation of every non-terminal job:
// queued jobs become cancelled immediately, running jobs have their
// engine contexts cancelled and settle when the engine returns. This
// is the admin-drain path — the node stays up and keeps serving
// reads, but every job is pushed to a checkpointed stop so the
// coordinator can migrate it. It returns how many jobs were cancelled
// straight out of the queue and how many running engines were asked to
// stop (the split the metrics counters need).
func (st *store) cancelAllActive() (queued, running int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ids := make([]string, 0, len(st.jobs))
	for id := range st.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		j := st.jobs[id]
		switch j.state {
		case StateQueued:
			j.cancelRequested = true
			j.state = StateCancelled
			j.finished = st.now()
			j.errMsg = "cancelled by drain before start"
			st.markDoneLocked(j)
			queued++
		case StateRunning:
			j.cancelRequested = true
			if j.cancel != nil {
				j.cancel()
			}
			running++
		}
	}
	return queued, running
}

// cancelRequested reports whether the job was asked to stop.
func (st *store) cancelRequestedOf(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	j := st.jobs[id]
	return j != nil && j.cancelRequested
}

// view snapshots a job for JSON rendering, evicting it first if its
// TTL expired — the caller then sees the same 404 an earlier sweep
// would have produced.
func (st *store) view(id string) (JobView, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j := st.jobs[id]
	if j == nil {
		return JobView{}, false
	}
	if st.expiredLocked(j) {
		st.evictLocked(id)
		return JobView{}, false
	}
	return j.viewLocked(), true
}

// result returns the job's result view, with the same lazy eviction
// as view.
func (st *store) result(id string) (res *ResultView, view JobView, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j := st.jobs[id]
	if j == nil {
		return nil, JobView{}, false
	}
	if st.expiredLocked(j) {
		st.evictLocked(id)
		return nil, JobView{}, false
	}
	return j.result, j.viewLocked(), true
}

// sweep evicts every terminal job whose TTL expired. It pops the
// expiry FIFO from the front — entries are in finish-time order, so
// the scan stops at the first entry still inside the TTL. Amortized
// cost per sweep is O(evictions), independent of table size; the old
// implementation sorted every stored job ID on every submission.
// Eviction order still follows finish-time order deterministically.
func (st *store) sweep() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.ttl <= 0 {
		return
	}
	now := st.now()
	for st.doneHead < len(st.done) {
		e := st.done[st.doneHead]
		if now.Sub(e.at) <= st.ttl {
			break
		}
		st.doneHead++
		// Re-check through the jobs map: lazy eviction may have removed
		// the job already, and an evicted ID could in principle have
		// been re-minted for a fresher job (which then owns its own
		// FIFO entry).
		if j := st.jobs[e.id]; j != nil && st.expiredLocked(j) {
			st.evictLocked(e.id)
		}
	}
	if st.doneHead > 0 && st.doneHead*2 >= len(st.done) {
		n := copy(st.done, st.done[st.doneHead:])
		st.done = st.done[:n]
		st.doneHead = 0
	}
}

// countByState tallies the stored (non-evicted) jobs per state.
func (st *store) countByState() map[JobState]int {
	st.mu.Lock()
	defer st.mu.Unlock()
	counts := make(map[JobState]int)
	//deltavet:ignore maporder reason=order-independent tally; addition commutes, no per-entry effects
	for _, j := range st.jobs {
		counts[j.state]++
	}
	return counts
}

// cancelAllRunning cancels the engine context of every running job
// and marks the cancellation as requested (shutdown drain expiry).
func (st *store) cancelAllRunning() {
	st.mu.Lock()
	defer st.mu.Unlock()
	ids := make([]string, 0, len(st.jobs))
	for id := range st.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		j := st.jobs[id]
		if j.state == StateRunning {
			j.cancelRequested = true
			if j.cancel != nil {
				j.cancel()
			}
		}
	}
}

// expiredLocked reports whether a terminal job has outlived the TTL.
func (st *store) expiredLocked(j *job) bool {
	return st.ttl > 0 && j.state.terminal() && st.now().Sub(j.finished) > st.ttl
}

// viewLocked renders the job; the store lock must be held.
func (j *job) viewLocked() JobView {
	v := JobView{
		ID:              j.id,
		State:           j.state,
		Algorithm:       j.spec.algorithm,
		Created:         j.created,
		Error:           j.errMsg,
		CancelRequested: j.cancelRequested,
		ParentID:        j.parent,
		MatrixVersion:   j.matrixVersion,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.hasProgress {
		p := j.progress
		v.Progress = &p
	}
	return v
}

// patchOutcome describes a committed lineage matrix mutation.
type patchOutcome struct {
	jobID   string
	lineage string
	version int
	rows    int
	cols    int
}

// patchMatrix applies a mutation batch to the lineage matrix of the
// addressed job — the PATCH /v1/jobs/{id}/matrix core. The whole
// check-and-apply is one critical section: lineage idleness is decided
// under the same lock that gates job creation and start, so a
// concurrent recluster and PATCH serialize and the loser observes the
// winner (409), never a silently torn matrix.
func (st *store) patchMatrix(id string, mu stream.Mutation) (patchOutcome, *apiError) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j := st.jobs[id]
	if j == nil || st.expiredLocked(j) {
		if j != nil {
			st.evictLocked(id)
		}
		return patchOutcome{}, &apiError{status: 404, code: CodeNotFound, message: "no such job: " + id}
	}
	if j.spec.algorithm != AlgoFLOC || j.spec.m == nil {
		return patchOutcome{}, badRequest("matrix streaming is only supported for floc jobs")
	}
	if st.lineageBusyLocked(j.lineage) {
		return patchOutcome{}, &apiError{
			status:  409,
			code:    CodeLineageBusy,
			message: "lineage " + j.lineage + " has a queued or running job; the matrix cannot mutate under it",
		}
	}
	log := st.lineages[j.lineage]
	if log == nil {
		log = stream.NewLog(j.spec.m.Rows(), j.spec.m.Cols())
		st.lineages[j.lineage] = log
	}
	version, err := log.Apply(j.spec.m, mu)
	if err != nil {
		return patchOutcome{}, badRequest(err.Error())
	}
	return patchOutcome{
		jobID:   id,
		lineage: j.lineage,
		version: version,
		rows:    j.spec.m.Rows(),
		cols:    j.spec.m.Cols(),
	}, nil
}

// beginRecluster creates the queued warm-start child of a completed
// job — the POST /v1/jobs/{id}:recluster core. The parent must be a
// done FLOC job holding a final checkpoint, and the lineage must be
// idle; the child shares the parent's live matrix, runs a single
// attempt under the checkpoint's seed, and warm-starts with ParentRows
// pinned to the row count the parent's engine saw. childID may be
// caller-chosen (coordinator dispatch); redelivering the same childID
// for the same parent observes the existing child instead of
// double-running; created reports whether this call registered the
// child (false on redelivery — the caller must not enqueue twice).
func (st *store) beginRecluster(parentID, childID string) (view JobView, warmIter int, created bool, aerr *apiError) {
	st.mu.Lock()
	defer st.mu.Unlock()
	parent := st.jobs[parentID]
	if parent == nil || st.expiredLocked(parent) {
		if parent != nil {
			st.evictLocked(parentID)
		}
		return JobView{}, 0, false, &apiError{status: 404, code: CodeNotFound, message: "no such job: " + parentID}
	}
	if parent.spec.algorithm != AlgoFLOC || parent.spec.m == nil {
		return JobView{}, 0, false, badRequest("recluster is only supported for floc jobs")
	}
	if existing := st.jobs[childID]; childID != "" && existing != nil {
		if existing.parent == parentID {
			return existing.viewLocked(), 0, false, nil
		}
		return JobView{}, 0, false, badRequest("job ID already in use: " + childID)
	}
	if parent.state != StateDone {
		return JobView{}, 0, false, &apiError{
			status:  409,
			code:    CodeJobNotDone,
			message: fmt.Sprintf("job %s is %s; only a done job can be reclustered", parentID, parent.state),
		}
	}
	ck := parent.finalCheckpoint
	if ck == nil {
		return JobView{}, 0, false, &apiError{
			status:  409,
			code:    CodeNoCheckpoint,
			message: "job " + parentID + " kept no final checkpoint to warm-start from",
		}
	}
	if st.lineageBusyLocked(parent.lineage) {
		return JobView{}, 0, false, &apiError{
			status:  409,
			code:    CodeLineageBusy,
			message: "lineage " + parent.lineage + " already has a queued or running job",
		}
	}

	cfg := parent.spec.floc
	cfg.Seed = ck.Seed // the warm engine continues the parent's counted RNG stream
	spec := &runSpec{
		algorithm: AlgoFLOC,
		m:         parent.spec.m,
		floc:      cfg,
		attempts:  1,
		deadline:  parent.spec.deadline,
		warm:      &floc.WarmStart{Checkpoint: ck, ParentRows: parent.baseRows},
	}
	id := childID
	if id == "" {
		for {
			id = fmt.Sprintf("j%016x", uint64(st.rng.Int63()))
			if _, taken := st.jobs[id]; !taken {
				break
			}
		}
	}
	child := &job{
		id:       id,
		spec:     spec,
		state:    StateQueued,
		created:  st.now(),
		parent:   parentID,
		lineage:  parent.lineage,
		baseRows: spec.m.Rows(),
	}
	if log := st.lineages[parent.lineage]; log != nil {
		child.matrixVersion = log.Version()
	}
	st.jobs[id] = child
	return child.viewLocked(), ck.Iterations, true, nil
}

// setFinalCheckpoint records a completed FLOC job's final iteration
// boundary — the handle a later recluster warm-starts from.
func (st *store) setFinalCheckpoint(id string, ck *floc.Checkpoint) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if j := st.jobs[id]; j != nil {
		j.finalCheckpoint = ck
	}
}

// matrixVersionOf returns the current head version of the job's
// lineage mutation log (0 before the first patch).
func (st *store) matrixVersionOf(id string) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	j := st.jobs[id]
	if j == nil {
		return 0
	}
	if log := st.lineages[j.lineage]; log != nil {
		return log.Version()
	}
	return 0
}
