package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"deltacluster/internal/matrix"
	"deltacluster/internal/synth"
)

// smallMatrix is the dataset behind smallJobRequest, as a *matrix.
// Matrix — the binary tests submit the same data through both
// transports and demand identical results.
func smallMatrix(t *testing.T) *matrix.Matrix {
	t.Helper()
	ds, err := synth.Generate(synth.Config{
		Rows: 30, Cols: 8, NumClusters: 1,
		VolumeMean: 40, VolumeVariance: 0, RowColRatio: 4,
		TargetResidue: 2,
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Matrix
}

// submitBinary posts a DSUB body and returns the accepted job ID.
func (e *testEnv) submitBinary(t *testing.T, body []byte) string {
	t.Helper()
	resp, err := e.ts.Client().Post(e.ts.URL+"/v1/jobs", ContentTypeBinaryMatrix, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sr SubmitResponse
	err = json.NewDecoder(resp.Body).Decode(&sr)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("binary submit: status %d, err %v", resp.StatusCode, err)
	}
	return sr.Job.ID
}

// result fetches and decodes a done job's JSON result.
func (e *testEnv) result(t *testing.T, id string) *ResultView {
	t.Helper()
	resp, data := e.do(t, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: status %d, body %s", id, resp.StatusCode, data)
	}
	var res ResultView
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	return &res
}

// TestBinarySubmitMatchesJSON is the transport-equivalence contract:
// the same matrix submitted as JSON rows and as a DCMX section, with
// the same parameters, must produce bit-identical clusterings.
func TestBinarySubmitMatchesJSON(t *testing.T) {
	e := newTestEnv(t, Options{Workers: 2, QueueCap: 8})
	m := smallMatrix(t)
	params := &FLOCParams{K: 2, Delta: 6, Seed: 7}

	rows := make([][]float64, m.Rows())
	for i := range rows {
		rows[i] = m.Row(i)
	}
	jsonID := e.submit(t, &SubmitRequest{
		Algorithm: AlgoFLOC,
		Matrix:    MatrixPayload{Rows: RowsJSON(rows)},
		FLOC:      params,
	})

	body, err := EncodeBinarySubmit(&SubmitRequest{Algorithm: AlgoFLOC, FLOC: params}, m)
	if err != nil {
		t.Fatal(err)
	}
	binID := e.submitBinary(t, body)

	for _, id := range []string{jsonID, binID} {
		if v := e.poll(t, id, 30*time.Second); v.State != StateDone {
			t.Fatalf("job %s finished %s (error %q), want done", id, v.State, v.Error)
		}
	}
	jr, br := e.result(t, jsonID), e.result(t, binID)
	jr.DurationMillis, br.DurationMillis = 0, 0 // wall clock, not part of the fingerprint
	if !reflect.DeepEqual(jr, br) {
		jb, _ := json.Marshal(jr)
		bb, _ := json.Marshal(br)
		t.Fatalf("JSON and binary submissions diverged:\n  json:   %s\n  binary: %s", jb, bb)
	}
}

// TestBinaryResultDownload checks the DRES egress path: a result
// fetched with Accept: x-deltacluster-matrix decodes to exactly the
// JSON result.
func TestBinaryResultDownload(t *testing.T) {
	e := newTestEnv(t, Options{Workers: 2, QueueCap: 8})
	id := e.submit(t, smallJobRequest(t))
	if v := e.poll(t, id, 30*time.Second); v.State != StateDone {
		t.Fatalf("job finished %s, want done", v.State)
	}
	jsonRes := e.result(t, id)

	req, err := http.NewRequest(http.MethodGet, e.ts.URL+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", ContentTypeBinaryMatrix)
	resp, err := e.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data := new(bytes.Buffer)
	_, err = data.ReadFrom(resp.Body)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("binary result: status %d, err %v", resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeBinaryMatrix {
		t.Fatalf("Content-Type = %q, want %q", ct, ContentTypeBinaryMatrix)
	}
	binRes, err := DecodeBinaryResult(data.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jsonRes, binRes) {
		t.Fatalf("binary result diverged from JSON result:\n  json:   %+v\n  binary: %+v", jsonRes, binRes)
	}
}

// TestBinarySubmitRejectsCorruption: every framing violation dies with
// a 400 before any job is created.
func TestBinarySubmitRejectsCorruption(t *testing.T) {
	e := newTestEnv(t, Options{Workers: 1, QueueCap: 8})
	m := smallMatrix(t)
	good, err := EncodeBinarySubmit(&SubmitRequest{Algorithm: AlgoFLOC, FLOC: &FLOCParams{K: 2, Delta: 6}}, m)
	if err != nil {
		t.Fatal(err)
	}

	flip := func(data []byte, i int) []byte {
		out := append([]byte(nil), data...)
		out[i] ^= 0x01
		return out
	}
	cases := map[string][]byte{
		"bad magic":              flip(good, 0),
		"bad version":            flip(good, 4),
		"params corrupted":       flip(good, envelopeHeaderLen),
		"truncated":              good[:len(good)-5],
		"matrix checksum flip":   flip(good, len(good)-1),
		"rows in binary params":  encodeEnvelope(submitMagic, []byte(`{"matrix":{"rows":[[1]]}}`), matrix.EncodeBinary(m)),
		"empty body":             {},
		"json body binary route": []byte(`{"matrix":{"rows":[[1,2],[3,4]]}}`),
	}
	for name, body := range cases {
		resp, err := e.ts.Client().Post(e.ts.URL+"/v1/jobs", ContentTypeBinaryMatrix, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, data := e.do(t, http.MethodGet, "/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	var mv MetricsView
	if err := json.Unmarshal(data, &mv); err != nil {
		t.Fatal(err)
	}
	if mv.Jobs.Stored != 0 {
		t.Fatalf("stored = %d after rejected submissions, want 0", mv.Jobs.Stored)
	}
}

// TestBinaryDispatch drives the internal binary dispatch route the way
// the coordinator does: DispatchRequest params framed ahead of the
// DCMX bytes, job created under the caller-chosen ID.
func TestBinaryDispatch(t *testing.T) {
	e := newTestEnv(t, Options{Workers: 2, QueueCap: 8})
	m := smallMatrix(t)
	body, err := EncodeBinaryDispatch(&DispatchRequest{
		ID:     "bin-dispatch-1",
		Submit: SubmitRequest{Algorithm: AlgoFLOC, FLOC: &FLOCParams{K: 2, Delta: 6, Seed: 7}},
	}, matrix.EncodeBinary(m))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e.ts.Client().Post(e.ts.URL+"/v1/internal/jobs", ContentTypeBinaryMatrix, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var dr DispatchResponse
	err = json.NewDecoder(resp.Body).Decode(&dr)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("binary dispatch: status %d, err %v", resp.StatusCode, err)
	}
	if dr.Job.ID != "bin-dispatch-1" {
		t.Fatalf("dispatched job ID = %q, want %q", dr.Job.ID, "bin-dispatch-1")
	}
	if v := e.poll(t, "bin-dispatch-1", 30*time.Second); v.State != StateDone {
		t.Fatalf("job finished %s (error %q), want done", v.State, v.Error)
	}
}

// TestBatchSubmitValidation: the batch envelope's own refusals.
func TestBatchSubmitValidation(t *testing.T) {
	e := newTestEnv(t, Options{Workers: 1, QueueCap: 8})

	resp, data := e.do(t, http.MethodPost, "/v1/jobs:batch", &BatchSubmitRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, body %s", resp.StatusCode, data)
	}
	if msg := decodeError(t, data).Message; msg != "batch: jobs is empty" {
		t.Fatalf("empty batch message %q", msg)
	}

	over := BatchSubmitRequest{Jobs: make([]SubmitRequest, MaxBatchJobs+1)}
	resp, data = e.do(t, http.MethodPost, "/v1/jobs:batch", &over)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, body %s", resp.StatusCode, data)
	}
}

// TestBatchSubmitMixed: valid and invalid items in one batch get
// independent outcomes, and the accepted ones run to completion.
func TestBatchSubmitMixed(t *testing.T) {
	e := newTestEnv(t, Options{Workers: 2, QueueCap: 8})

	bad := SubmitRequest{
		Matrix: MatrixPayload{Rows: RowsJSON([][]float64{{1, 2}})},
		FLOC:   &FLOCParams{K: 1, Delta: 5},
	}
	bad.Matrix.Rows = json.RawMessage(`[[1,2],[3]]`) // ragged
	batch := BatchSubmitRequest{Jobs: []SubmitRequest{
		*smallJobRequest(t),
		bad,
		*smallJobRequest(t),
	}}
	resp, data := e.do(t, http.MethodPost, "/v1/jobs:batch", &batch)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch: status %d, body %s", resp.StatusCode, data)
	}
	var out BatchSubmitResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Accepted != 2 || out.Rejected != 1 || len(out.Jobs) != 3 {
		t.Fatalf("accepted %d rejected %d items %d, want 2/1/3", out.Accepted, out.Rejected, len(out.Jobs))
	}
	for i, want := range []int{http.StatusAccepted, http.StatusBadRequest, http.StatusAccepted} {
		if out.Jobs[i].Index != i || out.Jobs[i].Status != want {
			t.Fatalf("item %d: %+v, want status %d", i, out.Jobs[i], want)
		}
	}
	if out.Jobs[1].Error == nil || out.Jobs[1].Error.Code != CodeInvalidRequest {
		t.Fatalf("rejected item error = %+v, want %s", out.Jobs[1].Error, CodeInvalidRequest)
	}
	for _, i := range []int{0, 2} {
		if v := e.poll(t, out.Jobs[i].Job.ID, 30*time.Second); v.State != StateDone {
			t.Fatalf("batch job %d finished %s, want done", i, v.State)
		}
	}
}

// TestBatchSubmitQueueFull: items refused by a full queue report 429
// individually; a batch with nothing accepted answers 429 with
// Retry-After at the top level.
func TestBatchSubmitQueueFull(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	e := newTestEnv(t, Options{Workers: 1, QueueCap: 1, RetryAfter: 2 * time.Second})
	var once sync.Once
	e.s.runHook = func(ctx context.Context, _ *runSpec) (*ResultView, error) {
		once.Do(func() { close(started) })
		select {
		case <-release:
			return &ResultView{Algorithm: AlgoFLOC}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	defer close(release)

	running := e.submit(t, smallJobRequest(t)) // occupies the worker
	<-started

	// Queue capacity 1: the first batch item fills it, the rest bounce.
	batch := BatchSubmitRequest{Jobs: []SubmitRequest{
		*smallJobRequest(t), *smallJobRequest(t), *smallJobRequest(t),
	}}
	resp, data := e.do(t, http.MethodPost, "/v1/jobs:batch", &batch)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("partial batch: status %d, body %s", resp.StatusCode, data)
	}
	var out BatchSubmitResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Accepted != 1 || out.Rejected != 2 {
		t.Fatalf("accepted %d rejected %d, want 1/2", out.Accepted, out.Rejected)
	}
	for _, item := range out.Jobs[1:] {
		if item.Status != http.StatusTooManyRequests || item.Error == nil || item.Error.Code != CodeQueueFull {
			t.Fatalf("overflow item %+v, want 429 %s", item, CodeQueueFull)
		}
	}

	// Nothing left for a second batch: all-429 escalates to the top.
	resp, data = e.do(t, http.MethodPost, "/v1/jobs:batch",
		&BatchSubmitRequest{Jobs: []SubmitRequest{*smallJobRequest(t), *smallJobRequest(t)}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full batch: status %d, body %s", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	_ = running
}
