// Package analysistest runs analyzers over testdata fixture packages
// and checks their diagnostics against `// want "regexp"` comments,
// mirroring golang.org/x/tools/go/analysis/analysistest. A line may
// carry several want patterns; each must be matched by a distinct
// diagnostic on that line, and every diagnostic must be wanted.
//
// RunWithSuggestedFixes additionally checks an analyzer's fix engine:
// applying every diagnostic's first suggested fix must reproduce the
// checked-in `<file>.golden` byte for byte, and re-running the
// analyzer over the fixed source must yield no further fixes — the
// idempotence contract `deltavet -fix` relies on (running it twice
// never produces a second diff).
package analysistest

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"deltacluster/internal/analysis"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)
var patRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// Run loads each fixture package testdata/src/<pkg> relative to dir
// and applies the analyzers, comparing diagnostics with the
// fixtures' want comments. Each package is analyzed in isolation.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runPkgs(t, dir, a, false, pkg)
	}
}

// RunPkgs loads all the fixture packages into one analysis run —
// dependencies first, so fixtures may import earlier fixtures by
// their "fixture/<pkg>" path — and checks want comments across all of
// them. Module analyzers (RunModule) observe the whole set at once,
// which is how cross-package fact propagation is tested.
func RunPkgs(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	runPkgs(t, dir, a, false, pkgs...)
}

// RunWithSuggestedFixes is Run plus the fix round trip for each
// package (see the package comment).
func RunWithSuggestedFixes(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runPkgs(t, dir, a, true, pkg)
	}
}

func runPkgs(t *testing.T, dir string, a *analysis.Analyzer, fixes bool, pkgs ...string) {
	t.Helper()
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	var loaded []*analysis.Package
	for _, pkg := range pkgs {
		fixDir := filepath.Join(dir, "testdata", "src", pkg)
		p, err := loader.LoadDir(fixDir, "fixture/"+pkg)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkg, err)
		}
		loaded = append(loaded, p)
	}
	diags, err := analysis.RunAnalyzers(loaded, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %v: %v", a.Name, pkgs, err)
	}
	for _, p := range loaded {
		check(t, p, diagsIn(p, diags))
	}
	if fixes {
		for _, p := range loaded {
			checkFixes(t, loader, a, p, diagsIn(p, diags))
		}
	}
}

// diagsIn filters diagnostics to those positioned inside package p's
// files.
func diagsIn(p *analysis.Package, diags []analysis.Diagnostic) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, d := range diags {
		name := p.Fset.Position(d.Pos).Filename
		for _, f := range p.Files {
			if p.Fset.Position(f.Pos()).Filename == name {
				out = append(out, d)
				break
			}
		}
	}
	return out
}

// checkFixes applies the package's suggested fixes, compares against
// <file>.golden, then re-runs the analyzer on the fixed sources and
// requires it to propose no further edits.
func checkFixes(t *testing.T, loader *analysis.Loader, a *analysis.Analyzer, p *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	fixed, err := analysis.ApplyFixes(p.Fset, diags)
	if err != nil {
		t.Fatalf("applying fixes for %s: %v", p.Path, err)
	}
	// Every file the fixture pairs with a golden must round-trip to
	// it; files the analyzer did not touch must have no golden.
	tmp := t.TempDir()
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		golden := name + ".golden"
		content, touched := fixed[name]
		if !touched {
			if _, err := os.Stat(golden); err == nil {
				t.Errorf("%s: golden file exists but the analyzer proposed no fixes", filepath.Base(golden))
			}
			var err error
			content, err = os.ReadFile(name)
			if err != nil {
				t.Fatalf("reading %s: %v", name, err)
			}
		} else {
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%s proposed fixes for %s but no golden file: %v", a.Name, filepath.Base(name), err)
			}
			if string(content) != string(want) {
				t.Errorf("%s: fixed output differs from golden:\n-- got --\n%s\n-- want --\n%s",
					filepath.Base(name), content, want)
			}
		}
		if err := os.WriteFile(filepath.Join(tmp, filepath.Base(name)), content, 0o644); err != nil {
			t.Fatalf("staging fixed source: %v", err)
		}
	}
	// Idempotence: the fixed package must type-check, and a second run
	// must propose zero edits.
	p2, err := loader.LoadDir(tmp, p.Path+".fixed")
	if err != nil {
		t.Fatalf("fixed source of %s does not load: %v", p.Path, err)
	}
	diags2, err := analysis.RunAnalyzers([]*analysis.Package{p2}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("re-running %s on fixed source: %v", a.Name, err)
	}
	for _, d := range diags2 {
		if len(d.SuggestedFixes) > 0 {
			pos := p2.Fset.Position(d.Pos)
			t.Errorf("fix not idempotent: second run still proposes a fix at %s:%d: %s",
				filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
}

type want struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// check compares diagnostics against want comments, reporting every
// unmatched expectation and every unexpected diagnostic.
func check(t *testing.T, p *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[string][]*want{} // file:line -> expectations
	for _, f := range p.Files {
		fileWants(t, p, f, wants)
	}
	for _, d := range diags {
		pos := p.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		ws := wants[key]
		matched := false
		for _, w := range ws {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", key, w.raw)
			}
		}
	}
}

func fileWants(t *testing.T, p *analysis.Package, f *ast.File, wants map[string][]*want) {
	t.Helper()
	base := filepath.Base(p.Fset.Position(f.Pos()).Filename)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			line := p.Fset.Position(c.Pos()).Line
			key := fmt.Sprintf("%s:%d", base, line)
			for _, pm := range patRe.FindAllStringSubmatch(m[1], -1) {
				pat := pm[2] // backquoted form
				if pm[1] != "" || pm[2] == "" {
					pat = strings.ReplaceAll(pm[1], `\"`, `"`)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
				}
				wants[key] = append(wants[key], &want{re: re, raw: pat})
			}
		}
	}
}
