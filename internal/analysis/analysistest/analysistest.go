// Package analysistest runs analyzers over testdata fixture packages
// and checks their diagnostics against `// want "regexp"` comments,
// mirroring golang.org/x/tools/go/analysis/analysistest. A line may
// carry several want patterns; each must be matched by a distinct
// diagnostic on that line, and every diagnostic must be wanted.
package analysistest

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"deltacluster/internal/analysis"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)
var patRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// Run loads each fixture package testdata/src/<pkg> relative to dir
// and applies the analyzers, comparing diagnostics with the
// fixtures' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	for _, pkg := range pkgs {
		fixDir := filepath.Join(dir, "testdata", "src", pkg)
		p, err := loader.LoadDir(fixDir, "fixture/"+pkg)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkg, err)
		}
		diags, err := analysis.RunAnalyzers([]*analysis.Package{p}, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg, err)
		}
		check(t, p, diags)
	}
}

type want struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// check compares diagnostics against want comments, reporting every
// unmatched expectation and every unexpected diagnostic.
func check(t *testing.T, p *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[string][]*want{} // file:line -> expectations
	for _, f := range p.Files {
		fileWants(t, p, f, wants)
	}
	for _, d := range diags {
		pos := p.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		ws := wants[key]
		matched := false
		for _, w := range ws {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", key, w.raw)
			}
		}
	}
}

func fileWants(t *testing.T, p *analysis.Package, f *ast.File, wants map[string][]*want) {
	t.Helper()
	base := filepath.Base(p.Fset.Position(f.Pos()).Filename)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			line := p.Fset.Position(c.Pos()).Line
			key := fmt.Sprintf("%s:%d", base, line)
			for _, pm := range patRe.FindAllStringSubmatch(m[1], -1) {
				pat := pm[2] // backquoted form
				if pm[1] != "" || pm[2] == "" {
					pat = strings.ReplaceAll(pm[1], `\"`, `"`)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
				}
				wants[key] = append(wants[key], &want{re: re, raw: pat})
			}
		}
	}
}
