// Package maporder flags `for range` loops over maps in packages
// marked deltavet:deterministic. Go randomizes map iteration order on
// purpose; inside the FLOC engine, the residue bookkeeping and the
// evaluation pipeline, an unordered range can change which action
// wins a tie, which cluster a report lists first, or the order
// floating-point sums accumulate in — all of which break the
// same-seed ⇒ byte-identical-output guarantee this repository
// advertises.
//
// The approved idiom is "collect, sort, then range": a loop whose
// body only appends the map's keys or values to a slice that is
// sorted later in the same function is not flagged, because its
// observable result is order-independent. Everything else needs
// either a sorted key slice or an explicit
// `deltavet:ignore maporder -- <reason>` directive arguing
// order-independence.
package maporder

import (
	"go/ast"
	"go/types"

	"deltacluster/internal/analysis"
)

// Analyzer is the maporder pass.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flags nondeterministic map iteration in deltavet:deterministic packages " +
		"unless the loop only collects into a slice that is sorted afterwards",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.PackageMarked(pass.Files, analysis.DeterministicMarker) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if collectsThenSorts(pass, file, rs) {
				return true
			}
			pass.Reportf(rs.For,
				"nondeterministic iteration over map %s in deterministic package; range over sorted keys instead",
				types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
			return true
		})
	}
	return nil, nil
}

// collectsThenSorts reports whether the range loop is the approved
// collect-then-sort idiom: every statement of the body appends to
// slice variables, and each of those variables is passed to a sort
// call later in the enclosing function.
func collectsThenSorts(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt) bool {
	var targets []types.Object
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
		obj := pass.TypesInfo.Uses[lhs]
		if obj == nil {
			obj = pass.TypesInfo.Defs[lhs]
		}
		if obj == nil {
			return false
		}
		targets = append(targets, obj)
	}
	if len(targets) == 0 {
		return false
	}
	fd := analysis.EnclosingFuncDecl(file, rs.Pos())
	if fd == nil {
		return false
	}
	for _, target := range targets {
		if !sortedAfter(pass, fd, rs, target) {
			return false
		}
	}
	return true
}

// sortNames are the sort entry points that establish a deterministic
// order over a whole slice.
var sortNames = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
		"Ints": true, "Strings": true, "Float64s": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether target is the first argument of an
// approved sort call positioned after the range loop in fd.
func sortedAfter(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, target types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		funcs, ok := sortNames[pkgName.Imported().Path()]
		if !ok || !funcs[sel.Sel.Name] {
			return true
		}
		arg, ok := call.Args[0].(*ast.Ident)
		if !ok {
			return true
		}
		if pass.TypesInfo.Uses[arg] == target {
			found = true
			return false
		}
		return true
	})
	return found
}
