// Package untagged has no determinism marker; map iteration is not
// the analyzer's business here.
package untagged

func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { // clean: package not marked deterministic
		total += v
	}
	return total
}
