// Package a exercises the maporder analyzer. The package opts into
// the determinism suite: deltavet:deterministic.
package a

import "sort"

func sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want `nondeterministic iteration over map`
		total += v
	}
	return total
}

func keysSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // collect-then-sort idiom: clean
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func valuesViaSlice(m map[string]int) []int {
	var out []int
	for _, v := range m { // sorted with sort.Slice afterwards: clean
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func collectWithoutSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `nondeterministic iteration over map`
		keys = append(keys, k)
	}
	return keys
}

func mixedBody(m map[string]int) ([]string, int) {
	n := 0
	var keys []string
	for k := range m { // want `nondeterministic iteration over map`
		keys = append(keys, k)
		n++ // extra statement: not the pure collect idiom
	}
	sort.Strings(keys)
	return keys, n
}

func overSlice(xs []int) int {
	total := 0
	for _, v := range xs { // slices are ordered: clean
		total += v
	}
	return total
}

func suppressed(m map[string]int) int {
	n := 0
	//deltavet:ignore maporder -- pure count, order-independent
	for range m {
		n++
	}
	return n
}
