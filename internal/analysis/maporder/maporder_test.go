package maporder_test

import (
	"testing"

	"deltacluster/internal/analysis/analysistest"
	"deltacluster/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, ".", maporder.Analyzer, "a", "untagged")
}
