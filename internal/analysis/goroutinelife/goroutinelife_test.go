package goroutinelife_test

import (
	"testing"

	"deltacluster/internal/analysis/analysistest"
	"deltacluster/internal/analysis/goroutinelife"
)

func TestGoroutineLife(t *testing.T) {
	analysistest.Run(t, ".", goroutinelife.Analyzer, "gl")
}
