// Package gl exercises goroutinelife.
package gl

import (
	"context"
	"sync"
)

// leak launches a goroutine nothing observes.
func leak() {
	go func() { // want `goroutine has no lifecycle pairing`
		for i := 0; i < 10; i++ {
			_ = i * i
		}
	}()
}

// waited pairs the goroutine with a WaitGroup.
func waited() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // clean: wg.Done pairs with the owner's Wait
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// resulting sends its result; the owner receives.
func resulting() int {
	out := make(chan int, 1)
	go func() { // clean: send observed by the receive below
		out <- 42
	}()
	return <-out
}

// closing signals completion by closing a channel.
func closing() chan struct{} {
	done := make(chan struct{})
	go func() { // clean: close observed by the owner
		defer close(done)
		work()
	}()
	return done
}

// bounded ranges over a channel the owner closes.
func bounded(jobs chan int) {
	go func() { // clean: range drains until the owner closes jobs
		for j := range jobs {
			_ = j
		}
	}()
}

// cancellable consults a context.
func cancellable(ctx context.Context) {
	go func() { // clean: ctx cancellation reaches the body
		<-ctx.Done()
	}()
}

// ctxArg passes its context onward.
func ctxArg(ctx context.Context) {
	go func() { // clean: run consults the forwarded ctx
		run(ctx)
	}()
}

// selecting waits on a select.
func selecting(done chan struct{}, in chan int) {
	go func() { // clean: select observes done
		select {
		case <-done:
		case v := <-in:
			_ = v
		}
	}()
}

// named launches a same-package function whose body carries evidence.
func named(ctx context.Context) {
	go run(ctx) // clean: run's own body consults ctx
}

// namedLeak launches a same-package function with no evidence.
func namedLeak() {
	go work() // want `goroutine has no lifecycle pairing`
}

// valueLaunch launches a function value: the body is not inspectable.
func valueLaunch(f func()) {
	go f() // want `goroutine body is not inspectable`
}

// run blocks until its context is cancelled.
func run(ctx context.Context) {
	<-ctx.Done()
}

// work is evidence-free.
func work() {
	for i := 0; i < 100; i++ {
		_ = i
	}
}
