// Package goroutinelife flags goroutine launches with no visible
// lifecycle pairing. The service and resilience layers promise zero
// goroutine leaks — Shutdown "never abandons a goroutine", the
// supervisor "always waits" — and the -race e2e suites can only catch
// a violation probabilistically, when a leaked goroutine happens to
// touch shared state during the test window. This analyzer makes the
// discipline structural: every `go` statement must carry evidence, in
// the launched body itself, that some owner observes its exit.
//
// Accepted evidence, any one of:
//
//   - a sync.WaitGroup Done call (usually deferred) — the owner
//     Waits;
//   - a receive, select or channel range — the goroutine is bounded
//     by a done/ctx/queue channel closing;
//   - a send to, or close of, a channel — the owner receives the
//     result, so termination is observed;
//   - a context.Context in scope of the body (ctx.Done/ctx.Err or a
//     ctx-taking call) — cancellation reaches it.
//
// For `go f(...)` with a named same-package function, f's body is
// inspected. Launches whose callee is in another package or a
// function value carry no inspectable body; give them a closure with
// evidence or suppress with
// `deltavet:ignore goroutinelife reason=<who observes the exit>`.
//
// The check is syntactic: it proves the *pairing* exists, not that
// every exit path honors it — that remains the -race suites' job.
// What it removes is the silent case: a goroutine nothing ever waits
// on, receives from, or cancels.
package goroutinelife

import (
	"go/ast"
	"go/types"

	"deltacluster/internal/analysis"
)

// Analyzer is the goroutinelife pass.
var Analyzer = &analysis.Analyzer{
	Name: "goroutinelife",
	Doc: "flags go statements whose goroutine has no lifecycle pairing " +
		"(WaitGroup Done, channel receive/send/close/range, or ctx) on any path",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	// Index same-package function declarations so `go f()` can be
	// traced into f's body.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := launchBody(pass, decls, gs.Call)
			if body == nil {
				pass.Reportf(gs.Pos(),
					"goroutine body is not inspectable (cross-package or function value); "+
						"launch a closure with lifecycle evidence or suppress with a reviewed reason")
				return true
			}
			if !hasLifecycleEvidence(pass, body) {
				pass.Reportf(gs.Pos(),
					"goroutine has no lifecycle pairing: no WaitGroup Done, channel "+
						"receive/send/close/range, or ctx in its body — nothing observes its exit")
			}
			return true
		})
	}
	return nil, nil
}

// launchBody resolves the body a go statement executes: the literal's
// body for `go func(){...}()`, the declaration body for a
// same-package `go f(...)`.
func launchBody(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// hasLifecycleEvidence scans a goroutine body for any of the accepted
// exit-observation patterns.
func hasLifecycleEvidence(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true // owner receives the result
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true // bounded by a channel receive
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true // drains until the owner closes the channel
				}
			}
		case *ast.CallExpr:
			if isClose(pass, n) || isWaitGroupDone(pass, n) || usesContext(pass, n) {
				found = true
			}
		case *ast.Ident:
			if isContextValue(pass, n) {
				found = true // ctx in scope: cancellation reaches the body
			}
		}
		return !found
	})
	return found
}

// isClose reports the builtin close call.
func isClose(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "close"
}

// isWaitGroupDone reports a Done() call on a sync.WaitGroup.
func isWaitGroupDone(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// usesContext reports a call that passes or consults a
// context.Context (ctx.Done(), ctx.Err(), run(ctx, ...)).
func usesContext(pass *analysis.Pass, call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if isContextValue(pass, sel.X.(ast.Expr)) {
			return true
		}
	}
	for _, arg := range call.Args {
		if isContextValue(pass, arg) {
			return true
		}
	}
	return false
}

// isContextValue reports whether the expression has type
// context.Context.
func isContextValue(pass *analysis.Pass, e ast.Expr) bool {
	var tv types.TypeAndValue
	var ok bool
	if id, isIdent := e.(*ast.Ident); isIdent {
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return false
		}
		if v, isVar := obj.(*types.Var); isVar {
			return isContextType(v.Type())
		}
		return false
	}
	tv, ok = pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return isContextType(tv.Type)
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
