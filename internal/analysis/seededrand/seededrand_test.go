package seededrand_test

import (
	"testing"

	"deltacluster/internal/analysis/analysistest"
	"deltacluster/internal/analysis/seededrand"
)

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, ".", seededrand.Analyzer, "a", "untagged")
}
