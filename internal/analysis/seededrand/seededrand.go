// Package seededrand enforces the repository's seeding discipline:
// all randomness flows through the injected *stats.RNG, never the
// process-global math/rand source. Two rules:
//
//  1. In every package, calls to math/rand (and math/rand/v2)
//     top-level functions — Intn, Float64, Shuffle, Perm, Seed, … —
//     are flagged: they draw from the shared global generator, whose
//     stream depends on everything else in the process, so a run can
//     never be replayed from its seed.
//  2. In packages marked deltavet:deterministic, importing math/rand
//     at all is flagged: algorithm code must take the seeded
//     internal/stats RNG as a dependency rather than construct its
//     own generator (seeded or not), so that one Config.Seed
//     determines every draw of a run.
//
// internal/stats itself is the sanctioned wrapper; it is not marked
// deterministic and only touches math/rand through *rand.Rand method
// receivers, which rule 1 deliberately does not match.
package seededrand

import (
	"go/ast"
	"go/types"
	"strconv"

	"deltacluster/internal/analysis"
)

// Analyzer is the seededrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc: "forbids math/rand global-source calls everywhere and math/rand imports " +
		"in deltavet:deterministic packages; use the injected internal/stats RNG",
	Run: run,
}

func randPath(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func run(pass *analysis.Pass) (any, error) {
	deterministic := analysis.PackageMarked(pass.Files, analysis.DeterministicMarker)
	for _, file := range pass.Files {
		if deterministic {
			for _, imp := range file.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err == nil && randPath(path) {
					pass.Reportf(imp.Pos(),
						"deterministic package imports %s; inject a seeded *stats.RNG instead", path)
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !randPath(fn.Pkg().Path()) {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				return true // methods on an explicit *rand.Rand are fine
			}
			switch fn.Name() {
			case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
				// Constructors build an explicit generator; the import
				// rule above governs where that is allowed.
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s.%s draws from the process-global source and is not replayable from a seed; use a seeded *stats.RNG",
				fn.Pkg().Path(), fn.Name())
			return true
		})
	}
	return nil, nil
}
