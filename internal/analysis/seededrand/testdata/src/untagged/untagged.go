// Package untagged is not marked deterministic: importing math/rand
// is allowed (this is how the sanctioned wrapper is built), but
// global-source draws are still flagged everywhere.
package untagged

import "math/rand"

// NewGen builds an explicit, seeded generator: clean.
func NewGen(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Draw uses the process-global source: flagged even here.
func Draw() int {
	return rand.Intn(100) // want `process-global source`
}
