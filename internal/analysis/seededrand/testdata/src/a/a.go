// Package a exercises seededrand in an algorithm package:
// deltavet:deterministic.
package a

import "math/rand" // want `deterministic package imports math/rand`

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `process-global source`
}

func draw() float64 {
	return rand.Float64() // want `process-global source`
}

func seeded() *rand.Rand {
	// Still wrong in a deterministic package (the import is flagged
	// above), but the constructor call itself is not a global-source
	// draw.
	return rand.New(rand.NewSource(42))
}

func viaExplicitGenerator(r *rand.Rand) int {
	return r.Intn(10) // method on an explicit generator: clean
}
