// Package checkpointerr flags silently discarded errors on the
// durability chain: Close, Sync, Flush, Remove, Rename and anything
// named like a checkpoint writer. The DCKP format promises that a
// resumed run is bit-identical to an uninterrupted one; that promise
// is only as strong as the write-temp → sync → close → rename chain
// behind it, and every link reports failure solely through its return
// value. A dropped Close error after buffered writes means a torn
// checkpoint that parses (the CRC catches it) or, worse, a stale one
// that silently resumes from older state.
//
// The rule is narrower than errcheck: only *silent* discards are
// flagged — a call used as an expression statement. An explicit
// `_ = f.Close()` is visible at review and counts as a decision
// (best-effort cleanup on an error path is legitimate and common);
// the analyzer's job is to force that decision to be written down.
//
// Each finding carries two suggested fixes. The first — insert
// `_ = ` — is semantics-preserving and is what `deltavet -fix`
// applies; it converts a silent discard into a reviewed one without
// changing behavior. The second — `if err := ...; err != nil { return
// err }` — is offered only when the enclosing function returns
// exactly one value of type error, because only then is the rewrite
// well-typed without human judgment.
package checkpointerr

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/types"
	"strings"

	"deltacluster/internal/analysis"
)

// Analyzer is the checkpointerr pass.
var Analyzer = &analysis.Analyzer{
	Name: "checkpointerr",
	Doc: "flags silently discarded errors from Close/Sync/Flush/Remove/Rename and " +
		"checkpoint-writing calls; suggests `_ =` (reviewed discard) or an error return",
	Run: run,
}

// durabilityCall reports whether a callee by this name sits on the
// durability chain.
func durabilityCall(name string) bool {
	switch name {
	case "Close", "Sync", "Flush", "Remove", "RemoveAll", "Rename":
		return true
	}
	return strings.Contains(name, "Checkpoint") || strings.Contains(name, "Flush") ||
		strings.Contains(name, "Sync")
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(es.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(pass, call)
			if name == "" || !durabilityCall(name) {
				return true
			}
			if !returnsOnlyError(pass, call) {
				return true
			}
			d := analysis.Diagnostic{
				Pos: call.Pos(),
				Message: name + " error silently discarded on the durability chain; " +
					"handle it or make the discard explicit with `_ =`",
				SuggestedFixes: []analysis.SuggestedFix{{
					Message: "record the discard explicitly with `_ =`",
					Edits: []analysis.TextEdit{{
						Pos: es.Pos(), End: es.Pos(), NewText: "_ = ",
					}},
				}},
			}
			if fix, ok := returnFix(pass, file, es, call); ok {
				d.SuggestedFixes = append(d.SuggestedFixes, fix)
			}
			pass.Report(d)
			return true
		})
	}
	return nil, nil
}

// calleeName names the function or method a call statically invokes.
func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	if fn, ok := pass.TypesInfo.Uses[id].(*types.Func); ok {
		return fn.Name()
	}
	return ""
}

// returnsOnlyError reports whether the call yields exactly one result
// of type error — the shape both suggested fixes assume.
func returnsOnlyError(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	return isError(tv.Type)
}

func isError(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// returnFix builds the `if err := call(); err != nil { return err }`
// rewrite, offered only when the enclosing function returns exactly
// one error result so the rewrite is well-typed unaided.
func returnFix(pass *analysis.Pass, file *ast.File, es *ast.ExprStmt, call *ast.CallExpr) (analysis.SuggestedFix, bool) {
	fd := analysis.EnclosingFuncDecl(file, es.Pos())
	if fd == nil || fd.Type.Results == nil {
		return analysis.SuggestedFix{}, false
	}
	results := fd.Type.Results.List
	if len(results) != 1 || len(results[0].Names) > 1 {
		return analysis.SuggestedFix{}, false
	}
	tv, ok := pass.TypesInfo.Types[results[0].Type]
	if !ok || tv.Type == nil || !isError(tv.Type) {
		return analysis.SuggestedFix{}, false
	}
	var src bytes.Buffer
	if err := printer.Fprint(&src, pass.Fset, call); err != nil {
		return analysis.SuggestedFix{}, false
	}
	return analysis.SuggestedFix{
		Message: "propagate the error",
		Edits: []analysis.TextEdit{{
			Pos:     es.Pos(),
			End:     es.End(),
			NewText: "if err := " + src.String() + "; err != nil {\n\t\treturn err\n\t}",
		}},
	}, true
}
