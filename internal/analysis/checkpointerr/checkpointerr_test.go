package checkpointerr_test

import (
	"testing"

	"deltacluster/internal/analysis/analysistest"
	"deltacluster/internal/analysis/checkpointerr"
)

func TestCheckpointErr(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, ".", checkpointerr.Analyzer, "cp")
}
