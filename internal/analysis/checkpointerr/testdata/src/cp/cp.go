// Package cp exercises checkpointerr.
package cp

import "os"

// flush drops a Close error on the floor.
func flush(f *os.File) {
	f.Close() // want `Close error silently discarded on the durability chain`
}

// writeTemp is the atomic-write shape: cleanup discards on error
// paths, each flagged until made explicit.
func writeTemp(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()       // want `Close error silently discarded on the durability chain`
		os.Remove(path) // want `Remove error silently discarded on the durability chain`
		return err
	}
	f.Sync() // want `Sync error silently discarded on the durability chain`
	return f.Close()
}

// writeCheckpoint matches by name, not membership in a fixed list.
func writeCheckpoint() error { return nil }

// save drives the checkpoint writer and ignores it.
func save() {
	writeCheckpoint() // want `writeCheckpoint error silently discarded on the durability chain`
}

// reviewed discards explicitly: the decision is visible, clean.
func reviewed(f *os.File) {
	_ = f.Close()
}

// deferred cleanup is a different idiom and a different policy: clean.
func deferred(f *os.File) {
	defer f.Close()
}

// offChain calls something with no durability name: clean.
func offChain(f *os.File) {
	f.Chdir()
}
