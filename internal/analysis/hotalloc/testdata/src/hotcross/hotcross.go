// Package hotcross is the caller side of the cross-package
// propagation fixture: its annotated root drives fixture/dep.
package hotcross

import "fixture/dep"

// Drive is the annotated root; dep.Format inherits its hotness.
//
// deltavet:hotpath
func Drive(x int) string {
	return dep.Format(x)
}
