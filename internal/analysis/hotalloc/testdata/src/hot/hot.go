// Package hot exercises hotalloc within one package.
package hot

import "fmt"

// Logger is an interface parameter target.
type Logger interface {
	Log(string)
}

// scratch is engine-owned reusable storage.
var scratch = make([]float64, 0, 1024) // clean: package scope is setup

// kernel is the annotated root.
//
// deltavet:hotpath
func kernel(xs []float64, lg Logger) float64 {
	buf := make([]float64, len(xs)) // want `make in hot function kernel`
	var grow []float64
	sum := 0.0
	for _, x := range xs {
		grow = append(grow, x) // want `append to uncapped local slice grow in hot function kernel`
		sum += x
	}
	capped := make([]float64, 0, len(xs)) // want `make in hot function kernel`
	capped = append(capped, sum)          // clean: capped local
	msg := fmt.Sprintf("sum=%v", sum)     // want `fmt.Sprintf allocates in hot function kernel`
	lg.Log(msg)
	helper(sum)
	cold()
	_ = buf
	_ = capped
	//deltavet:ignore hotalloc reason=fixture proves reviewed suppressions hold on hot paths
	tmp := make([]float64, 1) // suppressed: no want
	_ = tmp
	if len(xs) > 1<<30 {
		panic(fmt.Sprintf("impossible length %d", len(xs))) // clean: panic path
	}
	return sum
}

// helper is hot only transitively, via kernel.
func helper(x float64) {
	box(x) // want `argument float64 boxes into interface parameter in hot function helper \(hotpath via kernel\)`
}

// box takes an interface.
func box(v any) { _ = v }

// cold is reachable from kernel but opted out.
//
// deltavet:coldpath
func cold() {
	_ = make([]byte, 64) // clean: coldpath stops propagation
}

// idle is not on any hot path.
func idle() []int {
	var s []int
	s = append(s, 1) // clean: not hot
	return s
}

// escape shows the closure rule.
//
// deltavet:hotpath
func escape() func() int {
	n := 0
	return func() int { // want `func literal in hot function escape; closures escape`
		n++
		return n
	}
}
