// Package dep is the callee side of the cross-package propagation
// fixture: nothing here is annotated, hotness arrives through facts
// from fixture/hotcross.
package dep

import "fmt"

// Format allocates; it is flagged only because hotcross's annotated
// root reaches it across the package boundary.
func Format(x int) string {
	return fmt.Sprintf("x=%d", x) // want `fmt.Sprintf allocates in hot function Format \(hotpath via Drive\)`
}

// Plain is never called from a hot path: identical body, no finding.
func Plain(x int) string {
	return fmt.Sprintf("x=%d", x) // clean: not reachable from any hotpath root
}
