package hotalloc_test

import (
	"testing"

	"deltacluster/internal/analysis/analysistest"
	"deltacluster/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, ".", hotalloc.Analyzer, "hot")
}

// TestHotAllocCrossPackage loads the dep and hotcross fixtures into
// one module pass: the annotated root in hotcross must propagate
// hotpath-ness into dep through the shared fact store, flagging
// dep.Format but not the identical, unreachable dep.Plain.
func TestHotAllocCrossPackage(t *testing.T) {
	analysistest.RunPkgs(t, ".", hotalloc.Analyzer, "dep", "hotcross")
}
