// Package hotalloc protects allocation-free hot paths at review time
// instead of only at bench time. BenchmarkDecideAll/workers=1 proves
// the FLOC decide phase performs zero heap allocations per operation;
// that property is one careless fmt.Sprintf, one growing append or
// one escaping closure away from silently regressing, and the bench
// gate only catches it after the fact (and only on the benched
// configuration).
//
// A function whose doc comment carries deltavet:hotpath opts into the
// discipline, and hotpath-ness propagates transitively to everything
// the function statically calls across all analyzed packages — the
// cross-package fact mechanism in the framework — so annotating
// floc's decideOne covers the cluster toggles and residue kernels it
// drives without annotating every helper. Propagation stops at
// functions marked deltavet:coldpath: code reachable from a hot path
// in the source but never taken in steady state (one-time cache
// builds, amortized geometric growth). Calls through interfaces and
// function values are not resolved; annotate their implementations
// directly if they sit on a hot path.
//
// Inside hot functions the analyzer flags the allocation-inducing
// constructs that have historically crept into kernels:
//
//   - calls to fmt's formatting functions (Sprintf and friends);
//   - make — allocate in setup, or reuse engine-owned scratch;
//   - append to an uncapped function-local slice (declared without
//     capacity, so steady-state growth reallocates);
//   - arguments boxed into interface parameters;
//   - function literals that are not immediately invoked (closures
//     escape to the heap when captured).
//
// Arguments of panic calls are exempt: a panic path executes at most
// once and its formatting cost is irrelevant. Amortized or
// warmup-only allocations that genuinely belong on a hot function are
// suppressed line by line with
// `deltavet:ignore hotalloc reason=<argument>`, keeping each
// exception visible and reviewed.
package hotalloc

import (
	"go/ast"
	"go/types"

	"deltacluster/internal/analysis"
)

// HotFact is exported for every function the propagation reaches; Via
// names the deltavet:hotpath root through which it became hot.
type HotFact struct {
	Via string
}

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flags allocation-inducing constructs (fmt, make, uncapped append, interface " +
		"boxing, closures) in deltavet:hotpath functions and their transitive callees",
	RunModule: run,
}

// fnInfo ties a function object to its declaration site.
type fnInfo struct {
	decl *ast.FuncDecl
	file *ast.File
	pass *analysis.Pass
}

func run(mp *analysis.ModulePass) error {
	fns := map[*types.Func]*fnInfo{}
	var order []*types.Func // declaration order across packages: deterministic roots and reports
	for _, pass := range mp.Passes {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fns[obj] = &fnInfo{decl: fd, file: file, pass: pass}
				order = append(order, obj)
			}
		}
	}

	// Seed with the annotated roots, in declaration order.
	hot := map[*types.Func]string{} // func -> root annotation it is hot via
	var queue []*types.Func
	for _, fn := range order {
		info := fns[fn]
		isHot := analysis.CommentGroupMarked(info.decl.Doc, analysis.HotPathMarker)
		isCold := analysis.CommentGroupMarked(info.decl.Doc, analysis.ColdPathMarker)
		if isHot && isCold {
			info.pass.Reportf(info.decl.Pos(),
				"%s is marked both deltavet:hotpath and deltavet:coldpath", fn.Name())
			continue
		}
		if isHot {
			hot[fn] = fn.Name()
			queue = append(queue, fn)
		}
	}

	// Propagate hotness breadth-first over static call edges, stopping
	// at coldpath functions.
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		info := fns[fn]
		via := hot[fn]
		ast.Inspect(info.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(info.pass, call)
			if callee == nil {
				return true
			}
			ci, known := fns[callee]
			if !known {
				return true // other module or bodyless: out of scope
			}
			if _, already := hot[callee]; already {
				return true
			}
			if analysis.CommentGroupMarked(ci.decl.Doc, analysis.ColdPathMarker) {
				return true
			}
			hot[callee] = via
			queue = append(queue, callee)
			return true
		})
	}

	// Export facts, then report violations, in declaration order.
	for _, fn := range order {
		via, isHot := hot[fn]
		if !isHot {
			continue
		}
		info := fns[fn]
		info.pass.ExportObjectFact(fn, HotFact{Via: via})
		checkHotBody(info.pass, fn, info.decl, via)
	}
	return nil
}

// staticCallee resolves a call to the package-level function or
// method it statically invokes, or nil (builtins, function values,
// interface methods, conversions).
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// checkHotBody reports the allocation-inducing constructs inside one
// hot function.
func checkHotBody(pass *analysis.Pass, fn *types.Func, fd *ast.FuncDecl, via string) {
	where := fn.Name()
	if via != where {
		where += " (hotpath via " + via + ")"
	}
	uncapped := uncappedLocals(pass, fd)

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanicCall(pass, n) {
				return false // a panic path runs at most once; its allocations are fine
			}
			checkCall(pass, n, where, uncapped)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(),
				"func literal in hot function %s; closures escape to the heap when captured", where)
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// uncappedLocals collects the function-local slice variables declared
// without a capacity plan: `var s []T`, `s := []T{}`, or a make with
// no capacity argument. Appending to these in steady state reallocates
// geometrically on the hot path. Parameters, fields and package-level
// slices are excluded — their capacity is the caller's contract.
func uncappedLocals(pass *analysis.Pass, fd *ast.FuncDecl) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	mark := func(name *ast.Ident, init ast.Expr) {
		v, ok := pass.TypesInfo.Defs[name].(*types.Var)
		if !ok {
			return
		}
		if _, isSlice := v.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		if init == nil {
			out[v] = true // var s []T
			return
		}
		switch e := ast.Unparen(init).(type) {
		case *ast.CompositeLit:
			if len(e.Elts) == 0 {
				out[v] = true // s := []T{}
			}
		case *ast.CallExpr:
			if builtinName(pass, e) == "make" && len(e.Args) < 3 {
				out[v] = true // make without an explicit capacity
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.Defs[id] != nil {
						mark(id, n.Rhs[i])
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				var init ast.Expr
				if i < len(n.Values) {
					init = n.Values[i]
				}
				mark(name, init)
			}
		}
		return true
	})
	return out
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(pass *analysis.Pass, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// isPanicCall reports whether the call is the builtin panic.
func isPanicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	return builtinName(pass, call) == "panic"
}

// checkCall reports one call expression's allocation hazards.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, where string, uncapped map[*types.Var]bool) {
	// Builtins: make allocates; append to an uncapped local grows.
	if name := builtinName(pass, call); name != "" {
		switch name {
		case "make":
			pass.Reportf(call.Pos(),
				"make in hot function %s; allocate in setup or reuse engine-owned scratch", where)
		case "append":
			if len(call.Args) > 0 {
				if base, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.Uses[base].(*types.Var); ok && uncapped[v] {
						pass.Reportf(call.Pos(),
							"append to uncapped local slice %s in hot function %s; preallocate with a capacity or reuse scratch",
							base.Name, where)
					}
				}
			}
		}
		return
	}

	// fmt's formatting family allocates its result (and boxes every
	// operand on the way in).
	if fn := staticCallee(pass, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(),
			"fmt.%s allocates in hot function %s; format off the hot path", fn.Name(), where)
		return
	}

	// Conversions to interface types box.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if isInterface(tv.Type) && len(call.Args) == 1 && !isInterfaceExpr(pass, call.Args[0]) {
			pass.Reportf(call.Pos(),
				"conversion boxes %s into %s in hot function %s",
				typeStr(pass, call.Args[0]), tv.Type.String(), where)
		}
		return
	}

	// Concrete arguments passed to interface parameters box.
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic():
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice: no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue
		}
		if !isInterface(pt) || isInterfaceExpr(pass, arg) {
			continue
		}
		pass.Reportf(arg.Pos(),
			"argument %s boxes into interface parameter in hot function %s",
			typeStr(pass, arg), where)
	}
}

// callSignature returns the signature of a (non-builtin,
// non-conversion) call.
func callSignature(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// isInterfaceExpr reports whether the expression already has interface
// type (no boxing on assignment) or is the untyped nil.
func isInterfaceExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return true // be conservative: no type info, no finding
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return true
	}
	return isInterface(tv.Type)
}

func typeStr(pass *analysis.Pass, e ast.Expr) string {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return "value"
	}
	return types.TypeString(tv.Type, types.RelativeTo(pass.Pkg))
}
