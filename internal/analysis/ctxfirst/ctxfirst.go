// Package ctxfirst enforces the context-plumbing discipline in
// packages marked deltavet:deterministic. Cancellation support
// (floc.RunContext and friends) threads a context.Context through the
// engines; the two ways that plumbing rots are a context parameter
// drifting out of first position (callers then pass it
// inconsistently, and wrappers stop composing) and a context stored
// in a struct field (the stored context outlives the call it scoped,
// so cancellation checks consult a stale context — exactly the bug
// the return-within-one-iteration guarantee forbids).
//
// The analyzer therefore reports, in marked packages only:
//
//   - any function, method, function literal or interface method whose
//     signature takes a context.Context anywhere but the first
//     parameter, and
//   - any struct field of type context.Context.
//
// Suppress a finding with `deltavet:ignore ctxfirst -- <reason>`.
package ctxfirst

import (
	"go/ast"
	"go/types"

	"deltacluster/internal/analysis"
)

// Analyzer is the ctxfirst pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxfirst",
	Doc: "flags context.Context parameters that are not first and context.Context " +
		"struct fields in deltavet:deterministic packages",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.PackageMarked(pass.Files, analysis.DeterministicMarker) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.FuncType:
				// Covers FuncDecl signatures, function literals,
				// interface methods and named function types alike.
				checkParams(pass, t)
			case *ast.StructType:
				checkFields(pass, t)
			}
			return true
		})
	}
	return nil, nil
}

// checkParams reports every context.Context parameter that is not the
// first parameter of the signature. Parameter groups are flattened, so
// `a int, b, c context.Context` reports b and c individually.
func checkParams(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	flat := 0
	for _, field := range ft.Params.List {
		isCtx := isContext(pass, field.Type)
		// An unnamed parameter group still occupies one position.
		names := len(field.Names)
		if names == 0 {
			names = 1
		}
		for i := 0; i < names; i++ {
			if isCtx && flat > 0 {
				pos := field.Type.Pos()
				label := ""
				if len(field.Names) > 0 {
					pos = field.Names[i].Pos()
					label = " " + field.Names[i].Name
				}
				pass.Reportf(pos,
					"context.Context parameter%s at position %d; context must be the first parameter",
					label, flat+1)
			}
			flat++
		}
	}
}

// checkFields reports struct fields of type context.Context.
func checkFields(pass *analysis.Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if !isContext(pass, field.Type) {
			continue
		}
		label := "embedded"
		pos := field.Type.Pos()
		if len(field.Names) > 0 {
			label = field.Names[0].Name
			pos = field.Names[0].Pos()
		}
		pass.Reportf(pos,
			"context.Context stored in struct field %s; pass the context as a parameter instead",
			label)
	}
}

// isContext reports whether the expression's type is context.Context.
func isContext(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
