// Package a exercises the ctxfirst analyzer. The package opts into
// the determinism suite: deltavet:deterministic.
package a

import "context"

type engine struct {
	k   int
	ctx context.Context // want `context.Context stored in struct field ctx`
}

type embedsCtx struct {
	context.Context // want `context.Context stored in struct field embedded`
}

type cleanState struct {
	cancel context.CancelFunc // CancelFunc is fine; only the context itself is flagged
}

func good(ctx context.Context, x int) int {
	_ = ctx
	return x
}

func onlyCtx(ctx context.Context) { _ = ctx }

func noCtx(x int) int { return x }

func bad(x int, ctx context.Context) { // want `context.Context parameter ctx at position 2`
	_ = ctx
	_ = x
}

func (e *engine) badMethod(x int, ctx context.Context) { // want `context.Context parameter ctx at position 2`
	_ = ctx
	_ = x
}

func grouped(a int, b, c context.Context) { // want `parameter b at position 2` `parameter c at position 3`
	_, _, _ = a, b, c
}

type miner interface {
	Mine(level int, ctx context.Context) error // want `context.Context parameter ctx at position 2`
}

var lit = func(x int, ctx context.Context) { // want `context.Context parameter ctx at position 2`
	_ = ctx
	_ = x
}

type badFuncType func(int, context.Context) // want `context.Context parameter at position 2`

func suppressed(x int,
	//deltavet:ignore ctxfirst -- adapter matches an external callback signature
	ctx context.Context) {
	_ = ctx
	_ = x
}
