// Package untagged is not marked deterministic, so ctxfirst must stay
// silent even over clearly non-conforming signatures.
package untagged

import "context"

type holder struct {
	ctx context.Context // no marker: clean
}

func trailing(x int, ctx context.Context) { // no marker: clean
	_ = ctx
	_ = x
}
