package ctxfirst_test

import (
	"testing"

	"deltacluster/internal/analysis/analysistest"
	"deltacluster/internal/analysis/ctxfirst"
)

func TestCtxFirst(t *testing.T) {
	analysistest.Run(t, ".", ctxfirst.Analyzer, "a", "untagged")
}
