package walltime_test

import (
	"testing"

	"deltacluster/internal/analysis/analysistest"
	"deltacluster/internal/analysis/walltime"
)

func TestWallTime(t *testing.T) {
	analysistest.Run(t, ".", walltime.Analyzer, "wt", "untagged")
}
