// Package wt exercises walltime: deltavet:deterministic.
package wt

import "time"

// Result carries a reporting duration.
type Result struct {
	Duration time.Duration
}

// decide folds the clock into engine state: flagged.
func decide(xs []float64) float64 {
	start := time.Now() // want `time.Now in deterministic package wt`
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	if time.Since(start) > time.Second { // want `time.Since in deterministic package wt`
		return 0
	}
	time.Sleep(time.Millisecond) // want `time.Sleep in deterministic package wt`
	return sum
}

// report times the run for its Duration field only.
//
// deltavet:observability
func report(xs []float64) *Result {
	start := time.Now() // clean: observability function
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	_ = sum
	return &Result{Duration: time.Since(start)} // clean: observability function
}

// reportSleep shows that observability never covers blocking.
//
// deltavet:observability
func reportSleep() {
	time.Sleep(time.Millisecond) // want `time.Sleep in deterministic package wt`
}

// timers are blockers too.
func timers() {
	t := time.NewTimer(time.Second) // want `time.NewTimer in deterministic package wt`
	<-t.C
	<-time.After(time.Second) // want `time.After in deterministic package wt`
}

// durations only manipulates constants: clean.
func durations(d time.Duration) time.Duration {
	return d + time.Millisecond
}
