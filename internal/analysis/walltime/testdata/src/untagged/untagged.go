// Package untagged is not deltavet-deterministic: walltime stays out.
package untagged

import "time"

// Free uses the clock without restriction.
func Free() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}
