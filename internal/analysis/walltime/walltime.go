// Package walltime flags wall-clock reads and sleeps in packages
// marked deltavet:deterministic. The engine's contract is that a run
// is a pure function of (matrix bytes, config, seed): fingerprints,
// checkpoint resume and the workers-matrix CI job all depend on it.
// time.Now and friends are the easiest way to break that contract
// without noticing — a timestamp folded into an ordering decision, a
// deadline that fires on a loaded CI box but not locally — and no
// golden test can catch a dependency that only varies under load.
//
// Flagged in deterministic packages: time.Now, time.Since,
// time.Until, time.Sleep, time.After, time.Tick, time.NewTimer and
// time.NewTicker.
//
// Functions whose doc comment carries deltavet:observability may read
// the clock (Now, Since, Until) — their measurements feed reporting
// and metrics, never decisions — but may still not Sleep or construct
// timers: an observability helper that blocks or schedules is
// influencing execution, not observing it. Genuinely exceptional
// sites are suppressed line by line with
// `deltavet:ignore walltime reason=<why the clock cannot affect results>`.
package walltime

import (
	"go/ast"
	"go/types"

	"deltacluster/internal/analysis"
)

// Analyzer is the walltime pass.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc: "flags wall-clock reads (time.Now/Since/...) and sleeps in deltavet:deterministic " +
		"packages; deltavet:observability functions may read the clock but not block on it",
	Run: run,
}

// reads are clock observations an observability-marked function may
// perform; blockers influence execution and are never exempt.
var (
	reads    = map[string]bool{"Now": true, "Since": true, "Until": true}
	blockers = map[string]bool{
		"Sleep": true, "After": true, "Tick": true,
		"NewTimer": true, "NewTicker": true, "AfterFunc": true,
	}
)

func run(pass *analysis.Pass) (any, error) {
	if !analysis.PackageMarked(pass.Files, analysis.DeterministicMarker) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := timeCall(pass, call)
			if !ok {
				return true
			}
			observ := false
			if fd := analysis.EnclosingFuncDecl(file, call.Pos()); fd != nil {
				observ = analysis.CommentGroupMarked(fd.Doc, analysis.ObservabilityMarker)
			}
			switch {
			case reads[name] && observ:
				// sanctioned: measurement feeding reporting only
			case reads[name]:
				pass.Reportf(call.Pos(),
					"time.%s in deterministic package %s; results must not depend on the wall clock "+
						"(mark the function deltavet:observability if this only feeds reporting)",
					name, pass.Pkg.Name())
			case blockers[name]:
				pass.Reportf(call.Pos(),
					"time.%s in deterministic package %s; blocking on the wall clock makes "+
						"execution load-dependent and is never exempt", name, pass.Pkg.Name())
			}
			return true
		})
	}
	return nil, nil
}

// timeCall resolves a call to a function of the standard time package
// and returns its name.
func timeCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return "", false
	}
	if !reads[fn.Name()] && !blockers[fn.Name()] {
		return "", false
	}
	return fn.Name(), true
}
