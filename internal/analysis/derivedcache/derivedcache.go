// Package derivedcache generalizes residueinvariant's single-writer
// rule from individual guarded fields to whole derived-state types.
// The matrix package's column-major mirror and missing-value bitsets
// are the motivating case: they are bit-exact derived copies of the
// row-major backing array, published through an atomic.Pointer with a
// mutex-guarded double-checked build, and every kernel that reads
// them assumes they agree with the source to the last bit. A write
// from any code path outside the registered mutators — easy to add
// while wiring incremental ingestion or a new transform — silently
// desynchronizes the caches, and the corruption surfaces as
// wrong-but-plausible residues far from the cause.
//
// The rule: a struct type whose declaration doc carries
// deltavet:derived-cache may only have its fields assigned (including
// +=, ++, and element writes through its slice/map/array fields)
// inside same-package functions whose doc comment carries
// deltavet:writer. Publishing through an atomic.Pointer[T] (or *T)
// field — Store, Swap, CompareAndSwap — counts as a write to the
// derived state and is restricted the same way; Load is a read and
// stays unrestricted, which is exactly the double-checked-build
// pattern: any reader may Load and race to the builder, but only the
// registered builder publishes.
package derivedcache

import (
	"go/ast"
	"go/token"
	"go/types"

	"deltacluster/internal/analysis"
)

// Analyzer is the derivedcache pass.
var Analyzer = &analysis.Analyzer{
	Name: "derivedcache",
	Doc: "restricts writes to deltavet:derived-cache struct types (field assignments " +
		"and atomic.Pointer Store/Swap publication) to deltavet:writer functions",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	marked, fields := markedTypes(pass)
	if len(marked) == 0 {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, e := range n.Lhs {
					checkWrite(pass, file, fields, e)
				}
			case *ast.IncDecStmt:
				checkWrite(pass, file, fields, n.X)
			case *ast.CallExpr:
				checkPublish(pass, file, marked, n)
			}
			return true
		})
	}
	return nil, nil
}

// markedTypes collects the named struct types carrying the
// derived-cache marker (on the TypeSpec or its GenDecl) and the set
// of their field objects.
func markedTypes(pass *analysis.Pass) (map[*types.TypeName]bool, map[*types.Var]string) {
	marked := map[*types.TypeName]bool{}
	fields := map[*types.Var]string{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			declMarked := analysis.CommentGroupMarked(gd.Doc, analysis.DerivedCacheMarker)
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !declMarked && !analysis.CommentGroupMarked(ts.Doc, analysis.DerivedCacheMarker) &&
					!analysis.CommentGroupMarked(ts.Comment, analysis.DerivedCacheMarker) {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				marked[tn] = true
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
							fields[v] = ts.Name.Name
						}
					}
				}
			}
		}
	}
	return marked, fields
}

// checkWrite reports an assignment whose target resolves to a field
// of a derived-cache type outside an approved writer. Index and slice
// expressions are unwrapped so element writes through the cache's
// slices count.
func checkWrite(pass *analysis.Pass, file *ast.File, fields map[*types.Var]string, e ast.Expr) {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
			continue
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.StarExpr:
			e = x.X
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	typeName, guarded := fields[v]
	if !guarded {
		return
	}
	reportUnlessWriter(pass, file, e.Pos(),
		"write to derived-cache field %s.%s", typeName, v.Name())
}

// checkPublish reports Store/Swap/CompareAndSwap on an atomic pointer
// to a derived-cache type outside an approved writer.
func checkPublish(pass *analysis.Pass, file *ast.File, marked map[*types.TypeName]bool, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch sel.Sel.Name {
	case "Store", "Swap", "CompareAndSwap":
	default:
		return
	}
	recv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || recv.Type == nil {
		return
	}
	tn := atomicPointerTarget(recv.Type)
	if tn == nil || !marked[tn] {
		return
	}
	reportUnlessWriter(pass, file, call.Pos(),
		"%s publishes derived-cache type %s", sel.Sel.Name, tn.Name())
}

// atomicPointerTarget returns the type name T when t is
// sync/atomic.Pointer[T] or sync/atomic.Pointer[*T] (possibly behind
// a pointer), else nil.
func atomicPointerTarget(t types.Type) *types.TypeName {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" || obj.Name() != "Pointer" {
		return nil
	}
	args := named.TypeArgs()
	if args == nil || args.Len() != 1 {
		return nil
	}
	arg := args.At(0)
	if p, ok := arg.(*types.Pointer); ok {
		arg = p.Elem()
	}
	if n, ok := arg.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// reportUnlessWriter emits the diagnostic unless the enclosing
// function is marked deltavet:writer.
func reportUnlessWriter(pass *analysis.Pass, file *ast.File, pos token.Pos, format string, args ...any) {
	fd := analysis.EnclosingFuncDecl(file, pos)
	if fd != nil && analysis.CommentGroupMarked(fd.Doc, analysis.WriterMarker) {
		return
	}
	where := "package-level code"
	if fd != nil {
		where = fd.Name.Name
	}
	pass.Reportf(pos, format+" outside an approved writer (%s is not marked deltavet:writer)",
		append(args, where)...)
}
