package derivedcache_test

import (
	"testing"

	"deltacluster/internal/analysis/analysistest"
	"deltacluster/internal/analysis/derivedcache"
)

func TestDerivedCache(t *testing.T) {
	analysistest.Run(t, ".", derivedcache.Analyzer, "dc")
}
