// Package dc exercises derivedcache.
package dc

import (
	"sync"
	"sync/atomic"
)

// mirror is the derived state under test.
//
// deltavet:derived-cache
type mirror struct {
	cols  []float64
	masks []uint64
	width int
}

// plain is an unmarked type: writes anywhere are fine.
type plain struct {
	cols []float64
}

// store owns the published cache.
type store struct {
	der atomic.Pointer[mirror]
	mu  sync.Mutex
	src []float64
}

// build constructs and publishes the mirror (deltavet:writer).
func (s *store) build() *mirror {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d := s.der.Load(); d != nil { // Load is a read: always fine
		return d
	}
	d := &mirror{width: 1}
	d.cols = append(d.cols, s.src...)
	d.masks = make([]uint64, len(s.src))
	s.der.Store(d)
	return d
}

// invalidate drops the cache (deltavet:writer).
func (s *store) invalidate() { s.der.Store(nil) }

// rogueWrite mutates the derived state from an unregistered path.
func (s *store) rogueWrite(v float64) {
	d := s.der.Load()
	d.cols[0] = v   // want `write to derived-cache field mirror.cols outside an approved writer \(rogueWrite`
	d.width++       // want `write to derived-cache field mirror.width outside an approved writer \(rogueWrite`
	d.masks[0] |= 1 // want `write to derived-cache field mirror.masks outside an approved writer \(rogueWrite`
}

// roguePublish swaps the cache pointer from an unregistered path.
func (s *store) roguePublish(d *mirror) {
	s.der.Store(d)               // want `Store publishes derived-cache type mirror outside an approved writer \(roguePublish`
	old := s.der.Swap(d)         // want `Swap publishes derived-cache type mirror outside an approved writer \(roguePublish`
	s.der.CompareAndSwap(old, d) // want `CompareAndSwap publishes derived-cache type mirror outside an approved writer \(roguePublish`
}

// reader only loads: clean.
func (s *store) reader() float64 {
	d := s.der.Load()
	if d == nil {
		d = s.build()
	}
	return d.cols[0]
}

// plainWrite touches the unmarked type: clean.
func plainWrite(p *plain, v float64) {
	p.cols = append(p.cols, v)
}
