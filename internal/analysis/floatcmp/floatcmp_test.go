package floatcmp_test

import (
	"testing"

	"deltacluster/internal/analysis/analysistest"
	"deltacluster/internal/analysis/floatcmp"
)

func TestFloatCmp(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, ".", floatcmp.Analyzer, "a")
}
