// Package a exercises floatcmp: deltavet:deterministic.
package a

type residue struct {
	value float64
}

func equalResidue(a, b float64) bool {
	return a == b // want `raw == between floating-point values`
}

func notEqual(a, b float32) bool {
	return a != b // want `raw != between floating-point values`
}

func fieldCompare(a, b residue) bool {
	return a.value == b.value // want `raw == between floating-point values`
}

func zeroCheck(x float64) bool {
	return x == 0 // want `raw == between floating-point values`
}

func ordered(a, b float64) bool {
	return a <= b // ordered comparisons are clean
}

func ints(a, b int) bool {
	return a == b // integer equality is exact: clean
}

// approxEqual is this package's epsilon helper.
//
// deltavet:approx-helper
func approxEqual(a, b, tol float64) bool {
	if a == b { // clean: inside an approved helper
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func viaHelper(a, b float64) bool {
	return approxEqual(a, b, 1e-9)
}
