// Package floatcmp flags == and != between floating-point expressions
// in packages marked deltavet:deterministic. Residues, gains and
// bases are accumulated incrementally in the FLOC engine; two
// mathematically equal quantities computed along different paths
// routinely differ in the last ulp, so raw equality silently turns
// into "usually true" and breaks tie decisions and termination
// checks. Such comparisons must go through the epsilon helpers in
// internal/stats (EqualWithin, Close) or be rewritten as ordered
// comparisons.
//
// Functions whose doc comment carries deltavet:approx-helper are
// exempt — the helpers themselves define the tolerance semantics and
// legitimately use raw comparisons (e.g. for the exact-equality fast
// path or infinity handling).
package floatcmp

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strconv"

	"deltacluster/internal/analysis"
)

// statsPath is the sanctioned epsilon-helper package.
const statsPath = "deltacluster/internal/stats"

// Analyzer is the floatcmp pass.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc: "flags ==/!= between floats in deltavet:deterministic packages; " +
		"compare residues and gains through the internal/stats epsilon helpers",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.PackageMarked(pass.Files, analysis.DeterministicMarker) {
		return nil, nil
	}
	for _, file := range pass.Files {
		importEdits := statsImportEdits(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, be.X) && !isFloat(pass, be.Y) {
				return true
			}
			if fd := analysis.EnclosingFuncDecl(file, be.Pos()); fd != nil &&
				analysis.CommentGroupMarked(fd.Doc, analysis.ApproxHelperMarker) {
				return true
			}
			d := analysis.Diagnostic{
				Pos: be.OpPos,
				Message: "raw " + be.Op.String() +
					" between floating-point values; use an epsilon helper (stats.EqualWithin/stats.Close) or an ordered comparison",
			}
			if fix, ok := closeFix(pass, be, importEdits); ok {
				d.SuggestedFixes = []analysis.SuggestedFix{fix}
			}
			pass.Report(d)
			return true
		})
	}
	return nil, nil
}

// closeFix rewrites `x == y` to `stats.Close(x, y)` (and != to its
// negation), adding the internal/stats import when the file lacks it.
// The replacement is a call expression, which binds tighter than any
// operator the comparison could be embedded under, so no
// parenthesization is needed.
func closeFix(pass *analysis.Pass, be *ast.BinaryExpr, importEdits []analysis.TextEdit) (analysis.SuggestedFix, bool) {
	if pass.Pkg != nil && pass.Pkg.Path() == statsPath {
		return analysis.SuggestedFix{}, false // the helpers cannot call themselves
	}
	// stats.Close takes float64: only offer the rewrite when both
	// operands are float64 (or untyped constants that convert to it);
	// a float32 comparison still gets the diagnostic, fix by hand.
	if !float64ish(pass, be.X) || !float64ish(pass, be.Y) {
		return analysis.SuggestedFix{}, false
	}
	var x, y bytes.Buffer
	if err := printer.Fprint(&x, pass.Fset, be.X); err != nil {
		return analysis.SuggestedFix{}, false
	}
	if err := printer.Fprint(&y, pass.Fset, be.Y); err != nil {
		return analysis.SuggestedFix{}, false
	}
	neg := ""
	if be.Op == token.NEQ {
		neg = "!"
	}
	edits := append([]analysis.TextEdit{{
		Pos:     be.Pos(),
		End:     be.End(),
		NewText: neg + "stats.Close(" + x.String() + ", " + y.String() + ")",
	}}, importEdits...)
	return analysis.SuggestedFix{
		Message: "compare through stats.Close",
		Edits:   edits,
	}, true
}

// statsImportEdits returns the edit that adds the internal/stats
// import to file, or nil when it is already imported.
func statsImportEdits(pass *analysis.Pass, file *ast.File) []analysis.TextEdit {
	var importDecl *ast.GenDecl
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		importDecl = gd
		for _, spec := range gd.Specs {
			is := spec.(*ast.ImportSpec)
			if path, err := strconv.Unquote(is.Path.Value); err == nil && path == statsPath {
				return nil
			}
		}
	}
	quoted := strconv.Quote(statsPath)
	if importDecl == nil {
		return []analysis.TextEdit{{
			Pos:     file.Name.End(),
			End:     file.Name.End(),
			NewText: "\n\nimport " + quoted,
		}}
	}
	if importDecl.Lparen.IsValid() && len(importDecl.Specs) > 0 {
		last := importDecl.Specs[len(importDecl.Specs)-1]
		return []analysis.TextEdit{{
			Pos:     last.End(),
			End:     last.End(),
			NewText: "\n\t" + quoted,
		}}
	}
	return []analysis.TextEdit{{
		Pos:     importDecl.End(),
		End:     importDecl.End(),
		NewText: "\nimport " + quoted,
	}}
}

// float64ish reports whether the expression can be passed to a
// float64 parameter unchanged: typed float64, or an untyped constant.
func float64ish(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Float64 || b.Info()&types.IsUntyped != 0
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Float32, types.Float64, types.UntypedFloat:
		return true
	}
	return false
}
