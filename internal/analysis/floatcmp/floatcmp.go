// Package floatcmp flags == and != between floating-point expressions
// in packages marked deltavet:deterministic. Residues, gains and
// bases are accumulated incrementally in the FLOC engine; two
// mathematically equal quantities computed along different paths
// routinely differ in the last ulp, so raw equality silently turns
// into "usually true" and breaks tie decisions and termination
// checks. Such comparisons must go through the epsilon helpers in
// internal/stats (EqualWithin, Close) or be rewritten as ordered
// comparisons.
//
// Functions whose doc comment carries deltavet:approx-helper are
// exempt — the helpers themselves define the tolerance semantics and
// legitimately use raw comparisons (e.g. for the exact-equality fast
// path or infinity handling).
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"deltacluster/internal/analysis"
)

// Analyzer is the floatcmp pass.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc: "flags ==/!= between floats in deltavet:deterministic packages; " +
		"compare residues and gains through the internal/stats epsilon helpers",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.PackageMarked(pass.Files, analysis.DeterministicMarker) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, be.X) && !isFloat(pass, be.Y) {
				return true
			}
			if fd := analysis.EnclosingFuncDecl(file, be.Pos()); fd != nil &&
				analysis.CommentGroupMarked(fd.Doc, analysis.ApproxHelperMarker) {
				return true
			}
			pass.Reportf(be.OpPos,
				"raw %s between floating-point values; use an epsilon helper (stats.EqualWithin/stats.Close) or an ordered comparison",
				be.Op)
			return true
		})
	}
	return nil, nil
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Float32, types.Float64, types.UntypedFloat:
		return true
	}
	return false
}
