// Package a exercises residueinvariant: an engine-like struct whose
// cached sums are guarded.
package a

type engine struct {
	clusters []int
	residues []float64 // cached per-cluster residue // deltavet:guard
	resSum   float64   // running sum // deltavet:guard
	scratch  float64   // unguarded
}

// apply is the approved incremental writer (deltavet:writer).
func (e *engine) apply(c int, delta float64) {
	e.residues[c] += delta // clean: inside a writer
	e.resSum += delta      // clean: inside a writer
}

// rebuild recomputes everything from scratch (deltavet:writer).
func (e *engine) rebuild(values []float64) {
	e.resSum = 0 // clean
	for c, v := range values {
		e.residues[c] = v // clean
		e.resSum += v     // clean
	}
}

// sneakyUpdate is NOT an approved writer.
func (e *engine) sneakyUpdate(c int, v float64) {
	e.residues[c] = v // want `write to guarded field residues outside an approved writer`
	e.resSum += v     // want `write to guarded field resSum outside an approved writer`
}

func (e *engine) reader(c int) float64 {
	return e.residues[c] + e.resSum // reads are unrestricted
}

func (e *engine) unguardedWrite(v float64) {
	e.scratch = v // clean: field not guarded
}

func (e *engine) increment() {
	e.resSum++ // want `write to guarded field resSum outside an approved writer`
}

func (e *engine) inClosure() func() {
	return func() {
		e.resSum = 0 // want `write to guarded field resSum outside an approved writer`
	}
}

// escapeHatch shows the suppression directive.
func (e *engine) escapeHatch() {
	//deltavet:ignore residueinvariant -- test-only corruption helper
	e.resSum = -1
}
