package residueinvariant_test

import (
	"testing"

	"deltacluster/internal/analysis/analysistest"
	"deltacluster/internal/analysis/residueinvariant"
)

func TestResidueInvariant(t *testing.T) {
	analysistest.Run(t, ".", residueinvariant.Analyzer, "a")
}
