// Package residueinvariant enforces single-writer discipline over
// cached invariants. The FLOC engine keeps residues, their running
// sum and per-cluster costs incrementally consistent with cluster
// membership; the cluster package does the same for its per-row and
// per-column aggregate sums. One stray assignment from a new code
// path — easy to introduce while adding parallelism or sharding —
// silently desynchronizes the caches from the data they summarize,
// and the corruption only surfaces as slightly-wrong residues many
// iterations later.
//
// The rule: a struct field whose comment carries deltavet:guard may
// only be assigned (including +=, ++, and friends) inside functions
// of the same package whose doc comment carries deltavet:writer.
// Reads are unrestricted. The check is syntactic over assignment
// statements; writes that alias the field first (copy into a slice
// field obtained elsewhere, pointer escapes) are out of scope and
// are instead caught at runtime by the deltadebug build-tag
// assertions in internal/floc.
package residueinvariant

import (
	"go/ast"
	"go/types"

	"deltacluster/internal/analysis"
)

// Analyzer is the residueinvariant pass.
var Analyzer = &analysis.Analyzer{
	Name: "residueinvariant",
	Doc: "restricts assignments to deltavet:guard struct fields to functions " +
		"marked deltavet:writer, keeping residue bookkeeping single-writer",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	guarded := guardedFields(pass)
	if len(guarded) == 0 {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var lhs []ast.Expr
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				lhs = stmt.Lhs
			case *ast.IncDecStmt:
				lhs = []ast.Expr{stmt.X}
			default:
				return true
			}
			for _, e := range lhs {
				fld := guardedTarget(pass, guarded, e)
				if fld == nil {
					continue
				}
				fd := analysis.EnclosingFuncDecl(file, e.Pos())
				if fd != nil && analysis.CommentGroupMarked(fd.Doc, analysis.WriterMarker) {
					continue
				}
				where := "package-level code"
				if fd != nil {
					where = fd.Name.Name
				}
				pass.Reportf(e.Pos(),
					"write to guarded field %s outside an approved writer (%s is not marked deltavet:writer)",
					fld.Name(), where)
			}
			return true
		})
	}
	return nil, nil
}

// guardedFields collects the *types.Var of every struct field whose
// declaration comment contains the guard marker.
func guardedFields(pass *analysis.Pass) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !analysis.CommentGroupMarked(field.Doc, analysis.GuardMarker) &&
					!analysis.CommentGroupMarked(field.Comment, analysis.GuardMarker) {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						out[v] = true
					}
				}
			}
			return true
		})
	}
	return out
}

// guardedTarget resolves an assignment target to a guarded field, if
// it is one. Both direct selectors (e.resSum = …) and indexed
// selectors over guarded slice/map fields (e.residues[c] = …) count
// as writes to the field.
func guardedTarget(pass *analysis.Pass, guarded map[*types.Var]bool, e ast.Expr) *types.Var {
	for {
		ix, ok := e.(*ast.IndexExpr)
		if !ok {
			break
		}
		e = ix.X
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	if v, ok := s.Obj().(*types.Var); ok && guarded[v] {
		return v
	}
	return nil
}
