package analysis_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deltacluster/internal/analysis"
)

// loadSnippet type-checks one in-memory file as a throwaway package
// and returns it wrapped for RunAnalyzers.
func loadSnippet(t *testing.T, src string) *analysis.Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir(dir, "fixture/snippet")
	if err != nil {
		t.Fatalf("loading snippet: %v", err)
	}
	return pkg
}

// reportAt is a toy analyzer that flags every return statement, with a
// fix that deletes nothing (so suppression is the only variable).
var reportAll = &analysis.Analyzer{
	Name: "toy",
	Doc:  "flags every return statement",
	Run: func(pass *analysis.Pass) (any, error) {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				pass.Reportf(d.Pos(), "decl flagged")
			}
		}
		return nil, nil
	},
}

func TestIgnoreDirectiveSuppresses(t *testing.T) {
	pkg := loadSnippet(t, `package p

//deltavet:ignore toy reason=fixture exercises suppression
func a() {}

func b() {}
`)
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{reportAll})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (only b): %v", len(diags), diags)
	}
	if pos := pkg.Fset.Position(diags[0].Pos); pos.Line != 6 {
		t.Errorf("surviving diagnostic at line %d, want 6 (func b)", pos.Line)
	}
}

func TestIgnoreDirectiveLegacyForm(t *testing.T) {
	pkg := loadSnippet(t, `package p

//deltavet:ignore toy -- legacy double-dash justification
func a() {}
`)
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{reportAll})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("legacy form did not suppress: %v", diags)
	}
}

func TestIgnoreDirectiveMultipleAnalyzers(t *testing.T) {
	pkg := loadSnippet(t, `package p

//deltavet:ignore toy,other reason=both names silenced
func a() {}
`)
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{reportAll})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("comma list did not suppress: %v", diags)
	}
}

func TestIgnoreWrongAnalyzerDoesNotSuppress(t *testing.T) {
	pkg := loadSnippet(t, `package p

//deltavet:ignore other reason=names a different analyzer
func a() {}
`)
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{reportAll})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("directive for another analyzer suppressed toy: %v", diags)
	}
}

func TestReasonlessDirectiveReportedAndInert(t *testing.T) {
	pkg := loadSnippet(t, `package p

//deltavet:ignore toy
func a() {}
`)
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{reportAll})
	if err != nil {
		t.Fatal(err)
	}
	var sawMalformed, sawToy bool
	for _, d := range diags {
		switch d.Analyzer {
		case "deltavet":
			sawMalformed = true
			if !strings.Contains(d.Message, "without a reason") {
				t.Errorf("malformed-directive message = %q", d.Message)
			}
		case "toy":
			sawToy = true
		}
	}
	if !sawMalformed {
		t.Error("reason-less directive was not reported")
	}
	if !sawToy {
		t.Error("reason-less directive suppressed the finding it should not")
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	entries := []string{
		analysis.BaselineEntry("hotalloc", "internal/floc/gain.go", "make in hot function f"),
		analysis.BaselineEntry("walltime", "internal/clique/clique.go", "time.Now in deterministic package clique"),
		analysis.BaselineEntry("hotalloc", "internal/floc/gain.go", "make in hot function f"), // dup: dropped
	}
	data := analysis.FormatBaseline(entries)
	b, err := analysis.ParseBaseline(data)
	if err != nil {
		t.Fatalf("parsing formatted baseline: %v", err)
	}
	if b.Len() != 2 {
		t.Errorf("Len = %d, want 2 (dedup)", b.Len())
	}
	if !b.Contains("hotalloc", "internal/floc/gain.go", "make in hot function f") {
		t.Error("baselined finding not found")
	}
	if b.Contains("hotalloc", "internal/floc/gain.go", "other message") {
		t.Error("message is not part of the key")
	}
	if b.Contains("walltime", "internal/floc/gain.go", "make in hot function f") {
		t.Error("analyzer is not part of the key")
	}
	// Idempotent format: parsing and re-formatting the same entries is
	// byte-identical (sorted, deduped, same header).
	if string(analysis.FormatBaseline(entries)) != string(data) {
		t.Error("FormatBaseline is not deterministic")
	}
}

func TestBaselineRejectsMalformedLine(t *testing.T) {
	if _, err := analysis.ParseBaseline([]byte("hotalloc only-two-fields\n")); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := analysis.ParseBaseline([]byte("# comment\n\n")); err != nil {
		t.Errorf("comments and blanks rejected: %v", err)
	}
}

func TestApplyFixesDedupAndOverlap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.go")
	src := "package p\n\nfunc a() {}\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	pos := f.Name.End() // right after "p"
	ins := func(text string) analysis.Diagnostic {
		return analysis.Diagnostic{
			Pos: pos,
			SuggestedFixes: []analysis.SuggestedFix{{
				Message: "insert",
				Edits:   []analysis.TextEdit{{Pos: pos, End: pos, NewText: text}},
			}},
		}
	}
	// Two diagnostics proposing the identical edit: applied once.
	fixed, err := analysis.ApplyFixes(fset, []analysis.Diagnostic{ins("X"), ins("X")})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(fixed[path]); got != "package pX\n\nfunc a() {}\n" {
		t.Errorf("duplicate edits not deduplicated: %q", got)
	}
	// Overlapping replacements: first (lowest-position) wins, the
	// second is dropped rather than corrupting the file.
	start := fset.File(f.Pos()).Pos(0)
	over := []analysis.Diagnostic{
		{Pos: start, SuggestedFixes: []analysis.SuggestedFix{{
			Edits: []analysis.TextEdit{{Pos: start, End: start + 7, NewText: "PACKAGE"}},
		}}},
		{Pos: start, SuggestedFixes: []analysis.SuggestedFix{{
			Edits: []analysis.TextEdit{{Pos: start + 3, End: start + 9, NewText: "zzz"}},
		}}},
	}
	fixed, err = analysis.ApplyFixes(fset, over)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(fixed[path]); !strings.HasPrefix(got, "PACKAGE p") {
		t.Errorf("overlap policy violated: %q", got)
	}
}
