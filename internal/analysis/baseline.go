package analysis

import (
	"bufio"
	"bytes"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
)

// The findings baseline.
//
// A baseline grandfathers pre-existing findings so a newly promoted
// (or newly written) analyzer can become blocking immediately: the
// tree stays at zero *non-baselined* findings while the baselined debt
// is paid down finding by finding. Keys deliberately omit line
// numbers — "file + analyzer + message" survives unrelated edits to
// the same file, so the baseline does not churn with every refactor.
// The file is checked in (deltavet.baseline) and reviewed like code;
// `deltavet -write-baseline` regenerates it from the current tree.
//
// Format: one finding per line,
//
//	<analyzer>\t<slash-relative-file>\t<message>
//
// sorted, with '#' comments and blank lines ignored.

// A Baseline is the parsed grandfathered-findings set.
type Baseline struct {
	keys map[string]bool
}

// baselineKey normalizes one diagnostic to its baseline identity.
func baselineKey(analyzer, relFile, message string) string {
	return analyzer + "\t" + filepath.ToSlash(relFile) + "\t" + message
}

// ParseBaseline parses baseline file contents.
func ParseBaseline(data []byte) (*Baseline, error) {
	b := &Baseline{keys: map[string]bool{}}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.SplitN(sc.Text(), "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("baseline line %d: want <analyzer>\\t<file>\\t<message>, got %q", line, sc.Text())
		}
		b.keys[baselineKey(parts[0], parts[1], parts[2])] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// Contains reports whether the diagnostic (keyed by analyzer, file
// relative to the module root, and message) is grandfathered.
func (b *Baseline) Contains(analyzer, relFile, message string) bool {
	if b == nil {
		return false
	}
	return b.keys[baselineKey(analyzer, relFile, message)]
}

// Len returns the number of baselined findings.
func (b *Baseline) Len() int {
	if b == nil {
		return 0
	}
	return len(b.keys)
}

// FormatBaseline renders the given findings as baseline file
// contents: deduplicated, sorted, with an explanatory header.
func FormatBaseline(entries []string) []byte {
	set := map[string]bool{}
	for _, e := range entries {
		set[e] = true
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	buf.WriteString("# deltavet baseline: grandfathered findings, one per line as\n")
	buf.WriteString("# <analyzer>\\t<file>\\t<message>. Regenerate with `deltavet -write-baseline`;\n")
	buf.WriteString("# this file should only ever shrink.\n")
	for _, k := range keys {
		buf.WriteString(k)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// BaselineEntry renders one diagnostic as a baseline line. relFile
// must already be relative to the module root.
func BaselineEntry(analyzer, relFile, message string) string {
	return baselineKey(analyzer, relFile, message)
}
