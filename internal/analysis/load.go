package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked module package as seen by the
// analyzers: build-tag-filtered non-test sources plus full type
// information.
type Package struct {
	Path  string // import path, e.g. deltacluster/internal/floc
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages of one module from
// source. Module-internal imports are resolved recursively by the
// loader itself; everything else (the standard library) is delegated
// to the compiler's source importer, so no pre-built export data is
// required.
type Loader struct {
	ModRoot string // absolute module root directory
	ModPath string // module path from go.mod

	fset    *token.FileSet
	stdlib  types.Importer
	ctx     build.Context
	loaded  map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader for the module rooted at dir (any
// directory inside the module works: the loader walks up to go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: root,
		ModPath: modPath,
		fset:    fset,
		stdlib:  importer.ForCompiler(fset, "source", nil),
		ctx:     build.Default,
		loaded:  map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer over module-internal packages and
// the standard library. Already-registered packages (including
// analysistest fixtures loaded under synthetic "fixture/..." paths)
// resolve first, so fixture packages may import each other.
func (l *Loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg.Types, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.stdlib.Import(path)
}

// Load resolves the given patterns ("./...", "./internal/floc", or
// full import paths) against the module and returns the matched
// packages, type-checked, in import-path order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	paths := map[string]bool{}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			all, err := l.walkModule()
			if err != nil {
				return nil, err
			}
			for _, p := range all {
				paths[p] = true
			}
		case strings.HasSuffix(pat, "/..."):
			// Subtree pattern, e.g. ./internal/analysis/...: every
			// buildable package at or below the directory.
			rel := strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/...")
			prefix := l.ModPath
			if rel != "" && rel != "." {
				prefix = l.ModPath + "/" + filepath.ToSlash(rel)
			}
			all, err := l.walkModule()
			if err != nil {
				return nil, err
			}
			for _, p := range all {
				if p == prefix || strings.HasPrefix(p, prefix+"/") {
					paths[p] = true
				}
			}
		case strings.HasPrefix(pat, "./"):
			rel := strings.TrimPrefix(pat, "./")
			rel = strings.TrimSuffix(rel, "/")
			if rel == "" || rel == "." {
				paths[l.ModPath] = true
			} else {
				paths[l.ModPath+"/"+filepath.ToSlash(rel)] = true
			}
		default:
			paths[pat] = true
		}
	}
	var sorted []string
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	var out []*Package
	for _, p := range sorted {
		pkg, err := l.loadPath(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir type-checks the single package in an arbitrary directory
// (used by the analysistest harness for testdata fixtures). The
// package is registered under the given import path.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	return l.loadDir(dir, importPath)
}

// walkModule returns the import paths of every buildable package
// under the module root, skipping testdata, hidden and vendor
// directories.
func (l *Loader) walkModule() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		bp, err := l.ctx.ImportDir(path, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return nil
			}
			return nil // unbuildable dir: not part of the module graph
		}
		if len(bp.GoFiles) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.ModRoot, path)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, l.ModPath)
		} else {
			out = append(out, l.ModPath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	return out, err
}

func (l *Loader) loadPath(path string) (*Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	dir := filepath.Join(l.ModRoot, filepath.FromSlash(rel))
	return l.loadDir(dir, path)
}

func (l *Loader) loadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(error) {}, // collect everything; first error returned below
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.loaded[path] = pkg
	return pkg, nil
}
