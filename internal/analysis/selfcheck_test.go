package analysis_test

import (
	"testing"

	"deltacluster/internal/analysis"
	"deltacluster/internal/analysis/checkpointerr"
	"deltacluster/internal/analysis/ctxfirst"
	"deltacluster/internal/analysis/derivedcache"
	"deltacluster/internal/analysis/floatcmp"
	"deltacluster/internal/analysis/goroutinelife"
	"deltacluster/internal/analysis/hotalloc"
	"deltacluster/internal/analysis/maporder"
	"deltacluster/internal/analysis/residueinvariant"
	"deltacluster/internal/analysis/seededrand"
	"deltacluster/internal/analysis/walltime"
)

// TestSelfCheck runs every deltavet analyzer over the analysis
// framework, the analyzers themselves, and the driver: the linter
// obeys its own rules. This is the same analyzer list cmd/deltavet
// registers; keep the two in sync.
func TestSelfCheck(t *testing.T) {
	all := []*analysis.Analyzer{
		maporder.Analyzer,
		seededrand.Analyzer,
		floatcmp.Analyzer,
		ctxfirst.Analyzer,
		residueinvariant.Analyzer,
		hotalloc.Analyzer,
		derivedcache.Analyzer,
		goroutinelife.Analyzer,
		walltime.Analyzer,
		checkpointerr.Analyzer,
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.Load("./internal/analysis/...", "./cmd/deltavet")
	if err != nil {
		t.Fatalf("loading analysis packages: %v", err)
	}
	if len(pkgs) < 11 {
		t.Fatalf("loaded only %d packages; the pattern no longer covers the analyzer tree", len(pkgs))
	}
	diags, err := analysis.RunAnalyzers(pkgs, all)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		pos := loader.Fset().Position(d.Pos)
		t.Errorf("%s:%d:%d: %s [%s]", pos.Filename, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
}
