package analysis

import (
	"fmt"
	"go/token"
	"os"
	"sort"
)

// Fix application.
//
// ApplyFixes turns the SuggestedFixes carried by a diagnostic batch
// into rewritten file contents. Only the first fix of each diagnostic
// is applied — analyzers order fixes most-conservative first, and the
// driver's -fix mode and the analysistest golden harness both follow
// that convention so "what -fix does" has exactly one answer.
//
// Conflict policy: edits are deduplicated (several diagnostics may
// propose the identical edit, e.g. two floatcmp findings in one file
// both inserting the same import) and then applied in descending
// position order; an edit that overlaps an already-accepted one is
// dropped. The result is deterministic because diagnostics arrive
// position-sorted from RunAnalyzers.

// appliedEdit is one accepted edit in file-offset space.
type appliedEdit struct {
	start, end int
	newText    string
}

// ApplyFixes applies the first suggested fix of every diagnostic and
// returns the new content of each touched file, keyed by filename as
// recorded in fset. Files without fixes are absent from the map.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic) (map[string][]byte, error) {
	perFile := map[string][]appliedEdit{}
	seen := map[string]bool{}
	for _, d := range diags {
		if len(d.SuggestedFixes) == 0 {
			continue
		}
		for _, e := range d.SuggestedFixes[0].Edits {
			pos := fset.Position(e.Pos)
			end := fset.Position(e.End)
			if pos.Filename == "" || pos.Filename != end.Filename {
				return nil, fmt.Errorf("analysis: fix edit spans files (%s → %s)", pos.Filename, end.Filename)
			}
			key := fmt.Sprintf("%s:%d:%d:%s", pos.Filename, pos.Offset, end.Offset, e.NewText)
			if seen[key] {
				continue
			}
			seen[key] = true
			perFile[pos.Filename] = append(perFile[pos.Filename],
				appliedEdit{start: pos.Offset, end: end.Offset, newText: e.NewText})
		}
	}
	names := make([]string, 0, len(perFile))
	for name := range perFile {
		names = append(names, name)
	}
	sort.Strings(names)
	out := map[string][]byte{}
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("analysis: applying fixes: %w", err)
		}
		fixed, err := applyEdits(src, perFile[name])
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", name, err)
		}
		out[name] = fixed
	}
	return out, nil
}

// applyEdits applies edits to src, skipping any edit that overlaps an
// earlier-accepted one. Pure insertions at the same offset keep their
// arrival order.
func applyEdits(src []byte, edits []appliedEdit) ([]byte, error) {
	sort.SliceStable(edits, func(i, j int) bool {
		if edits[i].start != edits[j].start {
			return edits[i].start < edits[j].start
		}
		return edits[i].end < edits[j].end
	})
	var accepted []appliedEdit
	lastEnd := 0
	for _, e := range edits {
		if e.start < 0 || e.end < e.start || e.end > len(src) {
			return nil, fmt.Errorf("fix edit out of range [%d, %d) of %d bytes", e.start, e.end, len(src))
		}
		if e.start < lastEnd {
			continue // overlaps an accepted edit: first (lowest-position) edit wins
		}
		accepted = append(accepted, e)
		lastEnd = e.end
	}
	// Apply back to front so earlier offsets stay valid.
	out := append([]byte(nil), src...)
	for i := len(accepted) - 1; i >= 0; i-- {
		e := accepted[i]
		out = append(out[:e.start], append([]byte(e.newText), out[e.end:]...)...)
	}
	return out, nil
}
