// Package analysis is a small, dependency-free static-analysis
// framework modeled on golang.org/x/tools/go/analysis. It exists
// because this repository's correctness claims — seeded, replayable
// FLOC runs whose residue bookkeeping stays exactly consistent after
// every toggle — are easy to break with ordinary Go: an unordered map
// range in a scoring loop, a stray math/rand global call, a raw ==
// between float64 residues. The deltavet analyzers (subpackages
// maporder, seededrand, floatcmp and residueinvariant) turn those
// disciplines into machine-checked invariants; cmd/deltavet is the
// multichecker driver that runs them over the module.
//
// The framework deliberately mirrors the x/tools API surface
// (Analyzer, Pass, Diagnostic) so the analyzers can migrate to the
// real go/analysis framework verbatim if the dependency ever becomes
// available. Only the loader (load.go) is bespoke: it type-checks the
// module from source with a go/types importer that resolves
// module-internal packages itself and delegates the standard library
// to the compiler's source importer.
//
// # Source markers
//
// The analyzers are driven by comment markers rather than hardcoded
// package lists, so the discipline is visible in the code it governs:
//
//   - "deltavet:deterministic" in any comment of a package opts the
//     package into the determinism suite (maporder, seededrand,
//     floatcmp).
//   - "deltavet:guard" on a struct field marks it as part of a cached
//     invariant (residues, running sums); only functions whose doc
//     comment carries "deltavet:writer" may assign to it
//     (residueinvariant).
//   - "deltavet:approx-helper" on a function's doc comment allows raw
//     float comparisons inside it — the epsilon helpers themselves
//     need ==/!= to define tolerance semantics.
//   - "deltavet:ignore <analyzer> -- <reason>" on the flagged line (or
//     the line above) suppresses one analyzer's diagnostics for that
//     line. The reason is mandatory by convention and reviewed like
//     code.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// deltavet:ignore directives. By convention it is a single
	// lowercase word.
	Name string

	// Doc is the one-paragraph description printed by the driver's
	// -help output.
	Doc string

	// Run executes the pass over one package and reports findings via
	// pass.Report. The returned value is unused by the driver (it
	// exists for API parity with x/tools facts/results).
	Run func(pass *Pass) (any, error)
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File // parsed non-test sources, build-tag filtered
	Pkg       *types.Package
	PkgPath   string
	TypesInfo *types.Info

	// Report delivers one diagnostic. The framework filters
	// suppressed diagnostics (deltavet:ignore) before they reach the
	// driver or the test harness.
	Report func(Diagnostic)
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the framework
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// DeterministicMarker is the package opt-in marker for the
// determinism analyzers.
const DeterministicMarker = "deltavet:deterministic"

// GuardMarker marks a struct field as a guarded invariant cache.
const GuardMarker = "deltavet:guard"

// WriterMarker marks a function as an approved writer of guarded
// fields.
const WriterMarker = "deltavet:writer"

// ApproxHelperMarker marks a function as an approved epsilon helper
// in which raw float comparisons are allowed.
const ApproxHelperMarker = "deltavet:approx-helper"

// PackageMarked reports whether any comment in the package's files
// contains the marker string.
func PackageMarked(files []*ast.File, marker string) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, marker) {
					return true
				}
			}
		}
	}
	return false
}

// CommentGroupMarked reports whether the (possibly nil) comment group
// contains the marker string.
func CommentGroupMarked(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// EnclosingFuncDecl returns the innermost top-level function
// declaration of file whose body contains pos, or nil. Function
// literals inherit their enclosing declaration: the discipline
// markers (writer, approx-helper) annotate the named function that
// owns the code.
func EnclosingFuncDecl(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if fd.Body.Pos() <= pos && pos <= fd.Body.End() {
			return fd
		}
	}
	return nil
}

var ignoreRe = regexp.MustCompile(`deltavet:ignore\s+([a-z, ]+)`)

// suppressedLines maps analyzer name -> set of file:line keys on
// which that analyzer is suppressed via deltavet:ignore directives. A
// directive suppresses its own line and, when it is the only thing on
// its line, the following line.
func suppressedLines(fset *token.FileSet, files []*ast.File) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	add := func(name, key string) {
		if out[name] == nil {
			out[name] = map[string]bool{}
		}
		out[name][key] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(m[1], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					add(name, fmt.Sprintf("%s:%d", pos.Filename, pos.Line))
					add(name, fmt.Sprintf("%s:%d", pos.Filename, pos.Line+1))
				}
			}
		}
	}
	return out
}

// RunAnalyzers applies each analyzer to each package and returns the
// surviving diagnostics sorted by position. Suppression directives
// are honored here so every consumer (driver, tests) sees the same
// view.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		suppressed := suppressedLines(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				PkgPath:   pkg.Path,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				d.Analyzer = a.Name
				p := pkg.Fset.Position(d.Pos)
				if suppressed[a.Name][fmt.Sprintf("%s:%d", p.Filename, p.Line)] {
					return
				}
				diags = append(diags, d)
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
