// Package analysis is a small, dependency-free static-analysis
// framework modeled on golang.org/x/tools/go/analysis. It exists
// because this repository's correctness claims — seeded, replayable
// FLOC runs whose residue bookkeeping stays exactly consistent after
// every toggle, bit-identical at any worker count, with a zero-alloc
// decide phase — are easy to break with ordinary Go: an unordered map
// range in a scoring loop, a stray math/rand global call, a raw ==
// between float64 residues, an fmt.Sprintf on the residue kernel, a
// goroutine with no owner. The deltavet analyzers (subpackages
// maporder, seededrand, floatcmp, ctxfirst, residueinvariant,
// hotalloc, derivedcache, goroutinelife, walltime and checkpointerr)
// turn those disciplines into machine-checked invariants; cmd/deltavet
// is the multichecker driver that runs them over the module.
//
// The framework deliberately mirrors the x/tools API surface
// (Analyzer, Pass, Diagnostic, SuggestedFix, object facts) so the
// analyzers can migrate to the real go/analysis framework with little
// friction if the dependency ever becomes available. Only the loader
// (load.go) is bespoke: it type-checks the module from source with a
// go/types importer that resolves module-internal packages itself and
// delegates the standard library to the compiler's source importer.
//
// # Source markers
//
// The analyzers are driven by comment markers rather than hardcoded
// package lists, so the discipline is visible in the code it governs:
//
//   - "deltavet:deterministic" in any comment of a package opts the
//     package into the determinism suite (maporder, seededrand,
//     floatcmp, walltime).
//   - "deltavet:guard" on a struct field marks it as part of a cached
//     invariant (residues, running sums); only functions whose doc
//     comment carries "deltavet:writer" may assign to it
//     (residueinvariant).
//   - "deltavet:derived-cache" on a struct type declaration marks the
//     whole type as derived state rebuilt from a source of truth;
//     every field write, and every Store/Swap on an atomic.Pointer to
//     it, must happen in a deltavet:writer function (derivedcache).
//   - "deltavet:hotpath" on a function's doc comment puts it — and,
//     transitively, everything it statically calls within the
//     analyzed packages — under the allocation-free discipline
//     checked by hotalloc.
//   - "deltavet:coldpath" on a function's doc comment stops that
//     transitive propagation: the function is reachable from a hot
//     path in the source but never taken in steady state (one-time
//     cache builds, amortized growth).
//   - "deltavet:observability" on a function's doc comment permits
//     wall-clock reads (time.Now/Since) inside it in deterministic
//     packages: the values feed only reporting fields, logs or
//     metrics, never fingerprinted or checkpointed state (walltime).
//   - "deltavet:approx-helper" on a function's doc comment allows raw
//     float comparisons inside it — the epsilon helpers themselves
//     need ==/!= to define tolerance semantics.
//
// # Suppression
//
// A finding is suppressed line by line:
//
//	//deltavet:ignore <analyzer>[,<analyzer>] reason=<justification>
//
// on the flagged line or the line above. The legacy form
// "deltavet:ignore <analyzer> -- <justification>" is still accepted.
// The reason is mandatory: a directive without one is itself reported
// (analyzer name "deltavet"), so every suppression carries a reviewed
// argument. For findings that predate an analyzer, prefer the
// checked-in baseline (baseline.go, deltavet -write-baseline) over
// sprinkling directives: the baseline shrinks monotonically while
// directives tend to stay.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// deltavet:ignore directives. By convention it is a single
	// lowercase word.
	Name string

	// Doc is the one-paragraph description printed by the driver's
	// -help output.
	Doc string

	// Run executes the pass over one package and reports findings via
	// pass.Report. The returned value is unused by the driver (it
	// exists for API parity with x/tools facts/results).
	Run func(pass *Pass) (any, error)

	// RunModule, if non-nil, replaces Run: the analyzer sees every
	// loaded package at once (one Pass per package, sharing a fact
	// store) and may propagate facts across package boundaries before
	// reporting. hotalloc uses this to learn hotpath-ness through the
	// call graph.
	RunModule func(mp *ModulePass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File // parsed non-test sources, build-tag filtered
	Pkg       *types.Package
	PkgPath   string
	TypesInfo *types.Info

	// Report delivers one diagnostic. The framework filters
	// suppressed diagnostics (deltavet:ignore) before they reach the
	// driver or the test harness.
	Report func(Diagnostic)

	facts *FactSet
}

// A ModulePass is the whole-module view handed to Analyzer.RunModule:
// one Pass per loaded package, in deterministic import-path order.
type ModulePass struct {
	Passes []*Pass
}

// A FactSet carries analyzer-scoped facts about types.Objects across
// package boundaries within one RunAnalyzers call. It is the
// framework's (much simplified) analogue of x/tools object facts.
type FactSet struct {
	m map[factKey][]any
}

type factKey struct {
	analyzer string
	obj      types.Object
}

// ExportObjectFact attaches fact to obj under this pass's analyzer.
// Facts are visible from every other Pass of the same RunAnalyzers
// call, regardless of package.
func (p *Pass) ExportObjectFact(obj types.Object, fact any) {
	if p.facts == nil || obj == nil {
		return
	}
	key := factKey{p.Analyzer.Name, obj}
	p.facts.m[key] = append(p.facts.m[key], fact)
}

// ObjectFacts returns every fact exported for obj by this pass's
// analyzer, in export order.
func (p *Pass) ObjectFacts(obj types.Object) []any {
	if p.facts == nil {
		return nil
	}
	return p.facts.m[factKey{p.Analyzer.Name, obj}]
}

// AnalyzerFacts returns the facts another analyzer exported for obj;
// it lets a later analyzer in the driver's list consume an earlier
// one's conclusions.
func (p *Pass) AnalyzerFacts(analyzer string, obj types.Object) []any {
	if p.facts == nil {
		return nil
	}
	return p.facts.m[factKey{analyzer, obj}]
}

// A TextEdit describes one source replacement: the bytes in [Pos, End)
// are replaced by NewText. A pure insertion has Pos == End.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// A SuggestedFix is one self-contained repair for a diagnostic: a set
// of non-overlapping edits that, applied together, make the finding
// disappear. Fixes must be idempotent at the analyzer level: re-running
// the analyzer over fixed source must produce no further fixes
// (analysistest.RunWithSuggestedFixes enforces the round trip). The
// driver's -fix mode applies the first fix of each diagnostic, so
// analyzers order fixes most-conservative first.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos            token.Pos
	Message        string
	Analyzer       string // filled by the framework
	SuggestedFixes []SuggestedFix
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// DeterministicMarker is the package opt-in marker for the
// determinism analyzers.
const DeterministicMarker = "deltavet:deterministic"

// GuardMarker marks a struct field as a guarded invariant cache.
const GuardMarker = "deltavet:guard"

// WriterMarker marks a function as an approved writer of guarded
// fields and derived-cache state.
const WriterMarker = "deltavet:writer"

// ApproxHelperMarker marks a function as an approved epsilon helper
// in which raw float comparisons are allowed.
const ApproxHelperMarker = "deltavet:approx-helper"

// HotPathMarker puts a function (and its static callees,
// transitively) under the hotalloc allocation discipline.
const HotPathMarker = "deltavet:hotpath"

// ColdPathMarker exempts a function from transitive hotpath
// propagation: reachable from a hot path, never taken in steady
// state.
const ColdPathMarker = "deltavet:coldpath"

// ObservabilityMarker permits wall-clock reads in a function of a
// deterministic package: the readings feed reporting only.
const ObservabilityMarker = "deltavet:observability"

// DerivedCacheMarker marks a struct type as derived state with
// registered writers only.
const DerivedCacheMarker = "deltavet:derived-cache"

// PackageMarked reports whether any comment in the package's files
// contains the marker string.
func PackageMarked(files []*ast.File, marker string) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, marker) {
					return true
				}
			}
		}
	}
	return false
}

// CommentGroupMarked reports whether the (possibly nil) comment group
// contains the marker string.
func CommentGroupMarked(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// EnclosingFuncDecl returns the innermost top-level function
// declaration of file whose body contains pos, or nil. Function
// literals inherit their enclosing declaration: the discipline
// markers (writer, approx-helper) annotate the named function that
// owns the code.
func EnclosingFuncDecl(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if fd.Body.Pos() <= pos && pos <= fd.Body.End() {
			return fd
		}
	}
	return nil
}

// ignoreRe matches both suppression grammars:
//
//	deltavet:ignore name[,name] reason=<text>
//	deltavet:ignore name[,name] -- <text>      (legacy)
//
// Group 1 is the analyzer list; group 2/3 the reason (whichever form
// was used).
var ignoreRe = regexp.MustCompile(`deltavet:ignore\s+([a-z][a-z, ]*?)\s*(?:reason=(.*)|--\s*(.*))?$`)

// suppression is the per-package view of every deltavet:ignore
// directive: which (analyzer, file:line) pairs are silenced, plus the
// positions of malformed (reason-less) directives.
type suppression struct {
	lines     map[string]map[string]bool // analyzer -> file:line -> suppressed
	malformed []token.Pos
}

// suppressedLines scans the package's comments for deltavet:ignore
// directives. A directive suppresses its own line and, when it is the
// only thing on its line, the following line. A directive without a
// reason is recorded as malformed; the framework reports it under the
// pseudo-analyzer name "deltavet".
func suppressedLines(fset *token.FileSet, files []*ast.File) suppression {
	sup := suppression{lines: map[string]map[string]bool{}}
	add := func(name, key string) {
		if sup.lines[name] == nil {
			sup.lines[name] = map[string]bool{}
		}
		sup.lines[name][key] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				reason := m[2] + m[3]
				if strings.TrimSpace(reason) == "" {
					sup.malformed = append(sup.malformed, c.Pos())
					continue // a reason-less directive does not suppress
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(m[1], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					add(name, fmt.Sprintf("%s:%d", pos.Filename, pos.Line))
					add(name, fmt.Sprintf("%s:%d", pos.Filename, pos.Line+1))
				}
			}
		}
	}
	return sup
}

// RunAnalyzers applies each analyzer to each package and returns the
// surviving diagnostics sorted by position. Suppression directives
// are honored here so every consumer (driver, tests) sees the same
// view; malformed (reason-less) directives surface as findings of the
// pseudo-analyzer "deltavet". Module analyzers (RunModule) observe
// every package at once and share a fact store.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	facts := &FactSet{m: map[factKey][]any{}}

	sups := make([]suppression, len(pkgs))
	for i, pkg := range pkgs {
		sups[i] = suppressedLines(pkg.Fset, pkg.Files)
		for _, pos := range sups[i].malformed {
			diags = append(diags, Diagnostic{
				Pos:      pos,
				Analyzer: "deltavet",
				Message:  "deltavet:ignore directive without a reason; write `deltavet:ignore <analyzer> reason=<justification>`",
			})
		}
	}

	for _, a := range analyzers {
		passes := make([]*Pass, len(pkgs))
		for i, pkg := range pkgs {
			sup := sups[i]
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				PkgPath:   pkg.Path,
				TypesInfo: pkg.Info,
				facts:     facts,
			}
			pass.Report = func(d Diagnostic) {
				d.Analyzer = a.Name
				p := pkg.Fset.Position(d.Pos)
				if sup.lines[a.Name][fmt.Sprintf("%s:%d", p.Filename, p.Line)] {
					return
				}
				diags = append(diags, d)
			}
			passes[i] = pass
		}
		if a.RunModule != nil {
			if err := a.RunModule(&ModulePass{Passes: passes}); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
			continue
		}
		for i, pass := range passes {
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkgs[i].Path, a.Name, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
