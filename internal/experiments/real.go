package experiments

import (
	"fmt"
	"sort"

	"deltacluster/internal/bicluster"
	"deltacluster/internal/eval"
	"deltacluster/internal/floc"
	"deltacluster/internal/synth"
)

// Table1MovieLens reproduces Table 1: statistics (volume, number of
// movies, number of viewers, residue, diameter) of δ-clusters
// discovered in the MovieLens ratings matrix, mined with α = 0.6.
// The data set is the synthetic MovieLens stand-in (see DESIGN.md §5);
// the paper's qualitative claims — clusters pair small residues
// (≈ 0.5 on the rating scale) with large diameters, i.e. coherent but
// physically distant viewers — are what the table demonstrates.
func Table1MovieLens(opts Options) ([]*Table, error) {
	opts = opts.Defaults()
	mlCfg := synth.DefaultMovieLensConfig()
	mlCfg.Users = opts.scaled(mlCfg.Users, 100)
	mlCfg.Movies = opts.scaled(mlCfg.Movies, 150)
	mlCfg.Ratings = opts.scaled(mlCfg.Ratings, 8000)
	mlCfg.Groups = opts.scaled(mlCfg.Groups, 3)
	ds, err := synth.MovieLens(mlCfg, opts.Seed)
	if err != nil {
		return nil, err
	}

	k := opts.scaled(10, 3)
	cfg := floc.DefaultConfig(k, 1.0) // δ = 1 rating point of residue budget
	cfg.Seed = opts.Seed
	cfg.SeedMode = floc.SeedAnchored
	cfg.Constraints.Occupancy = 0.6 // the paper's α
	cfg.MaxIterations = 40
	res, err := floc.Run(ds.Matrix, cfg)
	if err != nil {
		return nil, err
	}
	sig := floc.Significant(res.Clusters, cfg.MaxResidue)
	sort.Slice(sig, func(a, b int) bool { return sig[a].Volume() > sig[b].Volume() })
	if len(sig) > 3 {
		sig = sig[:3] // the paper's table shows three clusters
	}

	t := &Table{
		ID:    "Table 1",
		Title: "Statistics of discovered MovieLens clusters",
		Note: fmt.Sprintf("stand-in ratings matrix %dx%d (%.1f%% filled), α=0.6, k=%d, δ=%.1f, %d iterations, %s",
			ds.Matrix.Rows(), ds.Matrix.Cols(), 100*ds.Matrix.FillFraction(), k, cfg.MaxResidue,
			res.Iterations, d0(res.Duration)),
		Header: []string{"", "cluster 1", "cluster 2", "cluster 3"},
	}
	rows := [][]string{
		{"cluster volume"}, {"number of movies"}, {"number of viewers"}, {"residue"}, {"diameter"},
	}
	for _, c := range sig {
		st := c.Stats()
		rows[0] = append(rows[0], fmt.Sprintf("%d", st.Volume))
		rows[1] = append(rows[1], fmt.Sprintf("%d", st.NumCols))
		rows[2] = append(rows[2], fmt.Sprintf("%d", st.NumRows))
		rows[3] = append(rows[3], f2(st.Residue))
		rows[4] = append(rows[4], f1(st.Diameter))
	}
	for len(rows[0]) < 4 {
		for i := range rows {
			rows[i] = append(rows[i], "-")
		}
	}
	t.Rows = rows
	return []*Table{t}, nil
}

// Microarray reproduces the Section 6.1.2 comparison: FLOC versus the
// Cheng & Church bicluster algorithm on the yeast microarray
// (stand-in), both asked for the same number of clusters. The paper's
// claims: FLOC's average residue is lower (10.34 vs 12.54), its
// aggregate volume is ≈ 20% larger, and its response time is an order
// of magnitude smaller.
func Microarray(opts Options) ([]*Table, error) {
	opts = opts.Defaults()
	yCfg := synth.DefaultYeastConfig()
	yCfg.Genes = opts.scaled(yCfg.Genes, 200)
	yCfg.Modules = opts.scaled(yCfg.Modules, 4)
	ds, err := synth.Yeast(yCfg, opts.Seed)
	if err != nil {
		return nil, err
	}

	k := opts.scaled(100, 5)
	if k > 2*yCfg.Modules {
		k = 2 * yCfg.Modules // more slots than modules, as in the paper's 100
	}

	// FLOC with the arithmetic residue and δ ≈ 2.5× the module noise.
	fCfg := floc.DefaultConfig(k, 2.5*yCfg.NoiseResidue)
	fCfg.Seed = opts.Seed
	fCfg.MaxIterations = 60
	fRes, err := floc.Run(ds.Matrix, fCfg)
	if err != nil {
		return nil, err
	}
	fSig := floc.Significant(fRes.Clusters, fCfg.MaxResidue)

	// Cheng & Church with the equivalent mean-squared-residue budget:
	// an arithmetic residue r corresponds to MSR ≈ (r/0.8)².
	msrDelta := (2.5 * yCfg.NoiseResidue / 0.8) * (2.5 * yCfg.NoiseResidue / 0.8)
	bRes, err := bicluster.Run(ds.Matrix, bicluster.Config{
		K: k, Delta: msrDelta, Seed: opts.Seed,
	})
	if err != nil {
		return nil, err
	}

	fSum := eval.Summarize(fSig)
	bSum := eval.Summarize(bRes.Biclusters)
	fRec, fPre := eval.RecallPrecision(ds.Matrix, ds.Embedded, eval.Specs(fSig))
	bRec, bPre := eval.RecallPrecision(ds.Matrix, ds.Embedded, eval.Specs(bRes.Biclusters))

	t := &Table{
		ID:    "Section 6.1.2",
		Title: "FLOC vs Cheng&Church biclustering on the yeast microarray stand-in",
		Note: fmt.Sprintf("matrix %dx%d, %d embedded modules, k=%d for both; residue is the arithmetic mean |r| for both",
			ds.Matrix.Rows(), ds.Matrix.Cols(), yCfg.Modules, k),
		Header: []string{"", "FLOC", "Cheng&Church"},
	}
	t.Rows = [][]string{
		{"avg residue", f2(fSum.AvgResidue), f2(bSum.AvgResidue)},
		{"aggregate volume", fmt.Sprintf("%d", fSum.TotalVolume), fmt.Sprintf("%d", bSum.TotalVolume)},
		{"clusters reported", fmt.Sprintf("%d", len(fSig)), fmt.Sprintf("%d", len(bRes.Biclusters))},
		{"response time", d0(fRes.Duration), d0(bRes.Duration)},
		{"recall", f3(fRec), f3(bRec)},
		{"precision", f3(fPre), f3(bPre)},
	}
	return []*Table{t}, nil
}
