package experiments

import (
	"fmt"

	"deltacluster/internal/eval"
	"deltacluster/internal/floc"
	"deltacluster/internal/stats"
	"deltacluster/internal/synth"
)

// sampleVolumes draws k volumes with the given dispersion level.
func sampleVolumes(k int, mean float64, level int, seed int64) []float64 {
	out := make([]float64, k)
	if level == 0 {
		for i := range out {
			out[i] = mean
		}
		return out
	}
	sampler, err := stats.NewVolumeSampler(mean, disparityVariance(mean, level))
	if err != nil {
		for i := range out {
			out[i] = mean
		}
		return out
	}
	rng := stats.NewRNG(seed)
	for i := range out {
		out[i] = float64(sampler.Sample(rng))
	}
	return out
}

// qualityRun executes one quality trial and returns (avg residue of
// significant clusters, recall, precision).
func qualityRun(ds *synth.Dataset, cfg floc.Config) (residue, recall, precision float64, err error) {
	res, err := floc.Run(ds.Matrix, cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	recall, precision = eval.RecallPrecision(ds.Matrix, ds.Embedded, eval.Specs(res.Clusters))
	sig := floc.Significant(res.Clusters, cfg.MaxResidue)
	residue = eval.Summarize(sig).AvgResidue
	return residue, recall, precision, nil
}

// Table4ActionOrder reproduces Table 4: clustering quality (residue,
// recall, precision) under the fixed, random and weighted-random
// action orders. The paper reports random beating fixed by ~10% and
// weighted adding ~5% more.
//
// Reproduction note (see EXPERIMENTS.md): with the paper's random
// seeding, no action order recovers embedded clusters on clean ground
// truth — phase 2 is a local search and the seeds carry no signal, so
// the ordering has nothing to amplify. We therefore run the
// comparison on top of anchored seeding, where phase 2 refines
// imperfect seeds; the ordering effect direction is preserved but its
// magnitude is far smaller than the paper's.
func Table4ActionOrder(opts Options) ([]*Table, error) {
	opts = opts.Defaults()
	rows := opts.scaled(3000, 200)
	cols := 100
	clusters := opts.scaled(100, 4)
	const volMean = 300.0

	ds, err := perfDataset(rows, cols, clusters, volMean, disparityVariance(volMean, 3), opts.Seed)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "Table 4",
		Title:  "Quality vs action order",
		Note:   fmt.Sprintf("matrix %dx%d, %d embedded clusters (dispersion level 3), k=%d, anchored seeding (limited attempts so phase 2 matters)", rows, cols, clusters, clusters+clusters/5),
		Header: []string{"", "fixed order", "random order", "weighted order"},
	}
	resRow := []string{"residue"}
	recRow := []string{"recall"}
	preRow := []string{"precision"}
	for _, order := range []floc.Order{floc.FixedOrder, floc.RandomOrder, floc.WeightedRandomOrder} {
		var resSum, recSum, preSum float64
		n := 0
		for trial := 0; trial < maxIntExp(opts.Trials, 3); trial++ {
			cfg := qualityConfig(clusters+clusters/5, opts.Seed+int64(trial)*17)
			cfg.Order = order
			cfg.SeedMode = floc.SeedAnchored
			cfg.SeedAttempts = 25 * cfg.K // deliberately scarce: leave work for phase 2
			res, rec, pre, err := qualityRun(ds, cfg)
			if err != nil {
				return nil, err
			}
			resSum += res
			recSum += rec
			preSum += pre
			n++
		}
		f := float64(n)
		resRow = append(resRow, f2(resSum/f))
		recRow = append(recRow, f3(recSum/f))
		preRow = append(preRow, f3(preSum/f))
		opts.progress("table4: order %v done", order)
	}
	t.Rows = [][]string{resRow, recRow, preRow}
	return []*Table{t}, nil
}

// Table5VolumeDisparity reproduces Table 5: quality versus the
// dispersion of the embedded cluster volumes, with mixed-size seeds.
// The paper's claim: quality is flat across the sweep — volume
// disparity affects efficiency, not result quality.
func Table5VolumeDisparity(opts Options) ([]*Table, error) {
	opts = opts.Defaults()
	rows := opts.scaled(3000, 200)
	cols := 100
	clusters := opts.scaled(100, 4)
	const volMean = 300.0

	t := &Table{
		ID:     "Table 5",
		Title:  "Quality vs embedded volume dispersion (weighted order, mixed seeding)",
		Note:   fmt.Sprintf("matrix %dx%d, %d embedded clusters, mean volume %.0f, dispersion level L means CV = 0.15·L", rows, cols, clusters, volMean),
		Header: []string{"level", "residue", "recall", "precision"},
	}
	for level := 0; level <= 5; level++ {
		ds, err := perfDataset(rows, cols, clusters, volMean, disparityVariance(volMean, level), opts.Seed+int64(level))
		if err != nil {
			return nil, err
		}
		var resSum, recSum, preSum float64
		n := 0
		for trial := 0; trial < opts.Trials; trial++ {
			cfg := qualityConfig(clusters+clusters/5, opts.Seed+int64(trial)*13)
			res, rec, pre, err := qualityRun(ds, cfg)
			if err != nil {
				return nil, err
			}
			resSum += res
			recSum += rec
			preSum += pre
			n++
		}
		f := float64(n)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", level), f2(resSum / f), f3(recSum / f), f3(preSum / f),
		})
		opts.progress("table5: level %d done", level)
	}
	return []*Table{t}, nil
}

func maxIntExp(a, b int) int {
	if a > b {
		return a
	}
	return b
}
