// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 6). Each experiment is a function from
// Options to a typed Table; cmd/experiments renders them to text and
// bench_test.go wraps them in testing.B benchmarks.
//
// The paper ran on a 333 MHz AIX box; absolute response times are not
// comparable. Options.Scale shrinks the workload (matrix rows and
// cluster counts) so the full suite completes on a laptop while the
// claimed *shapes* — which configuration wins, how quantities scale —
// remain observable. Scale = 1 reproduces the paper's sizes.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Options configures a run of the experiment suite.
type Options struct {
	// Scale multiplies workload sizes (rows, cluster counts). 1.0 is
	// the paper's size; the default 0.25 finishes the full suite in
	// minutes on one core.
	Scale float64
	// Seed drives all randomness.
	Seed int64
	// Trials averages randomized experiments over this many runs.
	Trials int
	// Verbose enables progress lines on Out while experiments run.
	Verbose bool
	// Out receives progress output when Verbose is set; defaults to
	// io.Discard.
	Out io.Writer
}

// Defaults fills unset fields.
func (o Options) Defaults() Options {
	if o.Scale == 0 {
		o.Scale = 0.25
	}
	if o.Trials == 0 {
		o.Trials = 1
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

func (o Options) progress(format string, args ...any) {
	if o.Verbose {
		fmt.Fprintf(o.Out, format+"\n", args...)
	}
}

// scaled returns max(lo, round(x·Scale)).
func (o Options) scaled(x int, lo int) int {
	v := int(float64(x)*o.Scale + 0.5)
	if v < lo {
		v = lo
	}
	return v
}

// Table is a rendered experiment result: an id matching the paper
// ("Table 2", "Figure 8a", ...), the workload description, a header
// and rows.
type Table struct {
	ID     string
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Note); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", lineWidth(widths))); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func lineWidth(widths []int) int {
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total >= 2 {
		total -= 2
	}
	return total
}

func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func d0(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// Registry lists every experiment by its short name, in paper order.
type Experiment struct {
	Name string
	ID   string
	Run  func(Options) ([]*Table, error)
}

// All returns the full experiment registry in the paper's order.
func All() []Experiment {
	return []Experiment{
		{Name: "table1", ID: "Table 1", Run: Table1MovieLens},
		{Name: "microarray", ID: "Section 6.1.2", Run: Microarray},
		{Name: "table2", ID: "Table 2", Run: Table2Iterations},
		{Name: "table3", ID: "Table 3", Run: Table3ResponseTime},
		{Name: "fig8", ID: "Figure 8", Run: Figure8SeedVolume},
		{Name: "fig9", ID: "Figure 9", Run: Figure9VolumeVariance},
		{Name: "fig10", ID: "Figure 10", Run: Figure10Alternative},
		{Name: "table4", ID: "Table 4", Run: Table4ActionOrder},
		{Name: "table5", ID: "Table 5", Run: Table5VolumeDisparity},
	}
}
