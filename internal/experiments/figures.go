package experiments

import (
	"fmt"
	"time"

	"deltacluster/internal/clique"
	"deltacluster/internal/floc"
)

// Figure8SeedVolume reproduces Figure 8: the number of iterations (a)
// and the response time (b) as a function of the normalized difference
// between the initial (seed) cluster volume and the embedded cluster
// volume. The paper's claim: both are minimized when the seed volume
// matches the embedded volume (ratio 0).
func Figure8SeedVolume(opts Options) ([]*Table, error) {
	opts = opts.Defaults()
	rows := opts.scaled(3000, 100)
	cols := 100
	clusters := opts.scaled(100, 4)
	const embVolume = 100.0

	ds, err := perfDataset(rows, cols, clusters, embVolume, 0, opts.Seed)
	if err != nil {
		return nil, err
	}

	ratios := []float64{-0.5, 0, 0.5, 1, 2, 3, 5}
	ta := &Table{
		ID:     "Figure 8a",
		Title:  "Iterations vs (V_init − V_emb)/V_emb",
		Note:   fmt.Sprintf("matrix %dx%d, %d embedded clusters of volume %.0f, k=%d", rows, cols, clusters, embVolume, clusters),
		Header: []string{"ratio", "iterations"},
	}
	tb := &Table{
		ID:     "Figure 8b",
		Title:  "Response time vs (V_init − V_emb)/V_emb",
		Header: []string{"ratio", "time"},
	}
	for _, ratio := range ratios {
		seedVol := embVolume * (1 + ratio)
		if seedVol < 4 {
			seedVol = 4
		}
		var iterSum float64
		var durSum time.Duration
		for trial := 0; trial < opts.Trials; trial++ {
			cfg := perfConfig(clusters, opts.Seed+int64(trial))
			p := seedProbabilityForVolume(seedVol, rows, cols)
			cfg.SeedRowProbability = p
			cfg.SeedColProbability = p
			res, err := floc.Run(ds.Matrix, cfg)
			if err != nil {
				return nil, err
			}
			iterSum += float64(res.Iterations)
			durSum += res.Duration
		}
		ta.Rows = append(ta.Rows, []string{f2(ratio), f1(iterSum / float64(opts.Trials))})
		tb.Rows = append(tb.Rows, []string{f2(ratio), d0(durSum / time.Duration(opts.Trials))})
		opts.progress("fig8: ratio %.2f done", ratio)
	}
	return []*Table{ta, tb}, nil
}

// Figure9VolumeVariance reproduces Figure 9: iterations (a) and
// response time (b) versus the dispersion of the embedded cluster
// volumes, with one curve per seed-volume dispersion. The paper's
// claim: matched dispersion performs best, and widely dispersed seeds
// tolerate embedded-volume disparity the best.
func Figure9VolumeVariance(opts Options) ([]*Table, error) {
	opts = opts.Defaults()
	rows := opts.scaled(3000, 100)
	cols := 100
	clusters := opts.scaled(100, 4)
	const volMean = 300.0

	embLevels := []int{0, 1, 2, 3, 4, 5}
	seedLevels := []int{0, 2, 4}

	ta := &Table{
		ID:     "Figure 9a",
		Title:  "Iterations vs embedded volume dispersion (one column per seed dispersion)",
		Note:   fmt.Sprintf("matrix %dx%d, %d clusters, mean volume %.0f; dispersion level L means CV = 0.15·L", rows, cols, clusters, volMean),
		Header: []string{"emb level"},
	}
	tb := &Table{
		ID:     "Figure 9b",
		Title:  "Response time vs embedded volume dispersion",
		Header: []string{"emb level"},
	}
	for _, sl := range seedLevels {
		ta.Header = append(ta.Header, fmt.Sprintf("seed L=%d", sl))
		tb.Header = append(tb.Header, fmt.Sprintf("seed L=%d", sl))
	}

	for _, el := range embLevels {
		ds, err := perfDataset(rows, cols, clusters, volMean, disparityVariance(volMean, el), opts.Seed+int64(el))
		if err != nil {
			return nil, err
		}
		rowA := []string{fmt.Sprintf("%d", el)}
		rowB := []string{fmt.Sprintf("%d", el)}
		for _, sl := range seedLevels {
			var iterSum float64
			var durSum time.Duration
			for trial := 0; trial < opts.Trials; trial++ {
				cfg := perfConfig(clusters, opts.Seed+int64(trial)*31+int64(sl))
				cfg.SeedProbabilities = seedProbabilities(clusters, volMean, sl, rows, cols, opts.Seed+int64(sl))
				res, err := floc.Run(ds.Matrix, cfg)
				if err != nil {
					return nil, err
				}
				iterSum += float64(res.Iterations)
				durSum += res.Duration
			}
			rowA = append(rowA, f1(iterSum/float64(opts.Trials)))
			rowB = append(rowB, d0(durSum/time.Duration(opts.Trials)))
		}
		ta.Rows = append(ta.Rows, rowA)
		tb.Rows = append(tb.Rows, rowB)
		opts.progress("fig9: embedded level %d done", el)
	}
	return []*Table{ta, tb}, nil
}

// Figure10Alternative reproduces Figure 10: FLOC's response time
// versus the Section 4.4 alternative (derive differences + CLIQUE +
// clique recovery) as the number of attributes grows. The paper could
// only plot part of the alternative's curve; ours likewise reports
// "exceeded" once the dense-unit lattice passes the safety bound.
func Figure10Alternative(opts Options) ([]*Table, error) {
	opts = opts.Defaults()
	rows := opts.scaled(3000, 100)
	k := opts.scaled(100, 4)

	attrCounts := []int{10, 15, 20, 25, 30, 40}
	t := &Table{
		ID:     "Figure 10",
		Title:  "Response time vs number of attributes: FLOC vs alternative algorithm",
		Note:   fmt.Sprintf("%d objects, k=%d; 'exceeded' marks the alternative blowing past its dense-unit budget (the paper also plots only part of its curve)", rows, k),
		Header: []string{"attributes", "FLOC", "alternative", "derived dims"},
	}
	for _, cols := range attrCounts {
		clusters := opts.scaled(20, 2)
		volMean := (0.04 * float64(rows)) * (0.1 * float64(cols))
		if volMean < 12 {
			volMean = 12
		}
		ds, err := perfDataset(rows, cols, clusters, volMean, 0, opts.Seed)
		if err != nil {
			return nil, err
		}

		cfg := perfConfig(k, opts.Seed)
		flocRes, err := floc.Run(ds.Matrix, cfg)
		if err != nil {
			return nil, err
		}

		altCell := "exceeded"
		derived := cols * (cols - 1) / 2
		altRes, altErr := clique.AlternativeDeltaClusters(ds.Matrix, clique.AltConfig{
			Clique: clique.Config{
				Xi:       30,
				Tau:      0.03, // just under the embedded clusters' 4% row fraction
				MaxDims:  10,
				MaxUnits: 50000,
			},
		})
		if altErr == nil {
			altCell = d0(altRes.Duration)
			derived = altRes.DerivedCols
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", cols),
			d0(flocRes.Duration),
			altCell,
			fmt.Sprintf("%d", derived),
		})
		opts.progress("fig10: %d attributes done", cols)
	}
	return []*Table{t}, nil
}

// seedProbabilities samples per-cluster seed volumes from the level's
// dispersion and converts each to an inclusion probability.
func seedProbabilities(k int, mean float64, level, rows, cols int, seed int64) []float64 {
	vols := sampleVolumes(k, mean, level, seed)
	out := make([]float64, k)
	for i, v := range vols {
		out[i] = seedProbabilityForVolume(v, rows, cols)
	}
	return out
}
