package experiments

import (
	"math"

	"deltacluster/internal/floc"
	"deltacluster/internal/synth"
)

// Paper workload constants (Section 6.2): the synthetic experiments
// embed shifting-coherent clusters with residue ≈ 5 in a [0, 600)
// background — the value scale of the yeast excerpt in Figure 4 — and
// FLOC is run with a residue budget δ a bit above twice the embedded
// residue (discovered residues in the paper saturate at ≈ 11–12.5
// against embedded 5, the same ratio).
const (
	embeddedResidue = 5.0
	flocDelta       = 15.0
)

// perfConfig builds the FLOC configuration used by the performance
// experiments (Tables 2–3, Figures 8–9): the paper's random seeding
// with 0.05·N rows and 0.2·M columns per seed, weighted order.
func perfConfig(k int, seed int64) floc.Config {
	cfg := floc.DefaultConfig(k, flocDelta)
	cfg.Seed = seed
	cfg.SeedMode = floc.SeedRandom
	cfg.SeedRowProbability = 0.05
	cfg.SeedColProbability = 0.2
	cfg.MaxIterations = 60
	return cfg
}

// qualityConfig builds the configuration used by the quality
// experiments (Table 1, 4, 5 and the microarray comparison):
// auto seeding (anchored at this contrast) and weighted order.
func qualityConfig(k int, seed int64) floc.Config {
	cfg := floc.DefaultConfig(k, flocDelta)
	cfg.Seed = seed
	cfg.SeedRowProbability = 0.05
	cfg.SeedColProbability = 0.2
	cfg.MaxIterations = 100
	return cfg
}

// perfDataset embeds clusters the way Section 6.2 describes: cluster
// count and volume follow the experiment; the shape keeps the paper's
// (0.04·N)×(0.1·M) aspect.
func perfDataset(rows, cols, clusters int, volMean, volVariance float64, seed int64) (*synth.Dataset, error) {
	// Aspect ratio from the paper's shape: rows/cols of an embedded
	// cluster ≈ (0.04·N)/(0.1·M).
	ratio := (0.04 * float64(rows)) / (0.1 * float64(cols))
	if ratio < 1 {
		ratio = 1
	}
	return synth.Generate(synth.Config{
		Rows: rows, Cols: cols, NumClusters: clusters,
		VolumeMean:     volMean,
		VolumeVariance: volVariance,
		RowColRatio:    ratio,
		TargetResidue:  embeddedResidue,
	}, seed)
}

// disparityVariance maps the paper's "variance of the Erlang
// distribution" sweep value (0..5) to an actual volume variance. The
// paper's axis units are not recoverable; we interpret the sweep as
// increasing dispersion with the coefficient of variation growing by
// 15 percentage points per step (level 5 ≈ 75% CV), which spans
// "all clusters equal" to "highly disparate volumes" as the text
// describes.
func disparityVariance(mean float64, level int) float64 {
	cv := 0.15 * float64(level)
	sd := mean * cv
	return sd * sd
}

// seedProbabilityForVolume returns the per-cluster inclusion
// probability p that makes a random seed's expected volume equal v on
// an N×M matrix (seed volume = p²·N·M).
func seedProbabilityForVolume(v float64, rows, cols int) float64 {
	p := math.Sqrt(v / float64(rows*cols))
	if p > 1 {
		p = 1
	}
	if p < 0.002 {
		p = 0.002
	}
	return p
}
