package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyOpts keeps every experiment's workload minimal so the whole
// registry can be smoke-tested in CI time.
func tinyOpts() Options {
	return Options{Scale: 0.05, Seed: 1, Trials: 1}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.Defaults()
	if o.Scale != 0.25 || o.Trials != 1 || o.Out == nil {
		t.Errorf("defaults wrong: %+v", o)
	}
}

func TestScaled(t *testing.T) {
	o := Options{Scale: 0.1}.Defaults()
	if got := o.scaled(100, 2); got != 10 {
		t.Errorf("scaled(100) = %d", got)
	}
	if got := o.scaled(10, 5); got != 5 {
		t.Errorf("floor not applied: %d", got)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:     "Table X",
		Title:  "demo",
		Note:   "a note",
		Header: []string{"col a", "b"},
		Rows:   [][]string{{"1", "22"}, {"333", "4"}},
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table X", "demo", "a note", "col a", "333"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDisparityVariance(t *testing.T) {
	if got := disparityVariance(300, 0); got != 0 {
		t.Errorf("level 0 variance = %v", got)
	}
	lo := disparityVariance(300, 1)
	hi := disparityVariance(300, 5)
	if !(hi > lo && lo > 0) {
		t.Errorf("dispersion not increasing: %v vs %v", lo, hi)
	}
}

func TestSeedProbabilityForVolume(t *testing.T) {
	p := seedProbabilityForVolume(300, 3000, 100)
	// p²·N·M = 300 ⇒ p = sqrt(0.001).
	if p < 0.03 || p > 0.033 {
		t.Errorf("p = %v", p)
	}
	if seedProbabilityForVolume(1e12, 10, 10) != 1 {
		t.Error("p not clamped to 1")
	}
}

// Every registered experiment must run end to end at tiny scale and
// produce at least one non-empty table.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke suite is slow")
	}
	for _, exp := range All() {
		exp := exp
		t.Run(exp.Name, func(t *testing.T) {
			tables, err := exp.Run(tinyOpts())
			if err != nil {
				t.Fatalf("%s: %v", exp.Name, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", exp.Name)
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Errorf("%s table %q has no rows", exp.Name, tab.ID)
				}
				var buf bytes.Buffer
				if err := tab.Render(&buf); err != nil {
					t.Errorf("render %s: %v", tab.ID, err)
				}
			}
		})
	}
}

func TestRegistryNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, exp := range All() {
		if seen[exp.Name] {
			t.Errorf("duplicate experiment name %q", exp.Name)
		}
		seen[exp.Name] = true
		if exp.ID == "" || exp.Run == nil {
			t.Errorf("experiment %q incomplete", exp.Name)
		}
	}
	if len(seen) != 9 {
		t.Errorf("expected 9 experiments (one per table/figure), got %d", len(seen))
	}
}
