package experiments

import (
	"fmt"
	"time"

	"deltacluster/internal/floc"
)

// perfGrid is the matrix-size × cluster-count grid of Tables 2 and 3.
type perfCell struct {
	rows, cols int
	k          int
	iterations float64
	duration   time.Duration
}

// runPerfGrid executes the Table 2/3 grid once and caches nothing —
// Table 2 and Table 3 are two projections of the same runs, so both
// experiment entry points share this helper.
func runPerfGrid(opts Options) ([]perfCell, []int, [][2]int, error) {
	opts = opts.Defaults()
	sizes := [][2]int{{100, 20}, {500, 50}, {1000, 50}, {3000, 100}}
	ks := []int{10, 20, 50, 100}

	var cells []perfCell
	for _, size := range sizes {
		rows := opts.scaled(size[0], 20)
		cols := size[1] // attribute counts stay at paper scale
		clusters := opts.scaled(50, 2)
		volMean := (0.04 * float64(rows)) * (0.1 * float64(cols))
		if volMean < 12 {
			volMean = 12
		}
		ds, err := perfDataset(rows, cols, clusters, volMean, 0, opts.Seed)
		if err != nil {
			return nil, nil, nil, err
		}
		for _, kFull := range ks {
			k := opts.scaled(kFull, 2)
			var iterSum float64
			var durSum time.Duration
			for trial := 0; trial < opts.Trials; trial++ {
				cfg := perfConfig(k, opts.Seed+int64(trial))
				res, err := floc.Run(ds.Matrix, cfg)
				if err != nil {
					return nil, nil, nil, err
				}
				iterSum += float64(res.Iterations)
				durSum += res.Duration
			}
			cells = append(cells, perfCell{
				rows: rows, cols: cols, k: k,
				iterations: iterSum / float64(opts.Trials),
				duration:   durSum / time.Duration(opts.Trials),
			})
			opts.progress("perf grid: %dx%d k=%d done", rows, cols, k)
		}
	}
	return cells, ks, sizes, nil
}

// Table2Iterations reproduces Table 2: the number of phase-2
// iterations until termination across matrix sizes and cluster
// counts. The paper's claim: iterations grow, but very slowly, with
// both the matrix volume and k.
func Table2Iterations(opts Options) ([]*Table, error) {
	cells, ks, sizes, err := runPerfGrid(opts)
	if err != nil {
		return nil, err
	}
	return []*Table{perfTable(
		"Table 2", "Number of iterations vs matrix size and cluster count",
		cells, ks, sizes, opts,
		func(c perfCell) string { return f1(c.iterations) },
	)}, nil
}

// Table3ResponseTime reproduces Table 3: the wall-clock response time
// over the same grid. The paper's claim: time is roughly linear in
// matrix volume × k.
func Table3ResponseTime(opts Options) ([]*Table, error) {
	cells, ks, sizes, err := runPerfGrid(opts)
	if err != nil {
		return nil, err
	}
	return []*Table{perfTable(
		"Table 3", "Response time vs matrix size and cluster count",
		cells, ks, sizes, opts,
		func(c perfCell) string { return d0(c.duration) },
	)}, nil
}

func perfTable(id, title string, cells []perfCell, ks []int, sizes [][2]int, opts Options, render func(perfCell) string) *Table {
	opts = opts.Defaults()
	t := &Table{
		ID:    id,
		Title: title,
		Note: fmt.Sprintf("scale=%.2f (matrix rows and k scaled; column headers show actual sizes run)",
			opts.Scale),
		Header: []string{"k \\ matrix"},
	}
	// One column per size actually run.
	colOf := map[[2]int]int{}
	for _, size := range sizes {
		var c *perfCell
		for i := range cells {
			if cells[i].cols == size[1] && sizeMatches(cells[i], size, opts) {
				c = &cells[i]
				break
			}
		}
		if c == nil {
			continue
		}
		colOf[size] = len(t.Header)
		t.Header = append(t.Header, fmt.Sprintf("%dx%d", c.rows, c.cols))
	}
	for _, kFull := range ks {
		k := opts.scaled(kFull, 2)
		row := make([]string, len(t.Header))
		row[0] = fmt.Sprintf("%d", k)
		for _, size := range sizes {
			for _, c := range cells {
				if c.k == k && c.cols == size[1] && sizeMatches(c, size, opts) {
					row[colOf[size]] = render(c)
				}
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func sizeMatches(c perfCell, size [2]int, opts Options) bool {
	return c.rows == opts.scaled(size[0], 20)
}
