package bicluster

import (
	"math"
	"testing"

	"deltacluster/internal/cluster"
	"deltacluster/internal/eval"
	"deltacluster/internal/matrix"
	"deltacluster/internal/paperdata"
	"deltacluster/internal/synth"
)

func TestValidation(t *testing.T) {
	m, _ := matrix.NewFromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := Run(m, Config{K: 0, Delta: 1}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Run(m, Config{K: 1, Delta: -1}); err == nil {
		t.Error("negative delta accepted")
	}
	empty := matrix.New(0, 0)
	if _, err := Run(empty, Config{K: 1, Delta: 1}); err == nil {
		t.Error("empty matrix accepted")
	}
}

func TestPerfectClusterFoundWhole(t *testing.T) {
	// A perfectly shifted matrix has MSR 0 everywhere; the first
	// bicluster is the whole matrix.
	m := paperdata.Figure1Vectors()
	res, err := Run(m, Config{K: 1, Delta: 0.001, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Biclusters) != 1 {
		t.Fatalf("found %d biclusters", len(res.Biclusters))
	}
	b := res.Biclusters[0]
	if b.NumRows() != 3 || b.NumCols() != 5 {
		t.Errorf("bicluster is %dx%d, want the whole 3x5 matrix", b.NumRows(), b.NumCols())
	}
	if h := b.ResidueWith(cluster.SquaredMean); h > 1e-9 {
		t.Errorf("MSR = %v, want ~0", h)
	}
}

func TestDeltaRespected(t *testing.T) {
	ds, err := synth.Generate(synth.Config{
		Rows: 120, Cols: 20, NumClusters: 3,
		VolumeMean: 100, VolumeVariance: 0, RowColRatio: 5,
		TargetResidue: 4,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ds.Matrix, Config{K: 3, Delta: 80, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Biclusters) == 0 {
		t.Fatal("no biclusters found")
	}
	for i, b := range res.Biclusters {
		// Node addition can push H slightly above δ (it adds anything
		// not above the *current* mean); allow modest slack, as the
		// original algorithm does.
		if h := b.ResidueWith(cluster.SquaredMean); h > 80*1.5 {
			t.Errorf("bicluster %d MSR = %v, want ≤ δ·1.5 = 120", i, h)
		}
	}
}

func TestRecoversEmbeddedModule(t *testing.T) {
	ds, err := synth.Generate(synth.Config{
		Rows: 150, Cols: 20, NumClusters: 2,
		VolumeMean: 150, VolumeVariance: 0, RowColRatio: 5,
		TargetResidue: 3,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ds.Matrix, Config{K: 2, Delta: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := eval.RecallPrecision(ds.Matrix, ds.Embedded, eval.Specs(res.Biclusters))
	if rec < 0.3 {
		t.Errorf("recall = %.3f, want ≥ 0.3", rec)
	}
}

func TestMaskingDoesNotTouchInput(t *testing.T) {
	ds, _ := synth.Generate(synth.Config{
		Rows: 60, Cols: 12, NumClusters: 1,
		VolumeMean: 60, VolumeVariance: 0, RowColRatio: 4,
		TargetResidue: 2,
	}, 5)
	before := ds.Matrix.Clone()
	if _, err := Run(ds.Matrix, Config{K: 2, Delta: 50, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if !ds.Matrix.Equal(before) {
		t.Error("Run modified the input matrix")
	}
}

func TestSequentialBiclustersDiffer(t *testing.T) {
	ds, _ := synth.Generate(synth.Config{
		Rows: 120, Cols: 16, NumClusters: 2,
		VolumeMean: 120, VolumeVariance: 0, RowColRatio: 5,
		TargetResidue: 3,
	}, 11)
	res, err := Run(ds.Matrix, Config{K: 2, Delta: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Biclusters) == 2 {
		a, b := res.Biclusters[0], res.Biclusters[1]
		if a.Overlap(b) == a.NumRows()*a.NumCols() {
			t.Error("second bicluster identical to the first despite masking")
		}
	}
}

func TestDeterministic(t *testing.T) {
	ds, _ := synth.Generate(synth.Config{
		Rows: 80, Cols: 12, NumClusters: 1,
		VolumeMean: 80, VolumeVariance: 0, RowColRatio: 4,
		TargetResidue: 2,
	}, 13)
	cfg := Config{K: 2, Delta: 40, Seed: 9}
	a, _ := Run(ds.Matrix, cfg)
	b, _ := Run(ds.Matrix, cfg)
	if len(a.Biclusters) != len(b.Biclusters) {
		t.Fatal("nondeterministic bicluster count")
	}
	for i := range a.Biclusters {
		if a.Biclusters[i].Volume() != b.Biclusters[i].Volume() {
			t.Fatal("nondeterministic bicluster volume")
		}
	}
}

func TestMissingValuesTolerated(t *testing.T) {
	ds, _ := synth.Generate(synth.Config{
		Rows: 80, Cols: 12, NumClusters: 1,
		VolumeMean: 80, VolumeVariance: 0, RowColRatio: 4,
		TargetResidue: 2, MissingFraction: 0.1,
	}, 17)
	res, err := Run(ds.Matrix, Config{K: 1, Delta: 50, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Biclusters) == 0 {
		t.Fatal("no bicluster found on matrix with missing values")
	}
}

func TestContributionOracle(t *testing.T) {
	m := paperdata.Figure4Matrix()
	cl := cluster.FromSpec(m, []int{0, 1, 2, 3}, []int{0, 1, 2, 3, 4})
	// The mean of row contributions weighted by entry counts equals
	// the overall MSR for a fully specified matrix.
	total := 0.0
	for _, i := range cl.Rows() {
		total += rowContribution(cl, i)
	}
	if got, want := total/4, msr(cl); math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Errorf("mean row contribution %v != MSR %v", got, want)
	}
}

func TestInvertedRowsOption(t *testing.T) {
	// Base pattern plus a mirrored row: with AddInvertedRows the
	// mirrored row may join during addition; without it, it must not.
	rows := [][]float64{
		{1, 2, 3, 4},
		{2, 3, 4, 5},
		{3, 4, 5, 6},
		{-1, -2, -3, -4}, // mirror of row 0
	}
	m, _ := matrix.NewFromRows(rows)
	noInv, err := Run(m, Config{K: 1, Delta: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(noInv.Biclusters) == 0 {
		t.Fatal("no bicluster")
	}
	if noInv.Biclusters[0].HasRow(3) {
		t.Error("mirror row admitted without AddInvertedRows")
	}
}
