package bicluster

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"deltacluster/internal/matrix"
	"deltacluster/internal/stats"
)

func contextTestMatrix(t *testing.T) *matrix.Matrix {
	t.Helper()
	rng := stats.NewRNG(5)
	rows := make([][]float64, 30)
	for i := range rows {
		rows[i] = make([]float64, 12)
		for j := range rows[i] {
			rows[i][j] = rng.Uniform(0, 10)
		}
	}
	// Plant a coherent 10x6 block.
	for i := 0; i < 10; i++ {
		for j := 0; j < 6; j++ {
			rows[i][j] = float64(i + j)
		}
	}
	m, err := matrix.NewFromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunContextCancelledBeforeStart(t *testing.T) {
	m := contextTestMatrix(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	res, err := RunContext(ctx, m, Config{K: 3, Delta: 2, Seed: 1})
	if res != nil {
		t.Fatal("cancelled run returned a non-nil *Result")
	}
	var pr *PartialResult
	if !errors.As(err, &pr) {
		t.Fatalf("error %T is not a *PartialResult", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	if pr.Reason != StopCancelled {
		t.Fatalf("Reason = %v, want %v", pr.Reason, StopCancelled)
	}
	if pr.Result == nil || len(pr.Result.Biclusters) != 0 {
		t.Fatalf("partial result %+v, want an empty (but non-nil) result before the first mine", pr.Result)
	}
	if !strings.Contains(pr.Error(), "cancelled") {
		t.Fatalf("Error() = %q, want the stop reason mentioned", pr.Error())
	}
}

// Cancelling after the first mine must surface exactly the completed
// biclusters: the sequential mining structure makes each one final.
func TestRunContextCancelMidSequence(t *testing.T) {
	m := contextTestMatrix(t)
	cfg := Config{K: 3, Delta: 2, Seed: 1}
	full, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Biclusters) < 2 {
		t.Fatalf("workload yields %d biclusters; too few to interrupt between mines", len(full.Biclusters))
	}

	// A context that expires during the run: cancel from a goroutine
	// would race with the mine, so instead use a context wrapper that
	// reports cancelled after the first Err() call — deterministic and
	// single-threaded.
	ctx := &countdownContext{Context: context.Background(), allow: 1}
	res, err := RunContext(ctx, m, cfg)
	if res != nil {
		t.Fatal("cancelled run returned a non-nil *Result")
	}
	var pr *PartialResult
	if !errors.As(err, &pr) {
		t.Fatalf("error %T is not a *PartialResult", err)
	}
	if got := len(pr.Result.Biclusters); got != 1 {
		t.Fatalf("partial result carries %d biclusters, want exactly the 1 completed before cancellation", got)
	}
	// The completed bicluster must be identical to the full run's first.
	a, b := full.Biclusters[0], pr.Result.Biclusters[0]
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		t.Fatalf("first bicluster differs: %dx%d vs %dx%d", a.NumRows(), a.NumCols(), b.NumRows(), b.NumCols())
	}
}

// countdownContext reports Canceled after its first `allow` Err calls.
type countdownContext struct {
	context.Context
	allow int
}

func (c *countdownContext) Err() error {
	if c.allow > 0 {
		c.allow--
		return nil
	}
	return context.Canceled
}

func TestRunContextDeadline(t *testing.T) {
	m := contextTestMatrix(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	_, err := RunContext(ctx, m, Config{K: 2, Delta: 2, Seed: 1})
	var pr *PartialResult
	if !errors.As(err, &pr) {
		t.Fatalf("error %T is not a *PartialResult", err)
	}
	if pr.Reason != StopDeadline {
		t.Fatalf("Reason = %v, want %v", pr.Reason, StopDeadline)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("errors.Is(err, context.DeadlineExceeded) = false for %v", err)
	}
}
