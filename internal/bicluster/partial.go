package bicluster

import (
	"context"
	"errors"
	"fmt"
)

// StopReason says why a RunContext run stopped early.
type StopReason int

const (
	// StopCancelled means the context was cancelled.
	StopCancelled StopReason = iota + 1
	// StopDeadline means the context's deadline expired.
	StopDeadline
)

// String names the reason.
func (r StopReason) String() string {
	switch r {
	case StopCancelled:
		return "cancelled"
	case StopDeadline:
		return "deadline"
	default:
		return fmt.Sprintf("StopReason(%d)", int(r))
	}
}

// PartialResult is the typed error RunContext returns on cancellation.
// Cheng & Church mines biclusters one at a time, so every bicluster in
// Result is complete and final; only the remaining K were lost.
// Unwrap exposes the context error, so errors.Is(err,
// context.Canceled) works through it.
type PartialResult struct {
	// Result holds the biclusters fully mined before the stop.
	Result *Result
	// Reason says whether cancellation or a deadline stopped the run.
	Reason StopReason

	cause error
}

// Error implements error.
func (p *PartialResult) Error() string {
	return fmt.Sprintf("bicluster: run stopped (%s) after %d biclusters", p.Reason, len(p.Result.Biclusters))
}

// Unwrap exposes the underlying context error.
func (p *PartialResult) Unwrap() error { return p.cause }

func newPartialResult(res *Result, cause error) *PartialResult {
	reason := StopCancelled
	if errors.Is(cause, context.DeadlineExceeded) {
		reason = StopDeadline
	}
	return &PartialResult{Result: res, Reason: reason, cause: cause}
}
