// Package bicluster implements the biclustering algorithm of Cheng &
// Church ("Biclustering of expression data", ISMB 2000) — reference
// [3] of the δ-cluster paper and its baseline in the microarray
// comparison of Section 6.1.2.
//
// A bicluster is a submatrix whose mean squared residue
//
//	H(I, J) = (1/|I||J|) Σ (d_ij − d_iJ − d_Ij + d_IJ)²
//
// is at most a threshold δ. The algorithm finds one maximal bicluster
// at a time, starting from the whole matrix:
//
//  1. multiple node deletion — repeatedly drop every row (then every
//     column) whose mean squared residue contribution exceeds α·H,
//     while H > δ (only applied while the matrix is large);
//  2. single node deletion — drop the single row or column with the
//     largest contribution until H ≤ δ;
//  3. node addition — add back every row or column whose contribution
//     does not exceed the current H (optionally also inverted rows);
//
// then masks the discovered submatrix with uniform random values and
// repeats for the next bicluster. The masking is what the δ-cluster
// paper criticizes: later biclusters are mined from data polluted by
// the masks of earlier ones, degrading both quality and volume.
//
// The δ-cluster model generalizes this: missing values are permitted
// (this implementation tolerates them, counting specified entries
// only), the residue may be arithmetic rather than squared, and FLOC
// maintains all k clusters simultaneously instead of masking.
package bicluster

import (
	"context"
	"fmt"
	"math"
	"time"

	"deltacluster/internal/cluster"
	"deltacluster/internal/matrix"
	"deltacluster/internal/stats"
)

// Config parameterizes a Cheng & Church run.
type Config struct {
	// K is the number of biclusters to mine sequentially.
	K int

	// Delta is the mean-squared-residue ceiling δ.
	Delta float64

	// Alpha is the multiple-node-deletion aggressiveness (rows/columns
	// with contribution > Alpha·H are dropped in bulk). Cheng & Church
	// use 1.2; values ≤ 1 disable the bulk phase. Defaults to 1.2.
	Alpha float64

	// MultipleDeletionThreshold is the row (column) count above which
	// the bulk deletion phase is used; below it only single node
	// deletion runs, as in the original paper (100). Defaults to 100.
	MultipleDeletionThreshold int

	// AddInvertedRows also admits rows whose *negated* values fit the
	// bicluster during node addition (the "mirror image" rows of the
	// original paper). Off by default.
	AddInvertedRows bool

	// Seed drives the random masking values.
	Seed int64
}

func (c *Config) setDefaults() {
	if c.Alpha == 0 {
		c.Alpha = 1.2
	}
	if c.MultipleDeletionThreshold == 0 {
		c.MultipleDeletionThreshold = 100
	}
}

func (c *Config) validate() error {
	if c.K < 1 {
		return fmt.Errorf("bicluster: K = %d, want ≥ 1", c.K)
	}
	if !(c.Delta >= 0) {
		return fmt.Errorf("bicluster: Delta = %v, want ≥ 0", c.Delta)
	}
	if c.Alpha < 0 {
		return fmt.Errorf("bicluster: Alpha = %v, want ≥ 0", c.Alpha)
	}
	return nil
}

// Result reports the outcome of a run. Biclusters reference the
// caller's original matrix (NOT the masked working copy), so their
// residues are measured against real data.
type Result struct {
	Biclusters []*cluster.Cluster
	// Duration is the wall-clock time of the whole run.
	Duration time.Duration
}

// Run mines cfg.K biclusters from m. The input matrix is not
// modified; masking happens on an internal copy.
func Run(m *matrix.Matrix, cfg Config) (*Result, error) {
	return RunContext(context.Background(), m, cfg)
}

// RunContext is Run with cancellation: the context is checked before
// each of the K sequential mines, and a cancelled or expired context
// stops the run with a *PartialResult error carrying the biclusters
// mined so far (each of which is complete and final — later mines
// never revise earlier ones).
func RunContext(ctx context.Context, m *matrix.Matrix, cfg Config) (*Result, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if m.Rows() == 0 || m.Cols() == 0 {
		return nil, fmt.Errorf("bicluster: matrix is %dx%d", m.Rows(), m.Cols())
	}
	start := time.Now()
	rng := stats.NewRNG(cfg.Seed)
	work := m.Clone()
	lo, hi := dataRange(m)

	res := &Result{}
	for k := 0; k < cfg.K; k++ {
		if err := ctx.Err(); err != nil {
			res.Duration = time.Since(start)
			return nil, newPartialResult(res, err)
		}
		spec := mineOne(work, &cfg)
		if len(spec.Rows) == 0 || len(spec.Cols) == 0 {
			break
		}
		// Report the bicluster against the ORIGINAL data.
		res.Biclusters = append(res.Biclusters, cluster.FromSpec(m, spec.Rows, spec.Cols))
		// Mask the discovered cells with random values so the next
		// round finds something else (the original algorithm's step).
		for _, i := range spec.Rows {
			row := work.MutRow(i)
			for _, j := range spec.Cols {
				row[j] = rng.Uniform(lo, hi)
			}
		}
	}
	res.Duration = time.Since(start)
	return res, nil
}

// mineOne runs deletion and addition phases on the working matrix and
// returns the bicluster's membership.
func mineOne(work *matrix.Matrix, cfg *Config) cluster.Spec {
	cl := cluster.New(work)
	for i := 0; i < work.Rows(); i++ {
		cl.AddRow(i)
	}
	for j := 0; j < work.Cols(); j++ {
		cl.AddCol(j)
	}

	multipleNodeDeletion(cl, cfg)
	singleNodeDeletion(cl, cfg)
	nodeAddition(cl, cfg)
	return cl.Spec()
}

// msr is the mean squared residue H(I, J).
func msr(cl *cluster.Cluster) float64 { return cl.ResidueWith(cluster.SquaredMean) }

// rowContribution returns d(i) = mean_j r_ij² over the cluster's
// columns, or 0 when the row has no specified member entries.
func rowContribution(cl *cluster.Cluster, i int) float64 {
	sum, n := 0.0, 0
	for _, j := range cl.Cols() {
		if !cl.Matrix().IsSpecified(i, j) {
			continue
		}
		r := cl.EntryResidue(i, j)
		sum += r * r
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func colContribution(cl *cluster.Cluster, j int) float64 {
	sum, n := 0.0, 0
	for _, i := range cl.Rows() {
		if !cl.Matrix().IsSpecified(i, j) {
			continue
		}
		r := cl.EntryResidue(i, j)
		sum += r * r
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// multipleNodeDeletion is Algorithm 2 of Cheng & Church: bulk-remove
// clearly bad rows/columns while the matrix is large and H > δ.
func multipleNodeDeletion(cl *cluster.Cluster, cfg *Config) {
	if cfg.Alpha <= 1 {
		return
	}
	for {
		h := msr(cl)
		if h <= cfg.Delta {
			return
		}
		changed := false
		if cl.NumRows() > cfg.MultipleDeletionThreshold {
			for _, i := range cl.Rows() {
				if cl.NumRows() <= 2 {
					break
				}
				if rowContribution(cl, i) > cfg.Alpha*h {
					cl.RemoveRow(i)
					changed = true
				}
			}
		}
		h = msr(cl)
		if h <= cfg.Delta {
			return
		}
		if cl.NumCols() > cfg.MultipleDeletionThreshold {
			for _, j := range cl.Cols() {
				if cl.NumCols() <= 2 {
					break
				}
				if colContribution(cl, j) > cfg.Alpha*h {
					cl.RemoveCol(j)
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}

// singleNodeDeletion is Algorithm 1: remove the single worst row or
// column until H ≤ δ.
func singleNodeDeletion(cl *cluster.Cluster, cfg *Config) {
	for msr(cl) > cfg.Delta {
		worstIsRow := true
		worstIdx := -1
		worst := -1.0
		if cl.NumRows() > 2 {
			for _, i := range cl.Rows() {
				if d := rowContribution(cl, i); d > worst {
					worst = d
					worstIdx = i
					worstIsRow = true
				}
			}
		}
		if cl.NumCols() > 2 {
			for _, j := range cl.Cols() {
				if d := colContribution(cl, j); d > worst {
					worst = d
					worstIdx = j
					worstIsRow = false
				}
			}
		}
		if worstIdx < 0 {
			return // floor reached
		}
		if worstIsRow {
			cl.RemoveRow(worstIdx)
		} else {
			cl.RemoveCol(worstIdx)
		}
	}
}

// nodeAddition is Algorithm 3: add back columns then rows whose
// contribution does not exceed the current H, iterating to a fixed
// point. With AddInvertedRows, a row whose negation fits is also
// added (we track it as a normal member; the caller interprets).
func nodeAddition(cl *cluster.Cluster, cfg *Config) {
	m := cl.Matrix()
	for {
		changed := false
		h := msr(cl)
		for j := 0; j < m.Cols(); j++ {
			if cl.HasCol(j) {
				continue
			}
			if additionColScore(cl, j) <= h {
				cl.AddCol(j)
				changed = true
			}
		}
		h = msr(cl)
		for i := 0; i < m.Rows(); i++ {
			if cl.HasRow(i) {
				continue
			}
			if additionRowScore(cl, i, false) <= h {
				cl.AddRow(i)
				changed = true
				continue
			}
			if cfg.AddInvertedRows && additionRowScore(cl, i, true) <= h {
				cl.AddRow(i)
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// additionRowScore computes the mean squared residue row i would
// contribute if added, using the cluster's current bases. With
// inverted=true the row's values are negated and offset by twice the
// cluster base, Cheng & Church's mirror-image test.
func additionRowScore(cl *cluster.Cluster, i int, inverted bool) float64 {
	m := cl.Matrix()
	base := cl.Base()
	if math.IsNaN(base) {
		return math.Inf(1)
	}
	row := m.RowView(i)
	// Row base over the cluster's columns.
	sum, n := 0.0, 0
	for _, j := range cl.Cols() {
		if v := row[j]; !math.IsNaN(v) {
			if inverted {
				v = -v
			}
			sum += v
			n++
		}
	}
	if n == 0 {
		return math.Inf(1)
	}
	rowBase := sum / float64(n)
	score := 0.0
	for _, j := range cl.Cols() {
		v := row[j]
		if math.IsNaN(v) {
			continue
		}
		if inverted {
			v = -v
		}
		colBase := cl.ColBase(j)
		if math.IsNaN(colBase) {
			colBase = base
		}
		r := v - rowBase - colBase + base
		score += r * r
	}
	return score / float64(n)
}

func additionColScore(cl *cluster.Cluster, j int) float64 {
	m := cl.Matrix()
	base := cl.Base()
	if math.IsNaN(base) {
		return math.Inf(1)
	}
	sum, n := 0.0, 0
	for _, i := range cl.Rows() {
		if v := m.RowView(i)[j]; !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return math.Inf(1)
	}
	colBase := sum / float64(n)
	score := 0.0
	for _, i := range cl.Rows() {
		v := m.RowView(i)[j]
		if math.IsNaN(v) {
			continue
		}
		rowBase := cl.RowBase(i)
		if math.IsNaN(rowBase) {
			rowBase = base
		}
		r := v - rowBase - colBase + base
		score += r * r
	}
	return score / float64(n)
}

// dataRange returns the min and max specified values of m, used for
// masking. A constant or empty matrix masks around its value.
func dataRange(m *matrix.Matrix) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i < m.Rows(); i++ {
		for _, v := range m.RowView(i) {
			if math.IsNaN(v) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if !(hi > lo) {
		return 0, 1
	}
	return lo, hi
}
