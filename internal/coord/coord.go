// Package coord is the multi-node deltaserve coordinator: a stdlib-only
// front door that consistent-hashes jobs across N backend deltaserve
// processes, proxies the public /v1/jobs API, replicates job metadata
// and FLOC checkpoints to peer backends, and migrates jobs off
// backends that die or drain — resuming FLOC runs from the last
// replicated checkpoint so nothing past a boundary is ever recomputed
// and the final clustering is bit-identical to an uninterrupted run.
//
//	POST   /v1/jobs                  route + dispatch    → 202 (+warning when degraded)
//	                                 (JSON, or a binary DSUB envelope whose DCMX
//	                                 matrix section is proxied byte for byte)
//	POST   /v1/jobs:batch            per-item routing fan-out across the ring → 202
//	GET    /v1/jobs/{id}             proxied status      → 200
//	GET    /v1/jobs/{id}/result      proxied result      → 200
//	PATCH  /v1/jobs/{id}/matrix      proxied deltastream patch, recorded for rebuilds → 200
//	POST   /v1/jobs/{id}:recluster   warm-start child on the parent's owner, or rebuilt
//	                                 from a replica checkpoint when the owner is gone → 202
//	DELETE /v1/jobs/{id}             proxied cancel      → 202 (or 200)
//	GET    /healthz              coordinator liveness
//	GET    /readyz               ready while ≥1 backend is up
//	GET    /metrics              routing/replication/migration counters
//	GET    /v1/admin/backends    backend health states
//
// Unlike internal/service, this package is inherently wall-clock
// driven (health probes, retry backoff, replication cadence) and makes
// no determinism claims of its own; the determinism story lives
// entirely in the engines it routes to. What it does promise is
// boundedness: every backend call has a timeout, every retry loop a
// cap, every goroutine a lifecycle tied to Shutdown.
package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"deltacluster/internal/service"
	"deltacluster/internal/stats"
)

// Options configures a Coordinator.
type Options struct {
	// Backends are the base URLs of the backend deltaserve processes
	// (e.g. "http://127.0.0.1:8081"). Membership is fixed for the
	// coordinator's lifetime; liveness within the set is probed.
	Backends []string

	// Replication is how many peer backends (beyond the owner) receive
	// each job's metadata and checkpoint replicas. Fewer live peers
	// than this degrades submissions to 202-with-warning, never 500.
	// Defaults to 1.
	Replication int

	// ProbeInterval is the health-probe cadence. Defaults to 1s.
	ProbeInterval time.Duration

	// FailThreshold is how many consecutive probe failures mark a
	// backend down. Defaults to 3.
	FailThreshold int

	// PollInterval is the job-sync cadence: view refresh, checkpoint
	// pull/push, migration of orphaned jobs. Defaults to 500ms.
	PollInterval time.Duration

	// RequestTimeout bounds each backend HTTP attempt. Defaults to 10s.
	RequestTimeout time.Duration

	// RetryAttempts caps tries per backend call (first try included).
	// Defaults to 3.
	RetryAttempts int

	// BackoffBase and BackoffMax shape the exponential retry backoff.
	// Default 100ms base, 2s cap.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// Seed drives the job-ID RNG (equal seeds issue equal sequences).
	// Defaults to 1.
	Seed int64

	// TTL is how long a terminal job's routing entry (and cached last
	// view) stays readable. Defaults to 15 minutes.
	TTL time.Duration

	// MaxJobs bounds the routing table; a full table rejects
	// submissions with 429. Defaults to 4096.
	MaxJobs int

	// MaxBodyBytes caps proxied request bodies. Defaults to 32 MiB.
	MaxBodyBytes int64

	// Logf, when non-nil, receives coordinator lifecycle events.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Replication <= 0 {
		o.Replication = 1
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = time.Second
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 500 * time.Millisecond
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.RetryAttempts <= 0 {
		o.RetryAttempts = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TTL <= 0 {
		o.TTL = 15 * time.Minute
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 4096
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	return o
}

// backendState is the prober's verdict on one backend.
type backendState int

const (
	stateUp backendState = iota
	stateDraining
	stateDown
)

func (s backendState) String() string {
	switch s {
	case stateUp:
		return "up"
	case stateDraining:
		return "draining"
	default:
		return "down"
	}
}

// backend is one member of the cluster. Guarded by Coordinator.mu.
type backend struct {
	name  string
	state backendState
	fails int // consecutive probe failures
}

// job is one routing-table entry: where the job lives now, how to
// re-create it elsewhere, and the latest replicated-checkpoint
// position. Guarded by Coordinator.mu; backend calls about a job
// happen outside the lock and re-acquire it to commit.
type job struct {
	id        string // public ID (what the client sees)
	submit    service.SubmitRequest
	algorithm string
	attempts  int

	owner string // current owner backend name
	epoch int    // migration count; see dispatchID

	replicas []string // peer backends holding this job's replicas

	ckIters int    // latest replicated checkpoint boundary (-1 = none)
	ckEtag  string // owner's checkpoint ETag, for conditional pulls

	clientCancelled bool // DELETE came through the coordinator
	cancelSeen      int  // consecutive unexplained-cancel observations
	terminal        bool
	finishedAt      time.Time

	lastView service.JobView // latest owner-reported view, ID rewritten
	degraded bool            // accepted below replication target

	// Streaming lineage. lineageRoot is the public ID of the lineage's
	// root job (itself, for roots); patches is the full recorded
	// deltastream history of the lineage, in order, so the patched
	// matrix can be rebuilt bit for bit on any backend from the root
	// submission alone. A PATCH through the coordinator appends to
	// every member of the lineage, so each entry is self-contained for
	// failover. parentID and warm mark warm-start recluster children:
	// they migrate with their patches and, lacking an own checkpoint,
	// their parent's replicated one.
	lineageRoot   string
	parentID      string
	warm          bool
	patches       []service.MatrixPatchRequest
	matrixVersion int
	finalCkPulled bool // the done-boundary checkpoint reached the replicas

	// binMatrix holds the DCMX section of a binary submission, exactly
	// as the client sent it. Every (re)dispatch — initial, migration,
	// recluster rebuild — forwards these bytes verbatim inside a DSUB
	// envelope; the receiving backend re-verifies the section checksum,
	// so no hop can corrupt the matrix silently. Nil for JSON jobs,
	// whose matrix lives in submit itself.
	binMatrix []byte
}

// dispatchID is the backend-side job ID for the given migration epoch:
// the public ID itself for the initial dispatch, "<id>.m<n>" for the
// n-th migration. Distinct per epoch so a re-dispatch can never
// collide with a corpse of the job on a backend that comes back.
func dispatchID(id string, epoch int) string {
	if epoch == 0 {
		return id
	}
	return fmt.Sprintf("%s.m%d", id, epoch)
}

// Coordinator routes, replicates and migrates. Create with New, mount
// Handler, Shutdown to stop the probe and sync loops.
type Coordinator struct {
	opts    Options
	ring    *ring
	client  *client
	metrics *metrics
	mux     *http.ServeMux

	mu       sync.Mutex
	rng      *stats.RNG
	backends map[string]*backend
	jobs     map[string]*job

	stop context.CancelFunc
	wg   sync.WaitGroup
}

// New builds a Coordinator over the given backends and starts its
// health-probe and job-sync loops. Backends start optimistically "up";
// the first probe round corrects that within one interval.
func New(opts Options) (*Coordinator, error) {
	o := opts.withDefaults()
	if len(o.Backends) == 0 {
		return nil, errors.New("coord: at least one backend is required")
	}
	names := make([]string, 0, len(o.Backends))
	seen := make(map[string]bool)
	for _, b := range o.Backends {
		name := strings.TrimRight(strings.TrimSpace(b), "/")
		if name == "" {
			return nil, fmt.Errorf("coord: empty backend URL in %q", o.Backends)
		}
		if !strings.Contains(name, "://") {
			name = "http://" + name
		}
		if seen[name] {
			return nil, fmt.Errorf("coord: duplicate backend %q", name)
		}
		seen[name] = true
		names = append(names, name)
	}

	c := &Coordinator{
		opts:     o,
		ring:     newRing(names),
		client:   newClient(o.RequestTimeout, o.RetryAttempts, o.BackoffBase, o.BackoffMax),
		metrics:  &metrics{},
		rng:      stats.NewRNG(o.Seed),
		backends: make(map[string]*backend, len(names)),
		jobs:     make(map[string]*job),
	}
	for _, name := range names {
		c.backends[name] = &backend{name: name, state: stateUp}
	}

	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	c.mux.HandleFunc("POST /v1/jobs:batch", c.handleBatch)
	c.mux.HandleFunc("GET /v1/jobs/{id}", c.handleGet)
	c.mux.HandleFunc("GET /v1/jobs/{id}/result", c.handleResult)
	c.mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleCancel)
	c.mux.HandleFunc("PATCH /v1/jobs/{id}/matrix", c.handlePatchMatrix)
	c.mux.HandleFunc("POST /v1/jobs/{target}", c.handleJobAction)
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
	c.mux.HandleFunc("GET /readyz", c.handleReadyz)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux.HandleFunc("GET /v1/admin/backends", c.handleBackends)

	ctx, cancel := context.WithCancel(context.Background())
	c.stop = cancel
	c.wg.Add(2)
	go func() {
		defer c.wg.Done()
		c.probeLoop(ctx)
	}()
	go func() {
		defer c.wg.Done()
		c.syncLoop(ctx)
	}()
	return c, nil
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Shutdown stops the probe and sync loops and waits for them. Proxied
// in-flight requests are bounded by RequestTimeout and finish on their
// own; backends are not touched.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.stop()
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// SubmitResponse is the coordinator's 202 body: the backend's job view
// (ID rewritten to the public one) plus an optional degradation
// warning when the job was accepted with fewer replicas than asked.
type SubmitResponse struct {
	Job     service.JobView `json:"job"`
	Warning string          `json:"warning,omitempty"`
}

// mintID issues the next public job ID from the seeded RNG, skipping
// collisions with live routing entries.
func (c *Coordinator) mintID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		id := fmt.Sprintf("j%016x", uint64(c.rng.Int63()))
		if _, taken := c.jobs[id]; !taken {
			return id
		}
	}
}

// routingFull reports whether the routing table is at capacity, after
// giving expired terminal entries one chance to age out.
func (c *Coordinator) routingFull() bool {
	c.mu.Lock()
	full := len(c.jobs) >= c.opts.MaxJobs
	c.mu.Unlock()
	if !full {
		return false
	}
	c.evictExpired()
	c.mu.Lock()
	full = len(c.jobs) >= c.opts.MaxJobs
	c.mu.Unlock()
	return full
}

// placement returns the ready owner and ready replica peers for a job
// ID per the ring's preference order, plus the replica shortfall
// against the configured target.
func (c *Coordinator) placement(id string) (owner string, peers []string, shortfall int) {
	prefs := c.ring.prefs(id)
	c.mu.Lock()
	defer c.mu.Unlock()
	ready := make([]string, 0, len(prefs))
	for _, name := range prefs {
		if b := c.backends[name]; b != nil && b.state == stateUp {
			ready = append(ready, name)
		}
	}
	if len(ready) == 0 {
		return "", nil, c.opts.Replication
	}
	owner = ready[0]
	peers = ready[1:]
	if len(peers) > c.opts.Replication {
		peers = peers[:c.opts.Replication]
	}
	return owner, peers, c.opts.Replication - len(peers)
}

// handleSubmit routes a client submission. A JSON body is decoded
// here; a binary (DSUB) body branches to handleSubmitBinary, which
// peels the params off the envelope and leaves the DCMX section as
// opaque bytes to proxy. Both paths converge on submitOne.
func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if isBinaryContentType(r.Header.Get("Content-Type")) {
		c.handleSubmitBinary(w, r)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, c.opts.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req service.SubmitRequest
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, service.CodeInvalidRequest,
				"request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, service.CodeInvalidRequest, "decoding request: %v", err)
		return
	}
	c.respondSubmit(w, c.submitOne(r.Context(), req, nil))
}

// handleSubmitBinary is the binary branch of POST /v1/jobs: the DSUB
// envelope's framing and params checksum are verified here (a corrupt
// request dies at the front door), but the DCMX matrix section is
// never opened — it is proxied byte for byte and the executing backend
// verifies its checksum.
func (c *Coordinator) handleSubmitBinary(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, c.opts.MaxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, service.CodeInvalidRequest,
				"request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, service.CodeInvalidRequest, "reading request body: %v", err)
		return
	}
	req, dcmx, err := service.DecodeBinarySubmit(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, service.CodeInvalidRequest, "binary submit: %v", err)
		return
	}
	c.respondSubmit(w, c.submitOne(r.Context(), *req, dcmx))
}

// isBinaryContentType matches the binary submission MIME type,
// tolerating parameters after it — the coordinator-side mirror of the
// service's check.
func isBinaryContentType(ct string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == service.ContentTypeBinaryMatrix
}

// submitOutcome is submitOne's verdict on one submission: an accepted
// job's view (plus degradation warning), or a refusal carrying either
// a synthesized error or a backend 4xx to relay.
type submitOutcome struct {
	ok      bool
	id      string
	view    service.JobView
	warning string

	status  int       // refusal: standalone HTTP status
	code    string    // refusal: error code (when relay is nil)
	message string    // refusal: error message (when relay is nil)
	relay   *response // refusal: backend 4xx answered verbatim
}

// submitOne routes one submission end to end: mint an ID, dispatch to
// the ring owner (falling over to the next ready backend if the owner
// refuses), replicate the job's metadata to peer backends, and record
// the routing entry. dcmx, when non-nil, is the client's DCMX matrix
// section; it rides the dispatch verbatim inside a DSUB envelope and
// is retained on the routing entry so migrations and rebuilds can
// forward the same bytes. Total unavailability (no backend accepts)
// is the only 5xx path.
func (c *Coordinator) submitOne(ctx context.Context, req service.SubmitRequest, dcmx []byte) submitOutcome {
	if c.routingFull() {
		return submitOutcome{status: http.StatusTooManyRequests, code: service.CodeQueueFull,
			message: fmt.Sprintf("coordinator routing table is full (%d jobs); retry later", c.opts.MaxJobs)}
	}

	id := c.mintID()
	owner, peers, shortfall := c.placement(id)
	if owner == "" {
		return submitOutcome{status: http.StatusServiceUnavailable, code: codeNoBackends, message: "no ready backends"}
	}

	// Dispatch to the owner; if it refuses at the transport level, walk
	// the rest of the preference list before giving up. A 4xx is final:
	// the spec itself is bad and is relayed verbatim.
	body, contentType, err := encodeDispatch(service.DispatchRequest{ID: id, Submit: req}, dcmx)
	if err != nil {
		return submitOutcome{status: http.StatusInternalServerError, code: service.CodeInternal,
			message: fmt.Sprintf("encoding dispatch: %v", err)}
	}
	candidates := append([]string{owner}, peers...)
	var resp *response
	var dispatchedTo string
	for _, name := range candidates {
		resp, err = c.client.do(ctx, http.MethodPost, name+"/v1/internal/jobs", body, contentType)
		if err != nil {
			c.logf("coord: dispatch %s to %s: %v", id, name, err)
			c.noteCallFailure(name)
			continue
		}
		dispatchedTo = name
		break
	}
	if resp == nil {
		return submitOutcome{status: http.StatusBadGateway, code: codeNoBackends,
			message: fmt.Sprintf("no backend accepted job %s: %v", id, err)}
	}
	if resp.status != http.StatusAccepted && resp.status != http.StatusOK {
		return submitOutcome{status: resp.status, relay: resp}
	}
	var dr service.DispatchResponse
	if err := json.Unmarshal(resp.body, &dr); err != nil {
		return submitOutcome{status: http.StatusBadGateway, code: service.CodeInternal,
			message: fmt.Sprintf("backend %s returned an unreadable dispatch response: %v", dispatchedTo, err)}
	}

	// Replicate the job's metadata to the peer set. Failures degrade,
	// never fail: the job is already running. Binary jobs replicate a
	// matrix-less submit — their matrix integrity on failover rests on
	// the retained DCMX bytes and the replicated checkpoint's MatrixSum.
	placed := 0
	for _, peer := range peers {
		if peer == dispatchedTo {
			continue
		}
		if c.putMetaReplica(ctx, peer, id, &req) {
			placed++
		} else {
			c.noteCallFailure(peer)
		}
	}
	missing := shortfall + (len(peers) - placed)
	if dispatchedTo != owner && placed < len(peers) {
		// The owner slot consumed a peer; recount against the target.
		missing = c.opts.Replication - placed
	}

	algo := req.Algorithm
	if algo == "" {
		algo = service.AlgoFLOC
	}
	attempts := 1
	if req.FLOC != nil && req.FLOC.Attempts > 1 {
		attempts = req.FLOC.Attempts
	}
	view := dr.Job
	view.ID = id
	j := &job{
		id:          id,
		submit:      req,
		algorithm:   algo,
		attempts:    attempts,
		owner:       dispatchedTo,
		replicas:    replicasWithout(peers, dispatchedTo),
		ckIters:     -1,
		lastView:    view,
		degraded:    missing > 0,
		lineageRoot: id,
		binMatrix:   dcmx,
	}
	c.mu.Lock()
	c.jobs[id] = j
	c.mu.Unlock()

	c.metrics.jobRouted()
	out := submitOutcome{ok: true, id: id, view: view}
	if missing > 0 {
		c.metrics.jobDegraded()
		out.warning = fmt.Sprintf(
			"replication degraded: %d of %d replica(s) placed; the job runs, but failover headroom is reduced",
			c.opts.Replication-missing, c.opts.Replication)
	}
	return out
}

// encodeDispatch renders a DispatchRequest for the wire: plain JSON
// for JSON-submitted jobs, a DSUB envelope carrying the original DCMX
// bytes verbatim for binary ones.
func encodeDispatch(dreq service.DispatchRequest, dcmx []byte) (body []byte, contentType string, err error) {
	if len(dcmx) > 0 {
		body, err = service.EncodeBinaryDispatch(&dreq, dcmx)
		return body, service.ContentTypeBinaryMatrix, err
	}
	body, err = json.Marshal(dreq)
	return body, "application/json", err
}

// respondSubmit renders a submitOne outcome as the standalone POST
// /v1/jobs answer.
func (c *Coordinator) respondSubmit(w http.ResponseWriter, out submitOutcome) {
	if !out.ok {
		if out.relay != nil {
			relay(w, out.relay)
			return
		}
		if out.status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, out.status, out.code, "%s", out.message)
		return
	}
	resp := SubmitResponse{Job: out.view, Warning: out.warning}
	if out.warning != "" {
		w.Header().Set("X-Deltaserve-Degraded", "replication")
	}
	w.Header().Set("Location", "/v1/jobs/"+out.id)
	writeJSON(w, http.StatusAccepted, resp)
}

// handleBatch is POST /v1/jobs:batch: the service's batch surface at
// cluster scope. Each item routes independently through submitOne, so
// one batch fans out across the ring — every minted ID hashes to its
// own owner — and a refused item (bad spec, full routing table, no
// backend) never poisons its neighbors. Batches are JSON-only; binary
// submissions carry one matrix each.
func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	if isBinaryContentType(r.Header.Get("Content-Type")) {
		writeError(w, http.StatusUnsupportedMediaType, service.CodeInvalidRequest,
			"batch submissions are JSON-only; binary submissions carry one matrix each")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, c.opts.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req service.BatchSubmitRequest
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, service.CodeInvalidRequest,
				"request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, service.CodeInvalidRequest, "decoding batch: %v", err)
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, service.CodeInvalidRequest, "batch: jobs is empty")
		return
	}
	if len(req.Jobs) > service.MaxBatchJobs {
		writeError(w, http.StatusBadRequest, service.CodeInvalidRequest,
			"batch carries %d jobs; the server caps batches at %d", len(req.Jobs), service.MaxBatchJobs)
		return
	}

	resp := service.BatchSubmitResponse{Jobs: make([]service.BatchItemView, len(req.Jobs))}
	sawQueueFull, sawUnavailable, degraded := false, false, false
	for i := range req.Jobs {
		item := &resp.Jobs[i]
		item.Index = i
		out := c.submitOne(r.Context(), req.Jobs[i], nil)
		if out.ok {
			item.Status = http.StatusAccepted
			view := out.view
			item.Job = &view
			resp.Accepted++
			if out.warning != "" {
				degraded = true
			}
			continue
		}
		item.Status = out.status
		item.Error = batchItemError(out)
		resp.Rejected++
		switch {
		case out.status == http.StatusTooManyRequests:
			sawQueueFull = true
		case out.status >= http.StatusInternalServerError:
			sawUnavailable = true
		}
	}

	status := http.StatusAccepted
	if resp.Accepted == 0 {
		switch {
		case sawQueueFull:
			status = http.StatusTooManyRequests
			w.Header().Set("Retry-After", "1")
		case sawUnavailable:
			status = http.StatusServiceUnavailable
		default:
			status = http.StatusBadRequest
		}
	} else if degraded {
		w.Header().Set("X-Deltaserve-Degraded", "replication")
	}
	writeJSON(w, status, resp)
}

// batchItemError renders a refusal as a per-item error detail: the
// backend's own error body when the refusal was a relayed 4xx, the
// synthesized coordinator error otherwise.
func batchItemError(out submitOutcome) *service.ErrorDetail {
	if out.relay != nil {
		var eb service.ErrorBody
		if json.Unmarshal(out.relay.body, &eb) == nil && eb.Error.Message != "" {
			return &eb.Error
		}
		return &service.ErrorDetail{Code: service.CodeInvalidRequest, Message: string(out.relay.body)}
	}
	return &service.ErrorDetail{Code: out.code, Message: out.message}
}

func replicasWithout(peers []string, name string) []string {
	out := make([]string, 0, len(peers))
	for _, p := range peers {
		if p != name {
			out = append(out, p)
		}
	}
	return out
}

// putMetaReplica best-effort PUTs the job's metadata blob to one peer.
func (c *Coordinator) putMetaReplica(ctx context.Context, peer, id string, req *service.SubmitRequest) bool {
	meta, err := json.Marshal(map[string]any{"id": id, "submit": req})
	if err != nil {
		return false
	}
	resp, err := c.client.do(ctx, http.MethodPut, peer+"/v1/internal/replicas/"+id+"/meta", meta, "application/json")
	if err != nil || resp.status != http.StatusOK {
		c.metrics.replicaPutFailed()
		return false
	}
	c.metrics.replicaPut()
	return true
}

// jobRef snapshots the fields a proxy call needs outside the lock.
type jobRef struct {
	id              string
	owner           string
	epoch           int
	terminal        bool
	clientCancelled bool
	parentID        string
	lastView        service.JobView
}

func (c *Coordinator) ref(id string) (jobRef, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return jobRef{}, false
	}
	return jobRef{id: j.id, owner: j.owner, epoch: j.epoch, terminal: j.terminal,
		clientCancelled: j.clientCancelled, parentID: j.parentID, lastView: j.lastView}, true
}

// handleGet proxies job status from the current owner, rewriting the
// backend-side ID to the public one. When the owner is unreachable
// (the failover window), the last observed view is served instead of
// an error — the job is not gone, it is moving.
func (c *Coordinator) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ref, ok := c.ref(id)
	if !ok {
		writeError(w, http.StatusNotFound, service.CodeNotFound, "no job %q (unknown or expired)", id)
		return
	}
	resp, err := c.client.do(r.Context(), http.MethodGet,
		ref.owner+"/v1/jobs/"+dispatchID(ref.id, ref.epoch), nil, "")
	if err != nil || resp.status != http.StatusOK {
		if err != nil {
			c.noteCallFailure(ref.owner)
		}
		writeJSON(w, http.StatusOK, ref.lastView)
		return
	}
	var v service.JobView
	if err := json.Unmarshal(resp.body, &v); err != nil {
		writeJSON(w, http.StatusOK, ref.lastView)
		return
	}
	v.ID = id
	if ref.parentID != "" {
		// The backend reports its own dispatch-side parent ID — or none
		// at all for a child rebuilt from scratch on failover; either
		// way the public lineage is the coordinator's to tell.
		v.ParentID = ref.parentID
	}
	if v.State == service.StateCancelled && !ref.clientCancelled {
		// The backend's run was interrupted (drain, interference) but
		// the client never asked for a cancel: the job is migrating,
		// not over. Serve the pre-interruption view until the
		// re-dispatch lands rather than flapping through "cancelled".
		writeJSON(w, http.StatusOK, ref.lastView)
		return
	}
	c.commitView(id, v)
	writeJSON(w, http.StatusOK, v)
}

// handleResult proxies the final result from the current owner. The
// result body carries no job ID, so it is relayed verbatim — and the
// client's Accept header is forwarded, so a binary (DRES) download
// negotiated with the backend passes through untouched.
func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ref, ok := c.ref(id)
	if !ok {
		writeError(w, http.StatusNotFound, service.CodeNotFound, "no job %q (unknown or expired)", id)
		return
	}
	resp, err := c.client.doAccept(r.Context(), http.MethodGet,
		ref.owner+"/v1/jobs/"+dispatchID(ref.id, ref.epoch)+"/result", nil, "", r.Header.Get("Accept"))
	if err != nil {
		c.noteCallFailure(ref.owner)
		writeError(w, http.StatusBadGateway, codeBackendDown,
			"backend holding job %s is unreachable; if the job was running it is being migrated — retry", id)
		return
	}
	relay(w, resp)
}

// handleCancel proxies a cancel to the current owner and records that
// the *client* asked — which is what distinguishes a user cancel
// (terminal) from a drain/crash interruption (migrate and resume).
func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ref, ok := c.ref(id)
	if !ok {
		writeError(w, http.StatusNotFound, service.CodeNotFound, "no job %q (unknown or expired)", id)
		return
	}
	c.mu.Lock()
	if j := c.jobs[id]; j != nil {
		j.clientCancelled = true
	}
	c.mu.Unlock()
	resp, err := c.client.do(r.Context(), http.MethodDelete,
		ref.owner+"/v1/jobs/"+dispatchID(ref.id, ref.epoch), nil, "")
	if err != nil {
		c.noteCallFailure(ref.owner)
		writeError(w, http.StatusBadGateway, codeBackendDown,
			"backend holding job %s is unreachable; cancel recorded and applied on migration", id)
		return
	}
	if resp.status == http.StatusOK || resp.status == http.StatusAccepted {
		var v service.JobView
		if json.Unmarshal(resp.body, &v) == nil {
			v.ID = id
			c.commitView(id, v)
			writeJSON(w, resp.status, v)
			return
		}
	}
	relay(w, resp)
}

// commitView stores the latest owner-reported view (public ID already
// rewritten) and derives terminality. A cancelled state only counts as
// terminal when the client asked for it through the coordinator;
// otherwise it is an interrupted run the sync loop will migrate.
func (c *Coordinator) commitView(id string, v service.JobView) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return
	}
	switch v.State {
	case service.StateDone, service.StateFailed:
		j.lastView = v
		j.setTerminalLocked()
	case service.StateCancelled:
		if j.clientCancelled {
			j.lastView = v
			j.setTerminalLocked()
		}
		// An interference cancel keeps the pre-interruption view: the
		// job is a migration candidate, and its public story continues
		// where it left off once re-dispatched.
	default:
		j.lastView = v
	}
}

// setTerminalLocked marks the job finished for TTL accounting.
func (j *job) setTerminalLocked() {
	if !j.terminal {
		j.terminal = true
		j.finishedAt = time.Now()
	}
}

// evictExpired drops terminal routing entries older than the TTL.
func (c *Coordinator) evictExpired() {
	cutoff := time.Now().Add(-c.opts.TTL)
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, j := range c.jobs {
		if j.terminal && j.finishedAt.Before(cutoff) {
			delete(c.jobs, id)
		}
	}
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "backends": c.backendStates()})
}

// handleReadyz reports ready while at least one backend is up.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	states := c.backendStates()
	for _, st := range states {
		if st == "up" {
			writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "backends": states})
			return
		}
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "no ready backends", "backends": states})
}

func (c *Coordinator) handleBackends(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"backends": c.backendStates()})
}

// backendStates renders name→state, sorted for stable output.
func (c *Coordinator) backendStates() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.backends))
	for name := range c.backends {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]string, len(names))
	for _, name := range names {
		out[name] = c.backends[name].state.String()
	}
	return out
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	total := len(c.jobs)
	active := 0
	for _, j := range c.jobs {
		if !j.terminal {
			active++
		}
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, c.metrics.snapshot(total, active, c.backendStates()))
}

// Coordinator-specific error codes, extending the service's model.
const (
	codeNoBackends  = "no_ready_backends"
	codeBackendDown = "backend_unavailable"
)

// relay copies a backend response through verbatim (status, content
// type, body) — used when the backend's answer is already the right
// answer for the client.
func relay(w http.ResponseWriter, resp *response) {
	if ct := resp.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.status)
	_, _ = w.Write(resp.body)
}

// writeJSON and writeError mirror the service's response helpers.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, service.ErrorBody{Error: service.ErrorDetail{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}
