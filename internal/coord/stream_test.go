package coord

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"deltacluster/internal/service"
)

func f64(v float64) *float64 { return &v }

// smallPatch is one deltastream batch against a cols-wide matrix: an
// appended row, one revised entry, one retraction — every mutation
// kind in a single atomic batch.
func smallPatch(cols int) service.MatrixPatchRequest {
	row := make([]*float64, cols)
	for j := range row {
		row[j] = f64(0.25 * float64(j))
	}
	return service.MatrixPatchRequest{
		AppendRows: [][]*float64{row},
		Updates:    []service.CellPatch{{Row: 2, Col: 3, Value: f64(1.5)}},
		Retract:    []service.CellRef{{Row: 8, Col: 1}},
	}
}

func decodeErrCode(t *testing.T, body []byte) string {
	t.Helper()
	var eb service.ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("undecodable error body %s: %v", body, err)
	}
	return eb.Error.Code
}

func coordMetrics(t *testing.T, baseURL string) MetricsView {
	t.Helper()
	st, body := do(t, http.MethodGet, baseURL+"/metrics", nil)
	if st != http.StatusOK {
		t.Fatalf("metrics: status %d", st)
	}
	var mv MetricsView
	if err := json.Unmarshal(body, &mv); err != nil {
		t.Fatal(err)
	}
	return mv
}

// TestCoordinatorPatchAndReclusterViaOwner is the streaming happy path
// through the proxy: patch a done job's lineage matrix, recluster it,
// and get a warm-started child that lands on the parent's owner — the
// backend already holding the lineage matrix and final checkpoint.
func TestCoordinatorPatchAndReclusterViaOwner(t *testing.T) {
	cl := startCluster(t, 2, nil, service.Options{Workers: 1, QueueCap: 8, CheckpointEvery: 1})

	id, _, _ := submitVia(t, cl.ts.URL, fastSubmit(t))
	if v := pollDone(t, cl.ts.URL, id, 30*time.Second); v.State != service.StateDone {
		t.Fatalf("parent finished %s", v.State)
	}
	parentRes := fetchResult(t, cl.ts.URL, id)

	// Patch through the coordinator: the response speaks public IDs.
	st, body := do(t, http.MethodPatch, cl.ts.URL+"/v1/jobs/"+id+"/matrix", smallPatch(18))
	if st != http.StatusOK {
		t.Fatalf("patch: status %d, body %s", st, body)
	}
	var pr service.MatrixPatchResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.JobID != id || pr.Lineage != id || pr.MatrixVersion != 1 || pr.Rows != 121 || pr.Cols != 18 {
		t.Fatalf("patch response %+v, want job/lineage %s version 1 shape 121x18", pr, id)
	}

	// A ragged append dies with the backend's validation, relayed.
	if st, body := do(t, http.MethodPatch, cl.ts.URL+"/v1/jobs/"+id+"/matrix",
		service.MatrixPatchRequest{AppendRows: [][]*float64{{f64(1)}}}); st != http.StatusBadRequest {
		t.Fatalf("ragged patch: status %d, body %s", st, body)
	}

	// The client cannot pick the child's ID — the coordinator mints it.
	if st, body := do(t, http.MethodPost, cl.ts.URL+"/v1/jobs/"+id+":recluster",
		service.ReclusterRequest{ChildID: "jcafecafe00000000"}); st != http.StatusBadRequest {
		t.Fatalf("recluster with child_id: status %d, body %s", st, body)
	}
	// Unknown actions 404.
	if st, _ := do(t, http.MethodPost, cl.ts.URL+"/v1/jobs/"+id+":frobnicate", nil); st != http.StatusNotFound {
		t.Fatalf("unknown action accepted")
	}

	st, body = do(t, http.MethodPost, cl.ts.URL+"/v1/jobs/"+id+":recluster", nil)
	if st != http.StatusAccepted {
		t.Fatalf("recluster: status %d, body %s", st, body)
	}
	var rr service.ReclusterResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.ParentID != id || rr.Job.ID == "" || rr.Job.ID == id || rr.Job.ParentID != id {
		t.Fatalf("recluster response %+v, want fresh child of %s", rr, id)
	}
	if rr.WarmFromIteration != parentRes.Iterations {
		t.Fatalf("warm_from_iteration %d, want parent's %d", rr.WarmFromIteration, parentRes.Iterations)
	}

	child := rr.Job.ID
	v := pollDone(t, cl.ts.URL, child, 30*time.Second)
	if v.State != service.StateDone {
		t.Fatalf("child finished %s (error %q)", v.State, v.Error)
	}
	if v.ParentID != id {
		t.Fatalf("child view parent_id %q, want %s", v.ParentID, id)
	}
	childRes := fetchResult(t, cl.ts.URL, child)
	if !childRes.WarmStart {
		t.Fatalf("child result not marked warm_start: %+v", childRes)
	}
	if childRes.Iterations > parentRes.Iterations {
		t.Fatalf("warm child took %d iterations, more than the cold parent's %d",
			childRes.Iterations, parentRes.Iterations)
	}

	mv := coordMetrics(t, cl.ts.URL)
	if mv.Streaming.MatrixPatches != 1 || mv.Streaming.Reclusters != 1 || mv.Streaming.ReclusterFallbacks != 0 {
		t.Fatalf("streaming metrics %+v, want 1 patch, 1 recluster, 0 fallbacks", mv.Streaming)
	}
}

// TestCoordinatorStreamConflictsRelay: the backend's 409 contracts —
// lineage_busy while a run holds the matrix, job_not_done for a
// recluster of an unfinished job — pass through the proxy verbatim.
func TestCoordinatorStreamConflictsRelay(t *testing.T) {
	cl := startCluster(t, 1, nil, service.Options{Workers: 1, QueueCap: 8, CheckpointEvery: 1})
	id, _, _ := submitVia(t, cl.ts.URL, slowSubmit(t))

	st, body := do(t, http.MethodPatch, cl.ts.URL+"/v1/jobs/"+id+"/matrix", smallPatch(100))
	if st != http.StatusConflict || decodeErrCode(t, body) != service.CodeLineageBusy {
		t.Fatalf("patch under a live run: status %d code %s, want 409 lineage_busy", st, decodeErrCode(t, body))
	}
	st, body = do(t, http.MethodPost, cl.ts.URL+"/v1/jobs/"+id+":recluster", nil)
	if st != http.StatusConflict || decodeErrCode(t, body) != service.CodeJobNotDone {
		t.Fatalf("recluster of a running job: status %d code %s, want 409 job_not_done", st, decodeErrCode(t, body))
	}
	// Streaming writes against unknown jobs 404 at the coordinator.
	if st, _ := do(t, http.MethodPatch, cl.ts.URL+"/v1/jobs/jdeadbeef00000000/matrix", smallPatch(4)); st != http.StatusNotFound {
		t.Fatalf("patch of unknown job: status %d, want 404", st)
	}
	if st, _ := do(t, http.MethodPost, cl.ts.URL+"/v1/jobs/jdeadbeef00000000:recluster", nil); st != http.StatusNotFound {
		t.Fatalf("recluster of unknown job: status %d, want 404", st)
	}

	if st, _ := do(t, http.MethodDelete, cl.ts.URL+"/v1/jobs/"+id, nil); st != http.StatusOK && st != http.StatusAccepted {
		t.Fatalf("cancel: status %d", st)
	}
	pollDone(t, cl.ts.URL, id, 30*time.Second)
}

// TestCoordinatorReclusterFallsBackToReplica kills the backend holding
// a done job — lineage matrix, mutation log, final checkpoint, all
// gone — and reclusters anyway: the coordinator rebuilds the child on
// the surviving backend from the original submission, the recorded
// patch, and the replicated parent checkpoint.
func TestCoordinatorReclusterFallsBackToReplica(t *testing.T) {
	cl := startCluster(t, 2, nil, service.Options{Workers: 1, QueueCap: 8, CheckpointEvery: 1})

	id, _, _ := submitVia(t, cl.ts.URL, fastSubmit(t))
	if v := pollDone(t, cl.ts.URL, id, 30*time.Second); v.State != service.StateDone {
		t.Fatalf("parent finished %s", v.State)
	}
	owner := ownerOf(t, cl, id)
	var peer *node
	for _, nd := range cl.nodes {
		if nd != owner {
			peer = nd
		}
	}

	// The sync loop's done-tick pull must land the parent's final
	// boundary on the replica before the owner can be lost.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st, _ := do(t, http.MethodGet, peer.ts.URL+"/v1/internal/replicas/"+id+"/checkpoint", nil); st == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("parent checkpoint never reached the replica peer")
		}
		time.Sleep(20 * time.Millisecond)
	}

	st, body := do(t, http.MethodPatch, cl.ts.URL+"/v1/jobs/"+id+"/matrix", smallPatch(18))
	if st != http.StatusOK {
		t.Fatalf("patch: status %d, body %s", st, body)
	}

	owner.ts.Close()
	deadline = time.Now().Add(10 * time.Second)
	for {
		mv := coordMetrics(t, cl.ts.URL)
		if mv.Backends.States[owner.ts.URL] == "down" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator never marked the killed owner down")
		}
		time.Sleep(20 * time.Millisecond)
	}

	st, body = do(t, http.MethodPost, cl.ts.URL+"/v1/jobs/"+id+":recluster", nil)
	if st != http.StatusAccepted {
		t.Fatalf("fallback recluster: status %d, body %s", st, body)
	}
	var rr service.ReclusterResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.ParentID != id || rr.Job.ID == "" || rr.Job.ID == id {
		t.Fatalf("fallback recluster response %+v", rr)
	}
	if rr.WarmFromIteration <= 0 {
		t.Fatalf("fallback child warm_from_iteration %d, want a replicated boundary > 0", rr.WarmFromIteration)
	}

	child := rr.Job.ID
	v := pollDone(t, cl.ts.URL, child, 30*time.Second)
	if v.State != service.StateDone {
		t.Fatalf("fallback child finished %s (error %q)", v.State, v.Error)
	}
	if v.ParentID != id {
		t.Fatalf("fallback child parent_id %q, want %s", v.ParentID, id)
	}
	if v.MatrixVersion != 1 {
		t.Fatalf("fallback child matrix_version %d, want 1 (the recorded patch replayed)", v.MatrixVersion)
	}
	if res := fetchResult(t, cl.ts.URL, child); !res.WarmStart || len(res.Clusters) == 0 {
		t.Fatalf("fallback child result %+v, want a warm-start clustering", res)
	}

	mv := coordMetrics(t, cl.ts.URL)
	if mv.Streaming.ReclusterFallbacks != 1 {
		t.Fatalf("recluster_fallbacks %d, want 1", mv.Streaming.ReclusterFallbacks)
	}
}
