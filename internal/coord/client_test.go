package coord

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func testClient() *client {
	return newClient(2*time.Second, 3, time.Millisecond, 4*time.Millisecond)
}

func TestClientRetries5xxThenSucceeds(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) < 3 {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		_, _ = w.Write([]byte("ok"))
	}))
	defer ts.Close()

	resp, err := testClient().do(context.Background(), http.MethodGet, ts.URL, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.status != http.StatusOK || string(resp.body) != "ok" {
		t.Fatalf("status %d body %q", resp.status, resp.body)
	}
	if n := atomic.LoadInt32(&calls); n != 3 {
		t.Fatalf("server saw %d calls, want 3", n)
	}
}

// TestClientRetriesAreBounded: a persistently failing backend costs
// exactly maxAttempts calls, then an error — never a spin.
func TestClientRetriesAreBounded(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()

	if _, err := testClient().do(context.Background(), http.MethodGet, ts.URL, nil, ""); err == nil {
		t.Fatal("expected an error from an always-500 backend")
	}
	if n := atomic.LoadInt32(&calls); n != 3 {
		t.Fatalf("server saw %d calls, want exactly maxAttempts=3", n)
	}
}

// TestClientDoesNotRetry4xx: the backend understood and refused;
// retrying cannot change its mind and only delays the caller.
func TestClientDoesNotRetry4xx(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer ts.Close()

	resp, err := testClient().do(context.Background(), http.MethodGet, ts.URL, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.status)
	}
	if n := atomic.LoadInt32(&calls); n != 1 {
		t.Fatalf("server saw %d calls, want 1", n)
	}
}

func TestClientHonorsContextMidBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := newClient(2*time.Second, 10, time.Hour, time.Hour) // huge backoff
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.do(ctx, http.MethodGet, ts.URL, nil, "")
	if err == nil {
		t.Fatal("expected context error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled do took %v; backoff is not context-aware", elapsed)
	}
}

func TestBackoffShape(t *testing.T) {
	c := newClient(time.Second, 5, 100*time.Millisecond, 300*time.Millisecond)
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond, 300 * time.Millisecond}
	for i, w := range want {
		if got := c.backoff(i + 1); got != w {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}
