package coord

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"

	"deltacluster/internal/floc"
	"deltacluster/internal/service"
)

// migrate re-homes one job whose owner is gone (down), draining, or
// has forgotten it. The sequence:
//
//  1. If the client already cancelled the job, settle it as cancelled
//     — migration would resurrect work nobody wants.
//  2. Pick the new owner: the first ready backend on the job's ring
//     preference walk that is not the old owner.
//  3. Recover the freshest checkpoint (FLOC, single-attempt jobs
//     only): ask every replica peer, and the old owner too when it is
//     merely draining — a draining node still serves reads. Freshest
//     wins by boundary iteration; the bytes are decode-verified before
//     use.
//  4. Dispatch to the new owner under the next epoch's ID with the
//     checkpoint attached. The backend resumes past the boundary with
//     zero recomputation, bit-identical to the uninterrupted run.
//  5. Commit: new owner, new epoch, fresh replica set, re-replicated
//     metadata.
//
// Every step is bounded (the client's retry policy); any failure
// leaves the routing entry untouched so the next sync tick retries
// the whole migration. Multi-attempt and non-FLOC jobs migrate by
// restarting from scratch — their engines have no resume contract.
func (c *Coordinator) migrate(ctx context.Context, id string) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	if !ok || j.terminal {
		c.mu.Unlock()
		return
	}
	if j.clientCancelled {
		j.lastView.State = service.StateCancelled
		j.setTerminalLocked()
		c.mu.Unlock()
		return
	}
	oldOwner := j.owner
	epoch := j.epoch
	submit := j.submit
	algorithm := j.algorithm
	attempts := j.attempts
	replicas := append([]string(nil), j.replicas...)
	patches := append([]service.MatrixPatchRequest(nil), j.patches...)
	warm := j.warm
	parentID := j.parentID
	binMatrix := j.binMatrix
	oldOwnerDown := c.backends[oldOwner] != nil && c.backends[oldOwner].state == stateDown
	c.mu.Unlock()

	newOwner, peers, _ := c.placementExcluding(id, oldOwner)
	if newOwner == "" {
		c.metrics.migrationDeferred()
		c.logf("coord: job %s orphaned on %s and no ready backend to migrate to; will retry", id, oldOwner)
		return
	}

	var resume []byte
	resumeIters := 0
	if algorithm == service.AlgoFLOC && attempts <= 1 {
		sources := replicaCheckpointURLs(id, replicas)
		if !oldOwnerDown {
			sources = append(sources,
				oldOwner+"/v1/internal/jobs/"+dispatchID(id, epoch)+"/checkpoint")
		}
		resume, resumeIters = c.bestCheckpoint(ctx, sources)
	}

	// A warm-start child with no own boundary yet re-seeds from its
	// parent's replicated checkpoint instead of restarting cold; the
	// recorded patches rebuild the lineage matrix either way. A resumed
	// child needs no warm seed — its own checkpoint, cut on the patched
	// matrix, is strictly further along.
	var warmCk []byte
	if resume == nil && warm && parentID != "" {
		warmCk, _ = c.bestCheckpoint(ctx, c.parentCheckpointSources(parentID))
		if warmCk == nil {
			c.logf("coord: job %s migrates cold: parent %s checkpoint unavailable", id, parentID)
		}
	}

	// A binary job re-dispatches the client's original DCMX bytes in a
	// DSUB envelope; a JSON job re-dispatches as JSON. Either way the
	// checkpoint, patches and submission ride the same DispatchRequest.
	body, contentType, err := encodeDispatch(service.DispatchRequest{
		ID:                  dispatchID(id, epoch+1),
		ResumeCheckpoint:    resume,
		WarmStartCheckpoint: warmCk,
		Patches:             patches,
		Submit:              submit,
	}, binMatrix)
	if err != nil {
		c.metrics.migrationFailed()
		return
	}
	resp, err := c.client.do(ctx, http.MethodPost, newOwner+"/v1/internal/jobs", body, contentType)
	if err != nil {
		c.metrics.migrationFailed()
		c.noteCallFailure(newOwner)
		c.logf("coord: migrating job %s %s → %s failed: %v", id, oldOwner, newOwner, err)
		return
	}
	if resp.status != http.StatusAccepted && resp.status != http.StatusOK {
		c.metrics.migrationFailed()
		c.logf("coord: migrating job %s %s → %s refused: %d %s", id, oldOwner, newOwner, resp.status, resp.body)
		return
	}
	var dr service.DispatchResponse
	if err := json.Unmarshal(resp.body, &dr); err != nil {
		c.metrics.migrationFailed()
		return
	}

	view := dr.Job
	view.ID = id
	c.mu.Lock()
	if j, ok := c.jobs[id]; ok {
		j.owner = newOwner
		j.epoch = epoch + 1
		j.replicas = replicasWithout(peers, newOwner)
		j.ckEtag = "" // next pull fetches the new owner's first boundary
		j.cancelSeen = 0
		j.lastView = view
	}
	c.mu.Unlock()
	c.metrics.migrated()
	c.logf("coord: job %s migrated %s → %s (epoch %d, resumed from iteration %d of %d replicated)",
		id, oldOwner, newOwner, epoch+1, dr.ResumedFromIteration, resumeIters)

	// Re-replicate metadata under the new placement; the next sync tick
	// replicates the new owner's checkpoints the same way as always.
	for _, peer := range replicasWithout(peers, newOwner) {
		c.putMetaReplica(ctx, peer, id, &submit)
	}
}

// placementExcluding is placement with one backend barred (the owner
// being migrated away from — even if it still probes ready, routing
// back defeats the point).
func (c *Coordinator) placementExcluding(id, barred string) (owner string, peers []string, shortfall int) {
	prefs := c.ring.prefs(id)
	c.mu.Lock()
	defer c.mu.Unlock()
	ready := make([]string, 0, len(prefs))
	for _, name := range prefs {
		if name == barred {
			continue
		}
		if b := c.backends[name]; b != nil && b.state == stateUp {
			ready = append(ready, name)
		}
	}
	if len(ready) == 0 {
		return "", nil, c.opts.Replication
	}
	owner = ready[0]
	peers = ready[1:]
	if len(peers) > c.opts.Replication {
		peers = peers[:c.opts.Replication]
	}
	return owner, peers, c.opts.Replication - len(peers)
}

// replicaCheckpointURLs lists the peer-replica checkpoint endpoints
// for a job.
func replicaCheckpointURLs(id string, replicas []string) []string {
	urls := make([]string, 0, len(replicas)+1)
	for _, peer := range replicas {
		urls = append(urls, peer+"/v1/internal/replicas/"+id+"/checkpoint")
	}
	return urls
}

// bestCheckpoint fetches every source and returns the
// highest-iteration checkpoint that actually decodes, or nil when no
// source has one — in which case the job restarts from scratch and
// determinism still holds (same seed, same trajectory, just
// recomputed).
func (c *Coordinator) bestCheckpoint(ctx context.Context, urls []string) ([]byte, int) {
	var best []byte
	bestIters := -1
	for _, url := range urls {
		resp, err := c.client.do(ctx, http.MethodGet, url, nil, "")
		if err != nil || resp.status != http.StatusOK {
			continue
		}
		iters, err := strconv.Atoi(resp.header.Get(checkpointIterationsHeader))
		if err != nil {
			ck, derr := floc.DecodeCheckpoint(resp.body)
			if derr != nil {
				continue
			}
			iters = ck.Iterations
		} else if _, derr := floc.DecodeCheckpoint(resp.body); derr != nil {
			// A replica that does not decode is useless regardless of
			// its advertised position.
			continue
		}
		if iters > bestIters {
			best, bestIters = resp.body, iters
		}
	}
	if best == nil {
		return nil, 0
	}
	return best, bestIters
}
