package coord

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"deltacluster/internal/service"
)

// TestChaosKillBackendMidRunBitIdentical is the headline failover
// drill, end to end with real processes: two deltaserve backends run
// as separate OS processes, the (race-instrumented, in-process)
// coordinator routes a slow FLOC job to one of them, and that backend
// is SIGKILLed mid-run — no drain, no checkpoint flush, no goodbye.
// The coordinator must detect the death, re-dispatch the job to the
// survivor resuming from the last replicated checkpoint, and the
// final clustering must be bit-identical to an uninterrupted
// single-node run of the same submission.
func TestChaosKillBackendMidRunBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns backend processes; skipped with -short")
	}
	bin := buildDeltaserve(t)

	// Distinct ID-RNG seeds per process: the coordinator (seed 1) mints
	// the public IDs, and the backends must never mint a colliding ID
	// for directly-submitted jobs like the reference run.
	addrA, addrB := freeAddr(t), freeAddr(t)
	procA := startBackendProc(t, bin, addrA, 101)
	procB := startBackendProc(t, bin, addrB, 102)
	urlA, urlB := "http://"+addrA, "http://"+addrB
	waitHealthy(t, urlA)
	waitHealthy(t, urlB)

	// Reference: the same submission, uninterrupted, on backend A
	// directly. Fetched before any chaos so the fingerprint survives.
	req := slowSubmit(t)
	st, body := do(t, http.MethodPost, urlA+"/v1/jobs", req)
	if st != http.StatusAccepted {
		t.Fatalf("reference submit: status %d, body %s", st, body)
	}
	var direct service.SubmitResponse
	if err := json.Unmarshal(body, &direct); err != nil {
		t.Fatal(err)
	}
	if v := pollDone(t, urlA, direct.Job.ID, 120*time.Second); v.State != service.StateDone {
		t.Fatalf("reference job finished %s", v.State)
	}
	want := fetchResult(t, urlA, direct.Job.ID)

	co, err := New(fastOpts([]string{urlA, urlB}))
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(co.Handler())
	t.Cleanup(func() {
		cts.Close()
		_ = co.Shutdown(testCtx(t, 10*time.Second))
	})

	id, _, _ := submitVia(t, cts.URL, req)

	// Locate the owner process and its peer.
	ownerURL, peerURL, ownerProc := urlA, urlB, procA
	if st, _ := do(t, http.MethodGet, urlA+"/v1/jobs/"+id, nil); st != http.StatusOK {
		ownerURL, peerURL, ownerProc = urlB, urlA, procB
		if st, _ := do(t, http.MethodGet, urlB+"/v1/jobs/"+id, nil); st != http.StatusOK {
			t.Fatalf("no backend owns job %s", id)
		}
	}

	// Wait until the peer holds a checkpoint replica — the coordinator
	// has pulled a boundary from the owner and pushed it across. Only
	// then is a kill guaranteed recoverable with zero recompute.
	replicaIters := waitForReplica(t, peerURL, id, 60*time.Second)

	// SIGKILL — the owner gets no chance to flush, answer, or drain.
	if err := ownerProc.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	t.Logf("killed owner %s with a replica at iteration %d on %s", ownerURL, replicaIters, peerURL)

	v := pollDone(t, cts.URL, id, 120*time.Second)
	if v.State != service.StateDone {
		t.Fatalf("migrated job finished %s (error %q), want done", v.State, v.Error)
	}
	got := fetchResult(t, cts.URL, id)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-kill result differs from uninterrupted run:\n got %+v\nwant %+v", got, want)
	}

	// The coordinator's own account: at least one committed migration,
	// the dead backend marked down.
	st, body = do(t, http.MethodGet, cts.URL+"/metrics", nil)
	if st != http.StatusOK {
		t.Fatalf("metrics: status %d", st)
	}
	var mv MetricsView
	if err := json.Unmarshal(body, &mv); err != nil {
		t.Fatal(err)
	}
	if mv.Jobs.Migrations < 1 {
		t.Fatalf("metrics report %d migrations, want ≥ 1: %s", mv.Jobs.Migrations, body)
	}
	if state := mv.Backends.States[ownerURL]; state != "down" {
		t.Fatalf("killed backend probes %q, want down", state)
	}
}

// buildDeltaserve compiles cmd/deltaserve into a temp dir once per
// test run.
func buildDeltaserve(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "deltaserve")
	cmd := exec.Command("go", "build", "-o", bin, "deltacluster/cmd/deltaserve")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building deltaserve: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves a loopback port and releases it for the backend
// process to claim. The tiny claim race is acceptable in tests.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	return addr
}

// startBackendProc launches one deltaserve backend process, logging to
// a file that is dumped on test failure.
func startBackendProc(t *testing.T, bin, addr string, seed int) *exec.Cmd {
	t.Helper()
	logPath := filepath.Join(t.TempDir(), "backend.log")
	logFile, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin,
		"-addr", addr,
		"-workers", "1",
		"-queue", "8",
		"-checkpoint-every", "1",
		"-drain-timeout", "10s",
		"-seed", fmt.Sprint(seed),
	)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		_ = logFile.Close()
		if t.Failed() {
			if data, err := os.ReadFile(logPath); err == nil && len(data) > 0 {
				t.Logf("backend %s log:\n%s", addr, data)
			}
		}
	})
	return cmd
}

func waitHealthy(t *testing.T, baseURL string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(baseURL + "/healthz")
		if err == nil {
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("backend %s never became healthy: %v", baseURL, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// waitForReplica polls the peer's replica table until it holds a
// checkpoint for the job, returning the boundary iteration.
func waitForReplica(t *testing.T, peerURL, id string, timeout time.Duration) int {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(peerURL + "/v1/internal/replicas/" + id + "/checkpoint")
		if err == nil {
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				iters := 0
				_, _ = fmt.Sscanf(resp.Header.Get("X-Deltaserve-Checkpoint-Iterations"), "%d", &iters)
				return iters
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint replica for %s ever reached %s", id, peerURL)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
