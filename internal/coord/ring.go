package coord

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over backend names. Each backend
// contributes virtualNodes points (FNV-64a of "name#i") so load
// spreads evenly even with two or three backends; a job ID hashes to a
// point and walks clockwise. The ring is immutable after newRing —
// backend *membership* is static per coordinator process, and
// liveness is filtered at lookup time by the caller, so a backend
// going down never reshuffles jobs between the survivors.
type ring struct {
	points []ringPoint
	names  []string
}

type ringPoint struct {
	hash uint64
	name string
}

// virtualNodes is the number of ring points per backend. 64 keeps the
// max/min load ratio under ~1.3 for small clusters while the full
// ring stays tiny (N×64 entries, binary-searched).
const virtualNodes = 64

func newRing(names []string) *ring {
	r := &ring{names: append([]string(nil), names...)}
	sort.Strings(r.names)
	r.points = make([]ringPoint, 0, len(r.names)*virtualNodes)
	for _, name := range r.names {
		for i := 0; i < virtualNodes; i++ {
			r.points = append(r.points, ringPoint{
				hash: hashKey(fmt.Sprintf("%s#%d", name, i)),
				name: name,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].name < r.points[j].name
	})
	return r
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

// prefs returns every backend exactly once, in the ring order a
// clockwise walk from key's point visits them. prefs[0] is the key's
// owner; prefs[1:] are the replica candidates and the failover order.
func (r *ring) prefs(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= hashKey(key)
	})
	out := make([]string, 0, len(r.names))
	seen := make(map[string]bool, len(r.names))
	for i := 0; i < len(r.points) && len(out) < len(r.names); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.name] {
			seen[p.name] = true
			out = append(out, p.name)
		}
	}
	return out
}
