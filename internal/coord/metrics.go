package coord

import "sync/atomic"

// metrics is the coordinator's counter panel, lock-free like the
// service's.
type metrics struct {
	routed             uint64 // jobs accepted and dispatched
	degraded           uint64 // accepted below the replication target
	probes             uint64
	backendsDown       uint64 // up/draining → down transitions
	migrations         uint64 // committed migrations
	migrationFailures  uint64 // attempts that will be retried
	migrationsDeferred uint64 // no ready backend to migrate to
	checkpointPulls    uint64 // non-304 checkpoint downloads
	replicaPuts        uint64 // successful replica PUTs (meta + ckpt)
	replicaPutFails    uint64
	matrixPatches      uint64 // deltastream patches landed through the proxy
	reclusters         uint64 // warm-start children routed
	reclusterFallbacks uint64 // children rebuilt from a replica checkpoint
}

func (m *metrics) jobRouted()         { atomic.AddUint64(&m.routed, 1) }
func (m *metrics) jobDegraded()       { atomic.AddUint64(&m.degraded, 1) }
func (m *metrics) probe()             { atomic.AddUint64(&m.probes, 1) }
func (m *metrics) backendDown()       { atomic.AddUint64(&m.backendsDown, 1) }
func (m *metrics) migrated()          { atomic.AddUint64(&m.migrations, 1) }
func (m *metrics) migrationFailed()   { atomic.AddUint64(&m.migrationFailures, 1) }
func (m *metrics) migrationDeferred() { atomic.AddUint64(&m.migrationsDeferred, 1) }
func (m *metrics) checkpointPulled()  { atomic.AddUint64(&m.checkpointPulls, 1) }
func (m *metrics) replicaPut()        { atomic.AddUint64(&m.replicaPuts, 1) }
func (m *metrics) replicaPutFailed()  { atomic.AddUint64(&m.replicaPutFails, 1) }
func (m *metrics) matrixPatched()     { atomic.AddUint64(&m.matrixPatches, 1) }
func (m *metrics) reclusterRouted()   { atomic.AddUint64(&m.reclusters, 1) }
func (m *metrics) reclusterFellBack() { atomic.AddUint64(&m.reclusterFallbacks, 1) }

// MetricsView is the JSON body of the coordinator's GET /metrics.
type MetricsView struct {
	Jobs        JobsMetrics        `json:"jobs"`
	Streaming   StreamingMetrics   `json:"streaming"`
	Replication ReplicationMetrics `json:"replication"`
	Backends    BackendsMetrics    `json:"backends"`
}

type JobsMetrics struct {
	Routed             uint64 `json:"routed"`
	Degraded           uint64 `json:"degraded"`
	Tracked            int    `json:"tracked"`
	Active             int    `json:"active"`
	Migrations         uint64 `json:"migrations"`
	MigrationFailures  uint64 `json:"migration_failures"`
	MigrationsDeferred uint64 `json:"migrations_deferred"`
}

type StreamingMetrics struct {
	MatrixPatches      uint64 `json:"matrix_patches"`
	Reclusters         uint64 `json:"reclusters"`
	ReclusterFallbacks uint64 `json:"recluster_fallbacks"`
}

type ReplicationMetrics struct {
	CheckpointPulls uint64 `json:"checkpoint_pulls"`
	ReplicaPuts     uint64 `json:"replica_puts"`
	ReplicaPutFails uint64 `json:"replica_put_failures"`
}

type BackendsMetrics struct {
	Probes          uint64            `json:"probes"`
	DownTransitions uint64            `json:"down_transitions"`
	States          map[string]string `json:"states"`
}

func (m *metrics) snapshot(tracked, active int, states map[string]string) MetricsView {
	return MetricsView{
		Jobs: JobsMetrics{
			Routed:             atomic.LoadUint64(&m.routed),
			Degraded:           atomic.LoadUint64(&m.degraded),
			Tracked:            tracked,
			Active:             active,
			Migrations:         atomic.LoadUint64(&m.migrations),
			MigrationFailures:  atomic.LoadUint64(&m.migrationFailures),
			MigrationsDeferred: atomic.LoadUint64(&m.migrationsDeferred),
		},
		Streaming: StreamingMetrics{
			MatrixPatches:      atomic.LoadUint64(&m.matrixPatches),
			Reclusters:         atomic.LoadUint64(&m.reclusters),
			ReclusterFallbacks: atomic.LoadUint64(&m.reclusterFallbacks),
		},
		Replication: ReplicationMetrics{
			CheckpointPulls: atomic.LoadUint64(&m.checkpointPulls),
			ReplicaPuts:     atomic.LoadUint64(&m.replicaPuts),
			ReplicaPutFails: atomic.LoadUint64(&m.replicaPutFails),
		},
		Backends: BackendsMetrics{
			Probes:          atomic.LoadUint64(&m.probes),
			DownTransitions: atomic.LoadUint64(&m.backendsDown),
			States:          states,
		},
	}
}
