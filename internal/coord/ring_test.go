package coord

import (
	"fmt"
	"testing"
)

func TestRingPrefsCoverAllBackendsOnce(t *testing.T) {
	names := []string{"http://a", "http://b", "http://c"}
	r := newRing(names)
	for i := 0; i < 100; i++ {
		prefs := r.prefs(fmt.Sprintf("j%016x", i))
		if len(prefs) != len(names) {
			t.Fatalf("prefs has %d entries, want %d: %v", len(prefs), len(names), prefs)
		}
		seen := map[string]bool{}
		for _, p := range prefs {
			if seen[p] {
				t.Fatalf("backend %s appears twice in %v", p, prefs)
			}
			seen[p] = true
		}
	}
}

func TestRingPrefsDeterministic(t *testing.T) {
	a := newRing([]string{"http://x", "http://y", "http://z"})
	// Construction order must not matter.
	b := newRing([]string{"http://z", "http://x", "http://y"})
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("job-%d", i)
		pa, pb := a.prefs(key), b.prefs(key)
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("key %q: prefs differ by construction order: %v vs %v", key, pa, pb)
			}
		}
	}
}

// TestRingFailoverPreservesSurvivorOrder is the consistent-hashing
// property failover relies on: excluding one backend (as placement
// does for a dead node) never reorders the remaining preference walk,
// so only the dead node's jobs move.
func TestRingFailoverPreservesSurvivorOrder(t *testing.T) {
	r := newRing([]string{"http://a", "http://b", "http://c", "http://d"})
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("j%d", i)
		full := r.prefs(key)
		dead := full[0]
		var survivors []string
		for _, p := range full {
			if p != dead {
				survivors = append(survivors, p)
			}
		}
		// The survivors, in full-walk order, are exactly what a filtered
		// placement produces — full[1] inherits the job, everyone else's
		// position is unchanged.
		if survivors[0] != full[1] {
			t.Fatalf("key %q: successor %s is not full[1]=%s", key, survivors[0], full[1])
		}
	}
}

func TestRingSpreadsLoad(t *testing.T) {
	names := []string{"http://a", "http://b", "http://c"}
	r := newRing(names)
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.prefs(fmt.Sprintf("j%016x", i*2654435761))[0]]++
	}
	for _, name := range names {
		if counts[name] < n/10 {
			t.Fatalf("backend %s owns only %d/%d keys; ring is badly skewed: %v", name, counts[name], n, counts)
		}
	}
}
