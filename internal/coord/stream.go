// This file is the coordinator's streaming surface: deltastream
// matrix patches proxied to the lineage's owner (and recorded, so the
// patched matrix can be rebuilt anywhere), and warm-start reclusters
// routed to the backend that already holds the parent's final
// checkpoint — with a rebuild-from-replica fallback when that backend
// is gone.

package coord

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"

	"deltacluster/internal/service"
)

// handlePatchMatrix is PATCH /v1/jobs/{id}/matrix: decode the patch
// (so a malformed one dies here, with the same strictness the backend
// applies), proxy it to the addressed job's owner, and on success
// record it against every member of the job's lineage. The recorded
// history is what lets a recluster or migration rebuild the patched
// matrix bit for bit on a backend that never saw the original.
//
// The lineage matrix lives in the owner's memory, so a down owner
// means patches cannot land — the coordinator answers 502 rather than
// buffering a write it cannot prove applied.
func (c *Coordinator) handlePatchMatrix(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	r.Body = http.MaxBytesReader(w, r.Body, c.opts.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var patch service.MatrixPatchRequest
	if err := dec.Decode(&patch); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, service.CodeInvalidRequest,
				"request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, service.CodeInvalidRequest, "decoding patch: %v", err)
		return
	}
	ref, ok := c.ref(id)
	if !ok {
		writeError(w, http.StatusNotFound, service.CodeNotFound, "no job %q (unknown or expired)", id)
		return
	}
	body, err := json.Marshal(&patch)
	if err != nil {
		writeError(w, http.StatusInternalServerError, service.CodeInternal, "encoding patch: %v", err)
		return
	}
	resp, err := c.client.do(r.Context(), http.MethodPatch,
		ref.owner+"/v1/jobs/"+dispatchID(ref.id, ref.epoch)+"/matrix", body, "application/json")
	if err != nil {
		c.noteCallFailure(ref.owner)
		writeError(w, http.StatusBadGateway, codeBackendDown,
			"backend holding job %s's lineage matrix is unreachable; retry once failover settles", id)
		return
	}
	if resp.status != http.StatusOK {
		relay(w, resp) // 409 lineage_busy and validation 400s are final answers
		return
	}
	var out service.MatrixPatchResponse
	if err := json.Unmarshal(resp.body, &out); err != nil {
		writeError(w, http.StatusBadGateway, service.CodeInternal,
			"backend %s returned an unreadable patch response: %v", ref.owner, err)
		return
	}
	root := c.recordPatch(id, patch, out.MatrixVersion)
	c.metrics.matrixPatched()
	c.logf("coord: job %s: matrix patched to version %d via %s", id, out.MatrixVersion, ref.owner)
	out.JobID = id
	out.Lineage = root
	writeJSON(w, http.StatusOK, out)
}

// recordPatch appends a landed patch to every routing entry of the
// addressed job's lineage and returns the lineage's public root ID.
// Every member carries the full history so whichever entry survives
// eviction or drives a failover is self-contained.
func (c *Coordinator) recordPatch(id string, patch service.MatrixPatchRequest, version int) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return id
	}
	root := j.lineageRoot
	if root == "" {
		root = j.id
	}
	for _, member := range c.jobs {
		mroot := member.lineageRoot
		if mroot == "" {
			mroot = member.id
		}
		if mroot == root {
			member.patches = append(member.patches, patch)
			member.matrixVersion = version
		}
	}
	return root
}

// handleJobAction is POST /v1/jobs/{target} with target
// "<id>:recluster": start a warm-start child of a completed job. The
// coordinator mints the child's public ID, routes the recluster to
// the parent's owner — the one backend already holding the lineage
// matrix and the parent's final checkpoint — and registers the child
// in the routing table with its full lineage (root submission plus
// recorded patches) so it can fail over like any other job. When the
// owner is unreachable, the child is rebuilt from scratch on another
// backend: original submission, replayed patches, and the freshest
// replicated parent checkpoint as the warm seed.
func (c *Coordinator) handleJobAction(w http.ResponseWriter, r *http.Request) {
	target := r.PathValue("target")
	parentID, isRecluster := strings.CutSuffix(target, ":recluster")
	if !isRecluster || parentID == "" {
		writeError(w, http.StatusNotFound, service.CodeNotFound,
			"unknown job action %q (want {id}:recluster)", target)
		return
	}
	var req service.ReclusterRequest
	r.Body = http.MaxBytesReader(w, r.Body, c.opts.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, service.CodeInvalidRequest, "decoding recluster request: %v", err)
		return
	}
	if req.ChildID != "" {
		writeError(w, http.StatusBadRequest, service.CodeInvalidRequest,
			"child_id is minted by the coordinator; omit it")
		return
	}

	pref, ok := c.lineageRef(parentID)
	if !ok {
		writeError(w, http.StatusNotFound, service.CodeNotFound, "no job %q (unknown or expired)", parentID)
		return
	}
	if c.routingFull() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, service.CodeQueueFull,
			"coordinator routing table is full (%d jobs); retry later", c.opts.MaxJobs)
		return
	}

	childID := c.mintID()
	if pref.ownerUp {
		if c.reclusterViaOwner(r.Context(), w, pref, childID) {
			return
		}
		// The owner probed up but stopped answering mid-flight; treat it
		// like a down owner and rebuild elsewhere.
	}
	c.reclusterViaFallback(r.Context(), w, pref, childID)
}

// lineageRef snapshots the fields a recluster needs outside the lock:
// the parent's routing position plus everything required to rebuild
// its lineage elsewhere.
type lineageRef struct {
	id          string
	owner       string
	epoch       int
	ownerUp     bool
	lineageRoot string
	lastState   service.JobState
	submit      service.SubmitRequest
	patches     []service.MatrixPatchRequest
	replicas    []string
	binMatrix   []byte
}

func (c *Coordinator) lineageRef(id string) (lineageRef, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return lineageRef{}, false
	}
	root := j.lineageRoot
	if root == "" {
		root = j.id
	}
	b := c.backends[j.owner]
	return lineageRef{
		id:          j.id,
		owner:       j.owner,
		epoch:       j.epoch,
		ownerUp:     b != nil && b.state == stateUp,
		lineageRoot: root,
		lastState:   j.lastView.State,
		submit:      j.submit,
		patches:     append([]service.MatrixPatchRequest(nil), j.patches...),
		replicas:    append([]string(nil), j.replicas...),
		binMatrix:   j.binMatrix,
	}, true
}

// reclusterViaOwner routes the recluster to the parent's owner — the
// backend whose memory already holds the lineage matrix and the
// parent's final checkpoint, making this the zero-copy path. Reports
// whether a response was written; false means the owner was
// unreachable at the transport level and the caller should fall back.
func (c *Coordinator) reclusterViaOwner(ctx context.Context, w http.ResponseWriter, pref lineageRef, childID string) bool {
	body, err := json.Marshal(service.ReclusterRequest{ChildID: childID})
	if err != nil {
		writeError(w, http.StatusInternalServerError, service.CodeInternal, "encoding recluster: %v", err)
		return true
	}
	resp, err := c.client.do(ctx, http.MethodPost,
		pref.owner+"/v1/jobs/"+dispatchID(pref.id, pref.epoch)+":recluster", body, "application/json")
	if err != nil {
		c.noteCallFailure(pref.owner)
		return false
	}
	if resp.status != http.StatusAccepted && resp.status != http.StatusOK {
		relay(w, resp) // job_not_done / lineage_busy / no_checkpoint are final
		return true
	}
	var rr service.ReclusterResponse
	if err := json.Unmarshal(resp.body, &rr); err != nil {
		writeError(w, http.StatusBadGateway, service.CodeInternal,
			"backend %s returned an unreadable recluster response: %v", pref.owner, err)
		return true
	}
	view := rr.Job
	view.ID = childID
	view.ParentID = pref.id
	peers := c.replicaPeersFor(childID, pref.owner)
	c.registerChild(pref, childID, pref.owner, peers, view)
	for _, peer := range peers {
		if !c.putMetaReplica(ctx, peer, childID, &pref.submit) {
			c.noteCallFailure(peer)
		}
	}
	c.metrics.reclusterRouted()
	c.logf("coord: job %s: recluster child %s on owner %s (warm from iteration %d)",
		pref.id, childID, pref.owner, rr.WarmFromIteration)
	w.Header().Set("Location", "/v1/jobs/"+childID)
	writeJSON(w, http.StatusAccepted, service.ReclusterResponse{
		Job:               view,
		ParentID:          pref.id,
		WarmFromIteration: rr.WarmFromIteration,
	})
	return true
}

// reclusterViaFallback rebuilds the warm-start child on a backend
// that has never seen the lineage: the original submission and the
// recorded patch history reconstruct the matrix bit for bit, and the
// freshest replicated parent checkpoint seeds the clustering. The
// parent-done contract the owner would have enforced is checked here
// from the last observed view.
func (c *Coordinator) reclusterViaFallback(ctx context.Context, w http.ResponseWriter, pref lineageRef, childID string) {
	if pref.lastState != service.StateDone {
		writeError(w, http.StatusConflict, service.CodeJobNotDone,
			"job %s last reported %q; only done jobs recluster", pref.id, pref.lastState)
		return
	}
	sources := replicaCheckpointURLs(pref.id, pref.replicas)
	if c.backendState(pref.owner) != stateDown {
		sources = append(sources, pref.owner+"/v1/internal/jobs/"+dispatchID(pref.id, pref.epoch)+"/checkpoint")
	}
	ck, ckIters := c.bestCheckpoint(ctx, sources)
	if ck == nil {
		writeError(w, http.StatusBadGateway, codeBackendDown,
			"job %s's owner is unreachable and no replica holds its checkpoint; retry once failover settles", pref.id)
		return
	}
	newOwner, _, _ := c.placementExcluding(childID, pref.owner)
	if newOwner == "" {
		writeError(w, http.StatusServiceUnavailable, codeNoBackends, "no ready backends")
		return
	}
	// A binary lineage rebuilds from the root's retained DCMX bytes —
	// the patches replay on top of the decoded binary matrix exactly as
	// they would on a JSON one.
	body, contentType, err := encodeDispatch(service.DispatchRequest{
		ID:                  childID,
		Submit:              pref.submit,
		Patches:             pref.patches,
		WarmStartCheckpoint: ck,
	}, pref.binMatrix)
	if err != nil {
		writeError(w, http.StatusInternalServerError, service.CodeInternal, "encoding dispatch: %v", err)
		return
	}
	resp, err := c.client.do(ctx, http.MethodPost, newOwner+"/v1/internal/jobs", body, contentType)
	if err != nil {
		c.noteCallFailure(newOwner)
		writeError(w, http.StatusBadGateway, codeNoBackends,
			"no backend accepted recluster child %s: %v", childID, err)
		return
	}
	if resp.status != http.StatusAccepted && resp.status != http.StatusOK {
		relay(w, resp)
		return
	}
	var dr service.DispatchResponse
	if err := json.Unmarshal(resp.body, &dr); err != nil {
		writeError(w, http.StatusBadGateway, service.CodeInternal,
			"backend %s returned an unreadable dispatch response: %v", newOwner, err)
		return
	}
	view := dr.Job
	view.ID = childID
	view.ParentID = pref.id
	peers := c.replicaPeersFor(childID, newOwner)
	c.registerChild(pref, childID, newOwner, peers, view)
	for _, peer := range peers {
		if !c.putMetaReplica(ctx, peer, childID, &pref.submit) {
			c.noteCallFailure(peer)
		}
	}
	c.metrics.reclusterRouted()
	c.metrics.reclusterFellBack()
	c.logf("coord: job %s: recluster child %s rebuilt on %s from replica checkpoint (iteration %d, %d patches)",
		pref.id, childID, newOwner, ckIters, len(pref.patches))
	w.Header().Set("Location", "/v1/jobs/"+childID)
	writeJSON(w, http.StatusAccepted, service.ReclusterResponse{
		Job:               view,
		ParentID:          pref.id,
		WarmFromIteration: dr.WarmFromIteration,
	})
}

// registerChild enters a warm-start child into the routing table. The
// child inherits the lineage's root submission and full patch history
// — not a reference to the parent entry — so it outlives the parent's
// eviction and fails over on its own.
func (c *Coordinator) registerChild(pref lineageRef, childID, owner string, replicas []string, view service.JobView) {
	j := &job{
		id:            childID,
		submit:        pref.submit,
		algorithm:     service.AlgoFLOC,
		attempts:      1,
		owner:         owner,
		replicas:      replicas,
		ckIters:       -1,
		lastView:      view,
		lineageRoot:   pref.lineageRoot,
		parentID:      pref.id,
		warm:          true,
		patches:       append([]service.MatrixPatchRequest(nil), pref.patches...),
		matrixVersion: len(pref.patches),
		binMatrix:     pref.binMatrix,
	}
	c.mu.Lock()
	c.jobs[childID] = j
	c.mu.Unlock()
	c.metrics.jobRouted()
}

// replicaPeersFor picks the child's replica peers: the ring's
// preference walk, live backends only, skipping the owner, capped at
// the replication target.
func (c *Coordinator) replicaPeersFor(id, owner string) []string {
	prefs := c.ring.prefs(id)
	c.mu.Lock()
	defer c.mu.Unlock()
	peers := make([]string, 0, c.opts.Replication)
	for _, name := range prefs {
		if name == owner {
			continue
		}
		if b := c.backends[name]; b != nil && b.state == stateUp {
			peers = append(peers, name)
			if len(peers) == c.opts.Replication {
				break
			}
		}
	}
	return peers
}

func (c *Coordinator) backendState(name string) backendState {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b := c.backends[name]; b != nil {
		return b.state
	}
	return stateDown
}

// parentCheckpointSources lists where a migrating warm child's parent
// checkpoint may still be found: the parent's replica peers, plus its
// owner while that owner still answers reads.
func (c *Coordinator) parentCheckpointSources(parentID string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.jobs[parentID]
	if !ok {
		return nil
	}
	urls := replicaCheckpointURLs(parentID, p.replicas)
	if b := c.backends[p.owner]; b != nil && b.state != stateDown {
		urls = append(urls, p.owner+"/v1/internal/jobs/"+dispatchID(p.id, p.epoch)+"/checkpoint")
	}
	return urls
}
