package coord

import (
	"bytes"
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"deltacluster/internal/matrix"
	"deltacluster/internal/service"
)

// fastMatrix is fastSubmit's matrix decoded from the same CSV — the
// binary tests push identical data through both transports.
func fastMatrix(t *testing.T) *matrix.Matrix {
	t.Helper()
	m, err := matrix.Read(strings.NewReader(synthCSV(t, 120, 18, 3, 70)), matrix.IOOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCoordinatorBinarySubmitProxy: a DSUB submission through the
// coordinator reaches a backend with the DCMX bytes intact, runs to
// the same result as the equivalent JSON submission, and the binary
// result download relays through the coordinator verbatim.
func TestCoordinatorBinarySubmitProxy(t *testing.T) {
	cl := startCluster(t, 2, nil, service.Options{Workers: 1, QueueCap: 8})

	jreq := fastSubmit(t)
	body, err := service.EncodeBinarySubmit(&service.SubmitRequest{
		Algorithm: service.AlgoFLOC,
		FLOC:      jreq.FLOC,
	}, fastMatrix(t))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(cl.ts.URL+"/v1/jobs", service.ContentTypeBinaryMatrix, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data := readAll(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("binary submit: status %d, body %s", resp.StatusCode, data)
	}
	var sr SubmitResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	binID := sr.Job.ID

	jsonID, _, _ := submitVia(t, cl.ts.URL, jreq)
	for _, id := range []string{binID, jsonID} {
		if v := pollDone(t, cl.ts.URL, id, 30*time.Second); v.State != service.StateDone {
			t.Fatalf("job %s finished %s (error %q), want done", id, v.State, v.Error)
		}
	}
	binRes, jsonRes := fetchResult(t, cl.ts.URL, binID), fetchResult(t, cl.ts.URL, jsonID)
	if !reflect.DeepEqual(binRes, jsonRes) {
		t.Fatalf("binary and JSON submissions diverged through the coordinator:\n  binary: %+v\n  json:   %+v", binRes, jsonRes)
	}

	// The Accept header must pass through: a DRES download via the
	// coordinator decodes to the same result.
	req, err := http.NewRequest(http.MethodGet, cl.ts.URL+"/v1/jobs/"+binID+"/result", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", service.ContentTypeBinaryMatrix)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary result: status %d, body %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != service.ContentTypeBinaryMatrix {
		t.Fatalf("Content-Type = %q, want %q", ct, service.ContentTypeBinaryMatrix)
	}
	dres, err := service.DecodeBinaryResult(raw)
	if err != nil {
		t.Fatal(err)
	}
	dres.DurationMillis = 0
	if !reflect.DeepEqual(*dres, binRes) {
		t.Fatalf("DRES download diverged from JSON result:\n  dres: %+v\n  json: %+v", *dres, binRes)
	}
}

// TestCoordinatorBatchFanout: a batch through the coordinator routes
// every item independently across the ring, refusals stay per-item,
// and each accepted item's result matches an individually submitted
// copy of the same job.
func TestCoordinatorBatchFanout(t *testing.T) {
	cl := startCluster(t, 2, nil, service.Options{Workers: 2, QueueCap: 16})

	status, data := do(t, http.MethodPost, cl.ts.URL+"/v1/jobs:batch", &service.BatchSubmitRequest{})
	if status != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, body %s", status, data)
	}

	bad := service.SubmitRequest{
		Matrix: service.MatrixPayload{Rows: json.RawMessage(`[[1,2],[3]]`)}, // ragged
		FLOC:   &service.FLOCParams{K: 1, Delta: 5},
	}
	batch := service.BatchSubmitRequest{Jobs: []service.SubmitRequest{
		*fastSubmit(t), bad, *fastSubmit(t),
	}}
	status, data = do(t, http.MethodPost, cl.ts.URL+"/v1/jobs:batch", &batch)
	if status != http.StatusAccepted {
		t.Fatalf("batch: status %d, body %s", status, data)
	}
	var out service.BatchSubmitResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Accepted != 2 || out.Rejected != 1 || len(out.Jobs) != 3 {
		t.Fatalf("accepted %d rejected %d items %d, want 2/1/3", out.Accepted, out.Rejected, len(out.Jobs))
	}
	if item := out.Jobs[1]; item.Status != http.StatusBadRequest || item.Error == nil {
		t.Fatalf("invalid item outcome %+v, want a relayed 400", item)
	}
	if out.Jobs[0].Job.ID == out.Jobs[2].Job.ID {
		t.Fatalf("batch items share job ID %s", out.Jobs[0].Job.ID)
	}

	// Every accepted item must equal an individually submitted copy.
	soloID, _, _ := submitVia(t, cl.ts.URL, fastSubmit(t))
	if v := pollDone(t, cl.ts.URL, soloID, 30*time.Second); v.State != service.StateDone {
		t.Fatalf("solo job finished %s, want done", v.State)
	}
	soloRes := fetchResult(t, cl.ts.URL, soloID)
	for _, i := range []int{0, 2} {
		id := out.Jobs[i].Job.ID
		if v := pollDone(t, cl.ts.URL, id, 30*time.Second); v.State != service.StateDone {
			t.Fatalf("batch job %d (%s) finished %s, want done", i, id, v.State)
		}
		if res := fetchResult(t, cl.ts.URL, id); !reflect.DeepEqual(res, soloRes) {
			t.Fatalf("batch item %d diverged from the individually submitted job:\n  batch: %+v\n  solo:  %+v", i, res, soloRes)
		}
	}
}
