package coord

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

// client is the coordinator's HTTP client for backend calls: every
// request carries a per-attempt timeout, and retryable failures
// (network errors, 5xx) are retried a bounded number of times with
// exponential backoff. There is no unbounded loop anywhere — the
// worst case is maxAttempts × (timeout + backoff), after which the
// caller sees the last error and decides (mark the backend down,
// degrade the response, try the next peer).
type client struct {
	http        *http.Client
	maxAttempts int
	backoffBase time.Duration
	backoffMax  time.Duration
}

func newClient(timeout time.Duration, maxAttempts int, backoffBase, backoffMax time.Duration) *client {
	return &client{
		http:        &http.Client{Timeout: timeout},
		maxAttempts: maxAttempts,
		backoffBase: backoffBase,
		backoffMax:  backoffMax,
	}
}

// response is a fully-drained backend reply.
type response struct {
	status int
	header http.Header
	body   []byte
}

// do issues method url with the given body, retrying on network
// errors and 5xx responses. 4xx responses return immediately — the
// backend understood the request and rejected it; retrying cannot
// change its mind. The context bounds the whole campaign: a cancelled
// coordinator stops retrying mid-backoff.
//
// Every internal write this client performs is idempotent by protocol
// design (dispatch is keyed by ID, replica PUTs are monotonic), so
// retrying a write that may or may not have landed is always safe.
func (c *client) do(ctx context.Context, method, url string, body []byte, contentType string) (*response, error) {
	return c.doAccept(ctx, method, url, body, contentType, "")
}

// doAccept is do with an Accept header — used when the client's
// preferred result encoding (JSON or the binary envelope) must reach
// the backend so its answer can be relayed verbatim.
func (c *client) doAccept(ctx context.Context, method, url string, body []byte, contentType, accept string) (*response, error) {
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, c.backoff(attempt)); err != nil {
				return nil, err
			}
		}
		resp, err := c.once(ctx, method, url, body, contentType, accept)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			continue
		}
		if resp.status >= 500 {
			lastErr = fmt.Errorf("%s %s: backend returned %d", method, url, resp.status)
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("%s %s: giving up after %d attempts: %w", method, url, c.maxAttempts, lastErr)
}

func (c *client) once(ctx context.Context, method, url string, body []byte, contentType, accept string) (*response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("%s %s: reading response: %w", method, url, err)
	}
	return &response{status: resp.StatusCode, header: resp.Header, body: data}, nil
}

// drain converts a raw *http.Response into a fully-read response,
// closing the body — for the one call site (conditional GET with an
// If-None-Match header) that builds its request by hand.
func drain(raw *http.Response) *response {
	data, err := io.ReadAll(raw.Body)
	_ = raw.Body.Close()
	if err != nil {
		data = nil
	}
	return &response{status: raw.StatusCode, header: raw.Header, body: data}
}

// backoff is the delay before the attempt-th try (attempt ≥ 1):
// base×2^(attempt-1), capped. Deterministic by design — the
// coordinator's retry cadence is auditable from its config alone, and
// with a handful of backends thundering herds are not a concern.
func (c *client) backoff(attempt int) time.Duration {
	d := c.backoffBase << (attempt - 1)
	if d > c.backoffMax || d <= 0 {
		d = c.backoffMax
	}
	return d
}

// sleepCtx waits for d or until ctx is cancelled, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
