package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"deltacluster/internal/service"
	"deltacluster/internal/synth"
)

// node is one in-process backend: a real service.Server behind a real
// listener.
type node struct {
	svc *service.Server
	ts  *httptest.Server
}

func startNode(t *testing.T, opts service.Options) *node {
	t.Helper()
	svc := service.New(opts)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = svc.Shutdown(testCtx(t, 10*time.Second))
	})
	return &node{svc: svc, ts: ts}
}

// cluster is a coordinator over in-process backends, all reachable
// over real HTTP.
type cluster struct {
	coord *Coordinator
	ts    *httptest.Server
	nodes []*node
}

// fastOpts are test-speed coordinator intervals: failures surface in
// hundreds of milliseconds instead of seconds.
func fastOpts(backends []string) Options {
	return Options{
		Backends:       backends,
		Replication:    1,
		ProbeInterval:  50 * time.Millisecond,
		FailThreshold:  2,
		PollInterval:   50 * time.Millisecond,
		RequestTimeout: 5 * time.Second,
		RetryAttempts:  2,
		BackoffBase:    10 * time.Millisecond,
		BackoffMax:     50 * time.Millisecond,
	}
}

func startCluster(t *testing.T, n int, tweak func(*Options), nodeOpts service.Options) *cluster {
	t.Helper()
	cl := &cluster{}
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		opts := nodeOpts
		opts.Seed = int64(i + 1)
		nd := startNode(t, opts)
		cl.nodes = append(cl.nodes, nd)
		urls = append(urls, nd.ts.URL)
	}
	co := fastOpts(urls)
	if tweak != nil {
		tweak(&co)
	}
	c, err := New(co)
	if err != nil {
		t.Fatal(err)
	}
	cl.coord = c
	cl.ts = httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		cl.ts.Close()
		_ = c.Shutdown(testCtx(t, 10*time.Second))
	})
	return cl
}

func testCtx(t *testing.T, d time.Duration) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// do issues a JSON request against a base URL and returns status+body.
func do(t *testing.T, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data := readAll(t, resp)
	return resp.StatusCode, data
}

// fastSubmit is a small FLOC job that converges in milliseconds —
// right for routing/proxy tests where the job's length is irrelevant.
func fastSubmit(t *testing.T) *service.SubmitRequest {
	t.Helper()
	return &service.SubmitRequest{
		Algorithm: service.AlgoFLOC,
		Matrix:    service.MatrixPayload{CSV: synthCSV(t, 120, 18, 3, 70)},
		FLOC:      &service.FLOCParams{K: 3, Delta: 10, Seed: 7, Seeding: "random", MaxIterations: 1000},
	}
}

// slowSubmit is the deliberately slow workload: dozens of improving
// iterations at visible wall time each, so drains and kills land
// mid-run and checkpoints exist to migrate from.
var slowCSV struct {
	once sync.Once
	csv  string
}

func slowSubmit(t *testing.T) *service.SubmitRequest {
	t.Helper()
	slowCSV.once.Do(func() { slowCSV.csv = synthCSV(t, 3000, 100, 30, 900) })
	return &service.SubmitRequest{
		Algorithm: service.AlgoFLOC,
		Matrix:    service.MatrixPayload{CSV: slowCSV.csv},
		FLOC:      &service.FLOCParams{K: 12, Delta: 8, Seed: 7, Seeding: "random", MaxIterations: 10_000},
	}
}

func synthCSV(t *testing.T, rows, cols, clusters int, volume float64) string {
	t.Helper()
	ds, err := synth.Generate(synth.Config{
		Rows: rows, Cols: cols, NumClusters: clusters,
		VolumeMean: volume, VolumeVariance: 0, RowColRatio: 5,
		TargetResidue: 4,
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	var csv strings.Builder
	for i := 0; i < ds.Matrix.Rows(); i++ {
		for j := 0; j < ds.Matrix.Cols(); j++ {
			if j > 0 {
				csv.WriteByte(',')
			}
			if ds.Matrix.IsSpecified(i, j) {
				fmt.Fprintf(&csv, "%g", ds.Matrix.Get(i, j))
			}
		}
		csv.WriteByte('\n')
	}
	return csv.String()
}

// submitVia posts a job through the coordinator and returns the public
// ID and the decoded response.
func submitVia(t *testing.T, baseURL string, req *service.SubmitRequest) (string, SubmitResponse, *http.Response) {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/jobs", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, body)
	}
	var sr SubmitResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Job.ID == "" {
		t.Fatalf("submit response has no job ID: %s", body)
	}
	return sr.Job.ID, sr, resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer func() { _ = resp.Body.Close() }()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// pollDone polls a job through the given base URL until it is
// terminal, returning the final view.
func pollDone(t *testing.T, baseURL, id string, timeout time.Duration) service.JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		status, body := do(t, http.MethodGet, baseURL+"/v1/jobs/"+id, nil)
		if status != http.StatusOK {
			t.Fatalf("poll %s: status %d, body %s", id, status, body)
		}
		var v service.JobView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		switch v.State {
		case service.StateDone, service.StateFailed, service.StateCancelled:
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, v.State, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// fetchResult fetches and decodes a done job's result with the
// wall-clock field zeroed for fingerprint comparison.
func fetchResult(t *testing.T, baseURL, id string) service.ResultView {
	t.Helper()
	status, body := do(t, http.MethodGet, baseURL+"/v1/jobs/"+id+"/result", nil)
	if status != http.StatusOK {
		t.Fatalf("result %s: status %d, body %s", id, status, body)
	}
	var res service.ResultView
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	res.DurationMillis = 0
	return res
}

func TestCoordinatorProxiesJobLifecycle(t *testing.T) {
	cl := startCluster(t, 2, nil, service.Options{Workers: 1, QueueCap: 8})

	id, sr, resp := submitVia(t, cl.ts.URL, fastSubmit(t))
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+id {
		t.Fatalf("Location %q, want /v1/jobs/%s", loc, id)
	}
	if sr.Warning != "" {
		t.Fatalf("fully replicated submit carries a warning: %q", sr.Warning)
	}
	if v := pollDone(t, cl.ts.URL, id, 30*time.Second); v.State != service.StateDone {
		t.Fatalf("job finished %s: %+v", v.State, v)
	}
	res := fetchResult(t, cl.ts.URL, id)
	if res.Algorithm != service.AlgoFLOC || len(res.Clusters) == 0 {
		t.Fatalf("unexpected result: %+v", res)
	}

	// The same job run directly on a lone backend produces the same
	// fingerprint — the proxy adds routing, not noise.
	lone := startNode(t, service.Options{Workers: 1, QueueCap: 8})
	st, body := do(t, http.MethodPost, lone.ts.URL+"/v1/jobs", fastSubmit(t))
	if st != http.StatusAccepted {
		t.Fatalf("direct submit: status %d, body %s", st, body)
	}
	var direct service.SubmitResponse
	if err := json.Unmarshal(body, &direct); err != nil {
		t.Fatal(err)
	}
	pollDone(t, lone.ts.URL, direct.Job.ID, 30*time.Second)
	if want := fetchResult(t, lone.ts.URL, direct.Job.ID); !reflect.DeepEqual(res, want) {
		t.Fatalf("proxied result differs from direct run:\n got %+v\nwant %+v", res, want)
	}

	// Unknown jobs 404 through the coordinator too.
	if st, _ := do(t, http.MethodGet, cl.ts.URL+"/v1/jobs/jdeadbeef00000000", nil); st != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", st)
	}
}

func TestCoordinatorCancelProxies(t *testing.T) {
	cl := startCluster(t, 2, nil, service.Options{Workers: 1, QueueCap: 8, CheckpointEvery: 1})
	id, _, _ := submitVia(t, cl.ts.URL, slowSubmit(t))

	// Cancel through the coordinator; the job must settle cancelled and
	// never be migrated/resurrected afterwards.
	st, body := do(t, http.MethodDelete, cl.ts.URL+"/v1/jobs/"+id, nil)
	if st != http.StatusOK && st != http.StatusAccepted {
		t.Fatalf("cancel: status %d, body %s", st, body)
	}
	v := pollDone(t, cl.ts.URL, id, 30*time.Second)
	if v.State != service.StateCancelled {
		t.Fatalf("cancelled job settled %s", v.State)
	}
	// Give the sync loop a few ticks to (wrongly) migrate; the state
	// must stay cancelled.
	time.Sleep(300 * time.Millisecond)
	st, body = do(t, http.MethodGet, cl.ts.URL+"/v1/jobs/"+id, nil)
	var after service.JobView
	if err := json.Unmarshal(body, &after); err != nil || st != http.StatusOK {
		t.Fatalf("post-cancel poll: status %d err %v", st, err)
	}
	if after.State != service.StateCancelled {
		t.Fatalf("client-cancelled job was resurrected into %s", after.State)
	}
}

// TestSubmitDegradesWhenReplicationUnmet: a replication target the
// cluster cannot satisfy yields 202 + warning, not a 5xx — graceful
// degradation is part of the submit contract.
func TestSubmitDegradesWhenReplicationUnmet(t *testing.T) {
	cl := startCluster(t, 2, func(o *Options) { o.Replication = 2 }, service.Options{Workers: 1, QueueCap: 8})
	id, sr, resp := submitVia(t, cl.ts.URL, fastSubmit(t))
	if sr.Warning == "" {
		t.Fatal("submit under replication shortfall carries no warning")
	}
	if resp.Header.Get("X-Deltaserve-Degraded") != "replication" {
		t.Fatalf("missing degradation header; got %q", resp.Header.Get("X-Deltaserve-Degraded"))
	}
	if v := pollDone(t, cl.ts.URL, id, 30*time.Second); v.State != service.StateDone {
		t.Fatalf("degraded-accepted job finished %s", v.State)
	}
}

// TestDrainMigratesJobWithZeroRecompute is the planned-migration path
// end to end, in-process: drain the owner backend directly (as an
// operator would), and the coordinator must move the running FLOC job
// to the surviving backend, resume it from the replicated checkpoint,
// and produce a final clustering bit-identical to an uninterrupted
// single-node run.
func TestDrainMigratesJobWithZeroRecompute(t *testing.T) {
	nodeOpts := service.Options{Workers: 1, QueueCap: 8, CheckpointEvery: 1}

	// Reference: uninterrupted run on a lone backend.
	lone := startNode(t, nodeOpts)
	st, body := do(t, http.MethodPost, lone.ts.URL+"/v1/jobs", slowSubmit(t))
	if st != http.StatusAccepted {
		t.Fatalf("reference submit: status %d, body %s", st, body)
	}
	var direct service.SubmitResponse
	if err := json.Unmarshal(body, &direct); err != nil {
		t.Fatal(err)
	}
	if v := pollDone(t, lone.ts.URL, direct.Job.ID, 120*time.Second); v.State != service.StateDone {
		t.Fatalf("reference job finished %s", v.State)
	}
	want := fetchResult(t, lone.ts.URL, direct.Job.ID)

	cl := startCluster(t, 2, nil, nodeOpts)
	id, _, _ := submitVia(t, cl.ts.URL, slowSubmit(t))

	// Find the owner and wait until its job passes iteration 1 — a
	// completed boundary guarantees a checkpoint to migrate from.
	owner := ownerOf(t, cl, id)
	waitForProgress(t, cl.ts.URL, id, 1, 60*time.Second)

	if st, body := do(t, http.MethodPost, owner.ts.URL+"/v1/admin/drain", nil); st != http.StatusOK {
		t.Fatalf("drain: status %d, body %s", st, body)
	}

	v := pollDone(t, cl.ts.URL, id, 120*time.Second)
	if v.State != service.StateDone {
		t.Fatalf("migrated job finished %s (error %q), want done", v.State, v.Error)
	}
	got := fetchResult(t, cl.ts.URL, id)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("migrated result differs from uninterrupted run:\n got %+v\nwant %+v", got, want)
	}

	// The coordinator recorded the migration, and the drained node is
	// seen as draining, not dead.
	st, body = do(t, http.MethodGet, cl.ts.URL+"/metrics", nil)
	if st != http.StatusOK {
		t.Fatalf("metrics: status %d", st)
	}
	var mv MetricsView
	if err := json.Unmarshal(body, &mv); err != nil {
		t.Fatal(err)
	}
	if mv.Jobs.Migrations < 1 {
		t.Fatalf("metrics report %d migrations, want ≥ 1: %s", mv.Jobs.Migrations, body)
	}
	if state := mv.Backends.States[owner.ts.URL]; state != "draining" {
		t.Fatalf("drained backend probes %q, want draining (states %v)", state, mv.Backends.States)
	}
}

// ownerOf finds which backend holds the job's initial dispatch.
func ownerOf(t *testing.T, cl *cluster, id string) *node {
	t.Helper()
	for _, nd := range cl.nodes {
		if st, _ := do(t, http.MethodGet, nd.ts.URL+"/v1/jobs/"+id, nil); st == http.StatusOK {
			return nd
		}
	}
	t.Fatalf("no backend knows job %s", id)
	return nil
}

// waitForProgress polls through the coordinator until the job reports
// at least n completed iterations.
func waitForProgress(t *testing.T, baseURL, id string, n int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, body := do(t, http.MethodGet, baseURL+"/v1/jobs/"+id, nil)
		if st != http.StatusOK {
			t.Fatalf("poll: status %d, body %s", st, body)
		}
		var v service.JobView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.Progress != nil && v.Progress.Iteration >= n {
			return
		}
		switch v.State {
		case service.StateDone, service.StateFailed, service.StateCancelled:
			t.Fatalf("job finished %s before reaching iteration %d", v.State, n)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached iteration %d", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReadyzReflectsBackendHealth: with every backend gone, the
// coordinator stops reporting ready.
func TestReadyzReflectsBackendHealth(t *testing.T) {
	cl := startCluster(t, 1, nil, service.Options{Workers: 1, QueueCap: 4})
	if st, _ := do(t, http.MethodGet, cl.ts.URL+"/readyz", nil); st != http.StatusOK {
		t.Fatalf("readyz with a live backend: status %d", st)
	}
	cl.nodes[0].ts.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _ := do(t, http.MethodGet, cl.ts.URL+"/readyz", nil)
		if st == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator still ready with every backend down")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Submissions now fail fast with the error model, not a hang.
	st, body := do(t, http.MethodPost, cl.ts.URL+"/v1/jobs", fastSubmit(t))
	if st != http.StatusServiceUnavailable && st != http.StatusBadGateway {
		t.Fatalf("submit with no backends: status %d, body %s", st, body)
	}
}
