package coord

import (
	"context"
	"net/http"
	"time"
)

// probeLoop polls every backend's /readyz on a fixed cadence and runs
// the per-backend state machine:
//
//	up ──(503 readyz)──▶ draining ──(200 readyz)──▶ up
//	up ──(FailThreshold consecutive errors)──▶ down ──(200/503)──▶ up/draining
//
// A draining backend is alive (it answers, serves reads, flushes
// checkpoints) but refuses new work; a down backend answers nothing.
// Both stop receiving new jobs immediately, and the sync loop migrates
// their jobs away. One probe failure never marks a node down — only
// the threshold does — so a single dropped packet cannot trigger a
// migration storm.
func (c *Coordinator) probeLoop(ctx context.Context) {
	t := time.NewTicker(c.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.probeAll(ctx)
		}
	}
}

// probeAll probes each backend once. Probes are single attempts (the
// loop itself is the retry) with the client's per-request timeout.
func (c *Coordinator) probeAll(ctx context.Context) {
	for _, name := range c.ring.names {
		resp, err := c.client.once(ctx, http.MethodGet, name+"/readyz", nil, "", "")
		if ctx.Err() != nil {
			return
		}
		c.metrics.probe()
		switch {
		case err != nil:
			c.noteCallFailure(name)
		case resp.status == http.StatusOK:
			c.setBackendState(name, stateUp)
		case resp.status == http.StatusServiceUnavailable:
			c.setBackendState(name, stateDraining)
		default:
			// An unexpected status is an unhealthy answer, not a dead
			// transport; count it like a failure.
			c.noteCallFailure(name)
		}
	}
}

// noteCallFailure records a failed backend call — probe or proxied —
// against the failure threshold. Proxied traffic thereby contributes
// to failure detection between probe ticks: a backend that times out
// on real requests goes down without waiting for FailThreshold probe
// intervals.
func (c *Coordinator) noteCallFailure(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.backends[name]
	if b == nil {
		return
	}
	b.fails++
	if b.fails >= c.opts.FailThreshold && b.state != stateDown {
		b.state = stateDown
		c.metrics.backendDown()
		c.logfLocked("coord: backend %s down after %d consecutive failures", name, b.fails)
	}
}

// setBackendState commits a definitive probe verdict and resets the
// failure counter.
func (c *Coordinator) setBackendState(name string, state backendState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.backends[name]
	if b == nil {
		return
	}
	b.fails = 0
	if b.state == state {
		return
	}
	prev := b.state
	b.state = state
	c.logfLocked("coord: backend %s %s → %s", name, prev, state)
}

// logfLocked logs while holding c.mu; the log sink must not call back
// into the coordinator (none does — it is fmt/log in practice).
func (c *Coordinator) logfLocked(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}
