package coord

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"deltacluster/internal/service"
)

// checkpointIterationsHeader mirrors the service's header carrying a
// checkpoint response's boundary iteration count.
const checkpointIterationsHeader = "X-Deltaserve-Checkpoint-Iterations"

// syncLoop is the coordinator's maintenance heartbeat. Every tick it
// walks the routing table once and, per non-terminal job:
//
//   - owner not up (down or draining)  → migrate it (failover.go);
//   - owner up                         → refresh the job view, and for
//     FLOC jobs pull the owner's latest checkpoint (conditional GET,
//     so an unchanged boundary costs one cheap 304) and push it to the
//     job's replica peers;
//   - owner up but the job sits cancelled without a client cancel —
//     someone interfered with the backend directly — → after a few
//     confirming ticks, accept it as terminal rather than fight over
//     it.
//
// Terminal jobs get their peer replicas deleted once (best-effort) and
// their routing entries evicted after the TTL.
func (c *Coordinator) syncLoop(ctx context.Context) {
	t := time.NewTicker(c.opts.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.syncOnce(ctx)
		}
	}
}

// syncRef is the per-job snapshot the sync loop works from, taken
// under the lock and acted on outside it.
type syncRef struct {
	id              string
	owner           string
	epoch           int
	algorithm       string
	replicas        []string
	ckEtag          string
	clientCancelled bool
	ownerUp         bool
	finalPull       bool // terminal done job owing its last boundary to the replicas
}

func (c *Coordinator) syncOnce(ctx context.Context) {
	c.evictExpired()

	c.mu.Lock()
	refs := make([]syncRef, 0, len(c.jobs))
	for id, j := range c.jobs {
		b := c.backends[j.owner]
		ownerUp := b != nil && b.state == stateUp
		if j.terminal {
			// A done FLOC job's final boundary is the warm-start seed for
			// its reclusters; keep pulling until it reaches the replicas,
			// however the terminal transition was observed.
			if ownerUp && !j.finalCkPulled &&
				j.algorithm == service.AlgoFLOC && j.lastView.State == service.StateDone {
				refs = append(refs, syncRef{
					id:        id,
					owner:     j.owner,
					epoch:     j.epoch,
					algorithm: j.algorithm,
					replicas:  append([]string(nil), j.replicas...),
					ckEtag:    j.ckEtag,
					ownerUp:   true,
					finalPull: true,
				})
			}
			continue
		}
		refs = append(refs, syncRef{
			id:              id,
			owner:           j.owner,
			epoch:           j.epoch,
			algorithm:       j.algorithm,
			replicas:        append([]string(nil), j.replicas...),
			ckEtag:          j.ckEtag,
			clientCancelled: j.clientCancelled,
			ownerUp:         ownerUp,
		})
	}
	c.mu.Unlock()

	for _, ref := range refs {
		if ctx.Err() != nil {
			return
		}
		if ref.finalPull {
			if c.pullAndPush(ctx, ref) {
				c.markFinalPulled(ref.id)
			}
			continue
		}
		if !ref.ownerUp {
			c.migrate(ctx, ref.id)
			continue
		}
		c.syncJob(ctx, ref)
	}
}

// syncJob refreshes one job from its (up) owner and replicates its
// checkpoint forward.
func (c *Coordinator) syncJob(ctx context.Context, ref syncRef) {
	resp, err := c.client.do(ctx, http.MethodGet,
		ref.owner+"/v1/jobs/"+dispatchID(ref.id, ref.epoch), nil, "")
	if err != nil {
		c.noteCallFailure(ref.owner)
		return
	}
	if resp.status != http.StatusOK {
		// The owner no longer knows the job (evicted, or the dispatch
		// was lost). Treat like an interrupted run: migrate from the
		// best replicated checkpoint.
		c.migrate(ctx, ref.id)
		return
	}
	var v service.JobView
	if err := json.Unmarshal(resp.body, &v); err != nil {
		return
	}
	v.ID = ref.id
	c.commitView(ref.id, v)

	if v.State == service.StateCancelled && !ref.clientCancelled {
		// Cancelled, but not by our client, on a backend that still
		// probes ready: direct interference. Confirm over a few ticks
		// (a drain flips readiness within a probe interval and takes
		// the migration path instead), then let it rest.
		if c.bumpCancelSeen(ref.id) {
			return
		}
	}

	if ref.algorithm == service.AlgoFLOC {
		switch v.State {
		case service.StateRunning:
			c.pullAndPush(ctx, ref)
		case service.StateDone:
			// The run just finished: one more pull lands the final
			// boundary — the recluster warm seed — on the replicas.
			if c.pullAndPush(ctx, ref) {
				c.markFinalPulled(ref.id)
			}
		}
	}

	if c.isTerminal(ref.id) && !c.keepsReplicas(ref.id) {
		c.cleanupReplicas(ctx, ref.id, ref.replicas)
	}
}

// keepsReplicas reports whether a terminal job's replicas stay: done
// FLOC jobs keep theirs as the recluster-failover warm seed (they age
// out via the backends' own replica bound); failed and cancelled
// jobs, with nothing to recluster from, are cleaned up.
func (c *Coordinator) keepsReplicas(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return ok && j.algorithm == service.AlgoFLOC && j.lastView.State == service.StateDone
}

// markFinalPulled records that a done job's final boundary reached the
// replica set.
func (c *Coordinator) markFinalPulled(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if j, ok := c.jobs[id]; ok {
		j.finalCkPulled = true
	}
}

// bumpCancelSeen counts consecutive "cancelled without a client
// cancel, owner still up" observations; after cancelConfirmTicks it
// finalizes the job as terminal and reports true.
const cancelConfirmTicks = 3

func (c *Coordinator) bumpCancelSeen(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return true
	}
	j.cancelSeen++
	if j.cancelSeen >= cancelConfirmTicks {
		j.lastView.State = service.StateCancelled
		j.setTerminalLocked()
		return true
	}
	return false
}

func (c *Coordinator) isTerminal(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return ok && j.terminal
}

// pullAndPush pulls the owner's latest checkpoint when it advanced
// (ETag-conditional) and pushes it to every replica peer. Push
// failures are counted, never retried beyond the client's bounded
// policy — the next boundary brings a fresh, strictly better replica
// anyway. Reports whether the pull itself landed (fresh bytes or a
// 304 confirming the replicas already hold the head).
func (c *Coordinator) pullAndPush(ctx context.Context, ref syncRef) bool {
	url := ref.owner + "/v1/internal/jobs/" + dispatchID(ref.id, ref.epoch) + "/checkpoint"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false
	}
	if ref.ckEtag != "" {
		req.Header.Set("If-None-Match", ref.ckEtag)
	}
	raw, err := c.client.http.Do(req)
	if err != nil {
		c.noteCallFailure(ref.owner)
		return false
	}
	resp := drain(raw)
	if resp.status == http.StatusNotModified {
		return true
	}
	if resp.status != http.StatusOK {
		return false
	}
	c.metrics.checkpointPulled()
	iters, _ := strconv.Atoi(resp.header.Get(checkpointIterationsHeader))

	for _, peer := range ref.replicas {
		pr, err := c.client.do(ctx, http.MethodPut,
			peer+"/v1/internal/replicas/"+ref.id+"/checkpoint", resp.body, "application/octet-stream")
		if err != nil || pr.status != http.StatusOK {
			c.metrics.replicaPutFailed()
			c.noteCallFailure(peer)
			continue
		}
		c.metrics.replicaPut()
	}

	c.mu.Lock()
	if j, ok := c.jobs[ref.id]; ok {
		// The ETag advances even when pushes failed: the pull succeeded,
		// and re-pushing the same boundary is pointless — the next one
		// supersedes it.
		j.ckEtag = resp.header.Get("ETag")
		if iters > j.ckIters {
			j.ckIters = iters
		}
	}
	c.mu.Unlock()
	return true
}

// cleanupReplicas best-effort deletes a terminal job's peer replicas.
// Runs once per job: the replicas list is cleared on first call.
func (c *Coordinator) cleanupReplicas(ctx context.Context, id string, replicas []string) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	if !ok || len(j.replicas) == 0 {
		c.mu.Unlock()
		return
	}
	j.replicas = nil
	c.mu.Unlock()
	for _, peer := range replicas {
		if resp, err := c.client.do(ctx, http.MethodDelete, peer+"/v1/internal/replicas/"+id, nil, ""); err != nil || resp.status != http.StatusOK {
			c.logf("coord: dropping replica of %s on %s failed; it ages out via the backend's bound", id, peer)
		}
	}
}
