package stream

import (
	"math"
	"testing"

	"deltacluster/internal/matrix"
)

func testMatrix(t *testing.T, rows, cols int) *matrix.Matrix {
	t.Helper()
	m := matrix.New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, float64(i*cols+j))
		}
	}
	return m
}

func TestLogAppendAndVersioning(t *testing.T) {
	l := NewLog(3, 4)
	if l.Version() != 0 || l.BaseRows() != 3 || l.Rows() != 3 || l.Cols() != 4 {
		t.Fatalf("fresh log state: v=%d base=%d rows=%d cols=%d", l.Version(), l.BaseRows(), l.Rows(), l.Cols())
	}
	v, err := l.Append(Mutation{AppendRows: [][]float64{{1, 2, 3, 4}, {5, 6, 7, 8}}})
	if err != nil || v != 1 {
		t.Fatalf("append #1: v=%d err=%v", v, err)
	}
	if l.Rows() != 5 {
		t.Fatalf("rows after append = %d, want 5", l.Rows())
	}
	v, err = l.Append(Mutation{Updates: []matrix.Cell{{Row: 4, Col: 0, Value: 9}}})
	if err != nil || v != 2 {
		t.Fatalf("append #2: v=%d err=%v", v, err)
	}
	if l.BaseRows() != 3 {
		t.Fatalf("BaseRows moved to %d", l.BaseRows())
	}
	if got := len(l.Entries(0)); got != 2 {
		t.Fatalf("Entries(0) = %d entries, want 2", got)
	}
	if got := len(l.Entries(1)); got != 1 {
		t.Fatalf("Entries(1) = %d entries, want 1", got)
	}
	if l.Entries(2) != nil {
		t.Fatalf("Entries(head) should be nil")
	}
}

func TestLogValidation(t *testing.T) {
	cases := []struct {
		name string
		mu   Mutation
	}{
		{"empty", Mutation{}},
		{"ragged append", Mutation{AppendRows: [][]float64{{1, 2}}}},
		{"inf append", Mutation{AppendRows: [][]float64{{1, 2, math.Inf(1)}}}},
		{"update row out of range", Mutation{Updates: []matrix.Cell{{Row: 2, Col: 0, Value: 1}}}},
		{"update col out of range", Mutation{Updates: []matrix.Cell{{Row: 0, Col: 3, Value: 1}}}},
		{"update negative", Mutation{Updates: []matrix.Cell{{Row: -1, Col: 0, Value: 1}}}},
		{"inf update", Mutation{Updates: []matrix.Cell{{Row: 0, Col: 0, Value: math.Inf(-1)}}}},
		{"retract out of range", Mutation{Retract: []matrix.CellRef{{Row: 0, Col: 9}}}},
	}
	for _, tc := range cases {
		l := NewLog(2, 3)
		if _, err := l.Append(tc.mu); err == nil {
			t.Errorf("%s: Append accepted invalid mutation", tc.name)
		}
		if l.Version() != 0 || l.Rows() != 2 {
			t.Errorf("%s: rejected mutation changed log state", tc.name)
		}
	}
}

func TestLogUpdateMayTargetAppendedRow(t *testing.T) {
	l := NewLog(2, 2)
	mu := Mutation{
		AppendRows: [][]float64{{1, 2}},
		Updates:    []matrix.Cell{{Row: 2, Col: 1, Value: 7}},
		Retract:    []matrix.CellRef{{Row: 2, Col: 0}},
	}
	if _, err := l.Append(mu); err != nil {
		t.Fatalf("Append rejected same-batch row reference: %v", err)
	}
	m := testMatrix(t, 2, 2)
	if _, err := l.ApplyTo(m, 0); err != nil {
		t.Fatalf("ApplyTo: %v", err)
	}
	if got := m.Get(2, 1); got != 7 {
		t.Fatalf("updated appended cell = %v, want 7", got)
	}
	if !math.IsNaN(m.Get(2, 0)) {
		t.Fatalf("retracted appended cell = %v, want NaN", m.Get(2, 0))
	}
}

func TestApplyToReplaysDeterministically(t *testing.T) {
	l := NewLog(3, 3)
	if _, err := l.Append(Mutation{AppendRows: [][]float64{{10, 11, 12}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Mutation{
		Updates: []matrix.Cell{{Row: 0, Col: 0, Value: -1}, {Row: 3, Col: 2, Value: 99}},
		Retract: []matrix.CellRef{{Row: 1, Col: 1}},
	}); err != nil {
		t.Fatal(err)
	}

	a := testMatrix(t, 3, 3)
	b := testMatrix(t, 3, 3)
	if _, err := l.ApplyTo(a, 0); err != nil {
		t.Fatalf("ApplyTo a: %v", err)
	}
	if _, err := l.ApplyTo(b, 0); err != nil {
		t.Fatalf("ApplyTo b: %v", err)
	}
	if !a.Equal(b) {
		t.Fatalf("two replays of the same log diverged")
	}

	// Partial replay: matrix already at version 1 only needs entry 2.
	c := testMatrix(t, 3, 3)
	if err := c.AppendRows([][]float64{{10, 11, 12}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ApplyTo(c, 1); err != nil {
		t.Fatalf("ApplyTo from v1: %v", err)
	}
	if !a.Equal(c) {
		t.Fatalf("partial replay diverged from full replay")
	}
}

func TestApplyToShapeMismatch(t *testing.T) {
	l := NewLog(3, 3)
	if _, err := l.Append(Mutation{AppendRows: [][]float64{{1, 2, 3}}}); err != nil {
		t.Fatal(err)
	}
	m := testMatrix(t, 4, 3) // wrong shape for version 0
	if _, err := l.ApplyTo(m, 0); err == nil {
		t.Fatalf("ApplyTo accepted a matrix at the wrong version shape")
	}
	if _, err := l.ApplyTo(testMatrix(t, 3, 3), 5); err == nil {
		t.Fatalf("ApplyTo accepted an out-of-range from version")
	}
}

func TestApplyKeepsLogAndMatrixInLockstep(t *testing.T) {
	m := testMatrix(t, 2, 2)
	l := NewLog(2, 2)
	v, err := l.Apply(m, Mutation{AppendRows: [][]float64{{5, 6}}})
	if err != nil || v != 1 {
		t.Fatalf("Apply: v=%d err=%v", v, err)
	}
	if m.Rows() != 3 || l.Rows() != 3 {
		t.Fatalf("lockstep broken: matrix %d rows, log %d rows", m.Rows(), l.Rows())
	}
	// Shape drift is rejected before committing.
	other := testMatrix(t, 2, 2)
	if _, err := l.Apply(other, Mutation{Updates: []matrix.Cell{{Row: 0, Col: 0, Value: 1}}}); err == nil {
		t.Fatalf("Apply accepted a matrix behind the log head")
	}
	if l.Version() != 1 {
		t.Fatalf("failed Apply committed an entry")
	}
}

func TestDeltaSince(t *testing.T) {
	l := NewLog(2, 2)
	if _, err := l.Append(Mutation{AppendRows: [][]float64{{1, 2}, {3, 4}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Mutation{
		Updates: []matrix.Cell{{Row: 0, Col: 0, Value: 1}},
		Retract: []matrix.CellRef{{Row: 1, Col: 1}, {Row: 2, Col: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	if d := l.DeltaSince(0); d.NewRows != 2 || d.ChangedCells != 3 {
		t.Fatalf("DeltaSince(0) = %+v", d)
	}
	if d := l.DeltaSince(1); d.NewRows != 0 || d.ChangedCells != 3 {
		t.Fatalf("DeltaSince(1) = %+v", d)
	}
	if d := l.DeltaSince(2); d.NewRows != 0 || d.ChangedCells != 0 {
		t.Fatalf("DeltaSince(head) = %+v", d)
	}
}
