// Package stream is the deltastream ingestion subsystem: a versioned,
// append-only mutation log over a data matrix, built for live
// deployments whose matrices change continuously (the MovieLens
// scenario: new viewers arrive, ratings are revised or retracted).
//
// A Log records an ordered sequence of mutations — row appends, cell
// updates, cell retractions — each validated against the shape the
// matrix has at that point in the log and stamped with a version (the
// 1-based position in the log). The log is the unit of replay: a
// matrix at version v plus the entries after v reproduces the matrix
// at the head, bit for bit, which is what lets a coordinator
// reconstruct a patched matrix on a different backend from the
// original submission plus the recorded patches.
//
// Application goes through the internal/matrix streaming mutators
// (AppendRows, UpdateCells, MarkMissing), which keep the derived read
// caches — column-major mirror, missing-value bitsets — coherent
// surgically instead of rebuilding them, so ingesting a small delta
// into a large matrix costs O(delta), not O(matrix).
//
// The warm-start contract this package feeds: a FLOC checkpoint cut
// before the mutations, plus the row count the checkpoint was cut at
// (BaseRows for a fresh log), is everything internal/floc needs to
// re-seed phase 1 from the converged parent clustering and place the
// appended rows by best residue.
package stream

import (
	"fmt"
	"math"

	"deltacluster/internal/matrix"
)

// Mutation is one batch of matrix changes, applied atomically (all
// validated against the pre-mutation shape before any entry is
// written). A batch may carry any combination of the three kinds;
// application order within a batch is AppendRows, then Updates, then
// Retract — so a batch may update entries of rows it appends.
type Mutation struct {
	// AppendRows adds new object rows; each must have exactly Cols
	// entries, NaN marking missing.
	AppendRows [][]float64

	// Updates revises individual entries (NaN marks missing, same as
	// a retraction).
	Updates []matrix.Cell

	// Retract marks individual entries missing.
	Retract []matrix.CellRef
}

// empty reports whether the mutation changes nothing.
func (mu *Mutation) empty() bool {
	return len(mu.AppendRows) == 0 && len(mu.Updates) == 0 && len(mu.Retract) == 0
}

// Entry is one committed log record: a mutation and the version it
// produced.
type Entry struct {
	// Version is the 1-based log position; applying entries 1..v to
	// the base matrix yields the matrix at version v.
	Version int
	Mutation
}

// Log is the append-only mutation log of one matrix lineage. The zero
// value is unusable; construct with NewLog. A Log is not safe for
// concurrent use; callers serialize access (the service holds its
// store lock across Append).
type Log struct {
	baseRows int
	cols     int
	rows     int // row count after every committed entry
	entries  []Entry
}

// NewLog starts an empty log for a matrix currently shaped
// rows×cols.
func NewLog(rows, cols int) *Log {
	return &Log{baseRows: rows, cols: cols, rows: rows}
}

// BaseRows returns the row count the log started from — the shape the
// pre-mutation matrix (and any checkpoint cut on it) had.
func (l *Log) BaseRows() int { return l.baseRows }

// Rows returns the row count after every committed mutation.
func (l *Log) Rows() int { return l.rows }

// Cols returns the (immutable) column count.
func (l *Log) Cols() int { return l.cols }

// Version returns the head version: the number of committed entries.
func (l *Log) Version() int { return len(l.entries) }

// Entries returns the committed entries with Version > after, oldest
// first. The returned slice aliases the log's storage; callers must
// not mutate it.
func (l *Log) Entries(after int) []Entry {
	if after < 0 {
		after = 0
	}
	if after >= len(l.entries) {
		return nil
	}
	return l.entries[after:]
}

// validate checks a mutation against the log's current shape. Row
// references may point into rows the same mutation appends (appends
// apply first).
func (l *Log) validate(mu *Mutation) error {
	if mu.empty() {
		return fmt.Errorf("stream: empty mutation (no appends, updates or retractions)")
	}
	rows := l.rows + len(mu.AppendRows)
	for i, r := range mu.AppendRows {
		if len(r) != l.cols {
			return fmt.Errorf("stream: appended row %d has %d entries, want %d", i, len(r), l.cols)
		}
		for j, v := range r {
			if math.IsInf(v, 0) {
				return fmt.Errorf("stream: appended row %d entry %d is infinite", i, j)
			}
		}
	}
	for n, c := range mu.Updates {
		if c.Row < 0 || c.Row >= rows || c.Col < 0 || c.Col >= l.cols {
			return fmt.Errorf("stream: update %d references (%d, %d) out of %dx%d", n, c.Row, c.Col, rows, l.cols)
		}
		if math.IsInf(c.Value, 0) {
			return fmt.Errorf("stream: update %d value is infinite", n)
		}
	}
	for n, c := range mu.Retract {
		if c.Row < 0 || c.Row >= rows || c.Col < 0 || c.Col >= l.cols {
			return fmt.Errorf("stream: retraction %d references (%d, %d) out of %dx%d", n, c.Row, c.Col, rows, l.cols)
		}
	}
	return nil
}

// Append validates mu against the log's current shape and commits it,
// returning the new head version. The mutation is recorded verbatim
// (the log aliases the caller's slices; callers must not mutate them
// afterwards).
func (l *Log) Append(mu Mutation) (int, error) {
	if err := l.validate(&mu); err != nil {
		return 0, err
	}
	l.rows += len(mu.AppendRows)
	l.entries = append(l.entries, Entry{Version: len(l.entries) + 1, Mutation: mu})
	return len(l.entries), nil
}

// ApplyTo replays every committed entry with Version > from onto m,
// which must have the shape the log had at version from. It returns
// the head version. Replay is deterministic: the same log applied to
// the same base matrix produces bit-identical entries, which is what
// lets a warm-started recluster on a reconstructed matrix match one
// on the original.
func (l *Log) ApplyTo(m *matrix.Matrix, from int) (int, error) {
	if from < 0 || from > len(l.entries) {
		return 0, fmt.Errorf("stream: replay from version %d of %d", from, len(l.entries))
	}
	wantRows := l.baseRows
	for _, e := range l.entries[:from] {
		wantRows += len(e.AppendRows)
	}
	if m.Rows() != wantRows || m.Cols() != l.cols {
		return 0, fmt.Errorf("stream: matrix is %dx%d, log at version %d wants %dx%d",
			m.Rows(), m.Cols(), from, wantRows, l.cols)
	}
	for _, e := range l.entries[from:] {
		if err := applyMutation(m, &e.Mutation); err != nil {
			return 0, fmt.Errorf("stream: replaying version %d: %w", e.Version, err)
		}
	}
	return len(l.entries), nil
}

// applyMutation applies one batch to m through the surgical matrix
// mutators.
func applyMutation(m *matrix.Matrix, mu *Mutation) error {
	if len(mu.AppendRows) > 0 {
		if err := m.AppendRows(mu.AppendRows); err != nil {
			return err
		}
	}
	if len(mu.Updates) > 0 {
		if err := m.UpdateCells(mu.Updates); err != nil {
			return err
		}
	}
	if len(mu.Retract) > 0 {
		if err := m.MarkMissing(mu.Retract); err != nil {
			return err
		}
	}
	return nil
}

// Apply validates mu against the log's current shape, commits it, and
// applies it to m (which must be at the log's pre-append head shape).
// This is the service's PATCH path: one call keeps the log and the
// live matrix in lockstep. It returns the new head version.
func (l *Log) Apply(m *matrix.Matrix, mu Mutation) (int, error) {
	if m.Rows() != l.rows || m.Cols() != l.cols {
		return 0, fmt.Errorf("stream: matrix is %dx%d, log head is %dx%d", m.Rows(), m.Cols(), l.rows, l.cols)
	}
	v, err := l.Append(mu)
	if err != nil {
		return 0, err
	}
	if err := applyMutation(m, &l.entries[v-1].Mutation); err != nil {
		// The matrix mutators validate before writing and the log
		// validated first, so this is unreachable short of a caller
		// violating the exclusive-writer contract; surface it loudly.
		return 0, fmt.Errorf("stream: applying committed version %d: %w", v, err)
	}
	return v, nil
}

// Delta summarizes the mutations committed after version from — the
// quantities a warm-start policy wants: how many rows arrived and how
// many existing cells changed.
type Delta struct {
	// NewRows counts rows appended after version from.
	NewRows int
	// ChangedCells counts updates plus retractions after version from
	// (including those that target rows appended in the same window).
	ChangedCells int
}

// DeltaSince summarizes the committed entries with Version > from.
func (l *Log) DeltaSince(from int) Delta {
	var d Delta
	if from < 0 {
		from = 0
	}
	if from > len(l.entries) {
		return d
	}
	for _, e := range l.entries[from:] {
		d.NewRows += len(e.AppendRows)
		d.ChangedCells += len(e.Updates) + len(e.Retract)
	}
	return d
}
