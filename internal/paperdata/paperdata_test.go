package paperdata

import (
	"testing"

	"deltacluster/internal/cluster"
)

func TestFigure1Vectors(t *testing.T) {
	m := Figure1Vectors()
	if m.Rows() != 3 || m.Cols() != 5 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	// d2 − d1 = 10 everywhere; d3 − d2 = 100 everywhere.
	for j := 0; j < 5; j++ {
		if m.Get(1, j)-m.Get(0, j) != 10 {
			t.Errorf("col %d: d2-d1 = %v", j, m.Get(1, j)-m.Get(0, j))
		}
		if m.Get(2, j)-m.Get(1, j) != 100 {
			t.Errorf("col %d: d3-d2 = %v", j, m.Get(2, j)-m.Get(1, j))
		}
	}
}

func TestFigure4MatrixLabels(t *testing.T) {
	m := Figure4Matrix()
	if m.Rows() != 10 || m.Cols() != 5 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	if m.RowLabels[1] != "VPS8" || m.ColLabels[2] != "CH1D" {
		t.Errorf("labels wrong: %v %v", m.RowLabels, m.ColLabels)
	}
	// Spot values from the paper's Figure 4(a).
	if m.Get(0, 0) != 4392 || m.Get(9, 2) != 33 {
		t.Error("matrix values do not match Figure 4(a)")
	}
}

func TestFigure4ClusterIsPerfect(t *testing.T) {
	m := Figure4Matrix()
	if r := cluster.ResidueOf(m, Figure4ClusterRows, Figure4ClusterCols); r != 0 {
		t.Errorf("Figure 4(b) residue = %v, want exactly 0", r)
	}
}

func TestFigure6Matrix(t *testing.T) {
	m := Figure6Matrix()
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	c1 := cluster.FromSpec(m, Figure6Cluster1Rows, Figure6Cluster1Cols)
	c2 := cluster.FromSpec(m, Figure6Cluster2Rows, Figure6Cluster2Cols)
	if c1.Volume() != 4 || c2.Volume() != 6 {
		t.Errorf("volumes %d, %d; want 4, 6", c1.Volume(), c2.Volume())
	}
}

func TestFigure3Sparsity(t *testing.T) {
	a, b := Figure3a(), Figure3b()
	if a.SpecifiedCount() != 6 {
		t.Errorf("Figure 3(a) specified = %d, want 6", a.SpecifiedCount())
	}
	if b.SpecifiedCount() != 9 {
		t.Errorf("Figure 3(b) specified = %d, want 9", b.SpecifiedCount())
	}
}
