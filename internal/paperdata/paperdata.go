// Package paperdata holds the exact worked examples from the paper so
// that tests, examples and documentation can refer to them by name:
// the three shifted vectors of Figure 1, the yeast microarray excerpt
// of Figure 4(a) with the perfect δ-cluster of Figure 4(b), and the
// 3×4 matrix of Figure 6 used to illustrate actions and gains.
package paperdata

import (
	"math"

	"deltacluster/internal/matrix"
)

// nanValue marks missing entries in the reconstructed figures.
var nanValue = math.NaN()

// Figure1Vectors returns the three coherent vectors of Figure 1:
// pairwise distances are large, yet each is a constant shift of the
// others, so together they form a perfect (zero-residue) δ-cluster.
func Figure1Vectors() *matrix.Matrix {
	m, err := matrix.NewFromRows([][]float64{
		{1, 5, 23, 12, 20},
		{11, 15, 33, 22, 30},
		{111, 115, 133, 122, 130},
	})
	if err != nil {
		panic(err)
	}
	m.RowLabels = []string{"d1", "d2", "d3"}
	m.ColLabels = []string{"a1", "a2", "a3", "a4", "a5"}
	return m
}

// YeastGenes and YeastConditions label Figure 4(a)'s 10×5 microarray
// excerpt.
var (
	YeastGenes      = []string{"CTFC3", "VPS8", "EFB1", "SSA1", "FUN14", "SPO7", "MDM10", "CYS3", "DEP1", "NTG1"}
	YeastConditions = []string{"CH1I", "CH1B", "CH1D", "CH2I", "CH2B"}
)

// Figure4Matrix returns the 10-gene × 5-condition microarray excerpt
// of Figure 4(a).
func Figure4Matrix() *matrix.Matrix {
	m, err := matrix.NewFromRows([][]float64{
		{4392, 284, 4108, 280, 228},
		{401, 281, 120, 275, 298},
		{318, 280, 37, 277, 215},
		{401, 292, 109, 580, 238},
		{2857, 285, 2576, 271, 226},
		{228, 290, 48, 285, 224},
		{538, 272, 266, 277, 236},
		{322, 288, 41, 278, 219},
		{312, 272, 40, 273, 232},
		{329, 296, 33, 274, 228},
	})
	if err != nil {
		panic(err)
	}
	m.RowLabels = append([]string(nil), YeastGenes...)
	m.ColLabels = append([]string(nil), YeastConditions...)
	return m
}

// Figure4ClusterRows and Figure4ClusterCols identify the perfect
// δ-cluster of Figure 4(b): genes {VPS8, EFB1, CYS3} on conditions
// {CH1I, CH1D, CH2B}. Its volume is 9 and its residue is exactly 0.
var (
	Figure4ClusterRows = []int{1, 2, 7} // VPS8, EFB1, CYS3
	Figure4ClusterCols = []int{0, 2, 4} // CH1I, CH1D, CH2B
)

// Figure6Matrix returns the 3×4 matrix of Figure 6 used to work
// through actions and gains. Cluster 1 holds rows {0,1} × cols {0,1};
// cluster 2 holds rows {1,2} × cols {0,1,2}.
func Figure6Matrix() *matrix.Matrix {
	m, err := matrix.NewFromRows([][]float64{
		{3, 1, 2, 2},
		{1, 1, 3, 3},
		{4, 2, 0, 4},
	})
	if err != nil {
		panic(err)
	}
	return m
}

// Figure6Cluster1 and Figure6Cluster2 give the worked example's two
// cluster memberships.
var (
	Figure6Cluster1Rows = []int{0, 1}
	Figure6Cluster1Cols = []int{0, 1}
	Figure6Cluster2Rows = []int{1, 2}
	Figure6Cluster2Cols = []int{0, 1, 2}
)

// Figure3a and Figure3b return the missing-value examples of Figure 3:
// with α = 0.6 the first is too sparse to be a δ-cluster and the
// second qualifies.
func Figure3a() *matrix.Matrix {
	nan := nanValue
	m, err := matrix.NewFromRows([][]float64{
		{1, nan, 3, nan},
		{nan, 4, nan, 5},
		{3, nan, 4, nan},
	})
	if err != nil {
		panic(err)
	}
	return m
}

func Figure3b() *matrix.Matrix {
	nan := nanValue
	m, err := matrix.NewFromRows([][]float64{
		{1, nan, 3, 3},
		{3, 4, 5, nan},
		{nan, 3, 4, 4},
	})
	if err != nil {
		panic(err)
	}
	return m
}
