package floc

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"testing"

	"deltacluster/internal/matrix"
)

// warmWorkerSweep is the worker-count sweep the warm-start equivalence
// suite runs under: the ISSUE-mandated {1, 2, GOMAXPROCS}.
func warmWorkerSweep() []int {
	sweep := []int{1, 2}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 2 {
		sweep = append(sweep, n)
	}
	return sweep
}

// warmTestConfig is the shared configuration of the suite. Seed and
// shape are fixed so the parent, the cold rerun and the warm rerun all
// hash the same configSum. Seeding is random (the paper's phase 1),
// not anchored: anchored seeding lands planted matrices at the optimum
// before phase 2 runs, and the warm-vs-cold iteration contract needs
// cold runs that actually pay discovery iterations.
func warmTestConfig(workers int) Config {
	cfg := DefaultConfig(4, 10)
	cfg.Seed = 7
	cfg.SeedMode = SeedRandom
	cfg.Workers = workers
	return cfg
}

// warmTestMatrix generates the suite's base matrix: large enough that
// a cold random-seeded run pays several discovery iterations.
func warmTestMatrix(t testing.TB, seed int64) *matrix.Matrix {
	t.Helper()
	return plantedMissingMatrix(t, seed, 200, 18, 4, 50, 0.03)
}

// plantDelta applies a small deterministic mutation batch to m — one
// appended row built by perturbing an existing row, one cell update,
// one retraction — and returns the pre-mutation row count. This is the
// "small planted delta" of the equivalence suite: small relative to
// the matrix, exercising all three mutation kinds.
func plantDelta(t testing.TB, m *matrix.Matrix) int {
	t.Helper()
	parentRows := m.Rows()
	row := make([]float64, m.Cols())
	for j := 0; j < m.Cols(); j++ {
		row[j] = m.Get(5, j) + 0.01
	}
	if err := m.AppendRows([][]float64{row}); err != nil {
		t.Fatalf("AppendRows: %v", err)
	}
	update := matrix.Cell{Row: 2, Col: 3, Value: m.Get(2, 3) + 0.05}
	if math.IsNaN(update.Value) {
		update.Value = 1.5 // perturbing a missing entry: give it a value
	}
	if err := m.UpdateCells([]matrix.Cell{update}); err != nil {
		t.Fatalf("UpdateCells: %v", err)
	}
	if err := m.MarkMissing([]matrix.CellRef{{Row: 8, Col: 1}}); err != nil {
		t.Fatalf("MarkMissing: %v", err)
	}
	return parentRows
}

// TestWarmStartEmptyDeltaBitIdentical is the deltastream equivalence
// guarantee: a warm start whose matrix has not changed since the
// parent's final checkpoint produces a bit-identical fingerprint to
// the cold run — every residue ulp, counter, trace entry and
// membership — at every worker count in the sweep.
func TestWarmStartEmptyDeltaBitIdentical(t *testing.T) {
	m := warmTestMatrix(t, 1)
	wantFp := ""
	for _, w := range warmWorkerSweep() {
		w := w
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			cfg := warmTestConfig(w)
			cold, err := RunWithOptions(context.Background(), m, cfg, RunOptions{KeepFinalCheckpoint: true})
			if err != nil {
				t.Fatal(err)
			}
			if cold.FinalCheckpoint == nil {
				t.Fatal("cold run kept no final checkpoint (no improving iteration?)")
			}
			coldFp := fingerprint(cold)
			if wantFp == "" {
				wantFp = coldFp
			} else if coldFp != wantFp {
				t.Fatalf("cold fingerprint diverged across worker counts")
			}
			warm, err := RunWithOptions(context.Background(), m, cfg, RunOptions{
				WarmStart: &WarmStart{Checkpoint: cold.FinalCheckpoint},
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := fingerprint(warm); got != coldFp {
				t.Fatalf("warm start with empty delta diverged from cold run:\n--- cold\n%s--- warm\n%s", coldFp, got)
			}
		})
	}
}

// TestWarmStartPlantedDeltaFewerIterations pins the other half of the
// contract: after a small planted delta, warm-starting from the
// parent's final checkpoint re-converges in strictly fewer improving
// iterations than a cold run on the same mutated matrix, and the warm
// trajectory itself is bit-identical at every worker count.
func TestWarmStartPlantedDeltaFewerIterations(t *testing.T) {
	base := warmTestMatrix(t, 1)
	parent, err := RunWithOptions(context.Background(), base, warmTestConfig(1), RunOptions{KeepFinalCheckpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	ck := parent.FinalCheckpoint
	if ck == nil {
		t.Fatal("parent kept no final checkpoint")
	}

	mutated := base.Clone()
	parentRows := plantDelta(t, mutated)

	warmFp := ""
	for _, w := range warmWorkerSweep() {
		w := w
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			cfg := warmTestConfig(w)
			cold, err := Run(mutated, cfg)
			if err != nil {
				t.Fatal(err)
			}
			warm, err := RunWithOptions(context.Background(), mutated, cfg, RunOptions{
				WarmStart: &WarmStart{Checkpoint: ck, ParentRows: parentRows},
			})
			if err != nil {
				t.Fatal(err)
			}
			if warm.Iterations >= cold.Iterations {
				t.Fatalf("warm start took %d iterations, cold run %d — warm must be strictly fewer",
					warm.Iterations, cold.Iterations)
			}
			fp := fingerprint(warm)
			if warmFp == "" {
				warmFp = fp
			} else if fp != warmFp {
				t.Fatalf("warm trajectory diverged across worker counts")
			}
		})
	}
}

// TestWarmStartBoundedIterationsProperty is the bounded-iteration
// property test across seeds: for every generated base matrix and its
// planted delta, the warm restart never needs more improving
// iterations than the cold run on the mutated matrix, and stays under
// a small absolute budget — re-convergence after a small delta costs a
// few iterations, not a full optimization.
func TestWarmStartBoundedIterationsProperty(t *testing.T) {
	const warmBudget = 8
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			base := warmTestMatrix(t, seed)
			cfg := warmTestConfig(1)
			applyEnvWorkers(t, &cfg)
			parent, err := RunWithOptions(context.Background(), base, cfg, RunOptions{KeepFinalCheckpoint: true})
			if err != nil {
				t.Fatal(err)
			}
			if parent.FinalCheckpoint == nil {
				t.Skip("parent converged without an improving iteration")
			}
			mutated := base.Clone()
			parentRows := plantDelta(t, mutated)
			cold, err := Run(mutated, cfg)
			if err != nil {
				t.Fatal(err)
			}
			warm, err := RunWithOptions(context.Background(), mutated, cfg, RunOptions{
				WarmStart: &WarmStart{Checkpoint: parent.FinalCheckpoint, ParentRows: parentRows},
			})
			if err != nil {
				t.Fatal(err)
			}
			if warm.Iterations > cold.Iterations {
				t.Errorf("warm start took %d iterations, cold run %d", warm.Iterations, cold.Iterations)
			}
			if warm.Iterations > warmBudget {
				t.Errorf("warm start took %d iterations, budget %d", warm.Iterations, warmBudget)
			}
		})
	}
}

// TestWarmStartValidation exercises the refusal paths: mismatched
// configuration, memberships beyond the claimed parent rows, bogus
// ParentRows, a missing checkpoint, and the Resume/WarmStart mutual
// exclusion.
func TestWarmStartValidation(t *testing.T) {
	m := warmTestMatrix(t, 2)
	cfg := warmTestConfig(1)
	parent, err := RunWithOptions(context.Background(), m, cfg, RunOptions{KeepFinalCheckpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	ck := parent.FinalCheckpoint
	if ck == nil {
		t.Fatal("parent kept no final checkpoint")
	}
	grown := m.Clone()
	if err := grown.AppendRows([][]float64{make([]float64, m.Cols())}); err != nil {
		t.Fatal(err)
	}

	if _, err := RunWithOptions(context.Background(), grown, cfg, RunOptions{
		Resume:    ck,
		WarmStart: &WarmStart{Checkpoint: ck},
	}); err == nil {
		t.Error("Resume+WarmStart accepted")
	}
	if _, err := RunWithOptions(context.Background(), grown, cfg, RunOptions{
		WarmStart: &WarmStart{},
	}); err == nil {
		t.Error("WarmStart without checkpoint accepted")
	}
	badCfg := cfg
	badCfg.Seed = cfg.Seed + 1
	if _, err := RunWithOptions(context.Background(), grown, badCfg, RunOptions{
		WarmStart: &WarmStart{Checkpoint: ck},
	}); err == nil {
		t.Error("warm start under a different seed accepted")
	}
	if _, err := RunWithOptions(context.Background(), grown, cfg, RunOptions{
		WarmStart: &WarmStart{Checkpoint: ck, ParentRows: grown.Rows() + 5},
	}); err == nil {
		t.Error("ParentRows beyond the matrix accepted")
	}
	// Claiming fewer parent rows than the checkpoint's memberships
	// reference must be rejected: the memberships would dangle.
	if _, err := RunWithOptions(context.Background(), grown, cfg, RunOptions{
		WarmStart: &WarmStart{Checkpoint: ck, ParentRows: 1},
	}); err == nil {
		t.Error("ParentRows below the checkpoint's row references accepted")
	}
}
