package floc

import (
	"testing"
	"testing/quick"

	"deltacluster/internal/cluster"
	"deltacluster/internal/synth"
)

// Property: a completed run always returns exactly K structurally
// valid clusters — member indices in range, aggregates consistent
// with a from-scratch rebuild — for arbitrary seeds and modest
// configurations. This guards the engine's incremental bookkeeping
// (checkpoint/restore/replay) against drift bugs.
func TestRunInvariantsProperty(t *testing.T) {
	ds, err := synth.Generate(synth.Config{
		Rows: 150, Cols: 20, NumClusters: 3,
		VolumeMean: 80, VolumeVariance: 0, RowColRatio: 6,
		TargetResidue: 4,
	}, 99)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, rawOrder, rawMode uint8) bool {
		cfg := DefaultConfig(4, 12)
		cfg.Seed = seed
		cfg.Order = Order(rawOrder % 3)
		cfg.SeedMode = SeedMode(rawMode % 3)
		cfg.MaxIterations = 15
		res, err := Run(ds.Matrix, cfg)
		if err != nil {
			return false
		}
		if len(res.Clusters) != 4 {
			return false
		}
		for _, c := range res.Clusters {
			spec := c.Spec()
			for _, i := range spec.Rows {
				if i < 0 || i >= ds.Matrix.Rows() {
					return false
				}
			}
			for _, j := range spec.Cols {
				if j < 0 || j >= ds.Matrix.Cols() {
					return false
				}
			}
			rebuilt := cluster.FromSpec(ds.Matrix, spec.Rows, spec.Cols)
			if rebuilt.Volume() != c.Volume() {
				return false
			}
			d := rebuilt.Residue() - c.Residue()
			if d < -1e-6 || d > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// The iteration's checkpoint/replay must leave the engine bit-exact
// when an iteration fails to improve: two consecutive runs with
// MaxIterations 1 and 2 on a workload whose second iteration cannot
// improve should agree.
func TestNoImprovementLeavesStateIntact(t *testing.T) {
	ds, err := synth.Generate(synth.Config{
		Rows: 100, Cols: 15, NumClusters: 2,
		VolumeMean: 60, VolumeVariance: 0, RowColRatio: 5,
		TargetResidue: 2,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(3, 8)
	cfg.Seed = 5
	cfg.MaxIterations = 200 // run to natural termination
	res, err := Run(ds.Matrix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Rerun with the iteration budget capped exactly at the observed
	// count: same outcome (the final non-improving iteration must not
	// have leaked state).
	cfg2 := cfg
	cfg2.MaxIterations = res.Iterations
	if cfg2.MaxIterations == 0 {
		cfg2.MaxIterations = 1 // Run requires ≥ 1; a no-op iteration must still be harmless
	}
	res2, err := Run(ds.Matrix, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgResidue != res2.AvgResidue {
		t.Errorf("capped rerun differs: %v vs %v", res.AvgResidue, res2.AvgResidue)
	}
}

// Blocked actions must never fire: with everything frozen by an
// impossible occupancy threshold on a fully-specified matrix, the
// cluster membership can still change (insertions keep occupancy 1),
// but no cluster may ever violate the constraint.
func TestImpossibleOccupancyNeverViolated(t *testing.T) {
	ds, err := synth.Generate(synth.Config{
		Rows: 80, Cols: 12, NumClusters: 1,
		VolumeMean: 40, VolumeVariance: 0, RowColRatio: 4,
		TargetResidue: 2, MissingFraction: 0.3,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(3, 10)
	cfg.Seed = 2
	cfg.Constraints.Occupancy = 0.95
	res, err := Run(ds.Matrix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Clusters {
		if !c.SatisfiesOccupancy(0.95) {
			t.Errorf("cluster %d violates α=0.95 with 30%% missing data", i)
		}
	}
}
