package floc

import (
	"math"
	"sort"

	"deltacluster/internal/cluster"
	"deltacluster/internal/matrix"
	"deltacluster/internal/stats"
)

// anchoredSeeds implements SeedAnchored (see the SeedMode docs): it
// proposes candidate clusters from random row pairs using the
// constant-difference property of shifting coherence, scores them with
// the run's cost function, and returns the best k mutually distinct
// candidates, topping up with random seeds if fewer qualify.
func anchoredSeeds(m *matrix.Matrix, cfg *Config, rng *stats.RNG, costOf func(cl *cluster.Cluster) float64) []*cluster.Cluster {
	attempts := cfg.SeedAttempts
	if attempts <= 0 {
		attempts = 100 * cfg.K
	}
	delta := cfg.MaxResidue
	if delta <= 0 {
		// ResidueGain runs have no δ; a coherence tolerance is still
		// needed to carve candidate seeds. Use a small fraction of the
		// matrix value spread.
		delta = valueSpread(m) / 20
	}
	minRows := maxInt(3, cfg.Constraints.MinRows)
	minCols := maxInt(3, cfg.Constraints.MinCols)

	type candidate struct {
		cl   *cluster.Cluster
		cost float64
	}
	var cands []candidate
	diffs := make([]float64, 0, m.Cols())
	offsets := make([]float64, 0, m.Cols())
	carveCols := make([]int, 0, m.Cols())
	carveRows := make([]int, 0, m.Rows())
	scr := newSeedScratch(m)
	for a := 0; a < attempts; a++ {
		i1 := rng.Intn(m.Rows())
		i2 := rng.Intn(m.Rows())
		if i1 == i2 {
			continue
		}
		row1 := m.RowView(i1)
		row2 := m.RowView(i2)

		// Columns where the pair's difference is near-constant: the
		// coherent attribute set of the pair. If the rows share a
		// δ-cluster, its columns form a tight clump in the sorted
		// difference values — anywhere in the range, so the clump is
		// located with a densest-window scan, not a median.
		diffs = diffs[:0]
		for j := 0; j < m.Cols(); j++ {
			if !math.IsNaN(row1[j]) && !math.IsNaN(row2[j]) {
				diffs = append(diffs, row1[j]-row2[j])
			}
		}
		if len(diffs) < minCols {
			continue
		}
		center, count := densestWindow(diffs, 2*delta)
		if count < minCols {
			continue
		}
		cols := carveCols[:0]
		for j := 0; j < m.Cols(); j++ {
			if math.IsNaN(row1[j]) || math.IsNaN(row2[j]) {
				continue
			}
			if math.Abs(row1[j]-row2[j]-center) <= 1.5*delta {
				cols = append(cols, j)
			}
		}
		if len(cols) < minCols {
			continue
		}

		// Rows coherent with the anchor on those columns: a row
		// qualifies when most of its offsets against the anchor clump
		// within 2δ of their densest window (a trimmed criterion, so a
		// few accidental columns in the carve cannot veto true rows).
		rows := carveRows[:0]
		need := maxInt(minCols, (2*len(cols)+2)/3)
		for r := 0; r < m.Rows(); r++ {
			rowR := m.RowView(r)
			offsets = offsets[:0]
			for _, j := range cols {
				if !math.IsNaN(rowR[j]) && !math.IsNaN(row1[j]) {
					offsets = append(offsets, rowR[j]-row1[j])
				}
			}
			if len(offsets) < need {
				continue
			}
			if _, c := densestWindow(offsets, 2*delta); c >= need {
				rows = append(rows, r)
			}
		}
		if len(rows) < minRows {
			continue
		}
		rows, cols = scr.refine(m, rows, cols, delta, minRows, minCols)
		if len(rows) < minRows || len(cols) < minCols {
			continue
		}
		cl := cluster.FromSpec(m, rows, cols)
		cands = append(cands, candidate{cl: cl, cost: costOf(cl)})
	}

	sort.Slice(cands, func(a, b int) bool { return cands[a].cost < cands[b].cost })

	// Greedily keep the best candidates that are not near-duplicates
	// (row-set overlap ≥ 2/3 of the smaller set counts as duplicate).
	// Negative-cost candidates are genuine finds; the rest are still
	// better-than-random starting points (phase 2 sheds them if not),
	// so they fill remaining slots before random fallback seeds do.
	clusters := make([]*cluster.Cluster, 0, cfg.K)
	for _, cand := range cands {
		if len(clusters) == cfg.K {
			break
		}
		dup := false
		for _, kept := range clusters {
			if rowOverlap(cand.cl, kept)*3 >= 2*minInt(cand.cl.NumRows(), kept.NumRows()) {
				dup = true
				break
			}
		}
		if !dup {
			clusters = append(clusters, cand.cl)
		}
	}

	// Top up with the paper's random seeds.
	for c := len(clusters); c < cfg.K; c++ {
		cl := cluster.New(m)
		pRow := cfg.seedRowProb(c)
		pCol := cfg.seedColProb(c)
		for i := 0; i < m.Rows(); i++ {
			if rng.Bool(pRow) {
				cl.AddRow(i)
			}
		}
		for j := 0; j < m.Cols(); j++ {
			if rng.Bool(pCol) {
				cl.AddCol(j)
			}
		}
		repairSeed(cl, m, cfg, rng)
		clusters = append(clusters, cl)
	}
	return clusters
}

// seedScratch holds the buffers candidate refinement reuses across the
// seeding loop's attempts. Refinement runs once per surviving attempt
// — hundreds of times per engine run — and its temporaries dominated
// the engine's allocation profile when allocated per call, so they are
// hoisted here and sized to the matrix once. Row offsets live in a
// matrix-row-indexed slice rather than the map a fresh-per-call
// implementation would use; entries for the current row set are zeroed
// before each fill, reproducing the map's zero-for-absent reads.
type seedScratch struct {
	colAdj []float64 // per-column mean adjustment for the current rows
	colCnt []int     // per-column member count behind colAdj
	rowOff []float64 // per-row robust offset, valid for the current rows
	devBuf []float64 // per-row deviation sort buffer
	cols   []int     // refined column set, reused across rounds and calls
	rows   []int     // refined row set, reused across rounds and calls
}

func newSeedScratch(m *matrix.Matrix) *seedScratch {
	return &seedScratch{
		colAdj: make([]float64, m.Cols()),
		colCnt: make([]int, m.Cols()),
		rowOff: make([]float64, m.Rows()),
		devBuf: make([]float64, 0, m.Cols()),
		cols:   make([]int, 0, m.Cols()),
		rows:   make([]int, 0, m.Rows()),
	}
}

// refineCandidate is the standalone form of seedScratch.refine for
// one-off callers (tests); the seeding loop reuses a single scratch.
func refineCandidate(m *matrix.Matrix, rows, cols []int, delta float64, minRows, minCols int) ([]int, []int) {
	return newSeedScratch(m).refine(m, rows, cols, delta, minRows, minCols)
}

// refine alternates two rounds of column and row re-selection over the
// *whole* matrix against the candidate's additive fit. The pair carve
// is noisy — accidental columns slip into the clump window and, at
// mild contrast, background columns can outnumber the true clump — but
// once an approximate row set exists, per-column and per-row mean
// absolute deviations from the two-way additive model separate members
// from background far more sharply than any pairwise statistic, so two
// rounds reach the coherent fixed point.
//
// The returned slices are backed by the scratch and stay valid only
// until the next refine call; callers keeping a result must copy it
// (cluster.FromSpec copies on construction).
func (scr *seedScratch) refine(m *matrix.Matrix, rows, cols []int, delta float64, minRows, minCols int) ([]int, []int) {
	for round := 0; round < 2; round++ {
		// Column adjustments from the current rows: c_j is column j's
		// mean over member rows relative to the overall level.
		colAdj := scr.colAdj
		colCnt := scr.colCnt
		clear(colAdj)
		clear(colCnt)
		grand, grandN := 0.0, 0
		for _, i := range rows {
			row := m.RowView(i)
			for j, v := range row {
				if math.IsNaN(v) {
					continue
				}
				colAdj[j] += v
				colCnt[j]++
			}
		}
		for j := range colAdj {
			if colCnt[j] > 0 {
				colAdj[j] /= float64(colCnt[j])
				grand += colAdj[j]
				grandN++
			}
		}
		if grandN == 0 {
			return nil, nil
		}
		level := grand / float64(grandN)
		for j := range colAdj {
			colAdj[j] -= level
		}

		// Row offsets against the current columns, computed robustly
		// (median) so a stray background column cannot poison them.
		// Rows whose columns are all missing keep offset 0, like the
		// absent map keys they once were.
		rowOffV := scr.rowOff
		for _, i := range rows {
			rowOffV[i] = 0
		}
		devBuf := scr.devBuf
		for _, i := range rows {
			row := m.RowView(i)
			devBuf = devBuf[:0]
			for _, j := range cols {
				if v := row[j]; !math.IsNaN(v) {
					devBuf = append(devBuf, v-colAdj[j])
				}
			}
			if len(devBuf) == 0 {
				continue
			}
			sort.Float64s(devBuf)
			rowOffV[i] = devBuf[len(devBuf)/2]
		}

		// Re-select columns first: per-column mean absolute deviation
		// from the rows' offsets. Junk columns admitted by the pair
		// carve are glaring here (background-sized deviation), and
		// they must go before rows are scored, or their deviation
		// would reject every true row. In round two cols aliases
		// scr.cols; the selection reads only rows and rowOffV, so
		// appending over the old set in place is safe.
		newCols := scr.cols[:0]
		for j := 0; j < m.Cols(); j++ {
			mean, n := 0.0, 0
			for _, i := range rows {
				if v := m.RowView(i)[j]; !math.IsNaN(v) {
					mean += v - rowOffV[i]
					n++
				}
			}
			if n < minRows || n*2 < len(rows) {
				continue
			}
			mean /= float64(n)
			dev := 0.0
			for _, i := range rows {
				if v := m.RowView(i)[j]; !math.IsNaN(v) {
					dev += math.Abs(v - rowOffV[i] - mean)
				}
			}
			if dev/float64(n) <= delta {
				newCols = append(newCols, j)
			}
		}
		if len(newCols) < minCols {
			return nil, nil
		}
		cols = newCols

		// Re-select rows on the refined columns: a row joins when its
		// offset-corrected mean absolute deviation is within δ. Like
		// newCols above, rows is not read here, so scr.rows can be
		// rebuilt in place.
		newRows := scr.rows[:0]
		for i := 0; i < m.Rows(); i++ {
			row := m.RowView(i)
			off, n := 0.0, 0
			for _, j := range cols {
				if v := row[j]; !math.IsNaN(v) {
					off += v - colAdj[j]
					n++
				}
			}
			if n < minCols {
				continue
			}
			off /= float64(n)
			dev := 0.0
			for _, j := range cols {
				if v := row[j]; !math.IsNaN(v) {
					dev += math.Abs(v - colAdj[j] - off)
				}
			}
			if dev/float64(n) <= delta {
				newRows = append(newRows, i)
			}
		}
		if len(newRows) < minRows {
			return nil, nil
		}
		rows = newRows
	}
	return rows, cols
}

// densestWindow finds the sliding window of the given width holding
// the most values of xs and returns the mean of the values inside it
// together with their count. xs is sorted in place. The empty slice
// yields (NaN, 0).
func densestWindow(xs []float64, width float64) (center float64, count int) {
	if len(xs) == 0 {
		return math.NaN(), 0
	}
	sort.Float64s(xs)
	bestLo, bestHi := 0, 1
	lo := 0
	for hi := 1; hi <= len(xs); hi++ {
		for xs[hi-1]-xs[lo] > width {
			lo++
		}
		if hi-lo > bestHi-bestLo {
			bestLo, bestHi = lo, hi
		}
	}
	sum := 0.0
	for _, v := range xs[bestLo:bestHi] {
		sum += v
	}
	return sum / float64(bestHi-bestLo), bestHi - bestLo
}

// valueSpread returns max−min over the specified entries of m.
func valueSpread(m *matrix.Matrix) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < m.Rows(); i++ {
		for _, v := range m.RowView(i) {
			if math.IsNaN(v) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi <= lo {
		return 1
	}
	return hi - lo
}

func rowOverlap(a, b *cluster.Cluster) int {
	n := 0
	for _, i := range a.Rows() {
		if b.HasRow(i) {
			n++
		}
	}
	return n
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
