package floc

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"testing"

	"deltacluster/internal/cluster"
	"deltacluster/internal/matrix"
)

// The gain-mode differential suite: GainIncremental replaces the
// decide phase's exact O(volume) rescans with aggregate arithmetic
// over delta-maintained residue masses. The suite proves the three
// claims that make the tier shippable:
//
//  1. Exact mode is untouched — the seed goldens replay bit-for-bit
//     with GainMode set explicitly (and TestGoldenKernelFingerprints
//     keeps pinning the default).
//  2. Incremental mode is deterministic: bit-identical fingerprints,
//     progress traces and checkpoint bytes across worker counts.
//  3. Incremental mode's estimates stay inside stated bounds: per
//     action against the exact gain (gainModeActionEpsilon), per run
//     against the exact run's final objective
//     (gainModeResidueSlack), across planted and noise corpora.
//
// CI's gain-mode-matrix leg reruns this file under
// FLOC_GAIN_MODE × FLOC_WORKERS (see envGainMode).

// envGainMode reads the FLOC_GAIN_MODE environment variable — the CI
// matrix knob for running the pipeline tests in this file under a
// fixed scoring tier. Unlike FLOC_WORKERS, it is consumed ONLY by
// this suite: applying it globally would flip exact-mode golden and
// differential tests into a different engine and void what they pin.
func envGainMode(t testing.TB) (GainMode, bool) {
	t.Helper()
	switch v := os.Getenv("FLOC_GAIN_MODE"); v {
	case "":
		return GainExact, false
	case "exact":
		return GainExact, true
	case "incremental":
		return GainIncremental, true
	default:
		t.Fatalf("FLOC_GAIN_MODE = %q, want exact | incremental", v)
		return GainExact, false
	}
}

// gainModeActionEpsilon bounds the relative error of one incremental
// gain estimate against the exact gain for the same action, measured
// at an anchored state (masses freshly refreshed — the only states the
// engine scores from, since every applied action re-anchors). The
// estimator shares approximateGain's convention: it scores the toggled
// item's own entries under the cluster's current bases and ignores the
// base shift induced on the remaining entries, so the error scales
// with how far a toggle moves the bases — and under SquaredMean the
// squaring amplifies that error further. The constant is an empirical
// envelope over the corpus below (worst observed ≈ 1.9, on the
// SquaredMean case) with ~2x headroom; a
// regression that widens the estimator's error (or breaks its
// re-anchoring) trips it. It is a ranking estimator's envelope, not a
// precision claim: the exact kernel rescores every applied action.
const gainModeActionEpsilon = 4.0

// gainModeResidueSlack bounds the end-to-end objective: the
// incremental run's final average residue may exceed the exact run's
// by at most this factor (plus an absolute floor for near-zero
// objectives). Incremental ranking explores a different action
// sequence, so per-run outcomes differ — on many workloads it lands
// *below* exact — but it must stay in the same quality regime.
const (
	gainModeResidueSlack = 1.5
	gainModeResidueFloor = 0.25
)

// gainModeCase is one cell of the differential corpus.
type gainModeCase struct {
	name string
	m    func(t *testing.T) *matrix.Matrix
	cfg  func() Config
}

// gainModeCases spans planted structure vs pure noise, dense vs
// missing-ridden data, both means and every action order.
func gainModeCases() []gainModeCase {
	base := func(k int, delta float64, order Order) Config {
		cfg := DefaultConfig(k, delta)
		cfg.SeedMode = SeedRandom
		cfg.Order = order
		cfg.Workers = 1
		cfg.Seed = 71
		return cfg
	}
	return []gainModeCase{
		{
			name: "planted/dense/fixed",
			m:    func(t *testing.T) *matrix.Matrix { return plantedMissingMatrix(t, 42, 120, 18, 3, 70, 0) },
			cfg:  func() Config { return base(3, 10, FixedOrder) },
		},
		{
			name: "planted/missing/random",
			m:    func(t *testing.T) *matrix.Matrix { return plantedMissingMatrix(t, 43, 120, 18, 3, 70, 0.15) },
			cfg:  func() Config { return base(3, 10, RandomOrder) },
		},
		{
			name: "planted/missing/weighted/squared",
			m:    func(t *testing.T) *matrix.Matrix { return plantedMissingMatrix(t, 44, 150, 24, 4, 90, 0.1) },
			cfg: func() Config {
				cfg := base(4, 30, WeightedRandomOrder)
				cfg.ResidueMean = cluster.SquaredMean
				return cfg
			},
		},
		{
			name: "noise/missing/fixed",
			m:    func(t *testing.T) *matrix.Matrix { return noiseMatrix(t, 45, 90, 20, 0.2) },
			cfg:  func() Config { return base(3, 5, FixedOrder) },
		},
		{
			name: "noise/dense/random",
			m:    func(t *testing.T) *matrix.Matrix { return noiseMatrix(t, 46, 80, 16, 0) },
			cfg:  func() Config { return base(2, 5, RandomOrder) },
		},
	}
}

// TestGainModeExactGoldenUnchanged replays one recorded golden case
// with GainMode set to GainExact explicitly and asserts the hashes
// still match the seed recording: introducing the incremental tier
// must not perturb a single exact-mode output bit, spelled out or
// defaulted.
func TestGainModeExactGoldenUnchanged(t *testing.T) {
	golden := readGoldenFile(t)
	gc := golden.Cases[0]
	var order Order
	switch gc.Order {
	case "fixed":
		order = FixedOrder
	case "random":
		order = RandomOrder
	case "weighted":
		order = WeightedRandomOrder
	}
	m := plantedMissingMatrix(t, 42, 120, 18, 3, 70, gc.Missing)
	cfg := goldenConfig(order)
	cfg.Seed = gc.Seed
	cfg.GainMode = GainExact
	cap := captureRun(t, m, cfg)
	fp, progress, _ := hashCapture(cap)
	if fp != gc.Fingerprint {
		t.Fatalf("explicit GainMode=exact diverged from the seed golden fingerprint\ngot\n%s", cap.fp)
	}
	if progress != gc.Progress {
		t.Fatal("explicit GainMode=exact diverged from the seed golden progress trace")
	}
}

// TestGainModeIncrementalWorkerDeterminism is claim 2: under
// GainIncremental, every worker count must reproduce the serial run's
// fingerprint, progress trace and checkpoint bytes exactly. The decide
// shadows carry the residue masses through Clone/CopyFrom, and the
// estimator reads only anchored pre-toggle state, so sharding must not
// change a bit.
func TestGainModeIncrementalWorkerDeterminism(t *testing.T) {
	for _, tc := range gainModeCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			m := tc.m(t)
			cfg := tc.cfg()
			cfg.GainMode = GainIncremental
			serial := captureRun(t, m, cfg)
			for _, w := range diffWorkerCounts(t) {
				cfg.Workers = w
				assertCapturesEqual(t, serial, captureRun(t, m, cfg), w)
			}
		})
	}
}

// TestGainModeBoundedResidueDrift is claim 3's end-to-end half: across
// the corpus, the incremental run's final objective stays within
// gainModeResidueSlack of the exact run's.
func TestGainModeBoundedResidueDrift(t *testing.T) {
	for _, tc := range gainModeCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			m := tc.m(t)
			exactCfg := tc.cfg()
			incrCfg := tc.cfg()
			incrCfg.GainMode = GainIncremental
			exact, err := Run(m, exactCfg)
			if err != nil {
				t.Fatal(err)
			}
			incr, err := Run(m, incrCfg)
			if err != nil {
				t.Fatal(err)
			}
			bound := gainModeResidueSlack*exact.AvgResidue + gainModeResidueFloor
			t.Logf("exact %.6f incremental %.6f (bound %.6f)", exact.AvgResidue, incr.AvgResidue, bound)
			if incr.AvgResidue > bound {
				t.Fatalf("incremental objective %.6f exceeds bound %.6f (exact %.6f)",
					incr.AvgResidue, bound, exact.AvgResidue)
			}
		})
	}
}

// gainDriftWorst records the single worst exact-vs-incremental action
// seen by the per-action drift sweep, so the failure message can name
// it precisely.
type gainDriftWorst struct {
	err          float64
	tc           string
	cluster, idx int
	isRow        bool
	incr, exact  float64
}

// TestGainModePerActionDrift is claim 3's per-action half, the
// bounded-drift satellite: at anchored states drawn from real runs,
// every candidate action's incremental gain must stay within
// gainModeActionEpsilon of the exact gain (relative to the gain
// scale), and within float round-off of approximateGain — the two
// tiers share the same estimator convention, differing only in where
// the mass term comes from. Failure prints the worst (cluster,
// action).
func TestGainModePerActionDrift(t *testing.T) {
	var w gainDriftWorst
	for _, tc := range gainModeCases() {
		m := tc.m(t)

		// Anchored mid-run states: the final clustering of a short
		// exact run, which newBareEngine rebuilds with fresh caches
		// (and, for the incremental engine, freshly refreshed masses).
		cfg := tc.cfg()
		cfg.MaxIterations = 2
		res, err := Run(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		specs := make([]cluster.Spec, len(res.Clusters))
		for c, cl := range res.Clusters {
			specs[c] = cl.Spec()
		}

		exactCfg := tc.cfg()
		eExact := newBareEngine(t, m, exactCfg, specs)
		incrCfg := tc.cfg()
		incrCfg.GainMode = GainIncremental
		eIncr := newBareEngine(t, m, incrCfg, specs)
		approxCfg := tc.cfg()
		approxCfg.ApproximateGain = true
		eApprox := newBareEngine(t, m, approxCfg, specs)
		for _, cl := range eIncr.clusters {
			cl.EnableResidueAggregates(incrCfg.ResidueMean)
		}

		check := func(isRow bool, idx, c int) {
			t.Helper()
			gExact := eExact.evalAction(isRow, idx, c)
			gIncr := eIncr.evalAction(isRow, idx, c)
			gApprox := eApprox.evalAction(isRow, idx, c)
			if math.IsInf(gExact, -1) || math.IsInf(gIncr, -1) || math.IsInf(gApprox, -1) {
				// The three engines share constraint state, so blocking
				// must agree exactly.
				if !(math.IsInf(gExact, -1) && math.IsInf(gIncr, -1) && math.IsInf(gApprox, -1)) {
					t.Fatalf("case %s cluster %d %s %d: blocking disagrees (exact %v incremental %v approx %v)",
						tc.name, c, axisName(isRow), idx, gExact, gIncr, gApprox)
				}
				return
			}
			// Same convention, anchored mass: incremental must agree
			// with approximateGain to round-off.
			if diff := math.Abs(gIncr - gApprox); diff > 1e-9*(1+math.Abs(gApprox)) {
				t.Fatalf("case %s cluster %d %s %d: incremental %.12g vs approximate %.12g — estimator conventions diverged",
					tc.name, c, axisName(isRow), idx, gIncr, gApprox)
			}
			relErr := math.Abs(gIncr-gExact) / (1 + math.Abs(gExact))
			if relErr > w.err {
				w = gainDriftWorst{err: relErr, tc: tc.name, cluster: c, idx: idx, isRow: isRow, incr: gIncr, exact: gExact}
			}
		}
		for c := range specs {
			for i := 0; i < m.Rows(); i++ {
				check(true, i, c)
			}
			for j := 0; j < m.Cols(); j++ {
				check(false, j, c)
			}
		}
	}
	t.Logf("worst per-action drift: %.4f (case %s cluster %d %s %d: incremental %.6f exact %.6f)",
		w.err, w.tc, w.cluster, axisName(w.isRow), w.idx, w.incr, w.exact)
	if w.err > gainModeActionEpsilon {
		t.Fatalf("per-action drift %.4f exceeds epsilon %.2f: case %s cluster %d %s %d (incremental %.6f, exact %.6f)",
			w.err, gainModeActionEpsilon, w.tc, w.cluster, axisName(w.isRow), w.idx, w.incr, w.exact)
	}
}

func axisName(isRow bool) string {
	if isRow {
		return "row"
	}
	return "col"
}

// TestGainModeCheckpointCrossResume: GainMode is excluded from the
// checkpoint's configSum (like Workers), because checkpoints are cut
// at iteration boundaries where the masses are refresh-exact — either
// mode's boundary state is a valid starting point for the other. A
// checkpoint written by an exact run must resume under incremental
// ranking and vice versa, and same-mode resume must stay bit-identical
// to the uninterrupted run.
func TestGainModeCheckpointCrossResume(t *testing.T) {
	m := plantedMissingMatrix(t, 42, 120, 18, 3, 70, 0.15)
	exactCfg := DefaultConfig(3, 10)
	exactCfg.SeedMode = SeedRandom
	exactCfg.Seed = 71
	exactCfg.Workers = 1
	incrCfg := exactCfg
	incrCfg.GainMode = GainIncremental

	exactFull, exactCks := captureCheckpoints(t, m, exactCfg)
	incrFull, incrCks := captureCheckpoints(t, m, incrCfg)
	if len(exactCks) == 0 || len(incrCks) == 0 {
		t.Fatal("runs produced no checkpoints; pick another seed")
	}

	// Same-mode resume: bit-identical to the uninterrupted run.
	resumed, err := RunWithOptions(context.Background(), m, incrCfg, RunOptions{Resume: incrCks[0]})
	if err != nil {
		t.Fatalf("incremental resume: %v", err)
	}
	if fingerprint(resumed) != fingerprint(incrFull) {
		t.Fatal("incremental-mode resume diverged from the uninterrupted incremental run")
	}

	// Cross-mode resume in both directions: accepted, and finishing in
	// the same quality regime as the target mode's own run.
	crossIncr, err := RunWithOptions(context.Background(), m, incrCfg, RunOptions{Resume: exactCks[len(exactCks)-1]})
	if err != nil {
		t.Fatalf("resuming an exact checkpoint under incremental ranking: %v", err)
	}
	crossExact, err := RunWithOptions(context.Background(), m, exactCfg, RunOptions{Resume: incrCks[len(incrCks)-1]})
	if err != nil {
		t.Fatalf("resuming an incremental checkpoint under exact ranking: %v", err)
	}
	for _, probe := range []struct {
		name string
		got  *Result
		ref  *Result
	}{
		{"exact→incremental", crossIncr, incrFull},
		{"incremental→exact", crossExact, exactFull},
	} {
		bound := gainModeResidueSlack*probe.ref.AvgResidue + gainModeResidueFloor
		if probe.got.AvgResidue > bound {
			t.Fatalf("%s resume finished at %.6f, outside bound %.6f", probe.name, probe.got.AvgResidue, bound)
		}
	}
}

// TestGainModeEnvPipeline is the test CI's gain-mode-matrix leg
// drives: a full pipeline in the FLOC_GAIN_MODE-selected tier (default
// incremental, the tier otherwise untouched by env sweeps) at the
// FLOC_WORKERS-selected worker count, asserting run-to-run bit
// determinism. Under -tags deltadebug it additionally proves every
// mass the run maintains against the from-scratch oracle.
func TestGainModeEnvPipeline(t *testing.T) {
	mode, ok := envGainMode(t)
	if !ok {
		mode = GainIncremental
	}
	m := plantedMissingMatrix(t, 42, 120, 18, 3, 70, 0.15)
	cfg := DefaultConfig(3, 10)
	cfg.SeedMode = SeedRandom
	cfg.Seed = 71
	cfg.GainMode = mode
	applyEnvWorkers(t, &cfg)
	first := captureRun(t, m, cfg)
	second := captureRun(t, m, cfg)
	assertCapturesEqual(t, first, second, cfg.Workers)
}

// readGoldenFile loads the recorded golden cases (shared with
// golden_test.go's harness).
func readGoldenFile(t *testing.T) goldenFile {
	t.Helper()
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	var golden goldenFile
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatalf("%s: %v", goldenPath, err)
	}
	if len(golden.Cases) == 0 {
		t.Fatal("golden file has no cases")
	}
	return golden
}
