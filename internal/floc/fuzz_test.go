package floc

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzLoadCheckpoint drives the DCKP decode path with adversarial
// bytes. Replication ships checkpoint encodings between deltaserve
// nodes, so a torn, truncated or outright hostile byte string reaches
// DecodeCheckpoint on a live backend; the contract is that it either
// returns a verified *Checkpoint or an error — it must never panic,
// never over-allocate from a forged length field, and never hand back
// unverified payload bytes.
//
// The corpus is seeded from a real converged-run checkpoint plus the
// systematic corruptions the unit tests cover one by one: truncated
// header, bad magic, unknown version, flipped checksum, oversized
// section lengths.
func FuzzLoadCheckpoint(f *testing.F) {
	m := resilienceTestMatrix(f)
	_, cks := captureCheckpoints(f, m, resilienceTestConfig(f))
	real, err := EncodeCheckpoint(cks[len(cks)-1])
	if err != nil {
		f.Fatal(err)
	}

	f.Add(real)
	f.Add([]byte{})
	f.Add([]byte("DCKP"))
	f.Add(real[:15])                           // truncated header
	f.Add(real[:len(real)/2])                  // truncated payload
	f.Add(append([]byte("JUNK"), real[4:]...)) // bad magic

	badVersion := append([]byte(nil), real...)
	binary.LittleEndian.PutUint32(badVersion[4:8], 99)
	f.Add(badVersion)

	badSum := append([]byte(nil), real...)
	badSum[len(badSum)-1] ^= 0xff
	f.Add(badSum)

	// Forge the payload-length field to a huge value: the decoder must
	// reject it as truncation, not trust it.
	hugeLen := append([]byte(nil), real...)
	binary.LittleEndian.PutUint64(hugeLen[8:16], 1<<60)
	f.Add(hugeLen)

	// Forge the trace-length collection header inside the payload
	// (offset 16 header + 7 fixed uint64 fields): an oversized count
	// must be bounded by the remaining payload, never allocated raw.
	hugeTrace := append([]byte(nil), real...)
	binary.LittleEndian.PutUint64(hugeTrace[16+7*8:16+8*8], 1<<50)
	f.Add(hugeTrace)

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := DecodeCheckpoint(data)
		if err != nil {
			if ck != nil {
				t.Fatalf("DecodeCheckpoint returned both a checkpoint and error %v", err)
			}
			return
		}
		// An accepted checkpoint passed magic, version and checksum
		// verification, so it must re-encode — and the re-encoding must
		// decode to the same logical checkpoint (the encoding is
		// canonical: equal checkpoints produce equal bytes).
		out, err := EncodeCheckpoint(ck)
		if err != nil {
			t.Fatalf("re-encoding accepted checkpoint: %v", err)
		}
		again, err := DecodeCheckpoint(out)
		if err != nil {
			t.Fatalf("decoding re-encoded checkpoint: %v", err)
		}
		out2, err := EncodeCheckpoint(again)
		if err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("re-encoding is not canonical:\n first %x\nsecond %x", out, out2)
		}
	})
}
