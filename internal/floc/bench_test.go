package floc

import (
	"fmt"
	"testing"
)

// benchEngine builds a phase-1-seeded engine over a 500×60 planted
// matrix with missing values — the decide phase then scores
// (500+60)·K candidate actions per call, the workload the parallel
// sharding targets. Seeding is deterministic, so every benchmark run
// decides over the identical state.
func benchEngine(b *testing.B, workers int) *engine {
	b.Helper()
	m := plantedMissingMatrix(b, 97, 500, 60, 5, 800, 0.05)
	cfg := Config{
		K: 5, GainPolicy: VolumeGain, MaxResidue: 3,
		SeedMode: SeedRandom, SeedProbability: 0.1,
		Constraints: Constraints{MinRows: 2, MinCols: 2, MaxOverlap: -1},
		Seed:        42, Workers: workers,
	}
	if err := cfg.validate(m.Rows(), m.Cols()); err != nil {
		b.Fatal(err)
	}
	return newEngine(m, &cfg)
}

// BenchmarkDecideAll measures one decide phase — the embarrassingly
// parallel (M+N)·K gain sweep — at several worker counts. decideAll
// never disturbs engine state (its evaluations reverse every toggle
// exactly), so back-to-back calls measure identical work, and the
// serial/parallel pair shares one engine per worker count. Results
// are recorded in BENCH_floc.json; cmd/benchdiff compares fresh runs
// against them.
func BenchmarkDecideAll(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := benchEngine(b, workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = e.decideAll()
			}
		})
	}
}

// BenchmarkIterate measures a full phase-2 iteration — decide, order,
// sequential apply with rollback, cache rebuild — the unit of work
// the run loop repeats until convergence. The apply loop is
// inherently serial (each action observes its predecessors), so this
// bounds the overall speedup parallel decide can deliver.
func BenchmarkIterate(b *testing.B) {
	e := benchEngine(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	best := e.costSum
	for i := 0; i < b.N; i++ {
		best, _ = e.iterate(best)
	}
}

// BenchmarkDecideAllIncremental is BenchmarkDecideAll under
// GainMode=incremental: the same (M+N)·K candidate sweep with every
// exact O(volume) rescan replaced by aggregate arithmetic — O(1)
// mass reads for removals, one O(row)/O(col) pass for insertions.
// The ratio of this benchmark to BenchmarkDecideAll is the tier's
// headline speedup; BENCH_floc.json records both and the CI benchdiff
// gate covers them.
func BenchmarkDecideAllIncremental(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := benchEngine(b, workers)
			e.cfg.GainMode = GainIncremental
			for _, cl := range e.clusters {
				cl.EnableResidueAggregates(e.cfg.ResidueMean)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = e.decideAll()
			}
		})
	}
}
