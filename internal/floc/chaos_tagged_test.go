//go:build deltachaos

package floc

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// TestChaosCrashThenResumeBitIdentical is the headline chaos drill: a
// run checkpointing every iteration is crashed (injected panic at the
// post-iteration fault point, before that iteration's checkpoint is
// cut — the worst moment for durability), then resumed from the last
// checkpoint that reached disk. The resumed run's fingerprint must be
// bit-identical to the uninterrupted run's.
func TestChaosCrashThenResumeBitIdentical(t *testing.T) {
	defer ChaosReset()
	m := resilienceTestMatrix(t)
	cfg := resilienceTestConfig(t)
	full, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if full.Iterations < 2 {
		t.Fatalf("workload converged in %d iterations; too easy to crash mid-run", full.Iterations)
	}

	path := filepath.Join(t.TempDir(), "run.ckpt")
	boom := errors.New("deltachaos: injected crash")
	iters := 0
	ChaosSet("post-iteration", func() error {
		iters++
		if iters == 2 {
			return boom
		}
		return nil
	})

	crashed := func() (recovered any) {
		defer func() { recovered = recover() }()
		_, _ = RunWithOptions(context.Background(), m, cfg, RunOptions{
			CheckpointEvery: 1,
			OnCheckpoint: func(ck *Checkpoint) error {
				return WriteCheckpointFile(path, ck)
			},
		})
		return nil
	}()
	if crashed == nil {
		t.Fatal("injected post-iteration fault did not crash the run")
	}
	if err, ok := crashed.(error); !ok || !errors.Is(err, boom) {
		t.Fatalf("run panicked with %v, want the injected fault", crashed)
	}
	ChaosReset()

	// The crash hit before iteration 2's checkpoint was cut, so the
	// file must hold iteration 1.
	ck, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Iterations != 1 {
		t.Fatalf("surviving checkpoint is from iteration %d, want 1", ck.Iterations)
	}
	resumed, err := RunWithOptions(context.Background(), m, cfg, RunOptions{Resume: ck})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprint(resumed), fingerprint(full); got != want {
		t.Fatalf("crash-then-resume diverged from uninterrupted run:\n--- uninterrupted\n%s--- resumed\n%s", want, got)
	}
}

// TestChaosTornWriteRejected forces a checkpoint write to land
// truncated and non-atomically (as a crash between write and rename
// would) and requires the reader to reject the torn file, then a
// healthy rewrite to succeed over it.
func TestChaosTornWriteRejected(t *testing.T) {
	defer ChaosReset()
	m := resilienceTestMatrix(t)
	_, cks := captureCheckpoints(t, m, resilienceTestConfig(t))
	ck := cks[len(cks)-1]
	path := filepath.Join(t.TempDir(), "run.ckpt")

	ChaosSet("checkpoint-write", func() error { return &TornWrite{Bytes: 24} })
	err := WriteCheckpointFile(path, ck)
	var torn *TornWrite
	if !errors.As(err, &torn) {
		t.Fatalf("torn write reported %v, want *TornWrite", err)
	}
	if _, err := ReadCheckpointFile(path); err == nil {
		t.Fatal("reader accepted a torn checkpoint")
	} else if !strings.Contains(err.Error(), "truncated") && !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("torn checkpoint rejected with %q, want truncation or checksum mentioned", err)
	}

	ChaosReset()
	if err := WriteCheckpointFile(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatalf("healthy rewrite over torn file not readable: %v", err)
	}
	if got.Iterations != ck.Iterations {
		t.Fatalf("rewritten checkpoint is from iteration %d, want %d", got.Iterations, ck.Iterations)
	}
}

// TestChaosPreApplyFaultPanicsHotPath proves the pre-apply fault point
// sits on the phase-2 hot path: an injected fault must surface as a
// panic carrying the injected error mid-iteration.
func TestChaosPreApplyFaultPanicsHotPath(t *testing.T) {
	defer ChaosReset()
	m := resilienceTestMatrix(t)
	boom := errors.New("deltachaos: injected apply fault")
	applies := 0
	ChaosSet("pre-apply", func() error {
		applies++
		if applies == 25 {
			return boom
		}
		return nil
	})

	recovered := func() (r any) {
		defer func() { r = recover() }()
		_, _ = Run(m, resilienceTestConfig(t))
		return nil
	}()
	if recovered == nil {
		t.Fatal("injected pre-apply fault did not crash the run")
	}
	if err, ok := recovered.(error); !ok || !errors.Is(err, boom) {
		t.Fatalf("run panicked with %v, want the injected fault", recovered)
	}
	if applies != 25 {
		t.Fatalf("fault fired after %d applies, want exactly 25", applies)
	}
}
