//go:build deltachaos

package floc

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// chaosEnabled gates the fault points. Build with -tags deltachaos to
// arm them; the release build compiles every fault point away (see
// chaos_off.go).
const chaosEnabled = true

// The engine exposes three named fault points:
//
//   - "pre-apply": immediately before a membership toggle in the
//     phase-2 hot path. A non-nil handler error panics the run there,
//     simulating a crash mid-iteration (between checkpoints).
//   - "post-iteration": after an improving iteration's boundary
//     rebuild, before the periodic checkpoint is cut. A non-nil error
//     panics, simulating a crash at the worst moment for durability —
//     work done, checkpoint not yet written.
//   - "checkpoint-write": inside WriteCheckpointFile. A handler may
//     return any error to fail the write, or a *TornWrite to make the
//     write land truncated and non-atomically, as a real crash between
//     write(2) and rename(2) would leave it.
var (
	chaosMu       sync.Mutex
	chaosHandlers = map[string]func() error{}
)

// ChaosSet installs handler at the named fault point, replacing any
// previous handler. The handler runs on the goroutine that hits the
// fault point; returning nil lets execution continue.
func ChaosSet(name string, handler func() error) {
	chaosMu.Lock()
	defer chaosMu.Unlock()
	chaosHandlers[name] = handler
}

// ChaosReset removes every installed fault handler. Chaos tests defer
// it so faults cannot leak across tests.
func ChaosReset() {
	chaosMu.Lock()
	defer chaosMu.Unlock()
	chaosHandlers = map[string]func() error{}
}

// TornWrite, returned by a "checkpoint-write" fault handler, makes the
// checkpoint land as a truncated prefix written directly to the final
// path — no temp file, no rename — modeling a crash mid-write on a
// filesystem without atomic rename in play.
type TornWrite struct {
	// Bytes is how many bytes of the encoding reach the disk. Values
	// beyond the encoding length are clamped.
	Bytes int
}

func (t *TornWrite) Error() string {
	return fmt.Sprintf("deltachaos: torn write after %d bytes", t.Bytes)
}

// chaos fires the named fault point and returns the handler's error
// (nil when no handler is installed).
func chaos(name string) error {
	chaosMu.Lock()
	h := chaosHandlers[name]
	chaosMu.Unlock()
	if h == nil {
		return nil
	}
	return h()
}

// chaosWriteFile gives the "checkpoint-write" fault point a chance to
// hijack a checkpoint write. It reports whether the write was handled
// (so the caller must not perform the real atomic write) and the error
// the caller should surface.
func chaosWriteFile(path string, data []byte) (bool, error) {
	err := chaos("checkpoint-write")
	if err == nil {
		return false, nil
	}
	var torn *TornWrite
	if errors.As(err, &torn) {
		n := torn.Bytes
		if n < 0 {
			n = 0
		}
		if n > len(data) {
			n = len(data)
		}
		if werr := os.WriteFile(path, data[:n], 0o644); werr != nil {
			return true, werr
		}
	}
	return true, err
}
