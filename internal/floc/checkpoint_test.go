package floc

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"deltacluster/internal/matrix"
	"deltacluster/internal/synth"
)

// resilienceTestMatrix generates the small synthetic workload the
// robustness tests (context, checkpoint, chaos) run FLOC over. Same
// shape as the determinism fingerprint test, so runs take several
// improving iterations.
func resilienceTestMatrix(t testing.TB) *matrix.Matrix {
	t.Helper()
	ds, err := synth.Generate(synth.Config{
		Rows: 120, Cols: 18, NumClusters: 3,
		VolumeMean: 70, VolumeVariance: 0, RowColRatio: 5,
		TargetResidue: 4,
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Matrix
}

func resilienceTestConfig(t testing.TB) Config {
	cfg := DefaultConfig(3, 10)
	cfg.Seed = 7
	// Random seeding leaves phase 2 real work to do (8 improving
	// iterations on this workload), so there are boundaries to
	// checkpoint, cancel at and crash between; anchored seeding would
	// converge before the first iteration.
	cfg.SeedMode = SeedRandom
	// The chaos and resilience drills run under the CI FLOC_WORKERS
	// matrix too: fault injection and crash/resume must hold at any
	// decide-phase worker count.
	applyEnvWorkers(t, &cfg)
	return cfg
}

// captureCheckpoints runs to convergence collecting the checkpoint of
// every iteration boundary.
func captureCheckpoints(t testing.TB, m *matrix.Matrix, cfg Config) (*Result, []*Checkpoint) {
	t.Helper()
	var cks []*Checkpoint
	res, err := RunWithOptions(context.Background(), m, cfg, RunOptions{
		CheckpointEvery: 1,
		OnCheckpoint: func(ck *Checkpoint) error {
			cks = append(cks, ck)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) == 0 {
		t.Fatal("run completed without a single improving iteration; workload too easy for checkpoint tests")
	}
	return res, cks
}

func TestCheckpointBinaryRoundTrip(t *testing.T) {
	m := resilienceTestMatrix(t)
	_, cks := captureCheckpoints(t, m, resilienceTestConfig(t))
	ck := cks[len(cks)-1]

	data, err := ck.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Checkpoint
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck, &got) {
		t.Fatalf("roundtrip mismatch:\nwrote %+v\nread  %+v", ck, &got)
	}

	again, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(data, again) {
		t.Fatal("encoding is not deterministic: re-encoding produced different bytes")
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	m := resilienceTestMatrix(t)
	_, cks := captureCheckpoints(t, m, resilienceTestConfig(t))
	ck := cks[0]

	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := WriteCheckpointFile(path, ck); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temporary file left behind: stat err = %v", err)
	}
	got, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck, got) {
		t.Fatalf("file roundtrip mismatch:\nwrote %+v\nread  %+v", ck, got)
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	m := resilienceTestMatrix(t)
	_, cks := captureCheckpoints(t, m, resilienceTestConfig(t))
	data, err := cks[0].MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"bad magic", func(d []byte) []byte { d[0] ^= 0xff; return d }, "bad magic"},
		{"unknown version", func(d []byte) []byte { d[4] = 99; return d }, "version"},
		{"flipped payload byte", func(d []byte) []byte { d[20] ^= 1; return d }, "checksum"},
		{"flipped checksum byte", func(d []byte) []byte { d[len(d)-1] ^= 1; return d }, "checksum"},
		{"truncated tail", func(d []byte) []byte { return d[:len(d)-10] }, "truncated"},
		{"truncated header", func(d []byte) []byte { return d[:10] }, "bad magic"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := tc.mutate(append([]byte(nil), data...))
			var ck Checkpoint
			err := ck.UnmarshalBinary(mutated)
			if err == nil {
				t.Fatal("corrupted checkpoint was accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestResumeFromEveryBoundaryBitIdentical is the core durability
// guarantee: resuming from ANY iteration boundary's checkpoint must
// finish with a determinism fingerprint bit-identical to the
// uninterrupted run's.
func TestResumeFromEveryBoundaryBitIdentical(t *testing.T) {
	m := resilienceTestMatrix(t)
	cfg := resilienceTestConfig(t)
	full, cks := captureCheckpoints(t, m, cfg)
	want := fingerprint(full)

	for _, ck := range cks {
		resumed, err := RunWithOptions(context.Background(), m, cfg, RunOptions{Resume: ck})
		if err != nil {
			t.Fatalf("resume from iteration %d: %v", ck.Iterations, err)
		}
		if got := fingerprint(resumed); got != want {
			t.Fatalf("resume from iteration %d diverged:\n--- uninterrupted\n%s--- resumed\n%s",
				ck.Iterations, want, got)
		}
	}
}

// TestResumeOutlivesIterationCap: a checkpoint from a MaxIterations-
// capped run resumes under a larger budget and matches the
// uninterrupted full run — the basis of the CI resume smoke test.
func TestResumeOutlivesIterationCap(t *testing.T) {
	m := resilienceTestMatrix(t)
	cfg := resilienceTestConfig(t)
	full, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if full.Iterations < 2 {
		t.Fatalf("workload converged in %d iterations; too easy to interrupt", full.Iterations)
	}

	capped := cfg
	capped.MaxIterations = 1
	_, cks := captureCheckpoints(t, m, capped)

	resumed, err := RunWithOptions(context.Background(), m, cfg, RunOptions{Resume: cks[len(cks)-1]})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprint(resumed), fingerprint(full); got != want {
		t.Fatalf("capped-then-resumed run diverged from uninterrupted run:\n--- uninterrupted\n%s--- resumed\n%s", want, got)
	}
}

func TestResumeRejectsMismatchedRun(t *testing.T) {
	m := resilienceTestMatrix(t)
	cfg := resilienceTestConfig(t)
	_, cks := captureCheckpoints(t, m, cfg)
	ck := cks[0]

	otherSeed := cfg
	otherSeed.Seed = 8
	if _, err := RunWithOptions(context.Background(), m, otherSeed, RunOptions{Resume: ck}); err == nil {
		t.Fatal("resume under a different seed was accepted")
	} else if !strings.Contains(err.Error(), "configuration") {
		t.Fatalf("error %q does not mention the configuration", err)
	}

	otherMatrix := m.Clone()
	otherMatrix.Set(0, 0, otherMatrix.Get(0, 0)+1)
	if _, err := RunWithOptions(context.Background(), otherMatrix, cfg, RunOptions{Resume: ck}); err == nil {
		t.Fatal("resume over a different matrix was accepted")
	} else if !strings.Contains(err.Error(), "matrix") {
		t.Fatalf("error %q does not mention the matrix", err)
	}
}
