package floc

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"deltacluster/internal/matrix"
)

// The differential harness: the parallel decide phase must be
// bit-identical to the serial engine — same fingerprints, same
// residue traces, same checkpoint bytes at every iteration boundary,
// same OnProgress observations — for every worker count, matrix,
// seeding mode, gain policy and action order. The sweep below is the
// proof obligation behind Config.Workers' documentation; run it under
// -race to also prove the sharding shares nothing mutable.

// runCapture is everything the determinism guarantee covers about one
// run: the result fingerprint, the marshalled checkpoint at every
// improving-iteration boundary, and the progress observations.
type runCapture struct {
	fp       string
	ckpts    [][]byte
	progress []Progress
}

// captureRun executes a run recording every externally observable
// determinism artifact.
func captureRun(t *testing.T, m *matrix.Matrix, cfg Config) runCapture {
	t.Helper()
	var cap runCapture
	opts := RunOptions{
		CheckpointEvery: 1,
		OnCheckpoint: func(ck *Checkpoint) error {
			b, err := ck.MarshalBinary()
			if err != nil {
				return err
			}
			cap.ckpts = append(cap.ckpts, b)
			return nil
		},
		OnProgress: func(p Progress) { cap.progress = append(cap.progress, p) },
	}
	res, err := RunWithOptions(t.Context(), m, cfg, opts)
	if err != nil {
		t.Fatalf("run (workers=%d): %v", cfg.Workers, err)
	}
	cap.fp = fingerprint(res)
	return cap
}

// diffWorkerCounts returns the parallel worker counts the harness
// compares against the serial reference: the fixed sweep {2, 3, 7},
// GOMAXPROCS (the production default), and the CI matrix leg's
// FLOC_WORKERS override when set.
func diffWorkerCounts(t *testing.T) []int {
	t.Helper()
	counts := []int{2, 3, 7}
	seen := map[int]bool{1: true, 2: true, 3: true, 7: true}
	if n := runtime.GOMAXPROCS(0); !seen[n] {
		counts = append(counts, n)
		seen[n] = true
	}
	if n := envWorkers(t); n > 0 && !seen[n] {
		counts = append(counts, n)
	}
	return counts
}

// assertCapturesEqual fails with a precise location when any artifact
// of a parallel run diverges from the serial reference.
func assertCapturesEqual(t *testing.T, serial, par runCapture, workers int) {
	t.Helper()
	if par.fp != serial.fp {
		t.Fatalf("workers=%d: result fingerprint diverged from serial\n--- serial\n%s--- workers=%d\n%s",
			workers, serial.fp, workers, par.fp)
	}
	if len(par.progress) != len(serial.progress) {
		t.Fatalf("workers=%d: %d progress observations, serial made %d",
			workers, len(par.progress), len(serial.progress))
	}
	for i := range par.progress {
		if par.progress[i] != serial.progress[i] {
			t.Fatalf("workers=%d: progress[%d] = %+v, serial %+v",
				workers, i, par.progress[i], serial.progress[i])
		}
	}
	if len(par.ckpts) != len(serial.ckpts) {
		t.Fatalf("workers=%d: %d checkpoints, serial wrote %d",
			workers, len(par.ckpts), len(serial.ckpts))
	}
	for i := range par.ckpts {
		if !bytes.Equal(par.ckpts[i], serial.ckpts[i]) {
			t.Fatalf("workers=%d: checkpoint bytes at boundary %d diverged from serial", workers, i+1)
		}
	}
}

// differentialCase is one cell of the sweep.
type differentialCase struct {
	name string
	m    func(t *testing.T) *matrix.Matrix
	cfg  func() Config
}

// differentialCases spans the engine's behavioural space: planted
// structure vs pure noise, dense vs missing-ridden data, random,
// anchored and mixed per-cluster seeding, both gain policies, exact
// and approximate gains, and the blocking constraints (occupancy,
// volume ceiling, overlap budget). Every case runs under all three
// action orders, and every case is tuned to need several improving
// iterations — a run that converges at the seed exercises exactly one
// decide phase and proves next to nothing.
func differentialCases() []differentialCase {
	return []differentialCase{
		{
			name: "planted/dense/random-seeding",
			m: func(t *testing.T) *matrix.Matrix {
				return plantedMissingMatrix(t, 42, 120, 18, 3, 70, 0)
			},
			cfg: func() Config {
				cfg := DefaultConfig(3, 10)
				cfg.SeedMode = SeedRandom
				return cfg
			},
		},
		{
			name: "planted/missing/random-seeding",
			m: func(t *testing.T) *matrix.Matrix {
				return plantedMissingMatrix(t, 7, 100, 15, 3, 60, 0.12)
			},
			cfg: func() Config {
				cfg := DefaultConfig(3, 8)
				cfg.SeedMode = SeedRandom
				return cfg
			},
		},
		{
			name: "planted/missing/mixed-seeding",
			m: func(t *testing.T) *matrix.Matrix {
				return plantedMissingMatrix(t, 11, 100, 15, 2, 55, 0.08)
			},
			cfg: func() Config {
				cfg := DefaultConfig(3, 8)
				cfg.SeedMode = SeedRandom
				cfg.SeedProbabilities = []float64{0.3, 0.1, 0.05}
				return cfg
			},
		},
		{
			name: "noise/missing/anchored-seeding",
			m: func(t *testing.T) *matrix.Matrix {
				return noiseMatrix(t, 9, 70, 13, 0.1)
			},
			cfg: func() Config {
				cfg := DefaultConfig(3, 7)
				cfg.SeedMode = SeedAnchored
				return cfg
			},
		},
		{
			name: "noise/missing/residue-gain",
			m: func(t *testing.T) *matrix.Matrix {
				return noiseMatrix(t, 5, 50, 12, 0.15)
			},
			cfg: func() Config {
				cfg := DefaultConfig(2, 0)
				cfg.GainPolicy = ResidueGain
				cfg.SeedMode = SeedRandom
				cfg.SeedProbability = 0.4
				return cfg
			},
		},
		{
			name: "planted/missing/approximate-gain",
			m: func(t *testing.T) *matrix.Matrix {
				return plantedMissingMatrix(t, 13, 90, 14, 3, 55, 0.1)
			},
			cfg: func() Config {
				cfg := DefaultConfig(3, 8)
				cfg.SeedMode = SeedRandom
				cfg.ApproximateGain = true
				return cfg
			},
		},
		{
			name: "noise/missing/constrained",
			m: func(t *testing.T) *matrix.Matrix {
				return noiseMatrix(t, 17, 60, 12, 0.15)
			},
			cfg: func() Config {
				cfg := DefaultConfig(3, 9)
				cfg.SeedMode = SeedRandom
				cfg.Constraints.Occupancy = 0.5
				cfg.Constraints.MaxVolume = 120
				cfg.Constraints.MaxOverlap = 0.5
				return cfg
			},
		},
	}
}

// TestParallelDecideDifferential is the sweep: serial reference vs
// every worker count, across matrices (missing values included),
// seeding modes, gain policies, constraints and all three action
// orders, asserting identical fingerprints, progress traces and
// checkpoint bytes at every iteration boundary.
func TestParallelDecideDifferential(t *testing.T) {
	for _, tc := range differentialCases() {
		for _, order := range []Order{FixedOrder, RandomOrder, WeightedRandomOrder} {
			tc, order := tc, order
			t.Run(fmt.Sprintf("%s/order=%v", tc.name, order), func(t *testing.T) {
				t.Parallel()
				m := tc.m(t)
				cfg := tc.cfg()
				cfg.Order = order
				cfg.Workers = 1
				// A run that converges at its seed exercises exactly one
				// decide phase; scan a few seeds (deterministically) for
				// one that iterates, so every cell compares real
				// multi-iteration trajectories.
				var serial runCapture
				for seed := int64(71); ; seed++ {
					if seed == 81 {
						t.Fatalf("no seed in [71, 80] produced an improving iteration; the case proves nothing")
					}
					cfg.Seed = seed
					serial = captureRun(t, m, cfg)
					if len(serial.ckpts) > 0 {
						break
					}
				}
				for _, w := range diffWorkerCounts(t) {
					cfg.Workers = w
					assertCapturesEqual(t, serial, captureRun(t, m, cfg), w)
				}
			})
		}
	}
}

// TestParallelResumeFromCheckpoint proves worker counts and
// checkpoints compose: a checkpoint cut mid-run at one worker count
// resumes at any other and still lands on the uninterrupted serial
// run's exact fingerprint. (Workers is excluded from ConfigSum for
// exactly this reason.)
func TestParallelResumeFromCheckpoint(t *testing.T) {
	m := plantedMissingMatrix(t, 7, 100, 15, 3, 60, 0.12)
	cfg := DefaultConfig(3, 8)
	cfg.SeedMode = SeedRandom
	cfg.Seed = 9

	cfg.Workers = 1
	serial := captureRun(t, m, cfg)
	if len(serial.ckpts) < 2 {
		t.Fatalf("run wrote %d checkpoints; need ≥ 2 for a mid-run resume", len(serial.ckpts))
	}

	// Cut points: first and middle boundary, each written by a
	// different worker count than it resumes under.
	for _, tc := range []struct {
		name           string
		writer, reader int
		boundary       int
	}{
		{"parallel-writes/serial-resumes", 3, 1, len(serial.ckpts) / 2},
		{"serial-writes/parallel-resumes", 1, 7, len(serial.ckpts) / 2},
		{"parallel-writes/parallel-resumes", 2, 3, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg.Workers = tc.writer
			writer := captureRun(t, m, cfg)
			ck := new(Checkpoint)
			if err := ck.UnmarshalBinary(writer.ckpts[tc.boundary]); err != nil {
				t.Fatal(err)
			}
			cfg.Workers = tc.reader
			res, err := RunWithOptions(t.Context(), m, cfg, RunOptions{Resume: ck})
			if err != nil {
				t.Fatal(err)
			}
			if got := fingerprint(res); got != serial.fp {
				t.Fatalf("resume at workers=%d from a workers=%d checkpoint diverged from the uninterrupted serial run\n--- serial\n%s--- resumed\n%s",
					tc.reader, tc.writer, serial.fp, got)
			}
		})
	}
}

// TestDecideAllMatchesSerialLoop pins the merge order at the unit
// level: the sharded decideAll must produce the serial loop's exact
// decision slice — same items at same positions, same gain bits, same
// chosen clusters — on a live mid-optimization engine state.
func TestDecideAllMatchesSerialLoop(t *testing.T) {
	m := plantedMissingMatrix(t, 3, 50, 11, 2, 40, 0.1)
	cfg := DefaultConfig(3, 8)
	cfg.Seed = 4
	if err := cfg.validate(m.Rows(), m.Cols()); err != nil {
		t.Fatal(err)
	}
	e := newEngine(m, &cfg)

	e.cfg.Workers = 1
	// decideAll returns engine-owned scratch that the next call
	// overwrites, so the serial result must be copied to survive the
	// sharded calls below.
	want := append([]decision(nil), e.decideAll()...)
	wantEvals := e.gainEvals
	for _, w := range []int{2, 3, 7, 50 + 11, 1000} {
		e.gainEvals = 0
		e.cfg.Workers = w
		got := e.decideAll()
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d decisions, want %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: decision[%d] = %+v, serial %+v", w, i, got[i], want[i])
			}
		}
		if e.gainEvals != wantEvals {
			t.Fatalf("workers=%d: %d gain evaluations, serial made %d", w, e.gainEvals, wantEvals)
		}
	}
}

// TestDecideAllLeavesStateUntouched proves the decide phase as a
// whole is read-only: after decideAll at any worker count, every
// cluster's exact bits — membership, internal order, aggregates —
// are what they were before the call.
func TestDecideAllLeavesStateUntouched(t *testing.T) {
	m := plantedMissingMatrix(t, 19, 40, 10, 2, 36, 0.15)
	cfg := DefaultConfig(2, 8)
	cfg.Seed = 6
	if err := cfg.validate(m.Rows(), m.Cols()); err != nil {
		t.Fatal(err)
	}
	e := newEngine(m, &cfg)
	before := make([]string, len(e.clusters))
	for c, cl := range e.clusters {
		before[c] = clusterBits(cl)
	}
	for _, w := range []int{1, 2, 5} {
		e.cfg.Workers = w
		e.decideAll()
		for c, cl := range e.clusters {
			if got := clusterBits(cl); got != before[c] {
				t.Fatalf("workers=%d: decideAll disturbed cluster %d\nbefore %s\nafter  %s", w, c, before[c], got)
			}
		}
	}
}

// TestWorkersValidation pins the Config.Workers contract: negative
// rejected, zero defaulted to GOMAXPROCS, explicit values preserved.
func TestWorkersValidation(t *testing.T) {
	m := noiseMatrix(t, 1, 8, 6, 0)
	bad := DefaultConfig(2, 5)
	bad.Workers = -1
	if _, err := Run(m, bad); err == nil {
		t.Fatal("Workers = -1 accepted, want a validation error")
	}

	cfg := DefaultConfig(2, 5)
	if err := cfg.validate(m.Rows(), m.Cols()); err != nil {
		t.Fatal(err)
	}
	if want := runtime.GOMAXPROCS(0); cfg.Workers != want {
		t.Fatalf("zero Workers normalized to %d, want GOMAXPROCS = %d", cfg.Workers, want)
	}

	cfg = DefaultConfig(2, 5)
	cfg.Workers = 3
	if err := cfg.validate(m.Rows(), m.Cols()); err != nil {
		t.Fatal(err)
	}
	if cfg.Workers != 3 {
		t.Fatalf("explicit Workers rewritten to %d, want 3", cfg.Workers)
	}
}
