package floc

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"os"

	"deltacluster/internal/cluster"
	"deltacluster/internal/matrix"
	"deltacluster/internal/stats"
)

// Checkpoint is a resumable snapshot of a FLOC run, cut at a phase-2
// iteration boundary. Boundaries are the only states a checkpoint may
// capture: iterate() normalizes every cluster there with a wholesale
// Recompute, so the state is reconstructible bit-for-bit from
// membership alone. (Seeding state is built incrementally and is not
// boundary-normalized, which is why no checkpoint exists before the
// first improving iteration completes.)
//
// A checkpoint pins the run's randomness by (Seed, Draws): every value
// the engine's RNG produces is derived from counted Int63 draws, so
// stats.NewRNGAt reconstructs the generator at the exact stream
// position (see internal/stats).
type Checkpoint struct {
	// Seed is the Config.Seed the run started from.
	Seed int64
	// Draws is the RNG stream position at the boundary.
	Draws uint64

	// Iterations counts the improving iterations completed.
	Iterations int
	// Actions and GainEvals carry the Result counters at the boundary.
	Actions   int64
	GainEvals int64
	// Trace is the residue trace so far, seed entry included; its
	// length is always Iterations+1.
	Trace []float64

	// Clusters holds each cluster's membership in internal insertion
	// order — NOT sorted order. Floating-point aggregates accumulate
	// in insertion order, so this ordering is what makes a resumed run
	// bit-identical to the uninterrupted one (see cluster.FromOrdered).
	Clusters []ClusterState

	// ConfigSum fingerprints the normalized Config the run used, with
	// MaxIterations deliberately excluded so a capped run's checkpoint
	// can resume under a larger budget. MatrixSum fingerprints the
	// data matrix (shape, missingness pattern and exact entry bits).
	// Resume refuses a checkpoint whose sums do not match.
	ConfigSum uint64
	MatrixSum uint64
}

// ClusterState is one cluster's membership in insertion order.
type ClusterState struct {
	Rows []int
	Cols []int
}

// exportCheckpoint snapshots the engine at an iteration boundary.
func (e *engine) exportCheckpoint(iterations int, trace []float64) *Checkpoint {
	ck := &Checkpoint{
		Seed:       e.cfg.Seed,
		Draws:      e.rng.Draws(),
		Iterations: iterations,
		Actions:    e.actions,
		GainEvals:  e.gainEvals,
		Trace:      append([]float64(nil), trace...),
		Clusters:   make([]ClusterState, len(e.clusters)),
		ConfigSum:  configSum(e.cfg),
		MatrixSum:  matrixSum(e.m),
	}
	for c, cl := range e.clusters {
		ck.Clusters[c] = ClusterState{Rows: cl.OrderedRows(), Cols: cl.OrderedCols()}
	}
	return ck
}

// resumeEngine rebuilds an engine from a checkpoint, initializing the
// guarded residue/cost caches with the same per-cluster rebuild loop
// iterate() runs at a boundary, so every cached float is bit-equal to
// the interrupted run's (deltavet:writer).
func resumeEngine(m *matrix.Matrix, cfg *Config, ck *Checkpoint) (*engine, error) {
	if got := configSum(cfg); ck.ConfigSum != got {
		return nil, fmt.Errorf("floc: checkpoint was written under a different configuration (sum %016x, want %016x)", ck.ConfigSum, got)
	}
	if got := matrixSum(m); ck.MatrixSum != got {
		return nil, fmt.Errorf("floc: checkpoint was written for a different matrix (sum %016x, want %016x)", ck.MatrixSum, got)
	}
	if len(ck.Clusters) != cfg.K {
		return nil, fmt.Errorf("floc: checkpoint has %d clusters, configuration wants %d", len(ck.Clusters), cfg.K)
	}
	if ck.Iterations < 0 || len(ck.Trace) != ck.Iterations+1 {
		return nil, fmt.Errorf("floc: checkpoint trace has %d entries for %d iterations, want %d", len(ck.Trace), ck.Iterations, ck.Iterations+1)
	}
	e := &engine{
		m:         m,
		cfg:       cfg,
		rng:       stats.NewRNGAt(ck.Seed, ck.Draws),
		coverRow:  make([]int, m.Rows()),
		coverCol:  make([]int, m.Cols()),
		gainEvals: ck.GainEvals,
		actions:   ck.Actions,
	}
	e.w = float64(m.SpecifiedCount())
	// Same discipline as newEngine: freeze the derived matrix caches
	// from this goroutine before decide workers can share the matrix,
	// and enable the dense evaluation pack (bit copies — the resumed
	// trajectory stays byte-identical to the uninterrupted one).
	m.EnsureDerived()
	e.clusters = make([]*cluster.Cluster, cfg.K)
	e.residues = make([]float64, cfg.K)
	e.costs = make([]float64, cfg.K)
	for c := range ck.Clusters {
		cl, err := cluster.FromOrdered(m, ck.Clusters[c].Rows, ck.Clusters[c].Cols)
		if err != nil {
			return nil, fmt.Errorf("floc: checkpoint cluster %d: %w", c, err)
		}
		cl.EnablePack()
		if cfg.GainMode == GainIncremental {
			// Checkpoints are cut at iteration boundaries, where the
			// residue masses are refresh-exact — rebuilding them from the
			// restored sums reproduces exactly the state an uninterrupted
			// incremental run carries at this boundary.
			cl.EnableResidueAggregates(cfg.ResidueMean)
		}
		e.clusters[c] = cl
		e.residues[c] = cl.ResidueWith(cfg.ResidueMean)
		e.resSum += e.residues[c]
		e.costs[c] = e.cost(e.residues[c], cl.Volume(), cl.NumRows(), cl.NumCols())
		e.costSum += e.costs[c]
		for _, i := range cl.Rows() {
			e.coverRow[i]++
		}
		for _, j := range cl.Cols() {
			e.coverCol[j]++
		}
	}
	if debugInvariants {
		e.assertInvariants("resume")
	}
	return e, nil
}

// configSum fingerprints a normalized Config with FNV-64a over the
// exact bits of every field that shapes the run's trajectory.
// MaxIterations is deliberately excluded: it caps the run without
// altering any iteration, so resuming a capped run under a larger
// budget is legal and bit-identical as far as the cap allowed.
// Workers is excluded for the same reason: the decide phase's worker
// count never changes a bit of the trajectory (see Config.Workers),
// so a checkpoint written at one worker count resumes at any other.
// GainMode is excluded too, though for a subtler reason: checkpoints
// are cut at iteration boundaries, where the incremental tier's
// residue masses are refreshed to exactly what the exact tier
// computes, so a boundary state written under either mode is a valid
// starting state for the other — resuming merely picks the scoring
// tier for the iterations still to come (see Config.GainMode).
func configSum(cfg *Config) uint64 {
	h := fnv.New64a()
	var b [8]byte
	u := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	f := func(v float64) { u(math.Float64bits(v)) }
	o := func(v bool) {
		if v {
			u(1)
		} else {
			u(0)
		}
	}
	u(uint64(cfg.K))
	u(uint64(cfg.GainPolicy))
	f(cfg.MaxResidue)
	u(uint64(cfg.SeedMode))
	u(uint64(cfg.SeedAttempts))
	f(cfg.SeedProbability)
	u(uint64(len(cfg.SeedProbabilities)))
	for _, p := range cfg.SeedProbabilities {
		f(p)
	}
	f(cfg.SeedRowProbability)
	f(cfg.SeedColProbability)
	u(uint64(cfg.Order))
	u(uint64(cfg.Constraints.MinRows))
	u(uint64(cfg.Constraints.MinCols))
	u(uint64(cfg.Constraints.MaxVolume))
	f(cfg.Constraints.MaxOverlap)
	o(cfg.Constraints.RequireRowCoverage)
	o(cfg.Constraints.RequireColCoverage)
	f(cfg.Constraints.Occupancy)
	u(uint64(cfg.Seed))
	u(uint64(cfg.ResidueMean))
	o(cfg.RecomputeOnApply)
	o(cfg.Polish)
	f(cfg.PolishMaxResidue)
	o(cfg.ApproximateGain)
	return h.Sum64()
}

// matrixSum fingerprints a matrix with FNV-64a over its shape and the
// exact bits of every entry (missing entries hash as a marker, not as
// their NaN payload, so any NaN encoding reads as the same matrix).
func matrixSum(m *matrix.Matrix) uint64 {
	h := fnv.New64a()
	var b [8]byte
	u := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	u(uint64(m.Rows()))
	u(uint64(m.Cols()))
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if !m.IsSpecified(i, j) {
				u(1)
				continue
			}
			u(0)
			u(math.Float64bits(m.Get(i, j)))
		}
	}
	return h.Sum64()
}

// Checkpoint file format (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "DCKP"
//	4       4     format version (uint32, currently 1)
//	8       8     payload length (uint64)
//	16      n     payload (see MarshalBinary)
//	16+n    32    SHA-256 of the payload
//
// The checksum makes torn or corrupted writes detectable: a reader
// verifies it before trusting a single payload byte.
const (
	checkpointMagic   = "DCKP"
	checkpointVersion = 1
)

// MarshalBinary encodes the checkpoint in the versioned, checksummed
// format above. The encoding is deterministic: equal checkpoints
// produce equal bytes.
func (ck *Checkpoint) MarshalBinary() ([]byte, error) {
	var p []byte
	u := func(v uint64) { p = binary.LittleEndian.AppendUint64(p, v) }
	u(uint64(ck.Seed))
	u(ck.Draws)
	u(uint64(ck.Iterations))
	u(uint64(ck.Actions))
	u(uint64(ck.GainEvals))
	u(ck.ConfigSum)
	u(ck.MatrixSum)
	u(uint64(len(ck.Trace)))
	for _, v := range ck.Trace {
		u(math.Float64bits(v))
	}
	u(uint64(len(ck.Clusters)))
	for _, cs := range ck.Clusters {
		u(uint64(len(cs.Rows)))
		for _, i := range cs.Rows {
			u(uint64(i))
		}
		u(uint64(len(cs.Cols)))
		for _, j := range cs.Cols {
			u(uint64(j))
		}
	}

	out := make([]byte, 0, 16+len(p)+sha256.Size)
	out = append(out, checkpointMagic...)
	out = binary.LittleEndian.AppendUint32(out, checkpointVersion)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(p)))
	out = append(out, p...)
	sum := sha256.Sum256(p)
	out = append(out, sum[:]...)
	return out, nil
}

// UnmarshalBinary decodes and verifies a checkpoint encoding. It
// rejects bad magic, unknown versions, truncation and checksum
// mismatches before interpreting any payload field.
func (ck *Checkpoint) UnmarshalBinary(data []byte) error {
	if len(data) < 16 || !bytes.Equal(data[:4], []byte(checkpointMagic)) {
		return fmt.Errorf("floc: not a checkpoint file (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != checkpointVersion {
		return fmt.Errorf("floc: unsupported checkpoint version %d (want %d)", v, checkpointVersion)
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	if uint64(len(data)-16) < n || len(data)-16-int(n) < sha256.Size {
		return fmt.Errorf("floc: truncated checkpoint (torn write?)")
	}
	payload := data[16 : 16+n]
	var sum [sha256.Size]byte
	copy(sum[:], data[16+n:])
	if sha256.Sum256(payload) != sum {
		return fmt.Errorf("floc: checkpoint checksum mismatch (torn or corrupted write?)")
	}

	dec := ckDecoder{p: payload}
	ck.Seed = int64(dec.u64())
	ck.Draws = dec.u64()
	ck.Iterations = int(dec.u64())
	ck.Actions = int64(dec.u64())
	ck.GainEvals = int64(dec.u64())
	ck.ConfigSum = dec.u64()
	ck.MatrixSum = dec.u64()
	ck.Trace = make([]float64, dec.length())
	for i := range ck.Trace {
		ck.Trace[i] = math.Float64frombits(dec.u64())
	}
	ck.Clusters = make([]ClusterState, dec.length())
	for c := range ck.Clusters {
		ck.Clusters[c].Rows = dec.ints()
		ck.Clusters[c].Cols = dec.ints()
	}
	if dec.err != nil {
		return fmt.Errorf("floc: malformed checkpoint payload: %w", dec.err)
	}
	if len(dec.p) != 0 {
		return fmt.Errorf("floc: malformed checkpoint payload: %d trailing bytes", len(dec.p))
	}
	return nil
}

// ckDecoder consumes a checksummed payload front to back, latching the
// first error.
type ckDecoder struct {
	p   []byte
	err error
}

func (d *ckDecoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.p) < 8 {
		d.err = fmt.Errorf("short read: %d bytes left, want 8", len(d.p))
		return 0
	}
	v := binary.LittleEndian.Uint64(d.p[:8])
	d.p = d.p[8:]
	return v
}

// length reads a collection length and bounds it by the remaining
// payload, so a corrupt length cannot force a huge allocation.
func (d *ckDecoder) length() int {
	n := d.u64()
	if d.err == nil && n > uint64(len(d.p)/8) {
		d.err = fmt.Errorf("collection length %d exceeds remaining payload", n)
		return 0
	}
	return int(n)
}

func (d *ckDecoder) ints() []int {
	out := make([]int, d.length())
	for i := range out {
		out[i] = int(d.u64())
	}
	return out
}

// EncodeCheckpoint renders the checkpoint in the versioned,
// checksummed DCKP byte format — the same bytes WriteCheckpointFile
// persists, exposed for transports that are not files (checkpoint
// replication between deltaserve nodes ships these bytes over HTTP).
func EncodeCheckpoint(ck *Checkpoint) ([]byte, error) {
	return ck.MarshalBinary()
}

// DecodeCheckpoint parses and verifies a DCKP encoding produced by
// EncodeCheckpoint (or read back from a checkpoint file). It rejects
// bad magic, unknown versions, truncation and checksum mismatches
// before interpreting any payload field, so a torn or hostile
// replicated checkpoint fails loudly instead of resuming from garbage.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	ck := new(Checkpoint)
	if err := ck.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return ck, nil
}

// WriteCheckpointFile writes the checkpoint to path atomically: the
// encoding goes to a temporary file in the same directory, is fsynced,
// and is renamed over path, so a crash mid-write can never leave a
// half-written checkpoint under the final name. (The deltachaos
// "checkpoint-write" fault point can override this with a torn,
// non-atomic write to prove readers reject it.)
func WriteCheckpointFile(path string, ck *Checkpoint) error {
	data, err := ck.MarshalBinary()
	if err != nil {
		return fmt.Errorf("floc: encoding checkpoint: %w", err)
	}
	if chaosEnabled {
		if handled, cerr := chaosWriteFile(path, data); handled {
			return cerr
		}
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("floc: writing checkpoint: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("floc: writing checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("floc: syncing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("floc: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("floc: publishing checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpointFile reads and verifies a checkpoint written by
// WriteCheckpointFile.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("floc: reading checkpoint: %w", err)
	}
	ck := new(Checkpoint)
	if err := ck.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return ck, nil
}
