package floc

import (
	"context"
	"testing"
)

// BenchmarkRecluster measures the deltastream payoff on the
// equivalence suite's planted workload: after a small delta (one
// appended row, one update, one retraction on a 200×18 matrix), how
// much does warm-starting from the parent's final checkpoint save
// over reclustering cold? cold is the full discovery run on the
// mutated matrix; warm re-anchors the parent's converged memberships
// and pays only the corrective iterations. The ratio between the two
// legs is the feature's reason to exist — BENCH_stream.json records
// both so CI catches either leg regressing.
func BenchmarkRecluster(b *testing.B) {
	cfg := warmTestConfig(1)

	parent := warmTestMatrix(b, 1)
	parentRows := parent.Rows()
	res, err := RunWithOptions(context.Background(), parent, cfg, RunOptions{KeepFinalCheckpoint: true})
	if err != nil {
		b.Fatal(err)
	}
	ck := res.FinalCheckpoint
	if ck == nil {
		b.Fatal("parent run kept no final checkpoint")
	}

	mutated := warmTestMatrix(b, 1)
	plantDelta(b, mutated)

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(mutated, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			opts := RunOptions{WarmStart: &WarmStart{Checkpoint: ck, ParentRows: parentRows}}
			if _, err := RunWithOptions(context.Background(), mutated, cfg, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
