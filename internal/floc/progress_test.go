package floc

import (
	"context"
	"testing"

	"deltacluster/internal/stats"
)

// TestOnProgressReportsEveryBoundary checks the observation contract:
// one report after seeding, one per improving iteration, each carrying
// the trace's value at that boundary.
func TestOnProgressReportsEveryBoundary(t *testing.T) {
	m := resilienceTestMatrix(t)
	cfg := resilienceTestConfig(t)

	var seen []Progress
	res, err := RunWithOptions(context.Background(), m, cfg, RunOptions{
		OnProgress: func(p Progress) { seen = append(seen, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != res.Iterations+1 {
		t.Fatalf("got %d progress reports, want %d (seed + one per improving iteration)",
			len(seen), res.Iterations+1)
	}
	for i, p := range seen {
		if p.Iteration != i {
			t.Fatalf("report %d has Iteration = %d", i, p.Iteration)
		}
		if !stats.EqualWithin(p.AvgResidue, res.ResidueTrace[i], 0) {
			t.Fatalf("report %d has AvgResidue = %v, want trace value %v",
				i, p.AvgResidue, res.ResidueTrace[i])
		}
	}
	last := seen[len(seen)-1]
	if !stats.EqualWithin(last.AvgResidue, res.ResidueTrace[len(res.ResidueTrace)-1], 0) {
		t.Fatalf("final report %v does not match the final trace entry", last)
	}
}

// TestOnProgressIsPureObservation verifies the fingerprint guarantee:
// a run with an observer is bit-identical to one without.
func TestOnProgressIsPureObservation(t *testing.T) {
	m := resilienceTestMatrix(t)
	cfg := resilienceTestConfig(t)

	plain, err := RunContext(context.Background(), m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := RunWithOptions(context.Background(), m, cfg, RunOptions{
		OnProgress: func(Progress) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Iterations != observed.Iterations ||
		plain.ActionsApplied != observed.ActionsApplied ||
		plain.GainEvaluations != observed.GainEvaluations ||
		!stats.EqualWithin(plain.AvgResidue, observed.AvgResidue, 0) {
		t.Fatalf("observed run diverged: %+v vs %+v", plain, observed)
	}
	if len(plain.ResidueTrace) != len(observed.ResidueTrace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(plain.ResidueTrace), len(observed.ResidueTrace))
	}
	for i := range plain.ResidueTrace {
		if !stats.EqualWithin(plain.ResidueTrace[i], observed.ResidueTrace[i], 0) {
			t.Fatalf("trace[%d] differs: %v vs %v", i, plain.ResidueTrace[i], observed.ResidueTrace[i])
		}
	}
}

// TestOnProgressResume checks that a resumed run reports from the
// resumed iteration, not from zero.
func TestOnProgressResume(t *testing.T) {
	m := resilienceTestMatrix(t)
	cfg := resilienceTestConfig(t)
	_, cks := captureCheckpoints(t, m, cfg)
	if len(cks) < 2 {
		t.Skip("workload converged too fast to exercise resume")
	}
	ck := cks[1]

	var first *Progress
	_, err := RunWithOptions(context.Background(), m, cfg, RunOptions{
		Resume: ck,
		OnProgress: func(p Progress) {
			if first == nil {
				first = &p
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if first == nil {
		t.Fatal("no progress reported on resume")
	}
	if first.Iteration != ck.Iterations {
		t.Fatalf("first resumed report at iteration %d, want %d", first.Iteration, ck.Iterations)
	}
}
