package floc

import "deltacluster/internal/stats"

// orderDecisions permutes the per-item decisions according to the
// configured ordering strategy (Section 5.2). FixedOrder leaves the
// natural row-0..M−1-then-column-0..N−1 order in place.
func orderDecisions(ds []decision, order Order, rng *stats.RNG) {
	switch order {
	case FixedOrder:
		// Keep the natural order.
	case RandomOrder:
		// The paper randomizes with g = 2·(M+N) random pairwise swaps;
		// a Fisher–Yates shuffle produces an exactly uniform permutation,
		// which is what those swaps approximate.
		rng.Shuffle(len(ds), func(i, j int) { ds[i], ds[j] = ds[j], ds[i] })
	case WeightedRandomOrder:
		weightedRandomOrder(ds, rng)
	}
}

// weightedRandomOrder implements Section 5.2.2: g = 2·(M+N) random
// pairs are considered for swapping; a pair whose front action already
// has the larger gain is less likely to swap. With Γ the spread
// between the maximum and minimum gain over all actions, the swap
// probability for front gain g_f and back gain g_b is
//
//	p = 0.5 + (g_b − g_f) / (2Γ)
//
// so a maximum-gain action in front of a minimum-gain one never swaps
// (p = 0), the reverse always swaps (p = 1), and equal gains swap half
// the time. (The paper's prose states the formula with the opposite
// sign, contradicting its own "rule of thumb" that a larger front gain
// makes the swap *less* likely; we follow the rule of thumb, which is
// also what makes the weighted order favor large gains early as
// Table 4 reports.) Blocked actions (gain −∞) are treated as holding
// the minimum finite gain so that Γ stays finite.
func weightedRandomOrder(ds []decision, rng *stats.RNG) {
	n := len(ds)
	if n < 2 {
		return
	}
	// Spread of finite gains.
	minG, maxG := 0.0, 0.0
	first := true
	for _, d := range ds {
		if d.clusterIdx < 0 {
			continue
		}
		if first {
			minG, maxG = d.gain, d.gain
			first = false
			continue
		}
		if d.gain < minG {
			minG = d.gain
		}
		if d.gain > maxG {
			maxG = d.gain
		}
	}
	gamma := maxG - minG
	gainOf := func(d decision) float64 {
		if d.clusterIdx < 0 {
			return minG
		}
		return d.gain
	}
	swaps := 2 * n
	for s := 0; s < swaps; s++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		var p float64
		if gamma <= 0 {
			// No finite-gain spread (all gains equal or all blocked):
			// every pair swaps with probability ½. gamma is a
			// max−min difference, so ≤ 0 is the complete "no spread"
			// case without a raw float equality.
			p = 0.5
		} else {
			p = 0.5 + (gainOf(ds[j])-gainOf(ds[i]))/(2*gamma)
		}
		if rng.Bool(p) {
			ds[i], ds[j] = ds[j], ds[i]
		}
	}
}
